// Package sdssort is a Go implementation of SDS-Sort — the scalable
// dynamic skew-aware parallel sorting algorithm of Dong, Byna and Wu
// (HPDC 2016) — together with the distributed-memory runtime it needs
// and the baselines it was evaluated against.
//
// The model mirrors MPI: p ranks each hold a slice of the records; a
// collective Sort call leaves rank r holding the r-th block of the
// globally sorted data. Ranks can be goroutines in one process (see
// RunLocal) or OS processes connected over TCP (see NewTCPComm).
//
// Quick start, in-process:
//
//	topo := sdssort.Topology{Nodes: 2, CoresPerNode: 4}
//	sorter := sdssort.NewSorter[float64](sdssort.Float64Codec(), cmp)
//	sorted, err := sorter.SortLocal(topo, parts) // parts[r] = rank r's records
//
// The sorter is generic over the record type: supply a fixed-width Codec
// for the wire format and a three-way comparator over the sort key.
// Nothing below the comparator inspects records, so any user-chosen key
// works — including heavily duplicated ones — without secondary sorting
// keys; that is the point of the algorithm.
package sdssort

import (
	"io"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/extsort"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
)

// Codec converts records to and from a fixed-width wire format for the
// all-to-all exchange. Implementations must be stateless.
type Codec[T any] interface {
	// Size is the exact number of bytes Marshal writes per record.
	Size() int
	// Marshal writes rec into dst[:Size()].
	Marshal(dst []byte, rec T)
	// Unmarshal reads one record from src[:Size()].
	Unmarshal(src []byte) T
}

// Comm is a communicator: a group of ranks exchanging messages within an
// isolated context, the unit a collective sort runs over.
type Comm = comm.Comm

// Topology describes the simulated machine of an in-process run: Nodes
// × CoresPerNode ranks, with node boundaries respected by the τm
// node-level merging.
type Topology = cluster.Topology

// Float64Codec returns the codec for plain float64 keys.
func Float64Codec() Codec[float64] { return codec.Float64{} }

// Uint64Codec returns the codec for plain uint64 keys.
func Uint64Codec() Codec[uint64] { return codec.Uint64{} }

// Int64Codec returns the codec for plain int64 keys.
func Int64Codec() Codec[int64] { return codec.Int64{} }

// PTFRecord is a Palomar Transient Factory detection: real-bogus score
// key plus object-id payload (one of the paper's two real datasets).
type PTFRecord = codec.PTFRecord

// PTFCodec returns the 16-byte codec for PTFRecord.
func PTFCodec() Codec[PTFRecord] { return codec.PTFCodec{} }

// ComparePTF orders PTF records by real-bogus score only.
func ComparePTF(a, b PTFRecord) int { return codec.ComparePTF(a, b) }

// Particle is a cosmology-simulation particle: cluster-id key plus
// position/velocity payload (the paper's second real dataset).
type Particle = codec.Particle

// ParticleCodec returns the 32-byte codec for Particle.
func ParticleCodec() Codec[Particle] { return codec.ParticleCodec{} }

// CompareParticles orders particles by cluster id only.
func CompareParticles(a, b Particle) int { return codec.CompareParticles(a, b) }

// Compare is a convenience three-way comparator for ordered primitive
// keys.
func Compare[T interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64 | ~string
}](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// PhaseTimes is the per-phase wall-time breakdown of one rank's sort, in
// the categories of the paper's Figures 9 and 10.
type PhaseTimes struct {
	LocalSort      time.Duration
	PivotSelection time.Duration
	Exchange       time.Duration
	LocalOrdering  time.Duration
	Other          time.Duration
}

// Total returns the sum of all phases.
func (p PhaseTimes) Total() time.Duration {
	return p.LocalSort + p.PivotSelection + p.Exchange + p.LocalOrdering + p.Other
}

// Stats reports what one rank's Sort call did.
type Stats struct {
	// Records is the number of records this rank holds after sorting
	// (the m_i of the paper's RDFA load-balance metric).
	Records int
	// Phases is the wall-time breakdown.
	Phases PhaseTimes
}

// Option configures a Sorter.
type Option func(*config)

type config struct {
	opt core.Options
	mem int64
}

// Stable requests a stable sort: records with equal keys keep their
// global input order (rank order, then local position) — without any
// secondary sorting key.
func Stable() Option { return func(c *config) { c.opt.Stable = true } }

// Cores sets how many goroutines each rank may use for local sorting
// and merging (the paper's cores-per-node c).
func Cores(n int) Option { return func(c *config) { c.opt.Cores = n } }

// TauM sets the node-level merging threshold in bytes of average
// exchange message size; 0 disables node merging (§2.3 of the paper).
func TauM(bytes int64) Option { return func(c *config) { c.opt.TauM = bytes } }

// TauO sets the overlap threshold: with fewer ranks than this (and a
// non-stable sort) the exchange overlaps with local ordering (§2.6).
func TauO(p int) Option { return func(c *config) { c.opt.TauO = p } }

// TauS sets the local-ordering threshold: below it received chunks are
// k-way merged, above it they are re-sorted (§2.7).
func TauS(p int) Option { return func(c *config) { c.opt.TauS = p } }

// RunThreshold sets the average run length above which local data is
// treated as partially ordered and merged instead of sorted; 0 disables
// detection.
func RunThreshold(avgRunLen float64) Option {
	return func(c *config) { c.opt.RunThreshold = avgRunLen }
}

// MemoryBudget emulates a per-rank memory limit in bytes: sorts whose
// receive volume exceeds it fail with an out-of-memory error, as they
// would on a real machine. 0 means unlimited.
func MemoryBudget(bytes int64) Option { return func(c *config) { c.mem = bytes } }

// StageBytes bounds the staging window of the all-to-all data exchange:
// partitions stream out in chunks of at most this many bytes through
// pooled buffers and arriving chunks are decoded incrementally, so the
// exchange adds ~2×StageBytes of staging memory instead of an encoded
// copy of the whole working set. 0 (the default) keeps the monolithic
// exchange. Combined with MemoryBudget, the budget then bounds the true
// peak: input + receive buffer + staging window.
func StageBytes(bytes int64) Option { return func(c *config) { c.opt.StageBytes = bytes } }

// HistogramPivots selects global pivots by iterative histogram
// refinement (HykSort's method) instead of the paper's regular sampling.
// Correctness is unaffected — the skew-aware partition handles whatever
// pivots it is given — making this an ablation knob.
func HistogramPivots() Option { return func(c *config) { c.opt.Pivots = core.PivotHistogram } }

// TraceJSON streams structured events (adaptive decisions, exchange
// volumes, partition summaries) as JSON lines to w. The writer must
// tolerate concurrent ranks; the encoder serialises writes.
func TraceJSON(w io.Writer) Option {
	return func(c *config) { c.opt.Trace = trace.NewJSONL(w) }
}

// Sorter sorts distributed slices of T with SDS-Sort.
type Sorter[T any] struct {
	cd   Codec[T]
	cmp  func(a, b T) int
	conf config
}

// NewSorter builds a sorter from a codec, a comparator over the sort
// key, and options.
func NewSorter[T any](cd Codec[T], cmp func(a, b T) int, opts ...Option) *Sorter[T] {
	conf := config{opt: core.DefaultOptions()}
	for _, o := range opts {
		o(&conf)
	}
	return &Sorter[T]{cd: cd, cmp: cmp, conf: conf}
}

func (s *Sorter[T]) options() core.Options {
	opt := s.conf.opt
	if s.conf.mem > 0 {
		opt.Mem = memlimit.New(s.conf.mem)
	}
	return opt
}

// Sort runs the collective sort on communicator c: every rank passes its
// local records (which Sort may reorder) and receives its block of the
// globally sorted output. All ranks of c must call Sort.
func (s *Sorter[T]) Sort(c *Comm, data []T) ([]T, error) {
	return core.Sort(c, data, internalCodec(s.cd), s.cmp, s.options())
}

// SortStats is Sort plus a per-rank phase breakdown and final load.
func (s *Sorter[T]) SortStats(c *Comm, data []T) ([]T, Stats, error) {
	opt := s.options()
	tm := metrics.NewPhaseTimer()
	opt.Timer = tm
	out, err := core.Sort(c, data, internalCodec(s.cd), s.cmp, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, Stats{
		Records: len(out),
		Phases: PhaseTimes{
			LocalSort:      tm.Get(metrics.PhaseLocalSort),
			PivotSelection: tm.Get(metrics.PhasePivotSelection),
			Exchange:       tm.Get(metrics.PhaseExchange),
			LocalOrdering:  tm.Get(metrics.PhaseLocalOrdering),
			Other:          tm.Get(metrics.PhaseOther),
		},
	}, nil
}

// Verify collectively checks that data is globally sorted across the
// communicator (each rank's block sorted, blocks ordered by rank). It is
// cheap — one boundary message per rank plus a reduction — and intended
// to run after production sorts.
func (s *Sorter[T]) Verify(c *Comm, data []T) error {
	return core.Verify(c, data, internalCodec(s.cd), s.cmp)
}

// SortLocal sorts parts on an in-process cluster shaped topo: parts[r]
// is rank r's input and the result's element r is rank r's output block.
// Concatenating the result in order yields the sorted dataset.
func (s *Sorter[T]) SortLocal(topo Topology, parts [][]T) ([][]T, error) {
	if len(parts) != topo.Size() {
		parts = padParts(parts, topo.Size())
	}
	// One budget per rank, built inside each rank for isolation.
	return cluster.Gather(topo, cluster.Options{}, func(c *Comm) ([]T, error) {
		local := append([]T(nil), parts[c.Rank()]...)
		return s.Sort(c, local)
	})
}

// ClusterStats aggregates a SortLocalStats run.
type ClusterStats struct {
	// PerRank holds each rank's stats, indexed by rank.
	PerRank []Stats
	// RDFA is the paper's load-balance metric: the largest final
	// partition over the average (1.0 = perfectly balanced).
	RDFA float64
	// Elapsed is the wall time of the whole collective run.
	Elapsed time.Duration
}

// SortLocalStats is SortLocal plus per-rank statistics and the RDFA
// load-balance metric of the run.
func (s *Sorter[T]) SortLocalStats(topo Topology, parts [][]T) ([][]T, ClusterStats, error) {
	if len(parts) != topo.Size() {
		parts = padParts(parts, topo.Size())
	}
	stats := ClusterStats{PerRank: make([]Stats, topo.Size())}
	start := time.Now()
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *Comm) ([]T, error) {
		local := append([]T(nil), parts[c.Rank()]...)
		sorted, st, err := s.SortStats(c, local)
		if err != nil {
			return nil, err
		}
		stats.PerRank[c.Rank()] = st
		return sorted, nil
	})
	if err != nil {
		return nil, ClusterStats{}, err
	}
	stats.Elapsed = time.Since(start)
	loads := make([]int, len(stats.PerRank))
	for r, st := range stats.PerRank {
		loads[r] = st.Records
	}
	stats.RDFA = metrics.RDFA(loads)
	return out, stats, nil
}

func padParts[T any](parts [][]T, size int) [][]T {
	out := make([][]T, size)
	copy(out, parts)
	return out
}

// RunLocal launches an in-process cluster shaped topo and runs fn on
// every rank, for callers that want full control of the collective.
func RunLocal(topo Topology, fn func(c *Comm) error) error {
	return cluster.Run(topo, fn)
}

// ExternalSortFile sorts a fixed-width record file that may be larger
// than memory: chunks of chunkRecords are sorted in memory and spilled
// as runs, then streamed through a k-way merge into out. With stable
// set, equal keys keep file order. Peak memory is bounded by
// chunkRecords × record size (×2 for the sort scratch) regardless of
// file size. This is the library's out-of-core extension; SDS-Sort
// itself (and the paper) is in-memory.
func ExternalSortFile[T any](in, out string, cd Codec[T], cmp func(a, b T) int, chunkRecords int, stable bool) error {
	return extsort.SortFile(in, out, internalCodec(cd), cmp, extsort.Options{
		ChunkRecords: chunkRecords,
		Stable:       stable,
	})
}

// internalCodec converts the public Codec to the internal one. The
// method sets are identical, so Go's structural interfaces make this a
// plain interface conversion — crucially NOT a wrapper struct, which
// would hide the optional capability interfaces (zero-copy views,
// integer radix keys) the hot paths type-assert for.
func internalCodec[T any](c Codec[T]) codec.Codec[T] { return c }
