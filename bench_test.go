package sdssort

// The benchmark harness: one testing.B benchmark per table/figure of
// the paper's evaluation (each delegates to the experiment driver that
// regenerates the artifact; `cmd/sdsbench -exp <id>` prints the full
// rows), plus micro-benchmarks of the public sorting API across the
// paper's workload regimes.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"sdssort/internal/experiments"
	"sdssort/internal/workload"
)

// benchExperiment runs one experiment driver per iteration (quick
// configuration). b.N is typically 1 for these macro-benchmarks; the
// per-op time is the cost of regenerating the artifact.
func benchExperiment(b *testing.B, id string) {
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aNodeMerging(b *testing.B)       { benchExperiment(b, "fig5a") }
func BenchmarkFig5bOverlap(b *testing.B)           { benchExperiment(b, "fig5b") }
func BenchmarkFig5cLocalOrdering(b *testing.B)     { benchExperiment(b, "fig5c") }
func BenchmarkTable1SequentialSorts(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkTable2ZipfDelta(b *testing.B)        { benchExperiment(b, "tab2") }
func BenchmarkFig6aParallelMerge(b *testing.B)     { benchExperiment(b, "fig6a") }
func BenchmarkFig6bPartition(b *testing.B)         { benchExperiment(b, "fig6b") }
func BenchmarkFig6cSkewSweep(b *testing.B)         { benchExperiment(b, "fig6c") }
func BenchmarkFig7WeakScalingUniform(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkFig8WeakScalingZipf(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkTable3RDFA(b *testing.B)             { benchExperiment(b, "tab3") }
func BenchmarkFig9PTF(b *testing.B)                { benchExperiment(b, "fig9") }
func BenchmarkFig10Cosmology(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkTable4RealRDFA(b *testing.B)         { benchExperiment(b, "tab4") }
func BenchmarkAblations(b *testing.B)              { benchExperiment(b, "ablation") }

// --- Micro-benchmarks of the public API across workload regimes. ---

func benchSortLocal(b *testing.B, topo Topology, gen func(rank int) []float64, opts ...Option) {
	parts := make([][]float64, topo.Size())
	var bytes int64
	for r := range parts {
		parts[r] = gen(r)
		bytes += int64(len(parts[r])) * 8
	}
	sorter := NewSorter[float64](Float64Codec(), Compare[float64], opts...)
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sorter.SortLocal(topo, parts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortUniform8Ranks(b *testing.B) {
	benchSortLocal(b, Topology{Nodes: 4, CoresPerNode: 2}, func(r int) []float64 {
		return workload.Uniform(int64(r+1), 20000)
	})
}

func BenchmarkSortZipf8Ranks(b *testing.B) {
	benchSortLocal(b, Topology{Nodes: 4, CoresPerNode: 2}, func(r int) []float64 {
		return workload.ZipfKeys(int64(r+1), 20000, 1.4, workload.DefaultZipfUniverse)
	})
}

func BenchmarkSortZipf8RanksStable(b *testing.B) {
	benchSortLocal(b, Topology{Nodes: 4, CoresPerNode: 2}, func(r int) []float64 {
		return workload.ZipfKeys(int64(r+1), 20000, 1.4, workload.DefaultZipfUniverse)
	}, Stable())
}

func BenchmarkSortAllEqual8Ranks(b *testing.B) {
	benchSortLocal(b, Topology{Nodes: 4, CoresPerNode: 2}, func(r int) []float64 {
		out := make([]float64, 20000)
		for i := range out {
			out[i] = 7
		}
		return out
	})
}

func BenchmarkSortPartiallyOrdered8Ranks(b *testing.B) {
	benchSortLocal(b, Topology{Nodes: 4, CoresPerNode: 2}, func(r int) []float64 {
		return workload.KSorted(int64(r+1), 20000, 4)
	})
}

func BenchmarkSortRankCounts(b *testing.B) {
	for _, p := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchSortLocal(b, Topology{Nodes: p, CoresPerNode: 1}, func(r int) []float64 {
				return workload.Uniform(int64(r+1), 10000)
			})
		})
	}
}

func BenchmarkSortPTFRecords(b *testing.B) {
	topo := Topology{Nodes: 4, CoresPerNode: 2}
	parts := make([][]PTFRecord, topo.Size())
	var bytes int64
	for r := range parts {
		parts[r] = workload.PTF(int64(r+1), 10000)
		bytes += int64(len(parts[r])) * 16
	}
	sorter := NewSorter[PTFRecord](PTFCodec(), ComparePTF)
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sorter.SortLocal(topo, parts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortParticles(b *testing.B) {
	topo := Topology{Nodes: 4, CoresPerNode: 2}
	parts := make([][]Particle, topo.Size())
	var bytes int64
	for r := range parts {
		parts[r] = workload.Cosmology(int64(r+1), 10000)
		bytes += int64(len(parts[r])) * 32
	}
	sorter := NewSorter[Particle](ParticleCodec(), CompareParticles)
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sorter.SortLocal(topo, parts); err != nil {
			b.Fatal(err)
		}
	}
}
