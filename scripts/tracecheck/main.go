// Command tracecheck validates the JSON artifacts of the span-tracing
// plane for scripts/trace_smoke.sh: the /debug/spans payload and the
// sdstrace -format chrome export. Validation is a real JSON parse with
// shape assertions, not a grep, so malformed or empty output fails the
// smoke lane even when the right substrings happen to appear in it.
//
//	tracecheck -mode spans  -want sort spans.json    # ≥1 closed span named "sort"
//	tracecheck -mode chrome -want sort timeline.json # ≥1 complete "X" slice named "sort"
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// span mirrors the trace.SpanRecord fields the checks read.
type span struct {
	Name    string `json:"name"`
	Rank    int    `json:"rank"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
	Open    bool   `json:"open"`
}

// chromeEvent mirrors the chrome trace-event fields the checks read.
type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Dur  int64  `json:"dur"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 6 || os.Args[1] != "-mode" || os.Args[3] != "-want" {
		// Flag-shaped but positional on purpose: the script always
		// passes both, and a fixed shape keeps the parse honest.
		fail("usage: tracecheck -mode spans|chrome -want <span name> <file.json>")
	}
	mode, want, path := os.Args[2], os.Args[4], os.Args[5]
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}

	switch mode {
	case "spans":
		var spans []span
		if err := json.Unmarshal(data, &spans); err != nil {
			fail("%s: not a JSON span array: %v", path, err)
		}
		if len(spans) == 0 {
			fail("%s: no spans", path)
		}
		closed, matched := 0, 0
		for _, s := range spans {
			if s.Name == "" {
				fail("%s: span with empty name", path)
			}
			if s.Open {
				continue
			}
			closed++
			if s.EndUS < s.StartUS {
				fail("%s: span %q on rank %d ends before it starts", path, s.Name, s.Rank)
			}
			if s.Name == want {
				matched++
			}
		}
		if matched == 0 {
			fail("%s: no closed %q span (%d spans, %d closed)", path, want, len(spans), closed)
		}
		fmt.Printf("tracecheck: %s ok — %d spans, %d closed, %d %q\n",
			path, len(spans), closed, matched, want)

	case "chrome":
		var f chromeFile
		if err := json.Unmarshal(data, &f); err != nil {
			fail("%s: not chrome trace JSON: %v", path, err)
		}
		if len(f.TraceEvents) == 0 {
			fail("%s: empty traceEvents", path)
		}
		slices, meta, matched := 0, 0, 0
		for _, e := range f.TraceEvents {
			switch e.Ph {
			case "X":
				slices++
				if e.Dur < 0 {
					fail("%s: slice %q with negative duration", path, e.Name)
				}
				if e.Name == want {
					matched++
				}
			case "M":
				meta++
			}
		}
		if slices == 0 {
			fail("%s: no complete (\"X\") slices", path)
		}
		if meta == 0 {
			fail("%s: no thread-name metadata", path)
		}
		if matched == 0 {
			fail("%s: no %q slice among %d slices", path, want, slices)
		}
		fmt.Printf("tracecheck: %s ok — %d events, %d slices, %d %q\n",
			path, len(f.TraceEvents), slices, matched, want)

	default:
		fail("unknown -mode %q (want spans or chrome)", mode)
	}
}
