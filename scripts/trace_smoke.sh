#!/bin/sh
# Trace smoke: boot a real 2-process sdsnode world in -serve mode with
# span tracing and telemetry on, assert /debug/spans serves a
# well-formed span tree mid-soak, then validate the read side end to
# end on the written traces: the clock-aligned chrome export and the
# critical-path analyzer. This is the curl-level twin of the trace
# package's Go tests; CI runs it from the engine-soak lane,
# `make trace-smoke` runs it locally. The hot-path cost of the tracing
# hooks themselves is gated separately by the bench-smoke ratchet
# (make bench-diff), not here.
set -eu

dir=$(mktemp -d)
p0=""; p1=""
cleanup() {
	[ -n "$p0" ] && kill "$p0" 2>/dev/null || true
	[ -n "$p1" ] && kill "$p1" 2>/dev/null || true
	rm -rf "$dir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$dir/sdsnode" ./cmd/sdsnode
go build -o "$dir/sdstrace" ./cmd/sdstrace
go build -o "$dir/tracecheck" ./scripts/tracecheck

ports=$(go run ./scripts/freeport 2)
reg=$(echo "$ports" | sed -n 1p)
tel=$(echo "$ports" | sed -n 2p)

# A stream of jobs long enough that the /debug/spans curls below land
# mid-soak with at least one completed sort in the ring.
: >"$dir/jobs.jsonl"
i=0
while [ $i -lt 10 ]; do
	printf '{"name": "trace%d", "workload": "zipf", "n": 200000, "seed": %d, "out": "%s"}\n' \
		"$i" "$((i + 1))" "$dir/trace$i.{rank}.f64" >>"$dir/jobs.jsonl"
	i=$((i + 1))
done

echo "== serve on registry $reg, telemetry $tel, traces in $dir"
"$dir/sdsnode" -rank 0 -size 2 -registry "$reg" -serve -jobs "$dir/jobs.jsonl" \
	-telemetry-addr "$tel" -trace "$dir/rank0.trace" >"$dir/rank0.log" 2>&1 &
p0=$!
"$dir/sdsnode" -rank 1 -size 2 -registry "$reg" -serve -jobs "$dir/jobs.jsonl" \
	-trace "$dir/rank1.trace" >"$dir/rank1.log" 2>&1 &
p1=$!

# Wait for the telemetry plane, then for the first completed sort span
# to reach the ring — /debug/spans must parse as a span array holding
# at least one closed "sort" root the whole time.
echo "== /debug/spans mid-soak"
ok=""
i=0
while [ $i -lt 200 ]; do
	if curl -fsS "http://$tel/debug/spans" >"$dir/spans.json" 2>/dev/null &&
		"$dir/tracecheck" -mode spans -want sort "$dir/spans.json" >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ok" ] || {
	echo "FAIL: /debug/spans never served a closed sort span"
	"$dir/tracecheck" -mode spans -want sort "$dir/spans.json" || true
	cat "$dir/rank0.log"
	exit 1
}
"$dir/tracecheck" -mode spans -want sort "$dir/spans.json"

echo "== drain"
wait "$p0" || { echo "FAIL: rank 0 exited non-zero"; cat "$dir/rank0.log"; exit 1; }
p0=""
wait "$p1" || { echo "FAIL: rank 1 exited non-zero"; cat "$dir/rank1.log"; exit 1; }
p1=""

# Both per-process traces must carry the clock.offset anchor the
# cross-process alignment rests on.
echo "== clock sync recorded"
for f in "$dir/rank0.trace" "$dir/rank1.trace"; do
	grep -q '"kind":"clock.offset"' "$f" || {
		echo "FAIL: $f has no clock.offset event"
		exit 1
	}
done

echo "== chrome export (clock-aligned merge of both ranks)"
"$dir/sdstrace" -format chrome "$dir/rank0.trace" "$dir/rank1.trace" >"$dir/timeline.json"
"$dir/tracecheck" -mode chrome -want sort "$dir/timeline.json"

echo "== critical path"
"$dir/sdstrace" -critical-path "$dir/rank0.trace" "$dir/rank1.trace" | tee "$dir/critpath.txt"
grep -q '^critical path: sort over 2 rank(s)' "$dir/critpath.txt" || {
	echo "FAIL: critical path did not attribute a 2-rank sort"
	exit 1
}

echo "PASS: trace smoke"
