#!/bin/sh
# Telemetry smoke: boot a real 2-process sdsnode world in -serve mode,
# curl /healthz and /metrics mid-soak, and require the local series,
# the fabric-wide aggregated totals and a clean exit. This is the
# curl-level twin of cmd/sdsnode's TestServeTelemetryPlane; CI runs it
# from the engine-soak lane, `make telemetry-smoke` runs it locally.
set -eu

dir=$(mktemp -d)
p0=""; p1=""
cleanup() {
	[ -n "$p0" ] && kill "$p0" 2>/dev/null || true
	[ -n "$p1" ] && kill "$p1" 2>/dev/null || true
	rm -rf "$dir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$dir/sdsnode" ./cmd/sdsnode

ports=$(go run ./scripts/freeport 2)
reg=$(echo "$ports" | sed -n 1p)
tel=$(echo "$ports" | sed -n 2p)

# A stream of jobs long enough that the curls below land mid-soak.
: >"$dir/jobs.jsonl"
i=0
while [ $i -lt 12 ]; do
	printf '{"name": "smoke%d", "workload": "zipf", "n": 200000, "seed": %d, "out": "%s"}\n' \
		"$i" "$((i + 1))" "$dir/smoke$i.{rank}.f64" >>"$dir/jobs.jsonl"
	i=$((i + 1))
done

echo "== serve on registry $reg, telemetry $tel"
"$dir/sdsnode" -rank 0 -size 2 -registry "$reg" -serve -jobs "$dir/jobs.jsonl" \
	-mem $((256 * 1024 * 1024)) -telemetry-addr "$tel" >"$dir/rank0.log" 2>&1 &
p0=$!
"$dir/sdsnode" -rank 1 -size 2 -registry "$reg" -serve -jobs "$dir/jobs.jsonl" \
	-mem $((256 * 1024 * 1024)) >"$dir/rank1.log" 2>&1 &
p1=$!

# Wait for the plane to come up.
ok=""
i=0
while [ $i -lt 100 ]; do
	if curl -fsS "http://$tel/healthz" >"$dir/healthz.json" 2>/dev/null; then
		ok=1
		break
	fi
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ok" ] || { echo "FAIL: /healthz never came up"; cat "$dir/rank0.log"; exit 1; }

echo "== /healthz mid-soak"
cat "$dir/healthz.json"
grep -q '"status": "ok"' "$dir/healthz.json" || { echo "FAIL: not ok"; exit 1; }

echo "== /metrics mid-soak"
curl -fsS "http://$tel/metrics" >"$dir/scrape1.txt"
for series in sds_node_info sds_tcp_frames_sent_total sds_mem_budget_bytes \
	sds_mem_used_bytes sds_node_jobs_done_total sds_exchange_window_bytes; do
	grep -q "^# TYPE $series " "$dir/scrape1.txt" || {
		echo "FAIL: scrape missing $series"
		exit 1
	}
done
grep -q "^sds_mem_budget_bytes 2.68435456e+08$" "$dir/scrape1.txt" || {
	echo "FAIL: -mem budget not exported"
	grep sds_mem_budget_bytes "$dir/scrape1.txt" || true
	exit 1
}

# The first scrape kicked a background fabric gather; shortly after,
# scrapes carry cluster-wide totals summed from both ranks.
echo "== fabric totals"
fab=""
i=0
while [ $i -lt 100 ]; do
	curl -fsS "http://$tel/metrics" >"$dir/scrape2.txt" 2>/dev/null || true
	if grep -q "^sds_fabric_ranks 2$" "$dir/scrape2.txt" &&
		grep -q "^sds_fabric_tcp_frames_sent_total " "$dir/scrape2.txt"; then
		fab=1
		break
	fi
	sleep 0.1
	i=$((i + 1))
done
[ -n "$fab" ] || { echo "FAIL: fabric totals never appeared"; cat "$dir/scrape2.txt"; exit 1; }
grep "^sds_fabric_tcp_frames_sent_total \|^sds_fabric_node_jobs_done_total \|^sds_fabric_ranks " "$dir/scrape2.txt"

echo "== pprof mounted"
curl -fsS "http://$tel/debug/pprof/" >/dev/null || { echo "FAIL: pprof"; exit 1; }

echo "== drain"
wait "$p0" || { echo "FAIL: rank 0 exited non-zero"; cat "$dir/rank0.log"; exit 1; }
p0=""
wait "$p1" || { echo "FAIL: rank 1 exited non-zero"; cat "$dir/rank1.log"; exit 1; }
p1=""

# After a fully drained stream the admission gauge must have read zero
# between jobs; the run would have exited non-zero on a leak (sdsnode
# logs it), so reaching here with exit 0 plus the live scrape above is
# the smoke-level contract.
echo "PASS: telemetry smoke"
