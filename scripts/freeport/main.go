// Command freeport prints one free 127.0.0.1 host:port per argument
// count (default 1) — the shell-script equivalent of the test suites'
// freePort helper, used by scripts/telemetry_smoke.sh to hand sdsnode
// ranks agreed-upon registry and telemetry addresses.
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n := 1
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "usage: freeport [count]\n")
			os.Exit(2)
		}
		n = v
	}
	// Hold every listener until all ports are drawn so the same port is
	// never handed out twice.
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns = append(lns, ln)
		fmt.Println(ln.Addr().String())
	}
}
