// Quickstart: sort one million float64 keys on an in-process cluster of
// 8 ranks (2 simulated nodes × 4 cores) with the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"slices"
	"time"

	"sdssort"
)

func main() {
	const (
		ranks   = 8
		perRank = 125_000
	)
	topo := sdssort.Topology{Nodes: 2, CoresPerNode: 4}

	// Each rank starts with its own unsorted shard, as it would on a
	// real cluster.
	rng := rand.New(rand.NewSource(1))
	parts := make([][]float64, ranks)
	for r := range parts {
		shard := make([]float64, perRank)
		for i := range shard {
			shard[i] = rng.Float64()
		}
		parts[r] = shard
	}

	sorter := sdssort.NewSorter[float64](sdssort.Float64Codec(), sdssort.Compare[float64])
	start := time.Now()
	sorted, err := sorter.SortLocal(topo, parts)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Concatenating the per-rank outputs in rank order yields the
	// globally sorted dataset.
	var flat []float64
	for _, part := range sorted {
		flat = append(flat, part...)
	}
	if !slices.IsSorted(flat) {
		log.Fatal("output is not sorted — this is a bug")
	}
	fmt.Printf("sorted %d keys across %d ranks in %v\n", len(flat), ranks, elapsed.Round(time.Millisecond))
	for r, part := range sorted {
		fmt.Printf("  rank %d holds %6d keys in [%.4f, %.4f]\n",
			r, len(part), part[0], part[len(part)-1])
	}
}
