// PTF pipeline: the paper's first real-data scenario (§4.2, Fig. 9).
//
// The Palomar Transient Factory's real/bogus classifier scores sky
// detections; ranking detections by score is how candidate transients
// are triaged. The score column is heavily duplicated (δ ≈ 28% of
// detections share one score), which collapses classical sample sorts.
// This example sorts a synthetic PTF-like dataset both with the fast and
// the stable variant and prints the phase breakdown the paper plots —
// stability matters here because equal-score detections should keep
// survey order.
//
//	go run ./examples/ptf
package main

import (
	"fmt"
	"log"
	"time"

	"sdssort"
	"sdssort/internal/workload"
)

func main() {
	const (
		ranks   = 8
		perRank = 50_000
	)
	topo := sdssort.Topology{Nodes: 4, CoresPerNode: 2}

	parts := make([][]sdssort.PTFRecord, ranks)
	var all []float64
	for r := range parts {
		parts[r] = workload.PTF(int64(r+1), perRank)
		for _, rec := range parts[r] {
			all = append(all, rec.Score)
		}
	}
	fmt.Printf("dataset: %d detections, δ = %.2f%% duplicated scores\n",
		ranks*perRank, workload.DupRatio(all)*100)

	for _, stable := range []bool{false, true} {
		opts := []sdssort.Option{}
		name := "SDS-Sort (fast)"
		if stable {
			opts = append(opts, sdssort.Stable())
			name = "SDS-Sort/stable"
		}
		sorter := sdssort.NewSorter[sdssort.PTFRecord](sdssort.PTFCodec(), sdssort.ComparePTF, opts...)

		var phases sdssort.PhaseTimes
		start := time.Now()
		outputs := make([][]sdssort.PTFRecord, ranks)
		err := sdssort.RunLocal(topo, func(c *sdssort.Comm) error {
			local := append([]sdssort.PTFRecord(nil), parts[c.Rank()]...)
			out, stats, err := sorter.SortStats(c, local)
			if err != nil {
				return err
			}
			outputs[c.Rank()] = out
			if c.Rank() == 0 {
				phases = stats.Phases
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		fmt.Printf("\n%s: %v\n", name, elapsed.Round(time.Millisecond))
		fmt.Printf("  pivot selection %v | exchange %v | local ordering %v\n",
			phases.PivotSelection.Round(time.Microsecond),
			phases.Exchange.Round(time.Microsecond),
			phases.LocalOrdering.Round(time.Microsecond))
		verify(outputs, stable)
	}
}

// verify checks global order and, in stable mode, that equal-score
// detections kept their survey (generation) order.
func verify(outputs [][]sdssort.PTFRecord, stable bool) {
	var flat []sdssort.PTFRecord
	for _, part := range outputs {
		flat = append(flat, part...)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i-1].Score > flat[i].Score {
			log.Fatalf("not sorted at %d", i)
		}
	}
	if !stable {
		return
	}
	// Within the duplicated score 0, object ids from the same rank are
	// sequential, so stability implies non-decreasing ids per origin.
	seen := map[uint64]uint64{} // origin (seed bits) -> last id
	for _, rec := range flat {
		if rec.Score != 0 {
			continue
		}
		origin := rec.ObjID >> 32
		if last, ok := seen[origin]; ok && rec.ObjID < last {
			log.Fatalf("stability violated within origin %d", origin)
		}
		seen[origin] = rec.ObjID
	}
	fmt.Println("  stability verified across the duplicated score mass")
}
