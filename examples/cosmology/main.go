// Cosmology clustering: the paper's second real-data scenario (§4.2,
// Fig. 10), modelled on BD-CATS.
//
// A clustering pass over an N-body simulation labels each particle with
// a halo (cluster) id; downstream analysis wants particles grouped by
// that id, which is a sort with a heavily duplicated integer key and a
// 24-byte kinematic payload. HykSort-style sorts concentrate the big
// halos onto single ranks and die of OOM; SDS-Sort's skew-aware
// partition keeps every rank within its O(4N/p) bound. This example
// runs both and then answers an analysis question from the sorted
// layout (per-halo mass function).
//
//	go run ./examples/cosmology
package main

import (
	"fmt"
	"log"
	"time"

	"sdssort"
	"sdssort/internal/workload"
)

func main() {
	const (
		ranks   = 8
		perRank = 40_000
	)
	topo := sdssort.Topology{Nodes: 4, CoresPerNode: 2}

	parts := make([][]sdssort.Particle, ranks)
	for r := range parts {
		parts[r] = workload.Cosmology(int64(r+1), perRank)
	}
	fmt.Printf("snapshot: %d particles across %d ranks\n", ranks*perRank, ranks)

	// A realistic per-rank memory budget (4× the fair share): the
	// skew-aware sort fits; a collapsed partition would not.
	budget := int64(ranks*perRank) * 32 / ranks * 4
	sorter := sdssort.NewSorter[sdssort.Particle](
		sdssort.ParticleCodec(), sdssort.CompareParticles,
		sdssort.MemoryBudget(budget))

	start := time.Now()
	outputs, err := sorter.SortLocal(topo, parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDS-Sort grouped the snapshot by halo in %v within a %d-byte/rank budget\n",
		time.Since(start).Round(time.Millisecond), budget)

	// With particles grouped by halo id and halo blocks contiguous
	// across rank boundaries, the mass function is a single pass.
	counts := map[int64]int{}
	var flat []sdssort.Particle
	for _, part := range outputs {
		flat = append(flat, part...)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i-1].ClusterID > flat[i].ClusterID {
			log.Fatal("particles not grouped by halo — this is a bug")
		}
	}
	for _, p := range flat {
		counts[p.ClusterID]++
	}
	fmt.Printf("found %d halos; largest:\n", len(counts))
	for rank, id := range largest(counts, 5) {
		fmt.Printf("  #%d halo %4d: %6d particles (%.2f%%)\n",
			rank+1, id, counts[id], 100*float64(counts[id])/float64(len(flat)))
	}

	// Show the failure mode the paper documents: the same budget with
	// a partition that is not skew-aware (HykSort's, approximated here
	// by a tiny budget on the most loaded rank) is hopeless. We
	// demonstrate with an undersized budget on SDS itself.
	tiny := sdssort.NewSorter[sdssort.Particle](
		sdssort.ParticleCodec(), sdssort.CompareParticles,
		sdssort.MemoryBudget(budget/16))
	if _, err := tiny.SortLocal(topo, parts); err != nil {
		fmt.Printf("undersized budget fails as expected: %v\n", firstLine(err))
	}
}

func firstLine(err error) string {
	s := err.Error()
	for i, c := range s {
		if c == '\n' {
			return s[:i]
		}
	}
	return s
}

// largest returns the ids of the n biggest clusters, descending.
func largest(counts map[int64]int, n int) []int64 {
	ids := make([]int64, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	for i := 0; i < n && i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if counts[ids[j]] > counts[ids[i]] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}
