// TCP cluster: run SDS-Sort across OS processes over the TCP transport
// (the "custom RPC exchange") instead of goroutines in one process.
//
// This launcher forks itself once per rank, so a single command
// demonstrates the distributed configuration end to end:
//
//	go run ./examples/tcpcluster            # 4 ranks over localhost TCP
//	go run ./examples/tcpcluster -ranks 8
//
// For genuinely multi-machine runs, use cmd/sdsnode directly with a
// shared -registry address.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"time"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/comm/tcpcomm"
	"sdssort/internal/core"
	"sdssort/internal/workload"
)

func main() {
	var (
		ranks   = flag.Int("ranks", 4, "number of worker processes")
		perRank = flag.Int("n", 50_000, "records per rank")
		// Internal flags used by the forked children.
		childRank = flag.Int("child-rank", -1, "internal")
		registry  = flag.String("registry", "", "internal")
	)
	flag.Parse()

	if *childRank >= 0 {
		runChild(*childRank, *ranks, *perRank, *registry)
		return
	}

	// Parent: pick a registry port and fork one child per rank.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	fmt.Printf("launching %d worker processes, registry %s\n", *ranks, addr)
	start := time.Now()
	cmds := make([]*exec.Cmd, *ranks)
	for r := 0; r < *ranks; r++ {
		cmd := exec.Command(os.Args[0],
			"-child-rank", fmt.Sprint(r),
			"-ranks", fmt.Sprint(*ranks),
			"-n", fmt.Sprint(*perRank),
			"-registry", addr)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("rank %d failed: %v", r, err)
		}
	}
	fmt.Printf("all %d processes finished in %v\n", *ranks, time.Since(start).Round(time.Millisecond))
}

func runChild(rank, size, perRank int, registry string) {
	tr, err := tcpcomm.New(tcpcomm.Config{
		Rank: rank, Size: size, Node: rank, // one simulated node per process
		Registry: registry, Timeout: 30 * time.Second,
	})
	if err != nil {
		log.Fatalf("rank %d bootstrap: %v", rank, err)
	}
	defer tr.Close()
	c := comm.New(tr)

	data := workload.ZipfKeys(int64(rank+1), perRank, 1.4, workload.DefaultZipfUniverse)
	start := time.Now()
	sorted, err := core.Sort(c, data, codec.Float64{}, cmpF, core.DefaultOptions())
	if err != nil {
		log.Fatalf("rank %d sort: %v", rank, err)
	}
	lo, hi := "-", "-"
	if len(sorted) > 0 {
		lo = fmt.Sprintf("%.0f", sorted[0])
		hi = fmt.Sprintf("%.0f", sorted[len(sorted)-1])
	}
	fmt.Printf("  rank %d: %6d records in value range [%s, %s] after %v\n",
		rank, len(sorted), lo, hi, time.Since(start).Round(time.Millisecond))
	if err := c.Barrier(); err != nil {
		log.Fatalf("rank %d: final barrier: %v", rank, err)
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
