package sdssort

import (
	"errors"
	"math/rand"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sdssort/internal/memlimit"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

func TestSorterSortLocalUniform(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	parts := make([][]float64, topo.Size())
	for r := range parts {
		parts[r] = workload.Uniform(int64(r+1), 500)
	}
	sorter := NewSorter[float64](Float64Codec(), Compare[float64])
	out, err := sorter.SortLocal(topo, parts)
	if err != nil {
		t.Fatal(err)
	}
	var flatIn, flatOut []float64
	for _, p := range parts {
		flatIn = append(flatIn, p...)
	}
	for _, p := range out {
		flatOut = append(flatOut, p...)
	}
	if !slices.IsSorted(flatOut) {
		t.Fatal("not sorted")
	}
	slices.Sort(flatIn)
	if !slices.Equal(flatIn, flatOut) {
		t.Fatal("not a permutation")
	}
}

type rec struct {
	Key float64
	Pos int32
}

func TestSorterStableOption(t *testing.T) {
	cd := recCodec{}
	cmp := func(a, b rec) int { return Compare(a.Key, b.Key) }
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	parts := make([][]rec, topo.Size())
	pos := int32(0)
	rng := rand.New(rand.NewSource(1))
	for r := range parts {
		rows := make([]rec, 300)
		for i := range rows {
			rows[i] = rec{Key: float64(rng.Intn(4)), Pos: pos}
			pos++
		}
		parts[r] = rows
	}
	sorter := NewSorter[rec](cd, cmp, Stable())
	out, err := sorter.SortLocal(topo, parts)
	if err != nil {
		t.Fatal(err)
	}
	var flat []rec
	for _, p := range out {
		flat = append(flat, p...)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i-1].Key > flat[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
		if flat[i-1].Key == flat[i].Key && flat[i-1].Pos > flat[i].Pos {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

// recCodec is a user-defined codec exercising the public Codec surface.
type recCodec struct{}

func (recCodec) Size() int { return 12 }

func (recCodec) Marshal(dst []byte, r rec) {
	Float64Codec().Marshal(dst, r.Key)
	dst[8] = byte(r.Pos)
	dst[9] = byte(r.Pos >> 8)
	dst[10] = byte(r.Pos >> 16)
	dst[11] = byte(r.Pos >> 24)
}

func (recCodec) Unmarshal(src []byte) rec {
	return rec{
		Key: Float64Codec().Unmarshal(src),
		Pos: int32(src[8]) | int32(src[9])<<8 | int32(src[10])<<16 | int32(src[11])<<24,
	}
}

func TestSortStatsReportsPhases(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 1}
	sorter := NewSorter[float64](Float64Codec(), Compare[float64])
	var total atomic.Int64
	err := RunLocal(topo, func(c *Comm) error {
		data := workload.Uniform(int64(c.Rank()), 2000)
		out, stats, err := sorter.SortStats(c, data)
		if err != nil {
			return err
		}
		if stats.Records != len(out) {
			return errors.New("stats.Records mismatch")
		}
		if stats.Phases.Total() <= 0 {
			return errors.New("no phase time recorded")
		}
		total.Add(int64(stats.Records))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 2*2000 {
		t.Fatalf("total records %d", total.Load())
	}
}

func TestMemoryBudgetOption(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 1}
	parts := [][]float64{workload.Uniform(1, 1000), workload.Uniform(2, 1000)}
	sorter := NewSorter[float64](Float64Codec(), Compare[float64], MemoryBudget(64))
	_, err := sorter.SortLocal(topo, parts)
	if !errors.Is(err, memlimit.ErrOutOfMemory) {
		t.Fatalf("got %v, want ErrOutOfMemory", err)
	}
}

func TestOptionSetters(t *testing.T) {
	s := NewSorter[float64](Float64Codec(), Compare[float64],
		Stable(), Cores(4), TauM(1<<20), TauO(7), TauS(9), RunThreshold(12))
	opt := s.options()
	if !opt.Stable || opt.Cores != 4 || opt.TauM != 1<<20 || opt.TauO != 7 || opt.TauS != 9 || opt.RunThreshold != 12 {
		t.Fatalf("options not applied: %+v", opt)
	}
}

func TestSortLocalPadsShortParts(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	parts := [][]float64{{3, 1, 2}} // fewer parts than ranks
	sorter := NewSorter[float64](Float64Codec(), Compare[float64])
	out, err := sorter.SortLocal(topo, parts)
	if err != nil {
		t.Fatal(err)
	}
	var flat []float64
	for _, p := range out {
		flat = append(flat, p...)
	}
	if !slices.Equal(flat, []float64{1, 2, 3}) {
		t.Fatalf("got %v", flat)
	}
}

func TestPTFAndParticleHelpers(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	parts := make([][]PTFRecord, topo.Size())
	for r := range parts {
		parts[r] = workload.PTF(int64(r), 500)
	}
	sorter := NewSorter[PTFRecord](PTFCodec(), ComparePTF)
	out, err := sorter.SortLocal(topo, parts)
	if err != nil {
		t.Fatal(err)
	}
	var flat []PTFRecord
	for _, p := range out {
		flat = append(flat, p...)
	}
	if len(flat) != topo.Size()*500 {
		t.Fatalf("count %d", len(flat))
	}
	for i := 1; i < len(flat); i++ {
		if flat[i-1].Score > flat[i].Score {
			t.Fatal("PTF output not sorted by score")
		}
	}

	pparts := make([][]Particle, topo.Size())
	for r := range pparts {
		pparts[r] = workload.Cosmology(int64(r), 500)
	}
	psorter := NewSorter[Particle](ParticleCodec(), CompareParticles)
	pout, err := psorter.SortLocal(topo, pparts)
	if err != nil {
		t.Fatal(err)
	}
	var pflat []Particle
	for _, p := range pout {
		pflat = append(pflat, p...)
	}
	for i := 1; i < len(pflat); i++ {
		if pflat[i-1].ClusterID > pflat[i].ClusterID {
			t.Fatal("particles not sorted by cluster id")
		}
	}
}

func TestCompareHelper(t *testing.T) {
	if Compare(1, 2) != -1 || Compare(2, 1) != 1 || Compare(3, 3) != 0 {
		t.Fatal("int compare")
	}
	if Compare("a", "b") != -1 {
		t.Fatal("string compare")
	}
	if Compare(1.5, 1.5) != 0 {
		t.Fatal("float compare")
	}
}

func TestPhaseTimesTotal(t *testing.T) {
	pt := PhaseTimes{PivotSelection: 1, Exchange: 2, LocalOrdering: 3, Other: 4}
	if pt.Total() != 10 {
		t.Fatal("total")
	}
}

func TestSortLocalStats(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	parts := make([][]float64, topo.Size())
	for r := range parts {
		parts[r] = workload.ZipfKeys(int64(r+1), 800, 1.4, workload.DefaultZipfUniverse)
	}
	sorter := NewSorter[float64](Float64Codec(), Compare[float64])
	out, stats, err := sorter.SortLocalStats(topo, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerRank) != topo.Size() {
		t.Fatalf("%d per-rank stats", len(stats.PerRank))
	}
	total := 0
	for r, st := range stats.PerRank {
		if st.Records != len(out[r]) {
			t.Fatalf("rank %d stats.Records=%d, output %d", r, st.Records, len(out[r]))
		}
		total += st.Records
	}
	if total != topo.Size()*800 {
		t.Fatalf("total %d", total)
	}
	if stats.RDFA < 1 || stats.RDFA > 4 {
		t.Fatalf("RDFA %v outside the Theorem-1 envelope", stats.RDFA)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestTraceJSONOption(t *testing.T) {
	var buf syncBuffer
	topo := Topology{Nodes: 2, CoresPerNode: 1}
	sorter := NewSorter[float64](Float64Codec(), Compare[float64], TraceJSON(&buf))
	if _, err := sorter.SortLocal(topo, [][]float64{{2, 1}, {4, 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sort.start") {
		t.Fatalf("trace missing events: %q", buf.String())
	}
}

// syncBuffer is a minimal concurrency-safe writer for the trace test.
type syncBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf)
}

func TestExternalSortFile(t *testing.T) {
	dir := t.TempDir()
	in := dir + "/in.f64"
	out := dir + "/out.f64"
	keys := workload.ZipfKeys(11, 20000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codecFloat{}, keys); err != nil {
		t.Fatal(err)
	}
	if err := ExternalSortFile[float64](in, out, Float64Codec(), Compare[float64], 3000, false); err != nil {
		t.Fatal(err)
	}
	got, err := recordio.ReadFile(out, codecFloat{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("external sort mismatch")
	}
}

// codecFloat mirrors the internal float codec for test-side file IO.
type codecFloat struct{}

func (codecFloat) Size() int { return 8 }

func (codecFloat) Marshal(dst []byte, v float64) { Float64Codec().Marshal(dst, v) }

func (codecFloat) Unmarshal(src []byte) float64 { return Float64Codec().Unmarshal(src) }
