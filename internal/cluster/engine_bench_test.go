package cluster

import (
	"fmt"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/engine"
	"sdssort/internal/engine/sortjob"
	"sdssort/internal/memlimit"
	"sdssort/internal/workload"
)

func cmpB(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func benchParts(data []float64, ranks int) [][]float64 {
	out := make([][]float64, ranks)
	per := len(data) / ranks
	for r := 0; r < ranks; r++ {
		lo, hi := r*per, (r+1)*per
		if r == ranks-1 {
			hi = len(data)
		}
		out[r] = data[lo:hi]
	}
	return out
}

// TestRunEngine drives the launcher-level entry point: several jobs —
// sequential and concurrent — over one RunEngine fabric, with the
// shared gauge drained at the end (RunEngine itself asserts that).
func TestRunEngine(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	gauge := memlimit.New(32 << 20)
	data := workload.Uniform(9, 4000)
	parts := benchParts(data, topo.Size())
	err := RunEngine(topo, Options{Mem: gauge}, func(e *engine.Engine) error {
		var jobs []*sortjob.Job[float64]
		for i := 0; i < 3; i++ {
			j, err := sortjob.Submit(e, engine.JobSpec{Name: fmt.Sprintf("re%d", i), Footprint: 8 << 20},
				core.DefaultOptions(), parts, codec.Float64{}, cmpB)
			if err != nil {
				return err
			}
			jobs = append(jobs, j)
		}
		for _, j := range jobs {
			out, err := j.Output()
			if err != nil {
				return err
			}
			total := 0
			for _, blk := range out {
				total += len(blk)
			}
			if total != len(data) {
				return fmt.Errorf("job %d: %d records, want %d", j.ID(), total, len(data))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if used := gauge.Used(); used != 0 {
		t.Fatalf("gauge holds %d bytes after RunEngine", used)
	}
}

// BenchmarkEngineWarmFabric prices the tentpole claim: back-to-back
// jobs on a persistent engine (one fabric, one worker pool, reused for
// every job) against a fresh cluster.Run per job (fabric built and torn
// down every time, one goroutine per rank respawned). Both run the
// identical sort; the warm/iter metric is the proof the engine path
// never respawns — it stays at Size() worker spawns total no matter
// how many iterations the harness runs, while the cold path's
// goroutines/iter stays at Size() per job.
func BenchmarkEngineWarmFabric(b *testing.B) {
	const (
		nodes = 2
		cores = 2
		n     = 20_000
	)
	topo := Topology{Nodes: nodes, CoresPerNode: cores}
	ranks := topo.Size()
	data := workload.ZipfKeys(42, n, 1.4, workload.DefaultZipfUniverse)
	parts := benchParts(data, ranks)

	b.Run(fmt.Sprintf("warm-engine/p=%d/n=%d", ranks, n), func(b *testing.B) {
		world, err := comm.NewWorld(ranks, comm.BlockNodes(ranks, cores))
		if err != nil {
			b.Fatal(err)
		}
		defer world.Close()
		e := engine.New(world, engine.Options{})
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := sortjob.Submit(e, engine.JobSpec{},
				core.DefaultOptions(), parts, codec.Float64{}, cmpB)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := j.Output(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Spawns amortise to ~0 per job: the pool from job one served
		// every iteration.
		b.ReportMetric(float64(e.WorkerSpawns())/float64(b.N), "spawns/job")
	})

	b.Run(fmt.Sprintf("cold-cluster/p=%d/n=%d", ranks, n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			err := Run(topo, func(c *comm.Comm) error {
				local := append([]float64(nil), parts[c.Rank()]...)
				_, err := core.Sort(c, local, codec.Float64{}, cmpB, core.DefaultOptions())
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Every iteration built a fabric and spawned Size() goroutines.
		b.ReportMetric(float64(ranks), "spawns/job")
	})
}
