// Package cluster launches in-process "clusters": p ranks as goroutines
// over a comm.World fabric, grouped into simulated nodes of c cores
// each. It is the stand-in for the MPI job launcher (aprun/srun) on the
// paper's Cray XC30 testbed.
package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"sdssort/internal/comm"
)

// Topology describes the simulated machine shape.
type Topology struct {
	// Nodes is the number of simulated compute nodes.
	Nodes int
	// CoresPerNode is the number of ranks placed on each node. The
	// paper's Edison nodes have 24; laptop-scale runs typically use
	// 2-8.
	CoresPerNode int
}

// Size returns the total rank count.
func (t Topology) Size() int { return t.Nodes * t.CoresPerNode }

// Validate reports whether the topology is runnable.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.CoresPerNode <= 0 {
		return fmt.Errorf("cluster: topology %d nodes × %d cores must be positive", t.Nodes, t.CoresPerNode)
	}
	return nil
}

// Options configures a launch beyond the topology.
type Options struct {
	// WrapTransport, when non-nil, decorates each rank's transport
	// before the communicator is built — used to layer the simnet
	// network-cost model under the algorithms.
	WrapTransport func(comm.Transport) comm.Transport
}

// Run launches one goroutine per rank, each receiving the world
// communicator for an in-process fabric shaped like topo, and waits for
// all of them. If any rank returns an error the fabric is shut down so
// the remaining ranks unblock, and the per-rank errors are joined.
func Run(topo Topology, fn func(c *comm.Comm) error) error {
	return RunOpts(topo, Options{}, fn)
}

// RunOpts is Run with launch options.
func RunOpts(topo Topology, opts Options, fn func(c *comm.Comm) error) error {
	if err := topo.Validate(); err != nil {
		return err
	}
	size := topo.Size()
	world, err := comm.NewWorld(size, comm.BlockNodes(size, topo.CoresPerNode))
	if err != nil {
		return err
	}
	defer world.Close()

	errs := make([]error, size)
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			// A panicking rank must not take the whole process down:
			// convert it to a rank error and unblock the peers, the
			// way an MPI job launcher reports a crashed rank.
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("rank %d: panic: %v", rank, p)
					once.Do(func() { world.Close() })
				}
			}()
			tr := comm.Transport(world.Transport(rank))
			if opts.WrapTransport != nil {
				tr = opts.WrapTransport(tr)
			}
			c := comm.New(tr)
			if err := fn(c); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				// Tear the fabric down so ranks blocked in
				// collectives with this one fail fast instead
				// of deadlocking the launch.
				once.Do(func() { world.Close() })
			}
		}(r)
	}
	wg.Wait()

	var nonNil []error
	for _, e := range errs {
		if e != nil {
			nonNil = append(nonNil, e)
		}
	}
	return errors.Join(nonNil...)
}

// Report renders the joined error from Run/RunOpts as a per-rank
// failure report, flagging ranks that abandoned a peer after
// exhausting their retry budget (comm.ErrPeerLost). It is what
// launchers print when a distributed sort degrades instead of
// deadlocking.
func Report(err error) string {
	if err == nil {
		return "cluster: all ranks completed"
	}
	var b strings.Builder
	b.WriteString("cluster: failed ranks:")
	for _, e := range flatten(err) {
		if r, ok := comm.PeerLost(e); ok {
			fmt.Fprintf(&b, "\n  %v [gave up on peer rank %d]", e, r)
		} else {
			fmt.Fprintf(&b, "\n  %v", e)
		}
	}
	return b.String()
}

// flatten splits an errors.Join result into its members (or wraps a
// plain error in a singleton slice).
func flatten(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// Gather runs fn on a cluster and collects each rank's result value,
// indexed by rank. It fails like RunOpts does.
func Gather[T any](topo Topology, opts Options, fn func(c *comm.Comm) (T, error)) ([]T, error) {
	out := make([]T, topo.Size())
	err := RunOpts(topo, opts, func(c *comm.Comm) error {
		v, err := fn(c)
		if err != nil {
			return err
		}
		out[c.Rank()] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
