// Package cluster launches in-process "clusters": p ranks as goroutines
// over a comm.World fabric, grouped into simulated nodes of c cores
// each. It is the stand-in for the MPI job launcher (aprun/srun) on the
// paper's Cray XC30 testbed.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sdssort/internal/checkpoint"
	"sdssort/internal/comm"
	"sdssort/internal/engine"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/telemetry"
	"sdssort/internal/trace"
)

// Topology describes the simulated machine shape.
type Topology struct {
	// Nodes is the number of simulated compute nodes.
	Nodes int
	// CoresPerNode is the number of ranks placed on each node. The
	// paper's Edison nodes have 24; laptop-scale runs typically use
	// 2-8.
	CoresPerNode int
}

// Size returns the total rank count.
func (t Topology) Size() int { return t.Nodes * t.CoresPerNode }

// Validate reports whether the topology is runnable.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.CoresPerNode <= 0 {
		return fmt.Errorf("cluster: topology %d nodes × %d cores must be positive", t.Nodes, t.CoresPerNode)
	}
	return nil
}

// Options configures a launch beyond the topology.
type Options struct {
	// WrapTransport, when non-nil, decorates each rank's transport
	// before the communicator is built — used to layer the simnet
	// network-cost model under the algorithms.
	WrapTransport func(comm.Transport) comm.Transport
	// MaxRestarts bounds how many recovery epochs RunSupervised may
	// start after the initial attempt. 0 means fail on the first loss
	// (plain Run semantics).
	MaxRestarts int
	// Trace, when non-nil, receives supervisor events
	// (supervisor.restart / supervisor.giveup / supervisor.done) at
	// rank -1 alongside whatever the job itself emits.
	Trace trace.Tracer
	// Recovery, when non-nil, accumulates restart and lost-rank
	// counters across the supervised run.
	Recovery *metrics.RecoveryStats
	// Mem, when non-nil, is the memory gauge the job reserves against
	// (typically the same one passed to core.Options.Mem). After a
	// fully successful epoch the launcher asserts it has drained back
	// to zero, turning a reservation leak into a loud failure instead
	// of an eventual spurious out-of-memory in a long-lived process.
	Mem *memlimit.Gauge
	// Telemetry, when non-nil, gets this launch's collectors registered
	// on it: RunEngine registers the engine's job life-cycle series and
	// (when Mem is set) the admission gauge. Use a fresh registry per
	// launch — series registration is once-only.
	Telemetry *telemetry.Registry
	// Shrink configures degraded-mode resume for RunSupervised: instead
	// of relaunching the full world after a lost rank, keep the
	// survivors and continue on a world of size p−k.
	Shrink ShrinkPolicy
}

// ShrinkPolicy lets RunSupervised heal a recoverable failure in place:
// when the lost ranks can be identified and enough survivors remain,
// the supervisor redistributes the dead ranks' checkpointed shards over
// the survivors (via the Redistribute hook) and starts the next epoch
// as a degraded world of the surviving size, rather than tearing
// everything down and relaunching at full size. Shrink epochs and
// relaunch epochs draw from the same MaxRestarts budget.
type ShrinkPolicy struct {
	// Enabled turns degraded-mode resume on.
	Enabled bool
	// MinRanks floors the shrunken world size; a failure that would
	// leave fewer survivors falls back to a full relaunch. Values below
	// 2 are treated as 2 — a 1-rank "world" is not a distributed sort.
	MinRanks int
	// Redistribute rebuilds the checkpoint cut for the surviving world,
	// typically by scanning the failed world's store and calling
	// checkpoint.Redistribute with the job's codec and comparator. lost
	// holds the failed world's comm ranks that died, oldSize that
	// world's size, and newEpoch the epoch number the degraded attempt
	// will run as (snapshot the new cut under it). Returning an error —
	// a second loss tearing a survivor's snapshot mid-redistribution
	// lands here — aborts the shrink; the supervisor falls back to the
	// relaunch path, whose full-size store still sees the old cut
	// because redistributed manifests carry the shrunken world size.
	Redistribute func(lost []int, oldSize, newEpoch int) (checkpoint.Cut, error)
}

// Run launches one goroutine per rank, each receiving the world
// communicator for an in-process fabric shaped like topo, and waits for
// all of them. If any rank returns an error the fabric is shut down so
// the remaining ranks unblock, and the per-rank errors are joined.
func Run(topo Topology, fn func(c *comm.Comm) error) error {
	return RunOpts(topo, Options{}, fn)
}

// RunOpts is Run with launch options.
func RunOpts(topo Topology, opts Options, fn func(c *comm.Comm) error) error {
	return launch(topo, opts, "world", fn)
}

// PanicError is the typed rank failure a recovered panic becomes, so
// supervisors can treat a crashed rank like a lost one (errors.As).
type PanicError struct {
	Rank  int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("rank %d: panic: %v", e.Rank, e.Value)
}

// launch builds a fresh fabric named name, runs one goroutine per rank
// and joins their errors. Each supervised epoch gets its own launch —
// fabric, transports and communicator are never reused across epochs.
func launch(topo Topology, opts Options, name string, fn func(c *comm.Comm) error) error {
	if err := topo.Validate(); err != nil {
		return err
	}
	return launchSized(topo.Size(), topo.CoresPerNode, opts, name, fn)
}

// launchSized is launch for an explicit rank count, which need not be a
// multiple of the node width — a degraded world of p−k ranks keeps the
// original cores-per-node packing with a partially filled last node.
func launchSized(size, coresPerNode int, opts Options, name string, fn func(c *comm.Comm) error) error {
	world, err := comm.NewWorld(size, comm.BlockNodes(size, coresPerNode))
	if err != nil {
		return err
	}
	defer world.Close()

	errs := make([]error, size)
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(rank int) {
			defer wg.Done()
			// A panicking rank must not take the whole process down:
			// convert it to a rank error and unblock the peers, the
			// way an MPI job launcher reports a crashed rank.
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = &PanicError{Rank: rank, Value: p}
					once.Do(func() { world.Close() })
				}
			}()
			tr := comm.Transport(world.Transport(rank))
			if opts.WrapTransport != nil {
				tr = opts.WrapTransport(tr)
			}
			c := comm.NewNamed(tr, name)
			if err := fn(c); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				// Tear the fabric down so ranks blocked in
				// collectives with this one fail fast instead
				// of deadlocking the launch.
				once.Do(func() { world.Close() })
			}
		}(r)
	}
	wg.Wait()

	var nonNil []error
	for _, e := range errs {
		if e != nil {
			nonNil = append(nonNil, e)
		}
	}
	if len(nonNil) == 0 && opts.Mem != nil {
		if used := opts.Mem.Used(); used != 0 {
			return fmt.Errorf("cluster: memory gauge holds %d bytes after a successful run (reservation leak)", used)
		}
	}
	return errors.Join(nonNil...)
}

// RunEngine builds an in-process fabric shaped like topo and hosts a
// persistent job engine over it: where Run pays fabric construction for
// one sort and tears everything down, RunEngine keeps transports and
// rank workers warm so fn can submit any number of jobs — sequentially
// or concurrently — against the same fabric. opts.Mem becomes the
// engine's shared admission gauge and, as in RunOpts, is asserted to
// have drained back to zero once the engine is closed; opts.Trace
// receives the engine's life-cycle events at rank -1.
//
// The engine is drained and closed before RunEngine returns, even when
// fn errors: jobs already submitted run to completion.
func RunEngine(topo Topology, opts Options, fn func(e *engine.Engine) error) error {
	if err := topo.Validate(); err != nil {
		return err
	}
	size := topo.Size()
	world, err := comm.NewWorld(size, comm.BlockNodes(size, topo.CoresPerNode))
	if err != nil {
		return err
	}
	defer world.Close()
	eng := engine.New(world, engine.Options{
		Mem:           opts.Mem,
		WrapTransport: opts.WrapTransport,
		Trace:         opts.Trace,
	})
	if opts.Telemetry != nil {
		eng.RegisterMetrics(opts.Telemetry)
		if opts.Mem != nil {
			telemetry.RegisterMem(opts.Telemetry, opts.Mem)
		}
	}
	fnErr := fn(eng)
	closeErr := eng.Close()
	if fnErr == nil && closeErr == nil && opts.Mem != nil {
		if used := opts.Mem.Used(); used != 0 {
			return fmt.Errorf("cluster: memory gauge holds %d bytes after the engine drained (reservation leak)", used)
		}
	}
	return errors.Join(fnErr, closeErr)
}

// Epoch identifies one supervised attempt. N is 0 for the initial run
// and increments on every recovery epoch — full relaunch or degraded
// resume alike; the job function typically feeds it to the checkpoint
// layer so each attempt snapshots under its own epoch number.
type Epoch struct {
	N int
	// Degraded marks an attempt running on a shrunken world: the
	// communicator spans only the previous world's survivors,
	// renumbered 0..size-1, and the job must resume from Resume rather
	// than agreeing on a cut itself (the full-size cuts in the store do
	// not match this world).
	Degraded bool
	// Resume is the redistributed cut a degraded attempt restarts from;
	// zero for full-world attempts.
	Resume checkpoint.Cut
	// Lost holds the previous world's comm ranks that died, for
	// logging; empty for full-world attempts.
	Lost []int
}

// Recoverable reports whether err is worth a restart: at least one
// member of the (possibly joined) error is a lost peer or a rank
// panic. Deterministic failures — bad input, a codec mismatch, a local
// I/O error — are not recoverable; restarting would repeat them.
func Recoverable(err error) bool {
	for _, e := range flatten(err) {
		if _, ok := comm.PeerLost(e); ok {
			return true
		}
		var pe *PanicError
		if errors.As(e, &pe) {
			return true
		}
	}
	return false
}

// RunSupervised launches fn like RunOpts and, when the attempt dies of
// a recoverable failure (comm.ErrPeerLost or a rank panic), starts a
// new recovery epoch, up to opts.MaxRestarts of them. Each epoch's
// world has a distinct communicator name ("world", "world@e1", ...), so
// frames from a dead epoch can never be delivered into a live one.
//
// With opts.Shrink enabled the supervisor prefers healing in place: if
// the failed epoch's lost ranks can be identified from its error and
// enough survivors remain, it calls Shrink.Redistribute to re-cut the
// checkpoints for the surviving world and runs the next epoch degraded
// — size p−k, ranks renumbered, Epoch.Degraded set, resuming from the
// redistributed cut. A shrink that cannot proceed (no policy, too few
// survivors, unidentifiable loss, or Redistribute failing — e.g. a
// cascading second loss mid-redistribution) falls back to relaunching
// the full-size world, which resumes from the old full-size cut.
// Shrinks and relaunches draw from the same MaxRestarts budget and are
// distinguished in trace events (supervisor.shrink / .shrink_fallback /
// .restart) and in opts.Recovery.
//
// fn is re-invoked from the top each epoch; resuming mid-sort instead
// of recomputing is the job's business (core.Options.Checkpoint). When
// the budget is exhausted the last error is returned wrapped in a
// budget message — still matching comm.PeerLost / errors.As — and a
// non-recoverable error is returned as-is immediately.
func RunSupervised(topo Topology, opts Options, fn func(ep Epoch, c *comm.Comm) error) error {
	if err := topo.Validate(); err != nil {
		return err
	}
	tr := opts.Trace
	if tr == nil {
		tr = trace.Nop{}
	}
	minRanks := opts.Shrink.MinRanks
	if minRanks < 2 {
		minRanks = 2
	}
	size := topo.Size()
	var cur Epoch
	for ep := 0; ; ep++ {
		cur.N = ep
		name := worldName(ep, cur.Degraded, size)
		// One span per supervised epoch, at rank -1: the timeline shows
		// each attempt as a slice on the control row, annotated with the
		// world it ran and how it ended (ok / shrink / restart / giveup).
		esp := trace.StartSpan(tr, -1, trace.Scope{Trace: name}, "epoch", map[string]any{
			"epoch": ep, "world": size, "degraded": cur.Degraded,
		})
		err := launchSized(size, topo.CoresPerNode, opts, name, func(c *comm.Comm) error {
			return fn(cur, c)
		})
		if err == nil {
			esp.End(map[string]any{"outcome": "ok"})
			if ep > 0 {
				tr.Emit(-1, "supervisor.done", map[string]any{
					"epochs": ep + 1, "degraded": cur.Degraded, "world": size,
				})
			}
			return nil
		}
		esp.End(map[string]any{"outcome": "error", "error": err.Error()})
		if !Recoverable(err) {
			return err
		}
		for _, e := range flatten(err) {
			if _, ok := comm.PeerLost(e); ok {
				opts.Recovery.PeerLost()
			}
			var pe *PanicError
			if errors.As(e, &pe) {
				opts.Recovery.RankPanic()
			}
		}
		if ep >= opts.MaxRestarts {
			tr.Emit(-1, "supervisor.giveup", map[string]any{
				"epoch": ep, "max_restarts": opts.MaxRestarts, "error": err.Error(),
			})
			return fmt.Errorf("cluster: restart budget %d exhausted: %w", opts.MaxRestarts, err)
		}
		lost := lostRanks(err, size)
		if next, ok := tryShrink(opts, tr, size, lost, ep+1); ok {
			size -= len(lost)
			cur = next
			continue
		}
		// Full relaunch of the original world — the pre-shrink path,
		// and the fallback when a shrink cannot proceed.
		size = topo.Size()
		cur = Epoch{}
		opts.Recovery.Restart()
		tr.Emit(-1, "supervisor.restart", map[string]any{
			"epoch": ep + 1, "error": err.Error(),
		})
	}
}

// worldName names one epoch's world. Degraded worlds carry their size
// too: a shrunken world renumbers ranks, so its frames must be
// undeliverable even into a same-epoch full world.
func worldName(ep int, degraded bool, size int) string {
	if ep == 0 {
		return "world"
	}
	if degraded {
		return fmt.Sprintf("world@e%ds%d", ep, size)
	}
	return fmt.Sprintf("world@e%d", ep)
}

// lostRanks extracts the dead ranks a failed epoch's error identifies:
// the ranks named by ErrPeerLost (a killed rank's own operations and
// its peers' abandoned retries both name it) and by rank panics.
// Survivors unblocked by the fabric teardown report plain closed-comm
// errors and are not counted.
func lostRanks(err error, size int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(r int) {
		if r >= 0 && r < size && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, e := range flatten(err) {
		if r, ok := comm.PeerLost(e); ok {
			add(r)
		}
		var pe *PanicError
		if errors.As(e, &pe) {
			add(pe.Rank)
		}
	}
	sort.Ints(out)
	return out
}

// tryShrink decides whether the next epoch may run degraded and, if so,
// redistributes the checkpoints and builds its Epoch descriptor.
func tryShrink(opts Options, tr trace.Tracer, size int, lost []int, newEpoch int) (Epoch, bool) {
	p := opts.Shrink
	if !p.Enabled || p.Redistribute == nil {
		return Epoch{}, false
	}
	minRanks := p.MinRanks
	if minRanks < 2 {
		minRanks = 2
	}
	if len(lost) == 0 || size-len(lost) < minRanks {
		return Epoch{}, false
	}
	cut, err := p.Redistribute(lost, size, newEpoch)
	if err != nil || cut.Phase == checkpoint.PhaseNone {
		reason := "no consistent cut"
		if err != nil {
			reason = err.Error()
		}
		tr.Emit(-1, "supervisor.shrink_fallback", map[string]any{
			"epoch": newEpoch, "lost": lost, "reason": reason,
		})
		return Epoch{}, false
	}
	opts.Recovery.Shrink(len(lost))
	tr.Emit(-1, "supervisor.shrink", map[string]any{
		"epoch": newEpoch, "lost": lost, "world": size - len(lost),
		"resume_epoch": cut.Epoch, "resume_phase": cut.Phase.String(),
	})
	return Epoch{Degraded: true, Resume: cut, Lost: lost}, true
}

// Reform re-forms a fenced world over the survivors of a live
// transport — the distributed analogue of a degraded relaunch, without
// tearing the fabric down: connections between survivors stay up and
// only the message context changes. Every survivor calls Reform with
// the same name and its own view of the survivor set (world ranks,
// ascending, including itself) and gets back a communicator spanning
// exactly those ranks, renumbered in group order.
//
// The returned world is verified with a bounded barrier. Because the
// member list is folded into the message context (comm.AttachGroup),
// survivors that disagree on who died can never reach each other's
// barrier — the disagreement, or a listed survivor that is actually
// dead, surfaces as a timeout here rather than as a hang or a
// wrong-world delivery. On timeout the caller should fall back to the
// relaunch path. timeout <= 0 defaults to 5s.
func Reform(tr comm.Transport, name string, survivors []int, timeout time.Duration) (*comm.Comm, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := comm.AttachGroup(tr, name, survivors)
	if err != nil {
		return nil, fmt.Errorf("cluster: reform: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Barrier() }()
	select {
	case err := <-done:
		if err != nil {
			return nil, fmt.Errorf("cluster: reform barrier: %w", err)
		}
		return c, nil
	case <-time.After(timeout):
		// The barrier goroutine stays parked in a receive; the caller is
		// abandoning this world anyway (relaunch or exit).
		return nil, fmt.Errorf("cluster: reform of %q timed out after %v: survivors disagree on membership or a listed survivor is dead", name, timeout)
	}
}

// Report renders the joined error from Run/RunOpts as a per-rank
// failure report, flagging ranks that abandoned a peer after
// exhausting their retry budget (comm.ErrPeerLost). It is what
// launchers print when a distributed sort degrades instead of
// deadlocking.
func Report(err error) string {
	if err == nil {
		return "cluster: all ranks completed"
	}
	var b strings.Builder
	b.WriteString("cluster: failed ranks:")
	for _, e := range flatten(err) {
		if r, ok := comm.PeerLost(e); ok {
			fmt.Fprintf(&b, "\n  %v [gave up on peer rank %d]", e, r)
		} else {
			fmt.Fprintf(&b, "\n  %v", e)
		}
	}
	return b.String()
}

// flatten splits an errors.Join result into its members (or wraps a
// plain error in a singleton slice).
func flatten(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// Gather runs fn on a cluster and collects each rank's result value,
// indexed by rank. It fails like RunOpts does.
func Gather[T any](topo Topology, opts Options, fn func(c *comm.Comm) (T, error)) ([]T, error) {
	out := make([]T, topo.Size())
	err := RunOpts(topo, opts, func(c *comm.Comm) error {
		v, err := fn(c)
		if err != nil {
			return err
		}
		out[c.Rank()] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
