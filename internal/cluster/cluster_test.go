package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sdssort/internal/comm"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
)

func TestRunAllRanksExecute(t *testing.T) {
	var count atomic.Int32
	topo := Topology{Nodes: 3, CoresPerNode: 2}
	err := Run(topo, func(c *comm.Comm) error {
		count.Add(1)
		if c.Size() != 6 {
			return fmt.Errorf("size %d", c.Size())
		}
		if want := c.Rank() / 2; c.Node() != want {
			return fmt.Errorf("rank %d on node %d, want %d", c.Rank(), c.Node(), want)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 6 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunPropagatesRankErrors(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 1}
	sentinel := errors.New("rank failure")
	err := Run(topo, func(c *comm.Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		// Rank 0 blocks on a receive that will never come; the
		// launcher must unblock it by closing the fabric.
		_, err := c.Recv(1, 0)
		if err == nil {
			return errors.New("expected closed-fabric error")
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error lacks rank attribution: %v", err)
	}
}

func TestRunInvalidTopology(t *testing.T) {
	if err := Run(Topology{}, func(c *comm.Comm) error { return nil }); err == nil {
		t.Fatal("zero topology accepted")
	}
	if err := Run(Topology{Nodes: -1, CoresPerNode: 2}, func(c *comm.Comm) error { return nil }); err == nil {
		t.Fatal("negative topology accepted")
	}
}

func TestGatherCollectsByRank(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	out, err := Gather(topo, Options{}, func(c *comm.Comm) (int, error) {
		return c.Rank() * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range out {
		if v != r*10 {
			t.Fatalf("out[%d]=%d", r, v)
		}
	}
}

func TestGatherError(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 1}
	_, err := Gather(topo, Options{}, func(c *comm.Comm) (int, error) {
		if c.Rank() == 0 {
			return 0, errors.New("boom")
		}
		return 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

// wrapCount verifies the transport decoration hook fires once per rank.
func TestRunOptsWrapTransport(t *testing.T) {
	var wraps atomic.Int32
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	err := RunOpts(topo, Options{
		WrapTransport: func(tr comm.Transport) comm.Transport {
			wraps.Add(1)
			return tr
		},
	}, func(c *comm.Comm) error { return c.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	if wraps.Load() != 4 {
		t.Fatalf("wrapped %d transports", wraps.Load())
	}
}

func TestTopologySize(t *testing.T) {
	if (Topology{Nodes: 3, CoresPerNode: 4}).Size() != 12 {
		t.Fatal("size")
	}
}

func TestRunRecoversRankPanic(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 1}
	err := Run(topo, func(c *comm.Comm) error {
		if c.Rank() == 1 {
			panic("rank blew up")
		}
		// Rank 0 blocks; the panicking rank's cleanup must unblock it.
		_, rerr := c.Recv(1, 0)
		if rerr == nil {
			return errors.New("expected closed-fabric error")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panic: rank blew up") {
		t.Fatalf("got %v", err)
	}
}

// faultySend decorates a transport so every send from selected ranks
// fails transiently — the minimal stand-in for a dead network path.
type faultySend struct {
	comm.Transport
	fail bool
}

func (f *faultySend) Send(dst int, ctx uint64, tag int32, data []byte) error {
	if f.fail {
		return comm.Transient(errors.New("cluster_test: injected send failure"))
	}
	return f.Transport.Send(dst, ctx, tag, data)
}

// TestFaultPeerLostPropagatesThroughRun: when one rank's sends all fail
// and the retry budget runs out, RunOpts must return a joined error
// carrying comm.ErrPeerLost — and the fabric teardown must unblock the
// healthy ranks instead of deadlocking the launch.
func TestFaultPeerLostPropagatesThroughRun(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	policy := comm.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}
	opts := Options{
		WrapTransport: func(tr comm.Transport) comm.Transport {
			return comm.WithRetry(&faultySend{Transport: tr, fail: tr.Rank() == 1}, policy)
		},
	}
	done := make(chan error, 1)
	go func() {
		done <- RunOpts(topo, opts, func(c *comm.Comm) error { return c.Barrier() })
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("launch still blocked — lost peer deadlocked the cluster")
	}
	if err == nil {
		t.Fatal("launch succeeded with rank 1's sends failing")
	}
	if _, ok := comm.PeerLost(err); !ok {
		t.Fatalf("want comm.ErrPeerLost in the joined error, got: %v", err)
	}
	report := Report(err)
	if !strings.Contains(report, "gave up on peer rank") {
		t.Fatalf("report does not flag the lost peer:\n%s", report)
	}
}

func TestReportNilAndPlainErrors(t *testing.T) {
	if got := Report(nil); !strings.Contains(got, "all ranks completed") {
		t.Fatalf("nil report: %q", got)
	}
	plain := errors.New("rank 3: something else")
	if got := Report(plain); !strings.Contains(got, "something else") {
		t.Fatalf("plain report: %q", got)
	}
}

func TestRunSupervisedRecoversPanicWithOneRestart(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 2}
	rec := trace.NewRecorder()
	var stats metrics.RecoveryStats
	var attempts atomic.Int32
	err := RunSupervised(topo, Options{MaxRestarts: 2, Trace: rec, Recovery: &stats},
		func(ep Epoch, c *comm.Comm) error {
			if c.Rank() == 0 {
				attempts.Add(1)
			}
			if ep.N == 0 && c.Rank() == 1 {
				panic("injected crash")
			}
			return c.Barrier()
		})
	if err != nil {
		t.Fatalf("supervised run did not recover: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("ran %d epochs, want 2", got)
	}
	snap := stats.Snapshot()
	if snap.Restarts != 1 || snap.RankPanics != 1 {
		t.Fatalf("recovery stats %+v", snap)
	}
	var kinds []string
	for _, e := range rec.Events() {
		kinds = append(kinds, e.Kind)
	}
	// Each supervised attempt is wrapped in an "epoch" span: the failed
	// epoch 0 closes before the restart marker, the succeeding epoch 1
	// before the done marker.
	want := []string{
		"span.begin", "span.end", "supervisor.restart",
		"span.begin", "span.end", "supervisor.done",
	}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("trace kinds %v, want %v", kinds, want)
	}
	spans := trace.BuildSpans(rec.Events())
	if len(spans) != 2 || spans[0].Name != "epoch" || spans[1].Name != "epoch" {
		t.Fatalf("spans %+v, want two epoch spans", spans)
	}
	if spans[0].Detail["outcome"] != "error" || spans[1].Detail["outcome"] != "ok" {
		t.Fatalf("epoch outcomes %v / %v, want error then ok",
			spans[0].Detail["outcome"], spans[1].Detail["outcome"])
	}
}

func TestRunSupervisedDoesNotRetryDeterministicErrors(t *testing.T) {
	topo := Topology{Nodes: 1, CoresPerNode: 2}
	sentinel := errors.New("bad input file")
	var attempts atomic.Int32
	var stats metrics.RecoveryStats
	err := RunSupervised(topo, Options{MaxRestarts: 5, Recovery: &stats},
		func(ep Epoch, c *comm.Comm) error {
			if c.Rank() == 0 {
				attempts.Add(1)
			}
			return sentinel
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("deterministic error charged to the restart budget: %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("deterministic failure retried %d times", attempts.Load())
	}
	if stats.Snapshot().Restarts != 0 {
		t.Fatal("restart counted for a non-recoverable failure")
	}
}

func TestRunSupervisedBudgetExhaustedStaysTyped(t *testing.T) {
	topo := Topology{Nodes: 2, CoresPerNode: 1}
	policy := comm.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}
	var stats metrics.RecoveryStats
	err := RunSupervised(topo, Options{
		MaxRestarts: 1,
		Recovery:    &stats,
		WrapTransport: func(tr comm.Transport) comm.Transport {
			// Rank 1's sends fail in every epoch: the restart budget
			// cannot save this job.
			return comm.WithRetry(&faultySend{Transport: tr, fail: tr.Rank() == 1}, policy)
		},
	}, func(ep Epoch, c *comm.Comm) error { return c.Barrier() })
	if err == nil {
		t.Fatal("run succeeded with a permanently dead rank")
	}
	if !strings.Contains(err.Error(), "restart budget 1 exhausted") {
		t.Fatalf("missing budget context: %v", err)
	}
	if _, ok := comm.PeerLost(err); !ok {
		t.Fatalf("budget-exhausted error no longer matches comm.ErrPeerLost: %v", err)
	}
	snap := stats.Snapshot()
	if snap.Restarts != 1 || snap.PeersLost == 0 {
		t.Fatalf("recovery stats %+v", snap)
	}
}

// TestFaultPeerLostUnblocksAllRanksNoLeak asserts the teardown contract
// behind supervised restarts: when ErrPeerLost fires inside a
// collective, every rank's goroutine must exit — a supervisor that
// relaunches epochs over leaked goroutines would accumulate them
// without bound.
func TestFaultPeerLostUnblocksAllRanksNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	topo := Topology{Nodes: 2, CoresPerNode: 4}
	policy := comm.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}
	opts := Options{
		WrapTransport: func(tr comm.Transport) comm.Transport {
			return comm.WithRetry(&faultySend{Transport: tr, fail: tr.Rank() == 3}, policy)
		},
	}
	for i := 0; i < 5; i++ {
		err := RunOpts(topo, opts, func(c *comm.Comm) error {
			// Alltoall keeps every rank in flight when rank 3 dies.
			_, err := c.Alltoall(make([][]byte, c.Size()))
			return err
		})
		if err == nil {
			t.Fatal("alltoall succeeded with rank 3's sends failing")
		}
		if _, ok := comm.PeerLost(err); !ok {
			t.Fatalf("want comm.ErrPeerLost, got: %v", err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		// A couple of runtime-internal goroutines (GC workers, timer
		// scavenger) may come and go; rank goroutines would leak 8 per
		// iteration, far above this slack.
		if after <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across Run: %d before, %d after 5 faulted launches", before, after)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
