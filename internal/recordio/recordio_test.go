package recordio

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"sdssort/internal/codec"
)

var f64 = codec.Float64{}

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := tempPath(t, "round.f64")
	recs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if err := WriteFile(path, f64, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, f64)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, recs) {
		t.Fatalf("got %v want %v", got, recs)
	}
	n, err := Count[float64](path, f64)
	if err != nil || n != int64(len(recs)) {
		t.Fatalf("count %d err %v", n, err)
	}
}

func TestEmptyFile(t *testing.T) {
	path := tempPath(t, "empty.f64")
	if err := WriteFile(path, f64, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, f64)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	path := tempPath(t, "trunc.f64")
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, f64); err == nil {
		t.Fatal("truncated file accepted")
	}
	if _, err := Count[float64](path, f64); err == nil {
		t.Fatal("Count accepted ragged file")
	}
}

func TestStreamingWriterReader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, codec.PTFCodec{})
	recs := make([]codec.PTFRecord, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range recs {
		recs[i] = codec.PTFRecord{Score: rng.Float64(), ObjID: rng.Uint64()}
		if err := w.Write(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 100 {
		t.Fatalf("writer count %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf, codec.PTFCodec{})
	for i := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got, recs[i])
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadShard(t *testing.T) {
	path := tempPath(t, "shard.f64")
	recs := make([]float64, 103) // deliberately not divisible
	for i := range recs {
		recs[i] = float64(i)
	}
	if err := WriteFile(path, f64, recs); err != nil {
		t.Fatal(err)
	}
	var reassembled []float64
	const parts = 4
	for r := 0; r < parts; r++ {
		shard, err := ReadShard(path, f64, r, parts)
		if err != nil {
			t.Fatal(err)
		}
		reassembled = append(reassembled, shard...)
	}
	if !slices.Equal(reassembled, recs) {
		t.Fatal("shards do not reassemble the file")
	}
	// Last shard absorbs the remainder.
	last, err := ReadShard(path, f64, parts-1, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 103-3*25 {
		t.Fatalf("last shard has %d records", len(last))
	}
}

func TestReadShardValidation(t *testing.T) {
	path := tempPath(t, "v.f64")
	if err := WriteFile(path, f64, []float64{1}); err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		if _, err := ReadShard(path, f64, c[0], c[1]); err == nil {
			t.Fatalf("shard %v accepted", c)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, codec.Uint64{})
		if err := w.Write(vals...); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf, codec.Uint64{}).ReadAll()
		if err != nil {
			return false
		}
		return slices.Equal(got, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVColumn(t *testing.T) {
	csvData := "name,score\na,0.5\nb,0.1\nc,0.9\n"
	got, err := ReadCSVColumnFrom(strings.NewReader(csvData), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []float64{0.5, 0.1, 0.9}) {
		t.Fatalf("got %v", got)
	}
	// No header.
	got, err = ReadCSVColumnFrom(strings.NewReader("1\n2\n3\n"), 0)
	if err != nil || !slices.Equal(got, []float64{1, 2, 3}) {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestReadCSVColumnErrors(t *testing.T) {
	if _, err := ReadCSVColumnFrom(strings.NewReader("a,b\n1\n"), 1); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := ReadCSVColumnFrom(strings.NewReader("1\nx\n"), 0); err == nil {
		t.Fatal("non-numeric body cell accepted")
	}
	if _, err := ReadCSVColumnFrom(strings.NewReader("1\n"), -1); err == nil {
		t.Fatal("negative column accepted")
	}
	// Empty input yields empty keys.
	got, err := ReadCSVColumnFrom(strings.NewReader(""), 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
	// File variant path handling.
	path := tempPath(t, "keys.csv")
	if err := os.WriteFile(path, []byte("v\n2.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCSVColumn(path, 0)
	if err != nil || !slices.Equal(got, []float64{2.5}) {
		t.Fatalf("file variant: %v %v", got, err)
	}
}
