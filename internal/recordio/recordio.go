// Package recordio reads and writes fixed-width record files — the
// on-disk format shared by cmd/sdsgen, cmd/sdssort and cmd/sdsnode. A
// file is a bare concatenation of records in the codec's wire format
// (no header), so files are seekable by record index and shards can be
// read directly, which is how distributed ranks load their slice of a
// dataset without reading the whole file.
package recordio

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"sdssort/internal/codec"
)

// Writer streams records to an io.Writer with buffering.
type Writer[T any] struct {
	w   *bufio.Writer
	cd  codec.Codec[T]
	buf []byte
	n   int64
}

// NewWriter wraps w.
func NewWriter[T any](w io.Writer, cd codec.Codec[T]) *Writer[T] {
	return NewWriterSize(w, cd, 1<<20)
}

// NewWriterSize wraps w with an explicit buffer size, for callers that
// account their buffers against a memory budget (the spill tier opens
// many writers at once and cannot afford the default 1 MiB each).
func NewWriterSize[T any](w io.Writer, cd codec.Codec[T], bufBytes int) *Writer[T] {
	return &Writer[T]{
		w:   bufio.NewWriterSize(w, bufBytes),
		cd:  cd,
		buf: make([]byte, cd.Size()),
	}
}

// Write appends records.
func (w *Writer[T]) Write(recs ...T) error {
	for _, r := range recs {
		w.cd.Marshal(w.buf, r)
		if _, err := w.w.Write(w.buf); err != nil {
			return fmt.Errorf("recordio: write: %w", err)
		}
		w.n++
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer[T]) Count() int64 { return w.n }

// Flush drains the buffer to the underlying writer.
func (w *Writer[T]) Flush() error { return w.w.Flush() }

// Reader streams records from an io.Reader with buffering.
type Reader[T any] struct {
	r   *bufio.Reader
	cd  codec.Codec[T]
	buf []byte
}

// NewReader wraps r.
func NewReader[T any](r io.Reader, cd codec.Codec[T]) *Reader[T] {
	return NewReaderSize(r, cd, 1<<20)
}

// NewReaderSize wraps r with an explicit buffer size; see NewWriterSize.
func NewReaderSize[T any](r io.Reader, cd codec.Codec[T], bufBytes int) *Reader[T] {
	return &Reader[T]{
		r:   bufio.NewReaderSize(r, bufBytes),
		cd:  cd,
		buf: make([]byte, cd.Size()),
	}
}

// Read returns the next record, or io.EOF at a clean end of stream. A
// trailing partial record is reported as ErrUnexpectedEOF.
func (r *Reader[T]) Read() (T, error) {
	var zero T
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			return zero, io.EOF
		}
		return zero, fmt.Errorf("recordio: %w (file must be whole %d-byte records)", err, r.cd.Size())
	}
	return r.cd.Unmarshal(r.buf), nil
}

// ReadAll drains the stream.
func (r *Reader[T]) ReadAll() ([]T, error) {
	var out []T
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteFile writes recs to path, replacing any existing file.
func WriteFile[T any](path string, cd codec.Codec[T], recs []T) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f, cd)
	if err := w.Write(recs...); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads every record in path.
func ReadFile[T any](path string, cd codec.Codec[T]) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return NewReader(f, cd).ReadAll()
}

// Count returns the number of whole records in path.
func Count[T any](path string, cd codec.Codec[T]) (int64, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	size := int64(cd.Size())
	if st.Size()%size != 0 {
		return 0, fmt.Errorf("recordio: %s is %d bytes, not a multiple of the %d-byte record", path, st.Size(), size)
	}
	return st.Size() / size, nil
}

// ReadShard loads shard `rank` of `of` equal contiguous shards of path
// (the last shard absorbs the remainder), seeking directly to the
// shard's byte range. This is how a distributed rank loads its slice of
// a shared dataset file.
func ReadShard[T any](path string, cd codec.Codec[T], rank, of int) ([]T, error) {
	if rank < 0 || of <= 0 || rank >= of {
		return nil, fmt.Errorf("recordio: shard %d of %d out of range", rank, of)
	}
	total, err := Count[T](path, cd)
	if err != nil {
		return nil, err
	}
	per := total / int64(of)
	lo := int64(rank) * per
	hi := lo + per
	if rank == of-1 {
		hi = total
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(lo*int64(cd.Size()), io.SeekStart); err != nil {
		return nil, fmt.Errorf("recordio: seek: %w", err)
	}
	r := NewReader(f, cd)
	out := make([]T, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rec, err := r.Read()
		if err != nil {
			return nil, fmt.Errorf("recordio: shard read at record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
