package recordio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadCSVColumn extracts one numeric column from a CSV file as float64
// sort keys — the on-ramp for user datasets that aren't in the binary
// record format. A header row is skipped automatically when the first
// row's target cell does not parse as a number.
func ReadCSVColumn(path string, col int) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSVColumnFrom(f, col)
}

// ReadCSVColumnFrom is ReadCSVColumn over an arbitrary reader.
func ReadCSVColumnFrom(r io.Reader, col int) ([]float64, error) {
	if col < 0 {
		return nil, fmt.Errorf("recordio: negative CSV column %d", col)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // ragged rows surface as per-row errors below
	var out []float64
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("recordio: csv row %d: %w", row+1, err)
		}
		row++
		if col >= len(rec) {
			return nil, fmt.Errorf("recordio: csv row %d has %d columns, need column %d", row, len(rec), col)
		}
		cell := strings.TrimSpace(rec[col])
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			if row == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("recordio: csv row %d column %d: %q is not numeric", row, col, cell)
		}
		out = append(out, v)
	}
}
