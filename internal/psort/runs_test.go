package psort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestFindRunsSortedInput(t *testing.T) {
	data := []int{1, 2, 3, 4}
	runs := FindRuns(data, cmpInt)
	if len(runs) != 1 || runs[0] != (Run{0, 4}) {
		t.Fatalf("got %v", runs)
	}
}

func TestFindRunsReversesDescending(t *testing.T) {
	data := []int{5, 4, 3, 1, 2}
	runs := FindRuns(data, cmpInt)
	// Descending prefix 5,4,3,1 is reversed in place.
	if !slices.Equal(data, []int{1, 3, 4, 5, 2}) {
		t.Fatalf("data after FindRuns: %v", data)
	}
	if len(runs) != 2 {
		t.Fatalf("runs: %v", runs)
	}
}

func TestFindRunsEqualElementsStayPut(t *testing.T) {
	// Equal neighbours must not be treated as part of a descending run
	// (reversal would break stability).
	data := []kv{{3, 0}, {3, 1}, {2, 2}}
	FindRuns(data, cmpKV)
	// 3,3 is a non-decreasing run; only "2" follows. The two 3s must
	// keep their order.
	if data[0].V != 0 || data[1].V != 1 {
		t.Fatalf("equal elements reordered: %v", data)
	}
}

func TestCountRuns(t *testing.T) {
	cases := []struct {
		data []int
		want int
	}{
		{nil, 0},
		{[]int{1}, 1},
		{[]int{1, 2, 3}, 1},
		{[]int{3, 2, 1}, 3},
		{[]int{1, 2, 1, 2}, 2},
		{[]int{2, 2, 2}, 1},
	}
	for _, c := range cases {
		if got := CountRuns(c.data, cmpInt); got != c.want {
			t.Errorf("CountRuns(%v) = %d, want %d", c.data, got, c.want)
		}
	}
}

func TestNaturalMergeSort(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{0, 1, 2, 100, 5000} {
		data := randomInts(rng, n, 100)
		want := append([]int(nil), data...)
		slices.Sort(want)
		NaturalMergeSort(data, cmpInt)
		if !slices.Equal(data, want) {
			t.Fatalf("n=%d: mismatch", n)
		}
	}
}

func TestNaturalMergeSortPartiallyOrdered(t *testing.T) {
	// k-sorted input: concatenation of sorted blocks.
	rng := rand.New(rand.NewSource(21))
	var data []int
	for b := 0; b < 8; b++ {
		blk := randomInts(rng, 500, 1<<20)
		slices.Sort(blk)
		data = append(data, blk...)
	}
	if got := CountRuns(data, cmpInt); got > 8 {
		t.Fatalf("k-sorted input has %d runs, want <= 8", got)
	}
	want := append([]int(nil), data...)
	slices.Sort(want)
	NaturalMergeSort(data, cmpInt)
	if !slices.Equal(data, want) {
		t.Fatal("mismatch")
	}
}

func TestNaturalMergeSortStable(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := make([]kv, 2000)
	for i := range data {
		data[i] = kv{K: rng.Intn(5), V: i}
	}
	NaturalMergeSort(data, cmpKV)
	for i := 1; i < len(data); i++ {
		if data[i-1].K > data[i].K {
			t.Fatalf("not sorted at %d", i)
		}
		if data[i-1].K == data[i].K && data[i-1].V > data[i].V {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

func TestNaturalMergeSortProperty(t *testing.T) {
	f := func(data []int8) bool {
		ints := make([]int, len(data))
		for i, v := range data {
			ints[i] = int(v)
		}
		want := append([]int(nil), ints...)
		slices.Sort(want)
		NaturalMergeSort(ints, cmpInt)
		return slices.Equal(ints, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedness(t *testing.T) {
	sorted := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if got := Sortedness(sorted, cmpInt); got != 8 {
		t.Fatalf("sorted: got %v", got)
	}
	if got := Sortedness([]int{}, cmpInt); got != 1 {
		t.Fatalf("empty: got %v", got)
	}
	rng := rand.New(rand.NewSource(23))
	random := randomInts(rng, 10000, 1<<30)
	if got := Sortedness(random, cmpInt); got > 3 {
		t.Fatalf("random data reported sortedness %v, want ~2", got)
	}
}
