package psort

import (
	"encoding/binary"
	"slices"
	"testing"
)

// bytesToInts turns a fuzzer byte string into small ints (2 bytes per
// value, biased to a small universe so duplicates are common).
func bytesToInts(data []byte) []int {
	out := make([]int, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		out = append(out, int(binary.LittleEndian.Uint16(data[i:]))%97)
	}
	return out
}

func FuzzSort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 2, 0, 3, 0})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		ints := bytesToInts(data)
		want := append([]int(nil), ints...)
		slices.Sort(want)
		Sort(ints, cmpInt)
		if !slices.Equal(ints, want) {
			t.Fatalf("Sort mismatch on %v", ints)
		}
	})
}

func FuzzStableSort(f *testing.F) {
	f.Add([]byte{5, 0, 5, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := bytesToInts(data)
		recs := make([]kv, len(keys))
		for i, k := range keys {
			recs[i] = kv{K: k, V: i}
		}
		StableSort(recs, cmpKV)
		for i := 1; i < len(recs); i++ {
			if recs[i-1].K > recs[i].K {
				t.Fatal("not sorted")
			}
			if recs[i-1].K == recs[i].K && recs[i-1].V > recs[i].V {
				t.Fatal("stability violated")
			}
		}
	})
}

func FuzzNaturalMergeSort(f *testing.F) {
	f.Add([]byte{3, 0, 2, 0, 1, 0, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ints := bytesToInts(data)
		want := append([]int(nil), ints...)
		slices.Sort(want)
		NaturalMergeSort(ints, cmpInt)
		if !slices.Equal(ints, want) {
			t.Fatal("NaturalMergeSort mismatch")
		}
	})
}

func FuzzKWayMerge(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0}, []byte{2, 0, 4, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, a, b []byte, split uint8) {
		// Two fuzzed chunk sources, each pre-sorted, merged.
		c1 := bytesToInts(a)
		c2 := bytesToInts(b)
		slices.Sort(c1)
		slices.Sort(c2)
		// Optionally split c1 into two chunks at an arbitrary point to
		// vary the chunk count.
		chunks := [][]int{c2}
		if len(c1) > 0 {
			at := int(split) % (len(c1) + 1)
			chunks = append(chunks, c1[:at], c1[at:])
		}
		want := append(append([]int(nil), c1...), c2...)
		slices.Sort(want)
		got := KWayMerge(chunks, cmpInt)
		if !slices.Equal(got, want) {
			t.Fatal("KWayMerge mismatch")
		}
	})
}
