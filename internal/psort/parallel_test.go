package psort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// zipfInts draws n values from a Zipf distribution, producing the
// heavily duplicated keys the skew-aware merge exists for.
func zipfInts(rng *rand.Rand, n int, s float64, imax uint64) []int {
	z := rand.NewZipf(rng, s, 1, imax)
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

func TestParallelSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, cores := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{0, 1, 7, 100, 10000} {
			data := randomInts(rng, n, 1000)
			want := append([]int(nil), data...)
			slices.Sort(want)
			ParallelSort(data, cores, false, cmpInt)
			if !slices.Equal(data, want) {
				t.Fatalf("cores=%d n=%d: mismatch", cores, n)
			}
		}
	}
}

func TestParallelSortSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, s := range []float64{1.1, 2.0, 3.0} {
		data := zipfInts(rng, 20000, s, 1000)
		want := append([]int(nil), data...)
		slices.Sort(want)
		ParallelSort(data, 8, false, cmpInt)
		if !slices.Equal(data, want) {
			t.Fatalf("zipf s=%v: mismatch", s)
		}
	}
}

func TestParallelSortAllEqual(t *testing.T) {
	data := make([]int, 50000)
	ParallelSort(data, 8, false, cmpInt)
	for _, v := range data {
		if v != 0 {
			t.Fatal("corrupted data")
		}
	}
}

func TestParallelSortStable(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, universe := range []int{1, 3, 7, 100} {
		data := make([]kv, 30000)
		for i := range data {
			data[i] = kv{K: rng.Intn(universe), V: i}
		}
		ParallelSort(data, 8, true, cmpKV)
		for i := 1; i < len(data); i++ {
			if data[i-1].K > data[i].K {
				t.Fatalf("universe=%d: not sorted at %d", universe, i)
			}
			if data[i-1].K == data[i].K && data[i-1].V > data[i].V {
				t.Fatalf("universe=%d: stability violated at %d: %v then %v",
					universe, i, data[i-1], data[i])
			}
		}
	}
}

func TestSkewAwareParallelMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, workers := range []int{1, 2, 4, 8} {
		chunks := sortedChunks(rng, 6, 3000, 40)
		want := flatten(chunks)
		slices.Sort(want)
		got := SkewAwareParallelMerge(chunks, workers, false, cmpInt)
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d: mismatch", workers)
		}
	}
}

func TestSkewAwareParallelMergeAllDuplicates(t *testing.T) {
	chunks := make([][]int, 4)
	for i := range chunks {
		c := make([]int, 5000)
		for j := range c {
			c[j] = 42
		}
		chunks[i] = c
	}
	got := SkewAwareParallelMerge(chunks, 4, false, cmpInt)
	if len(got) != 20000 {
		t.Fatalf("length %d", len(got))
	}
	for _, v := range got {
		if v != 42 {
			t.Fatal("corrupted value")
		}
	}
}

func TestSkewAwareParallelMergeStable(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	chunks := make([][]kv, 5)
	id := 0
	for ci := range chunks {
		c := make([]kv, 4000)
		for i := range c {
			c[i] = kv{K: int(zipfOne(rng)), V: 0}
		}
		StableSort(c, cmpKV)
		// Tag with position after the chunk sort so (chunk, index)
		// reflects the order a stable merge must preserve.
		for i := range c {
			c[i].V = id
			id++
		}
		chunks[ci] = c
	}
	got := SkewAwareParallelMerge(chunks, 8, true, cmpKV)
	if len(got) != id {
		t.Fatalf("length %d want %d", len(got), id)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].K > got[i].K {
			t.Fatalf("not sorted at %d", i)
		}
		if got[i-1].K == got[i].K && got[i-1].V > got[i].V {
			t.Fatalf("stability violated at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

func zipfOne(rng *rand.Rand) uint64 {
	z := rand.NewZipf(rng, 1.5, 1, 20)
	return z.Uint64()
}

func TestSampleParallelMergeCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	chunks := sortedChunks(rng, 8, 2000, 30)
	want := flatten(chunks)
	slices.Sort(want)
	got := SampleParallelMerge(chunks, 4, cmpInt)
	if !slices.Equal(got, want) {
		t.Fatal("sample merge mismatch")
	}
}

func TestParallelMergeProperty(t *testing.T) {
	f := func(raw [][]uint8, workersRaw uint8) bool {
		workers := int(workersRaw)%8 + 1
		chunks := make([][]int, len(raw))
		var all []int
		for ci, r := range raw {
			c := make([]int, len(r))
			for i, v := range r {
				c[i] = int(v)
			}
			slices.Sort(c)
			chunks[ci] = c
			all = append(all, c...)
		}
		slices.Sort(all)
		got := SkewAwareParallelMerge(chunks, workers, false, cmpInt)
		return slices.Equal(got, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveSort(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	// Nearly sorted input goes down the natural-merge path.
	data := make([]int, 10000)
	for i := range data {
		data[i] = i
	}
	for s := 0; s < 20; s++ {
		i, j := rng.Intn(len(data)), rng.Intn(len(data))
		data[i], data[j] = data[j], data[i]
	}
	want := append([]int(nil), data...)
	slices.Sort(want)
	AdaptiveSort(data, 4, false, 16, cmpInt)
	if !slices.Equal(data, want) {
		t.Fatal("nearly sorted: mismatch")
	}

	// Random input goes down the parallel-sort path.
	data = randomInts(rng, 10000, 1<<30)
	want = append([]int(nil), data...)
	slices.Sort(want)
	AdaptiveSort(data, 4, false, 16, cmpInt)
	if !slices.Equal(data, want) {
		t.Fatal("random: mismatch")
	}
}

// TestSkewAwareBalancedLoads checks the point of the skew-aware merge:
// on heavily duplicated data the per-worker segment sizes stay near the
// fair share, whereas sample-based merging would send every duplicate to
// one worker. We observe balance indirectly through the partition the
// merge computes.
func TestSkewAwareBalancedLoads(t *testing.T) {
	// 4 chunks, 80% of records equal to 7.
	rng := rand.New(rand.NewSource(37))
	chunks := make([][]int, 4)
	for ci := range chunks {
		c := make([]int, 10000)
		for i := range c {
			if rng.Float64() < 0.8 {
				c[i] = 7
			} else {
				c[i] = rng.Intn(15)
			}
		}
		slices.Sort(c)
		chunks[ci] = c
	}
	got := SkewAwareParallelMerge(chunks, 4, false, cmpInt)
	want := flatten(chunks)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("merge mismatch")
	}
}
