package psort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// kv is a key/payload pair for stability checks; only K is compared.
type kv struct {
	K int
	V int // original position, invisible to the comparator
}

func cmpKV(a, b kv) int { return cmpInt(a.K, b.K) }

func randomInts(rng *rand.Rand, n, universe int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(universe)
	}
	return out
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 15, 16, 17, 100, 1000, 10000} {
		for _, universe := range []int{1, 2, 10, 1 << 30} {
			data := randomInts(rng, n, universe)
			want := append([]int(nil), data...)
			slices.Sort(want)
			Sort(data, cmpInt)
			if !slices.Equal(data, want) {
				t.Fatalf("Sort n=%d universe=%d: mismatch", n, universe)
			}
		}
	}
}

func TestSortAdversarialPatterns(t *testing.T) {
	patterns := map[string]func(n int) []int{
		"sorted": func(n int) []int {
			out := make([]int, n)
			for i := range out {
				out[i] = i
			}
			return out
		},
		"reversed": func(n int) []int {
			out := make([]int, n)
			for i := range out {
				out[i] = n - i
			}
			return out
		},
		"allequal": func(n int) []int { return make([]int, n) },
		"sawtooth": func(n int) []int {
			out := make([]int, n)
			for i := range out {
				out[i] = i % 7
			}
			return out
		},
		"organpipe": func(n int) []int {
			out := make([]int, n)
			for i := range out {
				if i < n/2 {
					out[i] = i
				} else {
					out[i] = n - i
				}
			}
			return out
		},
	}
	for name, gen := range patterns {
		for _, n := range []int{5, 64, 1000, 4096} {
			data := gen(n)
			want := append([]int(nil), data...)
			slices.Sort(want)
			Sort(data, cmpInt)
			if !slices.Equal(data, want) {
				t.Errorf("pattern %s n=%d: Sort mismatch", name, n)
			}
		}
	}
}

func TestStableSortIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 10, 100, 5000} {
		data := make([]kv, n)
		for i := range data {
			data[i] = kv{K: rng.Intn(7), V: i}
		}
		StableSort(data, cmpKV)
		for i := 1; i < n; i++ {
			if data[i-1].K > data[i].K {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
			if data[i-1].K == data[i].K && data[i-1].V > data[i].V {
				t.Fatalf("n=%d: stability violated at %d: %v before %v", n, i, data[i-1], data[i])
			}
		}
	}
}

func TestStableSortBufReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scratch := make([]int, 2048)
	for trial := 0; trial < 10; trial++ {
		data := randomInts(rng, 2000, 50)
		want := append([]int(nil), data...)
		slices.Sort(want)
		StableSortBuf(data, scratch, cmpInt)
		if !slices.Equal(data, want) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
	// Undersized scratch must still work (internal reallocation).
	data := randomInts(rng, 100, 5)
	want := append([]int(nil), data...)
	slices.Sort(want)
	StableSortBuf(data, make([]int, 3), cmpInt)
	if !slices.Equal(data, want) {
		t.Fatal("undersized scratch: mismatch")
	}
}

func TestSortPropertyQuick(t *testing.T) {
	f := func(data []int16) bool {
		ints := make([]int, len(data))
		for i, v := range data {
			ints[i] = int(v)
		}
		want := append([]int(nil), ints...)
		slices.Sort(want)
		Sort(ints, cmpInt)
		return slices.Equal(ints, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStableSortPropertyQuick(t *testing.T) {
	f := func(keys []uint8) bool {
		data := make([]kv, len(keys))
		for i, k := range keys {
			data[i] = kv{K: int(k), V: i}
		}
		StableSort(data, cmpKV)
		for i := 1; i < len(data); i++ {
			if data[i-1].K > data[i].K {
				return false
			}
			if data[i-1].K == data[i].K && data[i-1].V > data[i].V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTwo(t *testing.T) {
	a := []int{1, 3, 3, 5}
	b := []int{2, 3, 4}
	got := MergeTwo(a, b, cmpInt)
	want := []int{1, 2, 3, 3, 3, 4, 5}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if got := MergeTwo(nil, b, cmpInt); !slices.Equal(got, b) {
		t.Fatalf("nil+b: got %v", got)
	}
	if got := MergeTwo(a, nil, cmpInt); !slices.Equal(got, a) {
		t.Fatalf("a+nil: got %v", got)
	}
}

func TestMergeTwoStability(t *testing.T) {
	a := []kv{{1, 0}, {2, 1}, {2, 2}}
	b := []kv{{1, 10}, {2, 11}}
	got := MergeTwo(a, b, cmpKV)
	// Ties must come from a first.
	want := []kv{{1, 0}, {1, 10}, {2, 1}, {2, 2}, {2, 11}}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{}, cmpInt) || !IsSorted([]int{1}, cmpInt) || !IsSorted([]int{1, 1, 2}, cmpInt) {
		t.Fatal("sorted inputs misreported")
	}
	if IsSorted([]int{2, 1}, cmpInt) {
		t.Fatal("unsorted input misreported")
	}
}

func BenchmarkSortRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	base := randomInts(rng, 1<<16, 1<<30)
	data := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, base)
		Sort(data, cmpInt)
	}
}

func BenchmarkStableSortRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	base := randomInts(rng, 1<<16, 1<<30)
	data := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, base)
		StableSort(data, cmpInt)
	}
}
