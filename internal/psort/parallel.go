package psort

import (
	"sync"
	"time"

	"sdssort/internal/partition"
)

// SkewAwareParallelMerge merges sorted chunks into one sorted slice
// using `workers` goroutines, balancing the per-worker load with the
// paper's skew-aware partition: the value space is cut by workers-1
// global pivots sampled from the chunks, runs of equal pivots share
// their duplicates evenly, and each worker k-way merges its slice of
// every chunk. This is the merge inside SdssLocalSort and SdssNodeMerge
// (§2.2, §2.3); unlike sample-based merging it keeps the workers
// balanced on heavily duplicated data.
//
// When stable is true, equal records keep chunk order and in-chunk
// order, so passing chunks in original-data order yields a stable sort.
func SkewAwareParallelMerge[T any](chunks [][]T, workers int, stable bool, cmp func(a, b T) int) []T {
	out, _ := parallelMerge(chunks, workers, stable, true, cmp)
	return out
}

// SkewAwareParallelMergeTimed is SkewAwareParallelMerge returning, in
// addition, each output segment's busy time. The maximum over segments
// is the merge's critical path — the wall time a machine with enough
// cores would observe — which is how the experiments compare balance on
// hosts with fewer cores than workers.
func SkewAwareParallelMergeTimed[T any](chunks [][]T, workers int, stable bool, cmp func(a, b T) int) ([]T, []time.Duration) {
	return parallelMerge(chunks, workers, stable, true, cmp)
}

// SampleParallelMerge is the baseline the paper compares against in
// Fig. 6a: the same sampled-pivot parallel merge but with no handling of
// replicated pivots, so all records equal to a popular value land on a
// single worker. It is correct but imbalanced on skewed data.
func SampleParallelMerge[T any](chunks [][]T, workers int, cmp func(a, b T) int) []T {
	out, _ := parallelMerge(chunks, workers, false, false, cmp)
	return out
}

// SampleParallelMergeTimed is SampleParallelMerge with per-segment busy
// times (see SkewAwareParallelMergeTimed).
func SampleParallelMergeTimed[T any](chunks [][]T, workers int, cmp func(a, b T) int) ([]T, []time.Duration) {
	return parallelMerge(chunks, workers, false, false, cmp)
}

func parallelMerge[T any](chunks [][]T, workers int, stable, skewAware bool, cmp func(a, b T) int) ([]T, []time.Duration) {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]T, total)
	if total == 0 {
		return out, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || len(chunks) == 1 {
		start := time.Now()
		KWayMergeInto(out, chunks, cmp)
		return out, []time.Duration{time.Since(start)}
	}

	pg := mergePivots(chunks, workers, cmp)
	p := len(pg) + 1 // may be < workers on tiny inputs

	// Per-chunk boundaries for the p output segments.
	bounds := make([][]int, len(chunks))
	if skewAware {
		runs := partition.Runs(pg, cmp)
		// dupCounts[k][chunk] — the shared-memory analogue of the
		// distributed all-gather of duplicate counts.
		dupCounts := make([][]int64, len(runs))
		for k := range dupCounts {
			dupCounts[k] = make([]int64, len(chunks))
		}
		for ci, c := range chunks {
			loc := partition.Binary[T]{Cmp: cmp}
			for k, cnt := range partition.LocalDupCounts(c, pg, runs, loc) {
				dupCounts[k][ci] = cnt
			}
		}
		for ci, c := range chunks {
			loc := partition.Binary[T]{Cmp: cmp}
			if stable {
				b, err := partition.Stable(c, pg, loc, cmp, ci, dupCounts)
				if err != nil {
					// The counts were computed with the same
					// locator, so this cannot disagree; fall
					// back to the fast partition defensively.
					b = partition.Fast(c, pg, loc, cmp)
				}
				bounds[ci] = b
			} else {
				bounds[ci] = partition.Fast(c, pg, loc, cmp)
			}
		}
	} else {
		for ci, c := range chunks {
			b := make([]int, p+1)
			b[p] = len(c)
			for i, v := range pg {
				b[i+1] = partition.UpperBound(c, v, cmp)
			}
			bounds[ci] = b
		}
	}

	// Output offset of each segment.
	offsets := make([]int, p+1)
	for w := 0; w < p; w++ {
		size := 0
		for ci := range chunks {
			size += bounds[ci][w+1] - bounds[ci][w]
		}
		offsets[w+1] = offsets[w] + size
	}

	var wg sync.WaitGroup
	busy := make([]time.Duration, p)
	sem := make(chan struct{}, workers)
	for w := 0; w < p; w++ {
		if offsets[w+1] == offsets[w] {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(w int) {
			defer wg.Done()
			defer func() { <-sem }()
			start := time.Now()
			subs := make([][]T, 0, len(chunks))
			for ci, c := range chunks {
				subs = append(subs, c[bounds[ci][w]:bounds[ci][w+1]])
			}
			KWayMergeInto(out[offsets[w]:offsets[w+1]], subs, cmp)
			busy[w] = time.Since(start)
		}(w)
	}
	wg.Wait()
	return out, busy
}

// mergePivots draws workers-1 global pivots by regular sampling: each
// chunk contributes workers-1 equally-striped local pivots, the pool is
// sorted, and every len(pool)/workers-th element is taken (§2.4 applied
// to shared memory).
func mergePivots[T any](chunks [][]T, workers int, cmp func(a, b T) int) []T {
	var pool []T
	for _, c := range chunks {
		stride := len(c) / workers
		if stride < 1 {
			stride = 1
		}
		for i := 1; i < workers && i*stride < len(c); i++ {
			pool = append(pool, c[i*stride])
		}
	}
	if len(pool) == 0 {
		return nil
	}
	StableSort(pool, cmp)
	stride := len(pool) / workers
	if stride < 1 {
		stride = 1
	}
	var pg []T
	for i := 1; i < workers && i*stride-1 < len(pool); i++ {
		pg = append(pg, pool[i*stride-1])
	}
	return pg
}

// ParallelSort sorts data in place using up to `cores` goroutines: the
// slice is cut into contiguous chunks, each chunk is sorted on its own
// goroutine, and the chunks are combined with the skew-aware parallel
// merge. With stable=true the result preserves input order of equal
// records. This is SdssLocalSort (§2.2) — a shared-memory SDS-Sort
// without the network.
func ParallelSort[T any](data []T, cores int, stable bool, cmp func(a, b T) int) {
	n := len(data)
	if cores < 1 {
		cores = 1
	}
	if n < 2 {
		return
	}
	if cores == 1 || n < 4*cores {
		sortChunk(data, stable, cmp)
		return
	}

	chunkSize := (n + cores - 1) / cores
	var chunks [][]T
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		chunks = append(chunks, data[lo:hi])
	}

	var wg sync.WaitGroup
	for _, c := range chunks {
		wg.Add(1)
		go func(c []T) {
			defer wg.Done()
			sortChunk(c, stable, cmp)
		}(c)
	}
	wg.Wait()

	merged, _ := parallelMerge(chunks, cores, stable, true, cmp)
	copy(data, merged)
}

func sortChunk[T any](c []T, stable bool, cmp func(a, b T) int) {
	if stable {
		StableSort(c, cmp)
	} else {
		Sort(c, cmp)
	}
}

// AdaptiveSort sorts data in place, first checking for partial order:
// when the average run length clears runThreshold the existing runs are
// merged (O(n log r)); otherwise it falls back to ParallelSort. This is
// the dynamic selection of §2.7 applied at the local level.
func AdaptiveSort[T any](data []T, cores int, stable bool, runThreshold float64, cmp func(a, b T) int) {
	if len(data) < 2 {
		return
	}
	if runThreshold > 0 && Sortedness(data, cmp) >= runThreshold {
		NaturalMergeSort(data, cmp)
		return
	}
	ParallelSort(data, cores, stable, cmp)
}
