// Package psort is the shared-memory sorting substrate of SDS-Sort: the
// sequential sorts that run on one core (the paper uses C++ std::sort
// and std::stable_sort), detection and exploitation of partially ordered
// data, stable k-way merging, and the skew-aware parallel merge that
// makes SdssLocalSort "a shared-memory SDS-Sort without the network".
//
// Everything is generic over a three-way comparator; nothing below the
// comparator inspects records, preserving the paper's property that any
// user-chosen key works without secondary sorting keys.
package psort

import "math/bits"

// insertionThreshold is the subarray size below which introsort switches
// to insertion sort.
const insertionThreshold = 16

// Sort orders data in place with an unstable comparison sort (introsort:
// median-of-three quicksort, falling back to heapsort past a depth limit
// and to insertion sort on small ranges). It is the analogue of the
// paper's std::sort.
func Sort[T any](data []T, cmp func(a, b T) int) {
	if len(data) < 2 {
		return
	}
	depthLimit := 2 * bits.Len(uint(len(data)))
	introsort(data, cmp, depthLimit)
}

func introsort[T any](data []T, cmp func(a, b T) int, depth int) {
	for len(data) > insertionThreshold {
		if depth == 0 {
			heapsort(data, cmp)
			return
		}
		depth--
		p := partitionHoare(data, cmp)
		// Recurse on the smaller side, loop on the larger, bounding
		// stack depth at O(log n).
		if p < len(data)-p {
			introsort(data[:p], cmp, depth)
			data = data[p:]
		} else {
			introsort(data[p:], cmp, depth)
			data = data[:p]
		}
	}
	insertionSort(data, cmp)
}

// partitionHoare partitions around a median-of-three pivot and returns
// the split point: every element of data[:p] is <= every element of
// data[p:], with 0 < p < len(data).
func partitionHoare[T any](data []T, cmp func(a, b T) int) int {
	n := len(data)
	m := n / 2
	// Median-of-three into data[m].
	if cmp(data[m], data[0]) < 0 {
		data[m], data[0] = data[0], data[m]
	}
	if cmp(data[n-1], data[m]) < 0 {
		data[n-1], data[m] = data[m], data[n-1]
		if cmp(data[m], data[0]) < 0 {
			data[m], data[0] = data[0], data[m]
		}
	}
	pivot := data[m]
	i, j := -1, n
	for {
		for {
			i++
			if cmp(data[i], pivot) >= 0 {
				break
			}
		}
		for {
			j--
			if cmp(data[j], pivot) <= 0 {
				break
			}
		}
		if i >= j {
			if j == n-1 {
				// All elements <= pivot and the scan met at the
				// end; split before the last element to
				// guarantee progress.
				return n - 1
			}
			return j + 1
		}
		data[i], data[j] = data[j], data[i]
	}
}

func insertionSort[T any](data []T, cmp func(a, b T) int) {
	for i := 1; i < len(data); i++ {
		for j := i; j > 0 && cmp(data[j], data[j-1]) < 0; j-- {
			data[j], data[j-1] = data[j-1], data[j]
		}
	}
}

func heapsort[T any](data []T, cmp func(a, b T) int) {
	n := len(data)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(data, i, n, cmp)
	}
	for end := n - 1; end > 0; end-- {
		data[0], data[end] = data[end], data[0]
		siftDown(data, 0, end, cmp)
	}
}

func siftDown[T any](data []T, root, end int, cmp func(a, b T) int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && cmp(data[child], data[child+1]) < 0 {
			child++
		}
		if cmp(data[root], data[child]) >= 0 {
			return
		}
		data[root], data[child] = data[child], data[root]
		root = child
	}
}

// StableSort orders data in place preserving the relative order of equal
// elements (top-down merge sort with one scratch buffer). It is the
// analogue of the paper's std::stable_sort.
func StableSort[T any](data []T, cmp func(a, b T) int) {
	if len(data) < 2 {
		return
	}
	scratch := make([]T, len(data))
	mergeSort(data, scratch, cmp)
}

// StableSortBuf is StableSort reusing a caller-provided scratch buffer
// of at least len(data) elements.
func StableSortBuf[T any](data, scratch []T, cmp func(a, b T) int) {
	if len(data) < 2 {
		return
	}
	if len(scratch) < len(data) {
		scratch = make([]T, len(data))
	}
	mergeSort(data, scratch[:len(data)], cmp)
}

func mergeSort[T any](data, scratch []T, cmp func(a, b T) int) {
	n := len(data)
	if n <= insertionThreshold {
		// Binary-insertion would also do; plain insertion is stable.
		insertionSortStable(data, cmp)
		return
	}
	mid := n / 2
	mergeSort(data[:mid], scratch[:mid], cmp)
	mergeSort(data[mid:], scratch[mid:], cmp)
	if cmp(data[mid-1], data[mid]) <= 0 {
		return // already in order
	}
	copy(scratch, data)
	mergeInto(data, scratch[:mid], scratch[mid:], cmp)
}

// insertionSortStable is insertionSort; insertion sort is inherently
// stable because it only swaps strictly out-of-order neighbours.
func insertionSortStable[T any](data []T, cmp func(a, b T) int) {
	insertionSort(data, cmp)
}

// mergeInto merges sorted a and b into dst (len(dst) == len(a)+len(b)),
// taking from a on ties — the stability rule. The kernel is branchless:
// the comparison outcome selects the source element and advances the
// indices through conditional moves instead of an unpredictable branch,
// so merging random keys is bound by memory and the comparator, not by
// branch mispredictions. (The b-before-a tie check is what makes
// take-a-on-ties fall out of `cmp(b, a) < 0`.)
func mergeInto[T any](dst, a, b []T, cmp func(x, y T) int) {
	i, j := 0, 0
	for k := 0; i < len(a) && j < len(b); k++ {
		av, bv := a[i], b[j]
		takeB := cmp(bv, av) < 0
		v := av
		if takeB {
			v = bv
		}
		dst[k] = v
		t := 0
		if takeB {
			t = 1
		}
		j += t
		i += 1 - t
	}
	k := i + j
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// MergeTwo returns the stable merge of two sorted slices, preferring a
// on ties.
func MergeTwo[T any](a, b []T, cmp func(x, y T) int) []T {
	dst := make([]T, len(a)+len(b))
	mergeInto(dst, a, b, cmp)
	return dst
}

// IsSorted reports whether data is non-decreasing under cmp.
func IsSorted[T any](data []T, cmp func(a, b T) int) bool {
	for i := 1; i < len(data); i++ {
		if cmp(data[i-1], data[i]) > 0 {
			return false
		}
	}
	return true
}
