package psort

// KWayMerge merges k sorted chunks into a new slice, stably: ties are
// won by the chunk with the lower index, so if chunk order reflects
// original record order (chunks of one array, or data received from
// ranks in rank order) the merge preserves it. The paper's SdssMergeAll
// performs exactly this on the p sorted chunks the exchange delivers.
func KWayMerge[T any](chunks [][]T, cmp func(a, b T) int) []T {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	dst := make([]T, total)
	KWayMergeInto(dst, chunks, cmp)
	return dst
}

// KWayMergeInto merges chunks into dst, which must have exactly the
// combined length. A binary heap of chunk heads keyed by (record, chunk
// index) gives O(n log k) comparisons regardless of how skewed the chunk
// sizes are.
func KWayMergeInto[T any](dst []T, chunks [][]T, cmp func(a, b T) int) {
	type src struct {
		data []T
		pos  int
		id   int
	}
	var srcs []src
	for i, c := range chunks {
		if len(c) > 0 {
			srcs = append(srcs, src{data: c, id: i})
		}
	}
	switch len(srcs) {
	case 0:
		return
	case 1:
		copy(dst, srcs[0].data)
		return
	case 2:
		mergeInto(dst, srcs[0].data, srcs[1].data, cmp)
		return
	}

	// less orders heap entries by current head record, breaking ties by
	// chunk index for stability.
	less := func(a, b *src) bool {
		c := cmp(a.data[a.pos], b.data[b.pos])
		if c != 0 {
			return c < 0
		}
		return a.id < b.id
	}

	// heap holds indices into srcs.
	heap := make([]int, len(srcs))
	for i := range heap {
		heap[i] = i
	}
	siftDownHeap := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && less(&srcs[heap[child+1]], &srcs[heap[child]]) {
				child++
			}
			if !less(&srcs[heap[child]], &srcs[heap[root]]) {
				return
			}
			heap[root], heap[child] = heap[child], heap[root]
			root = child
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDownHeap(i, len(heap))
	}

	n := len(heap)
	for out := 0; out < len(dst); out++ {
		top := &srcs[heap[0]]
		dst[out] = top.data[top.pos]
		top.pos++
		if top.pos >= len(top.data) {
			// Source exhausted: shrink the heap.
			n--
			heap[0] = heap[n]
			heap = heap[:n]
		}
		if n > 1 {
			siftDownHeap(0, n)
		}
	}
}
