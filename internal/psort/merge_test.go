package psort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func sortedChunks(rng *rand.Rand, k, maxLen, universe int) [][]int {
	chunks := make([][]int, k)
	for i := range chunks {
		c := randomInts(rng, rng.Intn(maxLen+1), universe)
		slices.Sort(c)
		chunks[i] = c
	}
	return chunks
}

func flatten(chunks [][]int) []int {
	var out []int
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

func TestKWayMergeMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, k := range []int{0, 1, 2, 3, 4, 7, 16, 64} {
		chunks := sortedChunks(rng, k, 200, 50)
		want := flatten(chunks)
		slices.Sort(want)
		got := KWayMerge(chunks, cmpInt)
		if !slices.Equal(got, want) {
			t.Fatalf("k=%d: merge mismatch", k)
		}
	}
}

func TestKWayMergeEmptyChunks(t *testing.T) {
	chunks := [][]int{{}, {1, 2}, nil, {0, 3}, {}}
	got := KWayMerge(chunks, cmpInt)
	if !slices.Equal(got, []int{0, 1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
	if got := KWayMerge(nil, cmpInt); len(got) != 0 {
		t.Fatalf("nil chunks: got %v", got)
	}
}

func TestKWayMergeStability(t *testing.T) {
	// Equal keys must be emitted in chunk-index order, and in-chunk
	// order within a chunk.
	chunks := [][]kv{
		{{1, 0}, {2, 1}, {2, 2}},
		{{2, 10}, {3, 11}},
		{{1, 20}, {2, 21}, {2, 22}},
	}
	got := KWayMerge(chunks, cmpKV)
	want := []kv{{1, 0}, {1, 20}, {2, 1}, {2, 2}, {2, 10}, {2, 21}, {2, 22}, {3, 11}}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestKWayMergeStabilityProperty(t *testing.T) {
	// Property: merging chunks of tagged records preserves, for equal
	// keys, the (chunk, index) lexicographic order.
	f := func(raw [][]uint8) bool {
		chunks := make([][]kv, len(raw))
		for ci, r := range raw {
			c := make([]kv, len(r))
			for i, k := range r {
				c[i] = kv{K: int(k), V: ci*1_000_000 + i}
			}
			StableSort(c, cmpKV)
			chunks[ci] = c
		}
		got := KWayMerge(chunks, cmpKV)
		for i := 1; i < len(got); i++ {
			if got[i-1].K > got[i].K {
				return false
			}
			if got[i-1].K == got[i].K && got[i-1].V > got[i].V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKWayMergeSkewedChunkSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	big := randomInts(rng, 10000, 100)
	slices.Sort(big)
	chunks := [][]int{big, {5}, {}, {50, 51}}
	want := flatten(chunks)
	slices.Sort(want)
	if got := KWayMerge(chunks, cmpInt); !slices.Equal(got, want) {
		t.Fatal("skewed chunk sizes: merge mismatch")
	}
}

func BenchmarkKWayMerge16(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	chunks := make([][]int, 16)
	for i := range chunks {
		c := randomInts(rng, 1<<12, 1<<30)
		slices.Sort(c)
		chunks[i] = c
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	dst := make([]int, total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KWayMergeInto(dst, chunks, cmpInt)
	}
}
