package psort

// Run is a maximal already-ordered span of the input, [Start, End).
type Run struct {
	Start, End int
}

// FindRuns scans data and returns its decomposition into maximal sorted
// runs. Strictly descending runs are reversed in place (the timsort
// rule: only strictly descending, so stability is preserved). Partially
// ordered inputs produce few runs, which is what lets the local ordering
// step run in O(n log r) instead of O(n log n) — the paper's motivation
// for recognising partially ordered data (§1, §2.7).
func FindRuns[T any](data []T, cmp func(a, b T) int) []Run {
	n := len(data)
	if n == 0 {
		return nil
	}
	var runs []Run
	i := 0
	for i < n {
		j := i + 1
		if j == n {
			runs = append(runs, Run{i, n})
			break
		}
		if cmp(data[j], data[i]) < 0 {
			// Strictly descending run.
			for j < n && cmp(data[j], data[j-1]) < 0 {
				j++
			}
			reverse(data[i:j])
		} else {
			// Non-decreasing run.
			for j < n && cmp(data[j], data[j-1]) >= 0 {
				j++
			}
		}
		runs = append(runs, Run{i, j})
		i = j
	}
	return runs
}

func reverse[T any](s []T) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// CountRuns returns the number of maximal non-decreasing runs without
// modifying data (descending spans count element-wise, as they would
// after the cheap reversal FindRuns applies).
func CountRuns[T any](data []T, cmp func(a, b T) int) int {
	n := len(data)
	if n == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < n; i++ {
		if cmp(data[i], data[i-1]) < 0 {
			runs++
		}
	}
	return runs
}

// NaturalMergeSort sorts data stably by merging its existing runs with a
// k-way merge: O(n log r) for r runs, degrading gracefully to merge sort
// on random data and touching each element only once plus the merge on
// nearly sorted data. This is the "sorting partially ordered data in
// O(N)" path of the paper's §2.7.
func NaturalMergeSort[T any](data []T, cmp func(a, b T) int) {
	runs := FindRuns(data, cmp)
	if len(runs) <= 1 {
		return
	}
	chunks := make([][]T, len(runs))
	for i, r := range runs {
		chunks[i] = data[r.Start:r.End]
	}
	out := make([]T, len(data))
	KWayMergeInto(out, chunks, cmp)
	copy(data, out)
}

// Sortedness returns n/r, the average run length: n for sorted input,
// ~2 for random input. The adaptive local-ordering step uses it to
// decide whether merging beats re-sorting.
func Sortedness[T any](data []T, cmp func(a, b T) int) float64 {
	if len(data) == 0 {
		return 1
	}
	return float64(len(data)) / float64(CountRuns(data, cmp))
}
