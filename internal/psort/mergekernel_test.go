package psort

import (
	"math/rand"
	"slices"
	"testing"
)

// mergeIntoBranchy is the previous merge kernel, kept as the reference
// implementation: one unpredictable branch per element. The branchless
// kernel in mergeInto must match it output-for-output (including the
// take-a-on-ties stability rule) and beat it on random keys.
func mergeIntoBranchy[T any](dst, a, b []T, cmp func(x, y T) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(b[j], a[i]) < 0 {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

type pair struct {
	key, seq int
}

func cmpPair(a, b pair) int { return a.key - b.key }

// TestMergeKernelMatchesReference: the branchless kernel and the branchy
// reference produce identical output on every input shape — random,
// heavily duplicated (ties exercise the stability rule), disjoint
// ranges, and empty sides.
func TestMergeKernelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gen := func(n, keyRange, seqBase int) []pair {
		out := make([]pair, n)
		for i := range out {
			out[i] = pair{key: rng.Intn(keyRange + 1), seq: seqBase + i}
		}
		slices.SortStableFunc(out, cmpPair)
		return out
	}
	cases := []struct{ na, nb, keys int }{
		{0, 0, 1}, {0, 5, 10}, {5, 0, 10},
		{1, 1, 1}, // guaranteed tie
		{100, 100, 5}, {100, 100, 1 << 20},
		{1000, 3, 50}, {3, 1000, 50},
		{4096, 4096, 7},
	}
	for _, tc := range cases {
		for trial := 0; trial < 4; trial++ {
			a := gen(tc.na, tc.keys, 0)
			b := gen(tc.nb, tc.keys, 1<<20)
			want := make([]pair, tc.na+tc.nb)
			got := make([]pair, tc.na+tc.nb)
			mergeIntoBranchy(want, a, b, cmpPair)
			mergeInto(got, a, b, cmpPair)
			if !slices.Equal(want, got) {
				t.Fatalf("na=%d nb=%d keys=%d: branchless kernel diverges from reference",
					tc.na, tc.nb, tc.keys)
			}
			// The seq fields double-check the tie rule directly: equal
			// keys must come a-side first, each side in its own order.
			for i := 1; i < len(got); i++ {
				if got[i-1].key == got[i].key && got[i-1].seq > got[i].seq {
					t.Fatalf("tie rule violated at %d: seq %d before %d",
						i, got[i-1].seq, got[i].seq)
				}
			}
		}
	}
}

// BenchmarkMergeKernel: the branchless kernel against the branchy
// reference on random uint64 keys — the workload where mispredicted
// branches dominate the branchy version.
func BenchmarkMergeKernel(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(13))
	mk := func() []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rng.Uint64()
		}
		slices.Sort(s)
		return s
	}
	a, c := mk(), mk()
	dst := make([]uint64, 2*n)
	cmp := func(x, y uint64) int {
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	b.Run("branchless", func(b *testing.B) {
		b.SetBytes(16 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mergeInto(dst, a, c, cmp)
		}
	})
	b.Run("branchy", func(b *testing.B) {
		b.SetBytes(16 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mergeIntoBranchy(dst, a, c, cmp)
		}
	})
}
