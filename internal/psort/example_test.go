package psort_test

import (
	"fmt"

	"sdssort/internal/psort"
)

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func ExampleParallelSort() {
	data := []int{9, 3, 7, 3, 1, 8, 3, 2}
	psort.ParallelSort(data, 4, false, cmpInt)
	fmt.Println(data)
	// Output: [1 2 3 3 3 7 8 9]
}

func ExampleKWayMerge() {
	chunks := [][]int{
		{1, 4, 7},
		{2, 5, 8},
		{3, 6, 9},
	}
	fmt.Println(psort.KWayMerge(chunks, cmpInt))
	// Output: [1 2 3 4 5 6 7 8 9]
}

func ExampleNaturalMergeSort() {
	// Two pre-sorted blocks back to back: the run detector finds them
	// and a single merge finishes the job in O(n).
	data := []int{1, 3, 5, 7, 2, 4, 6, 8}
	psort.NaturalMergeSort(data, cmpInt)
	fmt.Println(data)
	// Output: [1 2 3 4 5 6 7 8]
}

func ExampleSortedness() {
	sorted := []int{1, 2, 3, 4, 5, 6, 7, 8}
	fmt.Println(psort.Sortedness(sorted, cmpInt))
	// Output: 8
}

func ExampleSkewAwareParallelMerge() {
	// Three sorted chunks dominated by one value: the skew-aware merge
	// still spreads the work evenly across workers.
	chunks := [][]int{
		{5, 5, 5, 5},
		{1, 5, 5, 9},
		{5, 5, 5, 5},
	}
	fmt.Println(psort.SkewAwareParallelMerge(chunks, 3, false, cmpInt))
	// Output: [1 5 5 5 5 5 5 5 5 5 5 9]
}
