package workload

import "math/rand"

// Additional input patterns from the parallel-sorting literature (the
// PSRS evaluation suite of Li et al., which the paper builds its
// analysis on). They stress different parts of a sample sort: pivot
// quality (staggered, gaussian), duplicate handling (few-distinct,
// all-equal), and run detection (sawtooth).

// Gaussian returns n keys from a normal distribution — mild central
// clustering, a gentler skew than Zipf.
func Gaussian(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// Staggered returns the classic staggered pattern for p blocks: block i
// holds values that interleave badly with regular sampling, the
// adversarial input of the PSRS literature.
func Staggered(n, p int) []float64 {
	if p < 1 {
		p = 1
	}
	out := make([]float64, n)
	per := n / p
	if per == 0 {
		per = 1
	}
	for i := range out {
		block := i / per
		if block >= p {
			block = p - 1
		}
		pos := i % per
		var base int
		if block < p/2 {
			base = 2*block + 1
		} else {
			base = (block - p/2) * 2
		}
		out[i] = float64(base*per + pos)
	}
	return out
}

// FewDistinct returns n keys drawn uniformly from only k distinct
// values — duplicate-heavy without Zipf's head/tail structure.
func FewDistinct(seed int64, n, k int) []float64 {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(k))
	}
	return out
}

// AllEqual returns n copies of v — the worst case Theorem 1 is proved
// against.
func AllEqual(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// Sawtooth returns n keys cycling 0..period-1 — many short runs, equal
// histogram, maximal run count.
func Sawtooth(n, period int) []float64 {
	if period < 1 {
		period = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i % period)
	}
	return out
}

// Exponential returns n keys from an exponential distribution with the
// given rate — one-sided skew without duplicates, complementing Zipf's
// duplicate-heavy head.
func Exponential(seed int64, n int, rate float64) []float64 {
	if rate <= 0 {
		rate = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64() / rate
	}
	return out
}
