package workload

import "testing"

func TestPresetsRegistry(t *testing.T) {
	names := PresetNames()
	if len(names) != len(Presets()) {
		t.Fatalf("names/presets length mismatch")
	}
	for _, n := range names {
		pre, ok := LookupPreset(n)
		if !ok || pre.Name != n || pre.About == "" || pre.Gen == nil {
			t.Fatalf("preset %q malformed: %+v", n, pre)
		}
	}
	if _, ok := LookupPreset("nope"); ok {
		t.Fatal("unknown preset resolved")
	}
}

// TestPresetsDeterministic: the same (name, seed, n) must generate the
// same bytes — CLI reproducibility is the presets' whole point.
func TestPresetsDeterministic(t *testing.T) {
	for _, pre := range Presets() {
		a := pre.Gen(99, 512)
		b := pre.Gen(99, 512)
		if len(a) != 512 || len(b) != 512 {
			t.Fatalf("%s: wrong length %d/%d", pre.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs across runs", pre.Name, i)
			}
		}
	}
}

// TestPresetsSkewCharacter pins the duplicate structure the algorithm
// selection keys on: the Zipf/dup presets are duplicate-heavy, uniform
// is not.
func TestPresetsSkewCharacter(t *testing.T) {
	const n = 20000
	dup := func(name string) float64 {
		pre, ok := LookupPreset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		return Summarize(pre.Gen(7, n)).DupRatio
	}
	if d := dup("uniform"); d > 0.01 {
		t.Errorf("uniform duplication %.3f, want ~0", d)
	}
	// DupRatio is the heaviest key's share: dup spreads over 16 values
	// (~1/16 each), zipf concentrates ~32% on the hottest key, zipf-hot
	// over half, allequal everything.
	for _, tc := range []struct {
		name string
		min  float64
	}{{"dup", 0.04}, {"zipf", 0.2}, {"zipf-hot", 0.5}, {"allequal", 0.999}} {
		if d := dup(tc.name); d < tc.min {
			t.Errorf("%s duplication %.3f, want >= %.2f", tc.name, d, tc.min)
		}
	}
}
