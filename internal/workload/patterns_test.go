package workload

import (
	"slices"
	"testing"
)

func TestGaussian(t *testing.T) {
	data := Gaussian(1, 50000)
	if len(data) != 50000 {
		t.Fatalf("length %d", len(data))
	}
	var mean float64
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("mean %v far from 0", mean)
	}
	neg := 0
	for _, v := range data {
		if v < 0 {
			neg++
		}
	}
	if neg < 20000 || neg > 30000 {
		t.Fatalf("negative fraction %d not ~half", neg)
	}
}

func TestStaggered(t *testing.T) {
	data := Staggered(1000, 8)
	if len(data) != 1000 {
		t.Fatalf("length %d", len(data))
	}
	// The multiset must still be a permutation-friendly spread: all
	// values distinct within a block and the global value range sane.
	cp := append([]float64(nil), data...)
	slices.Sort(cp)
	for i := 1; i < len(cp); i++ {
		if cp[i] == cp[i-1] {
			t.Fatalf("staggered produced duplicate %v", cp[i])
		}
	}
	// It must NOT be sorted (that's its point).
	if slices.IsSorted(data) {
		t.Fatal("staggered input came out sorted")
	}
	if d := Staggered(100, 0); len(d) != 100 {
		t.Fatal("p=0 must clamp")
	}
}

func TestFewDistinct(t *testing.T) {
	data := FewDistinct(2, 10000, 3)
	seen := map[float64]bool{}
	for _, v := range data {
		seen[v] = true
	}
	if len(seen) > 3 {
		t.Fatalf("%d distinct values, want <= 3", len(seen))
	}
	if d := FewDistinct(2, 100, 0); len(d) != 100 {
		t.Fatal("k=0 must clamp")
	}
}

func TestAllEqual(t *testing.T) {
	data := AllEqual(100, 7)
	for _, v := range data {
		if v != 7 {
			t.Fatal("value drift")
		}
	}
	if got := DupRatio(data); got != 1 {
		t.Fatalf("δ=%v", got)
	}
}

func TestSawtoothPattern(t *testing.T) {
	data := Sawtooth(100, 10)
	if data[0] != 0 || data[9] != 9 || data[10] != 0 {
		t.Fatalf("sawtooth shape wrong: %v", data[:12])
	}
	if d := Sawtooth(10, 0); len(d) != 10 {
		t.Fatal("period=0 must clamp")
	}
}

func TestExponential(t *testing.T) {
	data := Exponential(3, 50000, 2)
	var mean float64
	for _, v := range data {
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		mean += v
	}
	mean /= float64(len(data))
	if mean < 0.45 || mean > 0.55 { // E[X] = 1/rate = 0.5
		t.Fatalf("mean %v, want ≈0.5", mean)
	}
	if d := Exponential(3, 10, 0); len(d) != 10 {
		t.Fatal("rate=0 must clamp")
	}
}
