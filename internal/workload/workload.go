// Package workload generates the datasets of the paper's evaluation:
// Uniform and Zipf-distributed synthetic keys (§4.1), partially ordered
// inputs (§2.7), and synthetic stand-ins for the two real datasets — the
// Palomar Transient Factory detections (28.02% duplicated real-bogus
// scores) and the cosmology particle snapshot (cluster-ID keys with
// δ=0.73% and a six-float payload).
//
// Each generator is deterministic in its seed; distributed experiments
// derive per-rank seeds so every rank builds its shard independently.
package workload

import (
	"math"
	"math/rand"
	"slices"

	"sdssort/internal/codec"
)

// Uniform returns n float64 keys drawn uniformly from [0, 1).
func Uniform(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// DefaultZipfUniverse is the value-universe size used throughout the
// experiments. With exact normalisation it reproduces the paper's
// Table 2 α→δ mapping closely (α=0.4→δ≈0.2%, α=0.9→δ≈6.4%) and the
// Table 1 settings (α=1.4→δ≈32%, α=2.1→δ≈63%).
const DefaultZipfUniverse = 13500

// Zipf samples from p(i) = C/i^α over i = 1..universe by inverse-CDF
// lookup. Unlike math/rand's Zipf it accepts any α > 0, which the
// paper's α range (0.4-2.1) requires.
type Zipf struct {
	cdf []float64 // cdf[i] = P(value <= i+1)
}

// NewZipf builds the sampler. It panics on a non-positive universe or α,
// mirroring math/rand's constructor contract.
func NewZipf(alpha float64, universe int) *Zipf {
	if universe <= 0 || alpha <= 0 {
		panic("workload: NewZipf needs positive alpha and universe")
	}
	cdf := make([]float64, universe)
	sum := 0.0
	for i := 1; i <= universe; i++ {
		sum += math.Pow(float64(i), -alpha)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one value in [1, universe].
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// MaxProbability returns the probability of the most frequent value —
// the asymptotic duplication ratio δ of a large sample.
func (z *Zipf) MaxProbability() float64 { return z.cdf[0] }

// ZipfKeys returns n float64 keys (the sampled ranks as floats, so the
// popular values cluster at the low end of the distribution, as the
// paper describes skewed data).
func ZipfKeys(seed int64, n int, alpha float64, universe int) []float64 {
	z := NewZipf(alpha, universe)
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(z.Sample(rng))
	}
	return out
}

// DupRatio returns δ = d/N (as a fraction, not percent): the share of
// records held by the most frequent key. This is the paper's maximum
// replication ratio.
func DupRatio[T comparable](data []T) float64 {
	if len(data) == 0 {
		return 0
	}
	counts := make(map[T]int)
	maxCount := 0
	for _, v := range data {
		counts[v]++
		if counts[v] > maxCount {
			maxCount = counts[v]
		}
	}
	return float64(maxCount) / float64(len(data))
}

// KSorted returns n keys formed from `blocks` concatenated sorted
// blocks — the "partially ordered data" regime where the local sort's
// run detection pays off.
func KSorted(seed int64, n, blocks int) []float64 {
	if blocks < 1 {
		blocks = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	per := n / blocks
	for b := 0; b < blocks; b++ {
		size := per
		if b == blocks-1 {
			size = n - len(out)
		}
		blk := make([]float64, size)
		for i := range blk {
			blk[i] = rng.Float64()
		}
		sortFloats(blk)
		out = append(out, blk...)
	}
	return out
}

// NearlySorted returns a sorted sequence perturbed by `swaps` random
// transpositions.
func NearlySorted(seed int64, n, swaps int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	for s := 0; s < swaps && n > 1; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Reversed returns a strictly decreasing sequence.
func Reversed(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(n - i)
	}
	return out
}

func sortFloats(v []float64) { slices.Sort(v) }

// PTFDupRatio is the duplication ratio of the Palomar Transient Factory
// dataset the paper reports (28.02% of records share one real-bogus
// score).
const PTFDupRatio = 0.2802

// PTF synthesises Palomar Transient Factory detections: a real-bogus
// score in [0, 1] as the key, an object id as payload. A PTFDupRatio
// point mass at score 0 models the bogus-detection pile-up that makes
// the real dataset 28.02% duplicated; the rest follows a
// bogus-skewed density.
func PTF(seed int64, n int) []codec.PTFRecord {
	rng := rand.New(rand.NewSource(seed))
	out := make([]codec.PTFRecord, n)
	for i := range out {
		var score float64
		switch {
		case rng.Float64() < PTFDupRatio:
			score = 0 // hard-bogus pile-up: the duplicated value
		default:
			// Squaring skews the mass toward low (bogus) scores.
			u := rng.Float64()
			score = u * u
		}
		out[i] = codec.PTFRecord{Score: score, ObjID: uint64(seed)<<32 | uint64(i)}
	}
	return out
}

// CosmoDupRatio is the duplication ratio of the cosmology dataset the
// paper reports: the largest halo holds 0.73% of all particles.
const CosmoDupRatio = 0.0073

// Cosmology synthesises BD-CATS-style particles: the key is the cluster
// (halo) id, with cluster sizes following a power law scaled so the
// largest cluster holds CosmoDupRatio of the particles; position and
// velocity are payload. Particles arrive shuffled, as a simulation
// snapshot would.
func Cosmology(seed int64, n int) []codec.Particle {
	rng := rand.New(rand.NewSource(seed))
	out := make([]codec.Particle, n)
	// Cluster sizes ~ i^-1.3, normalised so cluster 1 gets
	// CosmoDupRatio of records: δ/ i^1.3 per cluster until exhausted,
	// remainder spread as singleton "field" particles.
	i := 0
	cluster := int64(1)
	for i < n {
		size := int(float64(n) * CosmoDupRatio / math.Pow(float64(cluster), 1.3))
		if size < 1 {
			size = 1
		}
		for k := 0; k < size && i < n; k++ {
			out[i] = randParticle(rng, cluster)
			i++
		}
		cluster++
	}
	// Shuffle so the input is unordered in cluster id.
	rng.Shuffle(n, func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

func randParticle(rng *rand.Rand, cluster int64) codec.Particle {
	var p codec.Particle
	p.ClusterID = cluster
	for k := 0; k < 3; k++ {
		p.Pos[k] = rng.Float32() * 100
		p.Vel[k] = (rng.Float32() - 0.5) * 600
	}
	return p
}

// Summary describes a key set the way the evaluation talks about
// datasets: size, range, duplication ratio δ, distinct values, and the
// sorted-run structure that drives the adaptive local ordering.
type Summary struct {
	N        int
	Min, Max float64
	DupRatio float64 // δ as a fraction
	Distinct int
	Runs     int // maximal non-decreasing runs in input order
}

// Summarize computes a Summary of keys (not modified).
func Summarize(keys []float64) Summary {
	s := Summary{N: len(keys)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = keys[0], keys[0]
	s.Runs = 1
	counts := make(map[float64]int, 1024)
	maxCount := 0
	for i, v := range keys {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		counts[v]++
		if counts[v] > maxCount {
			maxCount = counts[v]
		}
		if i > 0 && v < keys[i-1] {
			s.Runs++
		}
	}
	s.Distinct = len(counts)
	s.DupRatio = float64(maxCount) / float64(s.N)
	return s
}
