package workload

// Preset is a named float64-key workload reproducible from the CLI:
// sdsgen emits preset data to files, sdsnode accepts a preset name as a
// job workload, and the algorithm-comparison experiments draw the
// skewed/duplicate-heavy inputs from here so every surface generates
// the same bytes for the same (name, seed, n).
type Preset struct {
	Name  string
	About string
	Gen   func(seed int64, n int) []float64
}

// presets in display order. The Zipf entries are the skew-sensitive
// algorithm comparisons' staple: zipf is the paper's α=1.4 synthetic,
// zipf-hot concentrates harder (α=2.1 puts over half the mass on the
// hottest keys), dup draws from 16 distinct values, and allequal is the
// degenerate single-key dataset.
var presets = []Preset{
	{Name: "uniform", About: "i.i.d. uniform keys in [0,1) — the balanced baseline", Gen: Uniform},
	{Name: "zipf", About: "Zipf α=1.4 over the paper's 13500-value universe — heavy duplication, the paper's skewed synthetic", Gen: func(seed int64, n int) []float64 {
		return ZipfKeys(seed, n, 1.4, DefaultZipfUniverse)
	}},
	{Name: "zipf-hot", About: "Zipf α=2.1 — most of the mass on a handful of hot keys; collapses duplicate-oblivious partitions", Gen: func(seed int64, n int) []float64 {
		return ZipfKeys(seed, n, 2.1, DefaultZipfUniverse)
	}},
	{Name: "dup", About: "16 distinct values, uniformly drawn — duplicate-heavy without skew", Gen: func(seed int64, n int) []float64 {
		return FewDistinct(seed, n, 16)
	}},
	{Name: "allequal", About: "every key identical — the degenerate duplicate extreme", Gen: func(_ int64, n int) []float64 {
		return AllEqual(n, 42)
	}},
	{Name: "gaussian", About: "normal(0.5, 0.15) keys — mild central clustering", Gen: Gaussian},
	{Name: "exponential", About: "exp(rate 4) keys — one-sided density skew, few duplicates", Gen: func(seed int64, n int) []float64 {
		return Exponential(seed, n, 4)
	}},
}

// Presets returns the named workload presets in display order.
func Presets() []Preset {
	return append([]Preset(nil), presets...)
}

// PresetNames returns the preset names in display order.
func PresetNames() []string {
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.Name
	}
	return names
}

// LookupPreset returns the preset registered under name.
func LookupPreset(name string) (Preset, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

func init() {
	// The registry is ordered for display, but duplicate names would
	// silently shadow; fail fast in tests and at first use.
	seen := map[string]bool{}
	for _, p := range presets {
		if seen[p.Name] {
			panic("workload: duplicate preset " + p.Name)
		}
		seen[p.Name] = true
	}
}
