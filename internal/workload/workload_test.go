package workload

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"sdssort/internal/codec"
)

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(42, 100)
	b := Uniform(42, 100)
	if !slices.Equal(a, b) {
		t.Fatal("same seed produced different data")
	}
	c := Uniform(43, 100)
	if slices.Equal(a, c) {
		t.Fatal("different seeds produced identical data")
	}
	for _, v := range a {
		if v < 0 || v >= 1 {
			t.Fatalf("value %v out of [0,1)", v)
		}
	}
}

func TestZipfMatchesPaperTable2(t *testing.T) {
	// The paper's Table 2: α → δ(%). Our universe is calibrated to
	// reproduce it; allow moderate tolerance since δ also reflects
	// sampling noise.
	want := map[float64]float64{
		0.4: 0.2, 0.5: 0.5, 0.6: 1.0, 0.7: 2.0, 0.8: 3.7, 0.9: 6.4,
	}
	for alpha, deltaPct := range want {
		z := NewZipf(alpha, DefaultZipfUniverse)
		got := z.MaxProbability() * 100
		if got < deltaPct/2 || got > deltaPct*2 {
			t.Errorf("α=%v: δ=%.2f%%, paper %.1f%%", alpha, got, deltaPct)
		}
	}
	// Table 1 settings.
	if got := NewZipf(1.4, DefaultZipfUniverse).MaxProbability() * 100; got < 25 || got > 40 {
		t.Errorf("α=1.4: δ=%.1f%%, paper 32%%", got)
	}
	if got := NewZipf(2.1, DefaultZipfUniverse).MaxProbability() * 100; got < 55 || got > 70 {
		t.Errorf("α=2.1: δ=%.1f%%, paper 63%%", got)
	}
}

func TestZipfSampleRange(t *testing.T) {
	z := NewZipf(1.1, 50)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 51)
	for i := 0; i < 20000; i++ {
		v := z.Sample(rng)
		if v < 1 || v > 50 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// Monotone-ish decay: value 1 must dominate value 10.
	if counts[1] < counts[10]*2 {
		t.Fatalf("no Zipf decay: counts[1]=%d counts[10]=%d", counts[1], counts[10])
	}
}

func TestZipfKeysEmpiricalDelta(t *testing.T) {
	keys := ZipfKeys(7, 100000, 1.4, DefaultZipfUniverse)
	delta := DupRatio(keys)
	if delta < 0.25 || delta > 0.40 {
		t.Fatalf("empirical δ=%.3f, want ≈0.32", delta)
	}
}

func TestNewZipfPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 10) },
		func() { NewZipf(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDupRatio(t *testing.T) {
	if got := DupRatio([]int{1, 1, 1, 2}); got != 0.75 {
		t.Fatalf("got %v", got)
	}
	if got := DupRatio([]int{}); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := DupRatio([]int{5}); got != 1 {
		t.Fatalf("single: %v", got)
	}
}

func TestKSorted(t *testing.T) {
	data := KSorted(1, 1000, 8)
	if len(data) != 1000 {
		t.Fatalf("length %d", len(data))
	}
	runs := 1
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			runs++
		}
	}
	if runs > 8 {
		t.Fatalf("%d runs, want <= 8", runs)
	}
	if d := KSorted(1, 100, 0); len(d) != 100 {
		t.Fatal("blocks=0 must clamp")
	}
}

func TestNearlySorted(t *testing.T) {
	data := NearlySorted(2, 1000, 5)
	if len(data) != 1000 {
		t.Fatalf("length %d", len(data))
	}
	inversions := 0
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			inversions++
		}
	}
	if inversions > 10 {
		t.Fatalf("%d inversions from 5 swaps", inversions)
	}
}

func TestReversed(t *testing.T) {
	data := Reversed(10)
	for i := 1; i < len(data); i++ {
		if data[i] >= data[i-1] {
			t.Fatal("not strictly decreasing")
		}
	}
}

func TestPTFDupRatio(t *testing.T) {
	recs := PTF(3, 100000)
	keys := make([]float64, len(recs))
	for i, r := range recs {
		keys[i] = r.Score
		if r.Score < 0 || r.Score > 1 {
			t.Fatalf("score %v out of [0,1]", r.Score)
		}
	}
	delta := DupRatio(keys)
	if math.Abs(delta-PTFDupRatio) > 0.02 {
		t.Fatalf("PTF δ=%.4f, want ≈%.4f", delta, PTFDupRatio)
	}
	// Object ids unique within a generation.
	seen := map[uint64]bool{}
	for _, r := range recs[:1000] {
		if seen[r.ObjID] {
			t.Fatal("duplicate ObjID")
		}
		seen[r.ObjID] = true
	}
}

func TestCosmologyDupRatio(t *testing.T) {
	parts := Cosmology(4, 200000)
	ids := make([]int64, len(parts))
	for i, p := range parts {
		ids[i] = p.ClusterID
		if p.ClusterID < 1 {
			t.Fatalf("cluster id %d", p.ClusterID)
		}
	}
	delta := DupRatio(ids)
	if delta < CosmoDupRatio/2 || delta > CosmoDupRatio*2 {
		t.Fatalf("cosmology δ=%.5f, want ≈%.5f", delta, CosmoDupRatio)
	}
	// The snapshot must arrive shuffled, not grouped by cluster.
	sortedPrefix := 0
	for i := 1; i < len(parts); i++ {
		if parts[i].ClusterID >= parts[i-1].ClusterID {
			sortedPrefix++
		}
	}
	if float64(sortedPrefix) > 0.7*float64(len(parts)) {
		t.Fatal("cosmology data appears unshuffled")
	}
}

func TestCosmologyPayloadPopulated(t *testing.T) {
	parts := Cosmology(5, 1000)
	var nonZero bool
	for _, p := range parts {
		if p.Pos != [3]float32{} || p.Vel != [3]float32{} {
			nonZero = true
			break
		}
	}
	if !nonZero {
		t.Fatal("payload all zero")
	}
	_ = codec.Particle(parts[0]) // types line up with the codec package
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 1, 2, 1})
	if s.N != 5 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("%+v", s)
	}
	if s.DupRatio != 0.6 { // three 1s of five
		t.Fatalf("δ=%v", s.DupRatio)
	}
	if s.Distinct != 3 {
		t.Fatalf("distinct=%d", s.Distinct)
	}
	if s.Runs != 3 { // [3] [1 1 2] [1]
		t.Fatalf("runs=%d", s.Runs)
	}
	if z := Summarize(nil); z.N != 0 || z.Runs != 0 {
		t.Fatalf("empty: %+v", z)
	}
}
