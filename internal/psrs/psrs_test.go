package psrs

import (
	"slices"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/workload"
)

var f64 = codec.Float64{}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func runPSRS(t *testing.T, p int, in [][]float64) [][]float64 {
	t.Helper()
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]float64, error) {
		local := append([]float64(nil), in[c.Rank()]...)
		return Sort(c, local, f64, cmpF, Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func verify(t *testing.T, in, out [][]float64) {
	t.Helper()
	var flatIn, flatOut []float64
	for _, part := range in {
		flatIn = append(flatIn, part...)
	}
	for _, part := range out {
		flatOut = append(flatOut, part...)
	}
	if !slices.IsSorted(flatOut) {
		t.Fatal("not globally sorted")
	}
	slices.Sort(flatIn)
	if !slices.Equal(flatIn, flatOut) {
		t.Fatal("not a permutation of the input")
	}
}

func TestPSRSUniform(t *testing.T) {
	for _, p := range []int{1, 2, 4, 9} {
		in := make([][]float64, p)
		for r := range in {
			in[r] = workload.Uniform(int64(r+1), 500)
		}
		verify(t, in, runPSRS(t, p, in))
	}
}

func TestPSRSSkewedStillSorts(t *testing.T) {
	in := make([][]float64, 6)
	for r := range in {
		in[r] = workload.ZipfKeys(int64(r), 400, 1.4, 500)
	}
	verify(t, in, runPSRS(t, 6, in))
}

func TestPSRSSkewImbalance(t *testing.T) {
	// On data dominated by one value PSRS piles everything onto one
	// rank — the classical-PSS defect the paper's introduction
	// describes.
	const p, perRank = 6, 600
	in := make([][]float64, p)
	for r := range in {
		rows := make([]float64, perRank)
		for i := range rows {
			if i%10 < 8 {
				rows[i] = 3
			} else {
				rows[i] = float64(i % 7)
			}
		}
		in[r] = rows
	}
	out := runPSRS(t, p, in)
	verify(t, in, out)
	maxLoad := 0
	for _, part := range out {
		if len(part) > maxLoad {
			maxLoad = len(part)
		}
	}
	if maxLoad < 3*perRank {
		t.Errorf("expected load collapse on 80%%-duplicated data, max load %d", maxLoad)
	}
}

func TestPSRSEmpty(t *testing.T) {
	in := make([][]float64, 4)
	verify(t, in, runPSRS(t, 4, in))
}
