// Package psrs implements classic Parallel Sorting by Regular Sampling
// (Li, Lu, Schaeffer, Shillington, Wong, Shi — Parallel Computing 1993),
// the algorithm whose load-balance analysis (the O(2N/p) bound without
// duplicates, degrading linearly with skew) the paper builds on. It is
// the "classical PSS algorithm" of the paper's introduction and serves
// as a second baseline: correct and simple, but with no duplicate
// handling in its partition.
package psrs

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
)

// Options configures PSRS.
type Options struct {
	// Cores bounds the goroutines for local sorting.
	Cores int
	// Mem emulates the rank's memory budget (nil = unlimited).
	Mem *memlimit.Gauge
	// Timer accrues per-phase time when non-nil.
	Timer *metrics.PhaseTimer
}

func (o Options) cores() int {
	if o.Cores < 1 {
		return 1
	}
	return o.Cores
}

func (o Options) timer() *metrics.PhaseTimer {
	if o.Timer != nil {
		return o.Timer
	}
	return metrics.NewPhaseTimer()
}

// Sort runs PSRS collectively: local sort, regular sampling, gather of
// all samples on rank 0, broadcast of p-1 global pivots, upper_bound
// partition (duplicates all land on one rank), one all-to-all, k-way
// merge. Not stable, not skew-aware — by design.
func Sort[T any](c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	tm := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()

	recSize := int64(cd.Size())
	if err := opt.Mem.Reserve(int64(len(data)) * recSize); err != nil {
		return nil, fmt.Errorf("psrs: input buffer: %w", err)
	}

	tm.Start(metrics.PhaseLocalSort)
	// PSRS is never stable, so integer-keyed codecs always qualify for
	// the LSD radix dispatch.
	if !radix.DispatchLocal(data, cd, cmp) {
		psort.ParallelSort(data, opt.cores(), false, cmp)
	}
	p := c.Size()
	if p == 1 {
		return data, nil
	}

	// Regular sampling, gathered on rank 0 (the classic formulation).
	tm.Start(metrics.PhasePivotSelection)
	samples := pivots.RegularSample(data, p)
	parts, err := c.Gather(0, codec.EncodeSlice(cd, nil, samples))
	if err != nil {
		return nil, fmt.Errorf("psrs: sample gather: %w", err)
	}
	var pgBuf []byte
	if c.Rank() == 0 {
		var pool []T
		for r, buf := range parts {
			recs, err := codec.DecodeSlice(cd, buf)
			if err != nil {
				return nil, fmt.Errorf("psrs: samples from rank %d: %w", r, err)
			}
			pool = append(pool, recs...)
		}
		psort.Sort(pool, cmp)
		var pg []T
		if len(pool) > 0 {
			for i := 1; i < p; i++ {
				idx := i*len(pool)/p - 1
				if idx < 0 {
					idx = 0
				}
				pg = append(pg, pool[idx])
			}
		}
		pgBuf = codec.EncodeSlice(cd, nil, pg)
	}
	pgBuf, err = c.Bcast(0, pgBuf)
	if err != nil {
		return nil, fmt.Errorf("psrs: pivot broadcast: %w", err)
	}
	pg, err := codec.DecodeSlice(cd, pgBuf)
	if err != nil {
		return nil, fmt.Errorf("psrs: pivot decode: %w", err)
	}
	if len(pg) == 0 {
		return data, nil // empty dataset
	}

	// Plain upper_bound partition: no duplicate awareness.
	bounds := make([]int, p+1)
	bounds[p] = len(data)
	for j, s := range pg {
		bounds[j+1] = partition.UpperBound(data, s, cmp)
	}
	for j := 1; j <= p; j++ {
		if bounds[j] < bounds[j-1] {
			bounds[j] = bounds[j-1]
		}
	}

	tm.Start(metrics.PhaseExchange)
	sendParts := make([][]byte, p)
	for dst := 0; dst < p; dst++ {
		// Zero-copy-capable codecs scatter straight from the record
		// slab; data is not touched again until the exchange returns.
		if wire, ok := codec.View(cd, data[bounds[dst]:bounds[dst+1]]); ok {
			sendParts[dst] = wire
			continue
		}
		sendParts[dst] = codec.EncodeSlice(cd, nil, data[bounds[dst]:bounds[dst+1]])
	}
	recv, err := c.Alltoall(sendParts)
	if err != nil {
		return nil, fmt.Errorf("psrs: exchange: %w", err)
	}
	var incoming int64
	for src, buf := range recv {
		if src != c.Rank() {
			incoming += int64(len(buf))
		}
	}
	if err := opt.Mem.Reserve(incoming); err != nil {
		return nil, fmt.Errorf("psrs: receive buffer: %w", err)
	}

	tm.Start(metrics.PhaseLocalOrdering)
	chunks := make([][]T, p)
	for src := 0; src < p; src++ {
		chunk, err := codec.DecodeSlice(cd, recv[src])
		if err != nil {
			return nil, fmt.Errorf("psrs: decode from rank %d: %w", src, err)
		}
		chunks[src] = chunk
	}
	return psort.KWayMerge(chunks, cmp), nil
}
