// Package psrs implements classic Parallel Sorting by Regular Sampling
// (Li, Lu, Schaeffer, Shillington, Wong, Shi — Parallel Computing 1993),
// the algorithm whose load-balance analysis (the O(2N/p) bound without
// duplicates, degrading linearly with skew) the paper builds on. It is
// the "classical PSS algorithm" of the paper's introduction and serves
// as a second baseline: correct and simple, but with no duplicate
// handling in its partition.
//
// The all-to-all runs through core.ExchangeSorted, the shared driver
// exchange: staged/zero-copy collectives, memory-budget accounting and
// the optional spill tier come from there rather than a private path.
package psrs

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
	"sdssort/internal/trace"
)

// Options configures PSRS.
type Options struct {
	// Cores bounds the goroutines for local sorting.
	Cores int
	// Mem emulates the rank's memory budget (nil = unlimited).
	Mem *memlimit.Gauge
	// Timer accrues per-phase time when non-nil.
	Timer *metrics.PhaseTimer
	// StageBytes bounds the staging window of the exchange, as
	// core.Options.StageBytes does for SDS-Sort. Zero keeps the
	// monolithic exchange.
	StageBytes int64
	// Exchange accrues staged-exchange counters when non-nil.
	Exchange *metrics.ExchangeStats
	// Spill enables the out-of-core spill tier for the exchange (must
	// agree across ranks; the decision is collective).
	Spill *core.SpillOptions
	// Trace receives structured events when non-nil.
	Trace trace.Tracer
	// Span is the ambient span scope the exchange's spans nest under
	// (typically the driver-level "sort" root).
	Span trace.Scope
	// Skew accrues per-phase imbalance diagnostics when non-nil. Like
	// Spill, it must agree across ranks: the observation is collective.
	Skew *metrics.SkewStats
}

func (o Options) cores() int {
	if o.Cores < 1 {
		return 1
	}
	return o.Cores
}

func (o Options) timer() *metrics.PhaseTimer {
	if o.Timer != nil {
		return o.Timer
	}
	return metrics.NewPhaseTimer()
}

// coreOpt maps the PSRS knobs onto the shared exchange's options. TauO
// is pinned to zero: the classic formulation is one synchronous
// all-to-all followed by a k-way merge.
func (o Options) coreOpt(tm *metrics.PhaseTimer) core.Options {
	c := core.DefaultOptions()
	c.Cores = o.Cores
	c.Mem = o.Mem
	c.Timer = tm
	c.StageBytes = o.StageBytes
	c.Exchange = o.Exchange
	c.Spill = o.Spill
	c.Trace = o.Trace
	c.Span = o.Span
	c.Skew = o.Skew
	c.TauO = 0
	return c
}

// Sort runs PSRS collectively: local sort, regular sampling, gather of
// all samples on rank 0, broadcast of p-1 global pivots, upper_bound
// partition (duplicates all land on one rank), one all-to-all, k-way
// merge. Not stable, not skew-aware — by design.
func Sort[T any](c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	tm := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()

	recSize := int64(cd.Size())
	// held tracks the bytes this call still holds against the gauge:
	// the input reservation until ExchangeSorted settles it, then the
	// output. The defer returns the remainder on every exit.
	held := int64(len(data)) * recSize
	if err := opt.Mem.Reserve(held); err != nil {
		return nil, fmt.Errorf("psrs: input buffer: %w", err)
	}
	defer func() { opt.Mem.Release(held) }()

	tm.Start(metrics.PhaseLocalSort)
	// PSRS is never stable, so integer-keyed codecs always qualify for
	// the LSD radix dispatch.
	if !radix.DispatchLocal(data, cd, cmp) {
		psort.ParallelSort(data, opt.cores(), false, cmp)
	}
	p := c.Size()
	if p == 1 {
		return data, nil
	}

	// Regular sampling, gathered on rank 0 (the classic formulation).
	tm.Start(metrics.PhasePivotSelection)
	samples := pivots.RegularSample(data, p)
	parts, err := c.Gather(0, codec.EncodeSlice(cd, nil, samples))
	if err != nil {
		return nil, fmt.Errorf("psrs: sample gather: %w", err)
	}
	var pgBuf []byte
	if c.Rank() == 0 {
		var pool []T
		for r, buf := range parts {
			recs, err := codec.DecodeSlice(cd, buf)
			if err != nil {
				return nil, fmt.Errorf("psrs: samples from rank %d: %w", r, err)
			}
			pool = append(pool, recs...)
		}
		psort.Sort(pool, cmp)
		var pg []T
		if len(pool) > 0 {
			for i := 1; i < p; i++ {
				idx := i*len(pool)/p - 1
				if idx < 0 {
					idx = 0
				}
				pg = append(pg, pool[idx])
			}
		}
		pgBuf = codec.EncodeSlice(cd, nil, pg)
	}
	pgBuf, err = c.Bcast(0, pgBuf)
	if err != nil {
		return nil, fmt.Errorf("psrs: pivot broadcast: %w", err)
	}
	pg, err := codec.DecodeSlice(cd, pgBuf)
	if err != nil {
		return nil, fmt.Errorf("psrs: pivot decode: %w", err)
	}
	if len(pg) == 0 {
		return data, nil // empty dataset
	}

	// Plain upper_bound partition: no duplicate awareness.
	bounds := make([]int, p+1)
	bounds[p] = len(data)
	for j, s := range pg {
		bounds[j+1] = partition.UpperBound(data, s, cmp)
	}
	for j := 1; j <= p; j++ {
		if bounds[j] < bounds[j-1] {
			bounds[j] = bounds[j-1]
		}
	}

	out, err := core.ExchangeSorted(c, data, bounds, cd, cmp, opt.coreOpt(tm))
	if err != nil {
		held = 0 // ExchangeSorted settled the ledger on failure
		return nil, fmt.Errorf("psrs: exchange: %w", err)
	}
	held = int64(len(out)) * recSize
	return out, nil
}
