// Package simnet is a LogGP-style network cost model layered under the
// comm runtime. It stands in for the Cray Aries interconnect of the
// paper's testbed: every message is charged a per-message overhead o, a
// wire latency L, and a serialisation cost size/bandwidth, with cheaper
// constants for node-local (shared-memory) traffic.
//
// Two modes are supported:
//
//   - Virtual: per-rank simulated clocks advance by the modeled costs
//     plus measured compute time; nothing slows down for real. Message
//     arrival times piggyback on the payload, so waiting for a message
//     synchronises the receiver's clock with the sender's — collectives
//     and barriers come out right without the model knowing about them.
//     The fabric's makespan is the maximum clock after the run.
//
//   - Sleep: the modeled costs are also slept for real, so wall-clock
//     measurements (and genuine computation/communication overlap, as in
//     the paper's Fig 5b) reflect the modeled network. Constants should
//     be chosen well above timer granularity (≥ ~100µs) in this mode.
//
// The model is deliberately simple — the experiments need the paper's
// crossover shapes (per-message cost versus bandwidth cost, overlap
// versus no overlap), not cycle accuracy.
package simnet

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"sdssort/internal/comm"
)

// Mode selects how modeled time is applied.
type Mode int

const (
	// Virtual accounts modeled time on per-rank clocks only.
	Virtual Mode = iota
	// Sleep additionally sleeps the modeled communication costs so
	// they show up in wall-clock time.
	Sleep
)

// Params is one link class's cost model.
type Params struct {
	// Overhead is the per-message CPU cost at each endpoint (LogGP o).
	Overhead time.Duration
	// Latency is the in-flight wire time per message (LogGP L).
	Latency time.Duration
	// Bandwidth is the sustained bytes/second of one rank's injection.
	Bandwidth float64
}

// cost returns the sender-side cost and the in-flight delay for a
// message of n bytes.
func (p Params) cost(n int) (send, flight time.Duration) {
	send = p.Overhead
	if p.Bandwidth > 0 {
		send += time.Duration(float64(n) / p.Bandwidth * float64(time.Second))
	}
	return send, p.Latency
}

// Profile describes a machine's interconnect: separate parameters for
// cross-node (network) and intra-node (shared memory) messages.
type Profile struct {
	Name   string
	Remote Params
	Local  Params
	// ComputeScale multiplies measured real compute time before it is
	// charged to the virtual clock (1.0 = this host's CPU).
	ComputeScale float64
}

// Aries approximates the paper's Cray Aries numbers (0.25-3.7µs MPI
// latency, 8GB/s per-rank bandwidth), usable in Virtual mode.
func Aries() Profile {
	return Profile{
		Name:         "aries",
		Remote:       Params{Overhead: 500 * time.Nanosecond, Latency: 2 * time.Microsecond, Bandwidth: 8 << 30},
		Local:        Params{Overhead: 100 * time.Nanosecond, Latency: 200 * time.Nanosecond, Bandwidth: 32 << 30},
		ComputeScale: 1,
	}
}

// AriesScaled is Aries with all time constants multiplied by k and
// bandwidth divided by k — the profile used in Sleep mode, where costs
// must clear the OS timer granularity to be observable.
func AriesScaled(k float64) Profile {
	p := Aries()
	p.Name = fmt.Sprintf("aries×%g", k)
	scale := func(q *Params) {
		q.Overhead = time.Duration(float64(q.Overhead) * k)
		q.Latency = time.Duration(float64(q.Latency) * k)
		q.Bandwidth /= k
	}
	scale(&p.Remote)
	scale(&p.Local)
	return p
}

// GigE approximates commodity gigabit Ethernet — the "low-throughput
// network" regime where the paper's node-level merging always pays.
func GigE() Profile {
	return Profile{
		Name:         "gige",
		Remote:       Params{Overhead: 20 * time.Microsecond, Latency: 50 * time.Microsecond, Bandwidth: 110 << 20},
		Local:        Params{Overhead: 100 * time.Nanosecond, Latency: 200 * time.Nanosecond, Bandwidth: 32 << 30},
		ComputeScale: 1,
	}
}

// Fabric owns the per-rank virtual clocks for one simulated machine.
type Fabric struct {
	profile Profile
	mode    Mode
	mu      sync.Mutex
	clocks  []time.Duration // virtual time per world rank
}

// NewFabric creates a fabric for size ranks.
func NewFabric(profile Profile, mode Mode, size int) *Fabric {
	if profile.ComputeScale == 0 {
		profile.ComputeScale = 1
	}
	return &Fabric{profile: profile, mode: mode, clocks: make([]time.Duration, size)}
}

// Wrap decorates a rank's transport with the cost model. Use it as the
// cluster launcher's WrapTransport hook.
func (f *Fabric) Wrap(tr comm.Transport) comm.Transport {
	return &transport{Transport: tr, f: f, rank: tr.Rank(), lastReal: time.Now()}
}

// Clock returns rank r's virtual time.
func (f *Fabric) Clock(r int) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clocks[r]
}

// Makespan returns the maximum virtual clock — the simulated parallel
// runtime of everything executed so far.
func (f *Fabric) Makespan() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	var m time.Duration
	for _, c := range f.clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// Reset zeroes all clocks.
func (f *Fabric) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.clocks {
		f.clocks[i] = 0
	}
}

func (f *Fabric) params(local bool) Params {
	if local {
		return f.profile.Local
	}
	return f.profile.Remote
}

// advance adds d to rank r's clock and returns the new value.
func (f *Fabric) advance(r int, d time.Duration) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clocks[r] += d
	return f.clocks[r]
}

// syncTo raises rank r's clock to at least t and returns the new value.
func (f *Fabric) syncTo(r int, t time.Duration) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t > f.clocks[r] {
		f.clocks[r] = t
	}
	return f.clocks[r]
}

// transport charges the cost model around a base transport. A rank's
// transport may be used from several goroutines (Isend/Irecv), so clock
// updates go through the fabric's lock; the compute timer uses its own.
type transport struct {
	comm.Transport
	f    *Fabric
	rank int

	computeMu sync.Mutex
	lastReal  time.Time
}

// chargeCompute converts real time elapsed since the last communication
// call into virtual compute time. Blocked time inside Recv is excluded
// by resetting the timer after the blocking call returns.
func (t *transport) chargeCompute() {
	t.computeMu.Lock()
	now := time.Now()
	elapsed := now.Sub(t.lastReal)
	t.lastReal = now
	t.computeMu.Unlock()
	if elapsed > 0 {
		t.f.advance(t.rank, time.Duration(float64(elapsed)*t.f.profile.ComputeScale))
	}
}

func (t *transport) resetComputeTimer() {
	t.computeMu.Lock()
	t.lastReal = time.Now()
	t.computeMu.Unlock()
}

const header = 8 // arrival timestamp, little-endian virtual nanoseconds

func (t *transport) Send(dst int, ctx uint64, tag int32, data []byte) error {
	t.chargeCompute()
	local := t.NodeOf(dst) == t.Node()
	sendCost, flight := t.f.params(local).cost(len(data))
	if t.f.mode == Sleep {
		time.Sleep(sendCost)
	}
	now := t.f.advance(t.rank, sendCost)
	arrival := now + flight

	buf := make([]byte, header+len(data))
	binary.LittleEndian.PutUint64(buf, uint64(arrival))
	copy(buf[header:], data)
	err := t.Transport.Send(dst, ctx, tag, buf)
	t.resetComputeTimer()
	return err
}

func (t *transport) Recv(src int, ctx uint64, tag int32) ([]byte, error) {
	t.chargeCompute()
	buf, err := t.Transport.Recv(src, ctx, tag)
	if err != nil {
		t.resetComputeTimer()
		return nil, err
	}
	// The timer is reset only at the very end: neither the blocking
	// wait nor the modeled sleeps below may be re-charged as compute
	// by the next operation, or clocks would compound runaway.
	defer t.resetComputeTimer()
	if len(buf) < header {
		return nil, fmt.Errorf("simnet: frame shorter than cost header (%d bytes)", len(buf))
	}
	arrival := time.Duration(binary.LittleEndian.Uint64(buf))
	local := t.NodeOf(src) == t.Node()
	recvCost := t.f.params(local).Overhead
	if t.f.mode == Sleep {
		// Sleep until the modeled arrival of the data that has, in
		// real terms, already arrived: the remaining latency is the
		// modeled in-flight time beyond our current virtual clock.
		if lag := arrival - t.f.Clock(t.rank); lag > 0 {
			time.Sleep(lag)
		}
		time.Sleep(recvCost)
	}
	t.f.syncTo(t.rank, arrival)
	t.f.advance(t.rank, recvCost)
	return buf[header:], nil
}
