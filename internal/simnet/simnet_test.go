package simnet

import (
	"fmt"
	"testing"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/comm"
)

// testProfile has exaggerated, easily-checkable constants and no
// compute charging noise sensitivity.
func testProfile() Profile {
	return Profile{
		Name:         "test",
		Remote:       Params{Overhead: time.Millisecond, Latency: 10 * time.Millisecond, Bandwidth: 1 << 20},
		Local:        Params{Overhead: 100 * time.Microsecond, Latency: time.Millisecond, Bandwidth: 16 << 20},
		ComputeScale: 0, // normalised to 1 by NewFabric... set explicitly below
	}
}

func TestVirtualClockAdvancesOnSend(t *testing.T) {
	prof := testProfile()
	prof.ComputeScale = 1e-9 // effectively ignore real compute time
	fab := NewFabric(prof, Virtual, 2)
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	err := cluster.RunOpts(topo, cluster.Options{WrapTransport: fab.Wrap}, func(c *comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 1<<20)) // 1 MiB at 1 MiB/s ≈ 1 s
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: overhead + serialisation ≈ 1.001 s.
	if got := fab.Clock(0); got < 900*time.Millisecond || got > 1200*time.Millisecond {
		t.Fatalf("sender clock %v", got)
	}
	// Receiver: arrival (≈1.011 s) + recv overhead.
	if got := fab.Clock(1); got < fab.Clock(0)+prof.Remote.Latency/2 {
		t.Fatalf("receiver clock %v not past sender %v + latency", got, fab.Clock(0))
	}
	if fab.Makespan() != fab.Clock(1) {
		t.Fatal("makespan should be the receiver's clock")
	}
}

func TestLocalTrafficCheaper(t *testing.T) {
	prof := testProfile()
	prof.ComputeScale = 1e-9
	run := func(sameNode bool) time.Duration {
		topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
		if sameNode {
			topo = cluster.Topology{Nodes: 1, CoresPerNode: 2}
		}
		fab := NewFabric(prof, Virtual, 2)
		err := cluster.RunOpts(topo, cluster.Options{WrapTransport: fab.Wrap}, func(c *comm.Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, make([]byte, 64<<10))
			}
			_, err := c.Recv(0, 0)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return fab.Makespan()
	}
	local := run(true)
	remote := run(false)
	if local >= remote {
		t.Fatalf("local message (%v) not cheaper than remote (%v)", local, remote)
	}
}

func TestPerMessageCostDominatesSmallMessages(t *testing.T) {
	// The τm rationale: many small messages cost more than few big
	// ones of the same total volume.
	prof := testProfile()
	prof.ComputeScale = 1e-9
	const totalBytes = 64 << 10
	run := func(messages int) time.Duration {
		fab := NewFabric(prof, Virtual, 2)
		topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
		err := cluster.RunOpts(topo, cluster.Options{WrapTransport: fab.Wrap}, func(c *comm.Comm) error {
			per := totalBytes / messages
			if c.Rank() == 0 {
				for i := 0; i < messages; i++ {
					if err := c.Send(1, 0, make([]byte, per)); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < messages; i++ {
				if _, err := c.Recv(0, 0); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fab.Makespan()
	}
	many := run(64)
	few := run(1)
	if many <= few {
		t.Fatalf("64 small messages (%v) should cost more than 1 large (%v)", many, few)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	prof := testProfile()
	prof.ComputeScale = 1e-9
	fab := NewFabric(prof, Virtual, 4)
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 1}
	err := cluster.RunOpts(topo, cluster.Options{WrapTransport: fab.Wrap}, func(c *comm.Comm) error {
		if c.Rank() == 0 {
			// Rank 0 does heavy "communication work" first.
			for i := 0; i < 20; i++ {
				if err := c.Send(0+1, 5, make([]byte, 32<<10)); err != nil {
					return err
				}
			}
		}
		if c.Rank() == 1 {
			for i := 0; i < 20; i++ {
				if _, err := c.Recv(0, 5); err != nil {
					return err
				}
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// After a barrier every clock is at least the max pre-barrier
	// clock (ranks 2,3 were idle but must be dragged forward).
	ref := fab.Clock(1)
	for r := 0; r < 4; r++ {
		if fab.Clock(r) < ref/2 {
			t.Fatalf("rank %d clock %v far below synchronised %v", r, fab.Clock(r), ref)
		}
	}
}

func TestResetZeroesClocks(t *testing.T) {
	fab := NewFabric(Aries(), Virtual, 2)
	fab.advance(0, time.Second)
	fab.Reset()
	if fab.Makespan() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSleepModeTakesRealTime(t *testing.T) {
	prof := Profile{
		Name:         "sleepy",
		Remote:       Params{Overhead: 5 * time.Millisecond, Latency: 20 * time.Millisecond, Bandwidth: 1 << 30},
		Local:        Params{Overhead: 5 * time.Millisecond, Latency: 20 * time.Millisecond, Bandwidth: 1 << 30},
		ComputeScale: 1,
	}
	fab := NewFabric(prof, Sleep, 2)
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	start := time.Now()
	err := cluster.RunOpts(topo, cluster.Options{WrapTransport: fab.Wrap}, func(c *comm.Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte{1})
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("sleep mode finished in %v, modeled cost ≥ 25ms", elapsed)
	}
}

func TestProfiles(t *testing.T) {
	a := Aries()
	if a.Remote.Bandwidth <= 0 || a.Local.Latency >= a.Remote.Latency*10 {
		t.Fatalf("suspicious Aries profile: %+v", a)
	}
	s := AriesScaled(100)
	if s.Remote.Latency != a.Remote.Latency*100 {
		t.Fatalf("scaled latency %v", s.Remote.Latency)
	}
	if s.Remote.Bandwidth != a.Remote.Bandwidth/100 {
		t.Fatalf("scaled bandwidth %v", s.Remote.Bandwidth)
	}
	g := GigE()
	if g.Remote.Bandwidth >= a.Remote.Bandwidth {
		t.Fatal("GigE should be slower than Aries")
	}
}

func TestShortFrameRejected(t *testing.T) {
	// A raw (unwrapped) sender talking to a wrapped receiver would
	// deliver frames without the cost header; the receiver must
	// reject them rather than misread garbage.
	world, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	fab := NewFabric(Aries(), Virtual, 2)
	raw := comm.New(world.Transport(0))
	wrapped := comm.New(fab.Wrap(world.Transport(1)))
	done := make(chan error, 1)
	go func() {
		_, err := wrapped.Recv(0, 0)
		done <- err
	}()
	if err := raw.Send(1, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("short frame accepted")
	} else if want := "cost header"; !contains(err.Error(), want) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFabricClockHelpers(t *testing.T) {
	fab := NewFabric(Aries(), Virtual, 3)
	fab.advance(1, 5*time.Millisecond)
	fab.syncTo(1, 2*time.Millisecond) // lower: no-op
	if fab.Clock(1) != 5*time.Millisecond {
		t.Fatal("syncTo lowered a clock")
	}
	fab.syncTo(2, 7*time.Millisecond)
	if fab.Makespan() != 7*time.Millisecond {
		t.Fatalf("makespan %v", fab.Makespan())
	}
	if fmt.Sprint(fab.Clock(0)) != "0s" {
		t.Fatal("untouched clock moved")
	}
}
