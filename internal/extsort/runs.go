package extsort

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sdssort/internal/codec"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/recordio"
)

// This file is the shared run-file layer of the out-of-core spill
// tier: atomically-committed sorted run files in the recordio format,
// and a lazy k-way merge over them with a bounded fan-in. extsort.Sort
// is one client; core.Sort's spill paths are the other.

// TempPrefix marks an in-flight (uncommitted) run file. A crash can
// leave such files behind; they are never read — committed runs have
// no prefix — and RemoveStaleTemps sweeps them on the next attempt.
const TempPrefix = ".tmp-run-"

// RemoveStaleTemps deletes uncommitted run temp files left in dir by a
// crashed writer. Missing dir is not an error.
func RemoveStaleTemps(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("extsort: sweep temps: %w", err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("extsort: sweep temps: %w", err)
			}
		}
	}
	return nil
}

// RunWriter streams records into a run file that becomes visible at
// its final path only on Commit — the checkpoint writer's
// temp-and-rename idiom, so readers never observe a partial run.
type RunWriter[T any] struct {
	f    *os.File
	w    *recordio.Writer[T]
	path string
	size int
	done bool
}

// CreateRun opens an atomic run writer targeting path, buffering
// bufBytes (<=0 means the recordio default).
func CreateRun[T any](path string, cd codec.Codec[T], bufBytes int) (*RunWriter[T], error) {
	f, err := os.CreateTemp(filepath.Dir(path), TempPrefix+"*")
	if err != nil {
		return nil, fmt.Errorf("extsort: create run: %w", err)
	}
	var w *recordio.Writer[T]
	if bufBytes > 0 {
		w = recordio.NewWriterSize(f, cd, bufBytes)
	} else {
		w = recordio.NewWriter(f, cd)
	}
	return &RunWriter[T]{f: f, w: w, path: path, size: cd.Size()}, nil
}

// Write appends records to the uncommitted run.
func (rw *RunWriter[T]) Write(recs ...T) error { return rw.w.Write(recs...) }

// Count returns the records written so far.
func (rw *RunWriter[T]) Count() int64 { return rw.w.Count() }

// Bytes returns the payload bytes written so far.
func (rw *RunWriter[T]) Bytes() int64 { return rw.w.Count() * int64(rw.size) }

// Commit flushes, closes and renames the temp file to its final path.
// On any failure the temp is removed and the final path is untouched.
func (rw *RunWriter[T]) Commit() error {
	if rw.done {
		return nil
	}
	rw.done = true
	if err := rw.w.Flush(); err != nil {
		rw.f.Close()
		os.Remove(rw.f.Name())
		return fmt.Errorf("extsort: commit run: %w", err)
	}
	if err := rw.f.Close(); err != nil {
		os.Remove(rw.f.Name())
		return fmt.Errorf("extsort: commit run: %w", err)
	}
	if err := os.Rename(rw.f.Name(), rw.path); err != nil {
		os.Remove(rw.f.Name())
		return fmt.Errorf("extsort: commit run: %w", err)
	}
	return nil
}

// Abort discards the uncommitted run. Safe after Commit (no-op).
func (rw *RunWriter[T]) Abort() {
	if rw.done {
		return
	}
	rw.done = true
	rw.f.Close()
	os.Remove(rw.f.Name())
}

// WriteRun atomically writes recs as a committed run file at path.
func WriteRun[T any](path string, cd codec.Codec[T], recs []T) error {
	rw, err := CreateRun(path, cd, 0)
	if err != nil {
		return err
	}
	if err := rw.Write(recs...); err != nil {
		rw.Abort()
		return fmt.Errorf("extsort: write run %s: %w", path, err)
	}
	return rw.Commit()
}

// RawRunWriter is RunWriter for pre-encoded record bytes: the spill
// tier's exchange receive side streams wire-format chunks to disk as
// they arrive, with no decode — a run file IS the codec's wire format.
// Same atomic commit: temp in the target directory, rename on Commit.
type RawRunWriter struct {
	f    *os.File
	w    *bufio.Writer
	path string
	n    int64
	done bool
}

// CreateRawRun opens an atomic raw run writer targeting path.
func CreateRawRun(path string, bufBytes int) (*RawRunWriter, error) {
	f, err := os.CreateTemp(filepath.Dir(path), TempPrefix+"*")
	if err != nil {
		return nil, fmt.Errorf("extsort: create run: %w", err)
	}
	if bufBytes <= 0 {
		bufBytes = 1 << 20
	}
	return &RawRunWriter{f: f, w: bufio.NewWriterSize(f, bufBytes), path: path}, nil
}

// Write appends encoded record bytes to the uncommitted run.
func (rw *RawRunWriter) Write(b []byte) (int, error) {
	n, err := rw.w.Write(b)
	rw.n += int64(n)
	if err != nil {
		return n, fmt.Errorf("extsort: write run: %w", err)
	}
	return n, nil
}

// Bytes returns the payload bytes written so far.
func (rw *RawRunWriter) Bytes() int64 { return rw.n }

// Commit flushes, closes and renames into place; on failure the temp
// is removed and the final path untouched.
func (rw *RawRunWriter) Commit() error {
	if rw.done {
		return nil
	}
	rw.done = true
	if err := rw.w.Flush(); err != nil {
		rw.f.Close()
		os.Remove(rw.f.Name())
		return fmt.Errorf("extsort: commit run: %w", err)
	}
	if err := rw.f.Close(); err != nil {
		os.Remove(rw.f.Name())
		return fmt.Errorf("extsort: commit run: %w", err)
	}
	if err := os.Rename(rw.f.Name(), rw.path); err != nil {
		os.Remove(rw.f.Name())
		return fmt.Errorf("extsort: commit run: %w", err)
	}
	return nil
}

// Abort discards the uncommitted run. Safe after Commit (no-op).
func (rw *RawRunWriter) Abort() {
	if rw.done {
		return
	}
	rw.done = true
	rw.f.Close()
	os.Remove(rw.f.Name())
}

// MergeOptions configures a lazy merge over run files.
type MergeOptions struct {
	// MaxFanIn caps how many run cursors a single merge pass holds
	// open; when there are more runs, batches are pre-merged into
	// intermediate runs first (consuming — deleting — their inputs).
	// Default 64.
	MaxFanIn int
	// BufBytes is the read/write buffer per open run cursor. The merge
	// reserves (fan-in + 1) × BufBytes from Mem: one buffer per cursor
	// plus one writer. Default 256 KiB.
	BufBytes int
	// Mem accounts the cursor buffers; nil means unlimited.
	Mem *memlimit.Gauge
	// TempDir holds intermediate pre-merge runs; defaults to the
	// directory of the first run.
	TempDir string
	// Stats accrues merge-pass and intermediate-run counters.
	Stats *metrics.SpillStats
}

func (o MergeOptions) maxFanIn() int {
	if o.MaxFanIn <= 0 {
		return 64
	}
	// A 1-way "merge" could never reduce the run count.
	if o.MaxFanIn < 2 {
		return 2
	}
	return o.MaxFanIn
}

func (o MergeOptions) bufBytes() int {
	if o.BufBytes <= 0 {
		return 256 << 10
	}
	return o.BufBytes
}

// MergeStream is a lazy cursor over the merged order of a set of
// sorted run files. Records stream from disk through per-run buffers;
// nothing is held resident beyond (fan-in + 1) × BufBytes, which is
// reserved from MergeOptions.Mem for the stream's lifetime.
type MergeStream[T any] struct {
	h        *runHeap[T]
	mem      *memlimit.Gauge
	reserved int64
	closed   bool
}

// RunSegment is one sorted stretch of a committed run file: records
// [Lo, Hi) by record index, Hi < 0 meaning through end of file. The
// spill driver's send side merges per-destination segments of its
// local runs without materialising them.
type RunSegment struct {
	Path   string
	Lo, Hi int64
}

// wholeRuns converts run paths to full-file segments.
func wholeRuns(runs []string) []RunSegment {
	segs := make([]RunSegment, len(runs))
	for i, p := range runs {
		segs[i] = RunSegment{Path: p, Lo: 0, Hi: -1}
	}
	return segs
}

// OpenMerge opens a merge stream over runs (paths of committed run
// files, in stability order). If there are more runs than MaxFanIn,
// whole batches are first pre-merged into intermediate runs — each
// pass consumes and deletes its input files — until one pass fits.
func OpenMerge[T any](runs []string, cd codec.Codec[T], cmp func(a, b T) int, opt MergeOptions) (*MergeStream[T], error) {
	return openMergeCapped(wholeRuns(runs), true, cd, cmp, opt)
}

// OpenMergeSegments is OpenMerge over run segments. Segments may alias
// the same file, so fan-in-capped pre-merges never delete their inputs
// here; intermediate runs land in MergeOptions.TempDir (default: the
// first segment's directory) and are left for the caller's directory
// cleanup.
func OpenMergeSegments[T any](segs []RunSegment, cd codec.Codec[T], cmp func(a, b T) int, opt MergeOptions) (*MergeStream[T], error) {
	return openMergeCapped(append([]RunSegment(nil), segs...), false, cd, cmp, opt)
}

func openMergeCapped[T any](segs []RunSegment, consume bool, cd codec.Codec[T], cmp func(a, b T) int, opt MergeOptions) (*MergeStream[T], error) {
	fan := opt.maxFanIn()
	seq := 0
	for len(segs) > fan {
		next := segs[:0:0]
		for i := 0; i < len(segs); i += fan {
			j := min(i+fan, len(segs))
			if j-i == 1 {
				next = append(next, segs[i])
				continue
			}
			dir := opt.TempDir
			if dir == "" {
				dir = filepath.Dir(segs[i].Path)
			}
			dst := filepath.Join(dir, fmt.Sprintf("premerge-%06d", seq))
			seq++
			if err := premerge(segs[i:j], dst, cd, cmp, opt); err != nil {
				return nil, err
			}
			if consume {
				for _, s := range segs[i:j] {
					os.Remove(s.Path)
				}
			}
			next = append(next, RunSegment{Path: dst, Lo: 0, Hi: -1})
		}
		segs = next
	}
	ms, err := openCursors(segs, cd, cmp, opt)
	if err != nil {
		return nil, err
	}
	if len(segs) > 1 {
		opt.Stats.AddMerge(len(segs))
	}
	return ms, nil
}

// openCursors opens one read cursor per segment and heapifies the
// heads.
func openCursors[T any](segs []RunSegment, cd codec.Codec[T], cmp func(a, b T) int, opt MergeOptions) (*MergeStream[T], error) {
	ms := &MergeStream[T]{h: &runHeap[T]{cmp: cmp}, mem: opt.Mem}
	need := int64(len(segs)) * int64(opt.bufBytes())
	if err := opt.Mem.Reserve(need); err != nil {
		return nil, fmt.Errorf("extsort: merge buffers for %d runs: %w", len(segs), err)
	}
	ms.reserved = need
	recSize := int64(cd.Size())
	for idx, seg := range segs {
		if seg.Hi >= 0 && seg.Hi <= seg.Lo {
			continue
		}
		f, err := os.Open(seg.Path)
		if err != nil {
			ms.Close()
			return nil, fmt.Errorf("extsort: open run: %w", err)
		}
		if seg.Lo > 0 {
			if _, err := f.Seek(seg.Lo*recSize, io.SeekStart); err != nil {
				f.Close()
				ms.Close()
				return nil, fmt.Errorf("extsort: seek run: %w", err)
			}
		}
		left := int64(-1)
		if seg.Hi >= 0 {
			left = seg.Hi - seg.Lo
		}
		r := recordio.NewReaderSize(f, cd, opt.bufBytes())
		cur := &runHead[T]{reader: r, file: f, idx: idx, left: left}
		ok, err := cur.advance()
		if err != nil {
			f.Close()
			ms.Close()
			return nil, fmt.Errorf("extsort: run %d: %w", idx, err)
		}
		if !ok {
			f.Close()
			continue
		}
		ms.h.items = append(ms.h.items, cur)
	}
	heap.Init(ms.h)
	return ms, nil
}

// Next returns the next record in merged order, or io.EOF.
func (ms *MergeStream[T]) Next() (T, error) {
	var zero T
	if ms.h.Len() == 0 {
		return zero, io.EOF
	}
	top := ms.h.items[0]
	out := top.head
	ok, err := top.advance()
	if err != nil {
		return zero, fmt.Errorf("extsort: run %d: %w", top.idx, err)
	}
	if !ok {
		top.file.Close()
		heap.Pop(ms.h)
		return out, nil
	}
	heap.Fix(ms.h, 0)
	return out, nil
}

// Close releases the remaining cursors and the buffer reservation.
// Safe to call more than once.
func (ms *MergeStream[T]) Close() error {
	if ms.closed {
		return nil
	}
	ms.closed = true
	for _, it := range ms.h.items {
		it.file.Close()
	}
	ms.h.items = nil
	ms.mem.Release(ms.reserved)
	ms.reserved = 0
	return nil
}

// premerge streams one batch of run segments into a single committed
// intermediate run at dst.
func premerge[T any](batch []RunSegment, dst string, cd codec.Codec[T], cmp func(a, b T) int, opt MergeOptions) error {
	ms, err := openCursors(batch, cd, cmp, opt)
	if err != nil {
		return err
	}
	defer ms.Close()
	if err := opt.Mem.Reserve(int64(opt.bufBytes())); err != nil {
		return fmt.Errorf("extsort: pre-merge writer buffer: %w", err)
	}
	defer opt.Mem.Release(int64(opt.bufBytes()))
	rw, err := CreateRun(dst, cd, opt.bufBytes())
	if err != nil {
		return err
	}
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			rw.Abort()
			return err
		}
		if err := rw.Write(rec); err != nil {
			rw.Abort()
			return fmt.Errorf("extsort: pre-merge write: %w", err)
		}
	}
	bytes := rw.Bytes()
	if err := rw.Commit(); err != nil {
		return err
	}
	opt.Stats.AddRun(bytes)
	opt.Stats.AddMerge(len(batch))
	return nil
}

// Merge streams the merged order of runs into out as recordio. The
// writer's buffer is reserved from opt.Mem alongside the cursors'.
func Merge[T any](runs []string, out io.Writer, cd codec.Codec[T], cmp func(a, b T) int, opt MergeOptions) error {
	ms, err := OpenMerge(runs, cd, cmp, opt)
	if err != nil {
		return err
	}
	defer ms.Close()
	if err := opt.Mem.Reserve(int64(opt.bufBytes())); err != nil {
		return fmt.Errorf("extsort: merge writer buffer: %w", err)
	}
	defer opt.Mem.Release(int64(opt.bufBytes()))
	w := recordio.NewWriterSize(out, cd, opt.bufBytes())
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Flush()
}
