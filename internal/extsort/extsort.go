// Package extsort sorts record files larger than memory: chunks of the
// input are sorted in memory (with the same shared-memory substrate the
// distributed sort uses) and spilled to temporary run files, which are
// then streamed through a k-way merge into the output. This is the
// out-of-core regime the paper's related work (TritonSort, NTOSort — §5)
// addresses; SDS-Sort itself is in-memory, so this package is both the
// library's extension for datasets that do not fit and the shared
// run-file/merge layer core.Sort's spill tier is built on (runs.go).
package extsort

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sdssort/internal/codec"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
	"sdssort/internal/recordio"
)

// Options configures an external sort.
type Options struct {
	// ChunkRecords is the number of records sorted in memory per run;
	// it bounds peak memory at roughly ChunkRecords × record size × 2
	// (the chunk plus the sort's scratch buffer). Default 1<<20.
	ChunkRecords int
	// Cores bounds the goroutines used to sort each chunk.
	Cores int
	// Stable preserves input order of equal records across the whole
	// file (runs are merged in file order with a stable merge).
	Stable bool
	// TempDir holds the spill files; defaults to the OS temp dir.
	TempDir string
	// Mem, when non-nil, accounts the sort's documented peak — the
	// ChunkRecords × size × 2 chunk-phase footprint and the merge
	// phase's cursor buffers — against the gauge, so an external sort
	// inside a budgeted engine job cannot silently exceed the shared
	// budget. Every reservation is released by the time Sort returns.
	Mem *memlimit.Gauge
	// MaxFanIn caps the k-way merge width; more runs than this are
	// pre-merged in batches first. Default 64.
	MaxFanIn int
	// Stats accrues spill-tier counters (runs, bytes, merge passes).
	Stats *metrics.SpillStats
}

func (o Options) chunkRecords() int {
	if o.ChunkRecords <= 0 {
		return 1 << 20
	}
	return o.ChunkRecords
}

func (o Options) cores() int {
	if o.Cores < 1 {
		return 1
	}
	return o.Cores
}

// SortFile sorts the record file at in into out. The input is read once;
// peak memory is bounded by Options.ChunkRecords regardless of file
// size. The output commits atomically: it is written to a temp file in
// out's directory and renamed into place only on success, so an error
// (or a crash) never truncates or corrupts an existing out.
func SortFile[T any](in, out string, cd codec.Codec[T], cmp func(a, b T) int, opt Options) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	tmp, err := os.CreateTemp(filepath.Dir(out), TempPrefix+"out-*")
	if err != nil {
		return fmt.Errorf("extsort: temp output: %w", err)
	}
	if err := Sort(f, tmp, cd, cmp, opt); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("extsort: close output: %w", err)
	}
	if err := os.Rename(tmp.Name(), out); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("extsort: commit output: %w", err)
	}
	return nil
}

// Sort is SortFile over streams (minus the atomic-rename commit, which
// needs a named destination).
func Sort[T any](in io.Reader, out io.Writer, cd codec.Codec[T], cmp func(a, b T) int, opt Options) error {
	tmpDir, err := os.MkdirTemp(opt.TempDir, "extsort-*")
	if err != nil {
		return fmt.Errorf("extsort: temp dir: %w", err)
	}
	defer os.RemoveAll(tmpDir)

	// Phase 1: cut the input into sorted runs on disk.
	runs, err := spillRuns(in, tmpDir, cd, cmp, opt)
	if err != nil {
		return err
	}
	// Phase 2: stream-merge the runs.
	return Merge(runs, out, cd, cmp, MergeOptions{
		MaxFanIn: opt.MaxFanIn,
		Mem:      opt.Mem,
		TempDir:  tmpDir,
		Stats:    opt.Stats,
	})
}

// sortChunk orders one in-memory run, through the same radix dispatch
// core uses for its local sorts: integer-keyed codecs take the LSD
// radix fast path (gated to non-stable sorts, since key-stability is
// weaker than comparator-stability), everything else — and a dispatch
// whose order disagrees with cmp — falls back to the comparison sort.
func sortChunk[T any](chunk []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) {
	if !opt.Stable && radix.DispatchLocal(chunk, cd, cmp) {
		return
	}
	psort.ParallelSort(chunk, opt.cores(), opt.Stable, cmp)
}

// spillRuns reads the input chunk by chunk, sorts each chunk, and
// writes one run file per chunk. It returns the run paths in input
// order (which is what makes the merge stable overall). The chunk
// buffer and the sort's scratch copy — the documented
// ChunkRecords × size × 2 peak — are reserved from opt.Mem up front
// and released before returning.
func spillRuns[T any](in io.Reader, dir string, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]string, error) {
	limit := opt.chunkRecords()
	need := int64(limit) * int64(cd.Size()) * 2
	if err := opt.Mem.Reserve(need); err != nil {
		return nil, fmt.Errorf("extsort: chunk of %d records: %w", limit, err)
	}
	defer opt.Mem.Release(need)

	reader := recordio.NewReader(in, cd)
	var runs []string
	chunk := make([]T, 0, limit)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		sortChunk(chunk, cd, cmp, opt)
		path := filepath.Join(dir, fmt.Sprintf("run-%06d", len(runs)))
		if err := WriteRun(path, cd, chunk); err != nil {
			return fmt.Errorf("extsort: spill %s: %w", path, err)
		}
		opt.Stats.AddRun(int64(len(chunk)) * int64(cd.Size()))
		runs = append(runs, path)
		chunk = chunk[:0]
		return nil
	}
	for {
		rec, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("extsort: read input: %w", err)
		}
		chunk = append(chunk, rec)
		if len(chunk) >= limit {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return runs, nil
}

// runHead is one run segment's cursor in the merge heap.
type runHead[T any] struct {
	reader *recordio.Reader[T]
	file   *os.File
	head   T
	idx    int   // run index, the stability tiebreaker
	left   int64 // records remaining in the segment; -1 = until EOF
}

// advance loads the cursor's next record, reporting false at the end
// of the segment (record budget exhausted or clean EOF).
func (c *runHead[T]) advance() (bool, error) {
	if c.left == 0 {
		return false, nil
	}
	rec, err := c.reader.Read()
	if err == io.EOF {
		if c.left > 0 {
			return false, fmt.Errorf("segment ends %d records early", c.left)
		}
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if c.left > 0 {
		c.left--
	}
	c.head = rec
	return true, nil
}

// runHeap orders run cursors by (head record, run index).
type runHeap[T any] struct {
	items []*runHead[T]
	cmp   func(a, b T) int
}

func (h *runHeap[T]) Len() int { return len(h.items) }

func (h *runHeap[T]) Less(i, j int) bool {
	c := h.cmp(h.items[i].head, h.items[j].head)
	if c != 0 {
		return c < 0
	}
	return h.items[i].idx < h.items[j].idx
}

func (h *runHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *runHeap[T]) Push(x any) { h.items = append(h.items, x.(*runHead[T])) }

func (h *runHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
