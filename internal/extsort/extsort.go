// Package extsort sorts record files larger than memory: chunks of the
// input are sorted in memory (with the same shared-memory substrate the
// distributed sort uses) and spilled to temporary run files, which are
// then streamed through a k-way merge into the output. This is the
// out-of-core regime the paper's related work (TritonSort, NTOSort — §5)
// addresses; SDS-Sort itself is in-memory, so this package is the
// library's extension for datasets that do not fit.
package extsort

import (
	"container/heap"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sdssort/internal/codec"
	"sdssort/internal/psort"
	"sdssort/internal/recordio"
)

// Options configures an external sort.
type Options struct {
	// ChunkRecords is the number of records sorted in memory per run;
	// it bounds peak memory at roughly ChunkRecords × record size × 2.
	// Default 1<<20.
	ChunkRecords int
	// Cores bounds the goroutines used to sort each chunk.
	Cores int
	// Stable preserves input order of equal records across the whole
	// file (runs are merged in file order with a stable merge).
	Stable bool
	// TempDir holds the spill files; defaults to the OS temp dir.
	TempDir string
}

func (o Options) chunkRecords() int {
	if o.ChunkRecords <= 0 {
		return 1 << 20
	}
	return o.ChunkRecords
}

func (o Options) cores() int {
	if o.Cores < 1 {
		return 1
	}
	return o.Cores
}

// SortFile sorts the record file at in into out. The input is read once;
// peak memory is bounded by Options.ChunkRecords regardless of file
// size.
func SortFile[T any](in, out string, cd codec.Codec[T], cmp func(a, b T) int, opt Options) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := Sort(f, of, cd, cmp, opt); err != nil {
		of.Close()
		return err
	}
	return of.Close()
}

// Sort is SortFile over streams.
func Sort[T any](in io.Reader, out io.Writer, cd codec.Codec[T], cmp func(a, b T) int, opt Options) error {
	tmpDir, err := os.MkdirTemp(opt.TempDir, "extsort-*")
	if err != nil {
		return fmt.Errorf("extsort: temp dir: %w", err)
	}
	defer os.RemoveAll(tmpDir)

	// Phase 1: cut the input into sorted runs on disk.
	runs, err := spillRuns(in, tmpDir, cd, cmp, opt)
	if err != nil {
		return err
	}
	// Phase 2: stream-merge the runs.
	return mergeRuns(runs, out, cd, cmp)
}

// spillRuns reads the input chunk by chunk, sorts each chunk, and
// writes one run file per chunk. It returns the run paths in input
// order (which is what makes the merge stable overall).
func spillRuns[T any](in io.Reader, dir string, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]string, error) {
	reader := recordio.NewReader(in, cd)
	limit := opt.chunkRecords()
	var runs []string
	chunk := make([]T, 0, limit)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		psort.ParallelSort(chunk, opt.cores(), opt.Stable, cmp)
		path := filepath.Join(dir, fmt.Sprintf("run-%06d", len(runs)))
		if err := recordio.WriteFile(path, cd, chunk); err != nil {
			return fmt.Errorf("extsort: spill %s: %w", path, err)
		}
		runs = append(runs, path)
		chunk = chunk[:0]
		return nil
	}
	for {
		rec, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("extsort: read input: %w", err)
		}
		chunk = append(chunk, rec)
		if len(chunk) >= limit {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return runs, nil
}

// runHead is one run's cursor in the merge heap.
type runHead[T any] struct {
	reader *recordio.Reader[T]
	file   *os.File
	head   T
	idx    int // run index, the stability tiebreaker
}

// runHeap orders run cursors by (head record, run index).
type runHeap[T any] struct {
	items []*runHead[T]
	cmp   func(a, b T) int
}

func (h *runHeap[T]) Len() int { return len(h.items) }

func (h *runHeap[T]) Less(i, j int) bool {
	c := h.cmp(h.items[i].head, h.items[j].head)
	if c != 0 {
		return c < 0
	}
	return h.items[i].idx < h.items[j].idx
}

func (h *runHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *runHeap[T]) Push(x any) { h.items = append(h.items, x.(*runHead[T])) }

func (h *runHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// mergeRuns streams the runs through a heap into the output.
func mergeRuns[T any](runs []string, out io.Writer, cd codec.Codec[T], cmp func(a, b T) int) error {
	h := &runHeap[T]{cmp: cmp}
	defer func() {
		for _, it := range h.items {
			it.file.Close()
		}
	}()
	for idx, path := range runs {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("extsort: open run: %w", err)
		}
		r := recordio.NewReader(f, cd)
		rec, err := r.Read()
		if err == io.EOF {
			f.Close()
			continue
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("extsort: run %d: %w", idx, err)
		}
		h.items = append(h.items, &runHead[T]{reader: r, file: f, head: rec, idx: idx})
	}
	heap.Init(h)

	w := recordio.NewWriter(out, cd)
	for h.Len() > 0 {
		top := h.items[0]
		if err := w.Write(top.head); err != nil {
			return err
		}
		rec, err := top.reader.Read()
		if err == io.EOF {
			top.file.Close()
			heap.Pop(h)
			continue
		}
		if err != nil {
			return fmt.Errorf("extsort: run %d: %w", top.idx, err)
		}
		top.head = rec
		heap.Fix(h, 0)
	}
	return w.Flush()
}
