package extsort

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/memlimit"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

// TestSortFileAtomicOnError: a failing sort must leave an existing
// destination byte-for-byte untouched and remove its temp output —
// SortFile used to open-and-truncate the destination first, so any
// error destroyed the file it was asked to replace.
func TestSortFileAtomicOnError(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.f64")
	precious := []float64{3, 1, 4, 1, 5}
	if err := recordio.WriteFile(out, f64, precious); err != nil {
		t.Fatal(err)
	}
	// Ragged input: the sort fails partway through reading.
	in := filepath.Join(dir, "bad.f64")
	if err := os.WriteFile(in, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SortFile(in, out, f64, cmpF, Options{TempDir: dir}); err == nil {
		t.Fatal("ragged input accepted")
	}
	got, err := recordio.ReadFile(out, f64)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, precious) {
		t.Fatalf("failed sort clobbered the destination: %v", got)
	}
	assertNoTemps(t, dir)
}

// TestSortFileAtomicOnSuccess: the committed output appears via rename
// and no temp files survive in either directory.
func TestSortFileAtomicOnSuccess(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	out := filepath.Join(dir, "out.f64")
	keys := workload.Uniform(11, 3000)
	if err := recordio.WriteFile(in, f64, keys); err != nil {
		t.Fatal(err)
	}
	// Overwrite an existing destination, too — the realistic re-run.
	if err := recordio.WriteFile(out, f64, []float64{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := SortFile(in, out, f64, cmpF, Options{ChunkRecords: 500, TempDir: dir}); err != nil {
		t.Fatal(err)
	}
	got, err := recordio.ReadFile(out, f64)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("sorted output wrong")
	}
	assertNoTemps(t, dir)
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestSortGaugeReservations: the documented ChunkRecords × size × 2
// chunk-phase peak (plus the merge phase's cursor buffers) must
// actually hit the gauge, and everything must drain to zero by the
// time Sort returns — previously the Mem option did not exist and an
// extsort inside a budgeted job ran unaccounted.
func TestSortGaugeReservations(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	keys := workload.ZipfKeys(3, 10000, 1.3, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, f64, keys); err != nil {
		t.Fatal(err)
	}
	const chunk = 1000
	g := memlimit.New(64 << 20)
	opt := Options{ChunkRecords: chunk, TempDir: dir, Mem: g, MaxFanIn: 4}
	if err := SortFile(in, filepath.Join(dir, "out.f64"), f64, cmpF, opt); err != nil {
		t.Fatal(err)
	}
	if g.Used() != 0 {
		t.Fatalf("gauge holds %d bytes after Sort returned", g.Used())
	}
	if min := int64(chunk) * 8 * 2; g.Peak() < min {
		t.Fatalf("peak %d below the documented chunk footprint %d", g.Peak(), min)
	}

	// And a budget below the chunk footprint is refused up front.
	tight := memlimit.New(chunk * 8)
	err := SortFile(in, filepath.Join(dir, "out2.f64"), f64, cmpF,
		Options{ChunkRecords: chunk, TempDir: dir, Mem: tight})
	if !errors.Is(err, memlimit.ErrOutOfMemory) {
		t.Fatalf("got %v, want ErrOutOfMemory", err)
	}
	if tight.Used() != 0 {
		t.Fatalf("failed sort left %d bytes reserved", tight.Used())
	}
	assertNoTemps(t, dir)
}

// TestSortRadixDispatch: integer-keyed codecs must take the same radix
// fast path core's local sorts use — and produce the identical output
// to the comparison path; a comparator that disagrees with the key
// order (descending) must make the dispatch stand down and still sort
// correctly.
func TestSortRadixDispatch(t *testing.T) {
	dir := t.TempDir()
	u64 := codec.Uint64{}
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 20000)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	in := filepath.Join(dir, "in.u64")
	if err := recordio.WriteFile(in, u64, keys); err != nil {
		t.Fatal(err)
	}
	asc := func(a, b uint64) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	desc := func(a, b uint64) int { return -asc(a, b) }

	sortWith := func(name string, cmp func(a, b uint64) int, stable bool) []uint64 {
		t.Helper()
		out := filepath.Join(dir, name)
		if err := SortFile(in, out, u64, cmp, Options{ChunkRecords: 3000, TempDir: dir, Stable: stable}); err != nil {
			t.Fatal(err)
		}
		got, err := recordio.ReadFile(out, u64)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	radixed := sortWith("radix.u64", asc, false)   // dispatch accepts
	compared := sortWith("cmp.u64", asc, true)     // stable forces comparison
	if !slices.Equal(radixed, compared) {
		t.Fatal("radix and comparison paths disagree")
	}
	want := append([]uint64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(radixed, want) {
		t.Fatal("radix output not sorted")
	}

	down := sortWith("desc.u64", desc, false) // dispatch must stand down
	slices.Reverse(want)
	if !slices.Equal(down, want) {
		t.Fatal("descending comparator mis-sorted after radix dispatch")
	}
}

// TestSortENOSPC streams the merge into /dev/full: the write error
// must surface as a failure (not a silently truncated output), and a
// SortFile pointed there must not leak its temp file.
func TestSortENOSPC(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available on this platform")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	if err := recordio.WriteFile(in, f64, workload.Uniform(7, 5000)); err != nil {
		t.Fatal(err)
	}
	inF, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	defer inF.Close()
	full, err := os.OpenFile("/dev/full", os.O_WRONLY, 0)
	if err != nil {
		t.Skip("cannot open /dev/full for writing")
	}
	defer full.Close()
	if err := Sort(inF, full, f64, cmpF, Options{ChunkRecords: 1000, TempDir: dir}); err == nil {
		t.Fatal("ENOSPC swallowed: Sort reported success writing to /dev/full")
	} else if !strings.Contains(err.Error(), "no space left on device") {
		t.Fatalf("error does not surface ENOSPC: %v", err)
	}
	assertNoTemps(t, dir)
}

// TestRemoveStaleTemps: the startup sweep removes orphaned .tmp-run-
// files, keeps everything else, and tolerates a missing directory.
func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "run-000001")
	stale := filepath.Join(dir, TempPrefix+"123456")
	for _, f := range []string{keep, stale} {
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := RemoveStaleTemps(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived the sweep (err=%v)", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("committed run swept away: %v", err)
	}
	if err := RemoveStaleTemps(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("missing dir not tolerated: %v", err)
	}
}

// TestMergeSegmentsNonConsuming: merging segment views of shared run
// files — even under a fan-in cap that forces pre-merge passes — must
// leave the underlying runs intact and re-readable.
func TestMergeSegmentsNonConsuming(t *testing.T) {
	dir := t.TempDir()
	var segs []RunSegment
	var want []float64
	for r := 0; r < 9; r++ {
		recs := make([]float64, 100)
		for i := range recs {
			recs[i] = float64(r*1000 + i*3)
		}
		want = append(want, recs...)
		path := filepath.Join(dir, "run-"+string(rune('a'+r)))
		if err := WriteRun(path, f64, recs); err != nil {
			t.Fatal(err)
		}
		segs = append(segs, RunSegment{Path: path, Lo: 0, Hi: -1})
	}
	slices.Sort(want)
	read := func() []float64 {
		t.Helper()
		ms, err := OpenMergeSegments(segs, f64, cmpF, MergeOptions{MaxFanIn: 3, TempDir: dir, BufBytes: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		defer ms.Close()
		var got []float64
		for {
			rec, err := ms.Next()
			if err != nil {
				break
			}
			got = append(got, rec)
		}
		return got
	}
	if got := read(); !slices.Equal(got, want) {
		t.Fatal("first capped segment merge wrong")
	}
	// The inputs must still be there for a second pass.
	if got := read(); !slices.Equal(got, want) {
		t.Fatal("second pass over the same segments wrong — inputs were consumed")
	}
}
