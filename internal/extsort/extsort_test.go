package extsort

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

var f64 = codec.Float64{}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func TestSortFileManySpills(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	out := filepath.Join(dir, "out.f64")
	keys := workload.ZipfKeys(1, 50000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, f64, keys); err != nil {
		t.Fatal(err)
	}
	// Tiny chunks force ~50 spill runs.
	opt := Options{ChunkRecords: 1000, TempDir: dir}
	if err := SortFile(in, out, f64, cmpF, opt); err != nil {
		t.Fatal(err)
	}
	got, err := recordio.ReadFile(out, f64)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("external sort output differs from in-memory sort")
	}
}

func TestSortSingleChunk(t *testing.T) {
	// Everything fits one chunk: no merge needed.
	var in, out bytes.Buffer
	keys := workload.Uniform(2, 500)
	w := recordio.NewWriter(&in, f64)
	if err := w.Write(keys...); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := Sort(&in, &out, f64, cmpF, Options{ChunkRecords: 10000}); err != nil {
		t.Fatal(err)
	}
	got, err := recordio.NewReader(&out, f64).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("mismatch")
	}
}

func TestSortEmptyInput(t *testing.T) {
	var in, out bytes.Buffer
	if err := Sort(&in, &out, f64, cmpF, Options{}); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty input produced %d bytes", out.Len())
	}
}

func TestSortStableAcrossRuns(t *testing.T) {
	// Equal keys spanning multiple spill runs must keep file order in
	// stable mode; Tagged records carry their input position.
	var in, out bytes.Buffer
	cd := codec.TaggedCodec{}
	w := recordio.NewWriter(&in, cd)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := w.Write(codec.Tagged{Key: float64(i % 3), Index: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	opt := Options{ChunkRecords: 700, Stable: true}
	if err := Sort(&in, &out, cd, codec.CompareTagged, opt); err != nil {
		t.Fatal(err)
	}
	got, err := recordio.NewReader(&out, cd).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("%d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
		if got[i-1].Key == got[i].Key && got[i-1].Index > got[i].Index {
			t.Fatalf("stability violated at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

func TestSortFileErrors(t *testing.T) {
	dir := t.TempDir()
	if err := SortFile(filepath.Join(dir, "missing"), filepath.Join(dir, "out"), f64, cmpF, Options{}); err == nil {
		t.Fatal("missing input accepted")
	}
	// Ragged input file.
	bad := filepath.Join(dir, "bad.f64")
	if err := writeBytes(bad, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := SortFile(bad, filepath.Join(dir, "out2"), f64, cmpF, Options{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func writeBytes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

func BenchmarkExternalSort(b *testing.B) {
	dir := b.TempDir()
	in := filepath.Join(dir, "in.f64")
	keys := workload.ZipfKeys(9, 200000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, f64, keys); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(keys)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := filepath.Join(dir, "out.f64")
		if err := SortFile(in, out, f64, cmpF, Options{ChunkRecords: 20000, TempDir: dir}); err != nil {
			b.Fatal(err)
		}
	}
}
