package pivots

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/partition"
	"sdssort/internal/workload"
)

var f64 = codec.Float64{}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func TestRegularSample(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	got := RegularSample(data, 4) // stride 2: indices 2, 4, 6
	want := []float64{2, 4, 6}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if got := RegularSample[float64](nil, 4); got != nil {
		t.Fatalf("empty: got %v", got)
	}
	if got := RegularSample(data, 1); got != nil {
		t.Fatalf("k=1: got %v", got)
	}
	// Fewer records than k: always k-1 pivots, padding with the last
	// record, so global pivot selection never starves on tiny ranks.
	short := []float64{1, 2}
	got = RegularSample(short, 8)
	if len(got) != 7 {
		t.Fatalf("short data: got %v", got)
	}
	if got[0] != 2 || got[6] != 2 {
		t.Fatalf("short data padding: got %v", got)
	}
}

func TestSelectGlobalUniform(t *testing.T) {
	for _, p := range []int{2, 4, 8, 5} { // includes a non-power-of-two
		allPG := make([][]float64, p)
		topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
		err := cluster.Run(topo, func(c *comm.Comm) error {
			data := workload.Uniform(int64(c.Rank()+1), 1000)
			slices.Sort(data)
			pl := RegularSample(data, p)
			pg, err := SelectGlobal(c, pl, f64, cmpF)
			if err != nil {
				return err
			}
			allPG[c.Rank()] = pg
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Every rank must hold the identical, sorted pivot vector.
		for r := 1; r < p; r++ {
			if !slices.Equal(allPG[r], allPG[0]) {
				t.Fatalf("p=%d: rank %d pivots differ", p, r)
			}
		}
		if len(allPG[0]) != p-1 {
			t.Fatalf("p=%d: %d pivots", p, len(allPG[0]))
		}
		if !slices.IsSorted(allPG[0]) {
			t.Fatalf("p=%d: pivots not sorted: %v", p, allPG[0])
		}
		// Uniform data: pivots should be roughly evenly spaced in [0,1].
		for i, pv := range allPG[0] {
			want := float64(i+1) / float64(p)
			if pv < want-0.15 || pv > want+0.15 {
				t.Errorf("p=%d: pivot %d = %v, want ≈ %v", p, i, pv, want)
			}
		}
	}
}

func TestSelectGlobalDuplicateHeavy(t *testing.T) {
	// 90% of all records share one value: most global pivots must
	// equal that value — the duplicated-pivot situation SdssPartition
	// detects.
	const p = 8
	pgOut := make([][]float64, p)
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		data := make([]float64, 800)
		for i := range data {
			if rng.Float64() < 0.9 {
				data[i] = 5
			} else {
				data[i] = rng.Float64() * 10
			}
		}
		slices.Sort(data)
		pg, err := SelectGlobal(c, RegularSample(data, p), f64, cmpF)
		if err != nil {
			return err
		}
		pgOut[c.Rank()] = pg
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dups := 0
	for _, pv := range pgOut[0] {
		if pv == 5 {
			dups++
		}
	}
	if dups < p/2 {
		t.Fatalf("expected most pivots to equal the popular value, got %d of %d: %v",
			dups, p-1, pgOut[0])
	}
	if len(partition.Runs(pgOut[0], cmpF)) == 0 {
		t.Fatal("expected a replicated pivot run")
	}
}

func TestSelectGlobalEmpty(t *testing.T) {
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		pg, err := SelectGlobal(c, nil, f64, cmpF)
		if err != nil {
			return err
		}
		if pg != nil {
			return fmt.Errorf("empty pool produced pivots %v", pg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSplittersUniform(t *testing.T) {
	const p = 4
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		data := workload.Uniform(int64(c.Rank()+10), 2000)
		slices.Sort(data)
		sp, err := HistogramSplitters(c, data, 7, 3, f64, cmpF)
		if err != nil {
			return err
		}
		if len(sp) != 7 {
			return fmt.Errorf("got %d splitters", len(sp))
		}
		if !slices.IsSorted(sp) {
			return fmt.Errorf("splitters not sorted: %v", sp)
		}
		// Uniform: each splitter near its target quantile.
		for i, s := range sp {
			want := float64(i+1) / 8
			if s < want-0.1 || s > want+0.1 {
				return fmt.Errorf("splitter %d = %v, want ≈ %v", i, s, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSplittersCollapseOnDuplicates(t *testing.T) {
	// With 80% of records equal, histogram refinement must emit the
	// same splitter value repeatedly — HykSort's failure precondition.
	const p = 4
	collapsed := false
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 20)))
		data := make([]float64, 1500)
		for i := range data {
			if rng.Float64() < 0.8 {
				data[i] = 7
			} else {
				data[i] = rng.Float64() * 20
			}
		}
		slices.Sort(data)
		sp, err := HistogramSplitters(c, data, 7, 3, f64, cmpF)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			seen := map[float64]int{}
			for _, s := range sp {
				seen[s]++
			}
			if seen[7] >= 2 {
				collapsed = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !collapsed {
		t.Fatal("expected splitters to collapse onto the duplicated value")
	}
}

func TestHistogramSplittersEmpty(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		sp, err := HistogramSplitters(c, nil, 3, 2, f64, cmpF)
		if err != nil {
			return err
		}
		if len(sp) != 0 {
			return fmt.Errorf("empty data produced splitters %v", sp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
