// Package pivots implements the pivot-selection machinery: regular
// (equal-stripe) sampling and the distributed selection of global pivots
// (§2.4 of the paper), plus the histogram-based splitter selection that
// HykSort uses — included both as part of the HykSort baseline and for
// the partition-method comparison of Fig. 6b.
package pivots

import (
	"fmt"

	"sdssort/internal/bitonic"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/partition"
	"sdssort/internal/psort"
)

// RegularSample returns up to k-1 local pivots from sorted data at
// stride ⌊n/k⌋ (line 8 of the SDS-Sort listing). Because the data is
// sorted first, each pivot represents at most 2n/k² of the local value
// distribution, the property Theorem 1 leans on.
func RegularSample[T any](sorted []T, k int) []T {
	n := len(sorted)
	if n == 0 || k <= 1 {
		return nil
	}
	stride := n / k
	if stride < 1 {
		stride = 1
	}
	pivots := make([]T, 0, k-1)
	for i := 1; i < k; i++ {
		idx := i * stride
		if idx >= n {
			// Fewer records than processes: repeat the last record
			// rather than under-sampling. Duplicated pivots are fine —
			// the skew-aware partition is built for them — whereas a
			// short (or empty) sample would starve global pivot
			// selection and leave the data unexchanged.
			idx = n - 1
		}
		pivots = append(pivots, sorted[idx])
	}
	return pivots
}

// SelectGlobal chooses the p-1 global pivots from every rank's local
// pivots without gathering them all on one process: the pooled local
// pivots are sorted in place across the ranks (bitonic network when the
// preconditions hold, gather-sort fallback otherwise), each rank
// contributes the pool elements landing on the equal-stride selection
// indices, and the selections are all-gathered. Every rank returns the
// identical global pivot vector, sorted, possibly containing duplicates
// — which is exactly what the skew-aware partition wants to know about.
func SelectGlobal[T any](c *comm.Comm, localPivots []T, cd codec.Codec[T], cmp func(a, b T) int) ([]T, error) {
	p := c.Size()
	if p == 1 {
		return nil, nil
	}
	sorted, err := bitonic.DistributedSort(c, localPivots, cd, cmp)
	if err != nil {
		return nil, fmt.Errorf("pivots: distributed sort: %w", err)
	}
	// Global offset of my block and the pool size.
	sizes, err := c.AllgatherInt64(int64(len(sorted)))
	if err != nil {
		return nil, fmt.Errorf("pivots: size exchange: %w", err)
	}
	var offset, total int64
	for r, s := range sizes {
		if r < c.Rank() {
			offset += s
		}
		total += s
	}
	if total == 0 {
		return nil, nil
	}

	// Selection indices: (i+1)·total/p - 1, clamped — the equal-stripe
	// choice over the pooled pivots.
	type sel struct {
		idx int64
		val T
	}
	var mine []sel
	for i := int64(0); i < int64(p-1); i++ {
		idx := (i+1)*total/int64(p) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= offset && idx < offset+int64(len(sorted)) {
			mine = append(mine, sel{idx: i, val: sorted[idx-offset]})
		}
	}
	// Ship (selection slot, value) pairs.
	buf := comm.EncodeInt64s(func() []int64 {
		out := make([]int64, len(mine))
		for i, s := range mine {
			out[i] = s.idx
		}
		return out
	}())
	var vals []T
	for _, s := range mine {
		vals = append(vals, s.val)
	}
	payload := append(comm.EncodeInt64s([]int64{int64(len(mine))}), buf...)
	payload = codec.EncodeSlice(cd, payload, vals)

	parts, err := c.Allgather(payload)
	if err != nil {
		return nil, fmt.Errorf("pivots: selection gather: %w", err)
	}
	pg := make([]T, p-1)
	seen := make([]bool, p-1)
	for r, part := range parts {
		if len(part) < 8 {
			return nil, fmt.Errorf("pivots: short selection payload from rank %d", r)
		}
		hdr, err := comm.DecodeInt64s(part[:8])
		if err != nil {
			return nil, err
		}
		cnt := int(hdr[0])
		idxEnd := 8 + 8*cnt
		if len(part) < idxEnd {
			return nil, fmt.Errorf("pivots: truncated selection payload from rank %d", r)
		}
		idxs, err := comm.DecodeInt64s(part[8:idxEnd])
		if err != nil {
			return nil, err
		}
		recs, err := codec.DecodeSlice(cd, part[idxEnd:])
		if err != nil {
			return nil, err
		}
		if len(recs) != cnt {
			return nil, fmt.Errorf("pivots: rank %d sent %d indices but %d values", r, cnt, len(recs))
		}
		for i, slot := range idxs {
			if slot < 0 || slot >= int64(p-1) {
				return nil, fmt.Errorf("pivots: selection slot %d out of range", slot)
			}
			pg[slot] = recs[i]
			seen[slot] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("pivots: selection slot %d unfilled", i)
		}
	}
	return pg, nil
}

// HistogramSplitters is the splitter selection HykSort uses: iterative
// histogram refinement over a shared candidate pool. It returns nsplit
// splitter values aiming at equal global ranks. With heavily duplicated
// keys the refinement cannot separate records sharing a value, so
// several returned splitters collapse onto one value — the load-
// imbalance failure mode the paper measures.
func HistogramSplitters[T any](c *comm.Comm, sorted []T, nsplit, rounds int, cd codec.Codec[T], cmp func(a, b T) int) ([]T, error) {
	if nsplit <= 0 {
		return nil, nil
	}
	total, err := c.AllreduceInt64(int64(len(sorted)), func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return make([]T, 0), nil
	}
	targets := make([]int64, nsplit)
	for i := range targets {
		targets[i] = int64(i+1) * total / int64(nsplit+1)
	}

	sampleCount := 4 * (nsplit + 1)
	if sampleCount < 32 {
		sampleCount = 32
	}
	candidates, err := ShareCandidates(c, RegularSample(sorted, sampleCount), cd, cmp)
	if err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 1
	}

	chosen := make([]T, nsplit)
	for round := 0; round < rounds; round++ {
		if len(candidates) == 0 {
			break
		}
		cdf, err := GlobalCDF(c, sorted, candidates, cmp)
		if err != nil {
			return nil, err
		}
		// Pick, per target, the candidate whose global rank is
		// closest; remember the bracketing candidates for refinement.
		var refine []T
		for ti, tgt := range targets {
			best, bestDist := 0, int64(1)<<62
			for ci, rank := range cdf {
				d := rank - tgt
				if d < 0 {
					d = -d
				}
				if d < bestDist {
					best, bestDist = ci, d
				}
			}
			chosen[ti] = candidates[best]
			if round < rounds-1 && bestDist > 0 {
				// Sample fresh local candidates between the
				// neighbours of the best candidate.
				lo, hi := 0, len(sorted)
				if best > 0 {
					lo = partition.LowerBound(sorted, candidates[best-1], cmp)
				}
				if best < len(candidates)-1 {
					hi = partition.UpperBound(sorted, candidates[best+1], cmp)
				}
				refine = append(refine, RegularSample(sorted[lo:hi], 8)...)
			}
		}
		if round == rounds-1 {
			break
		}
		// Always enter the collective: whether refinement found new
		// local candidates differs per rank, and control flow around
		// collectives must not.
		extra, err := ShareCandidates(c, refine, cd, cmp)
		if err != nil {
			return nil, err
		}
		if len(extra) == 0 {
			break // globally consistent: the gather was empty for all
		}
		candidates = append(candidates, extra...)
		// Keep the pool sorted for the bracket lookups.
		sortValues(candidates, cmp)
	}
	sortValues(chosen, cmp)
	return chosen, nil
}

// ShareCandidates all-gathers each rank's candidate values and returns
// the sorted union (with duplicates preserved).
func ShareCandidates[T any](c *comm.Comm, local []T, cd codec.Codec[T], cmp func(a, b T) int) ([]T, error) {
	parts, err := c.Allgather(codec.EncodeSlice(cd, nil, local))
	if err != nil {
		return nil, err
	}
	var pool []T
	for r, buf := range parts {
		recs, err := codec.DecodeSlice(cd, buf)
		if err != nil {
			return nil, fmt.Errorf("pivots: candidates from rank %d: %w", r, err)
		}
		pool = append(pool, recs...)
	}
	sortValues(pool, cmp)
	return pool, nil
}

// GlobalCDF returns, for each candidate, the number of records globally
// <= the candidate (the histogram step: local binary searches plus one
// vector all-reduce).
func GlobalCDF[T any](c *comm.Comm, sorted, candidates []T, cmp func(a, b T) int) ([]int64, error) {
	local := make([]int64, len(candidates))
	for i, cand := range candidates {
		local[i] = int64(partition.UpperBound(sorted, cand, cmp))
	}
	parts, err := c.Allgather(comm.EncodeInt64s(local))
	if err != nil {
		return nil, err
	}
	global := make([]int64, len(candidates))
	for r, buf := range parts {
		vals, err := comm.DecodeInt64s(buf)
		if err != nil || len(vals) != len(candidates) {
			return nil, fmt.Errorf("pivots: bad histogram from rank %d", r)
		}
		for i, v := range vals {
			global[i] += v
		}
	}
	return global, nil
}

func sortValues[T any](vals []T, cmp func(a, b T) int) {
	psort.Sort(vals, cmp)
}
