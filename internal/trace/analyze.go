package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadJSONL parses a stream of events as written by the JSONL sink.
// Blank lines are skipped; a malformed line aborts with its number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Analysis summarises an event stream.
type Analysis struct {
	// Events is the total count.
	Events int
	// Kinds maps event kind to count.
	Kinds map[string]int
	// Ranks maps rank to its event count.
	Ranks map[int]int
	// ExchangeRecv maps rank to its planned receive volume in records
	// (from exchange.plan events).
	ExchangeRecv map[int]int64
	// DuplicatedPivotRuns counts pivots.duplicated reports.
	DuplicatedPivotRuns int
	// SpanUS is the elapsed microseconds between the first and last
	// event.
	SpanUS int64
}

// Analyze computes the summary of events.
func Analyze(events []Event) Analysis {
	a := Analysis{
		Kinds:        map[string]int{},
		Ranks:        map[int]int{},
		ExchangeRecv: map[int]int64{},
	}
	a.Events = len(events)
	var minT, maxT int64
	for i, e := range events {
		a.Kinds[e.Kind]++
		a.Ranks[e.Rank]++
		if i == 0 || e.ElapsedUS < minT {
			minT = e.ElapsedUS
		}
		if e.ElapsedUS > maxT {
			maxT = e.ElapsedUS
		}
		switch e.Kind {
		case "exchange.plan":
			if v, ok := asInt64(e.Detail["recv_records"]); ok {
				a.ExchangeRecv[e.Rank] += v
			}
		case "pivots.duplicated":
			a.DuplicatedPivotRuns++
		}
	}
	if len(events) > 0 {
		a.SpanUS = maxT - minT
	}
	return a
}

// asInt64 coerces JSON numbers (float64) and native ints alike.
func asInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case float64:
		return int64(x), true
	}
	return 0, false
}

// Render prints the analysis as an aligned report.
func (a Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events across %d ranks over %.3fms\n",
		a.Events, len(a.Ranks), float64(a.SpanUS)/1000)
	kinds := make([]string, 0, len(a.Kinds))
	for k := range a.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-22s %d\n", k, a.Kinds[k])
	}
	if len(a.ExchangeRecv) > 0 {
		ranks := make([]int, 0, len(a.ExchangeRecv))
		var total, maxRecv int64
		for r, v := range a.ExchangeRecv {
			ranks = append(ranks, r)
			total += v
			if v > maxRecv {
				maxRecv = v
			}
		}
		sort.Ints(ranks)
		avg := float64(total) / float64(len(ranks))
		fmt.Fprintf(&b, "exchange: %d records total; max rank load %d (%.2fx the average)\n",
			total, maxRecv, float64(maxRecv)/avg)
	}
	if a.DuplicatedPivotRuns > 0 {
		fmt.Fprintf(&b, "duplicated-pivot reports: %d (skew-aware splitting engaged)\n", a.DuplicatedPivotRuns)
	}
	return b.String()
}
