package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadJSONL parses a stream of events as written by the JSONL sink.
// Blank lines are skipped; a malformed line aborts with its number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Analysis summarises an event stream.
type Analysis struct {
	// Events is the total count.
	Events int
	// Kinds maps event kind to count.
	Kinds map[string]int
	// Ranks maps rank to its event count.
	Ranks map[int]int
	// ExchangeRecv maps rank to its planned receive volume in records
	// (from exchange.plan events).
	ExchangeRecv map[int]int64
	// DuplicatedPivotRuns counts pivots.duplicated reports.
	DuplicatedPivotRuns int
	// SortsStarted and SortsCompleted count sort.start and sort.done
	// events; every successful sort must emit both, so a difference
	// means either a failed run or a missing terminal event.
	SortsStarted, SortsCompleted int
	// UnterminatedRanks lists ranks whose sort.start count exceeds
	// their sort.done count, sorted ascending.
	UnterminatedRanks []int
	// DoneReasons counts sort.done events by their exit reason
	// ("completed", "follower", "single", "empty", "resume").
	DoneReasons map[string]int
	// SpanUS is the elapsed microseconds between the first and last
	// event.
	SpanUS int64
}

// Analyze computes the summary of events.
func Analyze(events []Event) Analysis {
	a := Analysis{
		Kinds:        map[string]int{},
		Ranks:        map[int]int{},
		ExchangeRecv: map[int]int64{},
		DoneReasons:  map[string]int{},
	}
	a.Events = len(events)
	var minT, maxT int64
	balance := map[int]int{} // per-rank sort.start minus sort.done
	for i, e := range events {
		a.Kinds[e.Kind]++
		a.Ranks[e.Rank]++
		if i == 0 || e.ElapsedUS < minT {
			minT = e.ElapsedUS
		}
		if e.ElapsedUS > maxT {
			maxT = e.ElapsedUS
		}
		switch e.Kind {
		case "exchange.plan":
			if v, ok := asInt64(e.Detail["recv_records"]); ok {
				a.ExchangeRecv[e.Rank] += v
			}
		case "pivots.duplicated":
			a.DuplicatedPivotRuns++
		case "sort.start":
			a.SortsStarted++
			balance[e.Rank]++
		case "sort.done":
			a.SortsCompleted++
			balance[e.Rank]--
			if r, ok := e.Detail["reason"].(string); ok {
				a.DoneReasons[r]++
			}
		}
	}
	for r, b := range balance {
		if b > 0 {
			a.UnterminatedRanks = append(a.UnterminatedRanks, r)
		}
	}
	sort.Ints(a.UnterminatedRanks)
	if len(events) > 0 {
		a.SpanUS = maxT - minT
	}
	return a
}

// asInt64 coerces JSON numbers (float64) and native ints alike.
func asInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case float64:
		return int64(x), true
	}
	return 0, false
}

// Render prints the analysis as an aligned report.
func (a Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events across %d ranks over %.3fms\n",
		a.Events, len(a.Ranks), float64(a.SpanUS)/1000)
	kinds := make([]string, 0, len(a.Kinds))
	for k := range a.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-22s %d\n", k, a.Kinds[k])
	}
	if len(a.ExchangeRecv) > 0 {
		ranks := make([]int, 0, len(a.ExchangeRecv))
		var total, maxRecv int64
		for r, v := range a.ExchangeRecv {
			ranks = append(ranks, r)
			total += v
			if v > maxRecv {
				maxRecv = v
			}
		}
		sort.Ints(ranks)
		avg := float64(total) / float64(len(ranks))
		fmt.Fprintf(&b, "exchange: %d records total; max rank load %d (%.2fx the average)\n",
			total, maxRecv, float64(maxRecv)/avg)
	}
	if a.DuplicatedPivotRuns > 0 {
		fmt.Fprintf(&b, "duplicated-pivot reports: %d (skew-aware splitting engaged)\n", a.DuplicatedPivotRuns)
	}
	if a.SortsStarted > 0 {
		fmt.Fprintf(&b, "sorts: %d started, %d completed", a.SortsStarted, a.SortsCompleted)
		if len(a.UnterminatedRanks) > 0 {
			fmt.Fprintf(&b, "; UNTERMINATED on ranks %v", a.UnterminatedRanks)
		}
		b.WriteByte('\n')
	}
	if len(a.DoneReasons) > 0 {
		reasons := make([]string, 0, len(a.DoneReasons))
		for r := range a.DoneReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		b.WriteString("done reasons:")
		for _, r := range reasons {
			fmt.Fprintf(&b, " %s=%d", r, a.DoneReasons[r])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
