package trace

import (
	"encoding/json"
	"sync"
	"time"
)

// Ring keeps the last N events in a circular buffer so a live process
// can expose its recent trace (the telemetry server's /debug/trace)
// without unbounded memory. Older events are overwritten silently.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int64 // total events ever emitted; buf index is next % len
	start time.Time
}

// NewRing returns a ring holding the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n), start: time.Now()}
}

// Emit implements Tracer. The detail map is shallow-copied: the ring
// retains events long after Emit returns, and callers own (and may
// mutate or reuse) the map they passed in.
func (r *Ring) Emit(rank int, kind string, detail map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	now := time.Now()
	r.buf[(r.next-1)%int64(len(r.buf))] = Event{
		Seq:       r.next,
		ElapsedUS: now.Sub(r.start).Microseconds(),
		UnixUS:    now.UnixMicro(),
		Rank:      rank,
		Kind:      kind,
		Detail:    copyDetail(detail),
	}
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int64(len(r.buf))
	out := make([]Event, 0, n)
	lo := r.next - n
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < r.next; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// Dropped reports how many events fell off the ring.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d := r.next - int64(len(r.buf)); d > 0 {
		return d
	}
	return 0
}

// MarshalJSONL renders the retained events as JSON lines, oldest
// first — the same shape a JSONL sink writes, so the output feeds
// straight into sdstrace.
func (r *Ring) MarshalJSONL() []json.RawMessage {
	evs := r.Events()
	out := make([]json.RawMessage, 0, len(evs))
	for _, e := range evs {
		b, err := json.Marshal(e)
		if err != nil {
			continue // map[string]any with unmarshalable values; skip
		}
		out = append(out, b)
	}
	return out
}

// Tee fans every event out to all of its sinks, letting a run feed a
// durable JSONL file and a live ring at once.
type Tee []Tracer

// NewTee builds a Tee, dropping nil sinks.
func NewTee(sinks ...Tracer) Tee {
	var t Tee
	for _, s := range sinks {
		if s != nil {
			t = append(t, s)
		}
	}
	return t
}

// Emit implements Tracer.
func (t Tee) Emit(rank int, kind string, detail map[string]any) {
	for _, s := range t {
		s.Emit(rank, kind, detail)
	}
}
