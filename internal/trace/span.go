package trace

import (
	"sort"
	"sync/atomic"
)

// Distributed spans over the flat event stream.
//
// A span is a named interval of work on one rank — a whole sort, one
// phase of it, one checkpoint write. Rather than grow a second wire
// format, spans ride the existing event plane as a begin/end pair:
//
//	span.begin  {span, parent, trace, name, job, ...attrs}
//	span.end    {span, name, ...attrs}
//
// The begin event's timestamps are the span's start, the end event's
// its finish. Every sink, file format and endpoint that understands
// events therefore already carries spans; BuildSpans reconstructs the
// tree on the read side. Span IDs come from one process-wide atomic
// counter, so they are unique within a process but NOT across
// processes — readers merging per-rank files must pair begin/end on
// the composite key (rank, span id), which BuildSpans does.
//
// Emission is allocation-free when tracing is off: StartSpan returns a
// nil *Span for a nil or Nop tracer, and every *Span method is
// nil-safe, so instrumented code needs no conditionals.

// Span event kinds.
const (
	KindSpanBegin = "span.begin"
	KindSpanEnd   = "span.end"
)

// spanSeq hands out process-unique span IDs, starting at 1.
var spanSeq atomic.Int64

// Scope carries the ambient span context — which trace this work
// belongs to, the enclosing span, and the owning job — across layer
// boundaries (engine → driver → core → checkpoint) without threading
// a live tracer handle through every signature.
type Scope struct {
	// Trace groups all spans of one logical operation (one job, one
	// supervised run). Conventionally the job ID or the world name.
	Trace string
	// Parent is the enclosing span's ID, 0 at the root.
	Parent int64
	// Job is the owning job's ID, if any; it labels every span in the
	// subtree so a multi-tenant timeline can be filtered per job.
	Job string
}

// Span is a live, unfinished span. A nil *Span is valid and inert.
type Span struct {
	tr    Tracer
	rank  int
	id    int64
	name  string
	sc    Scope
	ended atomic.Bool
}

// StartSpan opens a span and emits its begin event. It returns nil —
// meaning zero further cost — when tr is nil or the Nop tracer.
// The detail map, if any, annotates the begin event.
func StartSpan(tr Tracer, rank int, sc Scope, name string, detail map[string]any) *Span {
	if tr == nil {
		return nil
	}
	if _, nop := tr.(Nop); nop {
		return nil
	}
	s := &Span{tr: tr, rank: rank, id: spanSeq.Add(1), name: name, sc: sc}
	d := make(map[string]any, len(detail)+4)
	for k, v := range detail {
		d[k] = v
	}
	d["span"] = s.id
	d["name"] = name
	if sc.Parent != 0 {
		d["parent"] = sc.Parent
	}
	if sc.Trace != "" {
		d["trace"] = sc.Trace
	}
	if sc.Job != "" {
		d["job"] = sc.Job
	}
	tr.Emit(rank, KindSpanBegin, d)
	return s
}

// ID returns the span's process-unique ID, 0 for a nil span.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Scope returns the scope a child span of s should start under. For a
// nil span it returns the zero Scope, so spans started under it are
// roots — instrumented code can chain Scope() unconditionally.
func (s *Span) Scope() Scope {
	if s == nil {
		return Scope{}
	}
	return Scope{Trace: s.sc.Trace, Parent: s.id, Job: s.sc.Job}
}

// End closes the span, emitting its end event. The detail map, if
// any, annotates the end event (bytes moved, records received, exit
// reason...). Safe on a nil span, and idempotent: only the first End
// emits, so callers with many exit paths can close eagerly with rich
// detail and also defer a bare End as an error-path net.
func (s *Span) End(detail map[string]any) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	d := make(map[string]any, len(detail)+2)
	for k, v := range detail {
		d[k] = v
	}
	d["span"] = s.id
	d["name"] = s.name
	s.tr.Emit(s.rank, KindSpanEnd, d)
}

// SpanRecord is one reconstructed span, paired from its begin/end
// events by BuildSpans.
type SpanRecord struct {
	// Trace, Span, Parent and Job echo the Scope the span ran under.
	// Span IDs are unique per process only; (Rank, Span) is the
	// cross-process key.
	Trace  string `json:"trace,omitempty"`
	Span   int64  `json:"span"`
	Parent int64  `json:"parent,omitempty"`
	Job    string `json:"job,omitempty"`
	// Name and Rank identify what ran where.
	Name string `json:"name"`
	Rank int    `json:"rank"`
	// StartUS/EndUS are the local elapsed-clock bounds; StartUnixUS/
	// EndUnixUS the wall-clock bounds (0 in pre-UnixUS traces).
	StartUS     int64 `json:"start_us"`
	EndUS       int64 `json:"end_us"`
	StartUnixUS int64 `json:"start_unix_us,omitempty"`
	EndUnixUS   int64 `json:"end_unix_us,omitempty"`
	// Detail merges the begin and end annotations (end wins on
	// conflict), minus the span-bookkeeping keys.
	Detail map[string]any `json:"detail,omitempty"`
	// Open marks a span whose end event never arrived — a crashed or
	// still-running operation. Its End bounds are the stream's last
	// sighting of the rank.
	Open bool `json:"open,omitempty"`
}

// DurUS returns the span's duration on its local clock.
func (s SpanRecord) DurUS() int64 { return s.EndUS - s.StartUS }

// spanBookkeeping are the detail keys StartSpan/End inject; BuildSpans
// lifts them into SpanRecord fields and drops them from Detail.
var spanBookkeeping = map[string]bool{
	"span": true, "parent": true, "trace": true, "name": true, "job": true,
}

// BuildSpans reconstructs spans from an event stream (any mix of
// ranks and processes), pairing begin/end on (rank, span id). The
// result is ordered by local start time, then rank. Spans with no end
// event are returned Open, extended to the last event seen from their
// rank, so a hung or crashed phase is visible rather than missing.
func BuildSpans(events []Event) []SpanRecord {
	type key struct {
		rank int
		id   int64
	}
	open := map[key]*SpanRecord{}
	lastSeen := map[int]Event{} // rank -> latest event by ElapsedUS
	var out []*SpanRecord
	for _, e := range events {
		if last, ok := lastSeen[e.Rank]; !ok || e.ElapsedUS > last.ElapsedUS {
			lastSeen[e.Rank] = e
		}
		id, ok := asInt64(e.Detail["span"])
		if !ok || (e.Kind != KindSpanBegin && e.Kind != KindSpanEnd) {
			continue
		}
		k := key{e.Rank, id}
		switch e.Kind {
		case KindSpanBegin:
			r := &SpanRecord{
				Span:        id,
				Rank:        e.Rank,
				StartUS:     e.ElapsedUS,
				StartUnixUS: e.UnixUS,
				Open:        true,
			}
			if v, ok := e.Detail["name"].(string); ok {
				r.Name = v
			}
			if v, ok := asInt64(e.Detail["parent"]); ok {
				r.Parent = v
			}
			if v, ok := e.Detail["trace"].(string); ok {
				r.Trace = v
			}
			if v, ok := e.Detail["job"].(string); ok {
				r.Job = v
			}
			r.Detail = detailMinusBookkeeping(e.Detail, nil)
			open[k] = r
			out = append(out, r)
		case KindSpanEnd:
			r, ok := open[k]
			if !ok {
				continue // end without begin: truncated ring, skip
			}
			r.EndUS = e.ElapsedUS
			r.EndUnixUS = e.UnixUS
			r.Open = false
			r.Detail = detailMinusBookkeeping(e.Detail, r.Detail)
			delete(open, k)
		}
	}
	// Extend unterminated spans to their rank's last sighting.
	for _, r := range open {
		if last, ok := lastSeen[r.Rank]; ok {
			r.EndUS = last.ElapsedUS
			r.EndUnixUS = last.UnixUS
		} else {
			r.EndUS = r.StartUS
			r.EndUnixUS = r.StartUnixUS
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		return out[i].Rank < out[j].Rank
	})
	res := make([]SpanRecord, len(out))
	for i, r := range out {
		res[i] = *r
	}
	return res
}

// detailMinusBookkeeping merges detail into base (allocating only when
// there is something to keep), dropping the span-bookkeeping keys.
func detailMinusBookkeeping(detail, base map[string]any) map[string]any {
	out := base
	for k, v := range detail {
		if spanBookkeeping[k] {
			continue
		}
		if out == nil {
			out = make(map[string]any)
		}
		out[k] = v
	}
	return out
}
