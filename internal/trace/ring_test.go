package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRingRetainsLastN(t *testing.T) {
	r := NewRing(3)
	if got := r.Events(); len(got) != 0 {
		t.Fatalf("fresh ring holds %d events", len(got))
	}
	for i := 0; i < 5; i++ {
		r.Emit(i, fmt.Sprintf("k%d", i), nil)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring of 3 holds %d events", len(evs))
	}
	for i, e := range evs {
		if want := fmt.Sprintf("k%d", i+2); e.Kind != want {
			t.Errorf("event %d = %q, want %q (oldest first)", i, e.Kind, want)
		}
	}
	if evs[0].Seq >= evs[1].Seq || evs[1].Seq >= evs[2].Seq {
		t.Errorf("sequence not increasing: %d %d %d", evs[0].Seq, evs[1].Seq, evs[2].Seq)
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
}

func TestRingMarshalJSONL(t *testing.T) {
	r := NewRing(4)
	r.Emit(0, "sort.start", map[string]any{"records": 10})
	r.Emit(0, "sort.done", map[string]any{"reason": "completed"})
	lines := r.MarshalJSONL()
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	// The output is what a JSONL sink would write: readable by ReadJSONL.
	events, err := ReadJSONL(strings.NewReader(string(lines[0]) + "\n" + string(lines[1]) + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Kind != "sort.start" || events[1].Kind != "sort.done" {
		t.Fatalf("round trip mangled events: %+v", events)
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(rank, "spin", nil)
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Events()); got != 8 {
		t.Errorf("ring holds %d events after concurrent emits, want 8", got)
	}
	if got := r.Dropped(); got != 400-8 {
		t.Errorf("Dropped = %d, want %d", got, 400-8)
	}
}

// Emitters reuse their detail maps (the hot path annotates one map
// per phase); the ring must copy on Emit so a later mutation cannot
// rewrite history in the buffer.
func TestRingCopiesDetailOnEmit(t *testing.T) {
	r := NewRing(4)
	d := map[string]any{"records": 10}
	r.Emit(0, "phase", d)
	d["records"] = 999
	evs := r.Events()
	if len(evs) != 1 || evs[0].Detail["records"] != 10 {
		t.Fatalf("ring aliased the caller's detail map: %+v", evs)
	}
}

func TestTeeFansOutAndDropsNil(t *testing.T) {
	a, b := NewRing(2), NewRing(2)
	tee := NewTee(a, nil, b)
	if len(tee) != 2 {
		t.Fatalf("tee kept %d sinks, want 2 (nil dropped)", len(tee))
	}
	tee.Emit(1, "ev", nil)
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("fan-out missed a sink: %d/%d", len(a.Events()), len(b.Events()))
	}
	// An empty tee is a usable no-op sink.
	NewTee().Emit(0, "ignored", nil)
}
