package trace

import (
	"testing"
)

// evt builds a raw event the way a per-process trace file would hold
// it, so BuildSpans tests control timestamps exactly.
func evt(rank int, kind string, elapsed, unix int64, detail map[string]any) Event {
	return Event{Rank: rank, Kind: kind, ElapsedUS: elapsed, UnixUS: unix, Detail: detail}
}

func TestStartSpanNilAndNopAreFree(t *testing.T) {
	if sp := StartSpan(nil, 0, Scope{}, "sort", nil); sp != nil {
		t.Fatal("nil tracer produced a live span")
	}
	if sp := StartSpan(Nop{}, 0, Scope{}, "sort", nil); sp != nil {
		t.Fatal("Nop tracer produced a live span")
	}
	// Every method must be inert on the nil span.
	var sp *Span
	sp.End(map[string]any{"ignored": true})
	if sp.ID() != 0 {
		t.Errorf("nil span ID = %d, want 0", sp.ID())
	}
	if sc := sp.Scope(); sc != (Scope{}) {
		t.Errorf("nil span Scope = %+v, want zero (children become roots)", sc)
	}
}

func TestSpanRoundTrip(t *testing.T) {
	rec := NewRecorder()
	root := StartSpan(rec, 2, Scope{Trace: "job7", Job: "j"}, "sort", map[string]any{"records": 100})
	child := StartSpan(rec, 2, root.Scope(), "exchange", nil)
	child.End(map[string]any{"bytes": 800})
	root.End(map[string]any{"records": 100})

	spans := BuildSpans(rec.Events())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	got := map[string]SpanRecord{}
	for _, s := range spans {
		got[s.Name] = s
	}
	r, c := got["sort"], got["exchange"]
	if r.Open || c.Open {
		t.Fatalf("closed spans reported open: %+v / %+v", r, c)
	}
	if r.Trace != "job7" || r.Job != "j" || r.Parent != 0 {
		t.Errorf("root scope mangled: %+v", r)
	}
	if c.Parent != r.Span {
		t.Errorf("child parent = %d, want root id %d", c.Parent, r.Span)
	}
	if c.Trace != "job7" || c.Job != "j" {
		t.Errorf("scope did not propagate to the child: %+v", c)
	}
	// Detail merges begin and end annotations, minus bookkeeping keys.
	if r.Detail["records"] != 100 || c.Detail["bytes"] != 800 {
		t.Errorf("annotations lost: root %v, child %v", r.Detail, c.Detail)
	}
	for _, k := range []string{"span", "parent", "trace", "name", "job"} {
		if _, ok := r.Detail[k]; ok {
			t.Errorf("bookkeeping key %q leaked into Detail", k)
		}
	}
	if r.DurUS() < 0 || c.DurUS() < 0 {
		t.Errorf("negative durations: %d / %d", r.DurUS(), c.DurUS())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	rec := NewRecorder()
	sp := StartSpan(rec, 0, Scope{}, "sort", nil)
	// The eager close with rich detail wins; the deferred error-path
	// net afterwards must be a no-op.
	sp.End(map[string]any{"records": 42})
	sp.End(map[string]any{"reason": "error"})
	ends := rec.ByKind(KindSpanEnd)
	if len(ends) != 1 {
		t.Fatalf("End emitted %d times, want 1", len(ends))
	}
	spans := BuildSpans(rec.Events())
	if len(spans) != 1 || spans[0].Detail["records"] != 42 {
		t.Fatalf("first End's detail lost: %+v", spans)
	}
	if _, ok := spans[0].Detail["reason"]; ok {
		t.Error("second End's detail leaked through")
	}
}

// Span IDs are process-unique only: two per-process trace files can
// both hold span id 1. Pairing on (rank, id) keeps the timelines
// separate after a merge.
func TestBuildSpansCrossProcessIDCollision(t *testing.T) {
	events := []Event{
		evt(0, KindSpanBegin, 10, 0, map[string]any{"span": int64(1), "name": "sort"}),
		evt(1, KindSpanBegin, 12, 0, map[string]any{"span": int64(1), "name": "sort"}),
		evt(0, KindSpanEnd, 50, 0, map[string]any{"span": int64(1), "name": "sort"}),
		evt(1, KindSpanEnd, 80, 0, map[string]any{"span": int64(1), "name": "sort"}),
	}
	spans := BuildSpans(events)
	if len(spans) != 2 {
		t.Fatalf("colliding IDs merged: got %d spans, want 2", len(spans))
	}
	byRank := map[int]SpanRecord{}
	for _, s := range spans {
		byRank[s.Rank] = s
	}
	if d := byRank[0].DurUS(); d != 40 {
		t.Errorf("rank 0 duration %d, want 40", d)
	}
	if d := byRank[1].DurUS(); d != 68 {
		t.Errorf("rank 1 duration %d, want 68", d)
	}
}

// A begin with no end — a crashed or still-running phase — surfaces as
// an Open span stretched to the rank's last sighting, not as nothing.
func TestBuildSpansOpenSpanExtendsToLastSighting(t *testing.T) {
	events := []Event{
		evt(3, KindSpanBegin, 5, 1005, map[string]any{"span": int64(9), "name": "exchange"}),
		evt(3, "exchange.plan", 40, 1040, nil),
		evt(3, "heartbeat", 90, 1090, nil),
	}
	spans := BuildSpans(events)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if !s.Open {
		t.Fatal("unterminated span not marked Open")
	}
	if s.EndUS != 90 || s.EndUnixUS != 1090 {
		t.Errorf("open span end = %d/%d, want the last sighting 90/1090", s.EndUS, s.EndUnixUS)
	}
}

// An end without a begin (the ring overwrote the begin event) is
// dropped rather than fabricating a span.
func TestBuildSpansEndWithoutBegin(t *testing.T) {
	events := []Event{
		evt(0, KindSpanEnd, 50, 0, map[string]any{"span": int64(77), "name": "sort"}),
		evt(0, "noise", 60, 0, nil),
	}
	if spans := BuildSpans(events); len(spans) != 0 {
		t.Fatalf("truncated stream fabricated spans: %+v", spans)
	}
}

func TestBuildSpansOrderedByStart(t *testing.T) {
	events := []Event{
		evt(1, KindSpanBegin, 30, 0, map[string]any{"span": int64(2), "name": "b"}),
		evt(0, KindSpanBegin, 10, 0, map[string]any{"span": int64(1), "name": "a"}),
		evt(0, KindSpanEnd, 20, 0, map[string]any{"span": int64(1), "name": "a"}),
		evt(1, KindSpanEnd, 40, 0, map[string]any{"span": int64(2), "name": "b"}),
	}
	spans := BuildSpans(events)
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("spans not in start order: %+v", spans)
	}
}
