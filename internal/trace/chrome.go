package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Chrome trace-event export: the JSON object format that
// chrome://tracing and Perfetto (ui.perfetto.dev) load directly. Each
// rank is one timeline row (tid = rank), spans become complete ("X")
// slices — nested by time containment, so phase spans sit inside
// their sort span — and plain events become thread-scoped instants.
//
// Timelines from different processes are aligned onto rank 0's clock:
// every event carries its wall-clock emission time (Event.UnixUS),
// and every rank that ran comm.SyncClocks carries a clock.offset
// event whose offset_us says how far its clock leads rank 0's. The
// exporter subtracts the offset, so simultaneous work lines up even
// when the hosts' clocks disagree. Traces recorded before UnixUS
// existed fall back to local elapsed time (ranks then share a zero
// origin, which is exactly the old, unaligned behaviour).

// KindClockOffset is the event emitted after a clock synchronisation,
// with detail {offset_us, rtt_us}: this rank's clock minus rank 0's.
const KindClockOffset = "clock.offset"

// controlTID is the timeline row for rank −1 (engine/supervisor
// events, which no single rank owns).
const controlTID = 1 << 20

// chromeEvent is one entry of the trace-event array. Field order and
// the sorted map marshaling of args make the output deterministic for
// a given event stream, which the golden test relies on.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// ClockOffsets extracts the per-rank clock offsets (microseconds
// ahead of rank 0) from the stream's clock.offset events. When a rank
// reports more than once — a world re-formed by a shrink re-measures —
// the last report wins, matching the clock the rank's later events
// were stamped by.
func ClockOffsets(events []Event) map[int]int64 {
	offs := map[int]int64{}
	for _, e := range events {
		if e.Kind != KindClockOffset {
			continue
		}
		if v, ok := asInt64(e.Detail["offset_us"]); ok {
			offs[e.Rank] = v
		}
	}
	return offs
}

// ChromeTrace renders events as Chrome trace-event JSON. Events from
// any number of ranks and processes may be mixed; see the package
// comment above for the alignment rules.
func ChromeTrace(events []Event) ([]byte, error) {
	offs := ClockOffsets(events)

	// Use the wall clock only when every event carries it; a mixed
	// stream (old file merged with new) cannot be coherently aligned,
	// so it degrades to elapsed time as a whole.
	useUnix := len(events) > 0
	for _, e := range events {
		if e.UnixUS == 0 {
			useUnix = false
			break
		}
	}
	align := func(e Event) int64 {
		if useUnix {
			return e.UnixUS - offs[e.Rank]
		}
		return e.ElapsedUS
	}

	// Normalise to a zero origin so the viewer opens on the data.
	var origin int64
	for i, e := range events {
		if ts := align(e); i == 0 || ts < origin {
			origin = ts
		}
	}

	tid := func(rank int) int {
		if rank < 0 {
			return controlTID
		}
		return rank
	}

	var out []chromeEvent

	// Thread-name metadata, one per rank row, rank order.
	ranks := map[int]bool{}
	for _, e := range events {
		ranks[e.Rank] = true
	}
	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Ints(rankList)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "sdssort"},
	})
	for _, r := range rankList {
		name := fmt.Sprintf("rank %d", r)
		if r < 0 {
			name = "control"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tid(r),
			Args: map[string]any{"name": name},
		})
		out = append(out, chromeEvent{
			Name: "thread_sort_index", Ph: "M", PID: chromePID, TID: tid(r),
			Args: map[string]any{"sort_index": tid(r)},
		})
	}

	// Spans as complete slices. BuildSpans pairs begin/end on
	// (rank, span id), so merged per-process files with colliding span
	// IDs stay separate. Durations are measured on the rank's own
	// clock (end − start elapsed), which no offset can skew; only the
	// placement uses the aligned wall clock.
	spans := BuildSpans(events)
	spanStartAligned := func(s SpanRecord) int64 {
		if useUnix {
			return s.StartUnixUS - offs[s.Rank] - origin
		}
		return s.StartUS - origin
	}
	for _, s := range spans {
		args := make(map[string]any, len(s.Detail)+3)
		for k, v := range s.Detail {
			args[k] = v
		}
		if s.Trace != "" {
			args["trace"] = s.Trace
		}
		if s.Job != "" {
			args["job"] = s.Job
		}
		if s.Open {
			args["open"] = true
		}
		name := s.Name
		if name == "" {
			name = "span"
		}
		out = append(out, chromeEvent{
			Name: name, Ph: "X",
			TS: spanStartAligned(s), Dur: s.DurUS(),
			PID: chromePID, TID: tid(s.Rank),
			Args: args,
		})
	}

	// Everything that is not a span becomes a thread-scoped instant,
	// so decisions (pivots.duplicated, algo.selected, skew.phase...)
	// show up as ticks on the rank that made them.
	for _, e := range events {
		if e.Kind == KindSpanBegin || e.Kind == KindSpanEnd {
			continue
		}
		out = append(out, chromeEvent{
			Name: e.Kind, Ph: "i",
			TS: align(e) - origin,
			S:  "t",
			PID: chromePID, TID: tid(e.Rank),
			Args: e.Detail,
		})
	}

	return json.MarshalIndent(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms"}, "", " ")
}
