package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the chrome export golden file")

// goldenEvents builds a deterministic 4-rank stream the way merged
// per-process trace files would look: every rank's clock disagrees
// with rank 0 by a known offset, each carries its clock.offset
// measurement, a "sort" root span with nested localsort/exchange
// children, and a skew instant. True (rank-0) times are identical
// across ranks, so after offset correction the timelines must line up
// exactly — that alignment is what the golden file freezes.
func goldenEvents() []Event {
	offsets := []int64{0, 1000, -500, 250}
	const base = int64(1_000_000) // rank 0's wall clock at its zero
	var events []Event
	for rank, off := range offsets {
		// wall stamps an event at true time t on this rank's skewed clock.
		wall := func(t int64) int64 { return base + t + off }
		sortID, lsID, exID := int64(1), int64(2), int64(3)
		events = append(events,
			evt(rank, KindClockOffset, 10, wall(10), map[string]any{"offset_us": off, "rtt_us": int64(40)}),
			evt(rank, KindSpanBegin, 20, wall(20), map[string]any{
				"span": sortID, "name": "sort", "trace": "w", "records": int64(1000),
			}),
			evt(rank, KindSpanBegin, 25, wall(25), map[string]any{
				"span": lsID, "parent": sortID, "name": "localsort", "trace": "w",
			}),
			evt(rank, KindSpanEnd, 60, wall(60), map[string]any{"span": lsID, "name": "localsort"}),
			evt(rank, "skew.phase", 62, wall(62), map[string]any{
				"phase": "localsort", "imbalance": 1.25,
			}),
			evt(rank, KindSpanBegin, 65, wall(65), map[string]any{
				"span": exID, "parent": sortID, "name": "exchange", "trace": "w",
			}),
			evt(rank, KindSpanEnd, 90, wall(90), map[string]any{
				"span": exID, "name": "exchange", "bytes": int64(4096),
			}),
			evt(rank, KindSpanEnd, 95, wall(95), map[string]any{"span": sortID, "name": "sort"}),
		)
	}
	return events
}

// TestChromeTraceGolden freezes the exporter's byte-exact output for
// the 4-rank scenario above. Regenerate with `go test -run Golden
// -update ./internal/trace/` and inspect the diff: any change to
// slice shapes, alignment or metadata is a reviewed decision, not
// drift.
func TestChromeTraceGolden(t *testing.T) {
	out, err := ChromeTrace(goldenEvents())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(append(out, '\n'), want) {
		t.Fatalf("chrome export drifted from %s (re-run with -update and review the diff)\ngot:\n%s", golden, out)
	}
}

// TestChromeTraceClockAlignment checks the property the golden file
// encodes: ranks whose clocks disagree by known offsets produce slices
// at identical aligned timestamps, and durations stay on each rank's
// own clock.
func TestChromeTraceClockAlignment(t *testing.T) {
	out, err := ChromeTrace(goldenEvents())
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &f); err != nil {
		t.Fatal(err)
	}
	sortTS := map[int]int64{}
	var slices, instants int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Name == "sort" {
				sortTS[e.TID] = e.TS
				if e.Dur != 75 { // 95-20 on the rank's own elapsed clock
					t.Errorf("rank %d sort dur = %d, want 75", e.TID, e.Dur)
				}
			}
		case "i":
			instants++
		}
	}
	if slices != 12 {
		t.Errorf("got %d slices, want 12 (3 spans × 4 ranks)", slices)
	}
	if instants != 8 {
		t.Errorf("got %d instants, want 8 (clock.offset + skew.phase × 4 ranks)", instants)
	}
	if len(sortTS) != 4 {
		t.Fatalf("sort slices on %d rank rows, want 4", len(sortTS))
	}
	// All four sorts started at the same true time; after offset
	// correction their aligned timestamps must agree despite the ranks'
	// clocks disagreeing by up to 1.5ms.
	ref := sortTS[0]
	for tid, ts := range sortTS {
		if ts != ref {
			t.Errorf("rank %d sort ts = %d, rank 0's = %d — offsets not applied", tid, ts, ref)
		}
	}
}

// Pre-UnixUS traces (or mixed streams) cannot be wall-aligned; the
// exporter must fall back to elapsed time rather than misalign.
func TestChromeTraceElapsedFallback(t *testing.T) {
	events := []Event{
		evt(0, KindSpanBegin, 100, 555, map[string]any{"span": int64(1), "name": "sort"}),
		evt(0, KindSpanEnd, 200, 0, map[string]any{"span": int64(1), "name": "sort"}), // no wall stamp
	}
	out, err := ChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			TS int64  `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &f); err != nil {
		t.Fatal(err)
	}
	for _, e := range f.TraceEvents {
		if e.Ph == "X" && e.TS != 0 {
			t.Errorf("elapsed fallback: slice ts = %d, want 0 (origin-normalised elapsed)", e.TS)
		}
	}
}
