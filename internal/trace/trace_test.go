package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestJSONLEmit(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(0, "sort.start", map[string]any{"records": 10})
	j.Emit(1, "sort.done", nil)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSON line: %v", err)
		}
		events = append(events, e)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Kind != "sort.start" || events[0].Rank != 0 || events[0].Seq != 1 {
		t.Fatalf("event 0: %+v", events[0])
	}
	if events[0].Detail["records"] != float64(10) {
		t.Fatalf("detail lost: %+v", events[0].Detail)
	}
	if events[1].Seq != 2 {
		t.Fatalf("sequence: %+v", events[1])
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestJSONLStopsAfterError(t *testing.T) {
	j := NewJSONL(failingWriter{})
	j.Emit(0, "a", nil)
	if j.Err() == nil {
		t.Fatal("error swallowed")
	}
	j.Emit(0, "b", nil) // must not panic or reset the error
	if j.Err() == nil {
		t.Fatal("error cleared")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Emit(0, "x", nil)
	r.Emit(1, "y", map[string]any{"k": 1})
	r.Emit(2, "x", nil)
	if got := len(r.Events()); got != 3 {
		t.Fatalf("%d events", got)
	}
	if got := len(r.ByKind("x")); got != 2 {
		t.Fatalf("%d x events", got)
	}
	if !strings.Contains(r.Summary(), "x=2") {
		t.Fatalf("summary: %s", r.Summary())
	}
	// Events returns a copy.
	evs := r.Events()
	evs[0].Kind = "mutated"
	if r.Events()[0].Kind != "x" {
		t.Fatal("Events leaked internal state")
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(rank, "e", nil)
				j.Emit(rank, "e", nil)
			}
		}(rank)
	}
	wg.Wait()
	if got := len(r.Events()); got != 800 {
		t.Fatalf("recorder lost events: %d", got)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte("\n")); got != 800 {
		t.Fatalf("jsonl lost events: %d", got)
	}
}

func TestNop(t *testing.T) {
	Nop{}.Emit(0, "anything", nil) // must not panic
}
