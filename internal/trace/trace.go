// Package trace records structured per-rank events from a sort run —
// phase transitions, exchange volumes, partition summaries — as JSON
// lines. Traces make the adaptive decisions (τm/τo/τs branches, pivot
// duplication, per-destination send counts) observable after the fact,
// which is how the experiments' claims were debugged and is what a
// production operator would ship to their log pipeline.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one trace record. Fields are flat for painless ingestion.
type Event struct {
	// Seq is the event's sequence number within its tracer.
	Seq int64 `json:"seq"`
	// ElapsedUS is microseconds since the tracer was created.
	ElapsedUS int64 `json:"elapsed_us"`
	// UnixUS is the wall-clock emission time in microseconds since the
	// Unix epoch. Unlike ElapsedUS it is comparable across processes
	// (after clock-offset correction — see comm.SyncClocks and the
	// clock.offset event), which is what lets sdstrace project per-rank
	// events onto one global timeline. Zero in traces written before
	// the field existed.
	UnixUS int64 `json:"unix_us,omitempty"`
	// Rank is the communicator rank that emitted the event.
	Rank int `json:"rank"`
	// Kind names the event (phase, decision, exchange, partition...).
	Kind string `json:"kind"`
	// Detail is the event-specific payload.
	Detail map[string]any `json:"detail,omitempty"`
}

// copyDetail shallow-copies a caller-owned detail map. Sinks that
// retain events past the Emit call (Ring, Recorder) must not alias the
// caller's map: callers routinely reuse or mutate detail maps after
// emitting, which the race detector rightly flags.
func copyDetail(detail map[string]any) map[string]any {
	if detail == nil {
		return nil
	}
	cp := make(map[string]any, len(detail))
	for k, v := range detail {
		cp[k] = v
	}
	return cp
}

// Tracer receives events. Implementations must be safe for concurrent
// use: in-process clusters emit from many rank goroutines at once.
type Tracer interface {
	Emit(rank int, kind string, detail map[string]any)
}

// Nop discards everything; useful as a default.
type Nop struct{}

// Emit implements Tracer.
func (Nop) Emit(int, string, map[string]any) {}

// JSONL writes one JSON object per event to an io.Writer.
type JSONL struct {
	mu    sync.Mutex
	w     io.Writer
	enc   *json.Encoder
	seq   int64
	start time.Time
	err   error
}

// NewJSONL wraps w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, enc: json.NewEncoder(w), start: time.Now()}
}

// Emit implements Tracer.
func (j *JSONL) Emit(rank int, kind string, detail map[string]any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.seq++
	now := time.Now()
	j.err = j.enc.Encode(Event{
		Seq:       j.seq,
		ElapsedUS: now.Sub(j.start).Microseconds(),
		UnixUS:    now.UnixMicro(),
		Rank:      rank,
		Kind:      kind,
		Detail:    detail,
	})
}

// Err reports the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Recorder buffers events in memory, for tests and interactive
// inspection.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	start  time.Time
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Emit implements Tracer.
func (r *Recorder) Emit(rank int, kind string, detail map[string]any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	r.events = append(r.events, Event{
		Seq:       int64(len(r.events) + 1),
		ElapsedUS: now.Sub(r.start).Microseconds(),
		UnixUS:    now.UnixMicro(),
		Rank:      rank,
		Kind:      kind,
		Detail:    copyDetail(detail),
	})
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// ByKind returns the recorded events with the given kind.
func (r *Recorder) ByKind(kind string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Summary renders a one-line-per-kind count, for quick looks.
func (r *Recorder) Summary() string {
	counts := map[string]int{}
	for _, e := range r.Events() {
		counts[e.Kind]++
	}
	out := ""
	for kind, n := range counts {
		out += fmt.Sprintf("%s=%d ", kind, n)
	}
	return out
}
