package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Critical-path analysis: attribute a job's end-to-end latency to the
// slowest rank of each phase. A BSP sort advances at the pace of its
// slowest participant — every collective is a barrier — so the wall
// time of the whole run decomposes, phase by phase, into "who was
// last out of the room". That attribution is what the analyzer
// prints: for each phase span, the maximum per-rank time, which rank
// owned it, its share of the total, and the phase's max/mean skew.
// Durations come from each rank's own monotonic clock, so no clock
// alignment is needed (or used) here.

// CritStep is one phase on the critical path.
type CritStep struct {
	// Name is the phase span's name (localsort, exchange, ...).
	Name string
	// Rank held the phase longest; DurUS is its time in the phase.
	Rank  int
	DurUS int64
	// MaxOverMean is the phase's load-imbalance factor across ranks
	// in time: max rank duration over mean rank duration (1.0 =
	// perfectly balanced). Zero when only one rank ran the phase.
	MaxOverMean float64
	// Ranks is how many ranks ran the phase.
	Ranks int
	// PctOfTotal is DurUS as a share of the root span.
	PctOfTotal float64
	// startUS orders the steps for presentation.
	startUS int64
}

// CritPath is the full attribution.
type CritPath struct {
	// Trace identifies the analyzed job when the stream held several.
	Trace string
	// RootName is the root span's name, Roots how many ranks ran it.
	RootName string
	Roots    int
	// TotalUS is the slowest rank's end-to-end time, SlowestRank who.
	TotalUS     int64
	SlowestRank int
	// Steps are the phases, in start order.
	Steps []CritStep
	// AccountedUS sums the steps; the remainder is un-spanned time
	// (setup, barriers between phases, teardown).
	AccountedUS int64
	// OtherTraces counts jobs in the stream that were not analyzed.
	OtherTraces int
}

// CriticalPath analyzes the spans of an event stream. It picks the
// root spans — name "sort" when present, else any parentless span —
// and when the stream holds several traces (a multi-job run),
// analyzes the one with the longest root, reporting how many others
// it skipped. Returns ok=false when the stream has no spans.
func CriticalPath(events []Event) (CritPath, bool) {
	spans := BuildSpans(events)
	if len(spans) == 0 {
		return CritPath{}, false
	}

	// Root selection: prefer the canonical per-rank "sort" roots over
	// job/epoch wrappers so the phase decomposition is the sort's.
	isRoot := func(s SpanRecord) bool { return s.Name == "sort" }
	any := false
	for _, s := range spans {
		if isRoot(s) {
			any = true
			break
		}
	}
	if !any {
		isRoot = func(s SpanRecord) bool { return s.Parent == 0 }
	}

	// Group roots by trace; analyze the trace owning the longest root.
	var (
		pickTrace string
		pickDur   int64
		traces    = map[string]bool{}
		found     bool
	)
	for _, s := range spans {
		if !isRoot(s) {
			continue
		}
		traces[s.Trace] = true
		if d := s.DurUS(); !found || d > pickDur {
			found, pickDur, pickTrace = true, d, s.Trace
		}
	}
	if !found {
		return CritPath{}, false
	}

	cp := CritPath{Trace: pickTrace, OtherTraces: len(traces) - 1}
	// Span IDs are process-unique only, so parent links are resolved
	// on the (rank, id) pair, same as BuildSpans.
	type rootKey struct {
		rank int
		id   int64
	}
	rootSet := map[rootKey]bool{}
	for _, s := range spans {
		if !isRoot(s) || s.Trace != pickTrace {
			continue
		}
		cp.Roots++
		cp.RootName = s.Name
		rootSet[rootKey{s.Rank, s.Span}] = true
		if d := s.DurUS(); d >= cp.TotalUS {
			cp.TotalUS, cp.SlowestRank = d, s.Rank
		}
	}

	// Depth-1 children of the roots, grouped by name. Per rank the
	// durations sum (a rank may checkpoint twice); across ranks the
	// max wins and is the phase's critical-path contribution.
	type agg struct {
		perRank map[int]int64
		startUS int64
		n       int
	}
	phases := map[string]*agg{}
	for _, s := range spans {
		if !rootSet[rootKey{s.Rank, s.Parent}] {
			continue
		}
		a := phases[s.Name]
		if a == nil {
			a = &agg{perRank: map[int]int64{}, startUS: s.StartUS}
			phases[s.Name] = a
		}
		a.perRank[s.Rank] += s.DurUS()
		if s.StartUS < a.startUS {
			a.startUS = s.StartUS
		}
		a.n++
	}
	for name, a := range phases {
		step := CritStep{Name: name, Ranks: len(a.perRank), startUS: a.startUS}
		var sum int64
		first := true
		for r, d := range a.perRank {
			sum += d
			if first || d > step.DurUS || (d == step.DurUS && r < step.Rank) {
				step.DurUS, step.Rank = d, r
				first = false
			}
		}
		if mean := float64(sum) / float64(len(a.perRank)); mean > 0 && len(a.perRank) > 1 {
			step.MaxOverMean = float64(step.DurUS) / mean
		}
		if cp.TotalUS > 0 {
			step.PctOfTotal = 100 * float64(step.DurUS) / float64(cp.TotalUS)
		}
		cp.AccountedUS += step.DurUS
		cp.Steps = append(cp.Steps, step)
	}
	sort.Slice(cp.Steps, func(i, j int) bool {
		if cp.Steps[i].startUS != cp.Steps[j].startUS {
			return cp.Steps[i].startUS < cp.Steps[j].startUS
		}
		return cp.Steps[i].Name < cp.Steps[j].Name
	})
	return cp, true
}

// Render prints the attribution as an aligned report.
func (c CritPath) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %s over %d rank(s), %.3fms end-to-end (gated by rank %d)",
		c.RootName, c.Roots, float64(c.TotalUS)/1000, c.SlowestRank)
	if c.Trace != "" {
		fmt.Fprintf(&b, " [trace %s]", c.Trace)
	}
	b.WriteByte('\n')
	for _, s := range c.Steps {
		fmt.Fprintf(&b, "  %-14s %10.3fms  %5.1f%%  slowest rank %d of %d",
			s.Name, float64(s.DurUS)/1000, s.PctOfTotal, s.Rank, s.Ranks)
		if s.MaxOverMean > 0 {
			fmt.Fprintf(&b, "  (max/mean %.2fx)", s.MaxOverMean)
		}
		b.WriteByte('\n')
	}
	if slack := c.TotalUS - c.AccountedUS; len(c.Steps) > 0 {
		fmt.Fprintf(&b, "  %-14s %10.3fms  %5.1f%%  (setup, barriers, teardown)\n",
			"un-spanned", float64(slack)/1000,
			100*float64(slack)/float64(max64(c.TotalUS, 1)))
	}
	if c.OtherTraces > 0 {
		fmt.Fprintf(&b, "  (%d other trace(s) in the stream not analyzed)\n", c.OtherTraces)
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
