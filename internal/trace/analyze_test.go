package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(0, "sort.start", map[string]any{"records": 100})
	j.Emit(0, "exchange.plan", map[string]any{"recv_records": int64(40)})
	j.Emit(1, "exchange.plan", map[string]any{"recv_records": int64(60)})
	j.Emit(0, "pivots.duplicated", map[string]any{"runs": 1})
	j.Emit(1, "sort.done", nil)

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("%d events", len(events))
	}
	a := Analyze(events)
	if a.Events != 5 || len(a.Ranks) != 2 {
		t.Fatalf("analysis: %+v", a)
	}
	if a.Kinds["exchange.plan"] != 2 {
		t.Fatalf("kinds: %+v", a.Kinds)
	}
	if a.ExchangeRecv[0] != 40 || a.ExchangeRecv[1] != 60 {
		t.Fatalf("recv volumes: %+v", a.ExchangeRecv)
	}
	if a.DuplicatedPivotRuns != 1 {
		t.Fatalf("dup runs: %d", a.DuplicatedPivotRuns)
	}

	out := a.Render()
	for _, want := range []string{"5 events", "exchange.plan", "100 records total", "skew-aware"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	events, err := ReadJSONL(strings.NewReader("\n\n{\"seq\":1,\"rank\":0,\"kind\":\"x\"}\n\n"))
	if err != nil || len(events) != 1 {
		t.Fatalf("events=%v err=%v", events, err)
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Events != 0 || a.SpanUS != 0 {
		t.Fatalf("%+v", a)
	}
	if !strings.Contains(a.Render(), "0 events") {
		t.Fatal("render")
	}
}

func TestAsInt64(t *testing.T) {
	for _, v := range []any{int64(5), int(5), float64(5)} {
		if got, ok := asInt64(v); !ok || got != 5 {
			t.Fatalf("asInt64(%T) = %d, %v", v, got, ok)
		}
	}
	if _, ok := asInt64("5"); ok {
		t.Fatal("string accepted")
	}
}
