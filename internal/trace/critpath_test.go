package trace

import (
	"strings"
	"testing"
)

// spanPair emits a begin/end pair directly as events, with explicit
// timestamps, so the attribution arithmetic is tested on exact inputs.
func spanPair(rank int, id, parent int64, name, traceName string, start, end int64) []Event {
	begin := map[string]any{"span": id, "name": name}
	if parent != 0 {
		begin["parent"] = parent
	}
	if traceName != "" {
		begin["trace"] = traceName
	}
	return []Event{
		evt(rank, KindSpanBegin, start, 0, begin),
		evt(rank, KindSpanEnd, end, 0, map[string]any{"span": id, "name": name}),
	}
}

// Two ranks, BSP sort: rank 1 is slower end-to-end, rank 0 owns the
// slowest localsort, rank 1 the slowest exchange. The critical path
// must pick the max over ranks per phase and gate the total on the
// slowest root.
func TestCriticalPathAttributesSlowestRankPerPhase(t *testing.T) {
	var events []Event
	// rank 0: sort 0..100, localsort 0..60, exchange 65..85
	events = append(events, spanPair(0, 1, 0, "sort", "w", 0, 100)...)
	events = append(events, spanPair(0, 2, 1, "localsort", "w", 0, 60)...)
	events = append(events, spanPair(0, 3, 1, "exchange", "w", 65, 85)...)
	// rank 1: sort 0..120, localsort 0..40, exchange 45..115
	events = append(events, spanPair(1, 1, 0, "sort", "w", 0, 120)...)
	events = append(events, spanPair(1, 2, 1, "localsort", "w", 0, 40)...)
	events = append(events, spanPair(1, 3, 1, "exchange", "w", 45, 115)...)

	cp, ok := CriticalPath(events)
	if !ok {
		t.Fatal("no critical path found")
	}
	if cp.RootName != "sort" || cp.Roots != 2 {
		t.Fatalf("root = %q over %d ranks, want sort over 2", cp.RootName, cp.Roots)
	}
	if cp.TotalUS != 120 || cp.SlowestRank != 1 {
		t.Fatalf("total %dµs gated by rank %d, want 120µs by rank 1", cp.TotalUS, cp.SlowestRank)
	}
	if len(cp.Steps) != 2 {
		t.Fatalf("got %d steps, want 2: %+v", len(cp.Steps), cp.Steps)
	}
	ls, ex := cp.Steps[0], cp.Steps[1]
	if ls.Name != "localsort" || ex.Name != "exchange" {
		t.Fatalf("steps out of start order: %+v", cp.Steps)
	}
	if ls.Rank != 0 || ls.DurUS != 60 {
		t.Errorf("localsort attributed to rank %d at %dµs, want rank 0 at 60µs", ls.Rank, ls.DurUS)
	}
	if ex.Rank != 1 || ex.DurUS != 70 {
		t.Errorf("exchange attributed to rank %d at %dµs, want rank 1 at 70µs", ex.Rank, ex.DurUS)
	}
	// localsort mean is (60+40)/2 = 50 → max/mean 1.2
	if ls.MaxOverMean < 1.19 || ls.MaxOverMean > 1.21 {
		t.Errorf("localsort max/mean = %.3f, want 1.2", ls.MaxOverMean)
	}
	if cp.AccountedUS != 130 {
		t.Errorf("accounted %dµs, want 60+70", cp.AccountedUS)
	}
	out := cp.Render()
	for _, want := range []string{"critical path: sort over 2 rank(s)", "localsort", "exchange", "un-spanned"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// A multi-job stream: the analyzer picks the trace with the longest
// root and reports the others as skipped, instead of blending jobs.
func TestCriticalPathPicksLongestTrace(t *testing.T) {
	var events []Event
	events = append(events, spanPair(0, 1, 0, "sort", "job-a", 0, 50)...)
	events = append(events, spanPair(0, 2, 0, "sort", "job-b", 0, 500)...)
	events = append(events, spanPair(0, 3, 2, "exchange", "job-b", 10, 200)...)

	cp, ok := CriticalPath(events)
	if !ok {
		t.Fatal("no critical path found")
	}
	if cp.Trace != "job-b" || cp.TotalUS != 500 {
		t.Fatalf("picked trace %q (%dµs), want job-b (500µs)", cp.Trace, cp.TotalUS)
	}
	if cp.OtherTraces != 1 {
		t.Errorf("OtherTraces = %d, want 1", cp.OtherTraces)
	}
	if len(cp.Steps) != 1 || cp.Steps[0].Name != "exchange" {
		t.Errorf("steps blended across traces: %+v", cp.Steps)
	}
}

// With no "sort" spans the analyzer falls back to parentless roots, so
// span-instrumented code that is not a sort still gets an attribution.
func TestCriticalPathFallsBackToParentlessRoots(t *testing.T) {
	var events []Event
	events = append(events, spanPair(0, 1, 0, "job", "", 0, 300)...)
	events = append(events, spanPair(0, 2, 1, "spill", "", 20, 250)...)

	cp, ok := CriticalPath(events)
	if !ok {
		t.Fatal("no critical path found")
	}
	if cp.RootName != "job" || cp.TotalUS != 300 {
		t.Fatalf("fallback root = %q (%dµs), want job (300µs)", cp.RootName, cp.TotalUS)
	}
	if len(cp.Steps) != 1 || cp.Steps[0].Name != "spill" {
		t.Errorf("steps = %+v, want one spill step", cp.Steps)
	}
}

func TestCriticalPathNoSpans(t *testing.T) {
	events := []Event{evt(0, "phase", 10, 0, nil)}
	if _, ok := CriticalPath(events); ok {
		t.Fatal("span-free stream produced a critical path")
	}
	if _, ok := CriticalPath(nil); ok {
		t.Fatal("empty stream produced a critical path")
	}
}
