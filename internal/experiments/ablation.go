package experiments

import (
	"fmt"
	"runtime"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/psort"
	"sdssort/internal/workload"
)

// Ablation measures the design choices DESIGN.md calls out, beyond what
// the paper plots directly:
//
//  1. run detection on partially ordered inputs (the §2.7 claim that
//     recognising sortedness beats re-sorting);
//  2. the cost of stability (stable vs fast partition + ordering);
//  3. the shared-memory parallel sort's scaling over worker counts on
//     skewed data (the §2.2 skew-aware merge).
func Ablation(cfg Config) (*Result, error) {
	res := &Result{ID: "ablation", Title: About("ablation")}

	// 1. Run detection.
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	blocks := 16
	ks := workload.KSorted(cfg.Seed, n, blocks)
	runTbl := &metrics.Table{
		Title:   fmt.Sprintf("Ablation 1 — local sort of %d-block partially ordered data (%d keys)", blocks, n),
		Headers: []string{"strategy", "time"},
	}
	withDetect := median3(func() time.Duration {
		cp := append([]float64(nil), ks...)
		start := time.Now()
		psort.AdaptiveSort(cp, 1, false, 32, cmpF64)
		return time.Since(start)
	})
	withoutDetect := median3(func() time.Duration {
		cp := append([]float64(nil), ks...)
		start := time.Now()
		psort.ParallelSort(cp, 1, false, cmpF64)
		return time.Since(start)
	})
	runTbl.AddRow("run detection + natural merge", metrics.FmtDur(withDetect))
	runTbl.AddRow("blind re-sort", metrics.FmtDur(withoutDetect))
	res.Tables = append(res.Tables, runTbl)

	// 2. Stability overhead end to end.
	p, perRank := 8, 4000
	if cfg.Quick {
		p, perRank = 4, 1000
	}
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	gen := func(rank int) []float64 {
		return workload.ZipfKeys(cfg.Seed+int64(rank)*211, perRank, 1.4, workload.DefaultZipfUniverse)
	}
	rc := runCfg{topo: topo, opt: core.DefaultOptions()}
	fast := runSort(kindSDS, rc, gen, f64codec, cmpF64)
	stable := runSort(kindSDSStable, rc, gen, f64codec, cmpF64)
	if fast.Err != nil || stable.Err != nil {
		return nil, fmt.Errorf("ablation stability: %v / %v", fast.Err, stable.Err)
	}
	stTbl := &metrics.Table{
		Title:   fmt.Sprintf("Ablation 2 — cost of stability, Zipf α=1.4, p=%d", p),
		Headers: []string{"mode", "time", "overhead"},
	}
	stTbl.AddRow("fast", metrics.FmtDur(fast.Elapsed), "1.00x")
	stTbl.AddRow("stable", metrics.FmtDur(stable.Elapsed),
		fmt.Sprintf("%.2fx", float64(stable.Elapsed)/float64(fast.Elapsed)))
	res.Tables = append(res.Tables, stTbl)
	res.Notes = append(res.Notes,
		"stability costs show in the stable merge sort and the duplicate-count collective; at small p the fast mode's overlapped exchange can cost as much as stability does, so the ratio hovers near 1 here (the paper's ~2x gap appears at scale)")

	// 3. Shared-memory parallel sort scaling on skewed data.
	sn := 1 << 20
	workers := []int{1, 2, 4, 8}
	if cfg.Quick {
		sn = 1 << 16
		workers = []int{1, 4}
	}
	base := workload.ZipfKeys(cfg.Seed, sn, 1.6, 300)
	smTbl := &metrics.Table{
		Title:   fmt.Sprintf("Ablation 3 — SdssLocalSort merge balance on Zipf data (%d keys)", sn),
		Headers: []string{"workers", "wall", "critical path", "balance (crit/ideal)"},
	}
	for _, w := range workers {
		// Sort w chunks, then measure the skew-aware merge's wall and
		// critical-path time. On a host with fewer cores than workers
		// wall time stays flat; the critical path shows the balance
		// a parallel host would enjoy.
		chunkSize := (sn + w - 1) / w
		chunks := make([][]float64, 0, w)
		for lo := 0; lo < sn; lo += chunkSize {
			hi := lo + chunkSize
			if hi > sn {
				hi = sn
			}
			c := append([]float64(nil), base[lo:hi]...)
			psort.Sort(c, cmpF64)
			chunks = append(chunks, c)
		}
		var wall, crit time.Duration
		wall = median3(func() time.Duration {
			start := time.Now()
			_, busy := psort.SkewAwareParallelMergeTimed(chunks, w, false, cmpF64)
			elapsed := time.Since(start)
			crit = 0
			for _, d := range busy {
				if d > crit {
					crit = d
				}
			}
			return elapsed
		})
		ideal := wall / time.Duration(w)
		balance := "-"
		if ideal > 0 {
			balance = fmt.Sprintf("%.2f", float64(crit)/float64(ideal))
		}
		smTbl.AddRow(fmt.Sprint(w), metrics.FmtDur(wall), metrics.FmtDur(crit), balance)
	}
	res.Tables = append(res.Tables, smTbl)

	// 4. The core contribution isolated: skew-aware partition on vs off
	// (same pipeline, classical upper-bound partition) on duplicated
	// data, compared by the maximum rank load.
	pa, perRankA := 8, 2000
	if cfg.Quick {
		pa, perRankA = 4, 800
	}
	topoA := cluster.Topology{Nodes: pa, CoresPerNode: 1}
	// 70% of records share one value, so most global pivots duplicate —
	// the regime where the two partitions diverge.
	genA := func(rank int) []float64 {
		rng := workload.FewDistinct(cfg.Seed+int64(rank)*307, perRankA, 10)
		for i := range rng {
			if i%10 < 7 {
				rng[i] = 5
			}
		}
		return rng
	}
	saTbl := &metrics.Table{
		Title:   fmt.Sprintf("Ablation 4 — skew-aware partition on/off, 70%%-duplicated keys, p=%d", pa),
		Headers: []string{"partition", "max rank load", "RDFA", "time"},
	}
	for _, disable := range []bool{false, true} {
		opt := core.DefaultOptions()
		opt.TauM = 0
		opt.DisableSkewAware = disable
		o := runSort(kindSDS, runCfg{topo: topoA, opt: opt}, genA, f64codec, cmpF64)
		if o.Err != nil {
			return nil, fmt.Errorf("ablation skew-aware=%v: %w", !disable, o.Err)
		}
		maxLoad := 0
		for _, l := range o.Loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		name := "skew-aware (SDS)"
		if disable {
			name = "classical upper-bound"
		}
		saTbl.AddRow(name, fmt.Sprint(maxLoad),
			metrics.FmtRDFA(metrics.RDFA(o.Loads)), metrics.FmtDur(o.Elapsed))
	}
	res.Tables = append(res.Tables, saTbl)
	res.Notes = append(res.Notes,
		fmt.Sprintf("host has %d CPU(s): wall time cannot drop below serial; the critical path shows the available parallel speedup", runtime.NumCPU()))
	return res, nil
}
