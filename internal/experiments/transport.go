package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/comm/tcpcomm"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/workload"
)

// Transport compares the same SDS-Sort run over the two transports: the
// in-process fabric and the TCP "custom RPC" exchange over localhost.
// The algorithm is transport-agnostic by construction; this experiment
// demonstrates it end to end and prices the TCP substitution.
func Transport(cfg Config) (*Result, error) {
	p, perRank := 4, 20000
	if cfg.Quick {
		perRank = 4000
	}
	gen := func(rank int) []float64 {
		return workload.ZipfKeys(cfg.Seed+int64(rank)*401, perRank, 1.4, workload.DefaultZipfUniverse)
	}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("Transport comparison — SDS-Sort, %d ranks × %d records", p, perRank),
		Headers: []string{"transport", "time", "RDFA"},
	}
	res := &Result{ID: "transport", Title: About("transport"), Tables: []*metrics.Table{tbl}}

	// In-process fabric.
	inproc := runSort(kindSDS, runCfg{
		topo: cluster.Topology{Nodes: p, CoresPerNode: 1},
		opt:  core.DefaultOptions(),
	}, gen, f64codec, cmpF64)
	if inproc.Err != nil {
		return nil, fmt.Errorf("transport inproc: %w", inproc.Err)
	}
	tbl.AddRow("in-process", metrics.FmtDur(inproc.Elapsed), metrics.FmtRDFA(metrics.RDFA(inproc.Loads)))

	// TCP over localhost.
	elapsed, loads, err := runOverTCP(p, gen)
	if err != nil {
		return nil, fmt.Errorf("transport tcp: %w", err)
	}
	tbl.AddRow("tcp (localhost)", metrics.FmtDur(elapsed), metrics.FmtRDFA(metrics.RDFA(loads)))

	res.Notes = append(res.Notes,
		"identical algorithm and loads on both transports; the time delta is the cost of framing, kernel sockets and copies — what MPI's shared-memory shortcuts avoid on-node")
	return res, nil
}

// runOverTCP launches p ranks over localhost TCP in-process and runs the
// default SDS-Sort.
func runOverTCP(p int, gen func(rank int) []float64) (time.Duration, []int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, nil, err
	}
	registry := ln.Addr().String()
	ln.Close()

	loads := make([]int, p)
	errs := make([]error, p)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := tcpcomm.New(tcpcomm.Config{
				Rank: rank, Size: p, Node: rank,
				Registry: registry, Timeout: 30 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer tr.Close()
			c := comm.New(tr)
			out, err := core.Sort(c, gen(rank), codec.Float64{}, cmpF64, core.DefaultOptions())
			if err != nil {
				errs[rank] = err
				return
			}
			loads[rank] = len(out)
			errs[rank] = c.Barrier()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return 0, nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return time.Since(start), loads, nil
}
