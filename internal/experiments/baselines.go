package experiments

import (
	"time"

	"sdssort/internal/bitonic"
	"sdssort/internal/cluster"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/radix"
	"sdssort/internal/workload"
)

// Baselines runs the paper's future-work item "more comparisons against
// various parallel sorting methods": SDS-Sort (fast and stable) against
// HykSort, HSS, multi-level AMS, classical PSRS, distributed bitonic
// sort, and parallel radix sort, on the Uniform and Zipf workloads. The
// time columns carry the headline; the RDFA columns carry the why.
func Baselines(cfg Config) (*Result, error) {
	p, perRank := 8, 8000
	if cfg.Quick {
		p, perRank = 4, 2000
	}
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}

	res := &Result{ID: "baselines", Title: About("baselines")}
	for _, wl := range []struct {
		name  string
		alpha float64
	}{{"Uniform", 0}, {"Zipf(α=1.4, δ≈32%)", 1.4}} {
		gen := func(rank int) []float64 {
			seed := cfg.Seed + int64(rank)*613
			if wl.alpha == 0 {
				return workload.Uniform(seed, perRank)
			}
			return workload.ZipfKeys(seed, perRank, wl.alpha, workload.DefaultZipfUniverse)
		}
		tbl := &metrics.Table{
			Title:   "Baselines — " + wl.name,
			Headers: []string{"sorter", "time", "RDFA"},
		}
		rc := runCfg{topo: topo, opt: core.DefaultOptions()}

		row := func(name string, o outcome) {
			rdfa := "inf"
			if o.Err == nil {
				rdfa = metrics.FmtRDFA(metrics.RDFA(o.Loads))
			}
			tbl.AddRow(name, fmtOutcomeTime(o), rdfa)
		}
		row("SDS-Sort", runSort(kindSDS, rc, gen, f64codec, cmpF64))
		row("SDS-Sort/stable", runSort(kindSDSStable, rc, gen, f64codec, cmpF64))
		row("HykSort", runSort(kindHyk, rc, gen, f64codec, cmpF64))
		row("HSS", runSort(kindHSS, rc, gen, f64codec, cmpF64))
		row("AMS", runSort(kindAMS, rc, gen, f64codec, cmpF64))
		row("PSRS", runSort(kindPSRS, rc, gen, f64codec, cmpF64))
		row("Bitonic", runBitonic(topo, gen))
		row("Radix", runRadix(topo, gen))
		res.Tables = append(res.Tables, tbl)
	}
	res.Notes = append(res.Notes,
		"bitonic moves data log²p times (communication-bound); radix needs an integer key mapping and distributes on high bits (coarse for floats); PSRS/HykSort/HSS/AMS partition duplicate-obliviously and lose balance on Zipf — the §5 trade-offs")
	return res, nil
}

// runBitonic measures the distributed bitonic baseline.
func runBitonic(topo cluster.Topology, gen func(rank int) []float64) outcome {
	p := topo.Size()
	loads := make([]int, p)
	start := time.Now()
	err := cluster.Run(topo, func(c *comm.Comm) error {
		out, err := bitonic.DistributedSort(c, gen(c.Rank()), f64codec, cmpF64)
		if err != nil {
			return err
		}
		loads[c.Rank()] = len(out)
		return nil
	})
	return outcome{Elapsed: time.Since(start), Loads: loads, Err: err}
}

// runRadix measures the parallel radix baseline via the order-preserving
// float-to-uint64 key mapping.
func runRadix(topo cluster.Topology, gen func(rank int) []float64) outcome {
	p := topo.Size()
	loads := make([]int, p)
	start := time.Now()
	err := cluster.Run(topo, func(c *comm.Comm) error {
		out, err := radix.Sort(c, gen(c.Rank()), f64codec, radix.Float64Key, radix.Options{})
		if err != nil {
			return err
		}
		loads[c.Rank()] = len(out)
		return nil
	})
	if err != nil {
		return outcome{Elapsed: time.Since(start), Loads: loads, Err: err}
	}
	return outcome{Elapsed: time.Since(start), Loads: loads}
}
