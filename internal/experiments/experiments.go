// Package experiments reproduces every table and figure of the paper's
// evaluation (§4) at laptop scale: one driver per artifact, shared
// between the cmd/sdsbench binary and the repository's benchmarks. Each
// driver returns rendered tables whose rows/series correspond to what
// the paper plots; EXPERIMENTS.md records the paper-versus-measured
// comparison.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sdssort/internal/algo"
	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
)

// Config scales an experiment run.
type Config struct {
	// Quick shrinks data sizes and sweep ranges so the whole suite
	// finishes in seconds (used by tests and -quick runs).
	Quick bool
	// Seed makes runs reproducible.
	Seed int64
	// Algo, when non-empty, restricts the algorithm-comparison
	// experiments (algocmp) to one registered driver name.
	Algo string
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	Notes  []string
}

// String renders the result for the terminal.
func (r *Result) String() string {
	out := fmt.Sprintf("### %s — %s\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Runner executes one experiment.
type Runner func(cfg Config) (*Result, error)

// registry maps experiment ids to runners, in paper order. It is
// populated in init to break the initialization cycle between the
// runner functions (which call About) and this table.
var registry []regEntry

type regEntry struct {
	ID    string
	Run   Runner
	About string
}

func init() {
	registry = []regEntry{
		{"fig5a", Fig5a, "exchange time with vs without node-level merging (τm)"},
		{"fig5b", Fig5b, "overlapped vs non-overlapped exchange and local ordering (τo)"},
		{"fig5c", Fig5c, "final local ordering by sorting vs merging (τs)"},
		{"tab1", Table1, "sequential sort vs stable sort on uniform and Zipf data"},
		{"tab2", Table2, "relationship between Zipf α and duplication ratio δ"},
		{"fig6a", Fig6a, "skew-aware vs sample-based shared-memory parallel merge"},
		{"fig6b", Fig6b, "partition methods: full scan vs binary rank vs local pivots"},
		{"fig6c", Fig6c, "sort time vs replication ratio δ (HykSort collapse)"},
		{"fig7", Fig7, "weak scaling on the Uniform workload"},
		{"fig8", Fig8, "weak scaling on the Zipf workload (HykSort OOM)"},
		{"tab3", Table3, "RDFA load balance across the scaling runs"},
		{"fig9", Fig9, "PTF dataset phase breakdown"},
		{"fig10", Fig10, "cosmology dataset phase breakdown"},
		{"tab4", Table4, "RDFA on the PTF and cosmology datasets"},
		{"ablation", Ablation, "ablations: run detection, locators, stability overhead"},
		{"baselines", Baselines, "eight sorters compared on Uniform and Zipf workloads"},
		{"algocmp", AlgoCompare, "pluggable drivers across the workload presets, with auto's resolved choices"},
		{"tausweep", TauSweep, "systematic τm/τo/τs parameter study (the paper's §6 future work)"},
		{"transport", Transport, "same sort over the in-process and TCP transports"},
	}
}

// IDs lists experiment ids in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// About returns the one-line description for id ("" if unknown).
func About(id string) string {
	for _, e := range registry {
		if e.ID == id {
			return e.About
		}
	}
	return ""
}

// Lookup returns the runner for id.
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// sorterKind selects the algorithm under test. The values are the
// display labels the tables print; driverName maps them onto the algo
// registry.
type sorterKind string

const (
	kindSDS       sorterKind = "SDS-Sort"
	kindSDSStable sorterKind = "SDS-Sort/stable"
	kindHyk       sorterKind = "HykSort"
	kindPSRS      sorterKind = "PSRS"
	kindHSS       sorterKind = "HSS"
	kindAMS       sorterKind = "AMS"
	kindAuto      sorterKind = "auto"
)

// driverName maps a display kind onto its algo-registry name.
func driverName(kind sorterKind) string {
	switch kind {
	case kindSDS, kindSDSStable:
		return algo.NameSDS
	case kindHyk:
		return algo.NameHyk
	case kindPSRS:
		return algo.NamePSRS
	case kindHSS:
		return algo.NameHSS
	case kindAMS:
		return algo.NameAMS
	case kindAuto:
		return algo.NameAuto
	}
	return string(kind)
}

// outcome is one distributed sort run's measurement.
type outcome struct {
	Elapsed time.Duration
	Loads   []int
	Phases  map[metrics.Phase]time.Duration
	// OOM is set when the run died of the emulated memory limit (the
	// paper reports such runs as ∞ / failed).
	OOM bool
	Err error
}

// runCfg parameterises runSort.
type runCfg struct {
	topo cluster.Topology
	// budgetMultiple × fair share per rank; 0 = unlimited.
	budgetMultiple float64
	totalBytes     int64
	// opt carries the shared exchange tunables for every kind; the
	// τm/τo/τs and Stable fields only reach the SDS kinds (the baseline
	// drivers map the subset they understand).
	opt core.Options
	// selection, when non-nil, counts which driver each rank actually
	// ran (the resolved choice under kindAuto).
	selection *metrics.AlgoStats
	wrap      func(comm.Transport) comm.Transport
}

// runSort runs one collective sort of the given kind over generated
// per-rank data and measures wall time, final loads, and phases. All
// kinds dispatch through the algo driver registry, so an experiment
// exercises exactly the code path the front ends run.
func runSort[T any](kind sorterKind, rc runCfg, gen func(rank int) []T, cd codec.Codec[T], cmp func(a, b T) int) outcome {
	p := rc.topo.Size()
	loads := make([]int, p)
	timers := make([]*metrics.PhaseTimer, p)
	for i := range timers {
		timers[i] = metrics.NewPhaseTimer()
	}
	drv, err := algo.New[T](driverName(kind))
	if err != nil {
		return outcome{Err: err}
	}
	start := time.Now()
	err = cluster.RunOpts(rc.topo, cluster.Options{WrapTransport: rc.wrap}, func(c *comm.Comm) error {
		data := gen(c.Rank())
		var mem *memlimit.Gauge
		if rc.budgetMultiple > 0 {
			mem = memlimit.New(memlimit.FairShareBudget(rc.totalBytes, p, rc.budgetMultiple))
		}
		aopt := algo.DefaultOptions()
		aopt.Core = rc.opt
		aopt.Core.Stable = kind == kindSDSStable
		aopt.Core.Mem = mem
		aopt.Core.Timer = timers[c.Rank()]
		aopt.Selection = rc.selection
		out, err := drv.Sort(context.Background(), c, data, cd, cmp, aopt)
		if err != nil {
			return err
		}
		loads[c.Rank()] = len(out)
		return nil
	})
	o := outcome{
		Elapsed: time.Since(start),
		Loads:   loads,
		Phases:  metrics.MergeMax(timers),
		Err:     err,
	}
	if err != nil && errors.Is(err, memlimit.ErrOutOfMemory) {
		o.OOM = true
	}
	return o
}

// fmtOutcomeTime renders a run's time cell, showing OOM for failed runs.
func fmtOutcomeTime(o outcome) string {
	if o.OOM {
		return "OOM"
	}
	if o.Err != nil {
		return "ERR"
	}
	return metrics.FmtDur(o.Elapsed)
}

// sizeLabel renders a byte count the way the paper labels its axes.
func sizeLabel(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}

// median3 runs f three times and returns the median duration, the
// paper's "repeated three times" methodology (it reports best; median
// is the steadier laptop equivalent).
func median3(f func() time.Duration) time.Duration {
	ds := []time.Duration{f(), f(), f()}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[1]
}
