package experiments

import (
	"fmt"

	"sdssort/internal/cluster"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/workload"
)

// scalingPoint is one weak-scaling measurement: the three sorters at one
// process count.
type scalingPoint struct {
	p                int
	hyk, sds, stable outcome
	totalBytes       int64
}

// weakScaling runs the Fig 7/8 weak-scaling sweep: fixed records per
// rank (the paper fixes 400MB ≈ 1e8 records per process), growing p.
// zipfAlpha == 0 selects the Uniform workload; otherwise Zipf keys. A
// 4× fair-share memory budget reproduces the paper's OOM behaviour for
// HykSort on the skewed workload.
func weakScaling(cfg Config, zipfAlpha float64) ([]scalingPoint, error) {
	ps := []int{8, 16, 32}
	perRank := 8000
	if cfg.Quick {
		ps = []int{8, 16}
		perRank = 2000
	}
	var out []scalingPoint
	for _, p := range ps {
		topo := cluster.Topology{Nodes: p / 2, CoresPerNode: 2}
		if p < 2 {
			topo = cluster.Topology{Nodes: 1, CoresPerNode: p}
		}
		totalBytes := int64(p*perRank) * int64(f64codec.Size())
		gen := func(rank int) []float64 {
			seed := cfg.Seed + int64(rank)*7907 + int64(p)
			if zipfAlpha == 0 {
				return workload.Uniform(seed, perRank)
			}
			return workload.ZipfKeys(seed, perRank, zipfAlpha, workload.DefaultZipfUniverse)
		}
		opt := core.DefaultOptions()
		// No node merging in the budgeted runs: concentrating c ranks'
		// data on a leader is a deliberate memory/time trade the
		// budget model would misread as imbalance.
		opt.TauM = 0
		rc := runCfg{topo: topo, budgetMultiple: 5, totalBytes: totalBytes, opt: opt}
		pt := scalingPoint{
			p:          p,
			totalBytes: totalBytes,
			hyk:        runSort(kindHyk, rc, gen, f64codec, cmpF64),
			sds:        runSort(kindSDS, rc, gen, f64codec, cmpF64),
			stable:     runSort(kindSDSStable, rc, gen, f64codec, cmpF64),
		}
		for name, o := range map[string]outcome{"sds": pt.sds, "stable": pt.stable} {
			if o.Err != nil {
				return nil, fmt.Errorf("weak scaling %s p=%d: %w", name, p, o.Err)
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

func scalingTable(title string, points []scalingPoint) *metrics.Table {
	tbl := &metrics.Table{
		Title:   title,
		Headers: []string{"p", "HykSort", "SDS-Sort", "SDS-Sort/stable", "SDS throughput"},
	}
	for _, pt := range points {
		thr := "-"
		if pt.sds.Err == nil {
			thr = metrics.FormatThroughput(metrics.Throughput(pt.totalBytes, pt.sds.Elapsed))
		}
		tbl.AddRow(fmt.Sprint(pt.p),
			fmtOutcomeTime(pt.hyk), fmtOutcomeTime(pt.sds), fmtOutcomeTime(pt.stable), thr)
	}
	return tbl
}

// Fig7 reproduces Figure 7: weak scaling on the Uniform workload. The
// paper's findings at 128K cores: SDS-Sort 51% faster than HykSort,
// SDS-Sort/stable slower than both (extra pivot-selection and ordering
// work); all three complete.
func Fig7(cfg Config) (*Result, error) {
	points, err := weakScaling(cfg, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig7", Title: About("fig7")}
	res.Tables = append(res.Tables, scalingTable("Fig 7 — weak scaling, Uniform workload", points))
	res.Notes = append(res.Notes,
		"paper: 28.25s (SDS) vs 42.6s (Hyk) at 128K cores (111 vs 73.8 TB/min); stable ≈ 2x the fast version",
	)
	return res, nil
}

// Fig8 reproduces Figure 8: weak scaling on the Zipf workload. The
// paper's finding: HykSort fails with OOM at every scale while both
// SDS-Sort variants run at uniform-workload speeds (117TB/min fast,
// 55.8TB/min stable at 128K cores).
func Fig8(cfg Config) (*Result, error) {
	points, err := weakScaling(cfg, 2.1)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig8", Title: About("fig8")}
	res.Tables = append(res.Tables, scalingTable("Fig 8 — weak scaling, Zipf workload (α=2.1, δ≈63%)", points))
	oomSeen := false
	for _, pt := range points {
		if pt.hyk.OOM {
			oomSeen = true
		}
	}
	note := "paper: HykSort OOMs on the skewed workload at all scales; SDS variants match their uniform-workload times"
	if oomSeen {
		note += " — reproduced (OOM rows above)"
	}
	res.Notes = append(res.Notes, note)
	return res, nil
}

// Table3 reproduces Table 3: the RDFA load-balance metric of each
// sorter across the scaling runs, Uniform and Zipf. The paper reports
// ≈1.0 for all sorters on Uniform, ≈1.7-2.7 for SDS on Zipf (within the
// 4N/p bound), and ∞ for HykSort on Zipf (OOM).
func Table3(cfg Config) (*Result, error) {
	uni, err := weakScaling(cfg, 0)
	if err != nil {
		return nil, err
	}
	zipf, err := weakScaling(cfg, 2.1)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "tab3", Title: About("tab3")}
	for _, set := range []struct {
		name   string
		points []scalingPoint
	}{{"Uniform", uni}, {"Zipf(α=2.1)", zipf}} {
		tbl := &metrics.Table{
			Title:   "Table 3 — RDFA, " + set.name,
			Headers: []string{"p", "HykSort", "SDS-Sort", "SDS-Sort/stable"},
		}
		for _, pt := range set.points {
			rdfa := func(o outcome) string {
				if o.Err != nil {
					return "inf"
				}
				return metrics.FmtRDFA(metrics.RDFA(o.Loads))
			}
			tbl.AddRow(fmt.Sprint(pt.p), rdfa(pt.hyk), rdfa(pt.sds), rdfa(pt.stable))
		}
		res.Tables = append(res.Tables, tbl)
	}
	res.Notes = append(res.Notes,
		"paper: all ≈1.0 on Uniform; SDS 1.68-2.68 on Zipf (inside the 4N/p bound); HykSort ∞ (OOM) on Zipf")
	return res, nil
}
