package experiments

import (
	"fmt"
	"runtime"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/workload"
)

// realRun is one real-dataset comparison: HykSort, SDS-Sort and
// SDS-Sort/stable on the same generated dataset, with phase breakdowns.
type realRun struct {
	hyk, sds, stable outcome
	totalBytes       int64
}

func phaseRows(tbl *metrics.Table, name string, o outcome) {
	if o.Err != nil {
		cell := "ERR"
		if o.OOM {
			cell = "OOM"
		}
		tbl.AddRow(name, cell, cell, cell, cell, cell, cell, cell)
		return
	}
	tbl.AddRow(name,
		metrics.FmtDur(o.Phases[metrics.PhaseLocalSort]),
		metrics.FmtDur(o.Phases[metrics.PhasePivotSelection]),
		metrics.FmtDur(o.Phases[metrics.PhaseExchange]),
		metrics.FmtDur(o.Phases[metrics.PhaseLocalOrdering]),
		metrics.FmtDur(o.Phases[metrics.PhaseOther]),
		metrics.FmtDur(o.Elapsed),
		metrics.FmtRDFA(metrics.RDFA(o.Loads)),
	)
}

// hostNote explains the one-CPU compression of imbalance-driven
// speedups: with ranks time-sharing few cores, wall time approaches the
// sum of all ranks' work, so a collapsed rank costs the same total CPU
// as a balanced run. The RDFA column carries the imbalance the paper's
// parallel wall times reflect; on a host with >= p cores the time gap
// widens toward the paper's factors.
func hostNote() string {
	return fmt.Sprintf("host has %d CPU(s); imbalance shows as RDFA here and as wall time only when ranks run truly in parallel", runtime.NumCPU())
}

// Fig9 reproduces Figure 9: sorting the Palomar Transient Factory
// detections (δ = 28.02% duplicated real-bogus scores) with the phase
// breakdown the paper plots. The paper's result on 192 cores: SDS-Sort
// 3.4× faster than HykSort, SDS-Sort/stable 2.2× faster; HykSort
// survives (the whole dataset fits one node) but with RDFA 32.7.
func Fig9(cfg Config) (*Result, error) {
	p, perRank := 16, 48000
	if cfg.Quick {
		p, perRank = 8, 2000
	}
	topo := cluster.Topology{Nodes: p / 2, CoresPerNode: 2}
	cd := codec.PTFCodec{}
	totalBytes := int64(p*perRank) * int64(cd.Size())
	gen := func(rank int) []codec.PTFRecord {
		return workload.PTF(cfg.Seed+int64(rank)*7867, perRank)
	}
	// No memory budget: the paper notes the PTF set fits in one node's
	// RAM, so HykSort limps through with extreme imbalance instead of
	// dying.
	rc := runCfg{topo: topo, opt: core.DefaultOptions()}
	run := realRun{
		totalBytes: totalBytes,
		hyk:        runSort(kindHyk, rc, gen, cd, codec.ComparePTF),
		sds:        runSort(kindSDS, rc, gen, cd, codec.ComparePTF),
		stable:     runSort(kindSDSStable, rc, gen, cd, codec.ComparePTF),
	}
	for name, o := range map[string]outcome{"hyk": run.hyk, "sds": run.sds, "stable": run.stable} {
		if o.Err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", name, o.Err)
		}
	}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("Fig 9 — PTF (δ≈28%%), %d ranks, %d records", p, p*perRank),
		Headers: []string{"sorter", "Local sort", "Pivot selection", "Exchange", "Local-ordering", "Other", "total", "RDFA"},
	}
	phaseRows(tbl, "HykSort", run.hyk)
	phaseRows(tbl, "SDS-Sort", run.sds)
	phaseRows(tbl, "SDS-Sort/stable", run.stable)
	res := &Result{ID: "fig9", Title: About("fig9"), Tables: []*metrics.Table{tbl}}
	res.Notes = append(res.Notes, hostNote())
	if run.hyk.Err == nil && run.sds.Err == nil {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"speedup vs HykSort: SDS-Sort %.2fx, SDS-Sort/stable %.2fx (paper: 3.4x and 2.2x)",
			float64(run.hyk.Elapsed)/float64(run.sds.Elapsed),
			float64(run.hyk.Elapsed)/float64(run.stable.Elapsed)))
	}
	return res, nil
}

// Fig10 reproduces Figure 10: sorting the cosmology particle snapshot
// (cluster-id keys, δ = 0.73%, 6-float payload) with phase breakdowns.
// The paper's result at 16K cores: HykSort dies of OOM; SDS-Sort and
// SDS-Sort/stable finish at 15.63 and 7.87 TB/min.
func Fig10(cfg Config) (*Result, error) {
	p, perRank := 16, 32000
	if cfg.Quick {
		p, perRank = 8, 2000
	}
	topo := cluster.Topology{Nodes: p / 2, CoresPerNode: 2}
	cd := codec.ParticleCodec{}
	totalBytes := int64(p*perRank) * int64(cd.Size())
	gen := func(rank int) []codec.Particle {
		return workload.Cosmology(cfg.Seed+int64(rank)*7919, perRank)
	}
	// Budgeted like the paper's nodes: the skew-collapsed HykSort run
	// exceeds its share and OOMs.
	rc := runCfg{topo: topo, budgetMultiple: 4, totalBytes: totalBytes, opt: core.DefaultOptions()}
	run := realRun{
		totalBytes: totalBytes,
		hyk:        runSort(kindHyk, rc, gen, cd, codec.CompareParticles),
		sds:        runSort(kindSDS, rc, gen, cd, codec.CompareParticles),
		stable:     runSort(kindSDSStable, rc, gen, cd, codec.CompareParticles),
	}
	for name, o := range map[string]outcome{"sds": run.sds, "stable": run.stable} {
		if o.Err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", name, o.Err)
		}
	}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("Fig 10 — cosmology (δ≈0.73%%), %d ranks, %d particles", p, p*perRank),
		Headers: []string{"sorter", "Local sort", "Pivot selection", "Exchange", "Local-ordering", "Other", "total", "RDFA"},
	}
	phaseRows(tbl, "HykSort", run.hyk)
	phaseRows(tbl, "SDS-Sort", run.sds)
	phaseRows(tbl, "SDS-Sort/stable", run.stable)
	res := &Result{ID: "fig10", Title: About("fig10"), Tables: []*metrics.Table{tbl}}
	res.Notes = append(res.Notes, hostNote())
	res.Notes = append(res.Notes, fmt.Sprintf(
		"SDS throughput %s, stable %s (paper: 15.63 and 7.87 TB/min at 16K cores)",
		metrics.FormatThroughput(metrics.Throughput(totalBytes, run.sds.Elapsed)),
		metrics.FormatThroughput(metrics.Throughput(totalBytes, run.stable.Elapsed))))
	if run.hyk.OOM {
		res.Notes = append(res.Notes, "HykSort OOM reproduced, as in the paper")
	} else {
		res.Notes = append(res.Notes,
			"HykSort survives at this scale: its collapsed load is ~δ·p × the fair share, which outgrows any fixed budget only at cluster-scale p (δ=0.73% needs p in the hundreds)")
	}
	return res, nil
}

// Table4 reproduces Table 4: RDFA on the two real datasets. Paper: PTF
// — HykSort 32.68, SDS 1.99, stable 1.69; cosmology — HykSort ∞ (OOM),
// SDS/stable 1.40.
func Table4(cfg Config) (*Result, error) {
	p, perRank := 16, 6000
	if cfg.Quick {
		p, perRank = 8, 1500
	}
	topo := cluster.Topology{Nodes: p / 2, CoresPerNode: 2}
	res := &Result{ID: "tab4", Title: About("tab4")}

	// PTF rows: unlimited memory, like Fig 9.
	ptfCodec := codec.PTFCodec{}
	ptfGen := func(rank int) []codec.PTFRecord {
		return workload.PTF(cfg.Seed+int64(rank)*131, perRank)
	}
	rcPTF := runCfg{topo: topo, opt: core.DefaultOptions()}
	ptfHyk := runSort(kindHyk, rcPTF, ptfGen, ptfCodec, codec.ComparePTF)
	ptfSDS := runSort(kindSDS, rcPTF, ptfGen, ptfCodec, codec.ComparePTF)
	ptfStable := runSort(kindSDSStable, rcPTF, ptfGen, ptfCodec, codec.ComparePTF)

	// Cosmology rows: budgeted, like Fig 10.
	cosCodec := codec.ParticleCodec{}
	cosGen := func(rank int) []codec.Particle {
		return workload.Cosmology(cfg.Seed+int64(rank)*137, perRank)
	}
	cosBytes := int64(p*perRank) * int64(cosCodec.Size())
	rcCos := runCfg{topo: topo, budgetMultiple: 4, totalBytes: cosBytes, opt: core.DefaultOptions()}
	cosHyk := runSort(kindHyk, rcCos, cosGen, cosCodec, codec.CompareParticles)
	cosSDS := runSort(kindSDS, rcCos, cosGen, cosCodec, codec.CompareParticles)
	cosStable := runSort(kindSDSStable, rcCos, cosGen, cosCodec, codec.CompareParticles)

	rdfa := func(o outcome) string {
		if o.Err != nil {
			return "inf"
		}
		return metrics.FmtRDFA(metrics.RDFA(o.Loads))
	}
	tbl := &metrics.Table{
		Title:   "Table 4 — RDFA on the real-dataset stand-ins",
		Headers: []string{"dataset", "HykSort", "SDS-Sort", "SDS-Sort/stable"},
	}
	tbl.AddRow("PTF", rdfa(ptfHyk), rdfa(ptfSDS), rdfa(ptfStable))
	tbl.AddRow("Cosmology", rdfa(cosHyk), rdfa(cosSDS), rdfa(cosStable))
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes,
		"paper: PTF 32.68 / 1.99 / 1.69; cosmology inf / 1.40 / 1.40 — HykSort's imbalance explodes on duplicates, SDS stays near the bound")
	for name, o := range map[string]outcome{"ptf-sds": ptfSDS, "ptf-stable": ptfStable, "cos-sds": cosSDS, "cos-stable": cosStable} {
		if o.Err != nil {
			return nil, fmt.Errorf("tab4 %s: %w", name, o.Err)
		}
	}
	return res, nil
}
