package experiments

import (
	"fmt"
	"time"

	"sdssort/internal/metrics"
	"sdssort/internal/psort"
	"sdssort/internal/workload"
)

// Table1 reproduces Table 1: time of the sequential sort versus the
// sequential stable sort (the paper's std::sort / std::stable_sort, our
// introsort / merge sort) on 1GB of uniform keys and on Zipf keys with
// α ∈ {0.7, 1.4, 2.1}. The paper's observations to reproduce: stable is
// slower than unstable, and more-duplicated data sorts faster.
func Table1(cfg Config) (*Result, error) {
	n := 1 << 22 // 32MB of float64 — the paper's 1GB scaled down
	if cfg.Quick {
		n = 1 << 18
	}
	type column struct {
		name  string
		alpha float64 // 0 = uniform
	}
	cols := []column{
		{"Uniform", 0},
		{"Zipf 0.7 (δ≈2%)", 0.7},
		{"Zipf 1.4 (δ≈32%)", 1.4},
		{"Zipf 2.1 (δ≈63%)", 2.1},
	}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("Table 1 — sequential sort vs stable sort, %d keys", n),
		Headers: []string{"workload", "Sort (unstable)", "StableSort", "stable/unstable"},
	}
	res := &Result{ID: "tab1", Title: About("tab1"), Tables: []*metrics.Table{tbl}}
	for _, col := range cols {
		var base []float64
		if col.alpha == 0 {
			base = workload.Uniform(cfg.Seed, n)
		} else {
			base = workload.ZipfKeys(cfg.Seed, n, col.alpha, workload.DefaultZipfUniverse)
		}
		cp := make([]float64, n)
		fast := median3(func() time.Duration {
			copy(cp, base)
			start := time.Now()
			psort.Sort(cp, cmpF64)
			return time.Since(start)
		})
		stable := median3(func() time.Duration {
			copy(cp, base)
			start := time.Now()
			psort.StableSort(cp, cmpF64)
			return time.Since(start)
		})
		tbl.AddRow(col.name, metrics.FmtDur(fast), metrics.FmtDur(stable),
			fmt.Sprintf("%.2fx", float64(stable)/float64(fast)))
	}
	res.Notes = append(res.Notes,
		"paper (1GB, Edison core): uniform 26.1s/35.2s, Zipf2.1 6.6s/12.5s — stable slower, heavier duplication faster; both relations should hold above")
	return res, nil
}

// Table2 reproduces Table 2: the mapping from the Zipf exponent α to the
// maximum replication ratio δ. The paper lists α 0.4→0.9 giving δ 0.2%
// →6.4%; with the calibrated universe our analytic δ matches closely,
// and we also report the empirical δ of a finite sample.
func Table2(cfg Config) (*Result, error) {
	sample := 200000
	if cfg.Quick {
		sample = 20000
	}
	paper := map[float64]float64{0.4: 0.2, 0.5: 0.5, 0.6: 1.0, 0.7: 2.0, 0.8: 3.7, 0.9: 6.4}
	tbl := &metrics.Table{
		Title:   fmt.Sprintf("Table 2 — Zipf α vs δ (universe %d)", workload.DefaultZipfUniverse),
		Headers: []string{"α", "δ analytic (%)", "δ sampled (%)", "δ paper (%)"},
	}
	res := &Result{ID: "tab2", Title: About("tab2"), Tables: []*metrics.Table{tbl}}
	for _, alpha := range []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		z := workload.NewZipf(alpha, workload.DefaultZipfUniverse)
		keys := workload.ZipfKeys(cfg.Seed, sample, alpha, workload.DefaultZipfUniverse)
		tbl.AddRow(
			fmt.Sprintf("%.1f", alpha),
			fmt.Sprintf("%.2f", z.MaxProbability()*100),
			fmt.Sprintf("%.2f", workload.DupRatio(keys)*100),
			fmt.Sprintf("%.1f", paper[alpha]),
		)
	}
	return res, nil
}
