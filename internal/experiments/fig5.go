package experiments

import (
	"fmt"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/psort"
	"sdssort/internal/simnet"
	"sdssort/internal/workload"
)

var f64codec = codec.Float64{}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Fig5a reproduces Figure 5a: all-to-all exchange cost with and without
// node-level merging, as the per-node data size grows. The paper ran
// this on Edison's Aries network and found merging pays below ~160MB
// per node; we run the same sweep over the simnet cost model (a
// commodity-network profile makes the crossover land inside the laptop
// sweep range) and report the simulated makespan of the sort.
func Fig5a(cfg Config) (*Result, error) {
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 4}
	sizes := []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	if cfg.Quick {
		sizes = []int64{4 << 10, 64 << 10, 1 << 20}
	}
	// A commodity-network profile: high per-message overhead, modest
	// bandwidth. Merging trades per-message cost (paid per rank pair)
	// for injection concentration (all of a node's bytes through one
	// leader), so the crossover lands where overhead ≈ serialisation.
	profile := simnet.Profile{
		Name:         "commodity",
		Remote:       simnet.Params{Overhead: 100 * time.Microsecond, Latency: 200 * time.Microsecond, Bandwidth: 200 << 20},
		Local:        simnet.Params{Overhead: 1 * time.Microsecond, Latency: 2 * time.Microsecond, Bandwidth: 16 << 30},
		ComputeScale: 1,
	}

	tbl := &metrics.Table{
		Title:   "Fig 5a — exchange with vs without node-level merging (simulated, commodity profile)",
		Headers: []string{"per-node size", "Merging", "No-Merging", "winner"},
	}
	res := &Result{ID: "fig5a", Title: About("fig5a"), Tables: []*metrics.Table{tbl}}
	for _, perNode := range sizes {
		perRank := int(perNode) / topo.CoresPerNode / f64codec.Size()
		if perRank < 1 {
			perRank = 1
		}
		gen := func(rank int) []float64 {
			return workload.Uniform(cfg.Seed+int64(rank), perRank)
		}
		run := func(tauM int64) (time.Duration, error) {
			fab := simnet.NewFabric(profile, simnet.Virtual, topo.Size())
			opt := core.DefaultOptions()
			opt.TauM = tauM
			opt.TauO = 0 // synchronous exchange isolates the τm effect
			rc := runCfg{topo: topo, opt: opt, wrap: fab.Wrap}
			o := runSort(kindSDS, rc, gen, f64codec, cmpF64)
			if o.Err != nil {
				return 0, o.Err
			}
			return fab.Makespan(), nil
		}
		merged, err := run(1 << 60)
		if err != nil {
			return nil, fmt.Errorf("fig5a merged %s: %w", sizeLabel(perNode), err)
		}
		plain, err := run(0)
		if err != nil {
			return nil, fmt.Errorf("fig5a no-merge %s: %w", sizeLabel(perNode), err)
		}
		winner := "Merging"
		if plain < merged {
			winner = "No-Merging"
		}
		tbl.AddRow(sizeLabel(perNode), metrics.FmtDur(merged), metrics.FmtDur(plain), winner)
	}
	res.Notes = append(res.Notes,
		"paper: merging wins below ~160MB/node on Aries; shape reproduced — merging wins at small sizes, loses once bandwidth dominates")
	return res, nil
}

// Fig5b reproduces Figure 5b: overlapping the exchange with local
// ordering versus not, as the process count grows. Sleep-mode simnet
// makes network time real so overlap can genuinely hide it; the
// overlapped path's extra work (pairwise incremental merging, one
// in-flight request pair per peer) grows with p, producing the paper's
// crossover (τo ≈ 4096 on Edison).
func Fig5b(cfg Config) (*Result, error) {
	ps := []int{4, 8, 16, 32}
	if cfg.Quick {
		ps = []int{4, 8}
	}
	const perRank = 3000
	profile := simnet.Profile{
		Name:         "sleepy-aries",
		Remote:       simnet.Params{Overhead: 40 * time.Microsecond, Latency: 300 * time.Microsecond, Bandwidth: 1 << 28},
		Local:        simnet.Params{Overhead: 10 * time.Microsecond, Latency: 50 * time.Microsecond, Bandwidth: 1 << 30},
		ComputeScale: 1,
	}

	tbl := &metrics.Table{
		Title:   "Fig 5b — overlapping vs not overlapping exchange and local ordering",
		Headers: []string{"p", "Overlapping", "No-overlapping", "winner"},
	}
	res := &Result{ID: "fig5b", Title: About("fig5b"), Tables: []*metrics.Table{tbl}}
	for _, p := range ps {
		topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
		gen := func(rank int) []float64 {
			return workload.Uniform(cfg.Seed+int64(rank)*31, perRank)
		}
		run := func(tauO int) outcome {
			fab := simnet.NewFabric(profile, simnet.Sleep, p)
			opt := core.DefaultOptions()
			opt.TauM = 0
			opt.TauO = tauO
			opt.TauS = 1 << 30 // merge branch in both, isolating τo
			return runSort(kindSDS, runCfg{topo: topo, opt: opt, wrap: fab.Wrap}, gen, f64codec, cmpF64)
		}
		over := run(1 << 30)
		if over.Err != nil {
			return nil, fmt.Errorf("fig5b overlap p=%d: %w", p, over.Err)
		}
		sync := run(0)
		if sync.Err != nil {
			return nil, fmt.Errorf("fig5b sync p=%d: %w", p, sync.Err)
		}
		winner := "Overlapping"
		if sync.Elapsed < over.Elapsed {
			winner = "No-overlapping"
		}
		tbl.AddRow(fmt.Sprint(p), metrics.FmtDur(over.Elapsed), metrics.FmtDur(sync.Elapsed), winner)
	}
	res.Notes = append(res.Notes,
		"paper: overlap wins below ~4096 processes on Edison (τo); our sweep sits inside that regime — overlap wins, with its margin shrinking as p grows and the bookkeeping overhead accumulates")
	return res, nil
}

// Fig5c reproduces Figure 5c: performing the final local ordering by
// k-way merging the p received chunks (O(m·log p)) versus re-sorting the
// concatenation (O(m·log m), p-independent). The paper's crossover on
// Edison is at ~4000 processes; the same shapes — merge cost rising with
// p, sort cost flat — appear at any scale.
func Fig5c(cfg Config) (*Result, error) {
	ps := []int{4, 16, 64, 256, 1024}
	total := 1 << 20
	if cfg.Quick {
		ps = []int{4, 64, 256}
		total = 1 << 17
	}

	tbl := &metrics.Table{
		Title:   "Fig 5c — final local ordering: merging vs sorting p received chunks",
		Headers: []string{"p (chunks)", "Using Merge", "Using Sort", "winner"},
	}
	res := &Result{ID: "fig5c", Title: About("fig5c"), Tables: []*metrics.Table{tbl}}
	for _, p := range ps {
		per := total / p
		chunks := make([][]float64, p)
		for i := range chunks {
			c := workload.Uniform(cfg.Seed+int64(i), per)
			psort.Sort(c, cmpF64)
			chunks[i] = c
		}
		concat := make([]float64, 0, total)
		for _, c := range chunks {
			concat = append(concat, c...)
		}

		mergeTime := median3(func() time.Duration {
			start := time.Now()
			psort.KWayMerge(chunks, cmpF64)
			return time.Since(start)
		})
		sortTime := median3(func() time.Duration {
			cp := append([]float64(nil), concat...)
			start := time.Now()
			psort.ParallelSort(cp, 1, false, cmpF64)
			return time.Since(start)
		})
		winner := "Merge"
		if sortTime < mergeTime {
			winner = "Sort"
		}
		tbl.AddRow(fmt.Sprint(p), metrics.FmtDur(mergeTime), metrics.FmtDur(sortTime), winner)
	}
	res.Notes = append(res.Notes,
		"paper: merge time rises sharply with p while sort stays flat, crossing at ~4000 processes (τs); the same monotonicity appears here")
	return res, nil
}
