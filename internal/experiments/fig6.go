package experiments

import (
	"fmt"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/workload"
)

// Fig6a reproduces Figure 6a: time of the single-node parallel merge —
// SDS-Sort's skew-aware partition merge versus the HykSort-style
// sample-based merge — on Uniform and Zipf workloads of growing size.
// The paper's observation: sample-based merging slows down on skewed
// data (one core inherits all duplicates) while the skew-aware merge is
// flat across workloads.
func Fig6a(cfg Config) (*Result, error) {
	const chunks, workers = 8, 8
	sizes := []int{1 << 16, 1 << 18, 1 << 20}
	if cfg.Quick {
		sizes = []int{1 << 14, 1 << 16}
	}
	tbl := &metrics.Table{
		Title:   "Fig 6a — parallel merge critical path: skew-aware (SDS) vs sample-based (Hyk)",
		Headers: []string{"records", "SDS+Uniform", "SDS+Zipf", "Hyk+Uniform", "Hyk+Zipf"},
	}
	res := &Result{ID: "fig6a", Title: About("fig6a"), Tables: []*metrics.Table{tbl}}
	for _, total := range sizes {
		per := total / chunks
		build := func(alpha float64) [][]float64 {
			out := make([][]float64, chunks)
			for i := range out {
				var c []float64
				if alpha == 0 {
					c = workload.Uniform(cfg.Seed+int64(i), per)
				} else {
					c = workload.ZipfKeys(cfg.Seed+int64(i), per, alpha, 200)
				}
				psort.Sort(c, cmpF64)
				out[i] = c
			}
			return out
		}
		uni := build(0)
		zipf := build(1.6)
		// The figure compares parallel merge time. A worker inheriting
		// all duplicates is the slow path, so the relevant number is
		// the critical path — the longest per-worker busy time — which
		// equals wall time on a machine with >= workers cores and
		// remains measurable on hosts with fewer.
		timeMerge := func(cs [][]float64, skewAware bool) time.Duration {
			return median3(func() time.Duration {
				var busy []time.Duration
				if skewAware {
					_, busy = psort.SkewAwareParallelMergeTimed(cs, workers, false, cmpF64)
				} else {
					_, busy = psort.SampleParallelMergeTimed(cs, workers, cmpF64)
				}
				var crit time.Duration
				for _, d := range busy {
					if d > crit {
						crit = d
					}
				}
				return crit
			})
		}
		tbl.AddRow(fmt.Sprint(total),
			metrics.FmtDur(timeMerge(uni, true)),
			metrics.FmtDur(timeMerge(zipf, true)),
			metrics.FmtDur(timeMerge(uni, false)),
			metrics.FmtDur(timeMerge(zipf, false)),
		)
	}
	res.Notes = append(res.Notes,
		"paper: HykSort's merge degrades on Zipf while SDS-Sort's skew-aware merge stays level across workloads",
		"reported: critical path (max per-worker busy time) — wall time on a sufficiently parallel host")
	return res, nil
}

// Fig6b reproduces Figure 6b: the cost of computing the partition
// boundaries by sequential full scan, by plain binary ranking, and by
// SDS-Sort's local-pivot-accelerated search, across process counts.
// The paper's result: local pivots push the partition cost to "almost
// zero" relative to scanning.
func Fig6b(cfg Config) (*Result, error) {
	ps := []int{10, 100, 500}
	n := 1 << 21
	if cfg.Quick {
		ps = []int{10, 100}
		n = 1 << 17
	}
	tbl := &metrics.Table{
		Title:   "Fig 6b — partition time by method",
		Headers: []string{"p", "Sequential Scan", "Binary rank (Hyk)", "Local pivots (SDS)"},
	}
	res := &Result{ID: "fig6b", Title: About("fig6b"), Tables: []*metrics.Table{tbl}}
	data := workload.Uniform(cfg.Seed, n)
	psort.Sort(data, cmpF64)
	for _, p := range ps {
		pg := pivots.RegularSample(data, p)
		if len(pg) != p-1 {
			return nil, fmt.Errorf("fig6b: sampled %d pivots for p=%d", len(pg), p)
		}
		timePart := func(loc partition.Locator[float64]) time.Duration {
			return median3(func() time.Duration {
				start := time.Now()
				partition.Fast(data, pg, loc, cmpF64)
				return time.Since(start)
			})
		}
		scan := timePart(partition.Scan[float64]{Cmp: cmpF64})
		binary := timePart(partition.Binary[float64]{Cmp: cmpF64})
		stripe := timePart(partition.NewStripe(data, p, cmpF64))
		tbl.AddRow(fmt.Sprint(p), metrics.FmtDur(scan), metrics.FmtDur(binary), metrics.FmtDur(stripe))
	}
	res.Notes = append(res.Notes,
		"paper: local-pivot partition time is near zero vs the sequential scan; binary ranking sits in between at small p")
	return res, nil
}

// Fig6c reproduces Figure 6c: total sort time versus the replication
// ratio δ (swept via the Table 2 α values). The paper's result:
// SDS-Sort and SDS-Sort/stable scale smoothly across δ, while HykSort
// only survives δ below ~1% and then dies of load-collapse OOM.
func Fig6c(cfg Config) (*Result, error) {
	// The paper sweeps α 0.4-0.9 (δ 0.2-6.4%) on hundreds of nodes,
	// where HykSort's collapsed load δ·p×(N/p) dwarfs node memory above
	// δ≈1%. At laptop-scale p the same mechanism needs higher δ, so we
	// extend the sweep with the paper's Table-1 α values (δ 32%, 63%)
	// to show the transition.
	alphas := []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.4, 2.1}
	p, perRank := 16, 4000
	if cfg.Quick {
		alphas = []float64{0.4, 0.9, 2.1}
		p, perRank = 8, 1500
	}
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	totalBytes := int64(p*perRank) * int64(f64codec.Size())
	tbl := &metrics.Table{
		Title:   "Fig 6c — sort time vs replication ratio δ (memory budget 4× fair share)",
		Headers: []string{"α", "δ(%)", "HykSort", "SDS-Sort", "SDS-Sort/stable"},
	}
	res := &Result{ID: "fig6c", Title: About("fig6c"), Tables: []*metrics.Table{tbl}}
	for _, alpha := range alphas {
		delta := workload.NewZipf(alpha, workload.DefaultZipfUniverse).MaxProbability() * 100
		gen := func(rank int) []float64 {
			return workload.ZipfKeys(cfg.Seed+int64(rank)*101, perRank, alpha, workload.DefaultZipfUniverse)
		}
		opt := core.DefaultOptions()
		opt.TauM = 0 // node merging trades memory for messages; keep budgets comparable
		rc := runCfg{topo: topo, budgetMultiple: 4, totalBytes: totalBytes, opt: opt}
		hyk := runSort(kindHyk, rc, gen, f64codec, cmpF64)
		sds := runSort(kindSDS, rc, gen, f64codec, cmpF64)
		stable := runSort(kindSDSStable, rc, gen, f64codec, cmpF64)
		for _, o := range []outcome{sds, stable} {
			if o.Err != nil && !o.OOM {
				return nil, fmt.Errorf("fig6c α=%v: %w", alpha, o.Err)
			}
		}
		tbl.AddRow(fmt.Sprintf("%.1f", alpha), fmt.Sprintf("%.1f", delta),
			fmtOutcomeTime(hyk), fmtOutcomeTime(sds), fmtOutcomeTime(stable))
	}
	res.Notes = append(res.Notes,
		"paper: HykSort only completes for δ < 1% and OOMs beyond (their scale); here the collapse appears once δ·p outgrows the budget — SDS-Sort variants complete across the whole sweep")
	return res, nil
}
