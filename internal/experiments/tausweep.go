package experiments

import (
	"fmt"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/simnet"
	"sdssort/internal/workload"
)

// TauSweep is the paper's stated future work (§6): a systematic study of
// the τm, τo and τs configuration parameters. Each sweep holds the
// workload fixed and varies one threshold through its decision range,
// reporting total sort time — the data a tuner would fit the defaults
// from.
func TauSweep(cfg Config) (*Result, error) {
	res := &Result{ID: "tausweep", Title: About("tausweep")}

	// τm sweep: fixed small-message workload over the modeled network;
	// the threshold decides merge vs no-merge, so the sweep shows a
	// step where the decision flips.
	topoM := cluster.Topology{Nodes: 4, CoresPerNode: 4}
	perRankM := 2048 / f64codec.Size() * 4 // ~8KB per node: merging regime
	if cfg.Quick {
		perRankM = 1024 / f64codec.Size() * 4
	}
	profile := simnet.Profile{
		Name:         "commodity",
		Remote:       simnet.Params{Overhead: 100 * time.Microsecond, Latency: 200 * time.Microsecond, Bandwidth: 200 << 20},
		Local:        simnet.Params{Overhead: time.Microsecond, Latency: 2 * time.Microsecond, Bandwidth: 16 << 30},
		ComputeScale: 1,
	}
	tmTbl := &metrics.Table{
		Title:   fmt.Sprintf("τm sweep — %d ranks, small messages (simulated network)", topoM.Size()),
		Headers: []string{"τm (bytes)", "merges?", "simulated time"},
	}
	genM := func(rank int) []float64 { return workload.Uniform(cfg.Seed+int64(rank), perRankM) }
	avgMsg := int64(perRankM) * int64(f64codec.Size()) / int64(topoM.Size())
	for _, tauM := range []int64{0, avgMsg / 2, avgMsg, 2 * avgMsg, 1 << 30} {
		fab := simnet.NewFabric(profile, simnet.Virtual, topoM.Size())
		opt := core.DefaultOptions()
		opt.TauM = tauM
		opt.TauO = 0
		o := runSort(kindSDS, runCfg{topo: topoM, opt: opt, wrap: fab.Wrap}, genM, f64codec, cmpF64)
		if o.Err != nil {
			return nil, fmt.Errorf("tausweep τm=%d: %w", tauM, o.Err)
		}
		merges := "no"
		if avgMsg <= tauM {
			merges = "yes"
		}
		tmTbl.AddRow(fmt.Sprint(tauM), merges, metrics.FmtDur(fab.Makespan()))
	}
	res.Tables = append(res.Tables, tmTbl)

	// τs sweep: fixed p, vary the merge-vs-sort decision point around
	// it; the two plateaus show each strategy's cost at this p.
	pS := 16
	perRankS := 8000
	if cfg.Quick {
		pS, perRankS = 8, 2000
	}
	topoS := cluster.Topology{Nodes: pS, CoresPerNode: 1}
	tsTbl := &metrics.Table{
		Title:   fmt.Sprintf("τs sweep — p=%d (below τs merges, at/above sorts)", pS),
		Headers: []string{"τs", "local ordering", "time"},
	}
	genS := func(rank int) []float64 {
		return workload.Uniform(cfg.Seed+int64(rank)*17, perRankS)
	}
	for _, tauS := range []int{0, pS, pS + 1, 1 << 20} {
		opt := core.DefaultOptions()
		opt.TauM = 0
		opt.TauO = 0
		opt.TauS = tauS
		o := runSort(kindSDS, runCfg{topo: topoS, opt: opt}, genS, f64codec, cmpF64)
		if o.Err != nil {
			return nil, fmt.Errorf("tausweep τs=%d: %w", tauS, o.Err)
		}
		strategy := "sort"
		if pS < tauS {
			strategy = "merge"
		}
		tsTbl.AddRow(fmt.Sprint(tauS), strategy, metrics.FmtDur(o.Elapsed))
	}
	res.Tables = append(res.Tables, tsTbl)

	// τo sweep: overlap on/off at fixed p under the sleep-mode network.
	pO := 8
	perRankO := 3000
	if cfg.Quick {
		perRankO = 1000
	}
	topoO := cluster.Topology{Nodes: pO, CoresPerNode: 1}
	sleepy := simnet.Profile{
		Name:         "sleepy",
		Remote:       simnet.Params{Overhead: 40 * time.Microsecond, Latency: 300 * time.Microsecond, Bandwidth: 1 << 28},
		Local:        simnet.Params{Overhead: 10 * time.Microsecond, Latency: 50 * time.Microsecond, Bandwidth: 1 << 30},
		ComputeScale: 1,
	}
	toTbl := &metrics.Table{
		Title:   fmt.Sprintf("τo sweep — p=%d (below τo synchronous, above overlapped)", pO),
		Headers: []string{"τo", "exchange", "time"},
	}
	genO := func(rank int) []float64 {
		return workload.Uniform(cfg.Seed+int64(rank)*23, perRankO)
	}
	for _, tauO := range []int{0, pO, pO + 1, 1 << 20} {
		fab := simnet.NewFabric(sleepy, simnet.Sleep, pO)
		opt := core.DefaultOptions()
		opt.TauM = 0
		opt.TauO = tauO
		opt.TauS = 1 << 30
		o := runSort(kindSDS, runCfg{topo: topoO, opt: opt, wrap: fab.Wrap}, genO, f64codec, cmpF64)
		if o.Err != nil {
			return nil, fmt.Errorf("tausweep τo=%d: %w", tauO, o.Err)
		}
		mode := "synchronous"
		if pO <= tauO {
			mode = "overlapped"
		}
		toTbl.AddRow(fmt.Sprint(tauO), mode, metrics.FmtDur(o.Elapsed))
	}
	res.Tables = append(res.Tables, toTbl)
	res.Notes = append(res.Notes,
		"each τ decision is a step function of the threshold; the sweep shows the two plateaus so a deployment can place its defaults (the paper's §6 parameter study)")
	return res, nil
}
