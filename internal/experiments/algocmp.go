package experiments

import (
	"fmt"

	"sdssort/internal/algo"
	"sdssort/internal/cluster"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/workload"
)

// AlgoCompare races the registered drivers across the named workload
// presets — the head-to-head the pluggable algorithm layer exists for.
// Every row reports which driver actually ran, so the auto rows make
// the runtime selection visible from the CLI (sdsbench -exp algocmp);
// -algo restricts the race to one driver.
func AlgoCompare(cfg Config) (*Result, error) {
	p, perRank := 8, 8000
	presetNames := []string{"uniform", "zipf", "dup"}
	if cfg.Quick {
		p, perRank = 4, 2000
		presetNames = []string{"uniform", "zipf"}
	}
	names := algo.Names()
	if cfg.Algo != "" {
		if _, ok := algo.Lookup(cfg.Algo); !ok {
			return nil, &algo.UnknownError{Name: cfg.Algo}
		}
		names = []string{cfg.Algo}
	}
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	res := &Result{ID: "algocmp", Title: About("algocmp")}
	for _, pn := range presetNames {
		pre, ok := workload.LookupPreset(pn)
		if !ok {
			return nil, fmt.Errorf("algocmp: unknown preset %q", pn)
		}
		gen := func(rank int) []float64 {
			return pre.Gen(cfg.Seed+int64(rank)*613, perRank)
		}
		tbl := &metrics.Table{
			Title:   "Algorithm comparison — " + pn,
			Headers: []string{"driver", "time", "RDFA", "ran"},
		}
		for _, name := range names {
			sel := &metrics.AlgoStats{}
			rc := runCfg{topo: topo, opt: core.DefaultOptions(), selection: sel}
			o := runSort(sorterKind(name), rc, gen, f64codec, cmpF64)
			if o.Err != nil && !o.OOM {
				return nil, fmt.Errorf("algocmp %s/%s: %w", pn, name, o.Err)
			}
			rdfa := "inf"
			if o.Err == nil {
				rdfa = metrics.FmtRDFA(metrics.RDFA(o.Loads))
			}
			tbl.AddRow(name, fmtOutcomeTime(o), rdfa, resolvedName(sel))
		}
		res.Tables = append(res.Tables, tbl)
	}
	res.Notes = append(res.Notes,
		"'ran' is the driver that executed; for auto it is the resolved choice of the profile-driven decision rule (docs/INTERNALS.md): duplicate-heavy → sds, spill pressure → sds, large worlds with narrow records → ams, otherwise hss")
	return res, nil
}

// resolvedName reports the driver a selection-counting run resolved to.
func resolvedName(sel *metrics.AlgoStats) string {
	for _, n := range algo.Names() {
		if sel.Count(n) > 0 {
			return n
		}
	}
	return "?"
}
