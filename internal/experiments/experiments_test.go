package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 42} }

// TestAllExperimentsRun executes every registered experiment in quick
// mode: each must complete and produce at least one non-empty table.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			run, ok := Lookup(id)
			if !ok {
				t.Fatalf("experiment %s not found", id)
			}
			res, err := run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id {
				t.Fatalf("result id %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("table %q has no rows", tbl.Title)
				}
			}
			if s := res.String(); !strings.Contains(s, id) {
				t.Fatal("rendering lacks id")
			}
		})
	}
}

func TestRegistryHelpers(t *testing.T) {
	if len(IDs()) != 19 {
		t.Fatalf("expected 19 experiments, got %d", len(IDs()))
	}
	if About("fig7") == "" {
		t.Fatal("missing About")
	}
	if About("nope") != "" {
		t.Fatal("unknown id has About")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

// TestFig8HykSortOOM asserts the headline skew claim is reproduced: on
// the Zipf workload HykSort dies of OOM while SDS-Sort completes.
func TestFig8HykSortOOM(t *testing.T) {
	points, err := weakScaling(quickCfg(), 2.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.sds.Err != nil || pt.stable.Err != nil {
			t.Errorf("p=%d: SDS variants must survive: %v / %v", pt.p, pt.sds.Err, pt.stable.Err)
		}
	}
	// The collapsed load is ~δ·p × the fair share, so OOM is
	// guaranteed from p=16 up at this budget; smaller points may
	// squeak through, as the paper's smallest scales would have with
	// enough node memory.
	last := points[len(points)-1]
	if !last.hyk.OOM {
		t.Errorf("p=%d: HykSort did not OOM on the δ=63%% workload (err=%v)", last.p, last.hyk.Err)
	}
}

// TestFig5cMergeGrowsWithP asserts the τs mechanism: merging cost must
// grow with the chunk count while sorting cost stays roughly flat.
func TestFig5cMergeGrowsWithP(t *testing.T) {
	res, err := Fig5c(Config{Quick: false, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) < 3 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	// The winner at the smallest p should be Merge and at the largest
	// it should have flipped to Sort (paper Fig 5c).
	if rows[0][3] != "Merge" {
		t.Logf("warning: merge did not win at smallest p: %v", rows[0])
	}
	if rows[len(rows)-1][3] != "Sort" {
		t.Errorf("sort did not win at largest p: %v", rows[len(rows)-1])
	}
}
