// Package checkpoint snapshots each rank's working set at the sort's
// phase boundaries so a supervised job can resume after losing a rank
// instead of restarting from scratch. A checkpoint is two files per
// (epoch, phase, rank): a data file of fixed-width records in the
// codec's wire format (written through internal/recordio) and a small
// binary manifest recording what the data file must contain. The
// manifest is written last, with an atomic rename, so its presence and
// validity is the commit point; a kill between the two files leaves a
// checkpoint that simply fails validation and is ignored.
//
// Consistency is global, never per rank: a cut (epoch, phase) is usable
// only when every rank of the job holds a valid manifest for it (see
// Store.LatestConsistent). Ranks therefore never coordinate while
// checkpointing — the phase boundaries of the SDS-Sort driver are
// already collective, which makes them consistent cut points for free.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Phase identifies a checkpointed phase boundary of the sort driver.
// Later phases strictly supersede earlier ones within an epoch.
type Phase uint8

const (
	// PhaseNone is the zero value: no checkpoint, cold start.
	PhaseNone Phase = iota
	// PhaseLocalSort is the boundary after the initial local ordering
	// (Fig. 1 line 2): the data file holds the rank's sorted input.
	PhaseLocalSort
	// PhasePartition is the boundary after pivot selection and the
	// skew-aware partition (lines 8-10): the data file holds the
	// (possibly node-merged) working set and the manifest carries the
	// send boundaries.
	PhasePartition
	// PhaseFinal is the boundary after the exchange and final local
	// ordering (lines 15-27): the data file is the rank's block of the
	// sorted output.
	PhaseFinal
)

// String names the phase as it appears in file names and traces.
func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseLocalSort:
		return "localsort"
	case PhasePartition:
		return "partition"
	case PhaseFinal:
		return "final"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Cut names a globally consistent resume point: every rank of the job
// holds a valid checkpoint for this epoch and phase. The zero value
// (PhaseNone) means "no checkpoint — start cold".
type Cut struct {
	Epoch int
	Phase Phase
}

// Manifest describes one rank's checkpoint at one phase boundary.
type Manifest struct {
	// Epoch is the recovery epoch that wrote the checkpoint (0 = the
	// job's first attempt).
	Epoch int
	// Phase is the boundary the snapshot was taken at.
	Phase Phase
	// Rank is the communicator rank that owns the snapshot.
	Rank int
	// World is the rank count of the world that wrote the snapshot (0 =
	// unknown, for manifests built by hand). The store stamps it on
	// every commit and rejects manifests whose World disagrees with its
	// own rank count: a cut written for a p-rank world must never look
	// consistent to a (p−1)-rank store, or a shrunken job would silently
	// drop the extra rank's records — and vice versa, a full-world
	// relaunch must not resume from a degraded world's redistributed
	// snapshots.
	World int
	// Records is the number of records in the data file.
	Records int64
	// RecordSize is the codec's fixed record width in bytes.
	RecordSize int
	// Checksum is the CRC-32C of the data file's bytes (widened to
	// u64; the wire format reserves the full word). CRC-32C is
	// hardware-accelerated — the data hash sits on the sort's critical
	// path, unlike the manifest's own FNV self-checksum, which covers
	// a few dozen bytes.
	Checksum uint64
	// Merged records whether node-level merging (τm) fired this run;
	// on resume it tells every rank whether to replay the
	// communication-free SplitByNode that rebuilt the communicator.
	Merged bool
	// Leader reports whether this rank still holds data after the τm
	// merge (always true when Merged is false).
	Leader bool
	// Bounds are the partition send boundaries (PhasePartition only).
	Bounds []int64
}

const (
	manifestMagic = "SDCK"
	// Version 2 added the world field; version-1 manifests (which
	// predate elastic worlds) are rejected as corrupt, which merely
	// invalidates pre-upgrade spill directories — checkpoints are
	// per-job scratch state, not an archival format.
	manifestVersion = 2
	// fixed part: magic 4 | version u16 | phase u8 | flags u8 |
	// epoch u32 | rank u32 | world u32 | records i64 | recsize u32 |
	// datasum u64 | nbounds u32; followed by nbounds i64 and a trailing
	// u64 FNV-64a self-checksum over everything before it.
	manifestFixed = 4 + 2 + 1 + 1 + 4 + 4 + 4 + 8 + 4 + 8 + 4
	maxBounds     = 1 << 24 // sanity bound: p+1 entries for any plausible p

	flagMerged = 1 << 0
	flagLeader = 1 << 1
)

// ErrCorrupt reports a manifest that failed structural validation —
// truncated, bad magic/version, inconsistent lengths, or a checksum
// mismatch. A corrupt manifest invalidates its (epoch, phase, rank)
// checkpoint, which in turn excludes that cut from LatestConsistent.
var ErrCorrupt = errors.New("checkpoint: corrupt manifest")

// Encode renders the manifest in its binary wire form.
func (m *Manifest) Encode() []byte {
	buf := make([]byte, manifestFixed+8*len(m.Bounds)+8)
	copy(buf, manifestMagic)
	binary.LittleEndian.PutUint16(buf[4:], manifestVersion)
	buf[6] = byte(m.Phase)
	var flags byte
	if m.Merged {
		flags |= flagMerged
	}
	if m.Leader {
		flags |= flagLeader
	}
	buf[7] = flags
	binary.LittleEndian.PutUint32(buf[8:], uint32(m.Epoch))
	binary.LittleEndian.PutUint32(buf[12:], uint32(m.Rank))
	binary.LittleEndian.PutUint32(buf[16:], uint32(m.World))
	binary.LittleEndian.PutUint64(buf[20:], uint64(m.Records))
	binary.LittleEndian.PutUint32(buf[28:], uint32(m.RecordSize))
	binary.LittleEndian.PutUint64(buf[32:], m.Checksum)
	binary.LittleEndian.PutUint32(buf[40:], uint32(len(m.Bounds)))
	off := manifestFixed
	for _, b := range m.Bounds {
		binary.LittleEndian.PutUint64(buf[off:], uint64(b))
		off += 8
	}
	h := fnv.New64a()
	h.Write(buf[:off])
	binary.LittleEndian.PutUint64(buf[off:], h.Sum64())
	return buf
}

// DecodeManifest parses and validates the binary form. Any structural
// defect — truncation, trailing bytes, bad magic, unknown version or
// phase, impossible sizes, checksum mismatch — returns an error
// wrapping ErrCorrupt.
func DecodeManifest(buf []byte) (*Manifest, error) {
	if len(buf) < manifestFixed+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrCorrupt, len(buf))
	}
	if string(buf[:4]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != manifestVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCorrupt, v)
	}
	ph := Phase(buf[6])
	if ph != PhaseLocalSort && ph != PhasePartition && ph != PhaseFinal {
		return nil, fmt.Errorf("%w: invalid phase %d", ErrCorrupt, buf[6])
	}
	if buf[7] &^ (flagMerged | flagLeader) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, buf[7])
	}
	nbounds := binary.LittleEndian.Uint32(buf[40:])
	if nbounds > maxBounds {
		return nil, fmt.Errorf("%w: %d bounds exceeds limit", ErrCorrupt, nbounds)
	}
	want := manifestFixed + 8*int(nbounds) + 8
	if len(buf) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d bounds, want %d", ErrCorrupt, len(buf), nbounds, want)
	}
	h := fnv.New64a()
	h.Write(buf[:want-8])
	if sum := binary.LittleEndian.Uint64(buf[want-8:]); sum != h.Sum64() {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	records := int64(binary.LittleEndian.Uint64(buf[20:]))
	recSize := int(binary.LittleEndian.Uint32(buf[28:]))
	if records < 0 {
		return nil, fmt.Errorf("%w: negative record count", ErrCorrupt)
	}
	if records > 0 && recSize <= 0 {
		return nil, fmt.Errorf("%w: %d records with record size %d", ErrCorrupt, records, recSize)
	}
	m := &Manifest{
		Epoch:      int(binary.LittleEndian.Uint32(buf[8:])),
		Phase:      ph,
		Rank:       int(binary.LittleEndian.Uint32(buf[12:])),
		World:      int(binary.LittleEndian.Uint32(buf[16:])),
		Records:    records,
		RecordSize: recSize,
		Checksum:   binary.LittleEndian.Uint64(buf[32:]),
		Merged:     buf[7]&flagMerged != 0,
		Leader:     buf[7]&flagLeader != 0,
	}
	if nbounds > 0 {
		m.Bounds = make([]int64, nbounds)
		off := manifestFixed
		for i := range m.Bounds {
			m.Bounds[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	return m, nil
}
