// External test package: these tests drive checkpoint through cluster,
// which itself imports checkpoint (the supervisor's shrink path calls
// Redistribute) — an in-package test would be an import cycle.
package checkpoint_test

import (
	"testing"

	"sdssort/internal/checkpoint"
	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
)

func TestAgreeCutBroadcastsRankZeroView(t *testing.T) {
	dir := t.TempDir()
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	s, err := checkpoint.NewStore(dir, topo.Size())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < topo.Size(); r++ {
		m := checkpoint.Manifest{Epoch: 5, Phase: checkpoint.PhasePartition, Rank: r, Leader: true}
		if err := checkpoint.Save(s, m, codec.Float64{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	cuts, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) (checkpoint.Cut, error) {
		cut, ok, err := checkpoint.AgreeCut(c, s)
		if err != nil {
			return checkpoint.Cut{}, err
		}
		if !ok {
			t.Error("no cut agreed")
		}
		return cut, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, cut := range cuts {
		if cut != (checkpoint.Cut{Epoch: 5, Phase: checkpoint.PhasePartition}) {
			t.Fatalf("rank %d agreed on %+v", r, cut)
		}
	}
}
