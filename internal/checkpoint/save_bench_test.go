package checkpoint

import (
	"fmt"
	"testing"

	"sdssort/internal/codec"
)

func BenchmarkSave(b *testing.B) {
	for _, n := range []int{1000, 20000, 150000, 600000} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			s, err := NewStore(b.TempDir(), 1)
			if err != nil {
				b.Fatal(err)
			}
			recs := make([]float64, n)
			for i := range recs {
				recs[i] = float64(i)
			}
			b.SetBytes(int64(n) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := Manifest{Epoch: i, Phase: PhaseLocalSort, Rank: 0}
				if err := Save(s, m, codec.Float64{}, recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
