package checkpoint

import "sdssort/internal/telemetry"

// RegisterMetrics exposes the process-wide checkpoint counters on r.
// It lives here rather than in the telemetry collectors because the
// dependency must point this way: cluster (imported by this package's
// tests) depends on telemetry, so telemetry cannot depend on
// checkpoint without a cycle.
func RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("sds_checkpoint_saves_total", "Committed checkpoint snapshots (aliases included).", telemetry.FInt(stats.Saves.Load))
	r.CounterFunc("sds_checkpoint_saved_bytes_total", "Checkpoint payload bytes written to disk.", telemetry.FInt(stats.SavedBytes.Load))
	r.CounterFunc("sds_checkpoint_save_errors_total", "Checkpoint commits that failed.", telemetry.FInt(stats.SaveErrors.Load))
	r.CounterFunc("sds_checkpoint_loads_total", "Verified checkpoint snapshot reads.", telemetry.FInt(stats.Loads.Load))
	r.CounterFunc("sds_checkpoint_load_errors_total", "Checkpoint reads that failed or were corrupt.", telemetry.FInt(stats.LoadErrors.Load))
}
