package checkpoint

import (
	"fmt"
	"hash/crc32"
	"os"
	"slices"

	"sdssort/internal/codec"
	"sdssort/internal/psort"
)

// This file implements the checkpoint half of degraded-mode resume:
// when a world of p ranks loses some of them mid-job, the survivors do
// not relaunch the world — they adopt the dead ranks' checkpointed
// records and continue as a (p−k)-rank world. Redistribute performs the
// adoption: it reads the lost ranks' snapshots at the last consistent
// cut and commits a fresh, fully consistent cut under a new epoch with
// the survivors' compacted rank numbering and the shrunken world size
// stamped in every manifest.
//
// Crash safety falls out of the store's commit discipline plus the
// world-size stamp: the new cut only becomes consistent once every
// survivor's snapshot has committed, and a redistribution interrupted
// by a second failure leaves (a) an incomplete new-world cut that a
// (p−k)-rank store ignores and (b) the old p-rank cut still fully
// valid for a p-rank store — so falling back to the relaunch path
// resumes exactly where it would have without the shrink attempt.

// Survivors returns the ranks of a size-rank world that are not in
// lost, in rank order. The index of a rank in the result is its rank in
// the shrunken world — the compact renumbering every layer of the
// degraded-mode path agrees on.
func Survivors(size int, lost []int) ([]int, error) {
	dead := make(map[int]bool, len(lost))
	for _, r := range lost {
		if r < 0 || r >= size {
			return nil, fmt.Errorf("checkpoint: lost rank %d outside world of %d", r, size)
		}
		dead[r] = true
	}
	if len(dead) == 0 {
		return nil, fmt.Errorf("checkpoint: shrink with no lost ranks")
	}
	if len(dead) == size {
		return nil, fmt.Errorf("checkpoint: all %d ranks lost", size)
	}
	out := make([]int, 0, size-len(dead))
	for r := 0; r < size; r++ {
		if !dead[r] {
			out = append(out, r)
		}
	}
	return out, nil
}

// Redistribute rebuilds old's consistent cut for the world that remains
// after losing the given ranks. It returns the survivors' store (same
// spill directory, rank count len(survivors)) and the new cut, both
// committed under newEpoch, which must be higher than any epoch the old
// world used so the new cut is the one LatestConsistent finds.
//
// How the orphaned records move depends on the cut's phase:
//
//   - PhaseFinal: the exchange already ran, so each rank's snapshot is a
//     contiguous block of the sorted output. Each dead rank's block is
//     spliced, order preserved, onto the nearest surviving neighbour,
//     and the survivors' blocks are renumbered. No records are compared.
//   - PhaseLocalSort / PhasePartition: partition bounds and the τm merge
//     layout are meaningless for a different p, so the job restarts from
//     the sorted local runs. Each dead rank's run is cut into
//     len(survivors) contiguous chunks — splitters re-scaled to the new
//     world — and survivor i k-way-merges chunk i of every dead run into
//     its own run, keeping every snapshot sorted, which resume requires.
//     Pivot selection, partitioning and the exchange then re-run on the
//     shrunken world, recomputing every send count for the new p.
//
// The localsort snapshots backing a PhasePartition cut may live at an
// earlier epoch than the cut itself (a partition-resumed epoch re-saves
// only the partition boundary); Redistribute scans down from the cut's
// epoch for the newest epoch where every old rank holds a valid
// localsort snapshot — the record multiset is identical at any of them.
func Redistribute[T any](old *Store, cut Cut, lost []int, newEpoch int, cd codec.Codec[T], cmp func(a, b T) int) (*Store, Cut, error) {
	survivors, err := Survivors(old.ranks, lost)
	if err != nil {
		return nil, Cut{}, err
	}
	ns, err := NewStore(old.dir, len(survivors))
	if err != nil {
		return nil, Cut{}, err
	}
	switch cut.Phase {
	case PhaseFinal:
		if err := adoptFinalBlocks(old, ns, cut.Epoch, newEpoch, survivors); err != nil {
			return nil, Cut{}, err
		}
		return ns, Cut{Epoch: newEpoch, Phase: PhaseFinal}, nil
	case PhaseLocalSort, PhasePartition:
		epoch, ok := localSortEpoch(old, cut.Epoch)
		if !ok {
			return nil, Cut{}, fmt.Errorf("checkpoint: no consistent localsort cut at or below epoch %d", cut.Epoch)
		}
		if err := mergeOrphanRuns(old, ns, epoch, newEpoch, survivors, lost, cd, cmp); err != nil {
			return nil, Cut{}, err
		}
		return ns, Cut{Epoch: newEpoch, Phase: PhaseLocalSort}, nil
	default:
		return nil, Cut{}, fmt.Errorf("checkpoint: cannot redistribute from phase %s", cut.Phase)
	}
}

// localSortEpoch finds the newest epoch <= upTo where every rank of the
// store holds a valid localsort snapshot.
func localSortEpoch(s *Store, upTo int) (int, bool) {
	for epoch := upTo; epoch >= 0; epoch-- {
		ok := true
		for r := 0; r < s.ranks; r++ {
			if !s.Valid(epoch, PhaseLocalSort, r) {
				ok = false
				break
			}
		}
		if ok {
			return epoch, true
		}
	}
	return 0, false
}

// payload reads one snapshot's raw data bytes, verified against the
// manifest — the zero-decode path for moving records that will not be
// compared.
func (s *Store) payload(epoch int, ph Phase, rank int) (*Manifest, []byte, error) {
	m, err := s.readManifest(epoch, ph, rank)
	if err != nil {
		return nil, nil, err
	}
	buf, err := os.ReadFile(s.DataPath(epoch, ph, rank))
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	if int64(len(buf)) != m.Records*int64(m.RecordSize) {
		return nil, nil, fmt.Errorf("%w: data for %s holds %d bytes, manifest says %d records of %d",
			ErrCorrupt, s.ManifestPath(epoch, ph, rank), len(buf), m.Records, m.RecordSize)
	}
	if uint64(crc32.Checksum(buf, dataTable)) != m.Checksum {
		return nil, nil, fmt.Errorf("%w: data checksum mismatch for %s", ErrCorrupt, s.DataPath(epoch, ph, rank))
	}
	return m, buf, nil
}

// adoptFinalBlocks renumbers the survivors' final output blocks and
// splices each dead rank's block onto the survivor that follows it in
// old rank order (trailing dead blocks go to the last survivor), so the
// new world's blocks concatenated in new rank order spell exactly the
// same output as the old world's did.
func adoptFinalBlocks(old, ns *Store, epoch, newEpoch int, survivors []int) error {
	for i, s := range survivors {
		hi := s
		if i == len(survivors)-1 {
			hi = old.ranks - 1
		}
		lo := 0
		if i > 0 {
			lo = survivors[i-1] + 1
		}
		var payload []byte
		var records int64
		recSize := 0
		for r := lo; r <= hi; r++ {
			m, buf, err := old.payload(epoch, PhaseFinal, r)
			if err != nil {
				return err
			}
			if m.Records > 0 {
				if recSize != 0 && recSize != m.RecordSize {
					return fmt.Errorf("checkpoint: redistribute: rank %d has %d-byte records, expected %d",
						r, m.RecordSize, recSize)
				}
				recSize = m.RecordSize
			}
			payload = append(payload, buf...)
			records += m.Records
		}
		m := Manifest{Epoch: newEpoch, Phase: PhaseFinal, Rank: i, Leader: true}
		if err := SaveBytes(ns, m, payload, records, recSize); err != nil {
			return fmt.Errorf("checkpoint: redistribute final block %d: %w", i, err)
		}
	}
	return nil
}

// mergeOrphanRuns gives survivor i its own sorted run merged with the
// i-th of len(survivors) contiguous chunks of every dead rank's run.
func mergeOrphanRuns[T any](old, ns *Store, epoch, newEpoch int, survivors, lost []int, cd codec.Codec[T], cmp func(a, b T) int) error {
	p := len(survivors)
	dead := slices.Clone(lost)
	slices.Sort(dead)
	dead = slices.Compact(dead)
	deadRuns := make([][]T, 0, len(dead))
	for _, r := range dead {
		_, recs, err := Load(old, epoch, PhaseLocalSort, r, cd)
		if err != nil {
			return fmt.Errorf("checkpoint: redistribute orphan rank %d: %w", r, err)
		}
		deadRuns = append(deadRuns, recs)
	}
	for i, s := range survivors {
		_, own, err := Load(old, epoch, PhaseLocalSort, s, cd)
		if err != nil {
			return fmt.Errorf("checkpoint: redistribute survivor rank %d: %w", s, err)
		}
		chunks := make([][]T, 0, 1+len(deadRuns))
		chunks = append(chunks, own)
		for _, run := range deadRuns {
			n := len(run)
			if lo, hi := i*n/p, (i+1)*n/p; lo < hi {
				chunks = append(chunks, run[lo:hi])
			}
		}
		merged := own
		if len(chunks) > 1 {
			merged = psort.KWayMerge(chunks, cmp)
		}
		m := Manifest{Epoch: newEpoch, Phase: PhaseLocalSort, Rank: i, Leader: true}
		if err := Save(ns, m, cd, merged); err != nil {
			return fmt.Errorf("checkpoint: redistribute run %d: %w", i, err)
		}
	}
	return nil
}
