package checkpoint

import (
	"cmp"
	"math/rand/v2"
	"slices"
	"testing"

	"sdssort/internal/codec"
)

func cmpI64(a, b int64) int { return cmp.Compare(a, b) }

// saveRun commits one rank's localsort snapshot of a sorted run.
func saveRun(t *testing.T, s *Store, epoch, rank int, run []int64) {
	t.Helper()
	m := Manifest{Epoch: epoch, Phase: PhaseLocalSort, Rank: rank, Leader: true}
	if err := Save(s, m, codec.Int64{}, run); err != nil {
		t.Fatal(err)
	}
}

func TestSurvivors(t *testing.T) {
	got, err := Survivors(4, []int{2})
	if err != nil || !slices.Equal(got, []int{0, 1, 3}) {
		t.Fatalf("Survivors(4, [2]) = %v, %v", got, err)
	}
	got, err = Survivors(5, []int{0, 4, 0})
	if err != nil || !slices.Equal(got, []int{1, 2, 3}) {
		t.Fatalf("Survivors(5, [0,4,0]) = %v, %v", got, err)
	}
	for _, lost := range [][]int{nil, {4}, {-1}, {0, 1}} {
		if _, err := Survivors(2, lost); err == nil {
			t.Fatalf("Survivors(2, %v) accepted", lost)
		}
	}
}

func TestRedistributeLocalSort(t *testing.T) {
	const ranks = 4
	old, err := NewStore(t.TempDir(), ranks)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 0))
	var all []int64
	for r := 0; r < ranks; r++ {
		run := make([]int64, 100+r*37)
		for i := range run {
			run[i] = rng.Int64N(1000)
		}
		slices.Sort(run)
		all = append(all, run...)
		saveRun(t, old, 0, r, run)
	}

	ns, cut, err := Redistribute(old, Cut{Epoch: 0, Phase: PhaseLocalSort}, []int{2}, 1, codec.Int64{}, cmpI64)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Ranks() != 3 || cut.Epoch != 1 || cut.Phase != PhaseLocalSort {
		t.Fatalf("got store of %d ranks, cut %+v", ns.Ranks(), cut)
	}
	if got, ok := ns.LatestConsistent(); !ok || got != cut {
		t.Fatalf("survivors' LatestConsistent = %+v, %v; want %+v", got, ok, cut)
	}
	// Every new run is sorted and together they hold exactly the old
	// records — including the dead rank's.
	var after []int64
	for r := 0; r < 3; r++ {
		_, run, err := Load(ns, cut.Epoch, PhaseLocalSort, r, codec.Int64{})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.IsSorted(run) {
			t.Fatalf("new rank %d run is not sorted", r)
		}
		if len(run) == 0 {
			t.Fatalf("new rank %d got no records", r)
		}
		after = append(after, run...)
	}
	slices.Sort(all)
	slices.Sort(after)
	if !slices.Equal(all, after) {
		t.Fatalf("record multiset changed: %d records before, %d after", len(all), len(after))
	}
	// The old world's cut is still intact for a full-size store: the new
	// epoch's 3-rank manifests must be invisible to a 4-rank scan, so a
	// cascading failure can still fall back to the relaunch path.
	if got, ok := old.LatestConsistent(); !ok || got != (Cut{Epoch: 0, Phase: PhaseLocalSort}) {
		t.Fatalf("old store's cut = %+v, %v after redistribution", got, ok)
	}
}

func TestRedistributeFinal(t *testing.T) {
	const ranks = 4
	old, err := NewStore(t.TempDir(), ranks)
	if err != nil {
		t.Fatal(err)
	}
	// A globally sorted dataset split into contiguous rank blocks.
	blocks := [][]int64{{1, 2, 3}, {4, 5}, {}, {6, 7, 8, 9}}
	var want []int64
	for r, b := range blocks {
		want = append(want, b...)
		m := Manifest{Epoch: 2, Phase: PhaseFinal, Rank: r, Leader: true}
		if err := Save(old, m, codec.Int64{}, b); err != nil {
			t.Fatal(err)
		}
	}
	// Lose the first and last rank: prefix and suffix splicing.
	ns, cut, err := Redistribute(old, Cut{Epoch: 2, Phase: PhaseFinal}, []int{0, 3}, 3, codec.Int64{}, cmpI64)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Phase != PhaseFinal || ns.Ranks() != 2 {
		t.Fatalf("got cut %+v, %d ranks", cut, ns.Ranks())
	}
	var got []int64
	for r := 0; r < 2; r++ {
		_, b, err := Load(ns, cut.Epoch, PhaseFinal, r, codec.Int64{})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("concatenated output changed: got %v want %v", got, want)
	}
}

func TestRedistributePartitionUsesLocalSort(t *testing.T) {
	const ranks = 3
	old, err := NewStore(t.TempDir(), ranks)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		run := []int64{int64(r), int64(r + 10)}
		saveRun(t, old, 0, r, run)
		// Epoch 1 resumed at the partition boundary: it re-saved only
		// partition snapshots, so its localsort files do not exist.
		m := Manifest{Epoch: 1, Phase: PhasePartition, Rank: r, Leader: true, Bounds: []int64{0, 1, 2, 2}}
		if err := Save(old, m, codec.Int64{}, run); err != nil {
			t.Fatal(err)
		}
	}
	ns, cut, err := Redistribute(old, Cut{Epoch: 1, Phase: PhasePartition}, []int{1}, 2, codec.Int64{}, cmpI64)
	if err != nil {
		t.Fatal(err)
	}
	// A partition cut downgrades to the epoch-0 localsort runs: bounds
	// are meaningless for the shrunken world.
	if cut.Phase != PhaseLocalSort || cut.Epoch != 2 {
		t.Fatalf("got cut %+v, want localsort@2", cut)
	}
	var n int
	for r := 0; r < 2; r++ {
		_, run, err := Load(ns, cut.Epoch, PhaseLocalSort, r, codec.Int64{})
		if err != nil {
			t.Fatal(err)
		}
		n += len(run)
	}
	if n != 2*ranks {
		t.Fatalf("got %d records, want %d", n, 2*ranks)
	}
}

func TestRedistributeRefusesColdCut(t *testing.T) {
	old, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Redistribute(old, Cut{}, []int{1}, 1, codec.Int64{}, cmpI64); err == nil {
		t.Fatal("redistribute from a cold cut accepted")
	}
}
