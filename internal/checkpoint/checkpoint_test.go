package checkpoint

import (
	"os"
	"path/filepath"
	"slices"
	"testing"

	"sdssort/internal/codec"
)

func TestManifestRoundTrip(t *testing.T) {
	cases := []Manifest{
		{Epoch: 0, Phase: PhaseLocalSort, Rank: 0, Records: 0, RecordSize: 8, Checksum: 0xcbf29ce484222325},
		{Epoch: 3, Phase: PhasePartition, Rank: 17, World: 32, Records: 1 << 40, RecordSize: 16,
			Checksum: 42, Merged: true, Leader: true, Bounds: []int64{0, 5, 5, 9}},
		{Epoch: 1, Phase: PhaseFinal, Rank: 2, World: 3, Records: 7, RecordSize: 8, Checksum: ^uint64(0), Leader: true},
	}
	for _, m := range cases {
		got, err := DecodeManifest(m.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if got.Epoch != m.Epoch || got.Phase != m.Phase || got.Rank != m.Rank || got.World != m.World ||
			got.Records != m.Records || got.RecordSize != m.RecordSize ||
			got.Checksum != m.Checksum || got.Merged != m.Merged || got.Leader != m.Leader ||
			!slices.Equal(got.Bounds, m.Bounds) {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	m := Manifest{Epoch: 2, Phase: PhasePartition, Rank: 3, Records: 10, RecordSize: 8,
		Checksum: 99, Merged: true, Leader: true, Bounds: []int64{0, 10}}
	good := m.Encode()

	// Truncations at every length.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeManifest(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage.
	if _, err := DecodeManifest(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Every single-bit flip must be rejected (the self-checksum covers
	// everything before it; flips inside the checksum mismatch it).
	for i := range good {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), good...)
			mut[i] ^= 1 << bit
			if _, err := DecodeManifest(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []float64{3.5, -1, 0, 9e100}
	m := Manifest{Epoch: 1, Phase: PhaseLocalSort, Rank: 1, Leader: true}
	if err := Save(s, m, codec.Float64{}, recs); err != nil {
		t.Fatal(err)
	}
	got, loaded, err := Load[float64](s, 1, PhaseLocalSort, 1, codec.Float64{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(loaded, recs) {
		t.Fatalf("loaded %v want %v", loaded, recs)
	}
	if got.Records != 4 || got.RecordSize != 8 || !got.Leader {
		t.Fatalf("manifest %+v", got)
	}
	if !s.Valid(1, PhaseLocalSort, 1) {
		t.Fatal("valid checkpoint reported invalid")
	}
	if s.Valid(1, PhaseLocalSort, 0) {
		t.Fatal("missing checkpoint reported valid")
	}
}

func TestLoadRejectsTamperedData(t *testing.T) {
	s, err := NewStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(s, Manifest{Phase: PhaseFinal, Leader: true}, codec.Float64{}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	path := s.DataPath(0, PhaseFinal, 0)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load[float64](s, 0, PhaseFinal, 0, codec.Float64{}); err == nil {
		t.Fatal("tampered data accepted")
	}
	if s.Valid(0, PhaseFinal, 0) {
		t.Fatal("tampered data reported valid")
	}
}

func TestLatestConsistentRequiresAllRanks(t *testing.T) {
	s, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LatestConsistent(); ok {
		t.Fatal("empty store reported a cut")
	}
	save := func(epoch int, ph Phase, rank int) {
		t.Helper()
		m := Manifest{Epoch: epoch, Phase: ph, Rank: rank, Leader: true}
		if err := Save(s, m, codec.Float64{}, []float64{float64(rank)}); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 0: localsort complete, partition missing rank 2.
	for r := 0; r < 3; r++ {
		save(0, PhaseLocalSort, r)
	}
	save(0, PhasePartition, 0)
	save(0, PhasePartition, 1)
	cut, ok := s.LatestConsistent()
	if !ok || cut != (Cut{Epoch: 0, Phase: PhaseLocalSort}) {
		t.Fatalf("cut %+v ok=%v, want localsort@0", cut, ok)
	}
	// Completing partition advances the cut.
	save(0, PhasePartition, 2)
	if cut, ok = s.LatestConsistent(); !ok || cut != (Cut{Epoch: 0, Phase: PhasePartition}) {
		t.Fatalf("cut %+v ok=%v, want partition@0", cut, ok)
	}
	// A later epoch's complete phase supersedes, even an earlier phase.
	for r := 0; r < 3; r++ {
		save(2, PhaseLocalSort, r)
	}
	if cut, ok = s.LatestConsistent(); !ok || cut != (Cut{Epoch: 2, Phase: PhaseLocalSort}) {
		t.Fatalf("cut %+v ok=%v, want localsort@2", cut, ok)
	}
	// Corrupting one rank's manifest drops that cut back out.
	if err := os.WriteFile(s.ManifestPath(2, PhaseLocalSort, 1), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if cut, ok = s.LatestConsistent(); !ok || cut != (Cut{Epoch: 0, Phase: PhasePartition}) {
		t.Fatalf("cut %+v ok=%v, want partition@0 after corruption", cut, ok)
	}
}

func TestStorePaths(t *testing.T) {
	s, err := NewStore(filepath.Join(t.TempDir(), "spill"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(t.TempDir(), 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
	p := s.ManifestPath(7, PhaseFinal, 3)
	if filepath.Base(p) != "final-r0003.ckpt" || filepath.Base(filepath.Dir(p)) != "e000007" {
		t.Fatalf("manifest path %s", p)
	}
	if s.Ranks() != 4 {
		t.Fatal("ranks")
	}
}
