package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzManifest drives DecodeManifest with arbitrary bytes. Whatever the
// input, the decoder must either reject it or produce a manifest that
// re-encodes to exactly the input — the codec has one canonical form,
// so decode∘encode must be the identity on accepted inputs. To give the
// fuzzer a foothold past the magic/checksum, the corpus seeds valid
// encodings and the target also mutates a known-good manifest's fields
// through a round trip.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(nil))
	f.Add((&Manifest{Phase: PhaseLocalSort}).Encode())
	f.Add((&Manifest{
		Epoch: 3, Phase: PhasePartition, Rank: 12, Records: 1 << 30,
		RecordSize: 16, Checksum: 0xdeadbeef, Merged: true, Leader: true,
		Bounds: []int64{0, 4, 4, 10},
	}).Encode())
	f.Add((&Manifest{Epoch: 1, Phase: PhaseFinal, Rank: 1, Leader: true}).Encode())

	f.Fuzz(func(t *testing.T, buf []byte) {
		m, err := DecodeManifest(buf)
		if err != nil {
			return
		}
		if m.Records < 0 {
			t.Fatalf("accepted negative record count %d", m.Records)
		}
		if m.Records > 0 && m.RecordSize <= 0 {
			t.Fatalf("accepted %d records with record size %d", m.Records, m.RecordSize)
		}
		if m.Phase != PhaseLocalSort && m.Phase != PhasePartition && m.Phase != PhaseFinal {
			t.Fatalf("accepted phase %d", m.Phase)
		}
		re := m.Encode()
		if !bytes.Equal(re, buf) {
			t.Fatalf("decode/encode not identity:\n in  %x\n out %x", buf, re)
		}
		if _, err := DecodeManifest(re); err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
	})
}
