package checkpoint

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/recordio"
)

// CheckpointStats are process-wide cumulative checkpoint counters,
// exported live by the telemetry plane. They are package-level rather
// than per-Store because Stores are created per job while the counters
// describe the process ("how much checkpoint I/O has this node done").
type CheckpointStats struct {
	// Saves counts committed snapshots (SaveBytes renames plus
	// hard-linked aliases); SavedBytes is the payload bytes written
	// (aliases contribute nothing — that is the point of aliasing).
	Saves      atomic.Int64
	SavedBytes atomic.Int64
	// SaveErrors counts snapshot commits that failed.
	SaveErrors atomic.Int64
	// Loads counts verified snapshot reads; LoadErrors the failed or
	// corrupt ones.
	Loads      atomic.Int64
	LoadErrors atomic.Int64
}

var stats CheckpointStats

// Stats exposes the package's live checkpoint counters.
func Stats() *CheckpointStats { return &stats }

// dataTable is the polynomial for the record-data checksum: CRC-32C,
// which is hardware-accelerated on the common platforms. Saving sits
// on the sort's critical path, so the hash must run at memory
// bandwidth; the manifest's own self-checksum stays FNV-64a (it
// covers a few dozen bytes).
var dataTable = crc32.MakeTable(crc32.Castagnoli)

// Store is one job's spill directory. All ranks of an in-process job
// share one Store; distributed ranks point their Stores at a shared
// directory. The Store itself is stateless — every operation goes to
// the filesystem — so a respawned process sees its predecessor's
// checkpoints.
type Store struct {
	dir   string
	ranks int
}

// NewStore opens (creating if needed) the spill directory for a job of
// the given rank count.
func NewStore(dir string, ranks int) (*Store, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("checkpoint: rank count %d must be positive", ranks)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir, ranks: ranks}, nil
}

// Dir returns the spill directory.
func (s *Store) Dir() string { return s.dir }

// Ranks returns the job's rank count.
func (s *Store) Ranks() int { return s.ranks }

func (s *Store) epochDir(epoch int) string {
	return filepath.Join(s.dir, fmt.Sprintf("e%06d", epoch))
}

// ManifestPath returns where the manifest for (epoch, phase, rank)
// lives. The path exists only once that checkpoint has committed —
// which makes it usable as a phase-boundary trigger for fault
// injection (faultnet's kill-after-file fault).
func (s *Store) ManifestPath(epoch int, ph Phase, rank int) string {
	return filepath.Join(s.epochDir(epoch), fmt.Sprintf("%s-r%04d.ckpt", ph, rank))
}

// DataPath returns where the record data for (epoch, phase, rank) lives.
func (s *Store) DataPath(epoch int, ph Phase, rank int) string {
	return filepath.Join(s.epochDir(epoch), fmt.Sprintf("%s-r%04d.dat", ph, rank))
}

// Save commits one rank's snapshot: the records are bulk-marshalled
// (recordio's wire layout — a bare concatenation of fixed-width
// records) and handed to SaveBytes. Callers that want the disk commit
// off their critical path encode with codec.EncodeSlice themselves and
// call SaveBytes from a background writer — that is what core's async
// checkpointing does.
func Save[T any](s *Store, m Manifest, cd codec.Codec[T], recs []T) error {
	payload := codec.EncodeSlice(cd, make([]byte, 0, len(recs)*cd.Size()), recs)
	return SaveBytes(s, m, payload, int64(len(recs)), cd.Size())
}

// SaveBytes commits one rank's pre-encoded snapshot: payload is
// written to the data file, then the manifest (completed with count,
// record size and data checksum) is written. Both files land via
// write-to-temp-and-rename, manifest last, so a crash mid-save leaves
// no valid checkpoint rather than a torn one.
func SaveBytes(s *Store, m Manifest, payload []byte, records int64, recSize int) error {
	if err := saveBytes(s, m, payload, records, recSize); err != nil {
		stats.SaveErrors.Add(1)
		return err
	}
	stats.Saves.Add(1)
	stats.SavedBytes.Add(int64(len(payload)))
	return nil
}

func saveBytes(s *Store, m Manifest, payload []byte, records int64, recSize int) error {
	dir := s.epochDir(m.Epoch)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}

	f, err := os.CreateTemp(dir, ".dat-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("checkpoint: data for %s: %w", s.ManifestPath(m.Epoch, m.Phase, m.Rank), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(f.Name(), s.DataPath(m.Epoch, m.Phase, m.Rank)); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}

	m.Records = records
	m.RecordSize = recSize
	m.Checksum = uint64(crc32.Checksum(payload, dataTable))
	return s.writeManifest(m)
}

// writeManifest commits the manifest via temp-and-rename; its rename
// is the snapshot's commit point. It stamps the store's rank count as
// the manifest's world, so every committed snapshot records which
// world size it belongs to.
func (s *Store) writeManifest(m Manifest) error {
	m.World = s.ranks
	mf, err := os.CreateTemp(s.epochDir(m.Epoch), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := mf.Write(m.Encode()); err != nil {
		mf.Close()
		os.Remove(mf.Name())
		return fmt.Errorf("checkpoint: manifest: %w", err)
	}
	if err := mf.Close(); err != nil {
		os.Remove(mf.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(mf.Name(), s.ManifestPath(m.Epoch, m.Phase, m.Rank)); err != nil {
		os.Remove(mf.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// SaveAlias commits a snapshot whose record data is byte-identical to
// an already-committed phase of the same epoch and rank: the data
// file is hard-linked instead of rewritten and count, record size and
// checksum carry over from the source's manifest. The source must
// have committed first — core's background writer runs commits in
// enqueue order to guarantee it. The driver uses this for the
// partition snapshot when node merging did not trigger (the working
// set is exactly the local-sort snapshot; only the bounds differ),
// which removes a third of checkpointing's write volume.
func SaveAlias(s *Store, m Manifest, src Phase) error {
	sm, err := s.readManifest(m.Epoch, src, m.Rank)
	if err != nil {
		stats.SaveErrors.Add(1)
		return fmt.Errorf("checkpoint: alias source: %w", err)
	}
	srcData := s.DataPath(m.Epoch, src, m.Rank)
	dst := s.DataPath(m.Epoch, m.Phase, m.Rank)
	os.Remove(dst) // a retried epoch may have left one behind
	if err := os.Link(srcData, dst); err != nil {
		// No hard links on this filesystem: fall back to a copy, still
		// temp-and-rename.
		payload, rerr := os.ReadFile(srcData)
		if rerr != nil {
			stats.SaveErrors.Add(1)
			return fmt.Errorf("checkpoint: alias data: %w", rerr)
		}
		mm := m
		mm.Records, mm.RecordSize = sm.Records, sm.RecordSize
		return SaveBytes(s, mm, payload, sm.Records, sm.RecordSize)
	}
	m.Records, m.RecordSize, m.Checksum = sm.Records, sm.RecordSize, sm.Checksum
	if err := s.writeManifest(m); err != nil {
		stats.SaveErrors.Add(1)
		return err
	}
	// An alias commit is a save that wrote no payload bytes.
	stats.Saves.Add(1)
	return nil
}

// Load reads and verifies one rank's snapshot, returning the manifest
// and the decoded records. It fails if the manifest does not identify
// the requested (epoch, phase, rank) or the data file does not match
// the manifest's count and checksum.
func Load[T any](s *Store, epoch int, ph Phase, rank int, cd codec.Codec[T]) (*Manifest, []T, error) {
	m, recs, err := load(s, epoch, ph, rank, cd)
	if err != nil {
		stats.LoadErrors.Add(1)
		return nil, nil, err
	}
	stats.Loads.Add(1)
	return m, recs, nil
}

func load[T any](s *Store, epoch int, ph Phase, rank int, cd codec.Codec[T]) (*Manifest, []T, error) {
	m, err := s.readManifest(epoch, ph, rank)
	if err != nil {
		return nil, nil, err
	}
	if m.RecordSize != cd.Size() && m.Records > 0 {
		return nil, nil, fmt.Errorf("checkpoint: %s has %d-byte records, codec wants %d",
			s.DataPath(epoch, ph, rank), m.RecordSize, cd.Size())
	}
	f, err := os.Open(s.DataPath(epoch, ph, rank))
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	h := crc32.New(dataTable)
	recs, err := recordio.NewReader(io.TeeReader(f, h), cd).ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: data for %s: %w", s.ManifestPath(epoch, ph, rank), err)
	}
	if int64(len(recs)) != m.Records {
		return nil, nil, fmt.Errorf("checkpoint: %s holds %d records, manifest says %d",
			s.DataPath(epoch, ph, rank), len(recs), m.Records)
	}
	if uint64(h.Sum32()) != m.Checksum {
		return nil, nil, fmt.Errorf("%w: data checksum mismatch for %s",
			ErrCorrupt, s.DataPath(epoch, ph, rank))
	}
	return m, recs, nil
}

// readManifest loads and validates the manifest file, including its
// identity: a manifest claiming a different (epoch, phase, rank) than
// its path is corrupt.
func (s *Store) readManifest(epoch int, ph Phase, rank int) (*Manifest, error) {
	buf, err := os.ReadFile(s.ManifestPath(epoch, ph, rank))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	m, err := DecodeManifest(buf)
	if err != nil {
		return nil, err
	}
	if m.Epoch != epoch || m.Phase != ph || m.Rank != rank {
		return nil, fmt.Errorf("%w: manifest at %s identifies (epoch %d, %s, rank %d)",
			ErrCorrupt, s.ManifestPath(epoch, ph, rank), m.Epoch, m.Phase, m.Rank)
	}
	if m.World != 0 && m.World != s.ranks {
		// A snapshot written by a different world size is not usable by
		// this store: resuming a p-rank cut on p−1 ranks would silently
		// drop records, and a full-world relaunch must not adopt a
		// degraded world's redistributed snapshots.
		return nil, fmt.Errorf("%w: manifest at %s was written for a %d-rank world, store has %d",
			ErrCorrupt, s.ManifestPath(epoch, ph, rank), m.World, s.ranks)
	}
	return m, nil
}

// Valid reports whether the checkpoint for (epoch, phase, rank) is
// complete: manifest present and well-formed, data file present with
// the manifest's exact byte length and checksum. It needs no codec —
// validation is over raw bytes.
func (s *Store) Valid(epoch int, ph Phase, rank int) bool {
	m, err := s.readManifest(epoch, ph, rank)
	if err != nil {
		return false
	}
	f, err := os.Open(s.DataPath(epoch, ph, rank))
	if err != nil {
		return false
	}
	defer f.Close()
	h := crc32.New(dataTable)
	n, err := io.Copy(h, f)
	if err != nil || n != m.Records*int64(m.RecordSize) {
		return false
	}
	return uint64(h.Sum32()) == m.Checksum
}

// LatestConsistent scans the spill directory for the most recent
// globally consistent cut: the highest epoch, and within it the latest
// phase, for which every rank 0..ranks-1 holds a valid checkpoint. A
// cut missing even one rank — the rank died before committing, or its
// files are torn — is skipped entirely; resuming from it would
// silently drop that rank's records.
func (s *Store) LatestConsistent() (Cut, bool) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return Cut{}, false
	}
	var epochs []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "e") {
			continue
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "e")); err == nil {
			epochs = append(epochs, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))
	for _, epoch := range epochs {
		for _, ph := range []Phase{PhaseFinal, PhasePartition, PhaseLocalSort} {
			ok := true
			for r := 0; r < s.ranks; r++ {
				if !s.Valid(epoch, ph, r) {
					ok = false
					break
				}
			}
			if ok {
				return Cut{Epoch: epoch, Phase: ph}, true
			}
		}
	}
	return Cut{}, false
}

// Remove deletes the entire spill directory.
func (s *Store) Remove() error { return os.RemoveAll(s.dir) }

// AgreeCut makes every rank of c adopt the same resume cut: rank 0
// scans its view of the store and broadcasts the verdict. Distributed
// ranks must not each call LatestConsistent independently — a
// checkpoint landing between two ranks' scans would split the job
// across different resume points, which is exactly the inconsistency
// checkpointing exists to prevent. ok is false when no consistent cut
// exists (cold start).
func AgreeCut(c *comm.Comm, s *Store) (Cut, bool, error) {
	var payload []byte
	if c.Rank() == 0 {
		cut, ok := s.LatestConsistent()
		if !ok {
			cut = Cut{Phase: PhaseNone}
		}
		payload = comm.EncodeInt64s([]int64{int64(cut.Epoch), int64(cut.Phase)})
	}
	buf, err := c.Bcast(0, payload)
	if err != nil {
		return Cut{}, false, fmt.Errorf("checkpoint: cut agreement: %w", err)
	}
	vals, err := comm.DecodeInt64s(buf)
	if err != nil || len(vals) != 2 {
		return Cut{}, false, fmt.Errorf("checkpoint: bad cut payload: %w", err)
	}
	cut := Cut{Epoch: int(vals[0]), Phase: Phase(vals[1])}
	return cut, cut.Phase != PhaseNone, nil
}
