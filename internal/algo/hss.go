package algo

import (
	"context"
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
)

// hssDriver implements Histogram Sort with Sampling (Harsh, Kalé,
// Solomonik — arXiv 1803.01237): splitter selection by iterative
// histogramming seeded with a sample far smaller than one-shot regular
// sampling needs, refined only where the measured cut is still outside
// a rank tolerance. One exchange follows, through the shared
// core.ExchangeSorted. Like HykSort's selection it is duplicate-
// oblivious: on heavy duplicates the refinement stalls (no candidate
// can separate equal keys) and the partition concentrates — the auto
// driver routes such inputs to sds instead.
type hssDriver[T any] struct{}

func (hssDriver[T]) Info() Info {
	in, _ := Lookup(NameHSS)
	return in
}

func (hssDriver[T]) Sort(ctx context.Context, c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := reject(NameHSS, opt); err != nil {
		return nil, err
	}
	opt.record(NameHSS)
	rsp, opt := opt.rootSpan(NameHSS, c.Rank(), len(data), c.Size())
	defer rsp.End(map[string]any{"reason": "error"})
	tm, copt := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()

	recSize := int64(cd.Size())
	led := &ledger{g: opt.Core.Mem}
	if err := led.reserve(int64(len(data)) * recSize); err != nil {
		return nil, fmt.Errorf("hss: input buffer: %w", err)
	}
	defer led.releaseAll()

	tm.Start(metrics.PhaseLocalSort)
	if !radix.DispatchLocal(data, cd, cmp) {
		psort.ParallelSort(data, opt.cores(), false, cmp)
	}
	p := c.Size()
	if p == 1 {
		rsp.End(map[string]any{"records": len(data)})
		return data, nil
	}

	tm.Start(metrics.PhasePivotSelection)
	rounds := opt.HistogramRounds
	if rounds <= 0 {
		rounds = 8
	}
	eps := opt.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	sp, st, err := hssSplitters(c, data, p-1, rounds, eps, cd, cmp)
	if err != nil {
		return nil, fmt.Errorf("hss: splitter selection: %w", err)
	}
	opt.tracer().Emit(c.Rank(), "hss.splitters", map[string]any{
		"rounds": st.rounds, "candidates": st.candidates,
		"resolved": st.resolved, "splitters": p - 1, "tolerance": st.tol,
	})
	if len(sp) == 0 {
		rsp.End(map[string]any{"records": len(data)})
		return data, nil // globally empty dataset
	}

	// Plain upper_bound partition on the refined splitters — HSS is
	// duplicate-oblivious by design.
	bounds := make([]int, p+1)
	bounds[p] = len(data)
	for j, s := range sp {
		bounds[j+1] = partition.UpperBound(data, s, cmp)
	}
	for j := 1; j <= p; j++ {
		if bounds[j] < bounds[j-1] {
			bounds[j] = bounds[j-1]
		}
	}

	out, err := core.ExchangeSorted(c, data, bounds, cd, cmp, copt)
	if err != nil {
		led.held = 0 // ExchangeSorted settled the ledger on failure
		return nil, fmt.Errorf("hss: exchange: %w", err)
	}
	led.held = int64(len(out)) * recSize
	rsp.End(map[string]any{"records": len(out)})
	return out, nil
}

// hssStats summarises one splitter selection for the trace.
type hssStats struct {
	rounds     int
	candidates int
	resolved   int
	tol        int64
}

// hssSplitters refines nsplit splitters until every cut's global rank is
// within tol = max(1, eps·N/(nsplit+1)) of ideal, probing only the
// bracket of each unresolved cut — the sample-volume saving that is
// HSS's contribution over one-shot sampling. All decisions derive from
// all-gathered state, so every rank runs the same number of collectives.
func hssSplitters[T any](c *comm.Comm, sorted []T, nsplit, maxRounds int, eps float64, cd codec.Codec[T], cmp func(a, b T) int) ([]T, hssStats, error) {
	var st hssStats
	if nsplit <= 0 {
		return nil, st, nil
	}
	total, err := c.AllreduceInt64(int64(len(sorted)), func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, st, err
	}
	if total == 0 {
		return nil, st, nil
	}
	targets := make([]int64, nsplit)
	for i := range targets {
		targets[i] = int64(i+1) * total / int64(nsplit+1)
	}
	tol := int64(eps * float64(total) / float64(nsplit+1))
	if tol < 1 {
		tol = 1
	}
	st.tol = tol

	// Seed pool: 8 regular samples per rank — independent of p, unlike
	// PSRS's p samples per rank.
	pool, err := pivots.ShareCandidates(c, pivots.RegularSample(sorted, 8), cd, cmp)
	if err != nil {
		return nil, st, err
	}

	chosen := make([]T, nsplit)
	resolved := make([]bool, nsplit)
	for round := 0; round < maxRounds; round++ {
		if len(pool) == 0 {
			break
		}
		st.rounds = round + 1
		cdf, err := pivots.GlobalCDF(c, sorted, pool, cmp)
		if err != nil {
			return nil, st, err
		}
		// Adopt, per cut, the candidate whose global rank is closest;
		// within tolerance the cut is final. The probe for a cut still
		// off target covers the bracket between the best candidate's
		// neighbours — the only interval a better splitter can hide in.
		allDone := true
		var probes []T
		for ti, tgt := range targets {
			best, bestDist := 0, int64(1)<<62
			for ci, rank := range cdf {
				d := rank - tgt
				if d < 0 {
					d = -d
				}
				if d < bestDist {
					best, bestDist = ci, d
				}
			}
			chosen[ti] = pool[best]
			if bestDist <= tol {
				resolved[ti] = true
			}
			if resolved[ti] {
				continue
			}
			allDone = false
			lo, hi := 0, len(sorted)
			if best > 0 {
				lo = partition.LowerBound(sorted, pool[best-1], cmp)
			}
			if best < len(pool)-1 {
				hi = partition.UpperBound(sorted, pool[best+1], cmp)
			}
			probes = append(probes, pivots.RegularSample(sorted[lo:hi], 4)...)
		}
		if allDone || round == maxRounds-1 {
			break
		}
		// Always enter the collective: whether refinement found local
		// probes differs per rank, and control flow around collectives
		// must not.
		extra, err := pivots.ShareCandidates(c, probes, cd, cmp)
		if err != nil {
			return nil, st, err
		}
		if len(extra) == 0 {
			break // globally stuck: no rank can refine further (duplicates)
		}
		pool = append(pool, extra...)
		psort.Sort(pool, cmp)
	}
	st.candidates = len(pool)
	for _, r := range resolved {
		if r {
			st.resolved++
		}
	}
	psort.Sort(chosen, cmp)
	return chosen, st, nil
}
