package algo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry names of the built-in drivers.
const (
	NameSDS  = "sds"
	NameHSS  = "hss"
	NameAMS  = "ams"
	NameHyk  = "hyksort"
	NamePSRS = "psrs"
	NameAuto = "auto"
)

// builtins, in display order. Keep About lines to one sentence; they
// feed -list output and the README algorithm table.
var builtins = []Info{
	{Name: NameSDS, About: "skew-aware sample sort (the paper's algorithm): adaptive τm/τo/τs, duplicate-safe partition", Caps: Capabilities{Stable: true, Spill: true, Checkpoint: true}},
	{Name: NameHSS, About: "histogram sort with sampling (arXiv 1803.01237): iterative splitter refinement, small sample volume", Caps: Capabilities{Spill: true}},
	{Name: NameAMS, About: "multi-level AMS-sort (arXiv 1606.08766): recursive k-way partitioning, O(log_k p) exchange levels", Caps: Capabilities{Spill: true}},
	{Name: NameHyk, About: "HykSort (ICS'13): recursive hypercube splits with histogram splitters; collapses on duplicates", Caps: Capabilities{Spill: true}},
	{Name: NamePSRS, About: "classic parallel sorting by regular sampling (1993): one-shot sample, no duplicate handling", Caps: Capabilities{Spill: true}},
	{Name: NameAuto, About: "runtime selection: profiles a sample (duplicates, skew, p, record width, spill pressure) and dispatches", Caps: Capabilities{Stable: true, Spill: true, Checkpoint: true}},
}

// External registrations: a boxed func() Driver[T] per record type,
// because Go cannot hold heterogeneous generic values in one map.
var (
	extMu        sync.Mutex
	extInfos     []Info
	extFactories = map[string][]any{}
)

// Register adds an external driver to the registry. factories is one or
// more `func() Driver[T]` values, one per record type the driver should
// be constructible for; New matches them by type assertion.
func Register(info Info, factories ...any) error {
	if info.Name == "" {
		return fmt.Errorf("algo: driver with empty name")
	}
	if _, ok := Lookup(info.Name); ok {
		return fmt.Errorf("algo: driver %q already registered", info.Name)
	}
	extMu.Lock()
	defer extMu.Unlock()
	extInfos = append(extInfos, info)
	extFactories[info.Name] = factories
	return nil
}

// Infos returns every registered driver, built-ins first in display
// order, external registrations after in name order.
func Infos() []Info {
	out := append([]Info(nil), builtins...)
	extMu.Lock()
	ext := append([]Info(nil), extInfos...)
	extMu.Unlock()
	sort.Slice(ext, func(i, j int) bool { return ext[i].Name < ext[j].Name })
	return append(out, ext...)
}

// Names returns the selectable driver names in display order.
func Names() []string {
	infos := Infos()
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return names
}

// Lookup returns the Info registered under name.
func Lookup(name string) (Info, bool) {
	for _, in := range Infos() {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

// UnknownError reports a driver name that is not in the registry. Its
// message lists the available names, so CLI surfaces can print it
// verbatim on a bad -algo value.
type UnknownError struct{ Name string }

func (e *UnknownError) Error() string {
	return fmt.Sprintf("unknown algorithm %q (available: %s)", e.Name, strings.Join(Names(), ", "))
}

// New constructs the driver registered under name for record type T.
// Unknown names return *UnknownError.
func New[T any](name string) (Driver[T], error) {
	switch name {
	case NameSDS:
		return sdsDriver[T]{}, nil
	case NameHSS:
		return hssDriver[T]{}, nil
	case NameAMS:
		return amsDriver[T]{}, nil
	case NameHyk:
		return hykDriver[T]{}, nil
	case NamePSRS:
		return psrsDriver[T]{}, nil
	case NameAuto:
		return autoDriver[T]{}, nil
	}
	extMu.Lock()
	factories, ok := extFactories[name]
	extMu.Unlock()
	if !ok {
		return nil, &UnknownError{Name: name}
	}
	for _, f := range factories {
		if mk, ok := f.(func() Driver[T]); ok {
			return mk(), nil
		}
	}
	return nil, fmt.Errorf("algo: driver %q is not registered for this record type", name)
}
