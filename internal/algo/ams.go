package algo

import (
	"context"
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
)

// defaultAMSArity keeps the recursion genuinely multi-level at the
// scale the experiments run (k=4 gives two levels at p=8); production
// scales would raise it toward the paper's k≈p^(1/levels).
const defaultAMSArity = 4

// amsDriver implements multi-level AMS-sort (Axtmann, Bingmann, Sanders,
// Schulz — Robust Massively Parallel Sorting, arXiv 1606.08766):
// recursive k-way partitioning over comm.Split sub-worlds. Each level
// picks k-1 splitters by one-shot oversampling, slices every bucket
// evenly across its destination group (AMS's data delivery — the slice,
// not the refinement, is what bounds per-rank receive volume), runs the
// level's exchange through core.ExchangeSorted and recurses into the
// group. p ranks take O(log_k p) exchange levels instead of one p-wide
// all-to-all.
type amsDriver[T any] struct{}

func (amsDriver[T]) Info() Info {
	in, _ := Lookup(NameAMS)
	return in
}

func (amsDriver[T]) Sort(ctx context.Context, c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := reject(NameAMS, opt); err != nil {
		return nil, err
	}
	opt.record(NameAMS)
	rsp, opt := opt.rootSpan(NameAMS, c.Rank(), len(data), c.Size())
	defer rsp.End(map[string]any{"reason": "error"})
	tm, copt := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()

	recSize := int64(cd.Size())
	led := &ledger{g: opt.Core.Mem}
	if err := led.reserve(int64(len(data)) * recSize); err != nil {
		return nil, fmt.Errorf("ams: input buffer: %w", err)
	}
	defer led.releaseAll()

	tm.Start(metrics.PhaseLocalSort)
	if !radix.DispatchLocal(data, cd, cmp) {
		psort.ParallelSort(data, opt.cores(), false, cmp)
	}

	k := opt.K
	if k < 2 {
		k = defaultAMSArity
	}
	local := data
	cur := c
	levels := 0
	for cur.Size() > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		local, cur, err = amsLevel(cur, local, k, recSize, cd, cmp, copt, tm, led)
		if err != nil {
			return nil, err
		}
		levels++
	}
	opt.tracer().Emit(c.Rank(), "ams.levels", map[string]any{
		"levels": levels, "k": k, "p": c.Size(),
	})
	rsp.End(map[string]any{"records": len(local), "levels": levels})
	return local, nil
}

// amsLevel performs one k-way partitioning level and narrows the
// communicator to this rank's group. led is the driver's gauge ledger;
// the exchange settles it.
func amsLevel[T any](cur *comm.Comm, local []T, k int, recSize int64, cd codec.Codec[T], cmp func(a, b T) int, copt core.Options, tm *metrics.PhaseTimer, led *ledger) ([]T, *comm.Comm, error) {
	p := cur.Size()
	b := k
	if b > p {
		b = p
	}

	// One-shot oversampling (the AMS selection): 4·k regular samples
	// per rank, pooled and cut at equal strides. Residual imbalance is
	// repaired by the next level, not by refinement rounds.
	tm.Start(metrics.PhasePivotSelection)
	pool, err := pivots.ShareCandidates(cur, pivots.RegularSample(local, 4*b), cd, cmp)
	if err != nil {
		return nil, nil, fmt.Errorf("ams: sample: %w", err)
	}
	if len(pool) == 0 {
		// Globally empty dataset: end the recursion in one hop by
		// splitting every rank into its own world. All ranks see the
		// empty pool, so the split is collectively aligned.
		sub, err := cur.Split(cur.Rank(), 0)
		if err != nil {
			return nil, nil, fmt.Errorf("ams: empty split: %w", err)
		}
		return local, sub, nil
	}
	sp := make([]T, 0, b-1)
	for i := 1; i < b; i++ {
		idx := i*len(pool)/b - 1
		if idx < 0 {
			idx = 0
		}
		sp = append(sp, pool[idx])
	}

	// Bucket bounds by plain upper_bound on the splitters, then slice
	// every bucket evenly across its destination group j = ranks
	// [j·p/b, (j+1)·p/b): consecutive group members take consecutive
	// equal shares, so the per-destination bounds stay ascending over
	// the locally sorted data.
	bb := make([]int, b+1)
	bb[b] = len(local)
	for j, s := range sp {
		bb[j+1] = partition.UpperBound(local, s, cmp)
	}
	for j := 1; j <= b; j++ {
		if bb[j] < bb[j-1] {
			bb[j] = bb[j-1]
		}
	}
	groupOf := func(rank int) int { return rank * b / p }
	groupStart := func(j int) int {
		lo := (j*p + b - 1) / b
		for groupOf(lo) != j {
			lo++
		}
		return lo
	}
	db := make([]int, p+1)
	for j := 0; j < b; j++ {
		gs := groupStart(j)
		ge := p
		if j < b-1 {
			ge = groupStart(j + 1)
		}
		ng := ge - gs
		bucket := bb[j+1] - bb[j]
		for m := 0; m < ng; m++ {
			db[gs+m+1] = bb[j] + (m+1)*bucket/ng
		}
	}

	out, err := core.ExchangeSorted(cur, local, db, cd, cmp, copt)
	if err != nil {
		led.held = 0 // ExchangeSorted settled the ledger on failure
		return nil, nil, fmt.Errorf("ams: exchange: %w", err)
	}
	led.held = int64(len(out)) * recSize

	tm.Start(metrics.PhaseOther)
	sub, err := cur.Split(groupOf(cur.Rank()), cur.Rank())
	if err != nil {
		return nil, nil, fmt.Errorf("ams: group split: %w", err)
	}
	return out, sub, nil
}
