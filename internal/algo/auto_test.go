package algo

import (
	"context"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
	"sdssort/internal/workload"
)

// TestChooseDecisionRule pins the documented rule branch by branch.
func TestChooseDecisionRule(t *testing.T) {
	base := profile{sample: 512, dupRatio: 0.001, distinct: 500, total: 1 << 20}
	cases := []struct {
		name       string
		pr         profile
		p, recSize int
		opt        Options
		want       string
		reason     string
	}{
		{"stable", base, 8, 8, Options{Core: core.Options{Stable: true}}, NameSDS, "capabilities"},
		{"checkpoint", base, 8, 8, Options{Core: core.Options{Checkpoint: &core.Checkpointing{}}}, NameSDS, "capabilities"},
		{"pressure", profile{sample: 512, pressure: true}, 8, 8, Options{}, NameSDS, "spill-pressure"},
		{"duplicates", profile{sample: 512, dupRatio: 0.3, distinct: 16}, 8, 8, Options{}, NameSDS, "duplicates"},
		{"scale", base, 64, 8, Options{}, NameAMS, "scale"},
		{"scale-wide-records", base, 64, 32, Options{}, NameHSS, "uniform"},
		{"uniform", base, 8, 8, Options{}, NameHSS, "uniform"},
		{"empty-sample", profile{}, 8, 8, Options{}, NameHSS, "uniform"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, reason := choose(tc.pr, tc.p, tc.recSize, tc.opt)
			if got != tc.want || reason != tc.reason {
				t.Fatalf("choose = (%q, %q), want (%q, %q)", got, reason, tc.want, tc.reason)
			}
		})
	}
}

func TestDupThreshold(t *testing.T) {
	if got := dupThreshold(1000); got != 0.01 {
		t.Fatalf("large sample threshold %v, want 0.01", got)
	}
	// Small pools: one repeated value is noise, require two hits.
	if got := dupThreshold(10); got != 0.2 {
		t.Fatalf("small sample threshold %v, want 0.2", got)
	}
	if got := dupThreshold(0); got != 0.01 {
		t.Fatalf("empty sample threshold %v, want 0.01", got)
	}
}

// runAuto sorts one preset under -algo auto and returns the selection
// counters plus the traced decisions.
func runAuto(t *testing.T, preset string, opt Options) (*metrics.AlgoStats, []trace.Event) {
	t.Helper()
	const p, perRank = 4, 4000
	pre, ok := workload.LookupPreset(preset)
	if !ok {
		t.Fatalf("preset %q missing", preset)
	}
	ring := trace.NewRing(256)
	sel := &metrics.AlgoStats{}
	opt.Core.Trace = ring
	opt.Selection = sel
	drv, err := New[float64](NameAuto)
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	outs, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]float64, error) {
		return drv.Sort(context.Background(), c, pre.Gen(11+int64(c.Rank())*613, perRank), codec.Float64{}, cmpF64, opt)
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total != p*perRank {
		t.Fatalf("auto run lost records: %d of %d", total, p*perRank)
	}
	var selected []trace.Event
	for _, ev := range ring.Events() {
		if ev.Kind == "algo.selected" {
			selected = append(selected, ev)
		}
	}
	return sel, selected
}

// TestAutoSelectsByWorkload is the issue's acceptance check: auto must
// resolve to different drivers on uniform vs Zipf inputs, observable in
// both the selection counters (the sds_algo_selected telemetry source)
// and the "algo.selected" trace events.
func TestAutoSelectsByWorkload(t *testing.T) {
	const p = 4
	cases := []struct {
		preset, want, reason string
	}{
		{"uniform", NameHSS, "uniform"},
		{"zipf", NameSDS, "duplicates"},
		{"allequal", NameSDS, "duplicates"},
	}
	for _, tc := range cases {
		t.Run(tc.preset, func(t *testing.T) {
			sel, events := runAuto(t, tc.preset, DefaultOptions())
			if got := sel.Count(tc.want); got != p {
				t.Fatalf("selection count for %q = %d, want %d (one per rank)", tc.want, got, p)
			}
			for _, other := range Names() {
				if other != tc.want && sel.Count(other) != 0 {
					t.Fatalf("driver %q also counted %d times", other, sel.Count(other))
				}
			}
			if len(events) != p {
				t.Fatalf("%d algo.selected events, want %d", len(events), p)
			}
			for _, ev := range events {
				if ev.Detail["algo"] != tc.want {
					t.Fatalf("rank %d selected %v, want %q", ev.Rank, ev.Detail["algo"], tc.want)
				}
				if ev.Detail["reason"] != tc.reason {
					t.Fatalf("rank %d reason %v, want %q", ev.Rank, ev.Detail["reason"], tc.reason)
				}
			}
		})
	}
}

// TestAutoSpillPressure: forced spill must steer auto to sds even on
// uniform data — the only driver that degrades gracefully under it.
func TestAutoSpillPressure(t *testing.T) {
	opt := DefaultOptions()
	opt.Core.Spill = &core.SpillOptions{Dir: t.TempDir(), Force: true}
	sel, events := runAuto(t, "uniform", opt)
	if got := sel.Count(NameSDS); got != 4 {
		t.Fatalf("sds count %d, want 4", got)
	}
	for _, ev := range events {
		if ev.Detail["reason"] != "spill-pressure" {
			t.Fatalf("reason %v, want spill-pressure", ev.Detail["reason"])
		}
	}
}
