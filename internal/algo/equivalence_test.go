package algo

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/comm/tcpcomm"
	"sdssort/internal/workload"
)

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// eqInput generates one rank's shard of a named equivalence workload.
type eqInput struct {
	name string
	gen  func(rank, p, perRank int) []float64
}

func presetGen(t testing.TB, name string) func(seed int64, n int) []float64 {
	t.Helper()
	pre, ok := workload.LookupPreset(name)
	if !ok {
		t.Fatalf("preset %q missing", name)
	}
	return pre.Gen
}

// eqInputs covers the issue's matrix: uniform, skewed, duplicate-heavy,
// and zero-length-per-rank shards (both some-empty and globally empty).
func eqInputs(t testing.TB) []eqInput {
	return []eqInput{
		{"uniform", func(rank, p, perRank int) []float64 {
			return presetGen(t, "uniform")(7+int64(rank)*613, perRank)
		}},
		{"zipf", func(rank, p, perRank int) []float64 {
			return presetGen(t, "zipf")(7+int64(rank)*613, perRank)
		}},
		{"dup", func(rank, p, perRank int) []float64 {
			return presetGen(t, "dup")(7+int64(rank)*613, perRank)
		}},
		{"allequal", func(rank, p, perRank int) []float64 {
			return presetGen(t, "allequal")(7+int64(rank)*613, perRank)
		}},
		{"empty-ranks", func(rank, p, perRank int) []float64 {
			if rank%2 == 1 {
				return nil
			}
			return presetGen(t, "zipf")(7+int64(rank)*613, perRank)
		}},
		{"all-empty", func(rank, p, perRank int) []float64 {
			return nil
		}},
	}
}

// reference returns the expected global output: every shard pooled and
// sorted ascending. float64 keys carry no payload, so any correct sort's
// concatenated output must match it byte for byte.
func reference(p, perRank int, gen func(rank, p, perRank int) []float64) []float64 {
	var all []float64
	for r := 0; r < p; r++ {
		all = append(all, gen(r, p, perRank)...)
	}
	sort.Float64s(all)
	return all
}

// checkEquivalent asserts the per-rank blocks concatenate to exactly the
// reference sequence.
func checkEquivalent(t *testing.T, outs [][]float64, want []float64) {
	t.Helper()
	var got []float64
	for _, blk := range outs {
		got = append(got, blk...)
	}
	if len(got) != len(want) {
		t.Fatalf("output has %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func sortInproc(name string, p, perRank int, gen func(rank, p, perRank int) []float64) ([][]float64, error) {
	drv, err := New[float64](name)
	if err != nil {
		return nil, err
	}
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	return cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]float64, error) {
		return drv.Sort(context.Background(), c, gen(c.Rank(), p, perRank), codec.Float64{}, cmpF64, DefaultOptions())
	})
}

// sortTCP runs the same collective sort with every rank on its own
// localhost TCP transport, the multi-process wire path.
func sortTCP(name string, p, perRank int, gen func(rank, p, perRank int) []float64) ([][]float64, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	registry := ln.Addr().String()
	ln.Close()

	outs := make([][]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := tcpcomm.New(tcpcomm.Config{
				Rank: rank, Size: p, Node: rank,
				Registry: registry, Timeout: 30 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer tr.Close()
			c := comm.New(tr)
			drv, err := New[float64](name)
			if err != nil {
				errs[rank] = err
				return
			}
			out, err := drv.Sort(context.Background(), c, gen(rank, p, perRank), codec.Float64{}, cmpF64, DefaultOptions())
			if err != nil {
				errs[rank] = err
				return
			}
			outs[rank] = out
			errs[rank] = c.Barrier()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return outs, nil
}

// TestDriverEquivalenceInproc: every built-in driver produces the exact
// reference sequence on every equivalence workload, over the in-process
// fabric. p=8 keeps ams genuinely multi-level (k=4 → two levels).
func TestDriverEquivalenceInproc(t *testing.T) {
	const p, perRank = 8, 3000
	for _, in := range builtins {
		for _, input := range eqInputs(t) {
			t.Run(in.Name+"/"+input.name, func(t *testing.T) {
				want := reference(p, perRank, input.gen)
				outs, err := sortInproc(in.Name, p, perRank, input.gen)
				if err != nil {
					t.Fatal(err)
				}
				checkEquivalent(t, outs, want)
			})
		}
	}
}

// TestDriverEquivalenceTCP repeats the matrix over localhost TCP at a
// smaller size: the wire path must not change a single byte either.
func TestDriverEquivalenceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP matrix is slow in -short mode")
	}
	const p, perRank = 4, 1200
	for _, in := range builtins {
		for _, input := range eqInputs(t) {
			t.Run(in.Name+"/"+input.name, func(t *testing.T) {
				want := reference(p, perRank, input.gen)
				outs, err := sortTCP(in.Name, p, perRank, input.gen)
				if err != nil {
					t.Fatal(err)
				}
				checkEquivalent(t, outs, want)
			})
		}
	}
}

// TestDriverStableRejected: drivers without the Stable capability must
// reject a stable request instead of silently dropping the property.
func TestDriverStableRejected(t *testing.T) {
	const p, perRank = 4, 500
	gen := func(rank, p, perRank int) []float64 {
		return presetGen(t, "uniform")(int64(rank), perRank)
	}
	for _, in := range builtins {
		if in.Caps.Stable {
			continue
		}
		t.Run(in.Name, func(t *testing.T) {
			drv, err := New[float64](in.Name)
			if err != nil {
				t.Fatal(err)
			}
			topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
			_, err = cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]float64, error) {
				opt := DefaultOptions()
				opt.Core.Stable = true
				return drv.Sort(context.Background(), c, gen(c.Rank(), p, perRank), codec.Float64{}, cmpF64, opt)
			})
			if err == nil {
				t.Fatalf("driver %q accepted a stable sort it cannot honour", in.Name)
			}
		})
	}
}
