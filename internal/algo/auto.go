package algo

import (
	"context"
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/pivots"
)

// autoSamplePerRank bounds the profiling sample: the profile must stay
// far cheaper than any sort it steers.
const autoSamplePerRank = 64

// autoDriver extends the paper's τm/τo/τs adaptivity one level up, to
// the algorithm itself: it profiles a cheap all-gathered sample of the
// input (duplicate mass, dataset size, spill pressure) and dispatches
// to the driver the decision rule in choose predicts will win. The
// resolved driver records itself in Options.Selection; the decision and
// its inputs are traced as "algo.selected".
type autoDriver[T any] struct{}

func (autoDriver[T]) Info() Info {
	in, _ := Lookup(NameAuto)
	return in
}

func (autoDriver[T]) Sort(ctx context.Context, c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pr, err := profileSample(c, data, cd, cmp, opt)
	if err != nil {
		return nil, fmt.Errorf("algo: auto profile: %w", err)
	}
	choice, reason := choose(pr, c.Size(), int(cd.Size()), opt)
	opt.tracer().Emit(c.Rank(), "algo.selected", map[string]any{
		"algo": choice, "reason": reason,
		"dup_ratio": pr.dupRatio, "distinct": pr.distinct,
		"sample": pr.sample, "records": pr.total,
		"p": c.Size(), "rec_size": int(cd.Size()),
		"spill_pressure": pr.pressure,
	})
	d, err := New[T](choice)
	if err != nil {
		return nil, err
	}
	return d.Sort(ctx, c, data, cd, cmp, opt)
}

// profile is what the decision rule sees. Every field derives from
// all-gathered or all-reduced state, so the choice it feeds is
// identical on every rank — divergent choices would deadlock the
// collectives of the dispatched driver.
type profile struct {
	sample   int     // pooled sample size
	dupRatio float64 // heaviest key's share of the pooled sample
	distinct int     // distinct values in the pooled sample
	total    int64   // global record count
	pressure bool    // some rank is short on budget (or spill is forced)
}

func profileSample[T any](c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) (profile, error) {
	var pr profile
	// Stride-sample the (still unsorted) input and pool across ranks.
	n := len(data)
	local := make([]T, 0, autoSamplePerRank)
	if n > 0 {
		stride := n / autoSamplePerRank
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < n && len(local) < autoSamplePerRank; i += stride {
			local = append(local, data[i])
		}
	}
	pool, err := pivots.ShareCandidates(c, local, cd, cmp)
	if err != nil {
		return pr, err
	}
	pr.sample = len(pool)
	// The longest equal run of the sorted pool estimates the heaviest
	// key's mass — the quantity that decides whether a duplicate-
	// oblivious partition collapses.
	run, longest := 1, 0
	for i := 1; i < len(pool); i++ {
		if cmp(pool[i-1], pool[i]) == 0 {
			run++
			continue
		}
		if run > longest {
			longest = run
		}
		pr.distinct++
		run = 1
	}
	if len(pool) > 0 {
		if run > longest {
			longest = run
		}
		pr.distinct++
		pr.dupRatio = float64(longest) / float64(len(pool))
	}
	pr.total, err = c.AllreduceInt64(int64(n), func(a, b int64) int64 { return a + b })
	if err != nil {
		return pr, err
	}

	// Spill pressure is voted collectively: divergent local budgets
	// must not send ranks down different drivers.
	want := int64(0)
	if sp := opt.Core.Spill; sp != nil && sp.Force {
		want = 1
	}
	if g := opt.Core.Mem; g.Budget() > 0 {
		// The resident exchange peaks near input + receive (+ staging):
		// under ~2.5× the local bytes of headroom, sds — spill-native
		// and skew-tolerant — is the only driver that degrades
		// gracefully instead of dying of OOM.
		if g.Budget()-g.Used() < 5*int64(n)*int64(cd.Size())/2 {
			want = 1
		}
	}
	vote, err := c.AllreduceInt64(want, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
	if err != nil {
		return pr, err
	}
	pr.pressure = vote > 0
	return pr, nil
}

// dupThreshold is the duplicate-ratio cut above which the duplicate-
// oblivious drivers are avoided: 1% of the pooled sample, or two sample
// hits when the pool is small enough that one repeated value is noise.
func dupThreshold(sample int) float64 {
	thr := 0.01
	if sample > 0 {
		if t := 2.0 / float64(sample); t > thr {
			thr = t
		}
	}
	return thr
}

// choose is the documented decision rule (docs/INTERNALS.md):
//
//  1. stable or checkpointed runs → sds: the only driver with the
//     capabilities.
//  2. spill pressure → sds: spill-native and skew-tolerant.
//  3. duplicate-heavy sample → sds: the duplicate-oblivious partitions
//     (hss, ams, hyksort, psrs) concentrate equal keys on one rank.
//  4. large worlds with narrow records → ams: O(log_k p) exchange
//     levels beat one p-wide all-to-all of small messages.
//  5. otherwise → hss: near-exact cuts from the smallest sample volume.
func choose(pr profile, p, recSize int, opt Options) (name, reason string) {
	if opt.Core.Stable || opt.Core.Checkpoint != nil {
		return NameSDS, "capabilities"
	}
	if pr.pressure {
		return NameSDS, "spill-pressure"
	}
	if pr.sample > 0 && pr.dupRatio >= dupThreshold(pr.sample) {
		return NameSDS, "duplicates"
	}
	if p >= 64 && recSize <= 16 {
		return NameAMS, "scale"
	}
	return NameHSS, "uniform"
}
