// Package algo is the pluggable algorithm layer: every distributed sort
// in the tree — SDS-Sort and the competitor baselines — sits behind one
// Driver contract, so front ends, experiments and benchmarks select an
// algorithm by registry name (or let the runtime profile the data and
// pick one, see the auto driver) instead of hand-wiring each package's
// option struct. All drivers route their data exchange through
// core.ExchangeSorted, which carries the staged/zero-copy collectives,
// memory-budget accounting and the out-of-core spill tier; the layer
// therefore compares algorithms, not plumbing.
package algo

import (
	"context"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
)

// Capabilities declares what a driver can honour. Front ends check them
// before dispatch (e.g. -stable with a driver that cannot keep it is an
// error, not a silent downgrade).
type Capabilities struct {
	// Stable: duplicate keys keep their global input order.
	Stable bool
	// Spill: the exchange can divert through the out-of-core tier.
	Spill bool
	// Checkpoint: phase-checkpointed recovery is supported.
	Checkpoint bool
}

// Info identifies a registered driver.
type Info struct {
	Name  string
	About string
	Caps  Capabilities
}

// Options carries the cross-driver tunables. Drivers map the fields
// they understand onto their own knobs and ignore the rest; zero values
// mean "driver default".
type Options struct {
	// Core carries the shared tunables every driver consumes through
	// core.ExchangeSorted — Mem, StageBytes, Spill, Exchange, Timer,
	// Trace, Cores — plus the SDS-Sort-specific ones (τm/τo/τs, Stable,
	// Checkpoint) that only the sds driver honours in full.
	Core core.Options
	// K is the splitting arity of the multi-way drivers (hyksort: 128,
	// ams: 4 when zero).
	K int
	// HistogramRounds bounds splitter-refinement iterations (hyksort: 3,
	// hss: 8 when zero).
	HistogramRounds int
	// Epsilon is hss's splitter tolerance: a splitter is accepted once
	// its global rank is within Epsilon·N/p of the ideal cut (0.05 when
	// zero).
	Epsilon float64
	// Selection, when non-nil, counts which driver each sort actually
	// ran (the resolved choice under auto).
	Selection *metrics.AlgoStats
}

// DefaultOptions returns the shared defaults; per-driver knobs stay at
// their zero values and resolve inside each driver.
func DefaultOptions() Options {
	return Options{Core: core.DefaultOptions()}
}

// record notes the driver that actually ran. Concrete drivers call it;
// the auto driver does not, so a resolved choice is counted once.
func (o Options) record(name string) { o.Selection.Selected(name) }

func (o Options) cores() int {
	if o.Core.Cores < 1 {
		return 1
	}
	return o.Core.Cores
}

func (o Options) tracer() trace.Tracer {
	if o.Core.Trace != nil {
		return o.Core.Trace
	}
	return trace.Nop{}
}

// rootSpan opens the driver-level "sort" root span for the drivers that
// do not delegate to core.Sort (which opens its own root). The returned
// Options carry the child scope in Core.Span, so every span the shared
// exchange opens nests under this root and the critical-path analyzer
// sees one tree per sort regardless of algorithm. Callers close the
// span on success with their record count and defer a bare End as the
// error-path net (End is idempotent). Free when tracing is off.
func (o Options) rootSpan(name string, rank, records, p int) (*trace.Span, Options) {
	sp := trace.StartSpan(o.tracer(), rank, o.Core.Span, "sort", map[string]any{
		"algo": name, "records": records, "p": p,
	})
	if sp != nil {
		o.Core.Span = sp.Scope()
	}
	return sp, o
}

// timer returns the configured phase timer or a throwaway, and the
// core options with that timer installed so driver-local phases and the
// shared exchange accrue on the same clock.
func (o Options) timer() (*metrics.PhaseTimer, core.Options) {
	tm := o.Core.Timer
	if tm == nil {
		tm = metrics.NewPhaseTimer()
	}
	c := o.Core
	c.Timer = tm
	return tm, c
}

// Driver is one distributed sort algorithm. Sort is collective: every
// rank of c calls it with its local slice (which the driver may
// reorder) and receives its block of the globally sorted output, rank
// order = value order. Cancellation via ctx is checked at phase
// boundaries, not mid-collective.
type Driver[T any] interface {
	Info() Info
	Sort(ctx context.Context, c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error)
}

// ledger tracks the bytes a driver holds against the shared gauge so a
// single deferred release settles every exit path. core.ExchangeSorted
// adopts the holding: on its success the ledger must be reset to the
// output size, on its failure to zero.
type ledger struct {
	g    *memlimit.Gauge
	held int64
}

func (l *ledger) reserve(n int64) error {
	if err := l.g.Reserve(n); err != nil {
		return err
	}
	l.held += n
	return nil
}

func (l *ledger) releaseAll() {
	l.g.Release(l.held)
	l.held = 0
}
