package algo

import (
	"context"
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/hyksort"
	"sdssort/internal/psrs"
)

// errStable rejects a stable request on a driver whose partition cannot
// keep input order. An explicit error beats a silent downgrade: the
// caller asked for a property the output would not have.
func errStable(name string) error {
	return fmt.Errorf("algo: driver %q does not support stable sorting", name)
}

// errCheckpoint likewise rejects checkpointed recovery on drivers
// without phase snapshots.
func errCheckpoint(name string) error {
	return fmt.Errorf("algo: driver %q does not support checkpointing", name)
}

// reject enforces the capability gates shared by every non-sds driver.
func reject(name string, opt Options) error {
	if opt.Core.Stable {
		return errStable(name)
	}
	if opt.Core.Checkpoint != nil {
		return errCheckpoint(name)
	}
	return nil
}

// hykDriver adapts the HykSort baseline to the driver contract.
type hykDriver[T any] struct{}

func (hykDriver[T]) Info() Info {
	in, _ := Lookup(NameHyk)
	return in
}

func (hykDriver[T]) Sort(ctx context.Context, c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := reject(NameHyk, opt); err != nil {
		return nil, err
	}
	opt.record(NameHyk)
	rsp, opt := opt.rootSpan(NameHyk, c.Rank(), len(data), c.Size())
	defer rsp.End(map[string]any{"reason": "error"})
	h := hyksort.DefaultOptions()
	if opt.K > 0 {
		h.K = opt.K
	}
	if opt.HistogramRounds > 0 {
		h.HistogramRounds = opt.HistogramRounds
	}
	h.Cores = opt.Core.Cores
	h.Mem = opt.Core.Mem
	h.Timer = opt.Core.Timer
	h.StageBytes = opt.Core.StageBytes
	h.Exchange = opt.Core.Exchange
	h.Spill = opt.Core.Spill
	h.Trace = opt.Core.Trace
	h.Span = opt.Core.Span
	h.Skew = opt.Core.Skew
	out, err := hyksort.Sort(c, data, cd, cmp, h)
	if err != nil {
		return nil, err
	}
	rsp.End(map[string]any{"records": len(out)})
	return out, nil
}

// psrsDriver adapts the PSRS baseline to the driver contract.
type psrsDriver[T any] struct{}

func (psrsDriver[T]) Info() Info {
	in, _ := Lookup(NamePSRS)
	return in
}

func (psrsDriver[T]) Sort(ctx context.Context, c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := reject(NamePSRS, opt); err != nil {
		return nil, err
	}
	opt.record(NamePSRS)
	rsp, opt := opt.rootSpan(NamePSRS, c.Rank(), len(data), c.Size())
	defer rsp.End(map[string]any{"reason": "error"})
	ps := psrs.Options{
		Cores:      opt.Core.Cores,
		Mem:        opt.Core.Mem,
		Timer:      opt.Core.Timer,
		StageBytes: opt.Core.StageBytes,
		Exchange:   opt.Core.Exchange,
		Spill:      opt.Core.Spill,
		Trace:      opt.Core.Trace,
		Span:       opt.Core.Span,
		Skew:       opt.Core.Skew,
	}
	out, err := psrs.Sort(c, data, cd, cmp, ps)
	if err != nil {
		return nil, err
	}
	rsp.End(map[string]any{"records": len(out)})
	return out, nil
}
