package algo

import (
	"context"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/workload"
)

// BenchmarkAlgoCompare races the drivers on the skew workload the layer
// exists to arbitrate: Zipf α=1.4 keys (δ≈32% duplicates). It runs in
// the bench-json lane under the benchdiff ratchet, so a regression in
// any driver's end-to-end path — partition, exchange, merge — trips CI.
func BenchmarkAlgoCompare(b *testing.B) {
	const p, perRank = 4, 20000
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	pre, ok := workload.LookupPreset("zipf")
	if !ok {
		b.Fatal("zipf preset missing")
	}
	base := make([][]float64, p)
	for r := range base {
		base[r] = pre.Gen(17+int64(r)*613, perRank)
	}
	for _, name := range []string{NameSDS, NameHSS, NameAMS, NameHyk} {
		b.Run(name, func(b *testing.B) {
			drv, err := New[float64](name)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(p * perRank * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]float64, error) {
					// Drivers reorder their input; hand each run a copy.
					data := append([]float64(nil), base[c.Rank()]...)
					return drv.Sort(context.Background(), c, data, codec.Float64{}, cmpF64, DefaultOptions())
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
