package algo

import (
	"context"
	"strings"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
)

func TestRegistryNamesAndLookup(t *testing.T) {
	names := Names()
	wantOrder := []string{NameSDS, NameHSS, NameAMS, NameHyk, NamePSRS, NameAuto}
	if len(names) < len(wantOrder) {
		t.Fatalf("got %d names, want at least %d", len(names), len(wantOrder))
	}
	for i, w := range wantOrder {
		if names[i] != w {
			t.Fatalf("names[%d] = %q, want %q (display order)", i, names[i], w)
		}
	}
	for _, w := range wantOrder {
		in, ok := Lookup(w)
		if !ok {
			t.Fatalf("Lookup(%q) missing", w)
		}
		if in.Name != w || in.About == "" {
			t.Fatalf("Lookup(%q) = %+v", w, in)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestRegistryCapabilities(t *testing.T) {
	for _, in := range builtins {
		wantFull := in.Name == NameSDS || in.Name == NameAuto
		if (in.Caps.Stable && in.Caps.Checkpoint) != wantFull {
			t.Errorf("%s: caps %+v, full-capability should be %v", in.Name, in.Caps, wantFull)
		}
		if !in.Caps.Spill {
			t.Errorf("%s: every driver exchanges through the spill-capable path", in.Name)
		}
	}
}

func TestUnknownErrorListsDrivers(t *testing.T) {
	_, err := New[float64]("not-a-driver")
	if err == nil {
		t.Fatal("unknown driver constructed")
	}
	ue, ok := err.(*UnknownError)
	if !ok {
		t.Fatalf("got %T, want *UnknownError", err)
	}
	msg := ue.Error()
	for _, name := range []string{NameSDS, NameHSS, NameAMS, NameHyk, NamePSRS, NameAuto} {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list %q", msg, name)
		}
	}
}

// extDriver is a minimal external registration used to exercise the
// boxed-factory path.
type extDriver struct{ info Info }

func (d extDriver) Info() Info { return d.info }
func (d extDriver) Sort(ctx context.Context, c *comm.Comm, data []float64, cd codec.Codec[float64], cmp func(a, b float64) int, opt Options) ([]float64, error) {
	return data, nil
}

func TestExternalRegistration(t *testing.T) {
	info := Info{Name: "ext-test", About: "test-only driver", Caps: Capabilities{}}
	if err := Register(info, func() Driver[float64] { return extDriver{info: info} }); err != nil {
		t.Fatal(err)
	}
	if err := Register(info, func() Driver[float64] { return extDriver{info: info} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register(Info{}, func() Driver[float64] { return extDriver{} }); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, ok := Lookup("ext-test"); !ok {
		t.Fatal("external driver not listed")
	}
	d, err := New[float64]("ext-test")
	if err != nil {
		t.Fatal(err)
	}
	if d.Info().Name != "ext-test" {
		t.Fatalf("constructed %q", d.Info().Name)
	}
	// Registered for float64 only: another record type must fail with a
	// type error, not a panic.
	if _, err := New[int64]("ext-test"); err == nil {
		t.Fatal("external driver constructed for an unregistered record type")
	}
}
