package algo

import (
	"context"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
)

// sdsDriver wraps core.Sort, the paper's skew-aware sample sort. The
// full core.Options pass through: stable mode, the τ thresholds,
// checkpointed recovery and the spill tier are all honoured.
type sdsDriver[T any] struct{}

func (sdsDriver[T]) Info() Info {
	in, _ := Lookup(NameSDS)
	return in
}

func (sdsDriver[T]) Sort(ctx context.Context, c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt.record(NameSDS)
	return core.Sort(c, data, cd, cmp, opt.Core)
}
