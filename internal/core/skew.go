package core

import (
	"fmt"

	"sdssort/internal/comm"
	"sdssort/internal/trace"
)

// observeSkew measures one phase's per-rank load geometry: every rank
// contributes its load, the vector is allgathered, and each rank
// records the resulting load-imbalance factor on opt.Skew and (rank 0
// only, to keep the trace single-voiced) emits a skew.phase event.
// A nil opt.Skew makes it free — and non-collective, which is why the
// Skew option must agree across ranks.
func observeSkew(wc *comm.Comm, phase string, load int64, opt Options, tr trace.Tracer, rank int) error {
	if opt.Skew == nil {
		return nil
	}
	loads, err := wc.AllgatherInt64(load)
	if err != nil {
		return fmt.Errorf("core: %s skew gather: %w", phase, err)
	}
	o := opt.Skew.Observe(phase, loads, rank)
	if rank == 0 && o.Ranks > 0 {
		tr.Emit(rank, "skew.phase", map[string]any{
			"phase": phase, "ranks": o.Ranks,
			"max": int64(o.Max), "mean": o.Mean, "max_rank": o.MaxRank,
			"imbalance": o.Imbalance, "stragglers": o.Stragglers,
		})
	}
	return nil
}

// histogramDetail renders the per-destination partition histogram —
// how many records this rank sends to each destination — for the
// partition.histogram trace event. The histogram is genuinely
// per-rank data, so every rank emits its own.
func histogramDetail(scounts []int) map[string]any {
	sent := make([]int64, len(scounts))
	var total int64
	for i, c := range scounts {
		sent[i] = int64(c)
		total += int64(c)
	}
	return map[string]any{"sent": sent, "records": total, "dests": len(scounts)}
}
