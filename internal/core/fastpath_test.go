package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/metrics"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
)

// TestSortZeroCopyMatchesMarshal: the zero-copy exchange is a pure
// acceleration, so with the same input and the same local ordering the
// outputs of the zero-copy and the marshal exchange must be identical
// record for record — across the sync-merge, sync-resort, overlap and
// staged shapes. Radix dispatch is disabled on both sides so the only
// difference under test is the exchange encoding.
func TestSortZeroCopyMatchesMarshal(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	configs := []struct {
		name string
		opt  Options
		// The overlap exchange consumes chunks in arrival order, so
		// the placement of equal keys varies run to run even within one
		// encoding path; for it both runs are checked for sorted
		// permutations instead of record-for-record equality.
		exact bool
	}{
		{"sync-merge", func() Options { o := DefaultOptions(); o.TauO = 0; o.TauS = 1 << 20; o.TauM = 0; return o }(), true},
		{"sync-resort", func() Options { o := DefaultOptions(); o.TauO = 0; o.TauS = 1; o.TauM = 0; return o }(), true},
		{"overlap", func() Options { o := DefaultOptions(); o.TauO = 1 << 20; o.TauM = 0; return o }(), false},
	}
	for _, cfg := range configs {
		for _, stage := range []int64{0, 100} {
			t.Run(fmt.Sprintf("%s/stage%d", cfg.name, stage), func(t *testing.T) {
				in := makeTagged(topo.Size(), 400, zipfGen(63, 1.2))
				opt := cfg.opt
				opt.StageBytes = stage
				opt.DisableRadixDispatch = true
				opt.Exchange = &metrics.ExchangeStats{}
				fast := runSort(t, topo, in, opt)
				checkSorted(t, in, fast, false)
				if !opt.Exchange.ZeroCopyUsed() {
					t.Fatal("zero-copy-capable codec took the marshal path")
				}
				opt.DisableZeroCopy = true
				opt.Exchange = &metrics.ExchangeStats{}
				slow := runSort(t, topo, in, opt)
				if opt.Exchange.ZeroCopyUsed() {
					t.Fatal("DisableZeroCopy did not disable the fast path")
				}
				if cfg.exact {
					equalOutputs(t, slow, fast, cfg.name)
				} else {
					checkSorted(t, in, slow, false)
				}
			})
		}
	}
}

// TestSortNonZeroCopyCodecFallsBack runs the staged exchange with a
// Funcs codec that does not declare zero copy: the sort must fall back
// to the marshal path (2x staging window, zero bytes through the
// zero-copy counters) and still produce sorted output.
func TestSortNonZeroCopyCodecFallsBack(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	plain := codec.Funcs[codec.Tagged]{
		Width:     16,
		MarshalFn: codec.TaggedCodec{}.Marshal,
		UnmarshFn: codec.TaggedCodec{}.Unmarshal,
	}
	if codec.IsZeroCopy[codec.Tagged](plain) {
		t.Fatal("test premise broken: Funcs without ZeroCopyOK qualified")
	}
	in := makeTagged(topo.Size(), 300, zipfGen(71, 1.3))
	const stage = 96
	opt := DefaultOptions()
	opt.TauM = 0
	opt.TauO = 0
	opt.StageBytes = stage
	opt.Exchange = &metrics.ExchangeStats{}
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		return Sort(c, local, plain, codec.CompareTagged, opt)
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, out, false)
	if opt.Exchange.ZeroCopyUsed() {
		t.Fatal("non-zero-copy codec moved bytes through the zero-copy path")
	}
	if got, want := opt.Exchange.PeakStagingReserved.Load(), 2*effStage(stage, 16); got != want {
		t.Fatalf("peak staging %d, want the marshal path's 2x window %d", got, want)
	}
}

// TestRadixDispatchComparatorFallback: the LSD dispatch orders by the
// codec's integer key, so a user comparator that disagrees (reverse
// order here) must be detected by the post-sort verification sweep and
// the comparison sort must win. The sorted-output check is the whole
// point: before the sweep a reversed comparator would silently return
// ascending data.
func TestRadixDispatchComparatorFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(rng.Uint64())
	}
	reverse := func(a, b int64) int {
		switch {
		case a > b:
			return -1
		case a < b:
			return 1
		}
		return 0
	}
	if radix.DispatchLocal(data, codec.Int64{}, reverse) {
		t.Fatal("dispatch claimed success against a disagreeing comparator")
	}
	// The core sort path must recover end to end.
	out, err := cluster.Gather(cluster.Topology{Nodes: 1, CoresPerNode: 1}, cluster.Options{}, func(c *comm.Comm) ([]int64, error) {
		local := append([]int64(nil), data...)
		return Sort(c, local, codec.Int64{}, reverse, DefaultOptions())
	})
	if err != nil {
		t.Fatal(err)
	}
	if !psort.IsSorted(out[0], reverse) {
		t.Fatal("sort with a reverse comparator did not produce descending output")
	}

	// And with the agreeing comparator the dispatch must fire and agree
	// with the comparison sort exactly.
	asc := append([]int64(nil), data...)
	if !radix.DispatchLocal(asc, codec.Int64{}, cmpInt64) {
		t.Fatal("dispatch refused an agreeing comparator")
	}
	ref := append([]int64(nil), data...)
	psort.Sort(ref, cmpInt64)
	for i := range ref {
		if asc[i] != ref[i] {
			t.Fatalf("radix and comparison sorts disagree at %d: %d vs %d", i, asc[i], ref[i])
		}
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// BenchmarkLocalSortIntKeys is the issue's local-ordering acceptance
// benchmark: the LSD radix dispatch against the comparison sort on
// integer keys — the fast path must win.
func BenchmarkLocalSortIntKeys(b *testing.B) {
	const n = 1 << 17
	src := make([]int64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = int64(rng.Uint64())
	}
	data := make([]int64, n)
	b.Run("radix", func(b *testing.B) {
		b.SetBytes(8 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(data, src)
			if !radix.DispatchLocal(data, codec.Int64{}, cmpInt64) {
				b.Fatal("dispatch refused int64 keys")
			}
		}
	})
	b.Run("comparison", func(b *testing.B) {
		b.SetBytes(8 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(data, src)
			psort.Sort(data, cmpInt64)
		}
	})
}
