// Package core implements the SDS-Sort algorithm (Fig. 1 of the paper):
// skew-aware sample sort over a communicator, with adaptive node-level
// merging (τm), adaptive overlap of the all-to-all exchange with local
// ordering (τo), adaptive merge-versus-sort local ordering (τs), and an
// optional stable mode that preserves the input order of duplicate keys
// without secondary sorting keys.
package core

import (
	"fmt"

	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
)

// PivotMethod selects how the p-1 global pivots are chosen (§2.4).
type PivotMethod int

const (
	// PivotRegular is the paper's default: regular (equal-stripe)
	// sampling of local pivots, ordered with a distributed bitonic
	// sort, global pivots taken at equal stride. Handles duplicated
	// pivots naturally — the skew-aware partition wants to see them.
	PivotRegular PivotMethod = iota
	// PivotHistogram selects pivots by iterative histogram refinement
	// (HykSort's method). It converges to balanced ranks on distinct
	// keys but cannot separate duplicates; combined with the
	// skew-aware partition it remains correct, making it an ablation
	// point rather than a failure mode.
	PivotHistogram
)

// Options carries the paper's tunables. The zero value is not useful;
// start from DefaultOptions.
type Options struct {
	// Stable requests a stable sort: duplicate keys keep their global
	// input order (by rank, then by local position). Stability forces
	// the synchronous exchange path, as in the paper.
	Stable bool

	// Cores is the number of goroutines each rank may use for local
	// sorting and merging — the paper's c, cores per node. In an
	// in-process cluster the ranks already parallelise across CPUs, so
	// 1 is the honest default; real deployments set it to the node's
	// core count.
	Cores int

	// TauM is the node-level merging threshold in bytes: when the
	// average all-to-all message (local bytes / p) is at most TauM,
	// data is first merged onto each node's leader rank so fewer,
	// larger messages hit the network (§2.3). Zero disables merging.
	TauM int64

	// TauO is the overlap threshold: when the communicator is smaller
	// than TauO (and the sort is not stable), the exchange overlaps
	// with local ordering via asynchronous receives (§2.6).
	TauO int

	// TauS is the local-ordering threshold: with fewer than TauS
	// processes the received chunks are k-way merged; with more, they
	// are re-sorted, which is cheaper for large p (§2.7).
	TauS int

	// RunThreshold is the average run length above which the local
	// sort treats data as partially ordered and merges its natural
	// runs instead of sorting (§2.2/§2.7). Zero disables detection.
	RunThreshold float64

	// Mem, when non-nil, emulates the rank's memory budget: the input,
	// the receive buffer of the exchange and the staging window are all
	// reserved against it, and the sort fails with
	// memlimit.ErrOutOfMemory when the budget is exceeded — the failure
	// mode the paper observes for HykSort. Everything a Sort call
	// reserves is released by the time it returns, on every path.
	Mem *memlimit.Gauge

	// StageBytes bounds the staging window of the all-to-all data
	// exchange: partitions are encoded chunk-by-chunk into pooled
	// buffers of at most this many bytes (rounded down to whole
	// records) and arriving chunks are decoded incrementally, so the
	// exchange's memory beyond input and receive buffers is ~2×
	// StageBytes instead of an encoded copy of the working set. Zero
	// keeps the legacy monolithic exchange.
	StageBytes int64

	// Exchange, when non-nil, accrues staged-exchange counters (bytes
	// staged, peak staging reservation, buffer-pool hit rate). May be
	// shared across ranks; the counters are atomic.
	Exchange *metrics.ExchangeStats

	// Timer, when non-nil, accrues per-phase wall time in the
	// categories of the paper's Figs. 9-10.
	Timer *metrics.PhaseTimer

	// Pivots selects the global pivot selection method.
	Pivots PivotMethod

	// Trace, when non-nil, receives structured events: adaptive
	// decisions taken, exchange volumes, partition summaries, and the
	// span.begin/span.end pairs that delimit the sort and its phases.
	Trace trace.Tracer

	// Span is the ambient span scope this sort runs under — the
	// engine's per-job root span, a supervisor epoch span. The sort's
	// own root span becomes a child of it; the zero value makes the
	// sort a trace root.
	Span trace.Scope

	// Skew, when non-nil, accrues per-phase load-imbalance gauges and
	// straggler counters (sds_phase_imbalance_max_mean,
	// sds_phase_straggler_total) and emits skew.phase trace events.
	// Setting it adds one small allgather per observed phase, which is
	// COLLECTIVE: like Spill, it must be nil or non-nil uniformly
	// across the ranks of a job, or the world deadlocks on the first
	// observation. May be shared across ranks; the counters are atomic.
	Skew *metrics.SkewStats

	// Checkpoint, when non-nil with a Store, snapshots each rank's data
	// at the phase boundaries (local sort, partition, exchange) and can
	// resume from a previously committed cut; see Checkpointing and
	// internal/checkpoint. Nil disables checkpointing entirely.
	Checkpoint *Checkpointing

	// Spill, when non-nil, enables the out-of-core spill tier: a
	// receive side that does not fit Mem (or Spill.Force) streams to
	// per-source run files merged lazily at output, and SortStream
	// becomes available for inputs larger than the budget. Must agree
	// across ranks — the spill decision is collective. See SpillOptions.
	Spill *SpillOptions

	// DisableZeroCopy forces the exchange through the generic marshal
	// path — encode into pooled buffers, decode record by record —
	// even for zero-copy-capable codecs. Benchmark/ablation knob: the
	// wire bytes and the output are identical either way.
	DisableZeroCopy bool

	// DisableRadixDispatch keeps local ordering on the comparison
	// sorts even for integer-keyed codecs. Benchmark/ablation knob.
	DisableRadixDispatch bool

	// DisableSkewAware replaces the skew-aware partition with the
	// classical plain upper-bound partition (every record equal to a
	// pivot goes below it). Output remains correct but duplicates
	// concentrate, reverting the load bound from O(4N/p) to the
	// skew-degraded classical behaviour — the ablation that isolates
	// the paper's core contribution. Ignored in stable mode, which has
	// no non-skew-aware formulation.
	DisableSkewAware bool
}

// DefaultOptions returns laptop-scale defaults; the τ values are the
// knees measured by the Fig. 5 experiments on this substrate (the paper
// measured 160MB / 4096 / 4000 on Edison).
func DefaultOptions() Options {
	return Options{
		Cores:        1,
		TauM:         4 << 10,
		TauO:         32,
		TauS:         64,
		RunThreshold: 32,
	}
}

// Validate reports option errors early.
func (o Options) Validate() error {
	if o.Cores < 0 {
		return fmt.Errorf("core: negative Cores %d", o.Cores)
	}
	if o.TauM < 0 {
		return fmt.Errorf("core: negative TauM %d", o.TauM)
	}
	if o.TauO < 0 || o.TauS < 0 {
		return fmt.Errorf("core: negative thresholds TauO=%d TauS=%d", o.TauO, o.TauS)
	}
	if o.StageBytes < 0 {
		return fmt.Errorf("core: negative StageBytes %d", o.StageBytes)
	}
	if sp := o.Spill; sp != nil {
		if sp.ChunkRecords < 0 || sp.MaxFanIn < 0 || sp.BufBytes < 0 {
			return fmt.Errorf("core: negative spill knob (ChunkRecords=%d MaxFanIn=%d BufBytes=%d)",
				sp.ChunkRecords, sp.MaxFanIn, sp.BufBytes)
		}
	}
	return nil
}

func (o Options) cores() int {
	if o.Cores < 1 {
		return 1
	}
	return o.Cores
}

// timer returns the configured timer or a throwaway one, so the sort
// code never branches on nil.
func (o Options) timer() *metrics.PhaseTimer {
	if o.Timer != nil {
		return o.Timer
	}
	return metrics.NewPhaseTimer()
}

func (o Options) tracer() trace.Tracer {
	if o.Trace != nil {
		return o.Trace
	}
	return trace.Nop{}
}
