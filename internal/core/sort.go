package core

import (
	"fmt"

	"sdssort/internal/checkpoint"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/trace"
)

// User tags for the sort's point-to-point traffic. The collectives
// (alltoall, allgather, …) use the comm package's reserved tag space.
const (
	tagExchange  = 1 // overlapped all-to-all data
	tagNodeMerge = 2 // node-level merge gather
)

// Sort runs SDS-Sort collectively: every rank of c calls it with its
// local slice of the input (which Sort may reorder) and receives its
// block of the globally sorted output. Concatenating the returned
// slices in rank order yields the sorted dataset; with opt.Stable the
// concatenation also preserves the input order of equal records (input
// order = rank order, then local position).
//
// When node-level merging triggers (τm), the output lives on each
// node's leader rank and the other ranks return empty slices — the same
// ownership change the paper's algorithm performs when it rewrites its
// communicator (Fig. 1 line 6).
func Sort[T any](c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	tm := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()

	recSize := int64(cd.Size())
	// Every byte this call reserves goes through the acct ledger, and
	// the deferred releaseAll returns whatever is still held on *any*
	// exit — success, follower dropout, error, even a panic unwinding —
	// so repeated sorts cannot leak the (shared, long-lived) gauge.
	acct := &memAcct{g: opt.Mem}
	defer acct.releaseAll()
	if err := acct.reserve(int64(len(data)) * recSize); err != nil {
		return nil, fmt.Errorf("core: input buffer: %w", err)
	}

	tr := opt.tracer()
	ck := opt.Checkpoint
	rank := c.Rank()
	tr.Emit(rank, "sort.start", map[string]any{
		"records": len(data), "stable": opt.Stable, "p": c.Size(),
	})
	// The sort's root span. Phase spans started below become its
	// children through opt.Span, which is rebound to the root's scope
	// so every helper (exchange paths, checkpoint writes) parents
	// correctly without extra plumbing. With tracing off sp is nil and
	// all span calls are free no-ops.
	sp := trace.StartSpan(tr, rank, opt.Span, "sort", map[string]any{
		"records": len(data), "stable": opt.Stable, "p": c.Size(),
	})
	sc := sp.Scope()
	opt.Span = sc
	spDone := false
	endSpan := func(detail map[string]any) {
		if !spDone {
			spDone = true
			sp.End(detail)
		}
	}
	// Error exits close the root span too, so a failed sort shows as a
	// terminated span with reason "error" rather than a dangling one.
	defer func() { endSpan(map[string]any{"reason": "error"}) }()
	// done emits the terminal event every successful exit path must
	// produce, with the reason that path returned.
	done := func(out []T, reason string) ([]T, error) {
		tr.Emit(rank, "sort.done", map[string]any{"records": len(out), "reason": reason})
		endSpan(map[string]any{"records": len(out), "reason": reason})
		return out, nil
	}

	// Resuming past the exchange: this rank's block of the output is
	// already on disk, nothing to compute. The snapshot is re-committed
	// under the current epoch so every epoch is self-contained for any
	// later resume.
	if ck.resumeAt(checkpoint.PhaseFinal) {
		m, out, err := loadCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, cd)
		if err != nil {
			return nil, err
		}
		if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, m.Merged, m.Leader, nil, cd, out); err != nil {
			return nil, err
		}
		return done(out, "resume")
	}

	var (
		work   []T
		wc     *comm.Comm
		merged bool
		bounds []int
	)
	if ck.resumeAt(checkpoint.PhasePartition) {
		// The partition snapshot holds the (possibly node-merged)
		// working set and the send boundaries: skip local sort, merge,
		// pivot selection and partition entirely.
		m, loaded, err := loadCkpt(ck, tr, rank, sc, checkpoint.PhasePartition, cd)
		if err != nil {
			return nil, err
		}
		if m.Merged {
			// Replay the communicator rewrite the τm merge performed.
			// SplitByNode is communication-free and every rank takes
			// this branch (Merged is global), so the split sequence
			// stays aligned across the job.
			_, leaders, err := c.SplitByNode()
			if err != nil {
				return nil, fmt.Errorf("core: resume node split: %w", err)
			}
			if !m.Leader {
				if err := dropOut(ck, tr, rank, sc, cd); err != nil {
					return nil, err
				}
				tr.Emit(rank, "nodemerge.follower", nil)
				return done([]T{}, "follower")
			}
			wc = leaders
		} else {
			wc = c
		}
		merged = m.Merged
		work = loaded
		if extra := (int64(len(work)) - int64(len(data))) * recSize; extra > 0 {
			if err := acct.reserve(extra); err != nil {
				return nil, fmt.Errorf("core: resume buffer: %w", err)
			}
		}
		if len(m.Bounds) != wc.Size()+1 {
			return nil, fmt.Errorf("core: resume: %d bounds for %d processes", len(m.Bounds), wc.Size())
		}
		bounds = make([]int, len(m.Bounds))
		for i, b := range m.Bounds {
			bounds[i] = int(b)
		}
		if err := partition.Validate(bounds, len(work)); err != nil {
			return nil, fmt.Errorf("core: resume partition: %w", err)
		}
		if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhasePartition, merged, true, m.Bounds, cd, work); err != nil {
			return nil, err
		}
	} else {
		// Initial local ordering (Fig. 1 line 2): sorted local data
		// makes regular sampling representative and feeds the τm merge.
		// This is its own reporting phase — charging it to pivot
		// selection would dwarf the actual sampling cost.
		tm.Start(metrics.PhaseLocalSort)
		lsp := trace.StartSpan(tr, rank, sc, "localsort", map[string]any{"records": len(data)})
		if ck.resumeAt(checkpoint.PhaseLocalSort) {
			_, loaded, err := loadCkpt(ck, tr, rank, sc, checkpoint.PhaseLocalSort, cd)
			if err != nil {
				return nil, err
			}
			// A degraded resume hands each survivor its own run plus a
			// slice of the dead ranks' — larger than the data the caller
			// budgeted for. Reserve the difference before adopting it.
			if extra := (int64(len(loaded)) - int64(len(data))) * recSize; extra > 0 {
				if err := acct.reserve(extra); err != nil {
					return nil, fmt.Errorf("core: resume buffer: %w", err)
				}
			}
			data = loaded
		} else {
			if ck.enabled() && ck.Epoch > 0 {
				// Restarted with nothing resumable: everything the
				// failed epochs computed is being redone.
				ck.Recovery.Wasted(int64(len(data)))
			}
			// Integer-keyed codecs dispatch to the LSD radix pass;
			// everything else (and every stable sort) takes the
			// comparison sort. Both are charged to the local-sort
			// clock.
			if !localSortFast(data, cd, cmp, opt) {
				psort.AdaptiveSort(data, opt.cores(), opt.Stable, opt.RunThreshold, cmp)
			}
		}
		lsp.End(map[string]any{"records": len(data)})
		if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhaseLocalSort, false, true, nil, cd, data); err != nil {
			return nil, err
		}
		// Input-side skew: how evenly the records arrived across ranks,
		// before any skew-aware machinery has run. Collective (every
		// rank of c is still present here).
		if err := observeSkew(c, metrics.SkewLocalSort, int64(len(data)), opt, tr, rank); err != nil {
			return nil, err
		}

		// Node-level merging (lines 3-7).
		var isLeader bool
		var err error
		nsp := trace.StartSpan(tr, rank, sc, "nodemerge", nil)
		work, wc, isLeader, err = nodeMerge(c, data, cd, cmp, recSize, opt, tm, acct)
		if err != nil {
			return nil, err
		}
		nsp.End(map[string]any{"leader": isLeader, "records": len(work)})
		if !isLeader {
			// Our records were merged onto the node leader; we hold no
			// output and take no further part. The input reservation
			// was already returned inside nodeMerge, the moment the
			// records were handed to the leader.
			if err := dropOut(ck, tr, rank, sc, cd); err != nil {
				return nil, err
			}
			tr.Emit(rank, "nodemerge.follower", nil)
			return done([]T{}, "follower")
		}
		merged = wc != c
		if len(work) != len(data) || merged {
			tr.Emit(rank, "nodemerge.leader", map[string]any{
				"merged_records": len(work), "leaders": wc.Size(),
			})
		}
		p := wc.Size()
		if p == 1 {
			if merged {
				if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, merged, true, nil, cd, work); err != nil {
					return nil, err
				}
			} else {
				aliasCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, checkpoint.PhaseLocalSort, merged, true, nil)
			}
			return done(work, "single")
		}

		// Sampling and global pivot selection (lines 8-9).
		tm.Start(metrics.PhasePivotSelection)
		method := "regular"
		if opt.Pivots == PivotHistogram {
			method = "histogram"
		}
		psp := trace.StartSpan(tr, rank, sc, "pivots", map[string]any{"method": method})
		var pg []T
		switch opt.Pivots {
		case PivotHistogram:
			pg, err = pivots.HistogramSplitters(wc, work, p-1, 3, cd, cmp)
		default:
			pl := pivots.RegularSample(work, p)
			pg, err = pivots.SelectGlobal(wc, pl, cd, cmp)
		}
		if err != nil {
			return nil, fmt.Errorf("core: pivot selection: %w", err)
		}
		psp.End(map[string]any{"pivots": len(pg)})
		if len(pg) == 0 {
			// The whole dataset is empty: nothing to exchange.
			if merged {
				if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, merged, true, nil, cd, work); err != nil {
					return nil, err
				}
			} else {
				aliasCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, checkpoint.PhaseLocalSort, merged, true, nil)
			}
			return done(work, "empty")
		}
		if len(pg) != p-1 {
			return nil, fmt.Errorf("core: selected %d global pivots for %d processes", len(pg), p)
		}
		if dupRuns := partition.Runs(pg, cmp); len(dupRuns) > 0 {
			total := 0
			for _, r := range dupRuns {
				total += r.Len
			}
			tr.Emit(rank, "pivots.duplicated", map[string]any{
				"runs": len(dupRuns), "duplicated_pivots": total, "pivots": len(pg),
			})
		}

		// Skew-aware partition (line 10), accelerated by the local
		// pivots.
		ptsp := trace.StartSpan(tr, rank, sc, "partition", nil)
		bounds, err = partitionData(wc, work, pg, cmp, opt)
		if err != nil {
			return nil, fmt.Errorf("core: partition: %w", err)
		}
		ptsp.End(map[string]any{"dests": len(bounds) - 1})
		b64 := make([]int64, len(bounds))
		for i, b := range bounds {
			b64[i] = int64(b)
		}
		if merged {
			if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhasePartition, merged, true, b64, cd, work); err != nil {
				return nil, err
			}
		} else {
			// Without node merging the working set IS the local-sort
			// snapshot; only the bounds are new. Alias it instead of
			// writing the data a second time.
			aliasCkpt(ck, tr, rank, sc, checkpoint.PhasePartition, checkpoint.PhaseLocalSort, merged, true, b64)
		}
	}
	p := wc.Size()

	// Exchange the send counts (lines 11-13) and budget the receive
	// buffer (line 14) — this is where a collapsed partition dies of
	// OOM on a real machine.
	tm.Start(metrics.PhaseExchange)
	scounts := partition.Counts(bounds)
	tr.Emit(rank, "partition.histogram", histogramDetail(scounts))
	rcounts, err := exchangeCounts(wc, scounts)
	if err != nil {
		return nil, fmt.Errorf("core: count exchange: %w", err)
	}
	var m int64
	for _, rc := range rcounts {
		m += rc
	}
	stage := effStage(opt.StageBytes, recSize)
	tr.Emit(rank, "exchange.plan", map[string]any{
		"send_records": len(work), "recv_records": m,
		"overlap":     !opt.Stable && p <= opt.TauO,
		"stage_bytes": stage, "staged": stage > 0,
		"zero_copy": zeroCopyEligible(cd, opt),
	})
	// Output-side skew: the received partition sizes — the loads the
	// paper's RDFA metric measures and skew-aware splitting bounds.
	if err := observeSkew(wc, metrics.SkewExchange, m, opt, tr, rank); err != nil {
		return nil, err
	}
	// Receive-buffer budgeting doubles as the spill trigger: with a
	// spill tier configured, a receive side that does not fit (or
	// Spill.Force) diverts the exchange through disk runs instead of
	// dying of OOM. The decision is collective — the exchange is one
	// collective, so if any rank must spill, every rank takes the
	// spilled path.
	reserveErr := acct.reserve(m * recSize)
	if opt.Spill != nil {
		spill, aerr := agreeSpill(wc, opt.Spill.Force || reserveErr != nil)
		if aerr != nil {
			return nil, aerr
		}
		if spill {
			if reserveErr == nil {
				acct.release(m * recSize)
			}
			out, err := spillExchange(wc, work, bounds, rcounts, m, cd, cmp, opt, tm, acct, tr, rank)
			if err != nil {
				return nil, err
			}
			if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, merged, true, nil, cd, out); err != nil {
				return nil, err
			}
			return done(out, "spilled")
		}
	}
	if reserveErr != nil {
		return nil, fmt.Errorf("core: receive buffer of %d records: %w", m, reserveErr)
	}

	// Exchange + local ordering (lines 15-27).
	var out []T
	if opt.Stable || p > opt.TauO {
		out, err = syncExchange(wc, work, bounds, rcounts, cd, cmp, opt, tm, acct)
	} else {
		out, err = overlapExchange(wc, work, bounds, rcounts, cd, cmp, opt, tm, acct)
	}
	if err != nil {
		return nil, err
	}
	if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, merged, true, nil, cd, out); err != nil {
		return nil, err
	}
	return done(out, "completed")
}

// partitionData computes this rank's send boundaries using the fast or
// stable skew-aware partition. The stable variant needs one collective:
// the all-gather of per-run duplicate counts.
func partitionData[T any](wc *comm.Comm, work []T, pg []T, cmp func(a, b T) int, opt Options) ([]int, error) {
	loc := partition.NewStripe(work, len(pg)+1, cmp)
	if opt.DisableSkewAware && !opt.Stable {
		// Ablation: the classical partition — correct, but all
		// duplicates of a pivot value land on one destination.
		p := len(pg) + 1
		bounds := make([]int, p+1)
		bounds[p] = len(work)
		for j, v := range pg {
			bounds[j+1] = loc.UpperBound(work, v)
		}
		for j := 1; j <= p; j++ {
			if bounds[j] < bounds[j-1] {
				bounds[j] = bounds[j-1]
			}
		}
		return bounds, partition.Validate(bounds, len(work))
	}
	if !opt.Stable {
		bounds := partition.Fast(work, pg, loc, cmp)
		return bounds, partition.Validate(bounds, len(work))
	}
	runs := partition.Runs(pg, cmp)
	var dupCounts [][]int64
	if len(runs) > 0 {
		local := partition.LocalDupCounts(work, pg, runs, loc)
		parts, err := wc.Allgather(comm.EncodeInt64s(local))
		if err != nil {
			return nil, fmt.Errorf("duplicate-count gather: %w", err)
		}
		dupCounts = make([][]int64, len(runs))
		for k := range dupCounts {
			dupCounts[k] = make([]int64, wc.Size())
		}
		for r, buf := range parts {
			vals, err := comm.DecodeInt64s(buf)
			if err != nil || len(vals) != len(runs) {
				return nil, fmt.Errorf("bad duplicate counts from rank %d", r)
			}
			for k, v := range vals {
				dupCounts[k][r] = v
			}
		}
	}
	bounds, err := partition.Stable(work, pg, loc, cmp, wc.Rank(), dupCounts)
	if err != nil {
		return nil, err
	}
	return bounds, partition.Validate(bounds, len(work))
}

// exchangeCounts performs the MPI_Alltoall of send counts (Fig. 1 line
// 11), returning how many records each rank will deliver to us.
func exchangeCounts(wc *comm.Comm, scounts []int) ([]int64, error) {
	p := wc.Size()
	parts := make([][]byte, p)
	for dst, sc := range scounts {
		parts[dst] = comm.EncodeInt64s([]int64{int64(sc)})
	}
	recv, err := wc.Alltoall(parts)
	if err != nil {
		return nil, err
	}
	rcounts := make([]int64, p)
	for src, buf := range recv {
		vals, err := comm.DecodeInt64s(buf)
		if err != nil || len(vals) != 1 {
			return nil, fmt.Errorf("bad count from rank %d", src)
		}
		if vals[0] < 0 {
			return nil, fmt.Errorf("negative count %d from rank %d", vals[0], src)
		}
		rcounts[src] = vals[0]
	}
	return rcounts, nil
}
