package core

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"sdssort/internal/checkpoint"
	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/faultnet"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
)

// shrinkSeed varies the fault schedule (and through it the kill rank)
// across CI soak-lane runs: FAULTNET_SEED=n go test -run Shrink.
func shrinkSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("FAULTNET_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad FAULTNET_SEED %q: %v", s, err)
	}
	t.Logf("fault schedule seed %d", v)
	return v
}

// shrinkPolicy builds the ShrinkPolicy a launcher would install: scan
// the failed world's store for its last consistent cut and rebuild it
// for the survivors with checkpoint.Redistribute.
func shrinkPolicy(dir string, minRanks int) cluster.ShrinkPolicy {
	return cluster.ShrinkPolicy{
		Enabled:  true,
		MinRanks: minRanks,
		Redistribute: func(lost []int, oldSize, newEpoch int) (checkpoint.Cut, error) {
			old, err := checkpoint.NewStore(dir, oldSize)
			if err != nil {
				return checkpoint.Cut{}, err
			}
			cut, ok := old.LatestConsistent()
			if !ok {
				return checkpoint.Cut{}, nil // no cut: PhaseNone aborts the shrink
			}
			_, ncut, err := checkpoint.Redistribute(old, cut, lost, newEpoch, taggedCodec, codec.CompareTagged)
			return ncut, err
		},
	}
}

// runShrinkSort is the supervised sort loop of a shrink-capable
// launcher. Every epoch builds the store for its own world size (the
// world stamp keeps differently-sized cuts in the same directory from
// shadowing each other); a degraded epoch resumes from the
// redistributed cut the supervisor hands it instead of negotiating one,
// and starts with no local input — its records come from the store.
func runShrinkSort(t *testing.T, topo cluster.Topology, opts cluster.Options, dir string, in [][]codec.Tagged, base Options) ([][]codec.Tagged, error) {
	t.Helper()
	var mu sync.Mutex
	var outs [][]codec.Tagged
	err := cluster.RunSupervised(topo, opts, func(ep cluster.Epoch, c *comm.Comm) error {
		store, err := checkpoint.NewStore(dir, c.Size())
		if err != nil {
			return err
		}
		opt := base
		ck := &Checkpointing{Store: store, Epoch: ep.N, Recovery: opts.Recovery}
		switch {
		case ep.Degraded:
			ck.Resume = ep.Resume
		case ep.N > 0:
			cut, ok, err := checkpoint.AgreeCut(c, store)
			if err != nil {
				return err
			}
			if ok {
				ck.Resume = cut
			}
		}
		opt.Checkpoint = ck
		var local []codec.Tagged
		if !ep.Degraded {
			local = append([]codec.Tagged(nil), in[c.Rank()]...)
		}
		out, err := Sort(c, local, taggedCodec, codec.CompareTagged, opt)
		// Drain the async snapshot writer on every path: the supervisor
		// may redistribute this store the moment the epoch fails, and it
		// must see every enqueued snapshot committed or absent — not in
		// flight.
		if werr := ck.Wait(); err == nil {
			err = werr
		}
		if err != nil {
			return err
		}
		mu.Lock()
		if len(outs) != c.Size() {
			outs = make([][]codec.Tagged, c.Size())
		}
		outs[c.Rank()] = out
		mu.Unlock()
		return c.Barrier()
	})
	return outs, err
}

// TestShrinkSoak is the tentpole's acceptance scenario: 4 ranks, one
// SIGKILL-equivalent mid-exchange, and the job must complete on the 3
// survivors from the last consistent cut — a degraded resume, not a
// relaunch — with globally sorted output, the full record multiset, and
// the memory gauge drained to zero.
func TestShrinkSoak(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	seed := shrinkSeed(t)
	killRank := int(seed % int64(topo.Size()))
	if killRank < 0 {
		killRank += topo.Size()
	}
	dir := t.TempDir()
	in := makeTagged(topo.Size(), 300, func(rank, i int) float64 {
		return float64(uint32((i*topo.Size() + rank) * 2654435761))
	})

	// The kill trigger is the victim's own partition manifest: the rank
	// dies on its first transport operation after that snapshot commits,
	// i.e. somewhere inside the all-to-all exchange.
	full, err := checkpoint.NewStore(dir, topo.Size())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultnet.New(faultnet.Plan{
		Seed:          seed,
		KillRank:      killRank,
		KillAfterFile: full.ManifestPath(0, checkpoint.PhasePartition, killRank),
	})
	if err != nil {
		t.Fatal(err)
	}

	var stats metrics.RecoveryStats
	rec := trace.NewRecorder()
	gauge := memlimit.Unlimited()
	opt := DefaultOptions()
	opt.Mem = gauge
	opts := cluster.Options{
		MaxRestarts:   1,
		Recovery:      &stats,
		Trace:         rec,
		Mem:           gauge,
		Shrink:        shrinkPolicy(dir, 2),
		WrapTransport: func(tr comm.Transport) comm.Transport { return inj.Wrap(tr) },
	}
	outs, err := runShrinkSort(t, topo, opts, dir, in, opt)
	if err != nil {
		t.Fatalf("shrink resume failed (kill rank %d): %v", killRank, err)
	}
	if len(outs) != topo.Size()-1 {
		t.Fatalf("finished on %d ranks, want %d survivors", len(outs), topo.Size()-1)
	}
	checkSorted(t, in, outs, false)

	// The recovery must have been a shrink, not a relaunch.
	if k := inj.Stats().Kills; k != 1 {
		t.Fatalf("kill fired %d times, want 1", k)
	}
	snap := stats.Snapshot()
	if snap.Shrinks != 1 || snap.Restarts != 0 || snap.RanksShed != 1 {
		t.Fatalf("recovery %+v, want exactly one shrink shedding one rank and no restarts", snap)
	}
	if ev := rec.ByKind("supervisor.shrink"); len(ev) != 1 {
		t.Fatalf("supervisor.shrink events: %d, want 1\n%s", len(ev), rec.Summary())
	}
	if ev := rec.ByKind("supervisor.restart"); len(ev) != 0 {
		t.Fatalf("the world was relaunched, not shrunk:\n%s", rec.Summary())
	}
	done := rec.ByKind("supervisor.done")
	if len(done) != 1 || done[0].Detail["degraded"] != true {
		t.Fatalf("supervisor.done missing or not degraded: %v", done)
	}
	// launchSized asserts gauge drain per epoch; this is the end-to-end
	// restatement across the whole supervised run.
	if used := gauge.Used(); used != 0 {
		t.Fatalf("memory gauge holds %d bytes after the degraded run", used)
	}
}

// TestShrinkCascade injects a second loss into the degraded epoch —
// the cascading-failure case: the shrunken world dies before making
// progress, a second shrink is blocked by MinRanks, and the supervisor
// falls back to a full relaunch, which resumes from the original
// full-world cut (the shrunken cut is invisible to the full-size store)
// within the same MaxRestarts budget.
func TestShrinkCascade(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	seed := shrinkSeed(t)
	dir := t.TempDir()
	in := makeTagged(topo.Size(), 300, func(rank, i int) float64 {
		return float64(uint32((i*topo.Size() + rank) * 2654435761))
	})

	full, err := checkpoint.NewStore(dir, topo.Size())
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := checkpoint.NewStore(dir, topo.Size()-1)
	if err != nil {
		t.Fatal(err)
	}
	// First kill: world rank 1 dies mid-exchange of the full world.
	inj1, err := faultnet.New(faultnet.Plan{
		Seed:          seed,
		KillRank:      1,
		KillAfterFile: full.ManifestPath(0, checkpoint.PhasePartition, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Second kill: triggered by the redistributed cut's first manifest,
	// which exists the moment the shrink commits — so a survivor (rank 2
	// in the shrunken numbering) dies on its first operation of the
	// degraded epoch, before it can make progress.
	inj2, err := faultnet.New(faultnet.Plan{
		Seed:          seed + 1,
		KillRank:      2,
		KillAfterFile: shrunk.ManifestPath(1, checkpoint.PhaseLocalSort, 0),
	})
	if err != nil {
		t.Fatal(err)
	}

	var stats metrics.RecoveryStats
	rec := trace.NewRecorder()
	gauge := memlimit.Unlimited()
	opt := DefaultOptions()
	opt.Mem = gauge
	opts := cluster.Options{
		MaxRestarts: 2,
		Recovery:    &stats,
		Trace:       rec,
		Mem:         gauge,
		// MinRanks 3 forbids shrinking below 3 ranks, so the second loss
		// cannot shrink again and must take the relaunch path.
		Shrink:        shrinkPolicy(dir, 3),
		WrapTransport: func(tr comm.Transport) comm.Transport { return inj2.Wrap(inj1.Wrap(tr)) },
	}
	outs, err := runShrinkSort(t, topo, opts, dir, in, opt)
	if err != nil {
		t.Fatalf("cascade recovery failed: %v", err)
	}
	if len(outs) != topo.Size() {
		t.Fatalf("finished on %d ranks, want the relaunched full world of %d", len(outs), topo.Size())
	}
	checkSorted(t, in, outs, false)

	if k1, k2 := inj1.Stats().Kills, inj2.Stats().Kills; k1 != 1 || k2 != 1 {
		t.Fatalf("kills fired %d and %d times, want 1 and 1", k1, k2)
	}
	snap := stats.Snapshot()
	if snap.Shrinks != 1 || snap.Restarts != 1 {
		t.Fatalf("recovery %+v, want one shrink then one relaunch", snap)
	}
	if len(rec.ByKind("supervisor.shrink")) != 1 || len(rec.ByKind("supervisor.restart")) != 1 {
		t.Fatalf("trace disagrees with the shrink-then-relaunch sequence:\n%s", rec.Summary())
	}
	done := rec.ByKind("supervisor.done")
	if len(done) != 1 || done[0].Detail["degraded"] != false {
		t.Fatalf("final epoch should be the relaunched full world: %v", done)
	}
	if used := gauge.Used(); used != 0 {
		t.Fatalf("memory gauge holds %d bytes after the cascade", used)
	}
}
