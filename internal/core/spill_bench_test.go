package core

import (
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/metrics"
	"sdssort/internal/workload"
)

// BenchmarkSpillMerge prices the out-of-core detour on the same sort:
// the in-memory staged exchange against the spill-forced one, where the
// receive side lands raw run files and the output is a lazy merge. The
// spilled variant pays run writes, the seek-based run partition and the
// merge read-back, so it is expected to trail in-memory — the ratchet's
// job is to keep the gap from silently widening. spill-bytes/op reports
// the run payload written per sort.
func BenchmarkSpillMerge(b *testing.B) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	const perRank = 20000
	parts := make([][]float64, topo.Size())
	for r := range parts {
		parts[r] = workload.Uniform(int64(r+1), perRank)
	}
	cmp := func(a, c float64) int {
		switch {
		case a < c:
			return -1
		case a > c:
			return 1
		}
		return 0
	}
	run := func(b *testing.B, spill bool) {
		stats := &metrics.SpillStats{}
		dir := b.TempDir()
		b.SetBytes(int64(topo.Size()) * perRank * 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opt := DefaultOptions()
			opt.TauM = 0
			opt.TauO = 0 // synchronous path: both variants run the same all-to-all shape
			opt.StageBytes = 64 << 10
			if spill {
				opt.Spill = &SpillOptions{Dir: dir, Force: true, BufBytes: 64 << 10, Stats: stats}
			}
			err := cluster.RunOpts(topo, cluster.Options{}, func(c *comm.Comm) error {
				local := append([]float64(nil), parts[c.Rank()]...)
				_, err := Sort(c, local, codec.Float64{}, cmp, opt)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		if spill {
			b.ReportMetric(float64(stats.BytesSpilled.Load())/float64(b.N), "spill-bytes/op")
		}
	}
	b.Run("inmemory", func(b *testing.B) { run(b, false) })
	b.Run("spill-forced", func(b *testing.B) { run(b, true) })
}
