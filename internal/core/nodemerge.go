package core

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/metrics"
	"sdssort/internal/psort"
)

// nodeMerge implements the τm decision and SdssNodeMerge/SdssRefineComm
// (Fig. 1 lines 3-7, §2.3): when the average all-to-all message would be
// small, the sorted data of all ranks on a node is first merged onto the
// node's leader, so the exchange sends fewer, larger messages — the win
// on low-throughput networks. It returns the (possibly merged) working
// data, the communicator the rest of the sort runs on, and whether this
// rank still participates.
func nodeMerge[T any](c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, recSize int64, opt Options, tm *metrics.PhaseTimer, acct *memAcct) ([]T, *comm.Comm, bool, error) {
	p := c.Size()
	if opt.TauM <= 0 || p == 1 {
		return data, c, true, nil
	}
	// Every rank must take the same branch: decide on the global
	// average message size, not the local one.
	totalBytes, err := c.AllreduceInt64(int64(len(data))*recSize, func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, nil, false, fmt.Errorf("core: node-merge sizing: %w", err)
	}
	avgMsg := totalBytes / int64(p) / int64(p)
	if avgMsg > opt.TauM {
		return data, c, true, nil
	}

	tm.Start(metrics.PhaseOther)
	local, leaders, err := c.SplitByNode()
	if err != nil {
		return nil, nil, false, fmt.Errorf("core: node split: %w", err)
	}
	if local.Size() == 1 {
		// One rank per node: nothing to merge; leaders is the whole
		// communicator reindexed.
		return data, leaders, true, nil
	}
	if leaders == nil {
		// Non-leader: hand the sorted data to the node leader and
		// drop out. The records now live in the leader's budget, so the
		// input reservation comes back immediately — not at return.
		if err := local.Send(0, tagNodeMerge, codec.EncodeSlice(cd, nil, data)); err != nil {
			return nil, nil, false, fmt.Errorf("core: node-merge send: %w", err)
		}
		acct.release(int64(len(data)) * recSize)
		return nil, nil, false, nil
	}

	// Leader: collect the node's chunks in local-rank order (which is
	// world-rank order within the node, preserving stability) and
	// merge them with the skew-aware shared-memory merge.
	chunks := make([][]T, local.Size())
	chunks[0] = data
	extra := int64(0)
	for r := 1; r < local.Size(); r++ {
		buf, err := local.Recv(r, tagNodeMerge)
		if err != nil {
			return nil, nil, false, fmt.Errorf("core: node-merge recv from local rank %d: %w", r, err)
		}
		chunk, err := codec.DecodeSlice(cd, buf)
		if err != nil {
			return nil, nil, false, fmt.Errorf("core: node-merge decode: %w", err)
		}
		chunks[r] = chunk
		extra += int64(len(chunk)) * recSize
	}
	if err := acct.reserve(extra); err != nil {
		return nil, nil, false, fmt.Errorf("core: node-merge buffer: %w", err)
	}
	var merged []T
	if opt.cores() > 1 {
		merged = psort.SkewAwareParallelMerge(chunks, opt.cores(), opt.Stable, cmp)
	} else {
		merged = psort.KWayMerge(chunks, cmp)
	}
	return merged, leaders, true, nil
}
