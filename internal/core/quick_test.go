package core

import (
	"testing"
	"testing/quick"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
)

// TestSortQuickProperty drives the full distributed sort with
// quick-generated shapes: random rank counts, node groupings, thresholds
// and key streams. Every draw must produce a sorted permutation (and a
// stable one when stability is drawn).
func TestSortQuickProperty(t *testing.T) {
	type draw struct {
		Keys    []uint8
		Nodes   uint8
		Cores   uint8
		Stable  bool
		TauMBig bool
		TauOBig bool
		TauSLow bool
	}
	f := func(d draw) bool {
		nodes := int(d.Nodes)%3 + 1
		cores := int(d.Cores)%3 + 1
		topo := cluster.Topology{Nodes: nodes, CoresPerNode: cores}
		p := topo.Size()

		// Distribute the fuzzed keys round-robin across ranks.
		in := make([][]codec.Tagged, p)
		for i, k := range d.Keys {
			r := i % p
			in[r] = append(in[r], codec.Tagged{
				Key: float64(k) / 16, Rank: int32(r), Index: int32(len(in[r])),
			})
		}
		opt := DefaultOptions()
		opt.Stable = d.Stable
		if d.TauMBig {
			opt.TauM = 1 << 40
		} else {
			opt.TauM = 0
		}
		if d.TauOBig {
			opt.TauO = 1 << 20
		} else {
			opt.TauO = 0
		}
		if d.TauSLow {
			opt.TauS = 1
		}
		out := runSort(t, topo, in, opt)
		checkSorted(t, in, out, opt.Stable)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
