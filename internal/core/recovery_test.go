package core

import (
	"os"
	"strings"
	"sync"
	"testing"

	"sdssort/internal/checkpoint"
	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/faultnet"
	"sdssort/internal/metrics"
	"sdssort/internal/workload"
)

// ckptOpt returns sort options with checkpointing into store at the
// given epoch, resuming from cut.
func ckptOpt(base Options, store *checkpoint.Store, epoch int, cut checkpoint.Cut) Options {
	base.Checkpoint = &Checkpointing{Store: store, Epoch: epoch, Resume: cut}
	return base
}

// runSortCkpt is runSort with per-epoch checkpoint options; it drains
// the async snapshot writer before returning, so the caller may
// inspect the store.
func runSortCkpt(t *testing.T, topo cluster.Topology, in [][]codec.Tagged, opt Options) [][]codec.Tagged {
	t.Helper()
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		return Sort(c, local, taggedCodec, codec.CompareTagged, opt)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Checkpoint.Wait(); err != nil {
		t.Fatal(err)
	}
	return out
}

func equalOutputs(t *testing.T, want, got [][]codec.Tagged, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d ranks", label, len(want), len(got))
	}
	for r := range want {
		if len(want[r]) != len(got[r]) {
			t.Fatalf("%s: rank %d has %d records, want %d", label, r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if want[r][i] != got[r][i] {
				t.Fatalf("%s: rank %d record %d is %v, want %v", label, r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestRecoveryResumeEachPhase replays a checkpointed run from every
// phase cut in turn — without faults — and requires output identical to
// the original, across the unmerged, merged and stable driver modes.
func TestRecoveryResumeEachPhase(t *testing.T) {
	topo := cluster.Topology{Nodes: 3, CoresPerNode: 2}
	// The non-stable modes need collision-free keys: with duplicates the
	// overlapped exchange orders ties by arrival, which is legal but not
	// run-to-run deterministic, and these tests compare outputs exactly.
	// The multiplier is odd, so the map (i*p+rank) -> key is injective.
	uniqueKeys := makeTagged(topo.Size(), 400, func(rank, i int) float64 {
		return float64(uint32((i*topo.Size() + rank) * 2654435761))
	})
	dupKeys := makeTagged(topo.Size(), 400, func(rank, i int) float64 {
		return float64((rank*31 + i*17) % 97)
	})
	modes := []struct {
		name string
		in   [][]codec.Tagged
		opt  Options
	}{
		{"unmerged", uniqueKeys, func() Options { o := DefaultOptions(); o.TauM = 0; return o }()},
		{"merged", uniqueKeys, func() Options { o := DefaultOptions(); o.TauM = 1 << 40; return o }()},
		{"stable", dupKeys, func() Options { o := DefaultOptions(); o.TauM = 0; o.Stable = true; return o }()},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			in := mode.in
			store, err := checkpoint.NewStore(t.TempDir(), topo.Size())
			if err != nil {
				t.Fatal(err)
			}
			baseline := runSortCkpt(t, topo, in, ckptOpt(mode.opt, store, 0, checkpoint.Cut{}))
			checkSorted(t, in, baseline, mode.opt.Stable)
			cut, ok := store.LatestConsistent()
			if !ok || cut != (checkpoint.Cut{Epoch: 0, Phase: checkpoint.PhaseFinal}) {
				t.Fatalf("after a full run the cut is %+v ok=%v, want final@0", cut, ok)
			}
			for epoch, ph := range []checkpoint.Phase{checkpoint.PhaseLocalSort, checkpoint.PhasePartition, checkpoint.PhaseFinal} {
				resumed := runSortCkpt(t, topo, in,
					ckptOpt(mode.opt, store, epoch+1, checkpoint.Cut{Epoch: 0, Phase: ph}))
				equalOutputs(t, baseline, resumed, "resume@"+ph.String())
			}
		})
	}
}

// runSupervisedSort runs the supervised sort loop the way a launcher
// would: each epoch agrees on the latest consistent cut and resumes
// from it.
func runSupervisedSort(t *testing.T, topo cluster.Topology, opts cluster.Options, store *checkpoint.Store, in [][]codec.Tagged, base Options) ([][]codec.Tagged, error) {
	t.Helper()
	outputs := make([][]codec.Tagged, topo.Size())
	var mu sync.Mutex
	err := cluster.RunSupervised(topo, opts, func(ep cluster.Epoch, c *comm.Comm) error {
		opt := base
		ck := &Checkpointing{Store: store, Epoch: ep.N, Recovery: opts.Recovery}
		if ep.N > 0 {
			cut, ok, err := checkpoint.AgreeCut(c, store)
			if err != nil {
				return err
			}
			if ok {
				ck.Resume = cut
			}
		}
		opt.Checkpoint = ck
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		out, err := Sort(c, local, taggedCodec, codec.CompareTagged, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		outputs[c.Rank()] = out
		mu.Unlock()
		// Durability before the exit barrier, as a real launcher would
		// insist; the barrier also gives a rank whose kill trigger is
		// its own final checkpoint a transport operation to die on.
		if err := ck.Wait(); err != nil {
			return err
		}
		return c.Barrier()
	})
	return outputs, err
}

// TestRecoveryKillAtPhaseBoundaries is the tentpole's acceptance test:
// a rank is killed at each checkpointed phase boundary in turn, and the
// supervised sort must finish with output identical to the fault-free
// run using exactly one restart per kill.
func TestRecoveryKillAtPhaseBoundaries(t *testing.T) {
	topo := cluster.Topology{Nodes: 3, CoresPerNode: 2}
	const killRank = 4 // a node leader under the block layout, so it owns data in merged mode too
	// Collision-free keys keep the fault-free output deterministic (see
	// TestRecoveryResumeEachPhase), so "identical to the baseline" is a
	// meaningful assertion.
	in := makeTagged(topo.Size(), 300, func(rank, i int) float64 {
		return float64(uint32((i*topo.Size() + rank) * 2654435761))
	})
	modes := []struct {
		name string
		opt  Options
	}{
		{"unmerged", func() Options { o := DefaultOptions(); o.TauM = 0; return o }()},
		{"merged", func() Options { o := DefaultOptions(); o.TauM = 1 << 40; return o }()},
	}
	phases := []checkpoint.Phase{checkpoint.PhaseLocalSort, checkpoint.PhasePartition, checkpoint.PhaseFinal}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			// Fault-free baseline.
			store, err := checkpoint.NewStore(t.TempDir(), topo.Size())
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := runSupervisedSort(t, topo, cluster.Options{}, store, in, mode.opt)
			if err != nil {
				t.Fatal(err)
			}
			checkSorted(t, in, baseline, false)

			for _, ph := range phases {
				t.Run(ph.String(), func(t *testing.T) {
					store, err := checkpoint.NewStore(t.TempDir(), topo.Size())
					if err != nil {
						t.Fatal(err)
					}
					inj, err := faultnet.New(faultnet.Plan{
						KillRank:      killRank,
						KillAfterFile: store.ManifestPath(0, ph, killRank),
					})
					if err != nil {
						t.Fatal(err)
					}
					var stats metrics.RecoveryStats
					opts := cluster.Options{
						MaxRestarts: 2,
						Recovery:    &stats,
						WrapTransport: func(tr comm.Transport) comm.Transport {
							return inj.Wrap(tr)
						},
					}
					got, err := runSupervisedSort(t, topo, opts, store, in, mode.opt)
					if err != nil {
						t.Fatalf("supervised sort did not recover from a kill at %s: %v", ph, err)
					}
					if k := inj.Stats().Kills; k != 1 {
						t.Fatalf("kill fired %d times, want 1", k)
					}
					if r := stats.Snapshot().Restarts; r != 1 {
						t.Fatalf("recovered with %d restarts, want exactly 1", r)
					}
					equalOutputs(t, baseline, got, "kill@"+ph.String())
				})
			}
		})
	}
}

// TestRecoveryRestartBudgetExhausted: with no restart budget, a killed
// rank must surface as a typed failure wrapping comm.ErrPeerLost — not
// a hang, not an untyped error.
func TestRecoveryRestartBudgetExhausted(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	store, err := checkpoint.NewStore(t.TempDir(), topo.Size())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultnet.New(faultnet.Plan{KillRank: 1, KillAfterOps: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := makeTagged(topo.Size(), 200, func(rank, i int) float64 { return float64(rank*1000 + i) })
	opts := cluster.Options{
		MaxRestarts:   0,
		WrapTransport: func(tr comm.Transport) comm.Transport { return inj.Wrap(tr) },
	}
	_, err = runSupervisedSort(t, topo, opts, store, in, DefaultOptions())
	if err == nil {
		t.Fatal("supervised sort succeeded with a killed rank and no restart budget")
	}
	if rank, ok := comm.PeerLost(err); !ok || rank != 1 {
		t.Fatalf("want comm.ErrPeerLost naming rank 1, got: %v", err)
	}
	if !strings.Contains(err.Error(), "restart budget 0 exhausted") {
		t.Fatalf("missing restart-budget context: %v", err)
	}
}

// benchStoreDir places benchmark checkpoint stores on /dev/shm when
// the host has it: checkpoints target the node-local burst-buffer
// tier (multi-level checkpointing's first level — the paper's Cray
// testbed drains to the parallel FS asynchronously), and on CI boxes
// the root disk is slower than the sort itself, which would measure
// the disk rather than the checkpoint machinery.
func benchStoreDir(b *testing.B) string {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		dir, err := os.MkdirTemp("/dev/shm", "sdsckpt-*")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

// BenchmarkSortCheckpoint measures the checkpointing overhead on the
// uniform workload: the "on" variant must stay within a few percent of
// "off" (the CI bench lane records both in BENCH_ci.json).
func BenchmarkSortCheckpoint(b *testing.B) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	const perRank = 20000
	parts := make([][]float64, topo.Size())
	for r := range parts {
		parts[r] = workload.Uniform(int64(r+1), perRank)
	}
	cmp := func(a, c float64) int {
		switch {
		case a < c:
			return -1
		case a > c:
			return 1
		}
		return 0
	}
	run := func(b *testing.B, withCkpt bool) {
		b.SetBytes(int64(topo.Size()) * perRank * 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opt := DefaultOptions()
			if withCkpt {
				store, err := checkpoint.NewStore(benchStoreDir(b), topo.Size())
				if err != nil {
					b.Fatal(err)
				}
				opt.Checkpoint = &Checkpointing{Store: store}
			}
			err := cluster.RunOpts(topo, cluster.Options{}, func(c *comm.Comm) error {
				local := append([]float64(nil), parts[c.Rank()]...)
				_, err := Sort(c, local, codec.Float64{}, cmp, opt)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			// Durability is part of the measured cost, as in a real job.
			if err := opt.Checkpoint.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
