package core

import (
	"errors"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
)

var f64 = codec.Float64{}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func TestVerifyAcceptsSortedDistribution(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		// Rank r holds [10r, 10r+10): globally sorted.
		data := make([]float64, 10)
		for i := range data {
			data[i] = float64(c.Rank()*10 + i)
		}
		return Verify(c, data, f64, cmpF)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyAcceptsEmptyAndRaggedRanks(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		var data []float64
		switch c.Rank() {
		case 1:
			data = []float64{1, 2, 3}
		case 3:
			data = []float64{4}
		}
		return Verify(c, data, f64, cmpF)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsLocalDisorder(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		data := []float64{1, 0}
		if c.Rank() == 1 {
			data = []float64{5, 6}
		}
		verr := Verify(c, data, f64, cmpF)
		if verr == nil {
			return errors.New("disorder not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsCrossRankViolation(t *testing.T) {
	topo := cluster.Topology{Nodes: 3, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		// Locally sorted but rank 2's first record undercuts rank 1.
		var data []float64
		switch c.Rank() {
		case 0:
			data = []float64{1, 2}
		case 1:
			data = []float64{3, 9}
		case 2:
			data = []float64{5, 6}
		}
		verr := Verify(c, data, f64, cmpF)
		if verr == nil {
			return errors.New("cross-rank violation not detected on some rank")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyViolationPastEmptyRank(t *testing.T) {
	// The boundary must survive forwarding through an empty rank.
	topo := cluster.Topology{Nodes: 3, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		var data []float64
		switch c.Rank() {
		case 0:
			data = []float64{7, 8}
		case 1:
			data = nil
		case 2:
			data = []float64{5}
		}
		verr := Verify(c, data, f64, cmpF)
		if verr == nil {
			return errors.New("violation across an empty rank not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortThenVerify(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	in := makeTagged(topo.Size(), 300, zipfGen(50, 1.4))
	err := cluster.Run(topo, func(c *comm.Comm) error {
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		out, err := Sort(c, local, taggedCodec, codec.CompareTagged, DefaultOptions())
		if err != nil {
			return err
		}
		return Verify(c, out, taggedCodec, codec.CompareTagged)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortHistogramPivots(t *testing.T) {
	for _, stable := range []bool{false, true} {
		topo := cluster.Topology{Nodes: 4, CoresPerNode: 2}
		in := makeTagged(topo.Size(), 500, zipfGen(51, 1.4))
		opt := DefaultOptions()
		opt.Pivots = PivotHistogram
		opt.Stable = stable
		out := runSort(t, topo, in, opt)
		checkSorted(t, in, out, stable)
	}
}

func TestSortHistogramPivotsUniform(t *testing.T) {
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 1}
	in := makeTagged(topo.Size(), 800, uniformGen(52))
	opt := DefaultOptions()
	opt.Pivots = PivotHistogram
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)
}

func TestNodeMergeAllOnOneNode(t *testing.T) {
	// Every rank on a single node: the merge concentrates everything on
	// rank 0, and p'=1 means no exchange happens at all.
	topo := cluster.Topology{Nodes: 1, CoresPerNode: 4}
	in := makeTagged(topo.Size(), 200, uniformGen(70))
	opt := DefaultOptions()
	opt.TauM = 1 << 40
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)
	if len(out[0]) != topo.Size()*200 {
		t.Fatalf("leader holds %d records, want all %d", len(out[0]), topo.Size()*200)
	}
	for r := 1; r < topo.Size(); r++ {
		if len(out[r]) != 0 {
			t.Fatalf("follower %d holds %d records", r, len(out[r]))
		}
	}
}

func TestSortReusesCommAcrossCalls(t *testing.T) {
	// Two successive collective sorts on the same communicator must not
	// cross-talk (contexts and tags are reused; FIFO keeps them apart).
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		for round := 0; round < 3; round++ {
			data := make([]float64, 300)
			for i := range data {
				data[i] = float64((i*31+round*7+c.Rank()*13)%50) / 7
			}
			out, err := Sort(c, data, f64, cmpF, DefaultOptions())
			if err != nil {
				return err
			}
			if err := Verify(c, out, f64, cmpF); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
