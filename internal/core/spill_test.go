package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"sdssort/internal/checkpoint"
	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/extsort"
	"sdssort/internal/faultnet"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/recordio"
)

// collisionFree generates keys that are unique across every (rank, i),
// so any correct sort — in-memory or spilled, merge or re-sort — has
// exactly one valid output and byte-identity is a meaningful assertion.
func collisionFree(p int) func(rank, i int) float64 {
	return func(rank, i int) float64 {
		return float64(uint32((i*p + rank) * 2654435761))
	}
}

func flatten(parts [][]codec.Tagged) []codec.Tagged {
	var flat []codec.Tagged
	for _, part := range parts {
		flat = append(flat, part...)
	}
	return flat
}

// canonTagged is the one total order on Tagged records: key, then
// origin rank, then origin index. For collision-free keys it degrades
// to key order; for duplicated keys it is the stable sort's output.
func canonTagged(a, b codec.Tagged) int {
	if c := codec.CompareTagged(a, b); c != 0 {
		return c
	}
	if a.Rank != b.Rank {
		return int(a.Rank - b.Rank)
	}
	return int(a.Index - b.Index)
}

// TestSpillForcedMatchesInMemory is the spilled-vs-resident
// equivalence property: with Spill.Force the exchange's receive side
// goes through disk runs, and the per-rank outputs must be identical —
// not merely "some sorted order" — to the in-memory path, on every
// driver path: sync-merge, sync-resort, overlap, stable, τm-merged,
// staged and monolithic, zero-copy and marshal.
func TestSpillForcedMatchesInMemory(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	p := topo.Size()
	unique := collisionFree(p)
	dup := func(rank, i int) float64 { return float64((rank*31 + i) % 7) }
	configs := []struct {
		name string
		gen  func(rank, i int) float64
		opt  Options
	}{
		{"sync-merge", unique, func() Options { o := DefaultOptions(); o.TauO = 0; o.TauS = 1 << 20; o.TauM = 0; return o }()},
		{"sync-resort", unique, func() Options { o := DefaultOptions(); o.TauO = 0; o.TauS = 1; o.TauM = 0; return o }()},
		{"overlap", unique, func() Options { o := DefaultOptions(); o.TauO = 1 << 20; o.TauM = 0; return o }()},
		{"stable", dup, func() Options { o := DefaultOptions(); o.Stable = true; o.TauM = 0; return o }()},
		{"merged", unique, func() Options { o := DefaultOptions(); o.TauM = 1 << 40; return o }()},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			in := makeTagged(p, 400, cfg.gen)
			for _, stage := range []int64{0, 1000} {
				for _, zc := range []bool{true, false} {
					name := "monolithic"
					if stage > 0 {
						name = fmt.Sprintf("stage%d", stage)
					}
					if !zc {
						name += "-marshal"
					}
					t.Run(name, func(t *testing.T) {
						base := cfg.opt
						base.StageBytes = stage
						base.DisableZeroCopy = !zc
						want := runSort(t, topo, in, base)
						checkSorted(t, in, want, base.Stable)

						spilled := base
						stats := &metrics.SpillStats{}
						spilled.Exchange = &metrics.ExchangeStats{}
						spilled.Spill = &SpillOptions{
							Force: true, Dir: t.TempDir(),
							BufBytes: 4 << 10, Stats: stats,
						}
						got := runSort(t, topo, in, spilled)
						equalOutputs(t, want, got, "spill-forced")
						if !stats.Spilled() {
							t.Fatal("forced spill never spilled")
						}
						// With τm merging only the node leaders reach the
						// exchange; otherwise every rank spills.
						if n, max := stats.SpilledSorts.Load(), int64(p); n < 1 || n > max {
							t.Fatalf("SpilledSorts = %d outside [1, %d]", n, max)
						}
						if stats.RunsSpilled.Load() == 0 || stats.BytesSpilled.Load() == 0 {
							t.Fatalf("no run traffic recorded: %s", stats)
						}
					})
				}
			}
		})
	}
}

// TestSpillBudgetTrigger: a budget that admits the input but not
// input+receive must fail with OOM on the plain path and succeed —
// same output, Peak under budget, gauge drained — once a spill tier
// is configured. This is the tentpole's admission story: the spill
// decision is driven by the same reservation that used to kill the job.
func TestSpillBudgetTrigger(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	p := topo.Size()
	const perRank = 2000 // 32000 bytes of input per rank
	const budget = 56000 // fits input + spill machinery, not input + receive
	in := makeTagged(p, perRank, collisionFree(p))

	// Control: without the spill tier this budget is a death sentence.
	err := cluster.Run(topo, func(c *comm.Comm) error {
		opt := DefaultOptions()
		opt.TauM = 0
		opt.Mem = memlimit.New(budget)
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		_, err := Sort(c, local, taggedCodec, codec.CompareTagged, opt)
		if !errors.Is(err, memlimit.ErrOutOfMemory) {
			return fmt.Errorf("rank %d: got %v, want ErrOutOfMemory", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// With the tier: the failed receive reservation votes to spill.
	stats := &metrics.SpillStats{}
	spillDir := t.TempDir()
	gauges := make([]*memlimit.Gauge, p)
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
		opt := DefaultOptions()
		opt.TauM = 0
		opt.StageBytes = 4 << 10
		opt.Exchange = &metrics.ExchangeStats{}
		opt.Mem = memlimit.New(budget)
		gauges[c.Rank()] = opt.Mem
		opt.Spill = &SpillOptions{Dir: spillDir, BufBytes: 4 << 10, Stats: stats}
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		return Sort(c, local, taggedCodec, codec.CompareTagged, opt)
	})
	if err != nil {
		t.Fatalf("budgeted sort died despite the spill tier: %v", err)
	}
	checkSorted(t, in, out, false)
	if !stats.Spilled() {
		t.Fatal("receive pressure never triggered a spill")
	}
	for r, g := range gauges {
		if g.Used() != 0 {
			t.Fatalf("rank %d gauge holds %d bytes after Sort returned", r, g.Used())
		}
		if pk := g.Peak(); pk == 0 || pk > budget {
			t.Fatalf("rank %d peak %d outside (0, %d]", r, pk, budget)
		}
	}
	// The spill directories are private per sort and die with it.
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not cleaned: %v", ents)
	}
}

// TestSpillDecisionIsCollective: only one rank is under pressure, but
// the exchange is one collective — every rank must take the spilled
// path, and the output must still be exact.
func TestSpillDecisionIsCollective(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	p := topo.Size()
	in := makeTagged(p, 1000, collisionFree(p))
	base := DefaultOptions()
	base.TauM = 0
	want := runSort(t, topo, in, base)

	stats := &metrics.SpillStats{}
	got, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
		opt := base
		opt.StageBytes = 2 << 10
		opt.Spill = &SpillOptions{Dir: t.TempDir(), BufBytes: 1 << 10, Stats: stats}
		if c.Rank() == 1 {
			// Tight enough that rank 1's receive reservation fails
			// (input + receive ≈ 32000), roomy enough for its spilled
			// path (output + merge cursors ≈ 20000).
			opt.Mem = memlimit.New(24000)
		}
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		return Sort(c, local, taggedCodec, codec.CompareTagged, opt)
	})
	if err != nil {
		t.Fatal(err)
	}
	equalOutputs(t, want, got, "collective-spill")
	if n := stats.SpilledSorts.Load(); n != int64(p) {
		t.Fatalf("%d ranks spilled, want all %d — the decision must be collective", n, p)
	}
}

// sliceSource feeds a slice through the RecordSource interface.
type sliceSource[T any] struct {
	recs []T
	i    int
}

func (s *sliceSource[T]) Read() (T, error) {
	if s.i >= len(s.recs) {
		var zero T
		return zero, io.EOF
	}
	rec := s.recs[s.i]
	s.i++
	return rec, nil
}

// runSortStream runs SortStream over in-memory per-rank inputs and
// returns the per-rank materialised blocks. Each rank round-trips its
// block through Spilled.Stream as well, so the recordio surface is
// exercised on every test that goes through here.
func runSortStream(t *testing.T, topo cluster.Topology, in [][]codec.Tagged, opt Options) [][]codec.Tagged {
	t.Helper()
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
		sp, err := SortStream[codec.Tagged](c, &sliceSource[codec.Tagged]{recs: in[c.Rank()]}, taggedCodec, codec.CompareTagged, opt)
		if err != nil {
			return nil, err
		}
		defer sp.Remove()
		recs, err := sp.ReadAll()
		if err != nil {
			return nil, err
		}
		if int64(len(recs)) != sp.Records() {
			return nil, fmt.Errorf("ReadAll yielded %d of %d records", len(recs), sp.Records())
		}
		var buf bytes.Buffer
		if err := sp.Stream(&buf); err != nil {
			return nil, fmt.Errorf("stream block: %w", err)
		}
		rr := recordio.NewReader(bytes.NewReader(buf.Bytes()), taggedCodec)
		for i := 0; ; i++ {
			rec, err := rr.Read()
			if err == io.EOF {
				if i != len(recs) {
					return nil, fmt.Errorf("streamed %d records, ReadAll %d", i, len(recs))
				}
				break
			}
			if err != nil {
				return nil, err
			}
			if rec != recs[i] {
				return nil, fmt.Errorf("stream and ReadAll disagree at %d: %v vs %v", i, rec, recs[i])
			}
		}
		return recs, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSpillStreamMatchesSort: the fully out-of-core driver must
// produce the same global dataset order as the resident sort — exactly
// equal concatenation, since the test keys make the sorted order
// unique (collision-free keys for the fast path, stability for the
// duplicated one). Per-rank boundaries may differ: SortStream samples
// per chunk, the resident sort samples the fully sorted shard.
func TestSpillStreamMatchesSort(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	p := topo.Size()
	modes := []struct {
		name   string
		gen    func(rank, i int) float64
		stable bool
	}{
		{"unique", collisionFree(p), false},
		{"stable-dup", func(rank, i int) float64 { return float64((rank*13 + i) % 5) }, true},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			in := makeTagged(p, 1000, mode.gen)
			want := flatten(in)
			slices.SortStableFunc(want, canonTagged)

			opt := DefaultOptions()
			opt.Stable = mode.stable
			opt.StageBytes = 512
			opt.Exchange = &metrics.ExchangeStats{}
			stats := &metrics.SpillStats{}
			// Tiny chunks and a tiny fan-in force many local runs AND
			// pre-merge passes on the exchange's send side.
			opt.Spill = &SpillOptions{
				Dir: t.TempDir(), ChunkRecords: 100,
				BufBytes: 4 << 10, MaxFanIn: 4, Stats: stats,
			}
			out := runSortStream(t, topo, in, opt)
			checkSorted(t, in, out, mode.stable)
			if got := flatten(out); !slices.Equal(got, want) {
				t.Fatal("streamed sort's concatenation differs from the canonical order")
			}
			if stats.RunsSpilled.Load() < int64(p*10) {
				t.Fatalf("expected >= %d local runs, got %d", p*10, stats.RunsSpilled.Load())
			}
			if stats.MergePasses.Load() == 0 {
				t.Fatal("fan-in cap 4 over 10 runs never pre-merged")
			}
		})
	}
}

// TestSpillStreamEdgeCases: the single-rank world (pure external sort)
// and the globally empty dataset, both of which skip the exchange.
func TestSpillStreamEdgeCases(t *testing.T) {
	t.Run("single-rank", func(t *testing.T) {
		topo := cluster.Topology{Nodes: 1, CoresPerNode: 1}
		in := makeTagged(1, 777, zipfGen(5, 1.2))
		opt := DefaultOptions()
		opt.Spill = &SpillOptions{Dir: t.TempDir(), ChunkRecords: 64, MaxFanIn: 3, BufBytes: 4 << 10}
		out := runSortStream(t, topo, in, opt)
		checkSorted(t, in, out, false)
	})
	t.Run("empty", func(t *testing.T) {
		topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
		in := make([][]codec.Tagged, topo.Size())
		opt := DefaultOptions()
		opt.Spill = &SpillOptions{Dir: t.TempDir(), ChunkRecords: 64, BufBytes: 4 << 10}
		out := runSortStream(t, topo, in, opt)
		for r, part := range out {
			if len(part) != 0 {
				t.Fatalf("rank %d produced %d records from nothing", r, len(part))
			}
		}
	})
	t.Run("needs-spill-options", func(t *testing.T) {
		err := cluster.Run(cluster.Topology{Nodes: 1, CoresPerNode: 1}, func(c *comm.Comm) error {
			_, err := SortStream[codec.Tagged](c, &sliceSource[codec.Tagged]{}, taggedCodec, codec.CompareTagged, DefaultOptions())
			if err == nil {
				return errors.New("SortStream accepted a nil Spill")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestSpillFileShardBeyondMemory is the acceptance e2e: a multi-rank
// world sorts a file 8x larger (per rank) than each rank's memlimit
// budget, every reservation staying under the gauge, and the result is
// byte-identical to the in-memory sort of the same data.
func TestSpillFileShardBeyondMemory(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	p := topo.Size()
	const budget = 64 << 10                            // 64 KiB per rank
	perRank := 8 * budget / taggedCodec.Size()    // 8x the budget, in records
	total := p * perRank                               // 2 MiB file
	recs := make([]codec.Tagged, total)
	for i := range recs {
		// A bijection on uint32 keeps keys unique and well spread.
		recs[i] = codec.Tagged{Key: float64(uint32(i * 2654435761)), Index: int32(i)}
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "huge.rec")
	if err := recordio.WriteFile(path, taggedCodec, recs); err != nil {
		t.Fatal(err)
	}

	// In-memory reference over the same shard layout, no budget.
	shards := make([][]codec.Tagged, p)
	for r := 0; r < p; r++ {
		shards[r] = recs[r*perRank : (r+1)*perRank]
	}
	ref := runSort(t, topo, shards, DefaultOptions())
	want := flatten(ref)

	stats := &metrics.SpillStats{}
	gauges := make([]*memlimit.Gauge, p)
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
		opt := DefaultOptions()
		opt.StageBytes = 4 << 10
		opt.Exchange = &metrics.ExchangeStats{}
		opt.Mem = memlimit.New(budget)
		gauges[c.Rank()] = opt.Mem
		opt.Spill = &SpillOptions{
			Dir: t.TempDir(), ChunkRecords: 512,
			BufBytes: 4 << 10, MaxFanIn: 8, Stats: stats,
		}
		sp, err := SortFileShard(c, path, taggedCodec, codec.CompareTagged, opt)
		if err != nil {
			return nil, err
		}
		defer sp.Remove()
		return sp.ReadAll()
	})
	if err != nil {
		t.Fatalf("8x-budget sort failed: %v", err)
	}
	if got := flatten(out); !slices.Equal(got, want) {
		t.Fatal("out-of-core output differs from the in-memory sort")
	}
	for r, g := range gauges {
		if pk := g.Peak(); pk == 0 || pk > budget {
			t.Fatalf("rank %d peak %d bytes outside (0, %d] — the footprint is not honest", r, pk, budget)
		}
		if g.Used() != 0 {
			t.Fatalf("rank %d gauge holds %d bytes after the sort", r, g.Used())
		}
		t.Logf("rank %d: peak %d of %d budget (input %d bytes)",
			r, g.Peak(), budget, int64(perRank)*int64(taggedCodec.Size()))
	}
	if stats.MergePasses.Load() == 0 {
		t.Fatal("64 runs under fan-in 8 never pre-merged")
	}
}

// TestSpillCrashResume: a rank dies after its partition checkpoint —
// with the next stop being the spilled exchange — and the supervised
// relaunch must converge to the fault-free in-memory output in exactly
// one restart, ignoring both a stale spill directory and orphaned
// .tmp-run- files pre-seeded where a crashed attempt would leave them.
func TestSpillCrashResume(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	p := topo.Size()
	const killRank = 1
	in := makeTagged(p, 300, collisionFree(p))
	base := DefaultOptions()
	base.TauM = 0

	// Fault-free in-memory baseline.
	store, err := checkpoint.NewStore(t.TempDir(), p)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := runSupervisedSort(t, topo, cluster.Options{}, store, in, base)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, baseline, false)

	// The wreckage of a hypothetical earlier crash: an uncommitted
	// temp run and a whole abandoned spill directory with plausible
	// run names but garbage contents. Reading any of it would corrupt
	// the resumed sort.
	spillDir := t.TempDir()
	stale := filepath.Join(spillDir, "spill-stale")
	if err := os.Mkdir(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	junk := []byte("not a recordio run")
	for _, f := range []string{
		filepath.Join(spillDir, extsort.TempPrefix+"orphan"),
		filepath.Join(stale, "recv-000000"),
		filepath.Join(stale, extsort.TempPrefix+"half-written"),
	} {
		if err := os.WriteFile(f, junk, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	store2, err := checkpoint.NewStore(t.TempDir(), p)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultnet.New(faultnet.Plan{
		KillRank:      killRank,
		KillAfterFile: store2.ManifestPath(0, checkpoint.PhasePartition, killRank),
	})
	if err != nil {
		t.Fatal(err)
	}
	var rec metrics.RecoveryStats
	opts := cluster.Options{
		MaxRestarts: 2,
		Recovery:    &rec,
		WrapTransport: func(tr comm.Transport) comm.Transport {
			return inj.Wrap(tr)
		},
	}
	spilled := base
	spilled.StageBytes = 4 << 10
	spilled.Spill = &SpillOptions{Force: true, Dir: spillDir, BufBytes: 4 << 10, Stats: &metrics.SpillStats{}}
	got, err := runSupervisedSort(t, topo, opts, store2, in, spilled)
	if err != nil {
		t.Fatalf("supervised spilled sort did not recover: %v", err)
	}
	if k := inj.Stats().Kills; k != 1 {
		t.Fatalf("kill fired %d times, want 1", k)
	}
	if r := rec.Snapshot().Restarts; r != 1 {
		t.Fatalf("recovered with %d restarts, want exactly 1", r)
	}
	equalOutputs(t, baseline, got, "crash-mid-spill")

	// The wreckage is still there, untouched (each sort works in its
	// own fresh subdirectory), and nothing new leaked next to it.
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	slices.Sort(names)
	if want := []string{extsort.TempPrefix + "orphan", "spill-stale"}; !slices.Equal(names, want) {
		t.Fatalf("spill dir after recovery holds %v, want only the pre-seeded wreckage %v", names, want)
	}
	if b, err := os.ReadFile(filepath.Join(stale, "recv-000000")); err != nil || !bytes.Equal(b, junk) {
		t.Fatalf("stale run was modified (err=%v)", err)
	}
}

// TestSpillSoak runs forced-spill sorts over a flaky fabric — send and
// recv failures, connection drops, delays, duplicated frames, all
// under the retry budget — with the schedule seeded from FAULTNET_SEED
// so the CI soak lane explores different interleavings run to run.
func TestSpillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seed := shrinkSeed(t)
	inj, err := faultnet.New(faultnet.Plan{
		Seed:         seed,
		SendFailRate: 0.10, ConnDropRate: 0.03, RecvFailRate: 0.05,
		MaxConsecutive: 2,
		DelayRate:      0.05, MaxDelay: 200 * time.Microsecond,
		DupRate: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	policy := comm.RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Microsecond, MaxDelay: 2 * time.Millisecond, Seed: seed}
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	p := topo.Size()
	in := makeTagged(p, 1200, zipfGen(seed, 1.3))
	stats := &metrics.SpillStats{}
	outputs := make([][]codec.Tagged, p)
	var mu sync.Mutex
	err = cluster.RunOpts(topo, cluster.Options{WrapTransport: inj.WrapTransport(policy)}, func(c *comm.Comm) error {
		opt := DefaultOptions()
		opt.Stable = true // the strictest output contract under faults
		opt.StageBytes = 2 << 10
		opt.Spill = &SpillOptions{Force: true, Dir: t.TempDir(), BufBytes: 4 << 10, Stats: stats}
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		out, err := Sort(c, local, taggedCodec, codec.CompareTagged, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		outputs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("spilled sort under injected faults failed: %v\nstats: %+v", err, inj.Stats())
	}
	checkSorted(t, in, outputs, true)
	if !stats.Spilled() {
		t.Fatal("soak never spilled")
	}
	st := inj.Stats()
	if st.SendFailures+st.ConnDrops+st.RecvFailures == 0 {
		t.Fatalf("the run was never actually faulted: %+v", st)
	}
	t.Logf("survived %+v with %s", st, stats)
}

// TestSpillFitBudget: the budget-derived knob fit the CLIs rely on —
// buffers scale with the budget, fan-in caps so cursor buffers hold a
// quarter of it, explicit settings win, zero budget is a no-op.
func TestSpillFitBudget(t *testing.T) {
	sp := &SpillOptions{}
	sp.FitBudget(1 << 20)
	if sp.BufBytes != 32<<10 || sp.MaxFanIn != 8 {
		t.Fatalf("1MiB budget fit: buf=%d fan=%d", sp.BufBytes, sp.MaxFanIn)
	}
	tiny := &SpillOptions{}
	tiny.FitBudget(64 << 10)
	if tiny.BufBytes != 4<<10 || tiny.MaxFanIn != 4 {
		t.Fatalf("64KiB budget fit: buf=%d fan=%d", tiny.BufBytes, tiny.MaxFanIn)
	}
	big := &SpillOptions{}
	big.FitBudget(1 << 30)
	if big.BufBytes != 256<<10 || big.MaxFanIn != 64 {
		t.Fatalf("1GiB budget fit: buf=%d fan=%d", big.BufBytes, big.MaxFanIn)
	}
	set := &SpillOptions{BufBytes: 1 << 10, MaxFanIn: 3}
	set.FitBudget(1 << 20)
	if set.BufBytes != 1<<10 || set.MaxFanIn != 3 {
		t.Fatalf("explicit knobs overridden: buf=%d fan=%d", set.BufBytes, set.MaxFanIn)
	}
	zero := &SpillOptions{}
	zero.FitBudget(0)
	if zero.BufBytes != 0 || zero.MaxFanIn != 0 {
		t.Fatalf("zero budget touched the knobs: buf=%d fan=%d", zero.BufBytes, zero.MaxFanIn)
	}
}
