package core

import (
	"fmt"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/workload"
)

// TestSortRobustnessMatrix sweeps the sort across the input patterns of
// the parallel-sorting literature × the option space: every combination
// must produce a sorted permutation, and the stable combinations must
// preserve input order of equal keys.
func TestSortRobustnessMatrix(t *testing.T) {
	const perRank = 400
	topo := cluster.Topology{Nodes: 3, CoresPerNode: 2}
	p := topo.Size()

	patterns := []struct {
		name string
		gen  func(rank int) []float64
	}{
		{"uniform", func(r int) []float64 { return workload.Uniform(int64(r+1), perRank) }},
		{"gaussian", func(r int) []float64 { return workload.Gaussian(int64(r+1), perRank) }},
		{"zipf1.4", func(r int) []float64 { return workload.ZipfKeys(int64(r+1), perRank, 1.4, 500) }},
		{"fewdistinct", func(r int) []float64 { return workload.FewDistinct(int64(r+1), perRank, 3) }},
		{"allequal", func(r int) []float64 { return workload.AllEqual(perRank, 42) }},
		{"staggered", func(r int) []float64 {
			all := workload.Staggered(p*perRank, p)
			return all[r*perRank : (r+1)*perRank]
		}},
		{"sawtooth", func(r int) []float64 { return workload.Sawtooth(perRank, 7) }},
		{"ksorted", func(r int) []float64 { return workload.KSorted(int64(r+1), perRank, 4) }},
		{"reversed", func(r int) []float64 { return workload.Reversed(perRank) }},
		{"empty", func(r int) []float64 { return nil }},
	}
	modes := []struct {
		name string
		opt  func() Options
	}{
		{"default", DefaultOptions},
		{"stable", func() Options { o := DefaultOptions(); o.Stable = true; return o }},
		{"overlap", func() Options { o := DefaultOptions(); o.TauO = 1 << 20; o.TauM = 0; return o }},
		{"sortbranch", func() Options { o := DefaultOptions(); o.TauO = 0; o.TauS = 1; return o }},
		{"nodemerge", func() Options { o := DefaultOptions(); o.TauM = 1 << 40; return o }},
		{"histogram", func() Options { o := DefaultOptions(); o.Pivots = PivotHistogram; return o }},
	}

	for _, pat := range patterns {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", pat.name, mode.name), func(t *testing.T) {
				in := make([][]codec.Tagged, p)
				idx := int32(0)
				for r := 0; r < p; r++ {
					keys := pat.gen(r)
					rows := make([]codec.Tagged, len(keys))
					for i, k := range keys {
						rows[i] = codec.Tagged{Key: k, Rank: int32(r), Index: idx}
						idx++
					}
					in[r] = rows
				}
				opt := mode.opt()
				out := runSort(t, topo, in, opt)
				checkSorted(t, in, out, opt.Stable)
			})
		}
	}
}

// TestSortLargeRankCount stress-tests the collective machinery at a rank
// count well beyond the other tests (flat collectives, bitonic pivot
// selection fallback, O(p²) exchange).
func TestSortLargeRankCount(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	topo := cluster.Topology{Nodes: 32, CoresPerNode: 4} // 128 ranks
	p := topo.Size()
	const perRank = 150
	in := make([][]codec.Tagged, p)
	for r := range in {
		keys := workload.ZipfKeys(int64(r+1), perRank, 1.2, 2000)
		rows := make([]codec.Tagged, len(keys))
		for i, k := range keys {
			rows[i] = codec.Tagged{Key: k, Rank: int32(r), Index: int32(i)}
		}
		in[r] = rows
	}
	opt := DefaultOptions()
	opt.TauM = 0
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)

	opt.Stable = true
	out = runSort(t, topo, in, opt)
	checkSorted(t, in, out, true)
}

// TestDisableSkewAwareAblation shows the point of the skew-aware
// partition: with it off, duplicates concentrate on one rank (classical
// behaviour); with it on, the Theorem-1 bound holds. Output correctness
// is unaffected either way.
func TestDisableSkewAwareAblation(t *testing.T) {
	topo := cluster.Topology{Nodes: 8, CoresPerNode: 1}
	p := topo.Size()
	const perRank = 600
	// 70% of all records share one key.
	in := makeTagged(p, perRank, func(rank, i int) float64 {
		if i%10 < 7 {
			return 5
		}
		return float64(i % 13)
	})

	run := func(disable bool) []int {
		opt := DefaultOptions()
		opt.TauM = 0
		opt.DisableSkewAware = disable
		out := runSort(t, topo, in, opt)
		checkSorted(t, in, out, false)
		loads := make([]int, p)
		for r, part := range out {
			loads[r] = len(part)
		}
		return loads
	}

	maxOf := func(loads []int) int {
		m := 0
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return m
	}
	aware := maxOf(run(false))
	classical := maxOf(run(true))
	fair := perRank // N/p
	if aware > 4*fair+p {
		t.Errorf("skew-aware max load %d violates the 4N/p bound (%d)", aware, 4*fair)
	}
	if classical < 3*fair {
		t.Errorf("classical partition max load %d did not collapse (fair %d) — ablation shows no contrast", classical, fair)
	}
	if classical <= aware {
		t.Errorf("expected classical (%d) to be more imbalanced than skew-aware (%d)", classical, aware)
	}
}
