package core

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
)

// The hot-path fast lanes: zero-copy exchange for codecs whose wire
// form is their memory image, and LSD-radix local ordering for codecs
// with integer sort keys. Both are pure accelerations — output bytes
// and record order are identical to the generic marshal/comparison
// paths, which remain the fallback for every codec that does not
// qualify.

// zeroCopyEligible reports whether this sort's exchange may
// scatter-gather directly between record slabs.
func zeroCopyEligible[T any](cd codec.Codec[T], opt Options) bool {
	return !opt.DisableZeroCopy && codec.IsZeroCopy(cd)
}

// localSortFast is the radix dispatch for the initial local sort
// (Fig. 1 line 2): integer-keyed codecs skip the comparison sort for
// the LSD byte pass. Partially ordered inputs keep the natural-run
// merge (the paper's §2.2 adaptivity beats any full re-sort there),
// and stable sorts never dispatch — the radix pass is stable only with
// respect to the full key, which a coarser user comparator may not be.
// Reports whether it sorted data; on false the caller runs the
// comparison sort.
func localSortFast[T any](data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) bool {
	if opt.Stable || opt.DisableRadixDispatch {
		return false
	}
	if opt.RunThreshold > 0 && psort.Sortedness(data, cmp) >= opt.RunThreshold {
		return false
	}
	return radix.DispatchLocal(data, cd, cmp)
}

// reorderFast is the radix dispatch for the re-sort flavour of local
// ordering (p >= τs): the concatenated received chunks are radix-sorted
// when the codec is integer-keyed and the sort is not stable.
func reorderFast[T any](data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) bool {
	if opt.Stable || opt.DisableRadixDispatch {
		return false
	}
	return radix.DispatchLocal(data, cd, cmp)
}

// zeroCopyAlltoall runs the synchronous all-to-all without any codec
// marshalling: outgoing chunks are views sliced straight from the work
// slab and arriving chunks are memcpy'd into one contiguous receive
// slab laid out in rank order. It returns the slab and its per-source
// subslices (chunks[src] aliases the slab), so the merge path sees the
// usual rank-ordered chunks and the re-sort path uses the slab as its
// already-concatenated working set.
//
// With stage > 0 the transfer runs through StagedAlltoallv; only the
// incoming chunk occupies staging memory (one stage window, reserved
// from the budget) because the outgoing side aliases the work slab
// instead of encoding into a pooled buffer. With stage == 0 the
// monolithic all-to-all runs, but the send side still aliases the slab
// — the unaccounted full encoded copy of the marshal path disappears
// on both variants.
func zeroCopyAlltoall[T any](wc *comm.Comm, work []T, bounds []int, rcounts []int64, cd codec.Codec[T], recSize, stage int64, opt Options, acct *memAcct) ([]T, [][]T, error) {
	p := wc.Size()
	var total int64
	for _, rc := range rcounts {
		total += rc
	}
	out := make([]T, total)
	outBytes, ok := codec.View(cd, out)
	workBytes, ok2 := codec.View(cd, work)
	if !ok || !ok2 {
		return nil, nil, fmt.Errorf("core: zero-copy exchange on non-zero-copy codec")
	}
	// Byte offset of each source's region in the receive slab, and the
	// per-source record subslices the local ordering will see.
	baseB := make([]int64, p+1)
	chunks := make([][]T, p)
	var baseR int64
	for src := 0; src < p; src++ {
		baseB[src+1] = baseB[src] + rcounts[src]*recSize
		chunks[src] = out[baseR : baseR+rcounts[src]]
		baseR += rcounts[src]
	}

	if stage > 0 {
		// Staging window: one incoming chunk. (The marshal path
		// reserves 2× — outgoing encode buffer plus incoming chunk —
		// which the slab aliasing makes unnecessary.)
		if err := acct.reserve(stage); err != nil {
			return nil, nil, fmt.Errorf("core: staging window of %d bytes: %w", stage, err)
		}
		defer acct.release(stage)
		opt.Exchange.ObservePeakStaging(stage)

		st, err := wc.StagedAlltoallv(comm.StagedOptions{
			StageBytes: stage,
			SendBytes:  sendBytesOf(bounds, p, recSize),
			RecvBytes:  scale(rcounts, recSize),
			OnWindow:   opt.Exchange.AddWindow,
			Fill: func(dst int, off, n int64) ([]byte, error) {
				lo := int64(bounds[dst])*recSize + off
				return workBytes[lo : lo+n : lo+n], nil
			},
			Drain: func(src int, off int64, chunk []byte) error {
				copy(outBytes[baseB[src]+off:baseB[src+1]], chunk)
				return nil
			},
		})
		opt.Exchange.AddStaged(st.BytesStaged, st.Chunks)
		opt.Exchange.AddZeroCopy(st.BytesStaged, st.Chunks)
		if err != nil {
			return nil, nil, fmt.Errorf("core: staged alltoall: %w", err)
		}
		return out, chunks, nil
	}

	parts := make([][]byte, p)
	for dst := 0; dst < p; dst++ {
		lo, hi := int64(bounds[dst])*recSize, int64(bounds[dst+1])*recSize
		parts[dst] = workBytes[lo:hi:hi]
	}
	recv, err := wc.Alltoall(parts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: alltoall: %w", err)
	}
	var nbytes, nchunks int64
	for src := 0; src < p; src++ {
		if int64(len(recv[src])) != rcounts[src]*recSize {
			return nil, nil, fmt.Errorf("core: rank %d sent %d bytes, advertised %d records",
				src, len(recv[src]), rcounts[src])
		}
		copy(outBytes[baseB[src]:baseB[src+1]], recv[src])
		nbytes += int64(len(recv[src]))
		nchunks++
	}
	opt.Exchange.AddZeroCopy(nbytes, nchunks)
	return out, chunks, nil
}
