package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"sdssort/internal/checkpoint"
	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/faultnet"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
	"sdssort/internal/workload"
)

// TestSortStagedMatchesMonolithic runs the same input through the
// staged and the legacy monolithic exchange on every driver path —
// sync-merge, sync-resort, overlap, stable, τm-merged — across stage
// sizes that are record-aligned, unaligned and far larger than any
// partition. The staged exchange must stay a drop-in replacement.
func TestSortStagedMatchesMonolithic(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	configs := []struct {
		name string
		opt  Options
	}{
		{"sync-merge", func() Options { o := DefaultOptions(); o.TauO = 0; o.TauS = 1 << 20; o.TauM = 0; return o }()},
		{"sync-resort", func() Options { o := DefaultOptions(); o.TauO = 0; o.TauS = 1; o.TauM = 0; return o }()},
		{"overlap", func() Options { o := DefaultOptions(); o.TauO = 1 << 20; o.TauM = 0; return o }()},
		{"stable", func() Options { o := DefaultOptions(); o.Stable = true; o.TauM = 0; return o }()},
		{"merged", func() Options { o := DefaultOptions(); o.TauM = 1 << 40; return o }()},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			in := makeTagged(topo.Size(), 500, zipfGen(21, 1.3))
			for _, stage := range []int64{16, 100, 1 << 20} {
				// The zero-copy exchange fills chunks as slab views, so
				// only the incoming chunk occupies the staging window
				// (1x); the marshal fallback holds an encoded outgoing
				// chunk too (2x). Both variants must sort identically.
				for _, zc := range []bool{true, false} {
					name := fmt.Sprintf("stage%d", stage)
					window := effStage(stage, 16)
					if !zc {
						name += "-marshal"
						window *= 2
					}
					t.Run(name, func(t *testing.T) {
						opt := cfg.opt
						opt.StageBytes = stage
						opt.DisableZeroCopy = !zc
						opt.Exchange = &metrics.ExchangeStats{}
						out := runSort(t, topo, in, opt)
						checkSorted(t, in, out, opt.Stable)
						if opt.Exchange.BytesStaged.Load() == 0 {
							t.Fatal("staged sort moved no bytes through the staging window")
						}
						if opt.Exchange.PeakStagingReserved.Load() != window {
							t.Fatalf("peak staging %d, want window %d",
								opt.Exchange.PeakStagingReserved.Load(), window)
						}
						if zc != opt.Exchange.ZeroCopyUsed() {
							t.Fatalf("zero-copy used = %v, want %v", opt.Exchange.ZeroCopyUsed(), zc)
						}
					})
				}
			}
		})
	}
}

// TestSortStableStagedIdenticalOutput: the stable sort is run-to-run
// deterministic, so the staged exchange must produce byte-identical
// outputs to the monolithic one, not merely "some valid sorted order".
func TestSortStableStagedIdenticalOutput(t *testing.T) {
	topo := cluster.Topology{Nodes: 3, CoresPerNode: 2}
	in := makeTagged(topo.Size(), 400, func(rank, i int) float64 {
		return float64((rank*31 + i) % 7) // heavy duplication
	})
	opt := DefaultOptions()
	opt.Stable = true
	opt.TauM = 0
	mono := runSort(t, topo, in, opt)
	opt.StageBytes = 48 // three records per chunk
	staged := runSort(t, topo, in, opt)
	equalOutputs(t, mono, staged, "staged-vs-monolithic")
}

// TestSortStagedPeakReservation is the issue's acceptance bound: with
// StageBytes set, the peak memlimit reservation during the exchange is
// at most input + receive + 2x the stage window. The monolithic path
// cannot meet this — it materialises a full encoded copy (unaccounted),
// while the staged path's extra footprint is exactly the window it
// reserves.
func TestSortStagedPeakReservation(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	const perRank, recSize = 2000, 16
	in := makeTagged(topo.Size(), perRank, zipfGen(22, 1.1))
	for _, stage := range []int64{64, 1 << 10} {
		t.Run(fmt.Sprintf("stage%d", stage), func(t *testing.T) {
			gauges := make([]*memlimit.Gauge, topo.Size())
			out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
				opt := DefaultOptions()
				opt.TauM = 0
				opt.TauO = 0 // force the synchronous path: its peak is the bound we assert
				opt.StageBytes = stage
				opt.Mem = memlimit.New(1 << 40)
				gauges[c.Rank()] = opt.Mem
				local := append([]codec.Tagged(nil), in[c.Rank()]...)
				return Sort(c, local, taggedCodec, codec.CompareTagged, opt)
			})
			if err != nil {
				t.Fatal(err)
			}
			checkSorted(t, in, out, false)
			eff := effStage(stage, recSize)
			for r, g := range gauges {
				bound := int64(len(in[r])+len(out[r]))*recSize + 2*eff
				if peak := g.Peak(); peak > bound {
					t.Errorf("rank %d peaked at %d bytes, above input+receive+2*stage = %d", r, peak, bound)
				}
				if used := g.Used(); used != 0 {
					t.Errorf("rank %d still holds %d bytes after Sort returned", r, used)
				}
			}
		})
	}
}

// TestSortRepeatedGaugeZero reuses one long-lived gauge across repeated
// sorts on every exit path — completed (staged and monolithic), τm
// follower/leader, single rank, empty dataset — and requires the gauge
// back at zero after each run. This is the leak the issue's bug report
// describes: before the fix, every Sort left its reservations behind.
func TestSortRepeatedGaugeZero(t *testing.T) {
	g := memlimit.New(1 << 40)
	runs := []struct {
		name string
		topo cluster.Topology
		per  int
		opt  Options
	}{
		{"monolithic", cluster.Topology{Nodes: 2, CoresPerNode: 2}, 300, func() Options { o := DefaultOptions(); o.TauM = 0; return o }()},
		{"staged", cluster.Topology{Nodes: 2, CoresPerNode: 2}, 300, func() Options { o := DefaultOptions(); o.TauM = 0; o.StageBytes = 128; return o }()},
		{"merged", cluster.Topology{Nodes: 2, CoresPerNode: 3}, 200, func() Options { o := DefaultOptions(); o.TauM = 1 << 40; return o }()},
		{"single", cluster.Topology{Nodes: 1, CoresPerNode: 1}, 500, DefaultOptions()},
		{"empty", cluster.Topology{Nodes: 2, CoresPerNode: 2}, 0, DefaultOptions()},
		{"stable-staged", cluster.Topology{Nodes: 3, CoresPerNode: 1}, 300, func() Options { o := DefaultOptions(); o.Stable = true; o.StageBytes = 64; return o }()},
	}
	for round := 0; round < 2; round++ {
		for _, run := range runs {
			t.Run(fmt.Sprintf("round%d/%s", round, run.name), func(t *testing.T) {
				in := makeTagged(run.topo.Size(), run.per, uniformGen(int64(31+round)))
				opt := run.opt
				opt.Mem = g
				// cluster.Options.Mem turns any leak into a launch error
				// too; the explicit Used check below keeps the failure
				// readable.
				out, err := cluster.Gather(run.topo, cluster.Options{Mem: g}, func(c *comm.Comm) ([]codec.Tagged, error) {
					local := append([]codec.Tagged(nil), in[c.Rank()]...)
					return Sort(c, local, taggedCodec, codec.CompareTagged, opt)
				})
				if err != nil {
					t.Fatal(err)
				}
				checkSorted(t, in, out, opt.Stable)
				if used := g.Used(); used != 0 {
					t.Fatalf("gauge holds %d bytes after %s", used, run.name)
				}
			})
		}
	}
}

// TestSortGaugeZeroOnError: a Sort that fails mid-run — out of memory
// on one rank, torn-down fabric on the other — must still return every
// byte it managed to reserve before the failure.
func TestSortGaugeZeroOnError(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	// Enough for the 32KB of inputs but not for the receive buffers,
	// so the failure happens mid-sort with reservations already held.
	// The OOM rank's error tears the fabric down, so the peer fails
	// with a transport error — both exits must release.
	g := memlimit.New(40000)
	err := cluster.Run(topo, func(c *comm.Comm) error {
		data := make([]codec.Tagged, 1000)
		for i := range data {
			data[i] = codec.Tagged{Key: float64(i), Rank: int32(c.Rank())}
		}
		opt := DefaultOptions()
		opt.TauM = 0
		opt.Mem = g
		_, err := Sort(c, data, taggedCodec, codec.CompareTagged, opt)
		return err
	})
	if err == nil {
		t.Fatal("sort succeeded against a budget below its working set")
	}
	if !errors.Is(err, memlimit.ErrOutOfMemory) {
		t.Fatalf("got %v, want ErrOutOfMemory in the join", err)
	}
	if used := g.Used(); used != 0 {
		t.Fatalf("gauge holds %d bytes after a failed sort", used)
	}
}

// TestSortGaugeZeroAfterFaultedEpoch kills a rank mid-sort, lets the
// supervisor relaunch, and requires the shared gauge at zero at the
// end: the failed epoch's ranks must release on the error/panic path,
// not just on success.
func TestSortGaugeZeroAfterFaultedEpoch(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	store, err := checkpoint.NewStore(t.TempDir(), topo.Size())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultnet.New(faultnet.Plan{KillRank: 1, KillAfterOps: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := makeTagged(topo.Size(), 300, uniformGen(33))
	g := memlimit.New(1 << 40)
	base := DefaultOptions()
	base.Mem = g
	base.StageBytes = 96
	opts := cluster.Options{
		MaxRestarts:   2,
		Mem:           g,
		WrapTransport: func(tr comm.Transport) comm.Transport { return inj.Wrap(tr) },
	}
	out, err := runSupervisedSort(t, topo, opts, store, in, base)
	if err != nil {
		t.Fatalf("supervised sort did not recover: %v", err)
	}
	checkSorted(t, in, out, false)
	if k := inj.Stats().Kills; k == 0 {
		t.Fatal("fault injector never fired; the test exercised nothing")
	}
	if used := g.Used(); used != 0 {
		t.Fatalf("gauge holds %d bytes after a faulted epoch recovered", used)
	}
}

// TestSortPhaseAttribution: the initial local sort must land in
// PhaseLocalSort, not in PhasePivotSelection (where it was charged
// before the fix and dwarfed the actual sampling cost).
func TestSortPhaseAttribution(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	const perRank = 30000 // large enough that the local sort takes measurable time
	in := makeTagged(topo.Size(), perRank, uniformGen(41))
	timers := make([]*metrics.PhaseTimer, topo.Size())
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
		opt := DefaultOptions()
		opt.TauM = 0
		opt.StageBytes = 4 << 10
		opt.Timer = metrics.NewPhaseTimer()
		timers[c.Rank()] = opt.Timer
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		return Sort(c, local, taggedCodec, codec.CompareTagged, opt)
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, in, out, false)
	for r, tm := range timers {
		if tm.Get(metrics.PhaseLocalSort) <= 0 {
			t.Errorf("rank %d charged nothing to PhaseLocalSort over %d records", r, perRank)
		}
		if tm.Get(metrics.PhaseExchange) <= 0 {
			t.Errorf("rank %d charged nothing to PhaseExchange", r)
		}
	}
}

// TestSortTraceCompleteness: every sort.start must pair with a
// sort.done on every rank, across the τm-merge, single-rank and empty
// worlds — the paths that used to return without the terminal event.
func TestSortTraceCompleteness(t *testing.T) {
	worlds := []struct {
		name   string
		topo   cluster.Topology
		per    int
		opt    Options
		reason string // the exit reason every (or the follower-complement) rank reports
	}{
		{"completed", cluster.Topology{Nodes: 2, CoresPerNode: 2}, 300,
			func() Options { o := DefaultOptions(); o.TauM = 0; return o }(), "completed"},
		{"merged", cluster.Topology{Nodes: 2, CoresPerNode: 3}, 200,
			func() Options { o := DefaultOptions(); o.TauM = 1 << 40; return o }(), "completed"},
		{"single", cluster.Topology{Nodes: 1, CoresPerNode: 1}, 300, DefaultOptions(), "single"},
		{"empty", cluster.Topology{Nodes: 2, CoresPerNode: 2}, 0,
			// TauM=0: an empty dataset always fits under τm, which would
			// turn this into a second merged world.
			func() Options { o := DefaultOptions(); o.TauM = 0; return o }(), "empty"},
	}
	for _, w := range worlds {
		t.Run(w.name, func(t *testing.T) {
			rec := trace.NewRecorder()
			in := makeTagged(w.topo.Size(), w.per, uniformGen(51))
			opt := w.opt
			opt.Trace = rec
			out := runSort(t, w.topo, in, opt)
			checkSorted(t, in, out, false)

			p := w.topo.Size()
			a := trace.Analyze(rec.Events())
			if a.SortsStarted != p || a.SortsCompleted != p {
				t.Fatalf("%d starts, %d dones, want %d of each", a.SortsStarted, a.SortsCompleted, p)
			}
			if len(a.UnterminatedRanks) != 0 {
				t.Fatalf("ranks %v never emitted sort.done", a.UnterminatedRanks)
			}
			followers := a.DoneReasons["follower"]
			if w.name == "merged" {
				if want := p - w.topo.Nodes; followers != want {
					t.Fatalf("%d follower exits, want %d", followers, want)
				}
			} else if followers != 0 {
				t.Fatalf("unexpected follower exits: %v", a.DoneReasons)
			}
			if got := a.DoneReasons[w.reason]; got != p-followers {
				t.Fatalf("reason %q on %d ranks, want %d (all: %v)", w.reason, got, p-followers, a.DoneReasons)
			}
			// Every done event must carry its record count.
			var records int64
			for _, e := range rec.ByKind("sort.done") {
				n, ok := e.Detail["records"].(int)
				if !ok {
					t.Fatalf("sort.done without a records field: %v", e.Detail)
				}
				records += int64(n)
			}
			if int(records) != p*w.per {
				t.Fatalf("done events account for %d records, want %d", records, p*w.per)
			}
		})
	}
}

// TestSortStagedFaultRecovery rides the CI soak lane (its name matches
// the Fault|Retry|Reconnect|Recovery regex): StageBytes and the kill
// schedule are drawn from FAULTNET_SEED, so repeated soak runs push
// faults across different chunk boundaries of the staged exchange.
func TestSortStagedFaultRecovery(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("FAULTNET_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad FAULTNET_SEED %q: %v", s, err)
		}
		seed = v
	}
	rng := rand.New(rand.NewSource(seed))
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	// Deliberately odd stage sizes: rounding to whole records and the
	// final short chunk of each partition both get exercised.
	stage := int64(1 + rng.Intn(600))
	base := DefaultOptions()
	base.TauM = 0
	base.StageBytes = stage
	store, err := checkpoint.NewStore(t.TempDir(), topo.Size())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultnet.New(faultnet.Plan{
		Seed:         seed,
		KillRank:     rng.Intn(topo.Size()),
		KillAfterOps: int64(2 + rng.Intn(12)),
	})
	if err != nil {
		t.Fatal(err)
	}
	in := makeTagged(topo.Size(), 300, uniformGen(seed))
	g := memlimit.New(1 << 40)
	base.Mem = g
	opts := cluster.Options{
		MaxRestarts:   3,
		Mem:           g,
		WrapTransport: func(tr comm.Transport) comm.Transport { return inj.Wrap(tr) },
	}
	out, err := runSupervisedSort(t, topo, opts, store, in, base)
	if err != nil {
		t.Fatalf("stage=%d seed=%d: supervised sort did not recover: %v", stage, seed, err)
	}
	checkSorted(t, in, out, false)
	if used := g.Used(); used != 0 {
		t.Fatalf("stage=%d seed=%d: gauge holds %d bytes after recovery", stage, seed, used)
	}
}

// BenchmarkExchange compares the exchange variants on the same sort:
// staged against monolithic (the earlier issue's bar: staged within 10%
// of monolithic), and zero-copy against the marshal fallback (this
// issue's bar: zero-copy wins). peak-staging-bytes reports the largest
// staging-window reservation — 0 for monolithic, 1x the stage window
// for staged zero-copy, 2x for staged marshal.
func BenchmarkExchange(b *testing.B) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	const perRank = 20000
	parts := make([][]float64, topo.Size())
	for r := range parts {
		parts[r] = workload.Uniform(int64(r+1), perRank)
	}
	cmp := func(a, c float64) int {
		switch {
		case a < c:
			return -1
		case a > c:
			return 1
		}
		return 0
	}
	run := func(b *testing.B, stageBytes int64, zeroCopy bool) {
		stats := &metrics.ExchangeStats{}
		b.SetBytes(int64(topo.Size()) * perRank * 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opt := DefaultOptions()
			opt.TauM = 0
			opt.TauO = 0 // synchronous path: all variants run the same all-to-all shape
			opt.StageBytes = stageBytes
			opt.DisableZeroCopy = !zeroCopy
			opt.Exchange = stats
			err := cluster.RunOpts(topo, cluster.Options{}, func(c *comm.Comm) error {
				local := append([]float64(nil), parts[c.Rank()]...)
				_, err := Sort(c, local, codec.Float64{}, cmp, opt)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.PeakStagingReserved.Load()), "peak-staging-bytes")
	}
	b.Run("monolithic-zerocopy", func(b *testing.B) { run(b, 0, true) })
	b.Run("monolithic-marshal", func(b *testing.B) { run(b, 0, false) })
	b.Run("staged-zerocopy", func(b *testing.B) { run(b, 64<<10, true) })
	b.Run("staged-marshal", func(b *testing.B) { run(b, 64<<10, false) })
}
