package core

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
)

// ExchangeSorted is the shared exchange-and-order stage behind every
// algorithm driver: given this rank's locally sorted working set and a
// partition of it into p destination slices (bounds, len p+1), it runs
// the count exchange, budgets the receive side against opt.Mem, diverts
// through the out-of-core spill tier when configured and necessary, and
// returns this rank's sorted block — via the staged/zero-copy collective
// and the merge-versus-resort (τs) and overlap (τo) adaptivity the
// SDS-Sort core uses. Competitor drivers (hyksort, psrs, hss, ams) call
// it instead of carrying private exchange paths, so they inherit memory
// accounting, spill, staging and the exchange telemetry for free.
//
// Memory contract: the caller has already reserved len(work)·recSize
// against opt.Mem (its input reservation). On success that reservation
// has been settled — the caller then holds exactly len(out)·recSize and
// must release it when done with the output. On error every byte,
// including the adopted input reservation, has been returned to the
// gauge. opt.Checkpoint is ignored: phase snapshots remain a core.Sort
// concern.
func ExchangeSorted[T any](wc *comm.Comm, work []T, bounds []int, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	p := wc.Size()
	if len(bounds) != p+1 {
		return nil, fmt.Errorf("core: %d partition bounds for %d processes", len(bounds), p)
	}
	if err := partition.Validate(bounds, len(work)); err != nil {
		return nil, fmt.Errorf("core: exchange partition: %w", err)
	}

	recSize := int64(cd.Size())
	workBytes := int64(len(work)) * recSize
	// Adopt the caller's input reservation into the per-call ledger so
	// the staging window, the receive buffer and the spill tier account
	// exactly as they do under core.Sort. ok marks the one exit where
	// the ledger transfers to the caller instead of being returned.
	acct := &memAcct{g: opt.Mem, held: workBytes}
	ok := false
	defer func() {
		if !ok {
			acct.releaseAll()
		}
	}()

	tm := opt.timer()
	tr := opt.tracer()
	rank := wc.Rank()

	if p == 1 {
		ok = true
		return work, nil
	}

	tm.Start(metrics.PhaseExchange)
	scounts := partition.Counts(bounds)
	tr.Emit(rank, "partition.histogram", histogramDetail(scounts))
	rcounts, err := exchangeCounts(wc, scounts)
	if err != nil {
		return nil, fmt.Errorf("core: count exchange: %w", err)
	}
	var m int64
	for _, rc := range rcounts {
		m += rc
	}
	stage := effStage(opt.StageBytes, recSize)
	tr.Emit(rank, "exchange.plan", map[string]any{
		"send_records": len(work), "recv_records": m,
		"overlap":     !opt.Stable && p <= opt.TauO,
		"stage_bytes": stage, "staged": stage > 0,
		"zero_copy": zeroCopyEligible(cd, opt),
	})
	// Per-phase skew diagnostics, identical to core.Sort's exchange:
	// every driver that moves data through here reports the received
	// partition geometry. Collective when opt.Skew is set.
	if err := observeSkew(wc, metrics.SkewExchange, m, opt, tr, rank); err != nil {
		return nil, err
	}

	// Receive-buffer budgeting doubles as the spill trigger, exactly as
	// in core.Sort: the decision is collective, so if any rank must
	// spill, every rank takes the spilled path.
	reserveErr := acct.reserve(m * recSize)
	if opt.Spill != nil {
		spill, aerr := agreeSpill(wc, opt.Spill.Force || reserveErr != nil)
		if aerr != nil {
			return nil, aerr
		}
		if spill {
			if reserveErr == nil {
				acct.release(m * recSize)
			}
			out, err := spillExchange(wc, work, bounds, rcounts, m, cd, cmp, opt, tm, acct, tr, rank)
			if err != nil {
				return nil, err
			}
			// spillExchange settled the work bytes and reserved the
			// output; that reservation transfers to the caller.
			ok = true
			return out, nil
		}
	}
	if reserveErr != nil {
		return nil, fmt.Errorf("core: receive buffer of %d records: %w", m, reserveErr)
	}

	var out []T
	if opt.Stable || p > opt.TauO {
		out, err = syncExchange(wc, work, bounds, rcounts, cd, cmp, opt, tm, acct)
	} else {
		out, err = overlapExchange(wc, work, bounds, rcounts, cd, cmp, opt, tm, acct)
	}
	if err != nil {
		return nil, err
	}
	// The input has been shipped; its bytes go back to the budget and
	// the receive reservation transfers to the caller with the output.
	acct.release(workBytes)
	ok = true
	return out, nil
}
