package core

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/metrics"
	"sdssort/internal/psort"
	"sdssort/internal/trace"
)

// effStage rounds the configured stage size down to a whole number of
// records (chunks must never split a record), with a floor of one
// record. Returns 0 when staging is disabled.
func effStage(stageBytes, recSize int64) int64 {
	if stageBytes <= 0 {
		return 0
	}
	n := stageBytes - stageBytes%recSize
	if n < recSize {
		n = recSize
	}
	return n
}

// sendBytesOf converts partition bounds into the per-destination byte
// matrix the staged collective wants.
func sendBytesOf(bounds []int, p int, recSize int64) []int64 {
	sb := make([]int64, p)
	for dst := 0; dst < p; dst++ {
		sb[dst] = int64(bounds[dst+1]-bounds[dst]) * recSize
	}
	return sb
}

// stagedFill returns the Fill callback both exchange paths share: it
// encodes the n/recSize records at byte offset off of dst's partition
// into a pooled buffer. Offsets are always record-aligned because
// effStage is a multiple of recSize.
func stagedFill[T any](work []T, bounds []int, cd codec.Codec[T], recSize int64, pool *codec.BufferPool) func(dst int, off, n int64) ([]byte, error) {
	return func(dst int, off, n int64) ([]byte, error) {
		lo := bounds[dst] + int(off/recSize)
		hi := lo + int(n/recSize)
		return codec.EncodeSlice(cd, pool.Get(int(n)), work[lo:hi]), nil
	}
}

// syncExchange is the synchronous path (Fig. 1 lines 16-21): an
// all-to-all, then local ordering by k-way merge (p < τs) or by
// re-sorting (p >= τs). Blocking exchange plus rank-ordered chunks plus
// stable merge is what carries stability end to end.
//
// With opt.StageBytes set the all-to-all runs staged: partitions are
// encoded chunk-by-chunk into pooled buffers and arriving chunks are
// append-decoded straight into the per-source receive slices, so the
// only memory beyond input and receive buffers is the staging window —
// which is reserved from the budget. Stability is unaffected: chunks
// of a source arrive in offset order and the receive slices stay
// rank-ordered. With StageBytes zero the legacy monolithic all-to-all
// runs, materialising an encoded copy of the whole working set.
func syncExchange[T any](wc *comm.Comm, work []T, bounds []int, rcounts []int64, cd codec.Codec[T], cmp func(a, b T) int, opt Options, tm *metrics.PhaseTimer, acct *memAcct) ([]T, error) {
	p := wc.Size()
	recSize := int64(cd.Size())
	stage := effStage(opt.StageBytes, recSize)

	tr := opt.tracer()
	rank := wc.Rank()
	esp := trace.StartSpan(tr, rank, opt.Span, "exchange", map[string]any{
		"overlap": false, "staged": stage > 0, "zero_copy": zeroCopyEligible(cd, opt),
	})

	var chunks [][]T
	var slab []T // zero-copy path: the contiguous rank-ordered receive slab backing chunks
	var total int64
	var stBytes, stChunks int64 // staged-path traffic, for the span
	if zeroCopyEligible(cd, opt) {
		var err error
		slab, chunks, err = zeroCopyAlltoall(wc, work, bounds, rcounts, cd, recSize, stage, opt, acct)
		if err != nil {
			return nil, err
		}
		total = int64(len(slab))
	} else if stage > 0 {
		// Staged: reserve the window — one outgoing chunk being filled,
		// one incoming chunk being drained — before any buffer exists.
		window := 2 * stage
		if err := acct.reserve(window); err != nil {
			return nil, fmt.Errorf("core: staging window of %d bytes: %w", window, err)
		}
		defer acct.release(window)
		opt.Exchange.ObservePeakStaging(window)

		pool := &codec.BufferPool{}
		chunks = make([][]T, p)
		for src := 0; src < p; src++ {
			chunks[src] = make([]T, 0, rcounts[src])
			total += rcounts[src]
		}
		st, err := wc.StagedAlltoallv(comm.StagedOptions{
			StageBytes: stage,
			SendBytes:  sendBytesOf(bounds, p, recSize),
			RecvBytes:  scale(rcounts, recSize),
			Fill:       stagedFill(work, bounds, cd, recSize, pool),
			FillDone:   func(_ int, buf []byte) { pool.Put(buf) },
			OnWindow:   opt.Exchange.AddWindow,
			Drain: func(src int, _ int64, chunk []byte) error {
				var derr error
				chunks[src], derr = codec.DecodeAppend(cd, chunks[src], chunk)
				return derr
			},
		})
		opt.Exchange.AddStaged(st.BytesStaged, st.Chunks)
		opt.Exchange.AddPool(pool.Stats())
		stBytes, stChunks = st.BytesStaged, st.Chunks
		if err != nil {
			return nil, fmt.Errorf("core: staged alltoall: %w", err)
		}
	} else {
		parts := make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			parts[dst] = codec.EncodeSlice(cd, nil, work[bounds[dst]:bounds[dst+1]])
		}
		recv, err := wc.Alltoall(parts)
		if err != nil {
			return nil, fmt.Errorf("core: alltoall: %w", err)
		}
		// Decoding the wire chunks is exchange work (it is the receive
		// half of the transfer), so it stays on the exchange clock; the
		// local-ordering clock starts at the merge below.
		chunks = make([][]T, p)
		for src := 0; src < p; src++ {
			chunk, err := codec.DecodeSlice(cd, recv[src])
			if err != nil {
				return nil, fmt.Errorf("core: decode from rank %d: %w", src, err)
			}
			chunks[src] = chunk
			total += int64(len(chunk))
		}
	}

	esp.End(map[string]any{
		"recv_records": total, "recv_bytes": total * recSize,
		"send_records": int64(len(work)), "bytes_staged": stBytes, "chunks": stChunks,
	})

	tm.Start(metrics.PhaseLocalOrdering)
	merge := p < opt.TauS
	osp := trace.StartSpan(tr, rank, opt.Span, "localorder", map[string]any{"merge": merge})
	if merge {
		// Merge the p sorted chunks: O(m log p), stable by source
		// rank (SdssMergeAll). On the zero-copy path the chunks are
		// subslices of the receive slab; the merge reads them in
		// place.
		out := psort.KWayMerge(chunks, cmp)
		osp.End(map[string]any{"records": len(out)})
		return out, nil
	}
	// Re-sort: O(m log m) but independent of p (SdssLocalSort on the
	// incoming data). Concatenating in rank order first keeps the
	// stable variant stable; the zero-copy slab already is that
	// concatenation. Integer-keyed codecs dispatch to the LSD radix
	// pass.
	out := slab
	if out == nil {
		out = make([]T, 0, total)
		for _, chunk := range chunks {
			out = append(out, chunk...)
		}
	}
	if !reorderFast(out, cd, cmp, opt) {
		psort.ParallelSort(out, opt.cores(), opt.Stable, cmp)
	}
	osp.End(map[string]any{"records": len(out)})
	return out, nil
}

func scale(counts []int64, by int64) []int64 {
	out := make([]int64, len(counts))
	for i, c := range counts {
		out[i] = c * by
	}
	return out
}

// overlapExchange is the asynchronous path (Fig. 1 lines 23-27):
// receives from all peers are posted up front, sends stream out without
// waiting, and each arriving chunk is merged into the running result
// while the rest of the exchange is still in flight (SdssAlltoallvAsync
// + SdssMergeTwo). Only the fast (non-stable) sort may take this path.
//
// With opt.StageBytes set the sends stream chunk-by-chunk from a single
// pooled buffer on a sender goroutine and each source's receive is
// reposted per chunk, so this rank stages at most one outgoing and one
// incoming chunk — the reserved window — instead of a full encoded copy
// of the working set.
func overlapExchange[T any](wc *comm.Comm, work []T, bounds []int, rcounts []int64, cd codec.Codec[T], cmp func(a, b T) int, opt Options, tm *metrics.PhaseTimer, acct *memAcct) ([]T, error) {
	p := wc.Size()
	me := wc.Rank()
	recSize := int64(cd.Size())
	stage := effStage(opt.StageBytes, recSize)
	// Zero-copy sends stream views sliced from the work slab, so only
	// the incoming chunk occupies staging memory.
	zc := zeroCopyEligible(cd, opt)

	// One span covers the whole overlapped phase: exchange and local
	// ordering genuinely interleave here (each arrival merges while
	// the rest is in flight), so splitting them would be fiction.
	esp := trace.StartSpan(opt.tracer(), me, opt.Span, "exchange", map[string]any{
		"overlap": true, "staged": stage > 0, "zero_copy": zc,
	})
	var workBytes []byte
	if zc {
		workBytes, _ = codec.View(cd, work)
	}

	if stage > 0 {
		window := 2 * stage
		if zc {
			window = stage
		}
		if err := acct.reserve(window); err != nil {
			return nil, fmt.Errorf("core: staging window of %d bytes: %w", window, err)
		}
		defer acct.release(window)
		opt.Exchange.ObservePeakStaging(window)
	}

	// remaining[src] is how many payload bytes src still owes us; a
	// staged source gets its receive reposted until it hits zero.
	remaining := make([]int64, p)
	var reqs []*comm.Request
	var srcs []int
	post := func(src int) error {
		r, err := wc.Irecv(src, tagExchange)
		if err != nil {
			return fmt.Errorf("core: irecv from %d: %w", src, err)
		}
		reqs = append(reqs, r)
		srcs = append(srcs, src)
		return nil
	}
	for src := 0; src < p; src++ {
		if src == me || rcounts[src] == 0 {
			continue
		}
		remaining[src] = rcounts[src] * recSize
		if err := post(src); err != nil {
			return nil, err
		}
	}

	var sends []*comm.Request
	sendErr := make(chan error, 1)
	if stage > 0 {
		// One sender goroutine walks the destinations chunk by chunk.
		// Marshal path: each chunk is encoded into a pooled buffer, so
		// at most one encoded chunk is alive. Zero-copy path: each
		// chunk is a view of the work slab — nothing is encoded and
		// nothing occupies the outgoing window. Either way the eager
		// transports never block the sender on a matching receive.
		pool := &codec.BufferPool{}
		fill := stagedFill(work, bounds, cd, recSize, pool)
		go func() {
			var bytes, nchunks int64
			for k := 1; k < p; k++ {
				dst := (me + k) % p
				total := int64(bounds[dst+1]-bounds[dst]) * recSize
				for off := int64(0); off < total; {
					n := total - off
					if n > stage {
						n = stage
					}
					var buf []byte
					if zc {
						lo := int64(bounds[dst])*recSize + off
						buf = workBytes[lo : lo+n : lo+n]
					} else {
						buf, _ = fill(dst, off, n)
						opt.Exchange.AddWindow(n)
					}
					if err := wc.Send(dst, tagExchange, buf); err != nil {
						if !zc {
							opt.Exchange.AddWindow(-n)
						}
						opt.Exchange.AddStaged(bytes, nchunks)
						sendErr <- fmt.Errorf("core: staged send to %d: %w", dst, err)
						return
					}
					if !zc {
						pool.Put(buf)
						opt.Exchange.AddWindow(-n)
					}
					bytes += n
					nchunks++
					off += n
				}
			}
			opt.Exchange.AddStaged(bytes, nchunks)
			if zc {
				opt.Exchange.AddZeroCopy(bytes, nchunks)
			} else {
				opt.Exchange.AddPool(pool.Stats())
			}
			sendErr <- nil
		}()
	} else {
		var zcBytes, zcChunks int64
		for dst := 0; dst < p; dst++ {
			if dst == me || bounds[dst+1] == bounds[dst] {
				continue
			}
			var buf []byte
			if zc {
				lo, hi := int64(bounds[dst])*recSize, int64(bounds[dst+1])*recSize
				buf = workBytes[lo:hi:hi]
				zcBytes += hi - lo
				zcChunks++
			} else {
				buf = codec.EncodeSlice(cd, nil, work[bounds[dst]:bounds[dst+1]])
			}
			s, err := wc.Isend(dst, tagExchange, buf)
			if err != nil {
				return nil, fmt.Errorf("core: isend to %d: %w", dst, err)
			}
			sends = append(sends, s)
		}
		opt.Exchange.AddZeroCopy(zcBytes, zcChunks)
	}

	// Seed the result with our own slice; each arrival merges in.
	out := append([]T(nil), work[bounds[me]:bounds[me+1]]...)
	consumed := make([]bool, len(reqs))
	for {
		i, buf, err := comm.WaitAnyMask(reqs, consumed)
		if err != nil {
			return nil, fmt.Errorf("core: overlapped recv: %w", err)
		}
		if i < 0 {
			break
		}
		src := srcs[i]
		// Decode on the exchange clock (receive half of the transfer);
		// only the merge is local ordering. The encoded buffer counts
		// toward the staging window until it has been decoded.
		if stage > 0 {
			opt.Exchange.AddWindow(int64(len(buf)))
		}
		chunk, err := codec.DecodeSlice(cd, buf)
		if stage > 0 {
			opt.Exchange.AddWindow(-int64(len(buf)))
		}
		if err != nil {
			return nil, fmt.Errorf("core: decode from rank %d: %w", src, err)
		}
		if stage > 0 {
			remaining[src] -= int64(len(buf))
			if remaining[src] < 0 {
				return nil, fmt.Errorf("core: rank %d sent %d bytes beyond its advertised count", src, -remaining[src])
			}
			if remaining[src] > 0 {
				if err := post(src); err != nil {
					return nil, err
				}
				consumed = append(consumed, false)
			}
		}
		tm.Start(metrics.PhaseLocalOrdering)
		out = psort.MergeTwo(out, chunk, cmp)
		tm.Start(metrics.PhaseExchange)
	}
	if stage > 0 {
		if err := <-sendErr; err != nil {
			return nil, err
		}
	} else if err := comm.WaitAll(sends); err != nil {
		return nil, fmt.Errorf("core: overlapped send: %w", err)
	}
	esp.End(map[string]any{
		"recv_records": int64(len(out)), "recv_bytes": int64(len(out)) * recSize,
		"send_records": int64(len(work)),
	})
	return out, nil
}
