package core

import (
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/trace"
)

// TestSortEmitsTrace checks the observable event stream of one sort:
// start/done per rank, the duplicated-pivot report on skewed data, and
// the exchange plan with plausible volumes.
func TestSortEmitsTrace(t *testing.T) {
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 1}
	rec := trace.NewRecorder()
	in := makeTagged(topo.Size(), 400, func(rank, i int) float64 {
		return float64(i % 2) // heavy duplication forces pivot runs
	})
	opt := DefaultOptions()
	opt.TauM = 0
	opt.Trace = rec
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)

	if got := len(rec.ByKind("sort.start")); got != topo.Size() {
		t.Fatalf("%d sort.start events, want %d", got, topo.Size())
	}
	if got := len(rec.ByKind("sort.done")); got != topo.Size() {
		t.Fatalf("%d sort.done events, want %d", got, topo.Size())
	}
	if len(rec.ByKind("pivots.duplicated")) == 0 {
		t.Fatal("no duplicated-pivot events on 2-value data")
	}
	plans := rec.ByKind("exchange.plan")
	if len(plans) != topo.Size() {
		t.Fatalf("%d exchange plans", len(plans))
	}
	var totalRecv int64
	for _, e := range plans {
		// The in-memory recorder keeps native types (the JSONL sink
		// would render them as JSON numbers).
		totalRecv += e.Detail["recv_records"].(int64)
	}
	if int(totalRecv) != topo.Size()*400 {
		t.Fatalf("exchange plans account for %v records, want %d", totalRecv, topo.Size()*400)
	}
}

// TestSortTraceNodeMerge checks leader/follower events on the τm path.
func TestSortTraceNodeMerge(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 3}
	rec := trace.NewRecorder()
	in := makeTagged(topo.Size(), 200, uniformGen(60))
	opt := DefaultOptions()
	opt.TauM = 1 << 40
	opt.Trace = rec
	err := cluster.Run(topo, func(c *comm.Comm) error {
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		_, err := Sort(c, local, taggedCodec, codec.CompareTagged, opt)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.ByKind("nodemerge.follower")); got != 4 {
		t.Fatalf("%d followers, want 4", got)
	}
	if got := len(rec.ByKind("nodemerge.leader")); got != 2 {
		t.Fatalf("%d leaders, want 2", got)
	}
}
