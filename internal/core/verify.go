package core

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/psort"
)

const tagVerify = 3

// Verify collectively checks that the distributed array is globally
// sorted: every rank's block must be locally sorted and no rank's first
// record may compare below any earlier rank's last record. It costs one
// record-sized message per rank (a chain through the ranks) plus one
// reduction, so it is cheap enough to run after every production sort.
// Empty ranks forward their predecessor's boundary unchanged.
//
// Verify never abandons the collective early: every rank completes the
// chain and the verdict reduction even when it has already seen a
// violation, so no peer is left blocked. On failure, every rank returns
// an error; ranks that observed the violation say which it was.
func Verify[T any](c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int) error {
	p := c.Size()
	rank := c.Rank()
	var violation error
	if !psort.IsSorted(data, cmp) {
		violation = fmt.Errorf("core: verify: rank %d block is not locally sorted", rank)
	}

	// Chain the last-record boundary from rank 0 upward; the payload is
	// empty until the first non-empty rank has been passed.
	var boundary []byte
	if rank > 0 {
		var err error
		boundary, err = c.Recv(rank-1, tagVerify)
		if err != nil {
			return fmt.Errorf("core: verify: boundary recv: %w", err)
		}
		if violation == nil && len(boundary) > 0 && len(data) > 0 {
			prevMax := cd.Unmarshal(boundary)
			if cmp(data[0], prevMax) < 0 {
				violation = fmt.Errorf("core: verify: rank %d first record sorts below rank %d's data", rank, rank-1)
			}
		}
	}
	if rank < p-1 {
		out := boundary
		if len(data) > 0 {
			out = make([]byte, cd.Size())
			cd.Marshal(out, data[len(data)-1])
		}
		if err := c.Send(rank+1, tagVerify, out); err != nil {
			return fmt.Errorf("core: verify: boundary send: %w", err)
		}
	}

	// Agree on the verdict: a violation is only visible on one rank.
	ok := int64(1)
	if violation != nil {
		ok = 0
	}
	all, err := c.AllreduceInt64(ok, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
	if err != nil {
		return fmt.Errorf("core: verify: verdict exchange: %w", err)
	}
	if violation != nil {
		return violation
	}
	if all != 1 {
		return fmt.Errorf("core: verify: another rank reported a violation")
	}
	return nil
}
