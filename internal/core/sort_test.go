package core

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/memlimit"
	"sdssort/internal/workload"
)

var taggedCodec = codec.TaggedCodec{}

// makeTagged builds per-rank inputs of Tagged records with keys from
// gen, tagging each record with its (rank, index) origin.
func makeTagged(p, perRank int, gen func(rank, i int) float64) [][]codec.Tagged {
	in := make([][]codec.Tagged, p)
	for r := 0; r < p; r++ {
		rows := make([]codec.Tagged, perRank)
		for i := range rows {
			rows[i] = codec.Tagged{Key: gen(r, i), Rank: int32(r), Index: int32(i)}
		}
		in[r] = rows
	}
	return in
}

// runSort runs core.Sort on an in-process cluster shaped topo and
// returns the per-rank outputs.
func runSort(t *testing.T, topo cluster.Topology, in [][]codec.Tagged, opt Options) [][]codec.Tagged {
	t.Helper()
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]codec.Tagged, error) {
		local := append([]codec.Tagged(nil), in[c.Rank()]...)
		return Sort(c, local, taggedCodec, codec.CompareTagged, opt)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// checkSorted verifies the global concatenation is sorted and is a
// permutation of the input; with stable=true it also verifies equal
// keys keep (rank, index) order.
func checkSorted(t *testing.T, in, out [][]codec.Tagged, stable bool) {
	t.Helper()
	var flatIn, flatOut []codec.Tagged
	for _, part := range in {
		flatIn = append(flatIn, part...)
	}
	for _, part := range out {
		flatOut = append(flatOut, part...)
	}
	if len(flatIn) != len(flatOut) {
		t.Fatalf("record count changed: in %d out %d", len(flatIn), len(flatOut))
	}
	for i := 1; i < len(flatOut); i++ {
		if flatOut[i-1].Key > flatOut[i].Key {
			t.Fatalf("output not sorted at %d: %v then %v", i, flatOut[i-1], flatOut[i])
		}
		if stable && flatOut[i-1].Key == flatOut[i].Key {
			a, b := flatOut[i-1], flatOut[i]
			if a.Rank > b.Rank || (a.Rank == b.Rank && a.Index > b.Index) {
				t.Fatalf("stability violated at %d: %v then %v", i, a, b)
			}
		}
	}
	canon := func(a, b codec.Tagged) int {
		if c := codec.CompareTagged(a, b); c != 0 {
			return c
		}
		if a.Rank != b.Rank {
			return int(a.Rank - b.Rank)
		}
		return int(a.Index - b.Index)
	}
	slices.SortFunc(flatIn, canon)
	cp := append([]codec.Tagged(nil), flatOut...)
	slices.SortFunc(cp, canon)
	if !slices.Equal(flatIn, cp) {
		t.Fatal("output is not a permutation of the input")
	}
}

func uniformGen(seed int64) func(rank, i int) float64 {
	return func(rank, i int) float64 {
		rng := rand.New(rand.NewSource(seed + int64(rank)*7919 + int64(i)))
		return rng.Float64()
	}
}

func zipfGen(seed int64, alpha float64) func(rank, i int) float64 {
	z := workload.NewZipf(alpha, 200)
	return func(rank, i int) float64 {
		rng := rand.New(rand.NewSource(seed + int64(rank)*104729 + int64(i)))
		return float64(z.Sample(rng))
	}
}

func TestSortUniformFast(t *testing.T) {
	for _, topo := range []cluster.Topology{{Nodes: 1, CoresPerNode: 1}, {Nodes: 2, CoresPerNode: 2}, {Nodes: 4, CoresPerNode: 2}} {
		in := makeTagged(topo.Size(), 500, uniformGen(1))
		opt := DefaultOptions()
		out := runSort(t, topo, in, opt)
		checkSorted(t, in, out, false)
	}
}

func TestSortUniformStable(t *testing.T) {
	topo := cluster.Topology{Nodes: 3, CoresPerNode: 2}
	in := makeTagged(topo.Size(), 400, func(rank, i int) float64 {
		// Few distinct keys force heavy duplication across ranks.
		return float64((rank*31 + i) % 5)
	})
	opt := DefaultOptions()
	opt.Stable = true
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, true)
}

func TestSortZipfSkewedFast(t *testing.T) {
	for _, alpha := range []float64{0.7, 1.4, 2.1} {
		topo := cluster.Topology{Nodes: 4, CoresPerNode: 2}
		in := makeTagged(topo.Size(), 600, zipfGen(2, alpha))
		out := runSort(t, topo, in, DefaultOptions())
		checkSorted(t, in, out, false)
	}
}

func TestSortZipfSkewedStable(t *testing.T) {
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 2}
	in := makeTagged(topo.Size(), 600, zipfGen(3, 2.1))
	opt := DefaultOptions()
	opt.Stable = true
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, true)
}

func TestSortAllEqualKeys(t *testing.T) {
	for _, stable := range []bool{false, true} {
		topo := cluster.Topology{Nodes: 4, CoresPerNode: 1}
		in := makeTagged(topo.Size(), 300, func(rank, i int) float64 { return 42 })
		opt := DefaultOptions()
		opt.Stable = stable
		out := runSort(t, topo, in, opt)
		checkSorted(t, in, out, stable)
	}
}

func TestSortAllEqualLoadBalance(t *testing.T) {
	// Theorem 1 in action: with every key equal, no rank may end up
	// with more than ~4N/p records.
	topo := cluster.Topology{Nodes: 8, CoresPerNode: 1}
	const perRank = 500
	in := makeTagged(topo.Size(), perRank, func(rank, i int) float64 { return 7 })
	out := runSort(t, topo, in, DefaultOptions())
	checkSorted(t, in, out, false)
	n := topo.Size() * perRank
	bound := 4*n/topo.Size() + topo.Size()
	for r, part := range out {
		if len(part) > bound {
			t.Errorf("rank %d holds %d records, above the 4N/p bound %d", r, len(part), bound)
		}
	}
}

func TestSortSingleRank(t *testing.T) {
	topo := cluster.Topology{Nodes: 1, CoresPerNode: 1}
	in := makeTagged(1, 1000, uniformGen(4))
	out := runSort(t, topo, in, DefaultOptions())
	checkSorted(t, in, out, false)
}

func TestSortEmptyInput(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	in := make([][]codec.Tagged, topo.Size())
	out := runSort(t, topo, in, DefaultOptions())
	checkSorted(t, in, out, false)
}

func TestSortRaggedInput(t *testing.T) {
	// Rank r holds r*100 records (rank 0 holds none).
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	in := make([][]codec.Tagged, topo.Size())
	for r := range in {
		rows := make([]codec.Tagged, r*100)
		rng := rand.New(rand.NewSource(int64(r)))
		for i := range rows {
			rows[i] = codec.Tagged{Key: rng.Float64(), Rank: int32(r), Index: int32(i)}
		}
		in[r] = rows
	}
	out := runSort(t, topo, in, DefaultOptions())
	checkSorted(t, in, out, false)
}

func TestSortPartiallyOrderedInput(t *testing.T) {
	// Pre-sorted per-rank input exercises the run-detection path.
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	in := makeTagged(topo.Size(), 800, func(rank, i int) float64 {
		return float64(rank*800 + i) // globally sorted already
	})
	opt := DefaultOptions()
	opt.RunThreshold = 8
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)
}

func TestSortOverlapPath(t *testing.T) {
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 2}
	in := makeTagged(topo.Size(), 500, zipfGen(5, 1.4))
	opt := DefaultOptions()
	opt.TauO = 1 << 20 // force overlap (p < TauO)
	opt.TauM = 0       // no node merge
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)
}

func TestSortSyncSortBranch(t *testing.T) {
	// p >= TauS forces the re-sort branch of local ordering.
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 2}
	in := makeTagged(topo.Size(), 500, uniformGen(6))
	opt := DefaultOptions()
	opt.TauO = 0 // force synchronous
	opt.TauS = 1 // force sort branch
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)

	opt.Stable = true
	out = runSort(t, topo, in, opt)
	checkSorted(t, in, out, true)
}

func TestSortMergeBranch(t *testing.T) {
	topo := cluster.Topology{Nodes: 4, CoresPerNode: 2}
	in := makeTagged(topo.Size(), 500, uniformGen(7))
	opt := DefaultOptions()
	opt.TauO = 0
	opt.TauS = 1 << 20 // force merge branch
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)
}

func TestSortNodeMergePath(t *testing.T) {
	// A huge TauM forces node-level merging: outputs concentrate on
	// node leaders, the other ranks return empty.
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 4}
	in := makeTagged(topo.Size(), 300, uniformGen(8))
	opt := DefaultOptions()
	opt.TauM = 1 << 40
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)
	for r, part := range out {
		leader := r%topo.CoresPerNode == 0
		if !leader && len(part) != 0 {
			t.Errorf("non-leader rank %d holds %d records after node merge", r, len(part))
		}
	}
}

func TestSortNodeMergeStable(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 3}
	in := makeTagged(topo.Size(), 200, func(rank, i int) float64 { return float64(i % 3) })
	opt := DefaultOptions()
	opt.Stable = true
	opt.TauM = 1 << 40
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, true)
}

func TestSortCoresParallelLocal(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	in := makeTagged(topo.Size(), 5000, zipfGen(9, 1.2))
	opt := DefaultOptions()
	opt.Cores = 4
	out := runSort(t, topo, in, opt)
	checkSorted(t, in, out, false)
}

func TestSortOOMInjection(t *testing.T) {
	// A budget below the per-rank input size must fail immediately
	// with ErrOutOfMemory.
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		data := make([]codec.Tagged, 1000)
		opt := DefaultOptions()
		opt.Mem = memlimit.New(100) // bytes; far below 16KB input
		_, err := Sort(c, data, taggedCodec, codec.CompareTagged, opt)
		if !errors.Is(err, memlimit.ErrOutOfMemory) {
			return fmt.Errorf("got %v, want ErrOutOfMemory", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortInvalidOptions(t *testing.T) {
	topo := cluster.Topology{Nodes: 1, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		opt := Options{Cores: -1}
		_, err := Sort(c, nil, taggedCodec, codec.CompareTagged, opt)
		if err == nil {
			return errors.New("invalid options accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortManyRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	topo := cluster.Topology{Nodes: 16, CoresPerNode: 2} // 32 ranks
	in := makeTagged(topo.Size(), 400, zipfGen(10, 0.9))
	out := runSort(t, topo, in, DefaultOptions())
	checkSorted(t, in, out, false)

	opt := DefaultOptions()
	opt.Stable = true
	out = runSort(t, topo, in, opt)
	checkSorted(t, in, out, true)
}
