package core

import (
	"fmt"
	"sync"

	"sdssort/internal/checkpoint"
	"sdssort/internal/codec"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
)

// Checkpointing wires Sort to a checkpoint.Store: each rank snapshots
// its data after the local-sort, partition and exchange phases, and a
// re-run can resume from a previously committed cut instead of
// recomputing. A nil Checkpointing (or nil Store) disables the whole
// feature at zero cost.
//
// Snapshots commit asynchronously: at each phase boundary the records
// are encoded in place (cheap — memory bandwidth) and the disk commit
// runs on a background writer, off the sort's critical path. Each
// pending save holds one encoded copy of its records until it lands.
// Durability is therefore deferred: call Wait before treating the job
// as checkpointed (cmd/sdsnode does, before its final barrier). A
// crash before a commit simply leaves the previous cut as the newest
// consistent one.
type Checkpointing struct {
	// Store receives the snapshots. All ranks of the job must point at
	// the same directory (in-process: share the Store; distributed: a
	// shared filesystem, as on the paper's Cray testbed).
	Store *checkpoint.Store
	// Epoch is the recovery epoch this attempt writes its snapshots
	// under — cluster.RunSupervised passes its Epoch.N through here.
	Epoch int
	// Resume names the cut to restart from; the zero value (PhaseNone)
	// means a cold start. Every rank must agree on the cut — use
	// checkpoint.AgreeCut or Store.LatestConsistent before launching.
	Resume checkpoint.Cut
	// Sync commits each snapshot at its phase boundary instead of on
	// the background writer: the sort pays the disk latency inline, in
	// exchange for the guarantee that a committed manifest exists the
	// moment the phase ends — durable-at-boundary semantics, and a
	// deterministic anchor for fault-injection triggers keyed on
	// manifest files.
	Sync bool
	// Recovery, when non-nil, accrues the wasted-work counter: records
	// re-sorted from scratch because no resumable cut survived.
	Recovery *metrics.RecoveryStats

	mu       sync.Mutex
	queue    []func() error
	draining bool
	wg       sync.WaitGroup
	err      error // first async commit failure
}

func (ck *Checkpointing) enabled() bool { return ck != nil && ck.Store != nil }

// enqueue hands one disk commit to the background writer. Commits run
// strictly in enqueue order — aliased snapshots (hard links to an
// earlier phase's data) depend on their source having committed first
// — and one at a time, so a shared Checkpointing never competes with
// itself for disk bandwidth.
func (ck *Checkpointing) enqueue(commit func() error) {
	if ck.Sync {
		// Synchronous mode never populates the queue, so running the
		// commit inline preserves the strict ordering for free.
		if err := commit(); err != nil {
			ck.mu.Lock()
			if ck.err == nil {
				ck.err = err
			}
			ck.mu.Unlock()
		}
		return
	}
	ck.mu.Lock()
	ck.queue = append(ck.queue, commit)
	if !ck.draining {
		ck.draining = true
		ck.wg.Add(1)
		go ck.drain()
	}
	ck.mu.Unlock()
}

// drain is the background writer: it empties the queue and exits, so
// an idle Checkpointing holds no goroutine.
func (ck *Checkpointing) drain() {
	defer ck.wg.Done()
	for {
		ck.mu.Lock()
		if len(ck.queue) == 0 {
			ck.draining = false
			ck.mu.Unlock()
			return
		}
		commit := ck.queue[0]
		ck.queue = ck.queue[1:]
		ck.mu.Unlock()
		if err := commit(); err != nil {
			ck.mu.Lock()
			if ck.err == nil {
				ck.err = err
			}
			ck.mu.Unlock()
		}
	}
}

// Wait blocks until every enqueued snapshot has committed (or failed)
// and returns the first commit error. Call it after the job's Sorts
// have returned and before relying on the checkpoints — a launcher
// typically calls it between the sort and its final barrier. Safe to
// call from multiple goroutines and on a Checkpointing that never
// saved anything.
func (ck *Checkpointing) Wait() error {
	if ck == nil {
		return nil
	}
	ck.wg.Wait()
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.err
}

// resumeAt reports whether the configured cut covers phase ph — the
// phase's results are on disk and must be loaded, not recomputed.
func (ck *Checkpointing) resumeAt(ph checkpoint.Phase) bool {
	return ck.enabled() && ck.Resume.Phase >= ph
}

// saveCkpt snapshots one phase boundary under the current epoch: the
// records are encoded here (so later phases may mutate or release the
// slice) and the disk commit is enqueued on the background writer —
// failures surface from Wait, not from the phase that snapshotted. It
// is a no-op when checkpointing is off, so the driver calls it
// unconditionally at every boundary.
func saveCkpt[T any](ck *Checkpointing, tr trace.Tracer, rank int, sc trace.Scope, ph checkpoint.Phase, merged, leader bool, bounds []int64, cd codec.Codec[T], recs []T) error {
	if !ck.enabled() {
		return nil
	}
	// The span covers what the sort actually pays for: the in-place
	// encode, plus — in Sync mode — the inline disk commit. Async
	// commits run on the background writer, off the critical path, so
	// they stay outside the span (sync=false marks those).
	csp := trace.StartSpan(tr, rank, sc, "checkpoint", map[string]any{
		"phase": ph.String(), "op": "save", "sync": ck.Sync,
	})
	m := checkpoint.Manifest{
		Epoch: ck.Epoch, Phase: ph, Rank: rank,
		Merged: merged, Leader: leader, Bounds: bounds,
	}
	payload := codec.EncodeSlice(cd, make([]byte, 0, len(recs)*cd.Size()), recs)
	n, size := int64(len(recs)), cd.Size()
	store := ck.Store
	ck.enqueue(func() error {
		if err := checkpoint.SaveBytes(store, m, payload, n, size); err != nil {
			return fmt.Errorf("core: checkpoint at %s: %w", ph, err)
		}
		return nil
	})
	csp.End(map[string]any{"records": len(recs)})
	tr.Emit(rank, "ckpt.save", map[string]any{
		"phase": ph.String(), "epoch": ck.Epoch, "records": len(recs),
	})
	return nil
}

// aliasCkpt snapshots a phase whose record data is byte-identical to
// an earlier phase committed this epoch — no re-encode, no rewrite;
// the background writer hard-links the data (FIFO order makes the
// source safe to reference).
func aliasCkpt(ck *Checkpointing, tr trace.Tracer, rank int, sc trace.Scope, ph, src checkpoint.Phase, merged, leader bool, bounds []int64) {
	if !ck.enabled() {
		return
	}
	m := checkpoint.Manifest{
		Epoch: ck.Epoch, Phase: ph, Rank: rank,
		Merged: merged, Leader: leader, Bounds: bounds,
	}
	store := ck.Store
	ck.enqueue(func() error {
		if err := checkpoint.SaveAlias(store, m, src); err != nil {
			return fmt.Errorf("core: checkpoint at %s: %w", ph, err)
		}
		return nil
	})
	tr.Emit(rank, "ckpt.save", map[string]any{
		"phase": ph.String(), "epoch": ck.Epoch, "alias": src.String(),
	})
}

// loadCkpt loads this rank's snapshot of phase ph from the resume cut's
// epoch, verifying count and checksum.
func loadCkpt[T any](ck *Checkpointing, tr trace.Tracer, rank int, sc trace.Scope, ph checkpoint.Phase, cd codec.Codec[T]) (*checkpoint.Manifest, []T, error) {
	csp := trace.StartSpan(tr, rank, sc, "checkpoint", map[string]any{
		"phase": ph.String(), "op": "load",
	})
	m, recs, err := checkpoint.Load[T](ck.Store, ck.Resume.Epoch, ph, rank, cd)
	if err != nil {
		csp.End(map[string]any{"error": err.Error()})
		return nil, nil, fmt.Errorf("core: resume from %s@e%d: %w", ph, ck.Resume.Epoch, err)
	}
	csp.End(map[string]any{"records": len(recs)})
	tr.Emit(rank, "ckpt.resume", map[string]any{
		"phase": ph.String(), "from_epoch": ck.Resume.Epoch,
		"epoch": ck.Epoch, "records": len(recs),
	})
	return m, recs, nil
}

// dropOut commits the empty snapshots a merged-away follower leaves
// behind. Without them the follower would hold no checkpoint for the
// partition and final phases and no later cut could ever become
// globally consistent.
func dropOut[T any](ck *Checkpointing, tr trace.Tracer, rank int, sc trace.Scope, cd codec.Codec[T]) error {
	if err := saveCkpt(ck, tr, rank, sc, checkpoint.PhasePartition, true, false, nil, cd, []T{}); err != nil {
		return err
	}
	return saveCkpt(ck, tr, rank, sc, checkpoint.PhaseFinal, true, false, nil, cd, []T{})
}
