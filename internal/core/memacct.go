package core

import "sdssort/internal/memlimit"

// memAcct tracks what one Sort call has reserved against the rank's
// memory gauge so every exit path — success, follower dropout, error,
// even a panic unwinding — returns exactly what it took. The gauge is
// shared across sorts (and possibly ranks); the acct is the per-call
// ledger that makes Release(sum of our Reserves) possible without
// bookkeeping at every return site. Owned by one rank's goroutine; not
// safe for concurrent use.
type memAcct struct {
	g    *memlimit.Gauge
	held int64
}

// reserve accounts n bytes against the gauge and the ledger.
func (a *memAcct) reserve(n int64) error {
	if err := a.g.Reserve(n); err != nil {
		return err
	}
	a.held += n
	return nil
}

// release returns n bytes early (clamped to what this call still
// holds), for data handed off or consumed before the sort returns.
func (a *memAcct) release(n int64) {
	if n > a.held {
		n = a.held
	}
	if n <= 0 {
		return
	}
	a.g.Release(n)
	a.held -= n
}

// releaseAll returns every outstanding byte; deferred by Sort so no
// path can leak the gauge.
func (a *memAcct) releaseAll() { a.release(a.held) }
