package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/extsort"
	"sdssort/internal/metrics"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/recordio"
)

// SortStream is the fully out-of-core driver: the input streams in,
// sorted local runs spill to disk, the exchange moves per-destination
// merges of run segments and lands per-source run files, and the
// result is a Spilled handle merged lazily on read. At no point is the
// shard resident: peak memory is the chunk buffer during the run
// phase, then the staging window plus merge cursor buffers — all
// reserved against Options.Mem — so a rank with a fixed budget sorts
// arbitrarily large inputs.
//
// Differences from the resident driver, by construction of the regime:
// node-level merging (τm) and overlap (τo) do not apply (the exchange
// is always the staged synchronous collective), pivots come from
// per-run samples rather than the fully sorted local data, and the
// per-run partition is the classical upper bound — all duplicates of a
// pivot land on one destination, so extreme duplication skews load
// where the resident skew-aware partition would split it. Stability
// still holds end to end: runs are cut in input order, every merge
// tiebreaks by run index, and the upper-bound rule routes all equal
// records to the same destination.

// RecordSource yields records until io.EOF; *recordio.Reader[T]
// implements it.
type RecordSource[T any] interface {
	Read() (T, error)
}

// Spilled is the result of a spilled sort: this rank's block of the
// globally sorted output, as sorted run files merged lazily on read.
// Concatenating ranks' streams in rank order yields the sorted
// dataset. The handle owns a private directory; Remove deletes it.
type Spilled[T any] struct {
	dir     string
	runs    []string
	records int64
	cd      codec.Codec[T]
	cmp     func(a, b T) int
	merge   extsort.MergeOptions
}

// Records returns the number of records in this block.
func (s *Spilled[T]) Records() int64 { return s.records }

// Runs returns the run file paths (source order).
func (s *Spilled[T]) Runs() []string { return append([]string(nil), s.runs...) }

// segments views the runs without consuming them, so the handle stays
// readable after a merge pass even when a fan-in cap forces pre-merges
// (intermediates land in the handle's directory and die with it).
func (s *Spilled[T]) segments() []extsort.RunSegment {
	segs := make([]extsort.RunSegment, len(s.runs))
	for i, p := range s.runs {
		segs[i] = extsort.RunSegment{Path: p, Lo: 0, Hi: -1}
	}
	return segs
}

// Stream writes the block to w in recordio wire format through a
// lazy merge; cursor buffers are reserved from the merge's gauge.
func (s *Spilled[T]) Stream(w io.Writer) error {
	ms, err := extsort.OpenMergeSegments(s.segments(), s.cd, s.cmp, s.merge)
	if err != nil {
		return err
	}
	defer ms.Close()
	if err := s.merge.Mem.Reserve(int64(s.merge.BufBytes)); err != nil {
		return fmt.Errorf("core: spilled output buffer: %w", err)
	}
	defer s.merge.Mem.Release(int64(s.merge.BufBytes))
	rw := recordio.NewWriterSize(w, s.cd, s.merge.BufBytes)
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := rw.Write(rec); err != nil {
			return err
		}
	}
	return rw.Flush()
}

// ReadAll materialises the block — test and small-result convenience;
// the records are NOT reserved against any gauge.
func (s *Spilled[T]) ReadAll() ([]T, error) {
	ms, err := extsort.OpenMergeSegments(s.segments(), s.cd, s.cmp, s.merge)
	if err != nil {
		return nil, err
	}
	defer ms.Close()
	out := make([]T, 0, s.records)
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// Remove deletes the spill directory and every run in it.
func (s *Spilled[T]) Remove() error { return os.RemoveAll(s.dir) }

// SortStream runs the spilled sort collectively over c; every rank
// calls it with its input stream and receives its Spilled block.
// Options.Spill is required.
func SortStream[T any](c *comm.Comm, in RecordSource[T], cd codec.Codec[T], cmp func(a, b T) int, opt Options) (*Spilled[T], error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	sp := opt.Spill
	if sp == nil {
		return nil, fmt.Errorf("core: SortStream needs Options.Spill")
	}
	tm := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()
	tr := opt.tracer()
	rank, p := c.Rank(), c.Size()
	recSize := int64(cd.Size())
	acct := &memAcct{g: opt.Mem}
	defer acct.releaseAll()
	sp.Stats.AddSpilledSort()

	dir, err := os.MkdirTemp(spillRoot(sp), "spill-*")
	if err != nil {
		return nil, fmt.Errorf("core: spill dir: %w", err)
	}
	keep := false
	defer func() {
		if !keep {
			os.RemoveAll(dir)
		}
	}()
	tr.Emit(rank, "sort.start", map[string]any{
		"stable": opt.Stable, "p": p, "stream": true,
	})

	// Phase 1: cut the input into sorted local runs, sampling each
	// chunk for pivot selection. Peak: the chunk plus the sort's
	// scratch plus the run writer's buffer.
	tm.Start(metrics.PhaseLocalSort)
	chunkN := sp.chunkRecords(recSize, opt.Mem.Budget())
	chunkNeed := int64(chunkN)*recSize*2 + int64(sp.bufBytes())
	if err := acct.reserve(chunkNeed); err != nil {
		return nil, fmt.Errorf("core: spill chunk of %d records: %w", chunkN, err)
	}
	var (
		localRuns   []string
		localCounts []int64
		samples     []T
		total       int64
	)
	chunk := make([]T, 0, chunkN)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if !localSortFast(chunk, cd, cmp, opt) {
			psort.AdaptiveSort(chunk, opt.cores(), opt.Stable, opt.RunThreshold, cmp)
		}
		path := filepath.Join(dir, fmt.Sprintf("local-%06d", len(localRuns)))
		rw, err := extsort.CreateRun(path, cd, sp.bufBytes())
		if err != nil {
			return err
		}
		if err := rw.Write(chunk...); err != nil {
			rw.Abort()
			return fmt.Errorf("core: spill run %s: %w", path, err)
		}
		if err := rw.Commit(); err != nil {
			return err
		}
		sp.Stats.AddRun(int64(len(chunk)) * recSize)
		localRuns = append(localRuns, path)
		localCounts = append(localCounts, int64(len(chunk)))
		samples = append(samples, pivots.RegularSample(chunk, p)...)
		total += int64(len(chunk))
		chunk = chunk[:0]
		return nil
	}
	for {
		rec, err := in.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: read input: %w", err)
		}
		chunk = append(chunk, rec)
		if len(chunk) >= chunkN {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	chunk = nil
	acct.release(chunkNeed)
	tr.Emit(rank, "spill.localruns", map[string]any{
		"runs": len(localRuns), "records": total,
	})

	done := func(runs []string, records int64, reason string) (*Spilled[T], error) {
		keep = true
		tr.Emit(rank, "sort.done", map[string]any{"records": records, "reason": reason})
		return &Spilled[T]{
			dir: dir, runs: runs, records: records,
			cd: cd, cmp: cmp, merge: sp.mergeOptions(dir, opt.Mem),
		}, nil
	}
	if p == 1 {
		return done(localRuns, total, "single")
	}

	// Phase 2: global pivots from the per-chunk regular samples.
	tm.Start(metrics.PhasePivotSelection)
	psort.ParallelSort(samples, opt.cores(), opt.Stable, cmp)
	pl := pivots.RegularSample(samples, p)
	pg, err := pivots.SelectGlobal(c, pl, cd, cmp)
	if err != nil {
		return nil, fmt.Errorf("core: pivot selection: %w", err)
	}
	samples = nil
	if len(pg) == 0 {
		// The whole dataset is empty — globally agreed, since every
		// rank sees the same SelectGlobal result.
		return done(nil, 0, "empty")
	}
	if len(pg) != p-1 {
		return nil, fmt.Errorf("core: selected %d global pivots for %d processes", len(pg), p)
	}

	// Phase 3: partition each run by seek-based binary search — the
	// classical upper bound per run, summed into send counts.
	ubs := make([][]int64, len(localRuns))
	scounts := make([]int, p)
	for r, path := range localRuns {
		ub, err := runBounds(path, cd, localCounts[r], pg, cmp)
		if err != nil {
			return nil, fmt.Errorf("core: partition run %s: %w", path, err)
		}
		ubs[r] = ub
		for dst := 0; dst < p; dst++ {
			scounts[dst] += int(ub[dst+1] - ub[dst])
		}
	}

	tm.Start(metrics.PhaseExchange)
	rcounts, err := exchangeCounts(c, scounts)
	if err != nil {
		return nil, fmt.Errorf("core: count exchange: %w", err)
	}
	var m int64
	for _, rc := range rcounts {
		m += rc
	}

	// Phase 4: the staged exchange with both sides on disk. Send side:
	// each destination's payload is a lazy merge of that destination's
	// segments of the local runs, encoded chunk by chunk into pooled
	// buffers. Receive side: raw wire chunks stream into per-source
	// run files. The schedule visits one destination and one source
	// per round, so one fill merge and one spool writer are live at a
	// time.
	stage := spillStage(opt, recSize)
	window := 2*stage + int64(sp.bufBytes())
	if err := acct.reserve(window); err != nil {
		return nil, fmt.Errorf("core: spill staging window of %d bytes: %w", window, err)
	}
	opt.Exchange.ObservePeakStaging(window)
	tr.Emit(rank, "exchange.plan", map[string]any{
		"send_records": total, "recv_records": m,
		"stage_bytes": stage, "staged": true, "spilled": true,
	})

	pool := &codec.BufferPool{}
	spool := newRecvSpool(dir, p, sp.bufBytes(), recSize, sp.Stats)
	var cur *extsort.MergeStream[T]
	curDst := -1
	defer func() {
		if cur != nil {
			cur.Close()
		}
	}()
	sendBytes := make([]int64, p)
	for dst := 0; dst < p; dst++ {
		sendBytes[dst] = int64(scounts[dst]) * recSize
	}
	st, err := c.StagedAlltoallv(comm.StagedOptions{
		StageBytes: stage,
		SendBytes:  sendBytes,
		RecvBytes:  scale(rcounts, recSize),
		OnWindow:   opt.Exchange.AddWindow,
		Fill: func(dst int, off, n int64) ([]byte, error) {
			if dst != curDst {
				// Destinations are visited one per round, each payload
				// fully streamed — the previous merge is exhausted.
				if cur != nil {
					cur.Close()
					cur = nil
				}
				var segs []extsort.RunSegment
				for r, path := range localRuns {
					if ubs[r][dst+1] > ubs[r][dst] {
						segs = append(segs, extsort.RunSegment{Path: path, Lo: ubs[r][dst], Hi: ubs[r][dst+1]})
					}
				}
				ms, err := extsort.OpenMergeSegments(segs, cd, cmp, sp.mergeOptions(dir, opt.Mem))
				if err != nil {
					return nil, err
				}
				cur, curDst = ms, dst
			}
			buf := pool.Get(int(n))[:n]
			for b := int64(0); b < n; b += recSize {
				rec, err := cur.Next()
				if err != nil {
					return nil, fmt.Errorf("core: fill for rank %d at %d: %w", dst, off+b, err)
				}
				cd.Marshal(buf[b:b+recSize], rec)
			}
			return buf, nil
		},
		FillDone: func(_ int, buf []byte) { pool.Put(buf) },
		Drain:    spool.drain,
	})
	opt.Exchange.AddStaged(st.BytesStaged, st.Chunks)
	opt.Exchange.AddPool(pool.Stats())
	if err != nil {
		spool.abort()
		return nil, fmt.Errorf("core: spilled alltoall: %w", err)
	}
	if cur != nil {
		cur.Close()
		cur = nil
	}
	runs, err := spool.finish()
	if err != nil {
		return nil, err
	}
	acct.release(window)

	// The local runs have been fully shipped; only the received runs
	// constitute the block.
	for _, p := range localRuns {
		os.Remove(p)
	}
	tr.Emit(rank, "spill.exchange", map[string]any{
		"runs": len(runs), "bytes": st.BytesStaged, "stage_bytes": stage,
	})
	return done(runs, m, "spilled")
}

// SortFileShard runs SortStream over shard rank-of-p of the record
// file at path (recordio.ReadShard's shard layout, without ever
// loading the shard): every rank of c calls it with the same path.
func SortFileShard[T any](c *comm.Comm, path string, cd codec.Codec[T], cmp func(a, b T) int, opt Options) (*Spilled[T], error) {
	if opt.Spill == nil {
		return nil, fmt.Errorf("core: SortFileShard needs Options.Spill")
	}
	total, err := recordio.Count[T](path, cd)
	if err != nil {
		return nil, err
	}
	rank, p := c.Rank(), c.Size()
	per := total / int64(p)
	lo := int64(rank) * per
	hi := lo + per
	if rank == p-1 {
		hi = total
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(lo*int64(cd.Size()), io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: seek shard: %w", err)
	}
	bufBytes := opt.Spill.bufBytes()
	if err := opt.Mem.Reserve(int64(bufBytes)); err != nil {
		return nil, fmt.Errorf("core: shard read buffer: %w", err)
	}
	defer opt.Mem.Release(int64(bufBytes))
	src := &limitedSource[T]{r: recordio.NewReaderSize(f, cd, bufBytes), left: hi - lo}
	return SortStream(c, src, cd, cmp, opt)
}

// limitedSource yields the next n records of a reader, then io.EOF.
type limitedSource[T any] struct {
	r    *recordio.Reader[T]
	left int64
}

func (ls *limitedSource[T]) Read() (T, error) {
	if ls.left <= 0 {
		var zero T
		return zero, io.EOF
	}
	rec, err := ls.r.Read()
	if err == nil {
		ls.left--
	}
	return rec, err
}

// runBounds computes the classical upper-bound partition of one sorted
// run file by seek-based binary search: ub[j+1] is the first record
// index greater than pivot j. O(p log n) single-record reads, no
// residency.
func runBounds[T any](path string, cd codec.Codec[T], n int64, pg []T, cmp func(a, b T) int) ([]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recSize := int64(cd.Size())
	buf := make([]byte, recSize)
	readAt := func(i int64) (T, error) {
		if _, err := f.ReadAt(buf, i*recSize); err != nil {
			var zero T
			return zero, fmt.Errorf("read record %d: %w", i, err)
		}
		return cd.Unmarshal(buf), nil
	}
	p := len(pg) + 1
	ub := make([]int64, p+1)
	ub[p] = n
	for j, piv := range pg {
		lo, hi := ub[j], n // pivots ascend, so each bound starts at the last
		for lo < hi {
			mid := (lo + hi) / 2
			rec, err := readAt(mid)
			if err != nil {
				return nil, err
			}
			if cmp(rec, piv) <= 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ub[j+1] = lo
	}
	for j := 1; j <= p; j++ {
		if ub[j] < ub[j-1] {
			ub[j] = ub[j-1]
		}
	}
	return ub, nil
}
