package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/extsort"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
)

// The out-of-core spill tier. When the receive side of the exchange
// does not fit the memlimit budget (or spilling is forced), each
// source's incoming payload — already sorted, being a contiguous slice
// of that source's sorted partition — streams to a per-source run file
// in raw wire format, with no decode and no re-sort, through the same
// atomic temp-and-rename commit the checkpoint writer uses. The output
// is then a lazy k-way merge over the run files with the source rank
// as tiebreaker, which is exactly the stable rank-ordered merge of the
// in-memory path — so every driver path (stable, staged, monolithic,
// zero-copy, marshal) spills with identical output bytes.
//
// SortStream (spillstream.go) extends the same machinery to the input
// side, so a rank never needs its full shard resident at once.

// SpillOptions configures the spill tier; Options.Spill nil disables
// it entirely. Like the rest of Options it must agree across ranks:
// the spill decision is collective (if any rank must spill, all do),
// so a job where only some ranks configure spilling deadlocks.
type SpillOptions struct {
	// Dir is the directory that holds spill files. Every sort creates
	// (and removes) a private subdirectory under it, so a crashed
	// attempt can never leak stale temp runs into a retry. Empty means
	// the OS temp dir.
	Dir string
	// Force spills the exchange's receive side unconditionally, even
	// when it would fit the budget — the ablation/test knob behind the
	// spilled-vs-resident equivalence property.
	Force bool
	// ChunkRecords is the streaming driver's in-memory run size in
	// records; SortStream's peak chunk footprint is ChunkRecords ×
	// record size × 2. Zero derives it from the gauge budget (a
	// quarter of the budget, in records), or 1<<20 with no budget.
	ChunkRecords int
	// MaxFanIn caps the width of one merge pass over run files; more
	// runs are pre-merged in batches first. Default 64.
	MaxFanIn int
	// BufBytes is the per-cursor I/O buffer for run readers and
	// writers; a merge holds (fan-in + 1) × BufBytes, reserved from
	// the gauge. Default 256 KiB.
	BufBytes int
	// Stats accrues spill counters (runs, bytes, merge passes). May be
	// shared across ranks.
	Stats *metrics.SpillStats
}

// FitBudget sizes the tier's unset knobs to a per-rank memory budget.
// Run/merge buffers get budget/32 (floored at 4 KiB, capped at the
// 256 KiB default) and the merge fan-in is whatever a quarter of the
// budget holds in cursor buffers (floored at 4, capped at the 64
// default). Explicitly-set fields are left alone; a zero budget is a
// no-op. The cap on fan-in is what makes the tier safe at any input
// size: run counts grow with the data, but a capped merge pre-merges
// in bounded passes, so the worst concurrent reservation — staging
// window, fill-merge cursors, spool and read buffers — stays under the
// budget regardless of how many runs spilled.
func (sp *SpillOptions) FitBudget(budget int64) {
	if budget <= 0 {
		return
	}
	if sp.BufBytes == 0 {
		sp.BufBytes = int(min(max(budget/32, 4<<10), 256<<10))
	}
	if sp.MaxFanIn == 0 {
		sp.MaxFanIn = int(min(max(budget/4/int64(sp.bufBytes()), 4), 64))
	}
}

func (sp *SpillOptions) bufBytes() int {
	if sp.BufBytes > 0 {
		return sp.BufBytes
	}
	return 256 << 10
}

func (sp *SpillOptions) maxFanIn() int {
	if sp.MaxFanIn > 0 {
		return sp.MaxFanIn
	}
	return 64
}

func (sp *SpillOptions) chunkRecords(recSize, budget int64) int {
	if sp.ChunkRecords > 0 {
		return sp.ChunkRecords
	}
	if budget > 0 {
		n := budget / (4 * recSize)
		if n < 1 {
			n = 1
		}
		if n > 1<<20 {
			n = 1 << 20
		}
		return int(n)
	}
	return 1 << 20
}

// Footprint bounds the peak resident memory of a whole sort job run
// with this spill configuration: one copy of the dataset (the spill
// hand-off releases the input before the output is reserved, so the
// two never co-occupy the budget), plus each rank's staging window,
// spool write buffer and merge cursor buffers, with 25% slack for
// skew. Compare sortjob.Footprint, the in-memory declaration, which
// holds input and receive buffers simultaneously.
func (sp *SpillOptions) Footprint(totalBytes int64, ranks int, stageBytes int64) int64 {
	buf := int64(sp.bufBytes())
	stage := stageBytes
	if stage <= 0 {
		stage = 4 * buf // spillStage's fallback for an unstaged config
	}
	fan := int64(sp.maxFanIn())
	if int64(ranks) < fan {
		fan = int64(ranks) // the output merge fans in one run per source
	}
	perRank := 2*stage + buf + (fan+1)*buf
	return totalBytes + int64(ranks)*perRank + totalBytes/4
}

// mergeOptions builds the extsort merge configuration for this spill.
func (sp *SpillOptions) mergeOptions(tempDir string, g *memlimit.Gauge) extsort.MergeOptions {
	return extsort.MergeOptions{
		MaxFanIn: sp.maxFanIn(),
		BufBytes: sp.bufBytes(),
		Mem:      g,
		TempDir:  tempDir,
		Stats:    sp.Stats,
	}
}

// spillStage picks the stage-chunk size for a spilled exchange: the
// configured StageBytes, or — because the spill path is always staged,
// a monolithic chunk would defeat the bounded window — 4 × BufBytes.
func spillStage(opt Options, recSize int64) int64 {
	if s := effStage(opt.StageBytes, recSize); s > 0 {
		return s
	}
	return effStage(int64(opt.Spill.bufBytes())*4, recSize)
}

// agreeSpill makes the spill decision collective: each rank reports
// whether its receive buffer fits the budget, and the exchange spills
// everywhere if it fails to fit anywhere — the exchange is one
// collective, so all ranks must walk the same path. localWant is
// Force, or a failed receive reservation.
func agreeSpill(wc *comm.Comm, localWant bool) (bool, error) {
	b := []byte{0}
	if localWant {
		b[0] = 1
	}
	votes, err := wc.Allgather(b)
	if err != nil {
		return false, fmt.Errorf("core: spill agreement: %w", err)
	}
	for _, v := range votes {
		if len(v) == 1 && v[0] != 0 {
			return true, nil
		}
	}
	return false, nil
}

// recvSpool lands the exchange's receive side on disk: one run file
// per source rank, written in raw wire bytes as chunks arrive. The
// staged schedule streams one source to completion per round, so at
// most one run writer is ever open — the spool's memory is a single
// write buffer.
type recvSpool struct {
	dir       string
	bufBytes  int
	recSize   int64
	stats     *metrics.SpillStats
	active    *extsort.RawRunWriter
	activeSrc int
	runs      []string // by source rank; "" = no data
	done      []bool
}

func newRecvSpool(dir string, p int, bufBytes int, recSize int64, stats *metrics.SpillStats) *recvSpool {
	return &recvSpool{
		dir: dir, bufBytes: bufBytes, recSize: recSize, stats: stats,
		activeSrc: -1, runs: make([]string, p), done: make([]bool, p),
	}
}

// drain is the comm.StagedOptions.Drain callback.
func (s *recvSpool) drain(src int, _ int64, chunk []byte) error {
	if src != s.activeSrc {
		if err := s.commitActive(); err != nil {
			return err
		}
		if s.done[src] {
			// The schedule visits each (src, dst) pair exactly once;
			// a revisit means interleaved sources, which would corrupt
			// the per-source run.
			return fmt.Errorf("core: spill receive from rank %d resumed after commit", src)
		}
		path := filepath.Join(s.dir, fmt.Sprintf("recv-%06d", src))
		w, err := extsort.CreateRawRun(path, s.bufBytes)
		if err != nil {
			return err
		}
		s.active, s.activeSrc = w, src
		s.runs[src] = path
	}
	_, err := s.active.Write(chunk)
	return err
}

// commitActive closes out the in-flight source's run.
func (s *recvSpool) commitActive() error {
	if s.active == nil {
		return nil
	}
	bytes := s.active.Bytes()
	if err := s.active.Commit(); err != nil {
		return err
	}
	s.stats.AddRun(bytes)
	s.done[s.activeSrc] = true
	s.active, s.activeSrc = nil, -1
	return nil
}

// finish commits the last run and returns the run paths in source-rank
// order — the stability order of the merge.
func (s *recvSpool) finish() ([]string, error) {
	if err := s.commitActive(); err != nil {
		return nil, err
	}
	var runs []string
	for _, p := range s.runs {
		if p != "" {
			runs = append(runs, p)
		}
	}
	return runs, nil
}

// abort discards the in-flight run (committed runs die with the spill
// directory).
func (s *recvSpool) abort() {
	if s.active != nil {
		s.active.Abort()
		s.active = nil
	}
}

// spillExchange runs the all-to-all with its receive side on disk and
// returns the merged resident output. Peak memory is max(input +
// staging window + one write buffer, output + merge cursor buffers)
// instead of the in-memory path's input + output together: the input's
// reservation is released the moment the exchange completes, before
// the output buffer is reserved.
func spillExchange[T any](wc *comm.Comm, work []T, bounds []int, rcounts []int64, m int64, cd codec.Codec[T], cmp func(a, b T) int, opt Options, tm *metrics.PhaseTimer, acct *memAcct, tr trace.Tracer, rank int) ([]T, error) {
	sp := opt.Spill
	p := wc.Size()
	recSize := int64(cd.Size())
	sp.Stats.AddSpilledSort()
	// The spill phase is its own span (not "exchange"): the run-file
	// detour changes the cost model enough that a timeline reader
	// should see it as a distinct critical-path step.
	ssp := trace.StartSpan(tr, rank, opt.Span, "spill", map[string]any{
		"recv_records": m, "zero_copy": zeroCopyEligible(cd, opt),
	})

	dir, err := os.MkdirTemp(spillRoot(sp), "spill-*")
	if err != nil {
		return nil, fmt.Errorf("core: spill dir: %w", err)
	}
	defer os.RemoveAll(dir)

	stage := spillStage(opt, recSize)
	zc := zeroCopyEligible(cd, opt)
	// Window: one incoming chunk, plus one outgoing encode buffer on
	// the marshal path (zero-copy sends alias the work slab), plus the
	// spool's single write buffer.
	window := 2*stage + int64(sp.bufBytes())
	if zc {
		window = stage + int64(sp.bufBytes())
	}
	if err := acct.reserve(window); err != nil {
		return nil, fmt.Errorf("core: spill staging window of %d bytes: %w", window, err)
	}
	opt.Exchange.ObservePeakStaging(window)

	spool := newRecvSpool(dir, p, sp.bufBytes(), recSize, sp.Stats)
	so := comm.StagedOptions{
		StageBytes: stage,
		SendBytes:  sendBytesOf(bounds, p, recSize),
		RecvBytes:  scale(rcounts, recSize),
		OnWindow:   opt.Exchange.AddWindow,
		Drain:      spool.drain,
	}
	var pool *codec.BufferPool
	if zc {
		workBytes, ok := codec.View(cd, work)
		if !ok {
			return nil, fmt.Errorf("core: zero-copy spill on non-zero-copy codec")
		}
		so.Fill = func(dst int, off, n int64) ([]byte, error) {
			lo := int64(bounds[dst])*recSize + off
			return workBytes[lo : lo+n : lo+n], nil
		}
	} else {
		pool = &codec.BufferPool{}
		so.Fill = stagedFill(work, bounds, cd, recSize, pool)
		so.FillDone = func(_ int, buf []byte) { pool.Put(buf) }
	}
	st, err := wc.StagedAlltoallv(so)
	opt.Exchange.AddStaged(st.BytesStaged, st.Chunks)
	if zc {
		opt.Exchange.AddZeroCopy(st.BytesStaged, st.Chunks)
	} else {
		opt.Exchange.AddPool(pool.Stats())
	}
	if err != nil {
		spool.abort()
		return nil, fmt.Errorf("core: spilled alltoall: %w", err)
	}
	runs, err := spool.finish()
	if err != nil {
		return nil, err
	}
	acct.release(window)

	// The working set has been fully shipped (the self slice too — it
	// went through the spool like any other source): its claim on the
	// budget ends here, and only now is the output reserved. This
	// hand-off is the spill tier's point: input and output never
	// occupy the budget together.
	acct.release(int64(len(work)) * recSize)
	if err := acct.reserve(m * recSize); err != nil {
		return nil, fmt.Errorf("core: spilled output of %d records: %w", m, err)
	}

	tr.Emit(rank, "spill.exchange", map[string]any{
		"runs": len(runs), "bytes": st.BytesStaged, "stage_bytes": stage,
	})

	// Lazy merge back to a resident block: source-rank order with the
	// run index as tiebreaker reproduces the in-memory rank-ordered
	// stable merge exactly.
	tm.Start(metrics.PhaseLocalOrdering)
	ms, err := extsort.OpenMerge(runs, cd, cmp, sp.mergeOptions(dir, opt.Mem))
	if err != nil {
		return nil, err
	}
	defer ms.Close()
	out := make([]T, 0, m)
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	if int64(len(out)) != m {
		return nil, fmt.Errorf("core: spilled merge yielded %d of %d records", len(out), m)
	}
	ssp.End(map[string]any{
		"records": len(out), "runs": len(runs), "bytes_staged": st.BytesStaged, "chunks": st.Chunks,
	})
	return out, nil
}

// spillRoot resolves the spill parent directory.
func spillRoot(sp *SpillOptions) string {
	if sp.Dir != "" {
		return sp.Dir
	}
	return os.TempDir()
}
