package engine

import "sdssort/internal/telemetry"

// RegisterMetrics exposes the engine's job life cycle on r. Every
// series reads Stats() live at scrape time; register once per engine
// on a fresh registry.
func (e *Engine) RegisterMetrics(r *telemetry.Registry) {
	stat := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(e.Stats()) }
	}
	r.CounterFunc("sds_engine_jobs_submitted_total", "Jobs submitted to the engine.", stat(func(s Stats) float64 { return float64(s.Submitted) }))
	r.CounterFunc("sds_engine_jobs_completed_total", "Jobs that finished successfully.", stat(func(s Stats) float64 { return float64(s.Completed) }))
	r.CounterFunc("sds_engine_jobs_failed_total", "Jobs that finished with an error (cancellation and deadline included).", stat(func(s Stats) float64 { return float64(s.Failed) }))
	r.CounterFunc("sds_engine_jobs_degraded_total", "Jobs that lost ranks and continued shrunken on the survivors.", stat(func(s Stats) float64 { return float64(s.Degraded) }))
	r.GaugeFunc("sds_engine_jobs_queued", "Jobs awaiting footprint admission.", stat(func(s Stats) float64 { return float64(s.Queued) }))
	r.GaugeFunc("sds_engine_jobs_running", "Jobs currently holding their footprint and executing.", stat(func(s Stats) float64 { return float64(s.Running) }))
	r.CounterFunc("sds_engine_admission_wait_seconds_total", "Cumulative time admitted jobs spent queued behind the memory budget.", stat(func(s Stats) float64 { return s.AdmissionWait.Seconds() }))
	r.CounterFunc("sds_engine_worker_spawns_total", "Rank worker goroutines ever started (== ranks for any sequential stream).", stat(func(s Stats) float64 { return float64(s.WorkerSpawns) }))
	r.GaugeFunc("sds_engine_workers_alive", "Warm rank workers currently alive across all pools.", stat(func(s Stats) float64 { return float64(s.WorkersAlive) }))
	r.GaugeFunc("sds_engine_workers_busy", "Rank workers currently executing a job body.", stat(func(s Stats) float64 { return float64(s.WorkersBusy) }))
}
