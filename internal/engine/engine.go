// Package engine turns the one-launch-one-sort stack into a persistent
// job service: an Engine owns a long-lived fabric (the transports of an
// in-process world, or one rank's end of a TCP world), keeps a pool of
// rank worker goroutines warm across jobs, and multiplexes submitted
// jobs over the shared fabric — each job on its own job-scoped
// communicator (comm.Attach under a per-job name, so concurrent jobs'
// tags can never cross-talk), its own metrics scope, and its own slice
// of the shared memory budget.
//
// The life cycle of a job:
//
//	Submit   → queued, a metrics scope and (if Footprint > 0) a
//	           per-job gauge are allocated
//	admitted → the engine reserved the declared footprint on the
//	           shared gauge; one task per rank is dispatched to the
//	           warm worker pool
//	running  → every rank executes the job body collectively on the
//	           job's communicator
//	done     → footprint released, Wait unblocks, the next queued job
//	           is considered
//
// Admission is strict FIFO over declared footprints: a job starts only
// when the shared gauge can hold its whole declaration, so two
// concurrent sorts cannot OOM each other — the service analogue of the
// paper's per-rank memory budget.
//
// Failure isolation: when any rank of a job errors, the engine cancels
// the job — sibling ranks parked in the job's collectives are unblocked
// with comm.ErrCanceled via the fabric's cancel/interrupt hooks — but
// the fabric itself stays up and later jobs run untouched. A failed or
// even fault-killed job cannot poison the engine.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sdssort/internal/checkpoint"
	"sdssort/internal/comm"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
)

// Fabric is what an engine multiplexes over: a set of per-rank
// transports that outlives any single job. *comm.World implements it;
// anything shaped like a world can.
type Fabric interface {
	// Size is the number of ranks in the fabric.
	Size() int
	// Transport returns rank r's endpoint. Called once per rank at
	// engine construction; the endpoints live until the fabric closes.
	Transport(rank int) comm.Transport
}

// interrupter is the optional fabric hook job cancellation needs: wake
// parked receives so they re-check their cancel channels.
type interrupter interface{ Interrupt() }

// Options configures an engine.
type Options struct {
	// Mem, when non-nil, is the shared admission gauge: a job's
	// declared Footprint is reserved here before it may start and
	// released when it completes, so the sum of running jobs' declared
	// footprints never exceeds the budget. Nil disables admission
	// control (every job starts immediately).
	Mem *memlimit.Gauge
	// WrapTransport, when non-nil, decorates each rank's transport once
	// at engine construction — the fabric-level hook (simnet cost
	// models, etc.). Per-job decoration goes on JobSpec.WrapTransport.
	WrapTransport func(comm.Transport) comm.Transport
	// Trace, when non-nil, receives engine life-cycle events at rank -1:
	// engine.submit / engine.admit / engine.done.
	Trace trace.Tracer
	// Name prefixes job communicator names (default "world"). All
	// engines over one fabric — in particular every process of a TCP
	// world — must agree on it, epoch suffix included.
	Name string
}

// ErrEngineClosed is returned by Submit after Close has begun.
var ErrEngineClosed = errors.New("engine: closed")

// ErrDeadline is the cause Job.Wait returns when a per-job deadline
// cancelled the job.
var ErrDeadline = errors.New("engine: job deadline exceeded")

// PanicError is a rank panic converted to a job error, the engine
// analogue of cluster.PanicError: a crashed rank fails its job, not the
// process or the fabric.
type PanicError struct {
	Rank  int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: rank %d: panic: %v", e.Rank, e.Value)
}

// JobCommName is the naming convention for job-scoped communicators:
// job id under the world name. Every participant of a multiplexed
// fabric — the in-process engine and each sdsnode -serve process —
// derives the same name for the same job, which is what keeps the job's
// message context globally agreed.
func JobCommName(world string, id int) string {
	return fmt.Sprintf("%s/job%d", world, id)
}

// Engine multiplexes jobs over a long-lived fabric. Build one with New,
// submit with Submit (or sortjob.Submit), and Close it to drain.
type Engine struct {
	opts    Options
	fab     Fabric
	trs     []comm.Transport // per-rank, wrapped once, warm for life
	workers []*rankWorkers
	reg     *metrics.JobRegistry
	tr      trace.Tracer
	spawned atomic.Int64

	// life-cycle counters behind Stats(), read live by telemetry.
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	degraded  atomic.Int64 // jobs that shrank onto survivors instead of failing
	admitWait atomic.Int64 // total queued→admitted wait, nanoseconds

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Job // submitted, not yet admitted (FIFO)
	active int    // admitted or queued, not yet done
	closed bool
}

// New builds an engine over fab. The fabric's transports are fetched
// (and fabric-wrapped) once, here — jobs reuse them, which is exactly
// the warm-fabric saving: no re-dial, no handshake, no respawn per job.
func New(fab Fabric, opts Options) *Engine {
	if opts.Name == "" {
		opts.Name = "world"
	}
	e := &Engine{
		opts: opts,
		fab:  fab,
		trs:  make([]comm.Transport, fab.Size()),
		reg:  metrics.NewJobRegistry(),
		tr:   opts.Trace,
	}
	if e.tr == nil {
		e.tr = trace.Nop{}
	}
	e.cond = sync.NewCond(&e.mu)
	e.workers = make([]*rankWorkers, fab.Size())
	for r := range e.trs {
		tr := fab.Transport(r)
		if opts.WrapTransport != nil {
			tr = opts.WrapTransport(tr)
		}
		e.trs[r] = tr
		e.workers[r] = &rankWorkers{}
	}
	return e
}

// Size returns the fabric's rank count.
func (e *Engine) Size() int { return len(e.trs) }

// Registry returns the engine's per-job metrics registry.
func (e *Engine) Registry() *metrics.JobRegistry { return e.reg }

// WorkerSpawns reports how many rank worker goroutines the engine has
// ever started. Back-to-back jobs reuse parked workers, so after any
// number of sequential jobs this is exactly Size() — the "no goroutine
// respawn" claim, as a counter.
func (e *Engine) WorkerSpawns() int64 { return e.spawned.Load() }

// Stats is a point-in-time view of the engine's job life cycle, the
// payload behind the telemetry plane's engine gauges.
type Stats struct {
	// Submitted / Completed / Failed are monotonic job counts;
	// Completed covers successful jobs only. Degraded counts jobs that
	// lost ranks but finished on the survivors (they also count as
	// Completed when their degraded attempt succeeds).
	Submitted, Completed, Failed, Degraded int64
	// Queued jobs await admission; Running jobs hold their footprint.
	Queued, Running int
	// WorkersAlive / WorkersBusy sum the warm pools across ranks.
	WorkersAlive, WorkersBusy int
	// WorkerSpawns is the lifetime worker-goroutine count.
	WorkerSpawns int64
	// AdmissionWait is the cumulative time admitted jobs spent queued —
	// the admission-blocked time the memory budget imposed.
	AdmissionWait time.Duration
}

// Stats returns the engine's current life-cycle counters. Safe to call
// concurrently with job execution; the snapshot is internally
// consistent for the queue/active counts but the worker sums are read
// pool by pool.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	queued := len(e.queue)
	running := e.active - queued
	e.mu.Unlock()
	s := Stats{
		Submitted:     e.submitted.Load(),
		Completed:     e.completed.Load(),
		Failed:        e.failed.Load(),
		Degraded:      e.degraded.Load(),
		Queued:        queued,
		Running:       running,
		WorkerSpawns:  e.spawned.Load(),
		AdmissionWait: time.Duration(e.admitWait.Load()),
	}
	for _, w := range e.workers {
		w.mu.Lock()
		s.WorkersAlive += w.alive
		s.WorkersBusy += w.busy
		w.mu.Unlock()
	}
	return s
}

// Env is what the engine hands a job body on each rank: the job's
// metrics scope and its slice of the memory budget. The communicator is
// passed separately, already scoped to the job.
type Env struct {
	// Metrics is the job's isolated metrics scope; bodies should time
	// against Metrics.Timer(rank) and count against Metrics.Exchange.
	Metrics *metrics.JobMetrics
	// Mem is the job's private gauge, budgeted at the declared
	// footprint (nil when Footprint was 0). Sort bodies pass it as
	// core.Options.Mem so the job's own reservations are bounded by
	// what admission granted it. A degraded re-dispatch gets a fresh
	// gauge grown for the larger per-survivor share.
	Mem *memlimit.Gauge
	// Span is the job's ambient span scope: bodies pass it as
	// core.Options.Span (directly or via algo.Options.Core) so every
	// span a sort opens nests under the job's root span and carries the
	// job's trace/job labels.
	Span trace.Scope
	// Degraded is set on a shrink re-dispatch: the body runs on the
	// survivors only and should resume from Resume instead of its input.
	Degraded bool
	// Resume is the redistributed cut a degraded body resumes from.
	Resume checkpoint.Cut
	// Lost holds the original ranks that died (Degraded only).
	Lost []int
}

// JobSpec describes one job.
type JobSpec struct {
	// Name labels the job in metrics and traces ("job<id>" if empty).
	Name string
	// Footprint is the job's declared peak memory in bytes, reserved on
	// the engine's shared gauge for the job's whole run. 0 bypasses
	// admission control for this job.
	Footprint int64
	// Deadline, when positive, bounds the job's wall time from
	// admission: past it the job is cancelled and Wait returns
	// ErrDeadline. It is per job — queue time does not count, and other
	// jobs are unaffected.
	Deadline time.Duration
	// WrapTransport, when non-nil, decorates each rank's transport for
	// this job only — the hook the fault-injection soak uses to kill
	// one job without poisoning the fabric.
	WrapTransport func(comm.Transport) comm.Transport
	// Shrink, when non-nil, lets a job that lost ranks finish degraded
	// instead of failing: the survivors are re-dispatched once, on a
	// group communicator spanning exactly them, resuming from the cut
	// Shrink.Redistribute rebuilds. See JobShrink.
	Shrink *JobShrink
	// Body runs collectively: every rank calls it with the job-scoped
	// communicator. An error on any rank cancels the whole job. On a
	// degraded re-dispatch rank is the survivor's rank in the shrunken
	// world and env.Degraded/env.Resume describe the resume.
	Body func(env Env, rank int, c *comm.Comm) error
}

// JobShrink is a job's degraded-mode policy, the per-job analogue of
// cluster.ShrinkPolicy: when a job fails and its lost ranks can be
// identified from the rank errors, the engine redistributes the job's
// checkpoints over the survivors and re-dispatches the body on them —
// the job is marked degraded, not failed, and the fabric keeps every
// other job untouched. The retry happens at most once: a second loss
// during the degraded attempt fails the job for real (resubmission is
// the client's relaunch path).
type JobShrink struct {
	// MinRanks floors the degraded world size; values below 2 are
	// treated as 2.
	MinRanks int
	// Redistribute rebuilds the job's checkpoint cut for the surviving
	// world (same contract as cluster.ShrinkPolicy.Redistribute).
	// Returning an error or a PhaseNone cut aborts the degraded retry.
	Redistribute func(lost []int, oldSize, newEpoch int) (checkpoint.Cut, error)
}

// State is a job's position in its life cycle.
type State int32

const (
	// Queued: submitted, waiting for its footprint to fit.
	Queued State = iota
	// Running: admitted; rank bodies are executing.
	Running
	// Done: finished; Wait will not block and Err is final.
	Done
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Job is a submitted job's handle.
type Job struct {
	e    *Engine
	spec JobSpec
	id   int

	metrics *metrics.JobMetrics
	mem     *memlimit.Gauge // per-job budget, nil without a footprint
	span    *trace.Span     // job root span, opened at admission (rank -1)

	state     atomic.Int32
	remaining atomic.Int32
	degraded  atomic.Bool // the job survived a lost rank by shrinking
	done      chan struct{}
	queuedAt  time.Time
	start     time.Time
	dl        *time.Timer

	mu           sync.Mutex
	cancel       chan struct{} // current attempt's cancel; replaced on a degraded retry
	cancelClosed bool
	errs         []error // per-rank body errors (shrunken-world indexed after a retry)
	cause        error   // abort cause (deadline, explicit cancel)
	err          error   // final, set before done closes
	lost         []int   // original ranks shed by the degraded retry
	resume       checkpoint.Cut
	extra        int64 // extra shared-gauge bytes the degraded attempt holds
}

// ID returns the engine-assigned job id.
func (j *Job) ID() int { return j.id }

// Metrics returns the job's isolated metrics scope.
func (j *Job) Metrics() *metrics.JobMetrics { return j.metrics }

// State returns the job's current life-cycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Degraded reports whether the job shrank onto its survivors after
// losing ranks. It may be true while the job is still Running (the
// degraded attempt) and stays true once Done — a degraded job that
// finishes cleanly counts as completed, not failed.
func (j *Job) Degraded() bool { return j.degraded.Load() }

// Lost returns the original ranks a degraded job shed (nil otherwise).
func (j *Job) Lost() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]int(nil), j.lost...)
}

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes and returns its error.
func (j *Job) Wait() error {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Cancel aborts the job: parked collectives unblock with
// comm.ErrCanceled and Wait returns a cancellation error. Cancelling a
// finished job is a no-op.
func (j *Job) Cancel() {
	j.abort(fmt.Errorf("engine: job %d cancelled: %w", j.id, comm.ErrCanceled))
}

// abort records cause (first writer wins), closes the current
// attempt's cancel channel and nudges the fabric so parked receives
// notice. The channel is mu-guarded because a degraded retry replaces
// it, and the deadline timer may fire concurrently with that swap.
func (j *Job) abort(cause error) {
	j.mu.Lock()
	if j.cause == nil {
		j.cause = cause
	}
	if !j.cancelClosed {
		close(j.cancel)
		j.cancelClosed = true
	}
	j.mu.Unlock()
	j.e.interrupt()
}

// cascade closes the cancel channel without recording a cause — used
// when a rank error is already the cause.
func (j *Job) cascade() {
	j.mu.Lock()
	if !j.cancelClosed {
		close(j.cancel)
		j.cancelClosed = true
	}
	j.mu.Unlock()
	j.e.interrupt()
}

// finalErr distils the job's outcome: rank errors that are not mere
// cancellation cascades win; otherwise the abort cause (deadline,
// Cancel); otherwise success.
func (j *Job) finalErr() error {
	var real []error
	for r, err := range j.errs {
		if err != nil && !errors.Is(err, comm.ErrCanceled) {
			real = append(real, fmt.Errorf("rank %d: %w", r, err))
		}
	}
	if len(real) > 0 {
		return errors.Join(real...)
	}
	if j.cause != nil {
		return j.cause
	}
	// All errors (if any) were pure cancellations with no recorded
	// cause — surface one rather than claiming success.
	for r, err := range j.errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// Submit enqueues a job and starts it as soon as admission allows.
func (e *Engine) Submit(spec JobSpec) (*Job, error) {
	if spec.Body == nil {
		return nil, errors.New("engine: JobSpec.Body is required")
	}
	if spec.Footprint < 0 {
		return nil, fmt.Errorf("engine: negative footprint %d", spec.Footprint)
	}
	if b := e.opts.Mem.Budget(); b > 0 && spec.Footprint > b {
		return nil, fmt.Errorf("engine: footprint %d exceeds the engine budget %d — the job could never be admitted", spec.Footprint, b)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	size := e.Size()
	j := &Job{
		e:      e,
		spec:   spec,
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
		errs:   make([]error, size),
	}
	j.metrics = e.reg.NewJob(spec.Name, size)
	j.id = j.metrics.ID
	if spec.Footprint > 0 {
		j.mem = memlimit.New(spec.Footprint)
	}
	j.remaining.Store(int32(size))
	j.queuedAt = time.Now()
	e.submitted.Add(1)
	e.active++
	e.queue = append(e.queue, j)
	e.tr.Emit(-1, "engine.submit", map[string]any{
		"job": j.id, "name": j.metrics.Name, "footprint": spec.Footprint,
	})
	e.scheduleLocked()
	return j, nil
}

// scheduleLocked admits queued jobs in strict FIFO order while the head
// job's footprint fits on the shared gauge. Strict FIFO means a large
// queued job is never starved by small ones slipping past it.
func (e *Engine) scheduleLocked() {
	for len(e.queue) > 0 {
		j := e.queue[0]
		if j.spec.Footprint > 0 {
			if err := e.opts.Mem.Reserve(j.spec.Footprint); err != nil {
				return // head does not fit yet; completion will retry
			}
		}
		e.queue = e.queue[1:]
		e.startLocked(j)
	}
}

// startLocked dispatches an admitted job's rank tasks to the warm pool.
func (e *Engine) startLocked(j *Job) {
	j.start = time.Now()
	e.admitWait.Add(j.start.Sub(j.queuedAt).Nanoseconds())
	j.state.Store(int32(Running))
	if j.spec.Deadline > 0 {
		j.dl = time.AfterFunc(j.spec.Deadline, func() {
			j.abort(fmt.Errorf("%w (%v)", ErrDeadline, j.spec.Deadline))
		})
	}
	e.tr.Emit(-1, "engine.admit", map[string]any{
		"job": j.id, "name": j.metrics.Name, "footprint": j.spec.Footprint,
	})
	// The job's root span: admission to completion, at rank -1 (the
	// engine's control plane — no rank owns a job). Rank bodies nest
	// their sort spans under it through Env.Span.
	j.span = trace.StartSpan(e.tr, -1, trace.Scope{
		Trace: JobCommName(e.opts.Name, j.id), Job: j.metrics.Name,
	}, "job", map[string]any{
		"job_id": j.id, "footprint": j.spec.Footprint,
	})
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	for r := 0; r < e.Size(); r++ {
		rank := r
		e.workers[rank].dispatch(e, workerTask{
			work: func() error { return e.runRank(j, rank, cancel) },
			done: func(err error) { j.rankDone(rank, err) },
		})
	}
}

// runRank executes one rank's share of a job on a job-scoped
// communicator, converting panics to errors so a crashed rank fails its
// job instead of the process.
func (e *Engine) runRank(j *Job, rank int, cancel <-chan struct{}) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Rank: rank, Value: p}
		}
	}()
	tr := e.trs[rank]
	if j.spec.WrapTransport != nil {
		tr = j.spec.WrapTransport(tr)
	}
	jt := &jobTransport{Transport: tr, cancel: cancel}
	c := comm.Attach(jt, JobCommName(e.opts.Name, j.id))
	return j.spec.Body(Env{Metrics: j.metrics, Mem: j.mem, Span: j.span.Scope()}, rank, c)
}

// runRankShrunk is runRank for one survivor of a degraded retry: the
// communicator is a group over exactly the survivors' fabric
// transports, under a retry-suffixed name so frames of the failed
// full-size attempt can never surface in it. worldRank addresses the
// fabric; the body sees the survivor's shrunken-world rank.
func (e *Engine) runRankShrunk(j *Job, worldRank int, survivors []int, cancel <-chan struct{}) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Rank: worldRank, Value: p}
		}
	}()
	tr := e.trs[worldRank]
	if j.spec.WrapTransport != nil {
		tr = j.spec.WrapTransport(tr)
	}
	jt := &jobTransport{Transport: tr, cancel: cancel}
	c, err := comm.AttachGroup(jt, JobCommName(e.opts.Name, j.id)+"@shrunk", survivors)
	if err != nil {
		return err
	}
	env := Env{
		Metrics:  j.metrics,
		Mem:      j.mem,
		Span:     j.span.Scope(),
		Degraded: true,
		Resume:   j.resume,
		Lost:     append([]int(nil), j.lost...),
	}
	return j.spec.Body(env, c.Rank(), c)
}

// rankDone records a rank's outcome; the last rank finalises the job.
func (j *Job) rankDone(rank int, err error) {
	if err != nil {
		j.mu.Lock()
		j.errs[rank] = err
		j.mu.Unlock()
		// Unblock the sibling ranks parked in this job's collectives.
		// The fabric stays up; only this job's context is abandoned.
		j.cascade()
	}
	if j.remaining.Add(-1) == 0 {
		j.e.jobDone(j)
	}
}

// jobDone finalises a job — unless a degraded retry adopts it: stop
// its deadline, compute the final error, release the admission
// reservation and let the queue advance.
func (e *Engine) jobDone(j *Job) {
	j.mu.Lock()
	ferr := j.finalErr()
	j.mu.Unlock()
	if ferr != nil && e.tryDegrade(j, ferr) {
		return // the job continues, shrunken; this was not its end
	}
	if j.dl != nil {
		j.dl.Stop()
	}
	j.metrics.SetElapsed(time.Since(j.start))
	j.mu.Lock()
	j.err = ferr
	err := j.err
	j.mu.Unlock()
	j.state.Store(int32(Done))
	if err != nil {
		e.failed.Add(1)
	} else {
		e.completed.Add(1)
	}
	close(j.done)
	e.mu.Lock()
	if j.spec.Footprint > 0 {
		e.opts.Mem.Release(j.spec.Footprint + j.extra)
	}
	e.active--
	e.scheduleLocked()
	e.cond.Broadcast()
	e.mu.Unlock()
	ev := map[string]any{
		"job": j.id, "name": j.metrics.Name,
		"elapsed": j.metrics.Elapsed().String(),
	}
	if j.Degraded() {
		ev["degraded"] = true
	}
	if err != nil {
		ev["error"] = err.Error()
	}
	j.span.End(ev)
	e.tr.Emit(-1, "engine.done", ev)
}

// jobLostRanks extracts the dead ranks a failed attempt's per-rank
// errors identify — the ranks ErrPeerLost names and the ranks that
// panicked. Survivors cancelled by the cascade carry no rank identity
// and are not counted. Indices are ranks of the attempt's own world.
func jobLostRanks(errs []error, size int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(r int) {
		if r >= 0 && r < size && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, err := range errs {
		if err == nil {
			continue
		}
		if r, ok := comm.PeerLost(err); ok {
			add(r)
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			add(pe.Rank)
		}
	}
	sort.Ints(out)
	return out
}

// tryDegrade decides whether a failed job may continue shrunken and, if
// so, redistributes its checkpoints, re-reserves the grown per-survivor
// footprint and re-dispatches the body on the survivors. Returns false
// when the job must fail for real: no shrink policy, a retry already
// spent, unidentifiable losses, too few survivors, redistribution
// failure, or no footprint headroom.
func (e *Engine) tryDegrade(j *Job, ferr error) bool {
	sh := j.spec.Shrink
	if sh == nil || sh.Redistribute == nil || j.degraded.Load() {
		return false
	}
	size := e.Size()
	j.mu.Lock()
	lost := jobLostRanks(j.errs, size)
	j.mu.Unlock()
	minRanks := sh.MinRanks
	if minRanks < 2 {
		minRanks = 2
	}
	if len(lost) == 0 || size-len(lost) < minRanks {
		return false
	}
	cut, err := sh.Redistribute(lost, size, 1)
	if err != nil || cut.Phase == checkpoint.PhaseNone {
		reason := "no consistent cut"
		if err != nil {
			reason = err.Error()
		}
		e.tr.Emit(-1, "engine.shrink_fallback", map[string]any{
			"job": j.id, "name": j.metrics.Name, "lost": lost, "reason": reason,
		})
		return false
	}
	survivors := make([]int, 0, size-len(lost))
	dead := make(map[int]bool, len(lost))
	for _, r := range lost {
		dead[r] = true
	}
	for r := 0; r < size; r++ {
		if !dead[r] {
			survivors = append(survivors, r)
		}
	}
	// Each survivor's share of the job grows by roughly p/(p−k); grow
	// the admission reservation and the job's private budget to match,
	// or give up if the shared gauge cannot hold the difference.
	var extra int64
	if j.spec.Footprint > 0 {
		extra = j.spec.Footprint * int64(len(lost)) / int64(len(survivors))
		if extra > 0 {
			if err := e.opts.Mem.Reserve(extra); err != nil {
				e.tr.Emit(-1, "engine.shrink_fallback", map[string]any{
					"job": j.id, "name": j.metrics.Name, "lost": lost,
					"reason": fmt.Sprintf("no footprint headroom: %v", err),
				})
				return false
			}
		}
		j.mem = memlimit.New(j.spec.Footprint + extra)
	}
	j.mu.Lock()
	j.extra = extra
	j.lost = lost
	j.resume = cut
	j.errs = make([]error, len(survivors))
	j.cause = nil
	j.cancel = make(chan struct{})
	j.cancelClosed = false
	cancel := j.cancel
	j.mu.Unlock()
	j.degraded.Store(true)
	j.remaining.Store(int32(len(survivors)))
	e.degraded.Add(1)
	e.tr.Emit(-1, "engine.degraded", map[string]any{
		"job": j.id, "name": j.metrics.Name, "lost": lost,
		"world": len(survivors), "resume_epoch": cut.Epoch, "resume_phase": cut.Phase.String(),
		"error": ferr.Error(),
	})
	for i, wr := range survivors {
		idx, worldRank := i, wr
		e.workers[worldRank].dispatch(e, workerTask{
			work: func() error { return e.runRankShrunk(j, worldRank, survivors, cancel) },
			done: func(err error) { j.rankDone(idx, err) },
		})
	}
	return true
}

// interrupt nudges the fabric so parked receives re-check cancellation.
func (e *Engine) interrupt() {
	if in, ok := e.fab.(interrupter); ok {
		in.Interrupt()
	}
}

// Close drains the engine: submissions are rejected from now on, every
// queued and running job runs to completion, and the warm workers are
// released. The fabric is NOT closed — the engine never owned it.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		for e.active > 0 {
			e.cond.Wait()
		}
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for e.active > 0 {
		e.cond.Wait()
	}
	for _, w := range e.workers {
		w.close()
	}
	e.mu.Unlock()
	return nil
}

// workerTask is one rank's share of one job, split so the pool can
// finish its own bookkeeping between the work and the completion
// callback: done fires only after the worker has marked itself free,
// which is what makes "a job completed ⇒ its workers are reusable" hold
// without races — a Submit issued the instant Wait returns reuses the
// pool instead of spawning.
type workerTask struct {
	work func() error
	done func(error)
}

// rankWorkers is one rank's warm worker pool. The first job spawns a
// worker; later jobs reuse it, and the pool only grows while jobs
// genuinely overlap (more queued tasks than non-busy workers). Parked
// workers cost nothing but a goroutine.
type rankWorkers struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []workerTask
	alive  int // worker goroutines in the loop
	busy   int // workers currently inside task.work
	closed bool
}

// dispatch enqueues a task, spawning a worker only when every alive
// worker is busy with other work (jobs overlap, or first use).
func (w *rankWorkers) dispatch(e *Engine, t workerTask) {
	w.mu.Lock()
	if w.cond == nil {
		w.cond = sync.NewCond(&w.mu)
	}
	w.queue = append(w.queue, t)
	if len(w.queue) > w.alive-w.busy {
		w.alive++
		e.spawned.Add(1)
		go w.loop()
	} else {
		w.cond.Signal()
	}
	w.mu.Unlock()
}

func (w *rankWorkers) loop() {
	w.mu.Lock()
	for {
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.queue) == 0 { // closed and drained
			w.alive--
			w.mu.Unlock()
			return
		}
		t := w.queue[0]
		w.queue = w.queue[1:]
		w.busy++
		w.mu.Unlock()
		err := t.work()
		w.mu.Lock()
		w.busy--
		w.mu.Unlock()
		// The completion callback runs with this worker already free:
		// whatever it unblocks (Wait, the scheduler) may dispatch here
		// again immediately and find the pool reusable.
		t.done(err)
		w.mu.Lock()
	}
}

func (w *rankWorkers) close() {
	w.mu.Lock()
	w.closed = true
	if w.cond != nil {
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// jobTransport scopes a rank's transport to one job: once the job's
// cancel channel closes, sends fail fast and receives abandon their
// wait with comm.ErrCanceled — without consuming messages when the
// underlying transport is cancellation-aware. This is what lets a
// failed job's surviving ranks escape its collectives while the fabric
// keeps serving every other job.
type jobTransport struct {
	comm.Transport
	cancel <-chan struct{}
}

func (t *jobTransport) canceled() error {
	select {
	case <-t.cancel:
		return fmt.Errorf("engine: job aborted: %w", comm.ErrCanceled)
	default:
		return nil
	}
}

func (t *jobTransport) Send(dst int, ctx uint64, tag int32, data []byte) error {
	if err := t.canceled(); err != nil {
		return err
	}
	return t.Transport.Send(dst, ctx, tag, data)
}

func (t *jobTransport) Recv(src int, ctx uint64, tag int32) ([]byte, error) {
	if err := t.canceled(); err != nil {
		return nil, err
	}
	if ct, ok := t.Transport.(comm.CancelableTransport); ok {
		return ct.RecvCancel(src, ctx, tag, t.cancel)
	}
	// Fallback for decorated transports (fault injectors, cost models)
	// that cannot abandon a wait in place: park the real receive on a
	// goroutine and walk away on cancellation. The abandoned receive
	// can only ever consume a message of this job's own context, which
	// nobody will look at again.
	type res struct {
		data []byte
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		data, err := t.Transport.Recv(src, ctx, tag)
		ch <- res{data, err}
	}()
	select {
	case r := <-ch:
		return r.data, r.err
	case <-t.cancel:
		return nil, fmt.Errorf("engine: job aborted: %w", comm.ErrCanceled)
	}
}
