package engine_test

import (
	"strings"

	"sdssort/internal/engine"
	"testing"
	"time"
)

func TestDecodeJobs(t *testing.T) {
	manifest := `
# warm-up, tiny
{"name": "small", "workload": "uniform", "n": 1000}

{"workload": "zipf", "alpha": 1.6, "n": 5000, "out": "/tmp/z.{rank}", "deadline": "30s"}
{"in": "/data/shard.bin", "stable": true, "stage": 65536}
`
	jobs, err := engine.DecodeJobs(strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("decoded %d jobs, want 3 (blank lines and comments skipped)", len(jobs))
	}
	if jobs[0].Name != "small" || jobs[0].N != 1000 {
		t.Errorf("job 0 = %+v", jobs[0])
	}
	// Unnamed jobs default to their stream index.
	if jobs[1].Name != "job1" {
		t.Errorf("job 1 name = %q, want job1", jobs[1].Name)
	}
	d, err := jobs[1].DeadlineDuration(0)
	if err != nil || d != 30*time.Second {
		t.Errorf("job 1 deadline = %v, %v", d, err)
	}
	if !jobs[2].Stable || jobs[2].Stage != 65536 || jobs[2].In != "/data/shard.bin" {
		t.Errorf("job 2 = %+v", jobs[2])
	}
}

func TestDecodeJobsRejectsUnknownField(t *testing.T) {
	_, err := engine.DecodeJobs(strings.NewReader(`{"name": "x", "workloda": "zipf"}`))
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("typo'd field: %v, want a line-1 error", err)
	}
}

func TestDecodeJobsRejectsBadDeadline(t *testing.T) {
	if _, err := engine.DecodeJobs(strings.NewReader(`{"deadline": "fast"}`)); err == nil {
		t.Fatal("unparseable deadline accepted")
	}
	if _, err := engine.DecodeJobs(strings.NewReader(`{"deadline": "-1s"}`)); err == nil {
		t.Fatal("negative deadline accepted")
	}
}

func TestOutPath(t *testing.T) {
	for _, tc := range []struct {
		out  string
		rank int
		want string
	}{
		{"", 3, ""}, // no output requested stays no output
		{"/tmp/sorted.{rank}.bin", 2, "/tmp/sorted.2.bin"},
		{"/tmp/sorted.bin", 1, "/tmp/sorted.bin.r1"}, // ranks never clobber each other
	} {
		if got := (engine.NodeJob{Out: tc.out}).OutPath(tc.rank); got != tc.want {
			t.Errorf("OutPath(%q, rank %d) = %q, want %q", tc.out, tc.rank, got, tc.want)
		}
	}
}

func TestDeadlineDurationFallback(t *testing.T) {
	d, err := (engine.NodeJob{}).DeadlineDuration(5 * time.Second)
	if err != nil || d != 5*time.Second {
		t.Errorf("empty deadline: %v, %v, want the fallback", d, err)
	}
	d, err = (engine.NodeJob{Deadline: "100ms"}).DeadlineDuration(5 * time.Second)
	if err != nil || d != 100*time.Millisecond {
		t.Errorf("explicit deadline: %v, %v, want 100ms overriding the fallback", d, err)
	}
}
