// Package sortjob runs collective core.Sort calls as jobs on a
// persistent engine. It is the typed bridge between the two layers:
// engine knows nothing about sorting (it schedules opaque job bodies),
// core knows nothing about job multiplexing — this package wires a
// sort body into a JobSpec and hands each rank its per-job options.
package sortjob

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/engine"
)

// Job is the typed handle Submit returns: the generic engine job plus
// the per-rank output blocks.
type Job[T any] struct {
	*engine.Job
	out [][]T
}

// Output waits for the job and returns the sorted per-rank blocks
// (element r is rank r's block; concatenating in rank order yields the
// globally sorted dataset).
func (s *Job[T]) Output() ([][]T, error) {
	if err := s.Wait(); err != nil {
		return nil, err
	}
	return s.out, nil
}

// Submit submits a collective core.Sort of parts as one engine job:
// parts[r] is rank r's input (copied before sorting, so the caller's
// slices are never reordered). The engine hands each rank its per-job
// options — the job's phase timer, exchange counters and memory gauge —
// so concurrent jobs' metrics and budgets stay fully separated; opt
// supplies the remaining algorithm tunables (τ thresholds, stability,
// staging, pivot method, tracer, checkpointing).
//
// spec.Body must be unset; Submit provides it.
func Submit[T any](e *engine.Engine, spec engine.JobSpec, opt core.Options, parts [][]T, cd codec.Codec[T], cmp func(a, b T) int) (*Job[T], error) {
	if spec.Body != nil {
		return nil, fmt.Errorf("sortjob: Submit builds the job body; JobSpec.Body must be nil")
	}
	p := e.Size()
	if len(parts) > p {
		return nil, fmt.Errorf("sortjob: %d input parts for %d ranks", len(parts), p)
	}
	out := make([][]T, p)
	spec.Body = func(env engine.Env, rank int, c *comm.Comm) error {
		o := opt
		o.Timer = env.Metrics.Timer(rank)
		o.Exchange = env.Metrics.Exchange
		o.Mem = env.Mem
		o.Span = env.Span
		var local []T
		if rank < len(parts) {
			local = append([]T(nil), parts[rank]...)
		}
		sorted, err := core.Sort(c, local, cd, cmp, o)
		if err != nil {
			return err
		}
		out[rank] = sorted
		env.Metrics.SetRecords(rank, len(sorted))
		return nil
	}
	j, err := e.Submit(spec)
	if err != nil {
		return nil, err
	}
	return &Job[T]{Job: j, out: out}, nil
}

// Footprint is a safe JobSpec.Footprint declaration for a sort job
// moving totalRecords records of recSize bytes across ranks with a
// staged exchange window of stage bytes per rank: input + receive
// buffers (each totals one copy of the dataset), the staging windows,
// and 50% slack for the transient double-holding of the τm node merge
// and for skew concentrating receive volume before the partition
// balances it.
func Footprint(totalRecords int64, recSize, ranks int, stage int64) int64 {
	b := totalRecords * int64(recSize)
	return 2*b + b/2 + 2*stage*int64(ranks)
}

// SpillFootprint is the JobSpec.Footprint declaration for a sort job
// whose options carry a spill tier (core.Options.Spill = sp): roughly
// one copy of the dataset instead of Footprint's two-and-a-half,
// because the spilled exchange holds input and output on disk rather
// than in memory at the same time. A dataset whose in-memory Footprint
// exceeds the engine budget can often still be admitted under its
// SpillFootprint — the spill tier is what makes the declaration
// honest.
func SpillFootprint(totalRecords int64, recSize, ranks int, stage int64, sp *core.SpillOptions) int64 {
	return sp.Footprint(totalRecords*int64(recSize), ranks, stage)
}
