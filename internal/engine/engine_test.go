package engine_test

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"testing"
	"time"

	"sdssort/internal/checkpoint"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/engine"
	"sdssort/internal/engine/sortjob"
	"sdssort/internal/faultnet"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/trace"
	"sdssort/internal/workload"
)

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// newTestEngine builds an engine over a fresh in-process world and
// registers cleanup for both.
func newTestEngine(t *testing.T, ranks, coresPerNode int, opts engine.Options) *engine.Engine {
	t.Helper()
	world, err := comm.NewWorld(ranks, comm.BlockNodes(ranks, coresPerNode))
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(world, opts)
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
		world.Close()
	})
	return e
}

// parts cuts a generated dataset into per-rank shards.
func parts(data []float64, ranks int) [][]float64 {
	out := make([][]float64, ranks)
	per := len(data) / ranks
	for r := 0; r < ranks; r++ {
		lo, hi := r*per, (r+1)*per
		if r == ranks-1 {
			hi = len(data)
		}
		out[r] = data[lo:hi]
	}
	return out
}

// checkSorted verifies the concatenation of the per-rank blocks is
// globally sorted and holds exactly want records.
func checkSorted(t *testing.T, label string, blocks [][]float64, want int) {
	t.Helper()
	var all []float64
	for _, b := range blocks {
		all = append(all, b...)
	}
	if len(all) != want {
		t.Errorf("%s: got %d records, want %d", label, len(all), want)
	}
	if !sort.Float64sAreSorted(all) {
		t.Errorf("%s: concatenated output is not globally sorted", label)
	}
}

// TestConcurrentJobsIsolated is the PR's acceptance scenario: two jobs
// submitted concurrently to one engine both produce verified sorted
// output, their metrics report under separate scopes, and the shared
// admission gauge is back at zero once both are done.
func TestConcurrentJobsIsolated(t *testing.T) {
	const ranks = 4
	gauge := memlimit.New(64 << 20)
	e := newTestEngine(t, ranks, 2, engine.Options{Mem: gauge})

	zipf := workload.ZipfKeys(7, 4000, 1.4, workload.DefaultZipfUniverse)
	unif := workload.Uniform(11, 3000)

	j1, err := sortjob.Submit(e, engine.JobSpec{Name: "zipf", Footprint: 1 << 20},
		core.DefaultOptions(), parts(zipf, ranks), codec.Float64{}, cmpF)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := sortjob.Submit(e, engine.JobSpec{Name: "uniform", Footprint: 1 << 20},
		core.DefaultOptions(), parts(unif, ranks), codec.Float64{}, cmpF)
	if err != nil {
		t.Fatal(err)
	}

	out1, err := j1.Output()
	if err != nil {
		t.Fatalf("job zipf: %v", err)
	}
	out2, err := j2.Output()
	if err != nil {
		t.Fatalf("job uniform: %v", err)
	}
	checkSorted(t, "zipf", out1, len(zipf))
	checkSorted(t, "uniform", out2, len(unif))

	// Metrics are scoped per job: each scope's record totals are its own
	// job's, not an aggregate, and both report their own elapsed time.
	for _, tc := range []struct {
		j    *sortjob.Job[float64]
		want int
	}{{j1, len(zipf)}, {j2, len(unif)}} {
		m := tc.j.Metrics()
		total := 0
		for _, n := range m.Records() {
			total += n
		}
		if total != tc.want {
			t.Errorf("job %s metrics: %d records, want %d", m.Name, total, tc.want)
		}
		if m.Elapsed() <= 0 {
			t.Errorf("job %s metrics: elapsed not recorded", m.Name)
		}
	}
	if j1.Metrics() == j2.Metrics() {
		t.Error("jobs share a metrics scope")
	}
	if got := e.Registry().Jobs(); len(got) != 2 {
		t.Errorf("registry has %d jobs, want 2", len(got))
	}

	if used := gauge.Used(); used != 0 {
		t.Errorf("shared gauge holds %d bytes after both jobs completed", used)
	}
}

// TestSequentialJobsReuseWorkers pins the warm-fabric claim as a
// counter: any number of back-to-back jobs spawn exactly Size() worker
// goroutines — the pool from job one serves every later job.
func TestSequentialJobsReuseWorkers(t *testing.T) {
	const ranks = 3
	e := newTestEngine(t, ranks, ranks, engine.Options{})
	data := workload.Uniform(3, 900)
	for i := 0; i < 3; i++ {
		j, err := sortjob.Submit(e, engine.JobSpec{Name: fmt.Sprintf("seq%d", i)},
			core.DefaultOptions(), parts(data, ranks), codec.Float64{}, cmpF)
		if err != nil {
			t.Fatal(err)
		}
		out, err := j.Output()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		checkSorted(t, fmt.Sprintf("seq%d", i), out, len(data))
	}
	if got := e.WorkerSpawns(); got != ranks {
		t.Errorf("3 sequential jobs spawned %d workers, want %d (reuse)", got, ranks)
	}
}

// TestAdmissionSerializes submits two jobs whose footprints cannot
// coexist under the budget: the second must stay queued until the first
// releases, and the gauge's peak must never exceed the budget.
func TestAdmissionSerializes(t *testing.T) {
	const ranks = 2
	gauge := memlimit.New(1 << 20) // fits exactly one declared footprint
	e := newTestEngine(t, ranks, ranks, engine.Options{Mem: gauge})

	hold := make(chan struct{})
	started := make(chan struct{}, ranks)
	j1, err := e.Submit(engine.JobSpec{
		Name: "holder", Footprint: 1 << 20,
		Body: func(env engine.Env, rank int, c *comm.Comm) error {
			started <- struct{}{}
			<-hold
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ranks; i++ {
		<-started // job 1 is genuinely running on every rank
	}

	j2, err := e.Submit(engine.JobSpec{
		Name: "waiter", Footprint: 1 << 20,
		Body: func(env engine.Env, rank int, c *comm.Comm) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Admission is strict FIFO against the gauge: with job 1 holding the
	// whole budget, job 2 must not start.
	time.Sleep(20 * time.Millisecond)
	if st := j2.State(); st != engine.Queued {
		t.Fatalf("job 2 is %v while job 1 holds the whole budget, want queued", st)
	}

	close(hold)
	if err := j1.Wait(); err != nil {
		t.Fatalf("job 1: %v", err)
	}
	if err := j2.Wait(); err != nil {
		t.Fatalf("job 2: %v", err)
	}
	if peak, budget := gauge.Peak(), gauge.Budget(); peak > budget {
		t.Errorf("gauge peak %d exceeded budget %d: admission overlapped", peak, budget)
	}
	if used := gauge.Used(); used != 0 {
		t.Errorf("gauge holds %d bytes after both jobs", used)
	}
}

// TestSubmitRejections covers the submission-time contract.
func TestSubmitRejections(t *testing.T) {
	gauge := memlimit.New(1 << 10)
	e := newTestEngine(t, 2, 2, engine.Options{Mem: gauge})
	noop := func(env engine.Env, rank int, c *comm.Comm) error { return nil }

	if _, err := e.Submit(engine.JobSpec{}); err == nil {
		t.Error("Submit accepted a nil Body")
	}
	if _, err := e.Submit(engine.JobSpec{Body: noop, Footprint: -1}); err == nil {
		t.Error("Submit accepted a negative footprint")
	}
	// A footprint above the whole budget could never be admitted; that
	// is a submission error, not an eternal queue entry.
	if _, err := e.Submit(engine.JobSpec{Body: noop, Footprint: 1 << 11}); err == nil {
		t.Error("Submit accepted a footprint above the engine budget")
	}
	if _, err := sortjob.Submit(e, engine.JobSpec{Body: noop}, core.DefaultOptions(),
		nil, codec.Float64{}, cmpF); err == nil {
		t.Error("sortjob.Submit accepted a JobSpec with a Body")
	}
	if _, err := sortjob.Submit(e, engine.JobSpec{}, core.DefaultOptions(),
		make([][]float64, 3), codec.Float64{}, cmpF); err == nil {
		t.Error("sortjob.Submit accepted more input parts than ranks")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	world, err := comm.NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	e := engine.New(world, engine.Options{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = e.Submit(engine.JobSpec{Body: func(env engine.Env, rank int, c *comm.Comm) error { return nil }})
	if !errors.Is(err, engine.ErrEngineClosed) {
		t.Errorf("Submit after Close: %v, want engine.ErrEngineClosed", err)
	}
}

// TestJobDeadline parks every rank in a receive that can never be
// satisfied and lets the per-job deadline cancel it: Wait must report
// engine.ErrDeadline, the ranks must unblock via cancellation (not hang), and
// the fabric must still run the next job.
func TestJobDeadline(t *testing.T) {
	const ranks = 2
	e := newTestEngine(t, ranks, ranks, engine.Options{})
	j, err := e.Submit(engine.JobSpec{
		Name: "wedged", Deadline: 30 * time.Millisecond,
		Body: func(env engine.Env, rank int, c *comm.Comm) error {
			// Everyone receives, nobody sends: a deadlocked collective.
			_, err := c.Recv((rank+1)%ranks, 99)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- j.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, engine.ErrDeadline) {
			t.Fatalf("Wait: %v, want engine.ErrDeadline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline did not cancel the wedged job")
	}

	// The fabric survived: a fresh job on the same engine completes.
	data := workload.Uniform(5, 600)
	j2, err := sortjob.Submit(e, engine.JobSpec{Name: "after"}, core.DefaultOptions(),
		parts(data, ranks), codec.Float64{}, cmpF)
	if err != nil {
		t.Fatal(err)
	}
	out, err := j2.Output()
	if err != nil {
		t.Fatalf("job after deadline: %v", err)
	}
	checkSorted(t, "after-deadline", out, len(data))
}

// TestCancelUnblocksJob cancels a job whose ranks are parked in
// receives and checks they unblock with a cancellation error.
func TestCancelUnblocksJob(t *testing.T) {
	const ranks = 2
	e := newTestEngine(t, ranks, ranks, engine.Options{})
	j, err := e.Submit(engine.JobSpec{
		Name: "cancelled",
		Body: func(env engine.Env, rank int, c *comm.Comm) error {
			_, err := c.Recv((rank+1)%ranks, 7)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the ranks park
	j.Cancel()
	err = j.Wait()
	if !errors.Is(err, comm.ErrCanceled) {
		t.Fatalf("Wait after Cancel: %v, want ErrCanceled", err)
	}
}

// TestFailedJobDoesNotPoisonFabric fails one rank of a job whose
// siblings are blocked in a collective: the siblings must unblock, the
// job must report the real error (not the cancellation cascade), the
// job's gauge reservation must drain, and the next job must succeed.
func TestFailedJobDoesNotPoisonFabric(t *testing.T) {
	const ranks = 4
	gauge := memlimit.New(32 << 20)
	e := newTestEngine(t, ranks, 2, engine.Options{Mem: gauge})

	boom := errors.New("rank 0 exploded")
	j, err := e.Submit(engine.JobSpec{
		Name: "doomed", Footprint: 1 << 20,
		Body: func(env engine.Env, rank int, c *comm.Comm) error {
			if rank == 0 {
				return boom
			}
			// The others head into a barrier rank 0 never joins.
			return c.Barrier()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = j.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("doomed job: %v, want the rank-0 error", err)
	}
	if used := gauge.Used(); used != 0 {
		t.Errorf("gauge holds %d bytes after the failed job", used)
	}

	data := workload.ZipfKeys(13, 2000, 1.2, workload.DefaultZipfUniverse)
	j2, err := sortjob.Submit(e, engine.JobSpec{Name: "survivor", Footprint: 1 << 20},
		core.DefaultOptions(), parts(data, ranks), codec.Float64{}, cmpF)
	if err != nil {
		t.Fatal(err)
	}
	out, err := j2.Output()
	if err != nil {
		t.Fatalf("job after failure: %v", err)
	}
	checkSorted(t, "survivor", out, len(data))
	if used := gauge.Used(); used != 0 {
		t.Errorf("gauge holds %d bytes after the follow-up job", used)
	}
}

// TestPanickingRankFailsJobOnly converts a rank panic into a job error
// without taking down the process or the fabric.
func TestPanickingRankFailsJobOnly(t *testing.T) {
	const ranks = 2
	e := newTestEngine(t, ranks, ranks, engine.Options{})
	j, err := e.Submit(engine.JobSpec{
		Name: "panicky",
		Body: func(env engine.Env, rank int, c *comm.Comm) error {
			if rank == 1 {
				panic("kaboom")
			}
			return c.Barrier()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = j.Wait()
	var pe *engine.PanicError
	if !errors.As(err, &pe) || pe.Rank != 1 {
		t.Fatalf("panicky job: %v, want engine.PanicError{Rank: 1}", err)
	}

	data := workload.Uniform(17, 800)
	j2, err := sortjob.Submit(e, engine.JobSpec{Name: "calm"}, core.DefaultOptions(),
		parts(data, ranks), codec.Float64{}, cmpF)
	if err != nil {
		t.Fatal(err)
	}
	out, err := j2.Output()
	if err != nil {
		t.Fatalf("job after panic: %v", err)
	}
	checkSorted(t, "calm", out, len(data))
}

// TestJobShrinksOntoSurvivors kills one rank of a checkpointed job
// mid-run and checks the engine heals the job in place: the survivors
// are re-dispatched on a group communicator, the job finishes Degraded
// (counted as completed, not failed), the grown footprint drains, and
// the fabric still serves a full-size follow-up job.
func TestJobShrinksOntoSurvivors(t *testing.T) {
	const ranks = 4
	gauge := memlimit.New(64 << 20)
	rec := trace.NewRecorder()
	e := newTestEngine(t, ranks, 2, engine.Options{Mem: gauge, Trace: rec})

	dir := t.TempDir()
	full, err := checkpoint.NewStore(dir, ranks)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2 dies on its first transport operation after its partition
	// snapshot commits — mid-exchange, or at the latest on the job's
	// closing barrier.
	inj, err := faultnet.New(faultnet.Plan{
		KillRank:      2,
		KillAfterFile: full.ManifestPath(0, checkpoint.PhasePartition, 2),
	})
	if err != nil {
		t.Fatal(err)
	}

	data := workload.Uniform(23, 2000)
	in := parts(data, ranks)
	var mu sync.Mutex
	var outs [][]float64
	body := func(env engine.Env, rank int, c *comm.Comm) error {
		store, err := checkpoint.NewStore(dir, c.Size())
		if err != nil {
			return err
		}
		opt := core.DefaultOptions()
		opt.Mem = env.Mem
		ck := &core.Checkpointing{Store: store}
		var local []float64
		if env.Degraded {
			ck.Epoch = env.Resume.Epoch
			ck.Resume = env.Resume
		} else {
			local = append([]float64(nil), in[rank]...)
		}
		opt.Checkpoint = ck
		out, err := core.Sort(c, local, codec.Float64{}, cmpF, opt)
		// Settle the store on every path: the engine redistributes it the
		// moment the attempt fails.
		if werr := ck.Wait(); err == nil {
			err = werr
		}
		if err != nil {
			return err
		}
		mu.Lock()
		if len(outs) != c.Size() {
			outs = make([][]float64, c.Size())
		}
		outs[c.Rank()] = out
		mu.Unlock()
		return c.Barrier()
	}
	j, err := e.Submit(engine.JobSpec{
		Name: "shrinkable", Footprint: 8 << 20,
		WrapTransport: func(tr comm.Transport) comm.Transport { return inj.Wrap(tr) },
		Shrink: &engine.JobShrink{
			MinRanks: 2,
			Redistribute: func(lost []int, oldSize, newEpoch int) (checkpoint.Cut, error) {
				old, err := checkpoint.NewStore(dir, oldSize)
				if err != nil {
					return checkpoint.Cut{}, err
				}
				cut, ok := old.LatestConsistent()
				if !ok {
					return checkpoint.Cut{}, nil
				}
				_, ncut, err := checkpoint.Redistribute(old, cut, lost, newEpoch, codec.Float64{}, cmpF)
				return ncut, err
			},
		},
		Body: body,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatalf("degraded job failed outright: %v", err)
	}
	if !j.Degraded() {
		t.Fatal("job finished without degrading — the kill never fired or the retry never ran")
	}
	if got := j.Lost(); !slices.Equal(got, []int{2}) {
		t.Fatalf("lost ranks %v, want [2]", got)
	}
	if k := inj.Stats().Kills; k != 1 {
		t.Fatalf("kill fired %d times, want 1", k)
	}
	checkSorted(t, "shrunk", outs, len(data))
	if len(outs) != ranks-1 {
		t.Fatalf("output from %d ranks, want %d survivors", len(outs), ranks-1)
	}

	st := e.Stats()
	if st.Completed != 1 || st.Failed != 0 || st.Degraded != 1 {
		t.Fatalf("stats %+v: a degraded success must count as completed+degraded, not failed", st)
	}
	if len(rec.ByKind("engine.degraded")) != 1 {
		t.Fatalf("missing engine.degraded trace event:\n%s", rec.Summary())
	}
	if used := gauge.Used(); used != 0 {
		t.Fatalf("shared gauge holds %d bytes after the degraded job (grown footprint leaked)", used)
	}

	// The fabric is unpoisoned: a full-size job runs clean.
	after := workload.Uniform(29, 1200)
	j2, err := sortjob.Submit(e, engine.JobSpec{Name: "after-shrink", Footprint: 1 << 20},
		core.DefaultOptions(), parts(after, ranks), codec.Float64{}, cmpF)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := j2.Output()
	if err != nil {
		t.Fatalf("follow-up job: %v", err)
	}
	checkSorted(t, "after-shrink", out2, len(after))
}

// TestJobCommName pins the cross-process naming convention: every
// participant of a multiplexed fabric derives job i's communicator name
// the same way, so the message contexts agree.
func TestJobCommName(t *testing.T) {
	if got := engine.JobCommName("world", 0); got != "world/job0" {
		t.Errorf("engine.JobCommName(world, 0) = %q", got)
	}
	if got := engine.JobCommName("world@e2", 7); got != "world@e2/job7" {
		t.Errorf("engine.JobCommName(world@e2, 7) = %q", got)
	}
}

// TestSpillJobAdmission is the engine half of the out-of-core story: a
// dataset whose in-memory footprint exceeds the engine budget is
// rejected at submit ("could never be admitted"), while the same
// dataset declared with the spill-aware footprint — a single resident
// copy plus bounded buffers — is admitted, spills under its per-job
// gauge, and sorts correctly.
func TestSpillJobAdmission(t *testing.T) {
	const ranks = 4
	const n = 40000 // 320 KB dataset
	const stage = 4 << 10
	sp := &core.SpillOptions{Dir: t.TempDir(), BufBytes: 4 << 10, Stats: &metrics.SpillStats{}}
	inMem := sortjob.Footprint(n, 8, ranks, stage)
	fp := sortjob.SpillFootprint(n, 8, ranks, stage, sp)
	if fp >= inMem {
		t.Fatalf("spill footprint %d is not below the in-memory declaration %d", fp, inMem)
	}
	budget := fp + fp/10
	if budget >= inMem {
		t.Fatalf("budget %d does not separate the footprints (%d vs %d)", budget, fp, inMem)
	}
	gauge := memlimit.New(budget)
	e := newTestEngine(t, ranks, 2, engine.Options{Mem: gauge})
	data := workload.Uniform(31, n)

	opt := core.DefaultOptions()
	opt.StageBytes = stage
	if _, err := sortjob.Submit(e, engine.JobSpec{Name: "resident", Footprint: inMem},
		opt, parts(data, ranks), codec.Float64{}, cmpF); err == nil {
		t.Fatal("a footprint above the engine budget was accepted")
	}

	opt.Spill = sp
	j, err := sortjob.Submit(e, engine.JobSpec{Name: "spilled", Footprint: fp},
		opt, parts(data, ranks), codec.Float64{}, cmpF)
	if err != nil {
		t.Fatalf("spill-aware footprint rejected: %v", err)
	}
	out, err := j.Output()
	if err != nil {
		t.Fatalf("spilled job failed: %v", err)
	}
	checkSorted(t, "spilled job", out, n)
	// The per-job gauge (budget = the declared footprint) is what
	// forced the receive side to disk: the in-memory exchange needs two
	// dataset copies, the declaration funds roughly one.
	if !sp.Stats.Spilled() {
		t.Fatal("the admitted job never spilled — the footprint separation is meaningless")
	}
	if used := gauge.Used(); used != 0 {
		t.Fatalf("engine gauge holds %d bytes after the job", used)
	}
}
