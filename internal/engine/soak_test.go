package engine_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/core"
	"sdssort/internal/engine"
	"sdssort/internal/engine/sortjob"
	"sdssort/internal/faultnet"
	"sdssort/internal/memlimit"
	"sdssort/internal/workload"
)

// soakSeed draws the soak's RNG seed from FAULTNET_SEED so the CI
// matrix pushes the kill point and job mix around between runs.
func soakSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("FAULTNET_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad FAULTNET_SEED %q: %v", s, err)
		}
		seed = v
	}
	return seed
}

// TestEngineSoakJobStream is the engine soak (its name matches the CI
// lane's EngineSoak regex): a stream of mixed-size jobs over one warm
// fabric, with one job mid-stream fault-killed through its per-job
// transport wrapper. The killed job must fail as a peer loss, every
// other job must produce verified sorted output, the shared admission
// gauge must drain to zero between jobs, and the whole stream must run
// on the worker pool of job one — no respawn.
func TestEngineSoakJobStream(t *testing.T) {
	seed := soakSeed(t)
	rng := rand.New(rand.NewSource(seed))
	const (
		ranks = 4
		nJobs = 8
	)
	gauge := memlimit.New(64 << 20)
	e := newTestEngine(t, ranks, 2, engine.Options{Mem: gauge})

	killIdx := 2 + rng.Intn(nJobs-4) // strictly mid-stream: jobs exist on both sides
	for i := 0; i < nJobs; i++ {
		var data []float64
		n := 400 + rng.Intn(4000)
		if i%2 == 0 {
			data = workload.ZipfKeys(seed+int64(i), n, 1.1+rng.Float64(), workload.DefaultZipfUniverse)
		} else {
			data = workload.Uniform(seed+int64(i), n)
		}
		spec := engine.JobSpec{Name: fmt.Sprintf("soak%d", i), Footprint: 4 << 20}
		var inj *faultnet.Injector
		if i == killIdx {
			var err error
			inj, err = faultnet.New(faultnet.Plan{
				Seed:     seed,
				KillRank: rng.Intn(ranks),
				// A 4-rank sort is only a handful of transport ops on
				// the quietest rank, so the threshold stays tiny to
				// guarantee the kill lands inside the job.
				KillAfterOps: int64(1 + rng.Intn(2)),
			})
			if err != nil {
				t.Fatal(err)
			}
			spec.WrapTransport = inj.Wrap
		}
		j, err := sortjob.Submit(e, spec, core.DefaultOptions(),
			parts(data, ranks), codec.Float64{}, cmpF)
		if err != nil {
			t.Fatal(err)
		}
		out, err := j.Output()
		if i == killIdx {
			if err == nil {
				t.Fatalf("job %d: fault-killed job succeeded (kill never fired)", i)
			}
			if !errors.Is(err, faultnet.ErrKilled) {
				t.Fatalf("job %d: %v, want the injected kill", i, err)
			}
		} else {
			if err != nil {
				t.Fatalf("job %d after kill at %d: %v", i, killIdx, err)
			}
			checkSorted(t, spec.Name, out, len(data))
		}
		// The gauge drains between jobs — including after the killed
		// one, whose reservation release must not depend on success.
		if used := gauge.Used(); used != 0 {
			t.Fatalf("gauge holds %d bytes after job %d", used, i)
		}
	}

	// The sequential stream, kill included, never needed a second
	// worker per rank.
	if got := e.WorkerSpawns(); got != ranks {
		t.Errorf("sequential soak spawned %d workers, want %d", got, ranks)
	}

	// Burst phase: a batch submitted at once, admission arbitrating the
	// shared gauge. All must succeed and the gauge must end empty.
	type burstJob struct {
		j    *sortjob.Job[float64]
		name string
		n    int
	}
	var burst []burstJob
	for i := 0; i < 4; i++ {
		n := 300 + rng.Intn(2000)
		data := workload.Uniform(seed+100+int64(i), n)
		name := fmt.Sprintf("burst%d", i)
		j, err := sortjob.Submit(e, engine.JobSpec{Name: name, Footprint: 24 << 20},
			core.DefaultOptions(), parts(data, ranks), codec.Float64{}, cmpF)
		if err != nil {
			t.Fatal(err)
		}
		burst = append(burst, burstJob{j, name, n})
	}
	for _, bj := range burst {
		out, err := bj.j.Output()
		if err != nil {
			t.Fatalf("%s: %v", bj.name, err)
		}
		checkSorted(t, bj.name, out, bj.n)
	}
	if used := gauge.Used(); used != 0 {
		t.Errorf("gauge holds %d bytes after the burst", used)
	}
	if peak, budget := gauge.Peak(), gauge.Budget(); peak > budget {
		t.Errorf("gauge peak %d exceeded budget %d during the burst", peak, budget)
	}

	// Per-job metrics scopes survived the stream: one per job, each
	// with its own record totals.
	if got := len(e.Registry().Jobs()); got != nJobs+len(burst) {
		t.Errorf("registry has %d scopes, want %d", got, nJobs+len(burst))
	}

	// Two declared 24MiB footprints fit a 64MiB budget, so the burst
	// should genuinely overlap — but that is scheduling, not contract;
	// the contract checks above are what this soak enforces.
	_ = killIdx
}
