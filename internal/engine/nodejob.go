package engine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// NodeJob is one line of the sdsnode -serve job stream: a JSON object
// per job, streamed on stdin or read from a -jobs manifest file. Every
// rank of the world must consume the identical stream — job i runs
// collectively on the communicator JobCommName(world, i).
//
// Zero-valued fields inherit the process's one-shot flags (-workload,
// -alpha, -n, -seed, -stage; Stable additionally ORs with -stable), so
// a manifest only states what differs per job.
type NodeJob struct {
	// Name labels the job in logs (default "job<index>").
	Name string `json:"name,omitempty"`
	// Workload generates this rank's shard: "uniform", "zipf", or any
	// workload preset name.
	Workload string `json:"workload,omitempty"`
	// Algo selects the sorting driver by algo-registry name ("sds",
	// "hss", "ams", "hyksort", "psrs", "auto"); empty inherits the
	// -algo flag. Validated against the registry before the stream runs.
	Algo string `json:"algo,omitempty"`
	// Alpha is the Zipf exponent.
	Alpha float64 `json:"alpha,omitempty"`
	// N is the records per rank when generating.
	N int `json:"n,omitempty"`
	// Seed seeds the generator (combined with the rank).
	Seed int64 `json:"seed,omitempty"`
	// In reads this rank's shard from a shared record file instead of
	// generating it.
	In string `json:"in,omitempty"`
	// Out, when set, receives the sorted shard. A "{rank}" placeholder
	// is substituted per rank; without one, ".r<rank>" is appended so
	// ranks never clobber each other.
	Out string `json:"out,omitempty"`
	// Stable requests a stable sort for this job.
	Stable bool `json:"stable,omitempty"`
	// Stage bounds the staged-exchange window in bytes (0 inherits the
	// -stage flag).
	Stage int64 `json:"stage,omitempty"`
	// Deadline bounds this job's wall time (a Go duration string,
	// e.g. "30s"); empty inherits the -job-deadline flag. Exceeding it
	// exits the process with code 4, abandoning any remaining jobs.
	Deadline string `json:"deadline,omitempty"`
}

// OutPath resolves the job's output path for one rank: "{rank}" is
// substituted when present, otherwise ".r<rank>" is appended. Empty Out
// stays empty (no output file).
func (j NodeJob) OutPath(rank int) string {
	if j.Out == "" {
		return ""
	}
	if strings.Contains(j.Out, "{rank}") {
		return strings.ReplaceAll(j.Out, "{rank}", strconv.Itoa(rank))
	}
	return fmt.Sprintf("%s.r%d", j.Out, rank)
}

// DeadlineDuration parses the per-job deadline, returning fallback when
// the job does not set one.
func (j NodeJob) DeadlineDuration(fallback time.Duration) (time.Duration, error) {
	if j.Deadline == "" {
		return fallback, nil
	}
	d, err := time.ParseDuration(j.Deadline)
	if err != nil {
		return 0, fmt.Errorf("engine: job %q: bad deadline %q: %v", j.Name, j.Deadline, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("engine: job %q: negative deadline %q", j.Name, j.Deadline)
	}
	return d, nil
}

// DecodeJobs reads a job stream: one JSON object per line, with blank
// lines and #-comments skipped. Unknown fields are an error — a typo'd
// manifest should fail loudly before the first job runs, not sort the
// wrong workload.
func DecodeJobs(r io.Reader) ([]NodeJob, error) {
	var jobs []NodeJob
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var j NodeJob
		if err := dec.Decode(&j); err != nil {
			return nil, fmt.Errorf("engine: jobs line %d: %v", lineNo, err)
		}
		if j.Name == "" {
			j.Name = fmt.Sprintf("job%d", len(jobs))
		}
		if _, err := j.DeadlineDuration(0); err != nil {
			return nil, fmt.Errorf("engine: jobs line %d: %v", lineNo, err)
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("engine: reading job stream: %v", err)
	}
	return jobs, nil
}
