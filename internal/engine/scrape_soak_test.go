package engine_test

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/core"
	"sdssort/internal/engine"
	"sdssort/internal/engine/sortjob"
	"sdssort/internal/memlimit"
	"sdssort/internal/telemetry"
	"sdssort/internal/workload"
)

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, addr string) string {
	t.Helper()
	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatalf("scrape body: %v", err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("scrape: %d\n%s", res.StatusCode, body)
	}
	return string(body)
}

// seriesValue extracts one un-labelled series value from an exposition.
func seriesValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not in scrape:\n%s", name, body)
	return 0
}

// TestEngineSoakScrapeUnderLoad (name matches the CI lane's EngineSoak
// regex) hammers /metrics from concurrent scrapers while a job stream
// runs on a warm engine, then checks the advertised life-cycle series
// add up. Under -race this doubles as the proof that scrape-time reads
// of the engine's counters are safe against the job path.
func TestEngineSoakScrapeUnderLoad(t *testing.T) {
	const (
		ranks = 4
		nJobs = 6
	)
	gauge := memlimit.New(64 << 20)
	e := newTestEngine(t, ranks, 2, engine.Options{Mem: gauge})

	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)
	telemetry.RegisterMem(reg, gauge)
	srv, err := telemetry.NewServer("127.0.0.1:0", reg, telemetry.ServerOptions{
		Health: func() telemetry.Health {
			s := e.Stats()
			return telemetry.Health{Status: "ok", Size: ranks,
				JobsQueued: int64(s.Queued), JobsRunning: int64(s.Running),
				JobsDone: s.Completed, JobsFailed: s.Failed, GatherAgeSeconds: -1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Background scrapers: each checks that the submitted counter never
	// moves backwards across its own scrape sequence.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := scrape(t, srv.Addr())
				v := seriesValue(t, body, "sds_engine_jobs_submitted_total")
				if v < last {
					t.Errorf("sds_engine_jobs_submitted_total went backwards: %v -> %v", last, v)
					return
				}
				last = v
			}
		}()
	}

	for i := 0; i < nJobs; i++ {
		data := workload.Uniform(int64(i), 500+200*i)
		j, err := sortjob.Submit(e, engine.JobSpec{Name: fmt.Sprintf("scrape%d", i), Footprint: 4 << 20},
			core.DefaultOptions(), parts(data, ranks), codec.Float64{}, cmpF)
		if err != nil {
			t.Fatal(err)
		}
		out, err := j.Output()
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, fmt.Sprintf("scrape%d", i), out, len(data))
		// Between jobs the admission gauge must read zero through the
		// scrape path, not just through the Go API.
		if v := seriesValue(t, scrape(t, srv.Addr()), "sds_mem_used_bytes"); v != 0 {
			t.Fatalf("sds_mem_used_bytes = %v between jobs", v)
		}
	}
	close(stop)
	wg.Wait()

	body := scrape(t, srv.Addr())
	if v := seriesValue(t, body, "sds_engine_jobs_submitted_total"); v != nJobs {
		t.Errorf("submitted = %v, want %d", v, nJobs)
	}
	if v := seriesValue(t, body, "sds_engine_jobs_completed_total"); v != nJobs {
		t.Errorf("completed = %v, want %d", v, nJobs)
	}
	if v := seriesValue(t, body, "sds_engine_jobs_failed_total"); v != 0 {
		t.Errorf("failed = %v, want 0", v)
	}
	if v := seriesValue(t, body, "sds_engine_jobs_running"); v != 0 {
		t.Errorf("running = %v, want 0", v)
	}
	if v := seriesValue(t, body, "sds_engine_workers_alive"); v != ranks {
		t.Errorf("workers alive = %v, want %d", v, ranks)
	}
	if v := seriesValue(t, body, "sds_engine_worker_spawns_total"); v != ranks {
		t.Errorf("worker spawns = %v, want %d", v, ranks)
	}
	// The health endpoint agrees with the scrape.
	res, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"jobs_done": 6`) {
		t.Errorf("/healthz = %d:\n%s", res.StatusCode, hb)
	}
}
