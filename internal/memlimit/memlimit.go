// Package memlimit emulates the per-node memory budgets of a distributed
// machine. The paper's evaluation shows HykSort dying of out-of-memory
// errors when skewed data concentrates on one rank; rather than crashing
// the host process we account allocations against a per-rank budget and
// surface ErrOutOfMemory deterministically.
package memlimit

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrOutOfMemory is returned when a reservation would exceed the budget.
// It models the allocation failure / OOM kill a real rank would suffer.
var ErrOutOfMemory = errors.New("memlimit: out of memory")

// Gauge tracks reserved bytes against a fixed budget. A zero or negative
// budget means unlimited. Gauge is safe for concurrent use.
type Gauge struct {
	budget int64
	used   atomic.Int64
	peak   atomic.Int64
}

// New returns a gauge with the given budget in bytes. budget <= 0 means
// unlimited.
func New(budget int64) *Gauge {
	return &Gauge{budget: budget}
}

// Unlimited returns a gauge that never rejects reservations.
func Unlimited() *Gauge { return &Gauge{} }

// Budget returns the configured budget (0 when unlimited).
func (g *Gauge) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// Reserve accounts n bytes. It fails with a wrapped ErrOutOfMemory when
// the reservation would exceed the budget, leaving usage unchanged.
// A nil gauge accepts everything, so callers can pass nil for "no limit".
func (g *Gauge) Reserve(n int64) error {
	if g == nil || g.budget <= 0 {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("memlimit: negative reservation %d", n)
	}
	for {
		cur := g.used.Load()
		next := cur + n
		if next > g.budget {
			return fmt.Errorf("%w: need %d bytes, %d of %d in use",
				ErrOutOfMemory, n, cur, g.budget)
		}
		if g.used.CompareAndSwap(cur, next) {
			g.bumpPeak(next)
			return nil
		}
	}
}

// Release returns n bytes to the budget. Releasing more than is in use
// clamps usage at zero rather than going negative.
func (g *Gauge) Release(n int64) {
	if g == nil || g.budget <= 0 || n <= 0 {
		return
	}
	for {
		cur := g.used.Load()
		next := cur - n
		if next < 0 {
			next = 0
		}
		if g.used.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Used returns the bytes currently reserved.
func (g *Gauge) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Peak returns the high-water mark of reservations.
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

func (g *Gauge) bumpPeak(v int64) {
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// FairShareBudget computes the budget used throughout the experiments:
// multiple× the fair per-rank share of the total dataset. The paper's
// Edison nodes hold 64 GB against 400 MB/process weak-scaling loads; a
// small multiple of the fair share reproduces the same "balanced runs
// fit, collapsed runs die" behaviour at laptop scale.
func FairShareBudget(totalBytes int64, ranks int, multiple float64) int64 {
	if ranks <= 0 || multiple <= 0 {
		return 0
	}
	return int64(float64(totalBytes) / float64(ranks) * multiple)
}
