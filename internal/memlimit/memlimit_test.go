package memlimit

import (
	"errors"
	"sync"
	"testing"
)

func TestReserveWithinBudget(t *testing.T) {
	g := New(100)
	if err := g.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(40); err != nil {
		t.Fatal(err)
	}
	if g.Used() != 100 || g.Peak() != 100 {
		t.Fatalf("used=%d peak=%d", g.Used(), g.Peak())
	}
}

func TestReserveOverBudget(t *testing.T) {
	g := New(100)
	if err := g.Reserve(101); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("got %v", err)
	}
	if g.Used() != 0 {
		t.Fatal("failed reservation changed usage")
	}
	if err := g.Reserve(100); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("got %v", err)
	}
}

func TestReleaseAndClamp(t *testing.T) {
	g := New(50)
	if err := g.Reserve(30); err != nil {
		t.Fatal(err)
	}
	g.Release(10)
	if g.Used() != 20 {
		t.Fatalf("used=%d", g.Used())
	}
	g.Release(1000) // clamps at 0
	if g.Used() != 0 {
		t.Fatalf("used=%d after over-release", g.Used())
	}
	if g.Peak() != 30 {
		t.Fatalf("peak=%d", g.Peak())
	}
}

func TestNilAndUnlimited(t *testing.T) {
	var g *Gauge
	if err := g.Reserve(1 << 60); err != nil {
		t.Fatal("nil gauge rejected reservation")
	}
	g.Release(1)
	if g.Used() != 0 || g.Peak() != 0 || g.Budget() != 0 {
		t.Fatal("nil gauge reported state")
	}
	u := Unlimited()
	if err := u.Reserve(1 << 60); err != nil {
		t.Fatal("unlimited gauge rejected reservation")
	}
}

func TestNegativeReservation(t *testing.T) {
	g := New(10)
	if err := g.Reserve(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestConcurrentReserve(t *testing.T) {
	g := New(1000)
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted := 0
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g.Reserve(10) == nil {
				mu.Lock()
				granted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if granted != 100 {
		t.Fatalf("granted %d of 100 exact-fit reservations", granted)
	}
	if g.Used() != 1000 {
		t.Fatalf("used=%d", g.Used())
	}
	if g.Reserve(1) == nil {
		t.Fatal("over-budget reservation accepted after concurrent fill")
	}
}

func TestFairShareBudget(t *testing.T) {
	if got := FairShareBudget(8000, 8, 4); got != 4000 {
		t.Fatalf("got %d", got)
	}
	if got := FairShareBudget(100, 0, 4); got != 0 {
		t.Fatalf("ranks=0: got %d", got)
	}
	if got := FairShareBudget(100, 4, 0); got != 0 {
		t.Fatalf("multiple=0: got %d", got)
	}
}
