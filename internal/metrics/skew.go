package metrics

import (
	"math"
	"sync/atomic"

	"sdssort/internal/telemetry"
)

// Skew diagnostics: the live, per-phase counterpart of the paper's
// RDFA metric. Where RDFA is computed once per experiment run, a
// long-lived sorting service wants the load-imbalance factor of every
// phase of every job on its telemetry plane — it is the signal the
// skew-aware splitting exists to minimise, and the input a future
// autoscaler or admission controller would act on.

// Phases SkewStats tracks. They are fixed at registration time
// because the telemetry registry binds label values when the gauge is
// created.
const (
	// SkewLocalSort is the input-side distribution: records each rank
	// started with, observed before pivot selection.
	SkewLocalSort = "localsort"
	// SkewExchange is the output-side distribution: records each rank
	// receives from the exchange — the partition sizes the paper's
	// RDFA measures.
	SkewExchange = "exchange"
)

func skewPhases() []string { return []string{SkewLocalSort, SkewExchange} }

// StragglerFactor classifies a rank as a straggler when its load
// exceeds this multiple of the phase mean. 2× is far outside the
// τ-bounded imbalance the splitter guarantees (1+τ, with τ ≤ 1), so a
// straggler always indicates skew the algorithm failed to absorb.
const StragglerFactor = 2.0

// SkewObservation is one phase's load geometry, returned by Observe
// so the caller can also put it on the trace plane.
type SkewObservation struct {
	Phase      string
	Ranks      int
	Max, Mean  float64
	MaxRank    int
	Imbalance  float64 // max/mean; 1.0 = perfectly balanced, 0 = no data
	Stragglers []int   // ranks with load > StragglerFactor × mean
}

type skewPhase struct {
	lastBits  atomic.Uint64 // float64 bits of the last imbalance
	worstBits atomic.Uint64 // float64 bits of the worst imbalance seen
	straggled atomic.Int64  // total straggler sightings
	observed  atomic.Int64  // total observations
}

func (p *skewPhase) last() float64  { return math.Float64frombits(p.lastBits.Load()) }
func (p *skewPhase) worst() float64 { return math.Float64frombits(p.worstBits.Load()) }

// SkewStats holds per-phase imbalance gauges and straggler counters.
// Safe for concurrent use; one instance may be shared by every rank
// of an in-process world, like ExchangeStats.
type SkewStats struct {
	phases map[string]*skewPhase
}

// NewSkewStats returns stats tracking the standard phases.
func NewSkewStats() *SkewStats {
	s := &SkewStats{phases: make(map[string]*skewPhase)}
	for _, name := range skewPhases() {
		s.phases[name] = &skewPhase{}
	}
	return s
}

// Observe records one phase's per-rank loads and returns the
// resulting geometry. Every rank of a collective observes the same
// loads vector, so the gauges are idempotent across ranks; the
// straggler counter, however, increments only when the *calling* rank
// (self) is the straggler — each process counts its own sightings, so
// a shared in-process SkewStats never multi-counts and a per-process
// one attributes stragglers to the node that straggled. Unknown
// phases and empty loads return a zero observation and record
// nothing. Nil-safe, so instrumented code can call it
// unconditionally.
func (s *SkewStats) Observe(phase string, loads []int64, self int) SkewObservation {
	o := SkewObservation{Phase: phase, Ranks: len(loads)}
	var sum int64
	for r, v := range loads {
		sum += v
		if fv := float64(v); fv > o.Max {
			o.Max, o.MaxRank = fv, r
		}
	}
	if len(loads) == 0 || sum == 0 {
		return o
	}
	o.Mean = float64(sum) / float64(len(loads))
	o.Imbalance = o.Max / o.Mean
	for r, v := range loads {
		if float64(v) > StragglerFactor*o.Mean {
			o.Stragglers = append(o.Stragglers, r)
		}
	}
	if s == nil {
		return o
	}
	p, ok := s.phases[phase]
	if !ok {
		return o
	}
	p.lastBits.Store(math.Float64bits(o.Imbalance))
	for {
		w := p.worstBits.Load()
		if o.Imbalance <= math.Float64frombits(w) || p.worstBits.CompareAndSwap(w, math.Float64bits(o.Imbalance)) {
			break
		}
	}
	for _, r := range o.Stragglers {
		if r == self {
			p.straggled.Add(1)
			break
		}
	}
	p.observed.Add(1)
	return o
}

// Imbalance returns the last observed max/mean for a phase (0 before
// any observation).
func (s *SkewStats) Imbalance(phase string) float64 {
	if s == nil {
		return 0
	}
	if p, ok := s.phases[phase]; ok {
		return p.last()
	}
	return 0
}

// Stragglers returns the total straggler sightings for a phase.
func (s *SkewStats) Stragglers(phase string) int64 {
	if s == nil {
		return 0
	}
	if p, ok := s.phases[phase]; ok {
		return p.straggled.Load()
	}
	return 0
}

// Register exposes the per-phase series on a telemetry registry.
func (s *SkewStats) Register(r *telemetry.Registry) {
	for _, name := range skewPhases() {
		p := s.phases[name]
		r.GaugeFunc("sds_phase_imbalance_max_mean",
			"Last observed load-imbalance factor (max rank load over mean) for the phase; 1.0 is perfectly balanced.",
			p.last, telemetry.L("phase", name))
		r.GaugeFunc("sds_phase_imbalance_worst",
			"Worst load-imbalance factor observed for the phase since start.",
			p.worst, telemetry.L("phase", name))
		r.CounterFunc("sds_phase_straggler_total",
			"Ranks observed carrying more than 2x the phase's mean load.",
			telemetry.FInt(p.straggled.Load), telemetry.L("phase", name))
	}
}
