package metrics

import "sync/atomic"

// RecoveryStats counts supervisor-level recovery activity for one job.
// All methods are safe for concurrent use and safe on a nil receiver,
// so callers can thread an optional *RecoveryStats without nil checks.
type RecoveryStats struct {
	restarts  atomic.Int64
	shrinks   atomic.Int64
	shed      atomic.Int64
	peersLost atomic.Int64
	panics    atomic.Int64
	wasted    atomic.Int64
}

// Restart records one supervisor restart (a new recovery epoch that
// relaunched the full world).
func (r *RecoveryStats) Restart() {
	if r != nil {
		r.restarts.Add(1)
	}
}

// Shrink records one degraded-mode resume: a recovery epoch that kept
// the surviving ranks and redistributed the checkpointed shards of the
// given number of lost ranks instead of relaunching the world. Shrinks
// and restarts draw from the same MaxRestarts budget but are counted
// apart, so an operator can tell "the fabric healed in place" from
// "the fabric was torn down and rebuilt".
func (r *RecoveryStats) Shrink(lost int) {
	if r != nil {
		r.shrinks.Add(1)
		if lost > 0 {
			r.shed.Add(int64(lost))
		}
	}
}

// PeerLost records one rank lost to a transport failure.
func (r *RecoveryStats) PeerLost() {
	if r != nil {
		r.peersLost.Add(1)
	}
}

// RankPanic records one rank lost to a panic.
func (r *RecoveryStats) RankPanic() {
	if r != nil {
		r.panics.Add(1)
	}
}

// Wasted records work discarded by a failed epoch, in records sorted
// since the last consistent checkpoint (an upper bound on re-done
// work; 0 when the failure struck before any progress).
func (r *RecoveryStats) Wasted(records int64) {
	if r != nil && records > 0 {
		r.wasted.Add(records)
	}
}

// RecoverySnapshot is a plain copy of the counters.
type RecoverySnapshot struct {
	Restarts      int64 // recovery epochs that relaunched the full world
	Shrinks       int64 // recovery epochs that resumed degraded on the survivors
	RanksShed     int64 // ranks dropped from the world by degraded resumes
	PeersLost     int64 // ranks lost to transport failure
	RankPanics    int64 // ranks lost to panic
	WastedRecords int64 // records re-sorted due to failed epochs
}

// Snapshot returns the current counter values (zero for nil).
func (r *RecoveryStats) Snapshot() RecoverySnapshot {
	if r == nil {
		return RecoverySnapshot{}
	}
	return RecoverySnapshot{
		Restarts:      r.restarts.Load(),
		Shrinks:       r.shrinks.Load(),
		RanksShed:     r.shed.Load(),
		PeersLost:     r.peersLost.Load(),
		RankPanics:    r.panics.Load(),
		WastedRecords: r.wasted.Load(),
	}
}
