package metrics

import (
	"fmt"
	"sync/atomic"
)

// ExchangeStats counts what the staged all-to-all data exchange did:
// how many bytes moved through the bounded staging window, how large
// that window ever got on the memlimit gauge, and how well the encode
// buffer pool recycled. One ExchangeStats may be shared by every rank
// of an in-process job (the counters are atomic), mirroring how one
// memlimit.Gauge models a shared budget.
type ExchangeStats struct {
	// BytesStaged is the total payload bytes that passed through
	// staging buffers (sent chunks plus the self-copy).
	BytesStaged atomic.Int64
	// StageChunks is the number of chunks those bytes were split into.
	StageChunks atomic.Int64
	// PeakStagingReserved is the largest staging-window reservation any
	// single exchange made against the memory gauge.
	PeakStagingReserved atomic.Int64
	// PoolHits / PoolMisses count encode-buffer pool lookups that were
	// served from the free list versus freshly allocated.
	PoolHits   atomic.Int64
	PoolMisses atomic.Int64
	// ZeroCopyBytes / ZeroCopyChunks count exchange payload moved by
	// the zero-copy path: scatter-gathered directly between record
	// slabs and the transport, with no encode/decode through pooled
	// buffers. Zero on both means every exchange took the generic
	// marshal path.
	ZeroCopyBytes  atomic.Int64
	ZeroCopyChunks atomic.Int64
	// WindowBytes is a live gauge of staging-window occupancy: chunk
	// bytes currently held by in-flight staged exchanges, summed across
	// every rank sharing this ExchangeStats. It returns to zero when no
	// exchange is running.
	WindowBytes atomic.Int64
}

// AddWindow accrues a (possibly negative) staging-window delta; it is
// the comm.StagedOptions.OnWindow hook.
func (s *ExchangeStats) AddWindow(delta int64) {
	if s == nil {
		return
	}
	s.WindowBytes.Add(delta)
}

// ObservePeakStaging raises PeakStagingReserved to v if v is larger.
func (s *ExchangeStats) ObservePeakStaging(v int64) {
	if s == nil {
		return
	}
	for {
		p := s.PeakStagingReserved.Load()
		if v <= p || s.PeakStagingReserved.CompareAndSwap(p, v) {
			return
		}
	}
}

// AddPool accrues buffer-pool counters.
func (s *ExchangeStats) AddPool(hits, misses int64) {
	if s == nil {
		return
	}
	s.PoolHits.Add(hits)
	s.PoolMisses.Add(misses)
}

// AddStaged accrues staged traffic: bytes through the window and the
// chunk count they were split into.
func (s *ExchangeStats) AddStaged(bytes, chunks int64) {
	if s == nil {
		return
	}
	s.BytesStaged.Add(bytes)
	s.StageChunks.Add(chunks)
}

// AddZeroCopy accrues payload moved by the zero-copy path.
func (s *ExchangeStats) AddZeroCopy(bytes, chunks int64) {
	if s == nil {
		return
	}
	s.ZeroCopyBytes.Add(bytes)
	s.ZeroCopyChunks.Add(chunks)
}

// ZeroCopyUsed reports whether any exchange traffic took the zero-copy
// path since the counters were created.
func (s *ExchangeStats) ZeroCopyUsed() bool {
	return s != nil && s.ZeroCopyChunks.Load() > 0
}

// PoolHitRate returns the fraction of pool lookups served without
// allocating, or 0 when the pool was never used.
func (s *ExchangeStats) PoolHitRate() float64 {
	if s == nil {
		return 0
	}
	h, m := s.PoolHits.Load(), s.PoolMisses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// String renders the counters on one line for reports.
func (s *ExchangeStats) String() string {
	if s == nil {
		return "exchange: unstaged"
	}
	return fmt.Sprintf("exchange: %d bytes staged in %d chunks, peak staging %dB, pool hit rate %.2f, zero-copy %dB in %d chunks",
		s.BytesStaged.Load(), s.StageChunks.Load(), s.PeakStagingReserved.Load(), s.PoolHitRate(),
		s.ZeroCopyBytes.Load(), s.ZeroCopyChunks.Load())
}
