package metrics

import (
	"fmt"
	"sync/atomic"
)

// SpillStats counts what the out-of-core spill tier did: how many
// sorted runs were written to disk, how many payload bytes they held,
// and how the lazy merges over them fanned in. Like ExchangeStats, one
// SpillStats may be shared by every rank of an in-process job — the
// counters are atomic — mirroring how one memlimit.Gauge models a
// shared budget.
type SpillStats struct {
	// RunsSpilled is the number of sorted run files written (initial
	// runs plus intermediate pre-merge runs).
	RunsSpilled atomic.Int64
	// BytesSpilled is the total record payload written to run files.
	BytesSpilled atomic.Int64
	// MergePasses is the number of k-way merge passes streamed over run
	// files (final output merges plus fan-in-capped pre-merges).
	MergePasses atomic.Int64
	// MaxFanIn is the widest single merge pass observed.
	MaxFanIn atomic.Int64
	// SpilledSorts is the number of Sort calls that left the in-memory
	// regime (forced or budget-driven).
	SpilledSorts atomic.Int64
}

// AddRun accrues one spilled run of the given payload size.
func (s *SpillStats) AddRun(bytes int64) {
	if s == nil {
		return
	}
	s.RunsSpilled.Add(1)
	s.BytesSpilled.Add(bytes)
}

// AddMerge accrues one merge pass over fanIn runs.
func (s *SpillStats) AddMerge(fanIn int) {
	if s == nil {
		return
	}
	s.MergePasses.Add(1)
	v := int64(fanIn)
	for {
		p := s.MaxFanIn.Load()
		if v <= p || s.MaxFanIn.CompareAndSwap(p, v) {
			return
		}
	}
}

// AddSpilledSort accrues one sort that entered the spill regime.
func (s *SpillStats) AddSpilledSort() {
	if s == nil {
		return
	}
	s.SpilledSorts.Add(1)
}

// Spilled reports whether any run was ever written.
func (s *SpillStats) Spilled() bool {
	return s != nil && s.RunsSpilled.Load() > 0
}

// String renders the counters on one line for reports.
func (s *SpillStats) String() string {
	if s == nil {
		return "spill: off"
	}
	return fmt.Sprintf("spill: %d runs (%dB) in %d sorts, %d merge passes, max fan-in %d",
		s.RunsSpilled.Load(), s.BytesSpilled.Load(), s.SpilledSorts.Load(),
		s.MergePasses.Load(), s.MaxFanIn.Load())
}
