package metrics

import (
	"sync"

	"sdssort/internal/telemetry"
)

// AlgoStats counts which algorithm driver each sort actually ran —
// the resolved choice, so a job submitted with `-algo auto` increments
// the driver the profile selected. May be shared across ranks and jobs;
// safe for concurrent use.
type AlgoStats struct {
	mu       sync.Mutex
	selected map[string]int64
}

// Selected records one sort dispatched to the named driver. Nil-safe.
func (s *AlgoStats) Selected(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.selected == nil {
		s.selected = make(map[string]int64)
	}
	s.selected[name]++
}

// Count returns how many sorts ran under the named driver. Nil-safe.
func (s *AlgoStats) Count(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.selected[name]
}

// Register exposes a per-driver selection counter for each of the given
// driver names. The names are passed in (typically algo.Names()) because
// the driver registry lives a layer above metrics.
func (s *AlgoStats) Register(r *telemetry.Registry, algos ...string) {
	for _, name := range algos {
		name := name
		r.CounterFunc("sds_algo_selected_total",
			"Sorts dispatched per algorithm driver (resolved: auto counts under its choice).",
			func() float64 { return float64(s.Count(name)) },
			telemetry.L("algo", name))
	}
}
