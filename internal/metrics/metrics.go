// Package metrics provides measurement utilities shared by the SDS-Sort
// library, its baselines, and the experiment harness: phase timers, the
// RDFA load-balance metric from the paper, sorting throughput, and basic
// distribution statistics.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Phase identifies one stage of a parallel sort run. The names match the
// phase breakdown the paper reports in Figures 9 and 10.
type Phase int

const (
	// PhaseLocalSort is the initial local ordering of each rank's raw
	// input (Fig. 1 line 2), before sampling begins. It is distinct from
	// PhaseLocalOrdering, which orders the *received* data after the
	// exchange (lines 16-27).
	PhaseLocalSort Phase = iota
	PhasePivotSelection
	PhaseExchange
	PhaseLocalOrdering
	PhaseOther
	numPhases
)

// String returns the paper's label for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseLocalSort:
		return "Local sort"
	case PhasePivotSelection:
		return "Pivot selection"
	case PhaseExchange:
		return "Exchange"
	case PhaseLocalOrdering:
		return "Local-ordering"
	case PhaseOther:
		return "Other"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Phases lists all phases in reporting order.
func Phases() []Phase {
	return []Phase{PhaseLocalSort, PhasePivotSelection, PhaseExchange, PhaseLocalOrdering, PhaseOther}
}

// PhaseTimer accumulates wall-clock time per phase for one rank.
// It is not safe for concurrent use; each rank owns its own timer.
type PhaseTimer struct {
	acc     [numPhases]time.Duration
	current Phase
	started time.Time
	running bool
	now     func() time.Time
}

// NewPhaseTimer returns a stopped timer.
func NewPhaseTimer() *PhaseTimer {
	return &PhaseTimer{now: time.Now}
}

// NewPhaseTimerClock returns a timer reading time from now, for tests.
func NewPhaseTimerClock(now func() time.Time) *PhaseTimer {
	return &PhaseTimer{now: now}
}

// Start begins timing phase p, closing any phase already running.
func (t *PhaseTimer) Start(p Phase) {
	n := t.now()
	if t.running {
		t.acc[t.current] += n.Sub(t.started)
	}
	t.current = p
	t.started = n
	t.running = true
}

// Stop closes the running phase, if any.
func (t *PhaseTimer) Stop() {
	if !t.running {
		return
	}
	t.acc[t.current] += t.now().Sub(t.started)
	t.running = false
}

// Add directly accrues d to phase p (used to merge sub-measurements).
func (t *PhaseTimer) Add(p Phase, d time.Duration) {
	t.acc[p] += d
}

// Get returns the accumulated time for phase p, excluding a running span.
func (t *PhaseTimer) Get(p Phase) time.Duration { return t.acc[p] }

// Total returns the sum over all phases.
func (t *PhaseTimer) Total() time.Duration {
	var s time.Duration
	for _, d := range t.acc {
		s += d
	}
	return s
}

// Breakdown returns a copy of the per-phase accumulation keyed by phase.
func (t *PhaseTimer) Breakdown() map[Phase]time.Duration {
	m := make(map[Phase]time.Duration, numPhases)
	for p := Phase(0); p < numPhases; p++ {
		m[p] = t.acc[p]
	}
	return m
}

// MergeMax folds per-rank timers into a single breakdown taking, for each
// phase, the maximum across ranks. Parallel runtime is gated by the
// slowest rank, so this is the number the paper's stacked bars report.
func MergeMax(timers []*PhaseTimer) map[Phase]time.Duration {
	out := make(map[Phase]time.Duration, numPhases)
	for _, t := range timers {
		for p := Phase(0); p < numPhases; p++ {
			if d := t.Get(p); d > out[p] {
				out[p] = d
			}
		}
	}
	return out
}

// RDFA is the paper's load-balance metric: the Relative Deviation of the
// size of the largest partition From the Average partition size,
// max(m_i) / avg(m_i). A perfectly balanced run has RDFA 1.0. It returns
// +Inf when the run failed (avg is zero or loads is empty), matching the
// paper's convention of reporting ∞ for runs that died of OOM.
func RDFA(loads []int) float64 {
	if len(loads) == 0 {
		return math.Inf(1)
	}
	var sum, maxLoad int
	for _, m := range loads {
		sum += m
		if m > maxLoad {
			maxLoad = m
		}
	}
	if sum == 0 {
		return math.Inf(1)
	}
	avg := float64(sum) / float64(len(loads))
	return float64(maxLoad) / avg
}

// Throughput returns sorting throughput in bytes per second.
func Throughput(totalBytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(totalBytes) / elapsed.Seconds()
}

// FormatThroughput renders a bytes/sec figure in the paper's TB/min units
// when large, falling back to MB/s for laptop-scale runs.
func FormatThroughput(bytesPerSec float64) string {
	const tb = 1 << 40
	perMin := bytesPerSec * 60
	if perMin >= tb {
		return fmt.Sprintf("%.2fTB/min", perMin/tb)
	}
	return fmt.Sprintf("%.1fMB/s", bytesPerSec/(1<<20))
}

// Stats summarises a set of integer loads.
type Stats struct {
	Min, Max int
	Mean     float64
	StdDev   float64
}

// Summarise computes distribution statistics for loads.
func Summarise(loads []int) Stats {
	if len(loads) == 0 {
		return Stats{}
	}
	s := Stats{Min: loads[0], Max: loads[0]}
	var sum float64
	for _, v := range loads {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += float64(v)
	}
	s.Mean = sum / float64(len(loads))
	var ss float64
	for _, v := range loads {
		d := float64(v) - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(loads)))
	return s
}

// Median returns the median of ds (ds is not modified).
func Median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), ds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[len(cp)/2]
}

// Table renders rows of figures as an aligned text table, the format the
// experiment harness prints for each reproduced paper table/figure.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV renders the table as CSV (header row first), for plotting
// the reproduced series next to the paper's figures.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FmtDur formats a duration with millisecond precision for tables.
func FmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

// FmtRDFA formats an RDFA value the way the paper's Table 3 does,
// printing ∞ for failed runs.
func FmtRDFA(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4f", v)
}
