package metrics

import (
	"strings"
	"testing"
	"time"
)

// TestJobMetricsIsolation checks two scopes from one registry never
// share state: timers, exchange counters, records and elapsed are all
// per job.
func TestJobMetricsIsolation(t *testing.T) {
	reg := NewJobRegistry()
	a := reg.NewJob("alpha", 2)
	b := reg.NewJob("", 2) // defaults to job1

	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("ids = %d, %d, want 0, 1", a.ID, b.ID)
	}
	if b.Name != "job1" {
		t.Errorf("default name = %q, want job1", b.Name)
	}
	if a.Exchange == b.Exchange {
		t.Error("jobs share an ExchangeStats")
	}
	if a.Timer(0) == b.Timer(0) || a.Timer(0) == a.Timer(1) {
		t.Error("phase timers are shared across jobs or ranks")
	}

	a.Timer(0).Add(PhaseLocalSort, 3*time.Millisecond)
	a.SetRecords(0, 100)
	a.SetRecords(1, 300)
	a.SetElapsed(7 * time.Millisecond)
	b.SetRecords(0, 5)

	if got := b.Timer(0).Get(PhaseLocalSort); got != 0 {
		t.Errorf("job b inherited job a's timer: %v", got)
	}
	if got := a.Records(); got[0] != 100 || got[1] != 300 {
		t.Errorf("job a records = %v", got)
	}
	if got := b.Records(); got[0] != 5 || got[1] != 0 {
		t.Errorf("job b records = %v", got)
	}
	if a.Elapsed() != 7*time.Millisecond || b.Elapsed() != 0 {
		t.Errorf("elapsed leaked across scopes: a=%v b=%v", a.Elapsed(), b.Elapsed())
	}
	if got := a.MergedPhases()[PhaseLocalSort]; got != 3*time.Millisecond {
		t.Errorf("merged local-sort = %v, want 3ms", got)
	}
}

func TestJobRegistryLookup(t *testing.T) {
	reg := NewJobRegistry()
	m := reg.NewJob("only", 1)
	if reg.Get(0) != m {
		t.Error("Get(0) did not return the registered scope")
	}
	if reg.Get(1) != nil || reg.Get(-1) != nil {
		t.Error("Get out of range did not return nil")
	}
	if jobs := reg.Jobs(); len(jobs) != 1 || jobs[0] != m {
		t.Errorf("Jobs() = %v", jobs)
	}
}

func TestJobRegistryTable(t *testing.T) {
	reg := NewJobRegistry()
	a := reg.NewJob("first", 2)
	a.SetRecords(0, 10)
	a.SetRecords(1, 10)
	a.SetElapsed(time.Millisecond)
	reg.NewJob("second", 2)

	out := reg.Table().String()
	for _, want := range []string{"first", "second", "20"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
