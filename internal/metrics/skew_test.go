package metrics

import (
	"math"
	"strings"
	"testing"

	"sdssort/internal/telemetry"
)

func TestSkewObserveGeometry(t *testing.T) {
	s := NewSkewStats()
	// Loads 10/10/10/50: mean 20, max 50 on rank 3, imbalance 2.5,
	// rank 3 past the 2× straggler bar.
	o := s.Observe(SkewExchange, []int64{10, 10, 10, 50}, 0)
	if o.Ranks != 4 || o.Max != 50 || o.MaxRank != 3 {
		t.Fatalf("geometry wrong: %+v", o)
	}
	if math.Abs(o.Mean-20) > 1e-9 || math.Abs(o.Imbalance-2.5) > 1e-9 {
		t.Fatalf("mean/imbalance = %v/%v, want 20/2.5", o.Mean, o.Imbalance)
	}
	if len(o.Stragglers) != 1 || o.Stragglers[0] != 3 {
		t.Fatalf("stragglers = %v, want [3]", o.Stragglers)
	}
	if got := s.Imbalance(SkewExchange); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("Imbalance gauge = %v, want 2.5", got)
	}
}

// The gauges are idempotent across ranks of a collective (everyone
// sees the same loads vector), but the straggler counter must count a
// sighting only on the rank that straggled — a shared in-process
// SkewStats would otherwise multi-count each incident p times.
func TestSkewStragglerSelfAttribution(t *testing.T) {
	s := NewSkewStats()
	loads := []int64{10, 10, 10, 50}
	for self := 0; self < len(loads); self++ {
		s.Observe(SkewLocalSort, loads, self)
	}
	if got := s.Stragglers(SkewLocalSort); got != 1 {
		t.Errorf("4 collective observations counted %d straggler sightings, want 1 (rank 3's own)", got)
	}
}

func TestSkewWorstRetainsHighWaterMark(t *testing.T) {
	s := NewSkewStats()
	s.Observe(SkewExchange, []int64{10, 30}, 0) // imbalance 1.5
	s.Observe(SkewExchange, []int64{20, 20}, 0) // imbalance 1.0
	if got := s.Imbalance(SkewExchange); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("last gauge = %v, want 1.0", got)
	}
	if got := s.phases[SkewExchange].worst(); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("worst gauge = %v, want the 1.5 high-water mark", got)
	}
}

func TestSkewObserveDegenerateInputs(t *testing.T) {
	s := NewSkewStats()
	if o := s.Observe(SkewExchange, nil, 0); o.Imbalance != 0 {
		t.Errorf("empty loads produced imbalance %v", o.Imbalance)
	}
	if o := s.Observe(SkewExchange, []int64{0, 0}, 0); o.Imbalance != 0 {
		t.Errorf("all-zero loads produced imbalance %v", o.Imbalance)
	}
	if o := s.Observe("nonesuch", []int64{1, 3}, 0); o.Imbalance == 0 {
		t.Error("unknown phase should still return the geometry")
	}
	if got := s.Imbalance("nonesuch"); got != 0 {
		t.Errorf("unknown phase recorded a gauge: %v", got)
	}
	// Nil-safe, so instrumented code calls unconditionally.
	var nilStats *SkewStats
	if o := nilStats.Observe(SkewExchange, []int64{1, 9}, 0); math.Abs(o.Imbalance-1.8) > 1e-9 {
		t.Errorf("nil stats should still compute geometry, got %+v", o)
	}
	if nilStats.Imbalance(SkewExchange) != 0 || nilStats.Stragglers(SkewExchange) != 0 {
		t.Error("nil stats reads should be zero")
	}
}

func TestSkewRegisterExportsSeries(t *testing.T) {
	s := NewSkewStats()
	s.Observe(SkewExchange, []int64{10, 10, 10, 50}, 3)
	reg := telemetry.NewRegistry()
	s.Register(reg)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sds_phase_imbalance_max_mean{phase="exchange"} 2.5`,
		`sds_phase_imbalance_worst{phase="exchange"} 2.5`,
		`sds_phase_straggler_total{phase="exchange"} 1`,
		`sds_phase_imbalance_max_mean{phase="localsort"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
