package metrics

import "sdssort/internal/telemetry"

// Register exposes the staged-exchange counters, including the live
// staging-window occupancy gauge.
func (s *ExchangeStats) Register(r *telemetry.Registry) {
	r.CounterFunc("sds_exchange_bytes_staged_total", "Payload bytes that passed through staging buffers.", telemetry.FInt(s.BytesStaged.Load))
	r.CounterFunc("sds_exchange_chunks_total", "Stage chunks the staged bytes were cut into.", telemetry.FInt(s.StageChunks.Load))
	r.GaugeFunc("sds_exchange_window_bytes", "Live staging-window occupancy: chunk bytes currently held by in-flight exchanges.", telemetry.FInt(s.WindowBytes.Load))
	r.GaugeFunc("sds_exchange_peak_staging_bytes", "Largest staging-window reservation any exchange made.", telemetry.FInt(s.PeakStagingReserved.Load))
	r.CounterFunc("sds_exchange_pool_hits_total", "Encode-buffer pool lookups served from the free list.", telemetry.FInt(s.PoolHits.Load))
	r.CounterFunc("sds_exchange_pool_misses_total", "Encode-buffer pool lookups that allocated.", telemetry.FInt(s.PoolMisses.Load))
	r.CounterFunc("sds_exchange_zero_copy_bytes_total", "Exchange payload moved by the zero-copy path (no encode/decode staging copies).", telemetry.FInt(s.ZeroCopyBytes.Load))
	r.CounterFunc("sds_exchange_zero_copy_chunks_total", "Chunks moved by the zero-copy path.", telemetry.FInt(s.ZeroCopyChunks.Load))
}

// Register exposes the out-of-core spill-tier counters.
func (s *SpillStats) Register(r *telemetry.Registry) {
	r.CounterFunc("sds_spill_runs_total", "Sorted run files written to the spill tier.", telemetry.FInt(s.RunsSpilled.Load))
	r.CounterFunc("sds_spill_bytes_total", "Record payload bytes written to spill run files.", telemetry.FInt(s.BytesSpilled.Load))
	r.CounterFunc("sds_spill_merge_passes_total", "K-way merge passes streamed over spill runs.", telemetry.FInt(s.MergePasses.Load))
	r.GaugeFunc("sds_spill_max_fan_in", "Widest single merge pass over spill runs.", telemetry.FInt(s.MaxFanIn.Load))
	r.CounterFunc("sds_spill_sorts_total", "Sort calls that entered the out-of-core spill regime.", telemetry.FInt(s.SpilledSorts.Load))
}

// Register exposes supervisor-level recovery counters.
func (s *RecoveryStats) Register(r *telemetry.Registry) {
	snap := func(f func(RecoverySnapshot) int64) func() float64 {
		return func() float64 { return float64(f(s.Snapshot())) }
	}
	r.CounterFunc("sds_recovery_restarts_total", "Supervisor restarts (full-world relaunch epochs).", snap(func(v RecoverySnapshot) int64 { return v.Restarts }))
	r.CounterFunc("sds_recovery_shrinks_total", "Degraded-mode resumes (world shrunk onto the survivors).", snap(func(v RecoverySnapshot) int64 { return v.Shrinks }))
	r.CounterFunc("sds_recovery_ranks_shed_total", "Ranks dropped from the world by degraded resumes.", snap(func(v RecoverySnapshot) int64 { return v.RanksShed }))
	r.CounterFunc("sds_recovery_peers_lost_total", "Ranks lost to transport failure.", snap(func(v RecoverySnapshot) int64 { return v.PeersLost }))
	r.CounterFunc("sds_recovery_rank_panics_total", "Ranks lost to panic.", snap(func(v RecoverySnapshot) int64 { return v.RankPanics }))
	r.CounterFunc("sds_recovery_wasted_records_total", "Records re-sorted because an epoch failed.", snap(func(v RecoverySnapshot) int64 { return v.WastedRecords }))
}
