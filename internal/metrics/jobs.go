package metrics

import (
	"fmt"
	"sync"
	"time"
)

// JobMetrics is the measurement scope of one job on a multiplexed
// fabric: per-rank phase timers, the job's exchange counters and the
// final per-rank loads, all isolated from every other job running on
// the same fabric. Before job scoping, a long-lived process had one
// PhaseTimer and one ExchangeStats and every sort aggregated into them;
// a JobMetrics makes "how long did job 7's exchange take" answerable.
//
// Each Timer(rank) is owned by that rank's goroutine (PhaseTimer is not
// concurrency-safe); everything else on the type is safe for concurrent
// use by the job's ranks.
type JobMetrics struct {
	// ID is the job's engine-assigned sequence number.
	ID int
	// Name labels the job in tables and traces.
	Name string
	// Exchange accrues the job's staged-exchange counters across ranks.
	Exchange *ExchangeStats

	timers  []*PhaseTimer
	mu      sync.Mutex
	records []int
	elapsed time.Duration
}

// NewJobMetrics builds a scope for a job of the given rank count.
// Engine users normally get one from JobRegistry.NewJob instead.
func NewJobMetrics(id int, name string, ranks int) *JobMetrics {
	if ranks < 1 {
		ranks = 1
	}
	m := &JobMetrics{
		ID:       id,
		Name:     name,
		Exchange: &ExchangeStats{},
		timers:   make([]*PhaseTimer, ranks),
		records:  make([]int, ranks),
	}
	for r := range m.timers {
		m.timers[r] = NewPhaseTimer()
	}
	return m
}

// Ranks returns the job's rank count.
func (m *JobMetrics) Ranks() int { return len(m.timers) }

// Timer returns rank's phase timer. The timer is owned by that rank's
// goroutine for the duration of the job.
func (m *JobMetrics) Timer(rank int) *PhaseTimer { return m.timers[rank] }

// SetRecords stores rank's final load (the m_i of the RDFA metric).
func (m *JobMetrics) SetRecords(rank, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records[rank] = n
}

// Records returns a copy of the per-rank final loads.
func (m *JobMetrics) Records() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int(nil), m.records...)
}

// SetElapsed records the job's wall time (admission to completion).
func (m *JobMetrics) SetElapsed(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.elapsed = d
}

// Elapsed returns the job's wall time, zero while it is still running.
func (m *JobMetrics) Elapsed() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.elapsed
}

// MergedPhases folds the job's per-rank timers with MergeMax — the
// slowest rank per phase, the number the paper's stacked bars report.
func (m *JobMetrics) MergedPhases() map[Phase]time.Duration {
	return MergeMax(m.timers)
}

// RDFA returns the job's load-balance metric over its final loads.
func (m *JobMetrics) RDFA() float64 { return RDFA(m.Records()) }

// JobRegistry hands out and retains JobMetrics scopes, one per job, in
// submission order. It is the engine's answer to "phase tables must not
// aggregate across jobs": each job reports under its own scope and the
// registry renders them side by side.
type JobRegistry struct {
	mu   sync.Mutex
	jobs []*JobMetrics
}

// NewJobRegistry returns an empty registry.
func NewJobRegistry() *JobRegistry { return &JobRegistry{} }

// NewJob allocates the next job's scope. IDs are assigned sequentially
// from 0; an empty name defaults to "job<id>".
func (r *JobRegistry) NewJob(name string, ranks int) *JobMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := len(r.jobs)
	if name == "" {
		name = fmt.Sprintf("job%d", id)
	}
	m := NewJobMetrics(id, name, ranks)
	r.jobs = append(r.jobs, m)
	return m
}

// Get returns the scope of job id, or nil if no such job exists.
func (r *JobRegistry) Get(id int) *JobMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.jobs) {
		return nil
	}
	return r.jobs[id]
}

// Jobs returns every registered scope in submission order (a copy of
// the slice; the scopes themselves are shared).
func (r *JobRegistry) Jobs() []*JobMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*JobMetrics(nil), r.jobs...)
}

// Table renders one row per job: wall time, the MergeMax phase
// breakdown, total records and RDFA — the service-shaped counterpart of
// the per-run phase tables.
func (r *JobRegistry) Table() *Table {
	t := &Table{Title: "Jobs", Headers: []string{"job", "elapsed"}}
	phases := Phases()
	for _, p := range phases {
		t.Headers = append(t.Headers, p.String())
	}
	t.Headers = append(t.Headers, "records", "RDFA")
	for _, m := range r.Jobs() {
		row := []string{m.Name, FmtDur(m.Elapsed())}
		merged := m.MergedPhases()
		for _, p := range phases {
			row = append(row, FmtDur(merged[p]))
		}
		total := 0
		for _, n := range m.Records() {
			total += n
		}
		row = append(row, fmt.Sprint(total), FmtRDFA(m.RDFA()))
		t.AddRow(row...)
	}
	return t
}
