package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestPhaseTimerAccumulation(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	tm := NewPhaseTimerClock(clock)

	tm.Start(PhasePivotSelection)
	now = now.Add(10 * time.Millisecond)
	tm.Start(PhaseExchange) // closes pivot selection
	now = now.Add(5 * time.Millisecond)
	tm.Stop()

	if got := tm.Get(PhasePivotSelection); got != 10*time.Millisecond {
		t.Fatalf("pivot: %v", got)
	}
	if got := tm.Get(PhaseExchange); got != 5*time.Millisecond {
		t.Fatalf("exchange: %v", got)
	}
	if got := tm.Total(); got != 15*time.Millisecond {
		t.Fatalf("total: %v", got)
	}
	tm.Stop() // double stop is a no-op
	if tm.Total() != 15*time.Millisecond {
		t.Fatal("double Stop changed totals")
	}
	tm.Add(PhaseOther, time.Millisecond)
	if tm.Get(PhaseOther) != time.Millisecond {
		t.Fatal("Add failed")
	}
	bd := tm.Breakdown()
	if bd[PhasePivotSelection] != 10*time.Millisecond || len(bd) != 5 {
		t.Fatalf("breakdown: %v", bd)
	}
}

func TestMergeMax(t *testing.T) {
	a := NewPhaseTimer()
	a.Add(PhaseExchange, 5*time.Millisecond)
	b := NewPhaseTimer()
	b.Add(PhaseExchange, 9*time.Millisecond)
	b.Add(PhaseOther, time.Millisecond)
	m := MergeMax([]*PhaseTimer{a, b})
	if m[PhaseExchange] != 9*time.Millisecond || m[PhaseOther] != time.Millisecond {
		t.Fatalf("got %v", m)
	}
}

func TestRDFA(t *testing.T) {
	if got := RDFA([]int{10, 10, 10, 10}); got != 1.0 {
		t.Fatalf("balanced: %v", got)
	}
	if got := RDFA([]int{40, 0, 0, 0}); got != 4.0 {
		t.Fatalf("collapsed: %v", got)
	}
	if !math.IsInf(RDFA(nil), 1) {
		t.Fatal("empty loads should be +Inf")
	}
	if !math.IsInf(RDFA([]int{0, 0}), 1) {
		t.Fatal("zero loads should be +Inf")
	}
}

func TestThroughputAndFormat(t *testing.T) {
	bps := Throughput(1<<30, time.Second)
	if bps != float64(1<<30) {
		t.Fatalf("got %v", bps)
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("zero elapsed should be 0")
	}
	if s := FormatThroughput(float64(2) * (1 << 40) / 60); !strings.Contains(s, "TB/min") {
		t.Fatalf("big throughput format: %s", s)
	}
	if s := FormatThroughput(float64(5 << 20)); !strings.Contains(s, "MB/s") {
		t.Fatalf("small throughput format: %s", s)
	}
}

func TestSummarise(t *testing.T) {
	s := Summarise([]int{1, 2, 3, 4})
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("got %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(1.25)) > 1e-9 {
		t.Fatalf("stddev %v", s.StdDev)
	}
	if z := Summarise(nil); z.Max != 0 {
		t.Fatalf("empty: %+v", z)
	}
}

func TestMedian(t *testing.T) {
	ds := []time.Duration{5, 1, 9}
	if got := Median(ds); got != 5 {
		t.Fatalf("got %v", got)
	}
	if ds[0] != 5 {
		t.Fatal("Median mutated input")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "Demo", Headers: []string{"a", "long-header"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	if !strings.Contains(s, "== Demo ==") || !strings.Contains(s, "long-header") {
		t.Fatalf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FmtDur(1500 * time.Microsecond); got != "1.500ms" {
		t.Fatalf("FmtDur: %s", got)
	}
	if got := FmtRDFA(math.Inf(1)); got != "inf" {
		t.Fatalf("FmtRDFA inf: %s", got)
	}
	if got := FmtRDFA(1.23456); got != "1.2346" {
		t.Fatalf("FmtRDFA: %s", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseLocalSort.String() != "Local sort" {
		t.Fatal("local-sort phase name")
	}
	if PhasePivotSelection.String() != "Pivot selection" {
		t.Fatal("phase name")
	}
	if Phase(99).String() != "Phase(99)" {
		t.Fatal("unknown phase name")
	}
	if len(Phases()) != 5 {
		t.Fatal("phase list")
	}
	if Phases()[0] != PhaseLocalSort {
		t.Fatal("local sort must lead the reporting order")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := Table{Headers: []string{"a", "b"}}
	tbl.AddRow("1", "x,y") // comma must be quoted
	var buf strings.Builder
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Fatalf("got %q want %q", buf.String(), want)
	}
}

func TestRecoveryStatsNilSafeAndCounts(t *testing.T) {
	var nilStats *RecoveryStats
	nilStats.Restart() // must not panic
	nilStats.PeerLost()
	nilStats.RankPanic()
	nilStats.Wasted(10)
	if nilStats.Snapshot() != (RecoverySnapshot{}) {
		t.Fatal("nil snapshot not zero")
	}

	var r RecoveryStats
	r.Restart()
	r.Restart()
	r.PeerLost()
	r.RankPanic()
	r.Wasted(100)
	r.Wasted(-5) // negative waste is ignored
	got := r.Snapshot()
	want := RecoverySnapshot{Restarts: 2, PeersLost: 1, RankPanics: 1, WastedRecords: 100}
	if got != want {
		t.Fatalf("snapshot %+v want %+v", got, want)
	}
}
