package faultnet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"sync"
	"testing"
	"time"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/simnet"
	"sdssort/internal/workload"
)

// seedFromEnv lets the CI soak lane run the same tests under several
// fault schedules (FAULTNET_SEED=n go test ...).
func seedFromEnv(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("FAULTNET_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad FAULTNET_SEED %q: %v", s, err)
	}
	t.Logf("fault schedule seed %d", v)
	return v
}

// within runs fn with a deadline so an injected fault that would
// deadlock the fabric fails the test instead of hanging the suite.
func within(t *testing.T, d time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("still running after %v — the fabric deadlocked", d)
		return nil
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func mustNew(t *testing.T, p Plan) *Injector {
	t.Helper()
	in, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// ringExchange is a deterministic per-rank workload: n tagged messages
// around a ring, values checked for integrity and order.
func ringExchange(n int) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		for i := 0; i < n; i++ {
			if err := c.Send(next, 3, []byte{byte(i), byte(i >> 8)}); err != nil {
				return err
			}
		}
		for i := 0; i < n; i++ {
			data, err := c.Recv(prev, 3)
			if err != nil {
				return err
			}
			if got := int(data[0]) | int(data[1])<<8; got != i {
				return fmt.Errorf("rank %d: message %d arrived as %d", c.Rank(), i, got)
			}
		}
		return nil
	}
}

func TestFaultPlanValidation(t *testing.T) {
	if _, err := New(Plan{SendFailRate: 1.5}); err == nil {
		t.Fatal("rate above 1 accepted")
	}
	if _, err := New(Plan{DupRate: -0.1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	in := mustNew(t, Plan{})
	if in.Plan().Seed != 1 || in.Plan().StallEvery != 64 {
		t.Fatalf("defaults not applied: %+v", in.Plan())
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	seed := seedFromEnv(t)
	plan := Plan{Seed: seed, SendFailRate: 0.2, RecvFailRate: 0.1, MaxConsecutive: 2, DupRate: 0.1, DelayRate: 0.1, MaxDelay: 100 * time.Microsecond}
	policy := comm.RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, Seed: seed}
	run := func() Stats {
		in := mustNew(t, plan)
		err := within(t, 30*time.Second, func() error {
			return cluster.RunOpts(cluster.Topology{Nodes: 2, CoresPerNode: 1},
				cluster.Options{WrapTransport: in.WrapTransport(policy)}, ringExchange(200))
		})
		if err != nil {
			t.Fatalf("ring exchange under faults failed: %v", err)
		}
		return in.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different fault schedules:\n  %+v\n  %+v", a, b)
	}
	if a.SendFailures == 0 && a.RecvFailures == 0 {
		t.Fatalf("plan injected nothing: %+v", a)
	}
}

func TestFaultDuplicateDeliveryDeduped(t *testing.T) {
	in := mustNew(t, Plan{Seed: seedFromEnv(t), DupRate: 1})
	err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(cluster.Topology{Nodes: 1, CoresPerNode: 3},
			cluster.Options{WrapTransport: func(tr comm.Transport) comm.Transport { return in.Wrap(tr) }},
			ringExchange(150))
	})
	if err != nil {
		t.Fatalf("duplicated delivery leaked through dedup: %v", err)
	}
	if st := in.Stats(); st.Duplicates == 0 {
		t.Fatalf("no duplicates injected: %+v", st)
	}
}

func TestFaultStallAndDelay(t *testing.T) {
	in := mustNew(t, Plan{Seed: 1, DelayRate: 1, MaxDelay: 200 * time.Microsecond, StallRank: 0, StallFor: 200 * time.Microsecond, StallEvery: 2})
	err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(cluster.Topology{Nodes: 1, CoresPerNode: 2},
			cluster.Options{WrapTransport: func(tr comm.Transport) comm.Transport { return in.Wrap(tr) }},
			ringExchange(20))
	})
	if err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Delays == 0 || st.Stalls == 0 {
		t.Fatalf("expected delays and stalls: %+v", st)
	}
}

// TestFaultRetryClusterSortCompletesUnderBudget is the acceptance
// scenario: a full SDS-Sort over a fabric injecting send/recv
// failures, connection drops, delays, duplicates and a straggler —
// all below the retry budget (MaxConsecutive < MaxAttempts) — must
// produce a correctly sorted global output.
func TestFaultRetryClusterSortCompletesUnderBudget(t *testing.T) {
	seed := seedFromEnv(t)
	in := mustNew(t, Plan{
		Seed:         seed,
		SendFailRate: 0.15, ConnDropRate: 0.05, RecvFailRate: 0.10,
		MaxConsecutive: 2,
		DelayRate:      0.05, MaxDelay: 500 * time.Microsecond,
		DupRate:   0.05,
		StallRank: 1, StallFor: time.Millisecond, StallEvery: 100,
	})
	policy := comm.RetryPolicy{MaxAttempts: 6, BaseDelay: 200 * time.Microsecond, MaxDelay: 5 * time.Millisecond, Seed: seed}

	const p, perRank = 4, 300
	var mu sync.Mutex
	outputs := make([][]float64, p)
	err := within(t, 60*time.Second, func() error {
		return cluster.RunOpts(cluster.Topology{Nodes: 2, CoresPerNode: 2},
			cluster.Options{WrapTransport: in.WrapTransport(policy)},
			func(c *comm.Comm) error {
				data := workload.ZipfKeys(seed+int64(c.Rank()), perRank, 1.4, 500)
				out, err := core.Sort(c, data, codec.Float64{}, cmpF, core.DefaultOptions())
				if err != nil {
					return err
				}
				mu.Lock()
				outputs[c.Rank()] = out
				mu.Unlock()
				return nil
			})
	})
	if err != nil {
		t.Fatalf("sort under injected faults failed: %v\nstats: %+v", err, in.Stats())
	}
	var flat []float64
	for _, part := range outputs {
		flat = append(flat, part...)
	}
	if len(flat) != p*perRank {
		t.Fatalf("record count %d, want %d", len(flat), p*perRank)
	}
	if !slices.IsSorted(flat) {
		t.Fatal("output not globally sorted under fault injection")
	}
	st := in.Stats()
	if st.SendFailures+st.ConnDrops+st.RecvFailures == 0 {
		t.Fatalf("the run was never actually faulted: %+v", st)
	}
	t.Logf("survived %+v", st)
}

// TestFaultClusterPeerLostAboveBudget is the other half of the
// acceptance criterion: with the failure rate above the retry budget
// (every send fails, uncapped), cluster.Run must return
// comm.ErrPeerLost promptly instead of deadlocking.
func TestFaultClusterPeerLostAboveBudget(t *testing.T) {
	in := mustNew(t, Plan{Seed: seedFromEnv(t), SendFailRate: 1})
	policy := comm.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}
	err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(cluster.Topology{Nodes: 2, CoresPerNode: 2},
			cluster.Options{WrapTransport: in.WrapTransport(policy)},
			func(c *comm.Comm) error {
				data := workload.Uniform(int64(c.Rank()+1), 100)
				_, err := core.Sort(c, data, codec.Float64{}, cmpF, core.DefaultOptions())
				return err
			})
	})
	if err == nil {
		t.Fatal("sort succeeded with every send failing")
	}
	if _, ok := comm.PeerLost(err); !ok {
		t.Fatalf("want comm.ErrPeerLost in the joined error, got: %v", err)
	}
	report := cluster.Report(err)
	if report == "" || report == "cluster: all ranks completed" {
		t.Fatalf("empty per-rank report for %v", err)
	}
	t.Logf("degradation report:\n%s", report)
}

// TestFaultKillRankOnceThenClean exercises the kill-rank fault: the
// victim's ops fail permanently with comm.ErrPeerLost naming itself,
// the whole world unblocks, and — because the kill latch is per
// Injector — re-wrapping fresh transports (what a supervisor does for
// a recovery epoch) runs clean.
func TestFaultKillRankOnceThenClean(t *testing.T) {
	in := mustNew(t, Plan{Seed: seedFromEnv(t), KillRank: 1, KillAfterOps: 5})
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	opts := cluster.Options{WrapTransport: func(tr comm.Transport) comm.Transport { return in.Wrap(tr) }}

	err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, opts, ringExchange(50))
	})
	if err == nil {
		t.Fatal("ring exchange survived a killed rank")
	}
	if rank, ok := comm.PeerLost(err); !ok || rank != 1 {
		t.Fatalf("want ErrPeerLost naming rank 1, got: %v", err)
	}
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("want ErrKilled in the chain, got: %v", err)
	}
	if st := in.Stats(); st.Kills != 1 {
		t.Fatalf("kill fired %d times, want 1: %+v", st.Kills, st)
	}

	// Recovery epoch: same injector, fresh wraps — the kill is spent.
	if err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, opts, ringExchange(50))
	}); err != nil {
		t.Fatalf("retry epoch after the kill was not clean: %v", err)
	}
	if st := in.Stats(); st.Kills != 1 {
		t.Fatalf("kill re-fired on the retry epoch: %+v", st)
	}
}

// TestFaultKillAfterFile pins the kill to a filesystem trigger: no kill
// while the file is absent, kill on the first operation after it
// exists. The checkpoint recovery tests point this at a manifest path
// to kill a rank exactly at a phase boundary.
func TestFaultKillAfterFile(t *testing.T) {
	trigger := filepath.Join(t.TempDir(), "boundary.ckpt")
	in := mustNew(t, Plan{Seed: seedFromEnv(t), KillRank: 0, KillAfterFile: trigger})
	topo := cluster.Topology{Nodes: 1, CoresPerNode: 2}
	opts := cluster.Options{WrapTransport: func(tr comm.Transport) comm.Transport { return in.Wrap(tr) }}

	if err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, opts, ringExchange(20))
	}); err != nil {
		t.Fatalf("killed before the trigger file existed: %v", err)
	}
	if err := os.WriteFile(trigger, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, opts, ringExchange(20))
	})
	if rank, ok := comm.PeerLost(err); !ok || rank != 0 {
		t.Fatalf("want ErrPeerLost naming rank 0 after trigger, got: %v", err)
	}
	if st := in.Stats(); st.Kills != 1 {
		t.Fatalf("kills %d, want 1", st.Kills)
	}
}

// TestFaultStallForHealsItself opens an imperative stall window on one
// rank and checks two things: operations inside the window are delayed
// (not failed — a slow peer is not a lost peer), and after the deadline
// the fabric runs at full speed with no residual fault state.
func TestFaultStallForHealsItself(t *testing.T) {
	in := mustNew(t, Plan{Seed: 1})
	topo := cluster.Topology{Nodes: 1, CoresPerNode: 2}
	opts := cluster.Options{WrapTransport: func(tr comm.Transport) comm.Transport { return in.Wrap(tr) }}

	const window = 50 * time.Millisecond
	in.StallFor(1, window)
	start := time.Now()
	if err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, opts, ringExchange(10))
	}); err != nil {
		t.Fatalf("stalled rank turned into a failure: %v", err)
	}
	if el := time.Since(start); el < window/2 {
		t.Fatalf("exchange finished in %v — the stall window never bit", el)
	}
	if st := in.Stats(); st.Stalls == 0 {
		t.Fatalf("no stalls counted: %+v", st)
	}

	// Healed: the same world runs again without delay.
	start = time.Now()
	if err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, opts, ringExchange(10))
	}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > window {
		t.Fatalf("post-window exchange took %v — the stall did not heal", el)
	}
}

// TestFaultPartitionForHealsItself cuts the world in two for a window:
// cross-cut traffic fails transiently (so a retry budget sized past the
// window rides it out), same-side traffic is untouched, and after the
// deadline the partition heals without any explicit repair.
func TestFaultPartitionForHealsItself(t *testing.T) {
	in := mustNew(t, Plan{Seed: 1})
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	const window = 40 * time.Millisecond

	// Retry budget that comfortably outlives the partition window.
	policy := comm.RetryPolicy{MaxAttempts: 50, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
	in.PartitionFor([]int{1}, window)
	if err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, cluster.Options{WrapTransport: in.WrapTransport(policy)}, ringExchange(5))
	}); err != nil {
		t.Fatalf("partition outlasted a retry budget bigger than its window: %v", err)
	}
	if st := in.Stats(); st.PartitionDrops == 0 {
		t.Fatalf("no cross-cut operations were dropped: %+v", st)
	}

	// A budget smaller than the window surfaces ErrPeerLost — the
	// "mistakes unreachable for dead" case recovery code must expect.
	in.PartitionFor([]int{1}, window)
	tight := comm.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, cluster.Options{WrapTransport: in.WrapTransport(tight)}, ringExchange(5))
	})
	if err == nil {
		t.Fatal("tight retry budget survived the partition window")
	}
	if _, ok := comm.PeerLost(err); !ok {
		t.Fatalf("want ErrPeerLost from exhausted retries, got: %v", err)
	}

	// Healed: wait out the remainder of the window, then the same tight
	// budget runs clean.
	time.Sleep(window)
	if err := within(t, 30*time.Second, func() error {
		return cluster.RunOpts(topo, cluster.Options{WrapTransport: in.WrapTransport(tight)}, ringExchange(5))
	}); err != nil {
		t.Fatalf("post-window exchange failed — the partition did not heal: %v", err)
	}
}

// TestFaultComposesWithSimnet layers the injector over the cost model
// the way the docs describe: retry(faults(costmodel(transport))).
func TestFaultComposesWithSimnet(t *testing.T) {
	seed := seedFromEnv(t)
	in := mustNew(t, Plan{Seed: seed, SendFailRate: 0.1, MaxConsecutive: 1})
	policy := comm.RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, Seed: seed}
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 2}
	fabric := simnet.NewFabric(simnet.Aries(), simnet.Virtual, topo.Size())
	wrap := func(tr comm.Transport) comm.Transport {
		return comm.WithRetry(in.Wrap(fabric.Wrap(tr)), policy)
	}
	outputs := make([][]float64, topo.Size())
	var mu sync.Mutex
	err := within(t, 60*time.Second, func() error {
		return cluster.RunOpts(topo, cluster.Options{WrapTransport: wrap}, func(c *comm.Comm) error {
			data := workload.Uniform(seed+int64(c.Rank())*31, 200)
			out, err := core.Sort(c, data, codec.Float64{}, cmpF, core.DefaultOptions())
			if err != nil {
				return err
			}
			mu.Lock()
			outputs[c.Rank()] = out
			mu.Unlock()
			return nil
		})
	})
	if err != nil {
		t.Fatalf("sort over simnet+faultnet failed: %v", err)
	}
	var flat []float64
	for _, part := range outputs {
		flat = append(flat, part...)
	}
	if !slices.IsSorted(flat) {
		t.Fatal("not sorted")
	}
	if fabric.Makespan() <= 0 {
		t.Fatal("cost model saw no traffic — wrap order broken")
	}
}
