// Package faultnet injects deterministic, seeded network faults under
// the comm runtime. It mirrors how simnet layers a cost model below the
// algorithms: an Injector's Wrap decorates each rank's transport
// through cluster.Options.WrapTransport, and every wrapped operation
// may — per a seeded per-rank RNG — fail transiently, stall, arrive
// late, or arrive twice. Sorting code above the decorator is unchanged;
// the point is to exercise the retry/backoff and typed-error paths
// (comm.WithRetry, comm.ErrPeerLost) that a real network would.
//
// Fault classes:
//
//   - Connection drops and send failures: Send returns an error marked
//     comm.Transient *before* the underlying Send runs, so a retry is
//     always safe (nothing was delivered).
//   - Recv failures: Recv fails transiently before blocking on the
//     underlying transport; the message stays queued for the retry.
//   - Delayed delivery: Send sleeps up to MaxDelay first.
//   - Duplicated delivery: the frame is sent twice. Every wrapped
//     payload carries an 8-byte sequence number per (peer, ctx, tag)
//     stream and the receiving decorator drops already-seen sequence
//     numbers, so duplication is exercised on the wire yet invisible
//     above — the same dedup contract tcpcomm implements for real
//     retransmissions.
//   - Rank stalls: one rank sleeps on every Nth transport operation,
//     simulating a straggler.
//   - Imperative self-healing windows: StallFor freezes one rank's
//     transport until a deadline (slow peer, not dead); PartitionFor
//     makes operations across a rank-set cut fail transiently until the
//     partition heals (unreachable peer, not dead). Both expire on
//     their own — they exist to test that recovery logic distinguishes
//     transient degradation from rank loss.
//
// Because payloads are reframed, Wrap must be applied uniformly: every
// rank of the world wraps, or none (the cluster launcher's hook does
// this naturally). Composition with simnet puts faultnet closest to
// the algorithms: comm.WithRetry(inj.Wrap(fabric.Wrap(tr)), policy) —
// so injected failures never charge phantom cost-model time.
package faultnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sdssort/internal/comm"
)

// Plan declares what to inject. Rates are probabilities in [0,1] drawn
// independently per operation from a per-rank RNG seeded by Seed, so a
// given (plan, world size) produces the same fault schedule every run.
type Plan struct {
	// Seed drives every per-rank RNG (default 1).
	Seed int64
	// SendFailRate is the probability a Send fails with a transient
	// error before anything is delivered.
	SendFailRate float64
	// ConnDropRate is like SendFailRate but reported as a dropped
	// connection — the error text a reconnect layer would see.
	ConnDropRate float64
	// RecvFailRate is the probability a Recv fails transiently before
	// blocking.
	RecvFailRate float64
	// MaxConsecutive caps back-to-back injected failures on one
	// (rank, peer) direction; after that many in a row the next
	// operation passes through. Setting it below the retry budget's
	// MaxAttempts guarantees every operation eventually succeeds —
	// the "failure rate ≤ retry budget" regime. 0 means uncapped
	// (with SendFailRate 1 this starves the budget deterministically).
	MaxConsecutive int
	// DelayRate is the probability a Send is delayed by a uniform
	// duration in (0, MaxDelay].
	DelayRate float64
	// MaxDelay bounds injected delays (default 1ms when DelayRate>0).
	MaxDelay time.Duration
	// DupRate is the probability a frame is delivered twice.
	DupRate float64
	// StallRank and StallFor make one rank sleep StallFor on every
	// StallEvery-th transport operation (disabled while StallFor<=0).
	StallRank  int
	StallFor   time.Duration
	StallEvery int // default 64
	// KillRank terminates one world rank mid-run: once the trigger below
	// fires, every transport operation on that rank fails permanently
	// with comm.ErrPeerLost wrapping ErrKilled — the rank is dead as far
	// as the fabric is concerned, and its peers see it as lost. The kill
	// fires at most once per Injector, so a supervisor that re-wraps
	// fresh transports for a recovery epoch runs the retry clean.
	// Triggers (at least one must be set; both unset disables the kill):
	//
	//   - KillAfterOps: the kill fires on the KillRank's n-th transport
	//     operation, a deterministic mid-phase point.
	//   - KillAfterFile: the kill fires on the first operation after the
	//     named file exists. Pointing it at a checkpoint Store's
	//     ManifestPath pins the kill to a phase boundary.
	KillRank      int
	KillAfterOps  int64
	KillAfterFile string
	// KillHard escalates the kill from a dead transport to a dead
	// process: when the kill fires, the process exits immediately with
	// status 137, the SIGKILL convention — the fault shape multi-process
	// end-to-end tests need. In-process tests leave it false so the
	// "killed" rank surfaces as an error instead of taking the test
	// binary down with it.
	KillHard bool
	// Ranks limits fault injection to these world ranks (nil = all).
	// Wrapping itself must still cover every rank so the sequence
	// framing matches.
	Ranks []int
}

func (p Plan) withDefaults() Plan {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Millisecond
	}
	if p.StallEvery <= 0 {
		p.StallEvery = 64
	}
	return p
}

func (p Plan) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"SendFailRate", p.SendFailRate},
		{"ConnDropRate", p.ConnDropRate},
		{"RecvFailRate", p.RecvFailRate},
		{"DelayRate", p.DelayRate},
		{"DupRate", p.DupRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faultnet: %s %v outside [0,1]", r.name, r.v)
		}
	}
	return nil
}

// Stats counts the faults an Injector has inflicted across all ranks.
type Stats struct {
	SendFailures   int64
	ConnDrops      int64
	RecvFailures   int64
	Delays         int64
	Duplicates     int64
	Stalls         int64
	Kills          int64
	PartitionDrops int64
}

// ErrKilled marks the permanent failure a killed rank's own transport
// operations return (wrapped in comm.ErrPeerLost naming that rank).
var ErrKilled = errors.New("faultnet: rank killed")

// Injector owns one fault plan and wraps any number of rank transports
// with it.
type Injector struct {
	plan Plan

	sendFail, connDrops, recvFail atomic.Int64
	delays, dups, stalls, kills   atomic.Int64
	partDrops                     atomic.Int64

	killOps   atomic.Int64 // transport ops seen on the kill rank
	killFired atomic.Bool  // the one-shot latch: sticky across re-wraps

	// Imperative, self-healing fault windows (StallFor, PartitionFor).
	// Unlike the Plan's declarative faults these are opened mid-run by
	// test code and expire on their own — the fault shapes that model a
	// slow or unreachable peer rather than a dead one.
	winMu      sync.Mutex
	stallUntil map[int]time.Time
	partSet    map[int]bool
	partUntil  time.Time
}

// New validates the plan and builds an injector.
func New(plan Plan) (*Injector, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan.withDefaults()}, nil
}

// Plan returns the effective (default-filled) plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		SendFailures:   in.sendFail.Load(),
		ConnDrops:      in.connDrops.Load(),
		RecvFailures:   in.recvFail.Load(),
		Delays:         in.delays.Load(),
		Duplicates:     in.dups.Load(),
		Stalls:         in.stalls.Load(),
		Kills:          in.kills.Load(),
		PartitionDrops: in.partDrops.Load(),
	}
}

// StallFor opens a self-healing straggler window on one rank: every
// transport operation that rank starts before the window closes sleeps
// until it does, then proceeds normally. This is the fault shape of a
// slow peer, not a lost one — nothing fails and no process dies, so
// code that treats slowness as death (instead of waiting it out or
// probing) is what a StallFor test catches. Calling it again for the
// same rank replaces the window.
func (in *Injector) StallFor(rank int, d time.Duration) {
	in.winMu.Lock()
	defer in.winMu.Unlock()
	if in.stallUntil == nil {
		in.stallUntil = make(map[int]time.Time)
	}
	in.stallUntil[rank] = time.Now().Add(d)
}

// PartitionFor opens a self-healing network partition: until d elapses,
// every operation crossing the cut between ranks and the rest of the
// world fails with a transient error (nothing delivered, retry safe),
// while traffic within either side flows untouched. When the window
// expires the partition heals on its own — the fault shape of an
// unreachable-but-alive peer, the case a shrink decision must NOT
// mistake for a dead one. Calling it again replaces the partition.
func (in *Injector) PartitionFor(ranks []int, d time.Duration) {
	set := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		set[r] = true
	}
	in.winMu.Lock()
	defer in.winMu.Unlock()
	in.partSet = set
	in.partUntil = time.Now().Add(d)
}

// imperativeStall sleeps out the remainder of this rank's StallFor
// window, if one is open.
func (t *transport) imperativeStall() {
	in := t.in
	in.winMu.Lock()
	deadline, ok := in.stallUntil[t.rank]
	in.winMu.Unlock()
	if !ok {
		return
	}
	if rem := time.Until(deadline); rem > 0 {
		in.stalls.Add(1)
		time.Sleep(rem)
		return
	}
	// Window closed: forget it (unless replaced by a later one).
	in.winMu.Lock()
	if cur, ok := in.stallUntil[t.rank]; ok && !cur.After(deadline) {
		delete(in.stallUntil, t.rank)
	}
	in.winMu.Unlock()
}

// partitioned reports the transient error for an operation that crosses
// an open PartitionFor cut, or nil.
func (t *transport) partitioned(peer int) error {
	in := t.in
	in.winMu.Lock()
	if in.partSet == nil {
		in.winMu.Unlock()
		return nil
	}
	if !time.Now().Before(in.partUntil) {
		in.partSet = nil // healed
		in.winMu.Unlock()
		return nil
	}
	cross := in.partSet[t.rank] != in.partSet[peer]
	in.winMu.Unlock()
	if !cross {
		return nil
	}
	in.partDrops.Add(1)
	return comm.Transient(fmt.Errorf("faultnet: rank %d unreachable from rank %d (partitioned)", peer, t.rank))
}

// Wrap decorates one rank's transport with the fault plan. Apply it to
// every rank of the world (cluster.Options.WrapTransport does).
func (in *Injector) Wrap(tr comm.Transport) comm.Transport {
	rank := tr.Rank()
	return &transport{
		Transport: tr,
		in:        in,
		rank:      rank,
		active:    in.applies(rank),
		rng:       rand.New(rand.NewPCG(uint64(in.plan.Seed), uint64(rank)+0x9e3779b97f4a7c15)),
		consec:    make(map[streamDir]int),
		sendSeq:   make(map[streamKey]uint64),
		recvSeq:   make(map[streamKey]uint64),
		streams:   make(map[streamKey]*sync.Mutex),
	}
}

// WrapTransport returns a cluster.Options-compatible hook that layers
// the injector under a comm.WithRetry decorator — the composition the
// robustness tests run: faults below, retry budget above.
func (in *Injector) WrapTransport(p comm.RetryPolicy) func(comm.Transport) comm.Transport {
	return func(tr comm.Transport) comm.Transport {
		return comm.WithRetry(in.Wrap(tr), p)
	}
}

func (in *Injector) applies(rank int) bool {
	if in.plan.Ranks == nil {
		return true
	}
	for _, r := range in.plan.Ranks {
		if r == rank {
			return true
		}
	}
	return false
}

// streamKey identifies one directional message stream; sequence
// numbers are assigned and checked per stream because FIFO delivery is
// only guaranteed per (src, dst, ctx, tag).
type streamKey struct {
	peer int
	ctx  uint64
	tag  int32
}

type streamDir struct {
	peer int
	recv bool
}

const seqHeader = 8

type transport struct {
	comm.Transport
	in     *Injector
	rank   int
	active bool
	dead   atomic.Bool // this wrap's rank was killed; per-epoch, unlike killFired

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int64
	consec  map[streamDir]int // consecutive injected failures per direction
	sendSeq map[streamKey]uint64
	recvSeq map[streamKey]uint64
	streams map[streamKey]*sync.Mutex
}

// draw must be called with t.mu held.
func (t *transport) draw(rate float64) bool {
	return rate > 0 && t.rng.Float64() < rate
}

// allowFail reports (with t.mu held) whether another failure may be
// injected on dir without exceeding MaxConsecutive.
func (t *transport) allowFail(dir streamDir) bool {
	max := t.in.plan.MaxConsecutive
	return max <= 0 || t.consec[dir] < max
}

func (t *transport) streamLock(k streamKey) *sync.Mutex {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.streams[k]
	if !ok {
		m = &sync.Mutex{}
		t.streams[k] = m
	}
	return m
}

// maybeKill fires the plan's one-shot kill-rank fault. The killFired
// latch is on the Injector, so a fresh wrap for a recovery epoch never
// re-kills; the dead flag is on the wrap, so within its epoch the rank
// stays dead for every subsequent operation. The error is permanent
// (not Transient): comm.WithRetry gives up on it immediately, and it
// surfaces as comm.ErrPeerLost naming this rank.
func (t *transport) maybeKill() error {
	p := t.in.plan
	if p.KillAfterOps <= 0 && p.KillAfterFile == "" {
		return nil
	}
	if t.rank != p.KillRank {
		return nil
	}
	if !t.dead.Load() {
		if t.in.killFired.Load() {
			return nil // kill already spent in an earlier epoch
		}
		fire := false
		if p.KillAfterOps > 0 && t.in.killOps.Add(1) == p.KillAfterOps {
			fire = true
		}
		if !fire && p.KillAfterFile != "" {
			if _, err := os.Stat(p.KillAfterFile); err == nil {
				fire = true
			}
		}
		if !fire {
			return nil
		}
		if t.in.killFired.CompareAndSwap(false, true) {
			t.in.kills.Add(1)
		}
		t.dead.Store(true)
		if p.KillHard {
			os.Exit(137)
		}
	}
	return &comm.ErrPeerLost{
		Rank: t.rank,
		Err:  fmt.Errorf("%w: rank %d terminated mid-run", ErrKilled, t.rank),
	}
}

// maybeStall sleeps if this rank is the plan's straggler and this is a
// stall-eligible operation.
func (t *transport) maybeStall() {
	p := t.in.plan
	if !t.active || p.StallFor <= 0 || t.rank != p.StallRank {
		return
	}
	t.mu.Lock()
	t.ops++
	hit := t.ops%int64(p.StallEvery) == 0
	t.mu.Unlock()
	if hit {
		t.in.stalls.Add(1)
		time.Sleep(p.StallFor)
	}
}

func (t *transport) Send(dst int, ctx uint64, tag int32, data []byte) error {
	if err := t.maybeKill(); err != nil {
		return err
	}
	t.maybeStall()
	t.imperativeStall()
	if err := t.partitioned(dst); err != nil {
		return err
	}
	p := t.in.plan
	dir := streamDir{peer: dst}
	key := streamKey{peer: dst, ctx: ctx, tag: tag}

	t.mu.Lock()
	if t.active && t.allowFail(dir) {
		if t.draw(p.ConnDropRate) {
			t.consec[dir]++
			t.mu.Unlock()
			t.in.connDrops.Add(1)
			return comm.Transient(fmt.Errorf("faultnet: connection to rank %d dropped", dst))
		}
		if t.draw(p.SendFailRate) {
			t.consec[dir]++
			t.mu.Unlock()
			t.in.sendFail.Add(1)
			return comm.Transient(fmt.Errorf("faultnet: send to rank %d failed", dst))
		}
	}
	t.consec[dir] = 0
	var delay time.Duration
	if t.active && t.draw(p.DelayRate) {
		delay = time.Duration(1 + t.rng.Int64N(int64(p.MaxDelay)))
	}
	dup := t.active && t.draw(p.DupRate)
	t.mu.Unlock()

	// The stream lock spans sequence assignment, the injected delay and
	// the underlying sends, so sequence numbers reach the wire in
	// order even when the comm layer issues concurrent Isends.
	sl := t.streamLock(key)
	sl.Lock()
	defer sl.Unlock()
	t.mu.Lock()
	seq := t.sendSeq[key]
	t.sendSeq[key] = seq + 1
	t.mu.Unlock()

	if delay > 0 {
		t.in.delays.Add(1)
		time.Sleep(delay)
	}
	buf := make([]byte, seqHeader+len(data))
	binary.LittleEndian.PutUint64(buf, seq)
	copy(buf[seqHeader:], data)
	if err := t.Transport.Send(dst, ctx, tag, buf); err != nil {
		return err
	}
	if dup {
		t.in.dups.Add(1)
		if err := t.Transport.Send(dst, ctx, tag, buf); err != nil {
			return err
		}
	}
	return nil
}

func (t *transport) Recv(src int, ctx uint64, tag int32) ([]byte, error) {
	if err := t.maybeKill(); err != nil {
		return nil, err
	}
	t.maybeStall()
	t.imperativeStall()
	if err := t.partitioned(src); err != nil {
		return nil, err
	}
	dir := streamDir{peer: src, recv: true}
	key := streamKey{peer: src, ctx: ctx, tag: tag}

	t.mu.Lock()
	if t.active && t.allowFail(dir) && t.draw(t.in.plan.RecvFailRate) {
		t.consec[dir]++
		t.mu.Unlock()
		t.in.recvFail.Add(1)
		return nil, comm.Transient(fmt.Errorf("faultnet: receive from rank %d failed", src))
	}
	t.consec[dir] = 0
	t.mu.Unlock()

	for {
		buf, err := t.Transport.Recv(src, ctx, tag)
		if err != nil {
			return nil, err
		}
		if len(buf) < seqHeader {
			return nil, fmt.Errorf("faultnet: frame from rank %d shorter than sequence header", src)
		}
		seq := binary.LittleEndian.Uint64(buf)
		t.mu.Lock()
		expected := t.recvSeq[key]
		if seq < expected {
			t.mu.Unlock()
			continue // duplicate delivery: drop and take the next frame
		}
		t.recvSeq[key] = seq + 1
		t.mu.Unlock()
		return buf[seqHeader:], nil
	}
}
