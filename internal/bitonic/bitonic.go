// Package bitonic implements a distributed bitonic sort over a
// communicator: the block-level bitonic network with compare-split
// exchanges. SDS-Sort uses it to order the p(p-1) local pivots during
// global pivot selection without gathering them onto one rank (§2.4),
// and the experiment harness runs it as a related-work baseline.
package bitonic

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/psort"
)

// Tag space: the bitonic network runs O(log^2 p) sequential rounds; all
// rounds reuse one user tag because messages between a fixed pair are
// FIFO and each rank exchanges exactly one message per round.
const exchangeTag = 1 << 18

// Sort sorts a block-distributed array: rank r contributes local (which
// it may modify) and receives the r-th block of the globally sorted
// array. Requirements of the bitonic network: the communicator size must
// be a power of two and every rank must hold the same number of
// elements. Callers that cannot guarantee this should use GatherSort.
func Sort[T any](c *comm.Comm, local []T, cd codec.Codec[T], cmp func(a, b T) int) ([]T, error) {
	p := c.Size()
	if p&(p-1) != 0 {
		return nil, fmt.Errorf("bitonic: communicator size %d is not a power of two", p)
	}
	m := len(local)
	sizes, err := c.AllgatherInt64(int64(m))
	if err != nil {
		return nil, fmt.Errorf("bitonic: size exchange: %w", err)
	}
	for r, s := range sizes {
		if int(s) != m {
			return nil, fmt.Errorf("bitonic: rank %d holds %d elements, this rank holds %d", r, s, m)
		}
	}
	psort.Sort(local, cmp)
	if p == 1 || m == 0 {
		return local, nil
	}

	rank := c.Rank()
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			partner := rank ^ j
			ascending := rank&k == 0
			keepLow := (rank < partner) == ascending
			local, err = compareSplit(c, local, partner, keepLow, cd, cmp)
			if err != nil {
				return nil, fmt.Errorf("bitonic: stage k=%d j=%d: %w", k, j, err)
			}
		}
	}
	return local, nil
}

// compareSplit exchanges full blocks with the partner, merges, and keeps
// the low or high half. Both sides keep their blocks sorted ascending,
// which is what makes the block-level network equivalent to element
// bitonic sort.
func compareSplit[T any](c *comm.Comm, local []T, partner int, keepLow bool, cd codec.Codec[T], cmp func(a, b T) int) ([]T, error) {
	buf := codec.EncodeSlice(cd, nil, local)
	if err := c.Send(partner, exchangeTag, buf); err != nil {
		return nil, err
	}
	theirBuf, err := c.Recv(partner, exchangeTag)
	if err != nil {
		return nil, err
	}
	theirs, err := codec.DecodeSlice(cd, theirBuf)
	if err != nil {
		return nil, err
	}
	merged := psort.MergeTwo(local, theirs, cmp)
	m := len(local)
	if keepLow {
		return merged[:m], nil
	}
	return merged[len(merged)-m:], nil
}

// GatherSort is the fallback used when the bitonic preconditions do not
// hold (non-power-of-two p or ragged block sizes): gather everything on
// rank 0, sort, and scatter blocks back with the original local sizes.
// This is the "gather local pivots onto a single process" method of
// §2.4, acceptable at moderate p.
func GatherSort[T any](c *comm.Comm, local []T, cd codec.Codec[T], cmp func(a, b T) int) ([]T, error) {
	parts, err := c.Gather(0, codec.EncodeSlice(cd, nil, local))
	if err != nil {
		return nil, fmt.Errorf("bitonic: gather: %w", err)
	}
	p := c.Size()
	var scattered [][]byte
	if c.Rank() == 0 {
		var all []T
		counts := make([]int, p)
		for r, buf := range parts {
			recs, err := codec.DecodeSlice(cd, buf)
			if err != nil {
				return nil, fmt.Errorf("bitonic: decode from %d: %w", r, err)
			}
			counts[r] = len(recs)
			all = append(all, recs...)
		}
		psort.Sort(all, cmp)
		scattered = make([][]byte, p)
		off := 0
		for r := 0; r < p; r++ {
			scattered[r] = codec.EncodeSlice(cd, nil, all[off:off+counts[r]])
			off += counts[r]
		}
	}
	// Scatter: rank 0 sends each block; everyone else receives.
	if c.Rank() == 0 {
		for r := 1; r < p; r++ {
			if err := c.Send(r, exchangeTag, scattered[r]); err != nil {
				return nil, err
			}
		}
		return codec.DecodeSlice(cd, scattered[0])
	}
	buf, err := c.Recv(0, exchangeTag)
	if err != nil {
		return nil, err
	}
	return codec.DecodeSlice(cd, buf)
}

// DistributedSort picks the bitonic network when its preconditions hold
// and falls back to GatherSort otherwise. All ranks make the same
// decision because block sizes are exchanged first.
func DistributedSort[T any](c *comm.Comm, local []T, cd codec.Codec[T], cmp func(a, b T) int) ([]T, error) {
	p := c.Size()
	sizes, err := c.AllgatherInt64(int64(len(local)))
	if err != nil {
		return nil, err
	}
	// Decide from the gathered vector alone so every rank reaches the
	// same verdict.
	uniform := p&(p-1) == 0
	for _, s := range sizes {
		if s != sizes[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return Sort(c, local, cd, cmp)
	}
	return GatherSort(c, local, cd, cmp)
}
