package bitonic

import (
	"math/rand"
	"slices"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
)

var f64 = codec.Float64{}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func runDistributed(t *testing.T, p int, in [][]float64,
	sorter func(*comm.Comm, []float64) ([]float64, error)) [][]float64 {
	t.Helper()
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]float64, error) {
		return sorter(c, append([]float64(nil), in[c.Rank()]...))
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func verifyGlobal(t *testing.T, in, out [][]float64) {
	t.Helper()
	var flatIn, flatOut []float64
	for _, part := range in {
		flatIn = append(flatIn, part...)
	}
	for _, part := range out {
		flatOut = append(flatOut, part...)
	}
	if !slices.IsSorted(flatOut) {
		t.Fatal("not globally sorted")
	}
	slices.Sort(flatIn)
	if !slices.Equal(flatIn, flatOut) {
		t.Fatal("not a permutation")
	}
}

func makeIn(seed int64, p, perRank int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]float64, p)
	for r := range in {
		rows := make([]float64, perRank)
		for i := range rows {
			rows[i] = rng.Float64()
		}
		in[r] = rows
	}
	return in
}

func TestBitonicSortPowerOfTwo(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		in := makeIn(int64(p), p, 64)
		out := runDistributed(t, p, in, func(c *comm.Comm, local []float64) ([]float64, error) {
			return Sort(c, local, f64, cmpF)
		})
		verifyGlobal(t, in, out)
		// Block sizes must be preserved.
		for r, part := range out {
			if len(part) != 64 {
				t.Fatalf("p=%d rank %d block size %d", p, r, len(part))
			}
		}
	}
}

func TestBitonicSortDuplicateHeavy(t *testing.T) {
	p := 8
	in := make([][]float64, p)
	for r := range in {
		rows := make([]float64, 32)
		for i := range rows {
			rows[i] = float64(i % 3)
		}
		in[r] = rows
	}
	out := runDistributed(t, p, in, func(c *comm.Comm, local []float64) ([]float64, error) {
		return Sort(c, local, f64, cmpF)
	})
	verifyGlobal(t, in, out)
}

func TestBitonicSortRejectsNonPowerOfTwo(t *testing.T) {
	in := makeIn(3, 3, 16)
	topo := cluster.Topology{Nodes: 3, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		_, err := Sort(c, append([]float64(nil), in[c.Rank()]...), f64, cmpF)
		if err == nil {
			return commError("non-power-of-two accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type commError string

func (e commError) Error() string { return string(e) }

func TestBitonicSortRejectsRaggedBlocks(t *testing.T) {
	topo := cluster.Topology{Nodes: 2, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		local := make([]float64, 4+c.Rank()) // ragged
		_, err := Sort(c, local, f64, cmpF)
		if err == nil {
			return commError("ragged blocks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherSortArbitraryShapes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 6} {
		rng := rand.New(rand.NewSource(int64(p) * 11))
		in := make([][]float64, p)
		for r := range in {
			rows := make([]float64, rng.Intn(50))
			for i := range rows {
				rows[i] = rng.Float64()
			}
			in[r] = rows
		}
		out := runDistributed(t, p, in, func(c *comm.Comm, local []float64) ([]float64, error) {
			return GatherSort(c, local, f64, cmpF)
		})
		verifyGlobal(t, in, out)
		for r := range out {
			if len(out[r]) != len(in[r]) {
				t.Fatalf("p=%d rank %d: block size changed %d -> %d", p, r, len(in[r]), len(out[r]))
			}
		}
	}
}

func TestDistributedSortDispatch(t *testing.T) {
	// Uniform power-of-two: served by the bitonic network. Ragged:
	// served by gather-sort. Both must sort.
	in := makeIn(7, 4, 32)
	out := runDistributed(t, 4, in, func(c *comm.Comm, local []float64) ([]float64, error) {
		return DistributedSort(c, local, f64, cmpF)
	})
	verifyGlobal(t, in, out)

	in2 := [][]float64{{3, 1}, {2}, {5, 4, 0}, {}}
	out2 := runDistributed(t, 4, in2, func(c *comm.Comm, local []float64) ([]float64, error) {
		return DistributedSort(c, local, f64, cmpF)
	})
	verifyGlobal(t, in2, out2)
}

func BenchmarkBitonicSort(b *testing.B) {
	const p, perRank = 8, 2048
	in := makeIn(99, p, perRank)
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	b.SetBytes(int64(p * perRank * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := cluster.Run(topo, func(c *comm.Comm) error {
			_, err := Sort(c, append([]float64(nil), in[c.Rank()]...), f64, cmpF)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
