package telemetry

import "strconv"

// Collectors for the repository's subsystems live with the subsystems
// themselves (tcpcomm.Stats.Register, engine.Engine.RegisterMetrics,
// metrics.ExchangeStats.Register, checkpoint.RegisterMetrics, ...):
// the dependency must point subsystem -> telemetry, never the other
// way, or the low-level packages' tests — which launch clusters, which
// carry a registry — would cycle. This file keeps only the collectors
// with no subsystem dependency. The sds_* names registered across
// those call sites are the canonical inventory; docs/INTERNALS.md
// mirrors the list.

// FInt adapts an int64 loader (the shape of every atomic counter in
// this repository) to the float64 loader the registry wants.
func FInt(load func() int64) func() float64 {
	return func() float64 { return float64(load()) }
}

// MemGauge is the subset of memlimit.Gauge the memory collector reads.
type MemGauge interface {
	Used() int64
	Budget() int64
	Peak() int64
}

// RegisterMem exposes a memlimit gauge. Note Used/Peak only track when
// the gauge has a positive budget (unlimited gauges do not account).
func RegisterMem(r *Registry, g MemGauge) {
	r.GaugeFunc("sds_mem_used_bytes", "Bytes currently reserved on the admission gauge.", FInt(g.Used))
	r.GaugeFunc("sds_mem_budget_bytes", "The admission gauge's budget (0 = unlimited, untracked).", FInt(g.Budget))
	r.GaugeFunc("sds_mem_peak_bytes", "High-water mark of reservations on the admission gauge.", FInt(g.Peak))
}

// RegisterNodeInfo exposes this process's identity in the world as a
// constant info-style gauge.
func RegisterNodeInfo(r *Registry, rank, size, epoch int) {
	r.GaugeFunc("sds_node_info", "Constant 1, labelled with this process's rank, world size and recovery epoch.",
		func() float64 { return 1 },
		L("rank", strconv.Itoa(rank)), L("size", strconv.Itoa(size)), L("epoch", strconv.Itoa(epoch)))
}
