package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sds_test_frames_total", "Frames handled.", L("dir", "in"))
	c.Add(3)
	c.Inc()
	c.Add(-7) // ignored: counters are monotonic
	g := r.Gauge("sds_test_depth", "Queue depth.")
	g.Set(5)
	g.Add(-2)

	out := render(t, r)
	for _, want := range []string{
		"# HELP sds_test_frames_total Frames handled.\n",
		"# TYPE sds_test_frames_total counter\n",
		`sds_test_frames_total{dir="in"} 4` + "\n",
		"# TYPE sds_test_depth gauge\n",
		"sds_test_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Families render sorted by name: depth before frames_total.
	if strings.Index(out, "sds_test_depth") > strings.Index(out, "sds_test_frames_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestLabelSortingAndEscaping(t *testing.T) {
	r := NewRegistry()
	// Registered unsorted; must render with keys sorted.
	r.CounterFunc("sds_test_esc_total", `Backslash \ and`+"\nnewline.", func() float64 { return 1 },
		L("zeta", `quote " here`), L("alpha", "line\nbreak"), L("mid", `back\slash`))

	out := render(t, r)
	if want := `# HELP sds_test_esc_total Backslash \\ and\nnewline.` + "\n"; !strings.Contains(out, want) {
		t.Errorf("help not escaped, missing %q in:\n%s", want, out)
	}
	want := `sds_test_esc_total{alpha="line\nbreak",mid="back\\slash",zeta="quote \" here"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("series line wrong, missing %q in:\n%s", want, out)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sds_test_latency_seconds", "Latencies.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("Sum = %v, want 56.05", got)
	}

	out := render(t, r)
	wantLines := []string{
		"# TYPE sds_test_latency_seconds histogram",
		`sds_test_latency_seconds_bucket{le="0.1"} 1`,
		`sds_test_latency_seconds_bucket{le="1"} 3`,
		`sds_test_latency_seconds_bucket{le="10"} 4`,
		`sds_test_latency_seconds_bucket{le="+Inf"} 5`,
		"sds_test_latency_seconds_sum 56.05",
		"sds_test_latency_seconds_count 5",
	}
	pos := -1
	for _, want := range wantLines {
		i := strings.Index(out, want+"\n")
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
		if i < pos {
			t.Fatalf("%q out of order (buckets must be cumulative, +Inf last):\n%s", want, out)
		}
		pos = i
	}
}

func TestBoundaryObservationsAreInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sds_test_edge_seconds", "", []float64{1, 2})
	h.Observe(1) // le="1" is an inclusive upper bound
	h.Observe(2)
	out := render(t, r)
	for _, want := range []string{
		`sds_test_edge_seconds_bucket{le="1"} 1`,
		`sds_test_edge_seconds_bucket{le="2"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("sds_test_total", "", L("a", "1"))
	mustPanic("duplicate series", func() { r.Counter("sds_test_total", "", L("a", "1")) })
	mustPanic("kind mismatch", func() { r.Gauge("sds_test_total", "", L("a", "2")) })
	mustPanic("invalid name", func() { r.Counter("0bad-name", "") })
	// Same family, distinct labels: fine.
	r.Counter("sds_test_total", "", L("a", "2"))
}

func TestSnapshotRoundTripsThroughJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("sds_test_a_total", "", L("rank", "1")).Add(7)
	h := r.Histogram("sds_test_b_seconds", "", []float64{1})
	h.Observe(0.5)

	buf, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back []Sample
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1+4 { // counter + (2 buckets, sum, count)
		t.Fatalf("got %d samples: %+v", len(back), back)
	}
	if back[0].Name != "sds_test_a_total" || back[0].Value != 7 || back[0].Labels[0] != L("rank", "1") {
		t.Errorf("counter sample mangled: %+v", back[0])
	}
	var infSeen bool
	for _, s := range back[1:] {
		if s.Suffix == "_bucket" && s.Labels[len(s.Labels)-1].Value == "+Inf" {
			infSeen = true
			if s.Value != 1 {
				t.Errorf("+Inf bucket = %v, want 1", s.Value)
			}
		}
	}
	if !infSeen {
		t.Errorf("no +Inf bucket in %+v", back)
	}
}

func TestSumSamplesMergesRanks(t *testing.T) {
	rank := func(n float64) []Sample {
		return []Sample{
			{Name: "sds_tcp_frames_sent_total", Kind: KindCounter, Value: n},
			{Name: "sds_job_seconds", Kind: KindHistogram, Suffix: "_bucket", Labels: []Label{L("le", "1")}, Value: n},
			{Name: "sds_job_seconds", Kind: KindHistogram, Suffix: "_count", Value: 1},
			{Name: "sds_node_info", Kind: KindGauge, Labels: []Label{L("rank", formatFloat(n))}, Value: 1},
		}
	}
	got := sumSamples(append(rank(2), rank(3)...))

	find := func(name, suffix string) *Sample {
		for i := range got {
			if got[i].Name == name && got[i].Suffix == suffix {
				return &got[i]
			}
		}
		t.Fatalf("no %s%s in %+v", name, suffix, got)
		return nil
	}
	if s := find("sds_fabric_tcp_frames_sent_total", ""); s.Value != 5 {
		t.Errorf("summed counter = %v, want 5", s.Value)
	}
	if s := find("sds_fabric_job_seconds", "_bucket"); s.Value != 5 {
		t.Errorf("summed bucket = %v, want 5", s.Value)
	}
	if s := find("sds_fabric_job_seconds", "_count"); s.Value != 2 {
		t.Errorf("summed count = %v, want 2", s.Value)
	}
	// Distinctly-labelled series stay distinct.
	var infoSeries int
	for _, s := range got {
		if s.Name == "sds_fabric_node_info" {
			infoSeries++
		}
	}
	if infoSeries != 2 {
		t.Errorf("node_info series = %d, want 2 (distinct labels must not merge)", infoSeries)
	}
}

func TestFormatFloatEdges(t *testing.T) {
	cases := map[float64]string{
		0:    "0",
		2.5:  "2.5",
		-1:   "-1",
		1e21: "1e+21",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
