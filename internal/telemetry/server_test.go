package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sds_test_jobs_total", "Jobs.").Add(2)
	srv, err := NewServer("127.0.0.1:0", reg, ServerOptions{
		Health: func() Health {
			return Health{Status: "ok", Rank: 0, Size: 4, JobsDone: 3, GatherAgeSeconds: -1}
		},
		Trace: func() []json.RawMessage {
			return []json.RawMessage{
				json.RawMessage(`{"kind":"sort.start"}`),
				json.RawMessage(`{"kind":"sort.done"}`),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Over the real listener once, to cover the wiring end to end.
	res, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "sds_test_jobs_total 2\n") {
		t.Errorf("scrape missing counter:\n%s", body)
	}

	h := srv.Handler()
	// The scrape itself is counted.
	if _, body := get(t, h, "/metrics"); !strings.Contains(body, "sds_telemetry_scrapes_total 2\n") {
		t.Errorf("second scrape should report 2 scrapes:\n%s", body)
	}

	res2, body2 := get(t, h, "/healthz")
	if res2.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", res2.StatusCode)
	}
	var hlt Health
	if err := json.Unmarshal([]byte(body2), &hlt); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body2)
	}
	if hlt.Size != 4 || hlt.JobsDone != 3 || hlt.GatherAgeSeconds != -1 {
		t.Errorf("healthz payload: %+v", hlt)
	}

	if res3, body3 := get(t, h, "/debug/trace"); res3.StatusCode != http.StatusOK ||
		body3 != "{\"kind\":\"sort.start\"}\n{\"kind\":\"sort.done\"}\n" {
		t.Errorf("/debug/trace = %d:\n%q", res3.StatusCode, body3)
	}

	if res4, _ := get(t, h, "/debug/pprof/"); res4.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", res4.StatusCode)
	}
}

// TestHealthzShrunkenFabricStaysOK: degraded mode is an operating
// state, not an outage — a fabric that shrank but still serves reports
// degraded:true with its current world size under HTTP 200.
func TestHealthzShrunkenFabricStaysOK(t *testing.T) {
	reg := NewRegistry()
	srv, err := NewServer("127.0.0.1:0", reg, ServerOptions{
		Health: func() Health {
			return Health{Status: "ok", Size: 4, Degraded: true, WorldSize: 3}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, body := get(t, srv.Handler(), "/healthz")
	if res.StatusCode != http.StatusOK {
		t.Errorf("shrunken-but-serving /healthz = %d, want 200", res.StatusCode)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if !h.Degraded || h.WorldSize != 3 {
		t.Errorf("healthz payload: %+v, want degraded with world_size 3", h)
	}
}

func TestHealthzDegraded(t *testing.T) {
	reg := NewRegistry()
	srv, err := NewServer("127.0.0.1:0", reg, ServerOptions{
		Health: func() Health { return Health{Status: "degraded", Detail: "rank 2 lost"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, body := get(t, srv.Handler(), "/healthz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded /healthz = %d, want 503", res.StatusCode)
	}
	if !strings.Contains(body, "rank 2 lost") {
		t.Errorf("detail missing:\n%s", body)
	}
}

func TestTraceNotConfigured(t *testing.T) {
	reg := NewRegistry()
	srv, err := NewServer("127.0.0.1:0", reg, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if res, _ := get(t, srv.Handler(), "/debug/trace"); res.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/trace without a sink = %d, want 404", res.StatusCode)
	}
}
