package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"sdssort/internal/comm"
)

// Fabric-wide aggregation: the coordinator's /metrics additionally
// serves cluster totals summed from every rank's registry snapshot.
//
// The protocol is deliberately not a lockstep collective — the other
// ranks are usually busy inside a sort job and must not be required to
// rendezvous with a scrape. Instead each non-coordinator rank runs a
// lightweight responder goroutine parked on a dedicated communicator
// ("<world>/telemetry", context-isolated from job traffic); the
// coordinator sends an empty request and sums the JSON-encoded
// snapshots it gets back. Scrapes never block on the network: they
// serve the cached totals and, when the cache is older than MaxAge,
// kick a single-flight background refresh. Staleness is observable as
// sds_fabric_gather_age_seconds.

const (
	tagTelemetryReq = 11
	tagTelemetryRep = 12
)

// TelemetryCommName is the communicator name the aggregation protocol
// attaches under for a given world.
func TelemetryCommName(world string) string { return world + "/telemetry" }

// StartResponder launches the aggregation responder for this rank: a
// goroutine that answers each coordinator request with a snapshot of
// reg. It exits when the transport closes (its Recv fails). Call on
// every rank except the aggregating coordinator.
func StartResponder(tr comm.Transport, world string, reg *Registry) {
	c := comm.Attach(tr, TelemetryCommName(world))
	go func() {
		for {
			if _, err := c.Recv(0, tagTelemetryReq); err != nil {
				return
			}
			buf, err := json.Marshal(reg.Snapshot())
			if err != nil {
				buf = []byte("[]")
			}
			if err := c.Send(0, tagTelemetryRep, buf); err != nil {
				return
			}
		}
	}()
}

// lostThreshold is how many consecutive failed gathers a rank gets
// before the aggregator stops asking it — the point where "slow or
// unlucky" is treated as "gone" for scrape purposes.
const lostThreshold = 3

// Aggregator gathers and caches fabric-wide metric totals on the
// coordinator (rank 0 of the world).
//
// A rank that stops answering does not poison the aggregation forever:
// its first few failures keep the cache stale (and count as gather
// errors), but after lostThreshold consecutive failures — or an
// explicit MarkLost from a supervisor that knows the rank died — the
// rank is excluded and subsequent gathers succeed with partial totals
// from the ranks that remain. The shrunken coverage is visible as
// sds_fabric_world_size and sds_fabric_degraded.
type Aggregator struct {
	c     *comm.Comm
	local *Registry
	size  int
	// MaxAge bounds cache staleness: a scrape arriving later than this
	// after the previous gather triggers a background refresh.
	maxAge time.Duration
	// recvTimeout bounds each per-rank reply wait, so a dead rank
	// degrades a gather to an error instead of wedging it forever.
	recvTimeout time.Duration

	mu         sync.Mutex
	cached     []Sample
	lastGather time.Time
	inflight   bool
	gathers    int64
	gatherErrs int64
	failures   map[int]int  // consecutive failed gathers per rank
	excluded   map[int]bool // ranks no longer gathered (lost or marked)
}

// NewAggregator builds the coordinator-side aggregator. maxAge <= 0
// defaults to 2s.
func NewAggregator(tr comm.Transport, world string, local *Registry, maxAge time.Duration) *Aggregator {
	if maxAge <= 0 {
		maxAge = 2 * time.Second
	}
	return &Aggregator{
		c:           comm.Attach(tr, TelemetryCommName(world)),
		local:       local,
		size:        tr.Size(),
		maxAge:      maxAge,
		recvTimeout: time.Second,
		failures:    make(map[int]int),
		excluded:    make(map[int]bool),
	}
}

// SetRecvTimeout overrides the per-rank reply timeout (default 1s).
func (a *Aggregator) SetRecvTimeout(d time.Duration) {
	if d > 0 {
		a.mu.Lock()
		a.recvTimeout = d
		a.mu.Unlock()
	}
}

// MarkLost excludes a rank from all future gathers — the hook a
// supervisor calls when it knows a rank died (e.g. after a degraded
// shrink), so the aggregator does not have to discover the loss by
// timing out on it repeatedly.
func (a *Aggregator) MarkLost(rank int) {
	if rank <= 0 || rank >= a.size {
		return // rank 0 is this aggregator; out-of-range is a no-op
	}
	a.mu.Lock()
	a.excluded[rank] = true
	a.mu.Unlock()
}

// Lost returns the ranks currently excluded from gathering.
func (a *Aggregator) Lost() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, 0, len(a.excluded))
	for r := range a.excluded {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// RefreshNow gathers synchronously from every rank and replaces the
// cache. Used by tests and by callers that want fresh totals at a
// known point; the scrape path never calls it.
func (a *Aggregator) RefreshNow() error {
	a.mu.Lock()
	if a.inflight {
		a.mu.Unlock()
		return fmt.Errorf("telemetry: gather already in flight")
	}
	a.inflight = true
	a.mu.Unlock()
	err := a.gather()
	a.mu.Lock()
	a.inflight = false
	a.mu.Unlock()
	return err
}

// gather performs one fabric-wide collection and installs the result.
// Excluded ranks are skipped, so a fabric that shrank keeps gathering
// cleanly from the survivors; a failing rank keeps the cache stale
// until it either answers again or crosses lostThreshold.
func (a *Aggregator) gather() error {
	a.mu.Lock()
	timeout := a.recvTimeout
	skip := make(map[int]bool, len(a.excluded))
	for r := range a.excluded {
		skip[r] = true
	}
	a.mu.Unlock()

	samples := a.local.Snapshot()
	var firstErr error
	for r := 1; r < a.size; r++ {
		if skip[r] {
			continue
		}
		remote, err := a.gatherRank(r, timeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			a.rankFailed(r)
			continue
		}
		a.rankAnswered(r)
		samples = append(samples, remote...)
	}
	summed := sumSamples(samples)
	a.mu.Lock()
	a.gathers++
	if firstErr != nil {
		a.gatherErrs++
	} else {
		a.cached = summed
		a.lastGather = time.Now()
	}
	a.mu.Unlock()
	return firstErr
}

// gatherRank collects one rank's snapshot with a bounded reply wait. A
// timeout abandons the receive on its goroutine; if the rank later
// replies, that stale reply is consumed by the abandoned receiver (the
// next fresh receive pairs with the next request), and a genuinely dead
// rank costs at most lostThreshold parked goroutines before exclusion.
func (a *Aggregator) gatherRank(r int, timeout time.Duration) ([]Sample, error) {
	if err := a.c.Send(r, tagTelemetryReq, nil); err != nil {
		return nil, fmt.Errorf("telemetry: request rank %d: %w", r, err)
	}
	type reply struct {
		buf []byte
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		buf, err := a.c.Recv(r, tagTelemetryRep)
		ch <- reply{buf, err}
	}()
	var buf []byte
	select {
	case rep := <-ch:
		if rep.err != nil {
			return nil, fmt.Errorf("telemetry: reply rank %d: %w", r, rep.err)
		}
		buf = rep.buf
	case <-time.After(timeout):
		return nil, fmt.Errorf("telemetry: rank %d did not reply within %v", r, timeout)
	}
	var remote []Sample
	if err := json.Unmarshal(buf, &remote); err != nil {
		return nil, fmt.Errorf("telemetry: decode rank %d: %w", r, err)
	}
	return remote, nil
}

// rankFailed bumps a rank's consecutive-failure streak and excludes it
// at the threshold.
func (a *Aggregator) rankFailed(r int) {
	a.mu.Lock()
	a.failures[r]++
	if a.failures[r] >= lostThreshold {
		a.excluded[r] = true
	}
	a.mu.Unlock()
}

func (a *Aggregator) rankAnswered(r int) {
	a.mu.Lock()
	delete(a.failures, r)
	a.mu.Unlock()
}

// sumSamples merges per-rank samples into fabric totals keyed by
// (name, suffix, labels), renaming the family sds_* -> sds_fabric_*.
// Cumulative histogram buckets sum correctly because every rank shares
// the same bound set.
func sumSamples(samples []Sample) []Sample {
	type key struct{ name, suffix, sig string }
	totals := map[key]*Sample{}
	var order []key
	for _, s := range samples {
		k := key{fabricName(s.Name), s.Suffix, signature(s.Labels)}
		if t, ok := totals[k]; ok {
			t.Value += s.Value
			continue
		}
		c := s
		c.Name = k.name
		c.Labels = append([]Label(nil), s.Labels...)
		totals[k] = &c
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		if order[i].suffix != order[j].suffix {
			return order[i].suffix < order[j].suffix
		}
		return order[i].sig < order[j].sig
	})
	out := make([]Sample, 0, len(order))
	for _, k := range order {
		out = append(out, *totals[k])
	}
	return out
}

func fabricName(name string) string {
	if rest, ok := strings.CutPrefix(name, "sds_"); ok {
		return "sds_fabric_" + rest
	}
	return "sds_fabric_" + name
}

// GatherAge returns the age of the cached totals, or -1 if no gather
// has succeeded yet.
func (a *Aggregator) GatherAge() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastGather.IsZero() {
		return -1
	}
	return time.Since(a.lastGather)
}

// Render writes the cached fabric totals plus the aggregation's own
// meta-series, then kicks a background refresh if the cache is stale.
// It never blocks on the network, so a dead rank degrades a scrape to
// stale totals instead of hanging it.
func (a *Aggregator) Render(w io.Writer) {
	a.mu.Lock()
	cached := a.cached
	age := -1.0
	if !a.lastGather.IsZero() {
		age = time.Since(a.lastGather).Seconds()
	}
	stale := a.lastGather.IsZero() || time.Since(a.lastGather) > a.maxAge
	kick := stale && !a.inflight
	if kick {
		a.inflight = true
	}
	gathers, gatherErrs := a.gathers, a.gatherErrs
	lost := len(a.excluded)
	a.mu.Unlock()

	if kick {
		go func() {
			a.gather() //nolint:errcheck // error is counted in gatherErrs
			a.mu.Lock()
			a.inflight = false
			a.mu.Unlock()
		}()
	}

	degraded := 0.0
	if lost > 0 {
		degraded = 1.0
	}
	meta := []Sample{
		{Name: "sds_fabric_ranks", Kind: KindGauge, Value: float64(a.size)},
		{Name: "sds_fabric_world_size", Kind: KindGauge, Value: float64(a.size - lost)},
		{Name: "sds_fabric_degraded", Kind: KindGauge, Value: degraded},
		{Name: "sds_fabric_gather_age_seconds", Kind: KindGauge, Value: age},
		{Name: "sds_fabric_gathers_total", Kind: KindCounter, Value: float64(gathers)},
		{Name: "sds_fabric_gather_errors_total", Kind: KindCounter, Value: float64(gatherErrs)},
	}
	writeSamples(w, append(meta, cached...), fabricHelp) //nolint:errcheck // client may vanish mid-scrape
}

func fabricHelp(name string) string {
	switch name {
	case "sds_fabric_ranks":
		return "Number of ranks in the aggregated world."
	case "sds_fabric_world_size":
		return "Ranks currently contributing to fabric totals (launch size minus lost ranks)."
	case "sds_fabric_degraded":
		return "1 when the fabric has lost ranks and is serving partial totals, else 0."
	case "sds_fabric_gather_age_seconds":
		return "Age of the cached fabric-wide gather (-1 before the first one)."
	case "sds_fabric_gathers_total":
		return "Fabric-wide metric gathers attempted."
	case "sds_fabric_gather_errors_total":
		return "Fabric-wide metric gathers that failed (totals kept stale)."
	}
	if rest, ok := strings.CutPrefix(name, "sds_fabric_"); ok {
		return "Fabric-wide sum of sds_" + rest + " across all ranks."
	}
	return ""
}
