package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"sdssort/internal/comm"
)

// Fabric-wide aggregation: the coordinator's /metrics additionally
// serves cluster totals summed from every rank's registry snapshot.
//
// The protocol is deliberately not a lockstep collective — the other
// ranks are usually busy inside a sort job and must not be required to
// rendezvous with a scrape. Instead each non-coordinator rank runs a
// lightweight responder goroutine parked on a dedicated communicator
// ("<world>/telemetry", context-isolated from job traffic); the
// coordinator sends an empty request and sums the JSON-encoded
// snapshots it gets back. Scrapes never block on the network: they
// serve the cached totals and, when the cache is older than MaxAge,
// kick a single-flight background refresh. Staleness is observable as
// sds_fabric_gather_age_seconds.

const (
	tagTelemetryReq = 11
	tagTelemetryRep = 12
)

// TelemetryCommName is the communicator name the aggregation protocol
// attaches under for a given world.
func TelemetryCommName(world string) string { return world + "/telemetry" }

// StartResponder launches the aggregation responder for this rank: a
// goroutine that answers each coordinator request with a snapshot of
// reg. It exits when the transport closes (its Recv fails). Call on
// every rank except the aggregating coordinator.
func StartResponder(tr comm.Transport, world string, reg *Registry) {
	c := comm.Attach(tr, TelemetryCommName(world))
	go func() {
		for {
			if _, err := c.Recv(0, tagTelemetryReq); err != nil {
				return
			}
			buf, err := json.Marshal(reg.Snapshot())
			if err != nil {
				buf = []byte("[]")
			}
			if err := c.Send(0, tagTelemetryRep, buf); err != nil {
				return
			}
		}
	}()
}

// Aggregator gathers and caches fabric-wide metric totals on the
// coordinator (rank 0 of the world).
type Aggregator struct {
	c     *comm.Comm
	local *Registry
	size  int
	// MaxAge bounds cache staleness: a scrape arriving later than this
	// after the previous gather triggers a background refresh.
	maxAge time.Duration

	mu         sync.Mutex
	cached     []Sample
	lastGather time.Time
	inflight   bool
	gathers    int64
	gatherErrs int64
}

// NewAggregator builds the coordinator-side aggregator. maxAge <= 0
// defaults to 2s.
func NewAggregator(tr comm.Transport, world string, local *Registry, maxAge time.Duration) *Aggregator {
	if maxAge <= 0 {
		maxAge = 2 * time.Second
	}
	return &Aggregator{
		c:      comm.Attach(tr, TelemetryCommName(world)),
		local:  local,
		size:   tr.Size(),
		maxAge: maxAge,
	}
}

// RefreshNow gathers synchronously from every rank and replaces the
// cache. Used by tests and by callers that want fresh totals at a
// known point; the scrape path never calls it.
func (a *Aggregator) RefreshNow() error {
	a.mu.Lock()
	if a.inflight {
		a.mu.Unlock()
		return fmt.Errorf("telemetry: gather already in flight")
	}
	a.inflight = true
	a.mu.Unlock()
	err := a.gather()
	a.mu.Lock()
	a.inflight = false
	a.mu.Unlock()
	return err
}

// gather performs one fabric-wide collection and installs the result.
func (a *Aggregator) gather() error {
	samples := a.local.Snapshot()
	var firstErr error
	for r := 1; r < a.size; r++ {
		if err := a.c.Send(r, tagTelemetryReq, nil); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("telemetry: request rank %d: %w", r, err)
			}
			continue
		}
		buf, err := a.c.Recv(r, tagTelemetryRep)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("telemetry: reply rank %d: %w", r, err)
			}
			continue
		}
		var remote []Sample
		if err := json.Unmarshal(buf, &remote); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("telemetry: decode rank %d: %w", r, err)
			}
			continue
		}
		samples = append(samples, remote...)
	}
	summed := sumSamples(samples)
	a.mu.Lock()
	a.gathers++
	if firstErr != nil {
		a.gatherErrs++
	} else {
		a.cached = summed
		a.lastGather = time.Now()
	}
	a.mu.Unlock()
	return firstErr
}

// sumSamples merges per-rank samples into fabric totals keyed by
// (name, suffix, labels), renaming the family sds_* -> sds_fabric_*.
// Cumulative histogram buckets sum correctly because every rank shares
// the same bound set.
func sumSamples(samples []Sample) []Sample {
	type key struct{ name, suffix, sig string }
	totals := map[key]*Sample{}
	var order []key
	for _, s := range samples {
		k := key{fabricName(s.Name), s.Suffix, signature(s.Labels)}
		if t, ok := totals[k]; ok {
			t.Value += s.Value
			continue
		}
		c := s
		c.Name = k.name
		c.Labels = append([]Label(nil), s.Labels...)
		totals[k] = &c
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		if order[i].suffix != order[j].suffix {
			return order[i].suffix < order[j].suffix
		}
		return order[i].sig < order[j].sig
	})
	out := make([]Sample, 0, len(order))
	for _, k := range order {
		out = append(out, *totals[k])
	}
	return out
}

func fabricName(name string) string {
	if rest, ok := strings.CutPrefix(name, "sds_"); ok {
		return "sds_fabric_" + rest
	}
	return "sds_fabric_" + name
}

// GatherAge returns the age of the cached totals, or -1 if no gather
// has succeeded yet.
func (a *Aggregator) GatherAge() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastGather.IsZero() {
		return -1
	}
	return time.Since(a.lastGather)
}

// Render writes the cached fabric totals plus the aggregation's own
// meta-series, then kicks a background refresh if the cache is stale.
// It never blocks on the network, so a dead rank degrades a scrape to
// stale totals instead of hanging it.
func (a *Aggregator) Render(w io.Writer) {
	a.mu.Lock()
	cached := a.cached
	age := -1.0
	if !a.lastGather.IsZero() {
		age = time.Since(a.lastGather).Seconds()
	}
	stale := a.lastGather.IsZero() || time.Since(a.lastGather) > a.maxAge
	kick := stale && !a.inflight
	if kick {
		a.inflight = true
	}
	gathers, gatherErrs := a.gathers, a.gatherErrs
	a.mu.Unlock()

	if kick {
		go func() {
			a.gather() //nolint:errcheck // error is counted in gatherErrs
			a.mu.Lock()
			a.inflight = false
			a.mu.Unlock()
		}()
	}

	meta := []Sample{
		{Name: "sds_fabric_ranks", Kind: KindGauge, Value: float64(a.size)},
		{Name: "sds_fabric_gather_age_seconds", Kind: KindGauge, Value: age},
		{Name: "sds_fabric_gathers_total", Kind: KindCounter, Value: float64(gathers)},
		{Name: "sds_fabric_gather_errors_total", Kind: KindCounter, Value: float64(gatherErrs)},
	}
	writeSamples(w, append(meta, cached...), fabricHelp) //nolint:errcheck // client may vanish mid-scrape
}

func fabricHelp(name string) string {
	switch name {
	case "sds_fabric_ranks":
		return "Number of ranks in the aggregated world."
	case "sds_fabric_gather_age_seconds":
		return "Age of the cached fabric-wide gather (-1 before the first one)."
	case "sds_fabric_gathers_total":
		return "Fabric-wide metric gathers attempted."
	case "sds_fabric_gather_errors_total":
		return "Fabric-wide metric gathers that failed (totals kept stale)."
	}
	if rest, ok := strings.CutPrefix(name, "sds_fabric_"); ok {
		return "Fabric-wide sum of sds_" + rest + " across all ranks."
	}
	return ""
}
