package telemetry

import (
	"strings"
	"testing"
	"time"

	"sdssort/internal/comm"
)

// buildWorld sets up a 3-rank in-proc fabric where every rank carries a
// registry with rank-distinct counter values, responders parked on
// ranks 1 and 2, and the aggregator on rank 0.
func buildWorld(t *testing.T) *Aggregator {
	t.Helper()
	world, err := comm.NewWorld(3, comm.BlockNodes(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { world.Close() })

	regs := make([]*Registry, 3)
	for r := 0; r < 3; r++ {
		regs[r] = NewRegistry()
		regs[r].Counter("sds_test_frames_total", "Frames.").Add(int64(10 + r))
		h := regs[r].Histogram("sds_test_job_seconds", "Jobs.", []float64{1, 10})
		h.Observe(0.5)
		h.Observe(float64(r) * 5)
	}
	StartResponder(world.Transport(1), "world", regs[1])
	StartResponder(world.Transport(2), "world", regs[2])
	return NewAggregator(world.Transport(0), "world", regs[0], time.Hour)
}

func TestAggregatorSumsFabric(t *testing.T) {
	agg := buildWorld(t)
	if age := agg.GatherAge(); age >= 0 {
		t.Fatalf("GatherAge before first gather = %v, want negative", age)
	}
	if err := agg.RefreshNow(); err != nil {
		t.Fatal(err)
	}
	if age := agg.GatherAge(); age < 0 {
		t.Fatalf("GatherAge after gather = %v", age)
	}

	var b strings.Builder
	agg.Render(&b)
	out := b.String()
	for _, want := range []string{
		"sds_fabric_ranks 3\n",
		"sds_fabric_gathers_total 1\n",
		"sds_fabric_gather_errors_total 0\n",
		"# TYPE sds_fabric_test_frames_total counter\n",
		"sds_fabric_test_frames_total 33\n", // 10+11+12
		`sds_fabric_test_job_seconds_bucket{le="1"} 4`, // rank 0 contributes {0.5, 0}, ranks 1 and 2 just {0.5}
		"sds_fabric_test_job_seconds_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderKicksBackgroundRefresh(t *testing.T) {
	world, err := comm.NewWorld(2, comm.BlockNodes(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { world.Close() })
	remote := NewRegistry()
	remote.Counter("sds_test_total", "").Add(5)
	StartResponder(world.Transport(1), "world", remote)

	local := NewRegistry()
	// Tiny maxAge so every Render finds the cache stale.
	agg := NewAggregator(world.Transport(0), "world", local, time.Nanosecond)

	// First render: empty cache, kicks a refresh in the background.
	var b strings.Builder
	agg.Render(&b)
	if !strings.Contains(b.String(), "sds_fabric_gather_age_seconds -1\n") {
		t.Errorf("first render should report no gather yet:\n%s", b.String())
	}
	// The kicked gather lands shortly; totals then appear on a scrape.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var b strings.Builder
		agg.Render(&b)
		if strings.Contains(b.String(), "sds_fabric_test_total 5\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background gather never landed:\n%s", b.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAggregatorExcludesDeadRank: a rank that stops answering costs a
// few failed (stale-cache) gathers, then is excluded so the fabric
// serves partial totals from the survivors instead of logging gather
// errors forever.
func TestAggregatorExcludesDeadRank(t *testing.T) {
	world, err := comm.NewWorld(3, comm.BlockNodes(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { world.Close() })
	regs := make([]*Registry, 3)
	for r := 0; r < 3; r++ {
		regs[r] = NewRegistry()
		regs[r].Counter("sds_test_frames_total", "Frames.").Add(int64(10 + r))
	}
	// Rank 2 has no responder — it is dead from the aggregator's view.
	StartResponder(world.Transport(1), "world", regs[1])
	agg := NewAggregator(world.Transport(0), "world", regs[0], time.Hour)
	agg.SetRecvTimeout(30 * time.Millisecond)

	// The first lostThreshold gathers fail (reply timeout) and keep the
	// cache stale; the streak then excludes rank 2.
	for i := 0; i < lostThreshold; i++ {
		if err := agg.RefreshNow(); err == nil {
			t.Fatalf("gather %d succeeded with rank 2 silent", i)
		}
	}
	if lost := agg.Lost(); len(lost) != 1 || lost[0] != 2 {
		t.Fatalf("Lost() = %v after %d failures, want [2]", agg.Lost(), lostThreshold)
	}
	// With rank 2 excluded the gather succeeds on partial totals.
	if err := agg.RefreshNow(); err != nil {
		t.Fatalf("gather after exclusion: %v", err)
	}
	var b strings.Builder
	agg.Render(&b)
	out := b.String()
	for _, want := range []string{
		"sds_fabric_world_size 2\n",
		"sds_fabric_degraded 1\n",
		"sds_fabric_test_frames_total 21\n", // 10+11, rank 2 missing
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestMarkLostSkipsRankImmediately: a supervisor that knows a rank died
// short-circuits the failure-streak discovery.
func TestMarkLostSkipsRankImmediately(t *testing.T) {
	agg := buildWorld(t)
	agg.MarkLost(2)
	agg.MarkLost(0)  // the aggregator itself: no-op
	agg.MarkLost(99) // out of range: no-op
	if err := agg.RefreshNow(); err != nil {
		t.Fatal(err)
	}
	if lost := agg.Lost(); len(lost) != 1 || lost[0] != 2 {
		t.Fatalf("Lost() = %v, want [2]", lost)
	}
	var b strings.Builder
	agg.Render(&b)
	out := b.String()
	if !strings.Contains(out, "sds_fabric_test_frames_total 21\n") { // 10+11
		t.Errorf("marked rank still counted:\n%s", out)
	}
	if !strings.Contains(out, "sds_fabric_world_size 2\n") {
		t.Errorf("world size ignores the marked rank:\n%s", out)
	}
}

func TestGatherErrorKeepsStaleCache(t *testing.T) {
	world, err := comm.NewWorld(2, comm.BlockNodes(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRegistry()
	remote.Counter("sds_test_total", "").Add(7)
	StartResponder(world.Transport(1), "world", remote)
	local := NewRegistry()
	agg := NewAggregator(world.Transport(0), "world", local, time.Hour)
	if err := agg.RefreshNow(); err != nil {
		t.Fatal(err)
	}
	world.Close() // rank 1 gone: the next gather must fail

	if err := agg.RefreshNow(); err == nil {
		t.Fatal("gather against a closed fabric succeeded")
	}
	var b strings.Builder
	agg.Render(&b)
	out := b.String()
	if !strings.Contains(out, "sds_fabric_test_total 7\n") {
		t.Errorf("stale totals dropped after failed gather:\n%s", out)
	}
	if !strings.Contains(out, "sds_fabric_gather_errors_total 1\n") {
		t.Errorf("gather error not counted:\n%s", out)
	}
}
