package telemetry

import (
	"strings"
	"testing"
	"time"

	"sdssort/internal/comm"
)

// buildWorld sets up a 3-rank in-proc fabric where every rank carries a
// registry with rank-distinct counter values, responders parked on
// ranks 1 and 2, and the aggregator on rank 0.
func buildWorld(t *testing.T) *Aggregator {
	t.Helper()
	world, err := comm.NewWorld(3, comm.BlockNodes(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { world.Close() })

	regs := make([]*Registry, 3)
	for r := 0; r < 3; r++ {
		regs[r] = NewRegistry()
		regs[r].Counter("sds_test_frames_total", "Frames.").Add(int64(10 + r))
		h := regs[r].Histogram("sds_test_job_seconds", "Jobs.", []float64{1, 10})
		h.Observe(0.5)
		h.Observe(float64(r) * 5)
	}
	StartResponder(world.Transport(1), "world", regs[1])
	StartResponder(world.Transport(2), "world", regs[2])
	return NewAggregator(world.Transport(0), "world", regs[0], time.Hour)
}

func TestAggregatorSumsFabric(t *testing.T) {
	agg := buildWorld(t)
	if age := agg.GatherAge(); age >= 0 {
		t.Fatalf("GatherAge before first gather = %v, want negative", age)
	}
	if err := agg.RefreshNow(); err != nil {
		t.Fatal(err)
	}
	if age := agg.GatherAge(); age < 0 {
		t.Fatalf("GatherAge after gather = %v", age)
	}

	var b strings.Builder
	agg.Render(&b)
	out := b.String()
	for _, want := range []string{
		"sds_fabric_ranks 3\n",
		"sds_fabric_gathers_total 1\n",
		"sds_fabric_gather_errors_total 0\n",
		"# TYPE sds_fabric_test_frames_total counter\n",
		"sds_fabric_test_frames_total 33\n", // 10+11+12
		`sds_fabric_test_job_seconds_bucket{le="1"} 4`, // rank 0 contributes {0.5, 0}, ranks 1 and 2 just {0.5}
		"sds_fabric_test_job_seconds_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderKicksBackgroundRefresh(t *testing.T) {
	world, err := comm.NewWorld(2, comm.BlockNodes(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { world.Close() })
	remote := NewRegistry()
	remote.Counter("sds_test_total", "").Add(5)
	StartResponder(world.Transport(1), "world", remote)

	local := NewRegistry()
	// Tiny maxAge so every Render finds the cache stale.
	agg := NewAggregator(world.Transport(0), "world", local, time.Nanosecond)

	// First render: empty cache, kicks a refresh in the background.
	var b strings.Builder
	agg.Render(&b)
	if !strings.Contains(b.String(), "sds_fabric_gather_age_seconds -1\n") {
		t.Errorf("first render should report no gather yet:\n%s", b.String())
	}
	// The kicked gather lands shortly; totals then appear on a scrape.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var b strings.Builder
		agg.Render(&b)
		if strings.Contains(b.String(), "sds_fabric_test_total 5\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background gather never landed:\n%s", b.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatherErrorKeepsStaleCache(t *testing.T) {
	world, err := comm.NewWorld(2, comm.BlockNodes(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRegistry()
	remote.Counter("sds_test_total", "").Add(7)
	StartResponder(world.Transport(1), "world", remote)
	local := NewRegistry()
	agg := NewAggregator(world.Transport(0), "world", local, time.Hour)
	if err := agg.RefreshNow(); err != nil {
		t.Fatal(err)
	}
	world.Close() // rank 1 gone: the next gather must fail

	if err := agg.RefreshNow(); err == nil {
		t.Fatal("gather against a closed fabric succeeded")
	}
	var b strings.Builder
	agg.Render(&b)
	out := b.String()
	if !strings.Contains(out, "sds_fabric_test_total 7\n") {
		t.Errorf("stale totals dropped after failed gather:\n%s", out)
	}
	if !strings.Contains(out, "sds_fabric_gather_errors_total 1\n") {
		t.Errorf("gather error not counted:\n%s", out)
	}
}
