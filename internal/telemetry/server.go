package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz payload: a point-in-time view of the fabric
// from the serving rank. Fields the caller does not know stay zero.
type Health struct {
	// Status is "ok" or "degraded"; the HTTP code follows it.
	Status string `json:"status"`
	// Rank and Size locate this process in the world.
	Rank int `json:"rank"`
	Size int `json:"size"`
	// Epoch is the recovery epoch the fabric was booted with.
	Epoch int `json:"epoch"`
	// Degraded is true when the fabric shrank after losing ranks;
	// WorldSize is the current (possibly shrunken) world size. A
	// shrunken-but-serving fabric keeps Status "ok" — degraded mode is
	// an operating state, not an outage, and only a fabric that cannot
	// serve flips Status (and with it the HTTP code).
	Degraded  bool `json:"degraded"`
	WorldSize int  `json:"world_size,omitempty"`
	// Engine state, when an engine (or serve-mode job loop) is running.
	JobsQueued  int64 `json:"jobs_queued"`
	JobsRunning int64 `json:"jobs_running"`
	JobsDone    int64 `json:"jobs_done"`
	JobsFailed  int64 `json:"jobs_failed"`
	// GatherAge is the age of the last successful fabric-wide metric
	// gather; negative when aggregation is not enabled on this rank.
	GatherAgeSeconds float64 `json:"gather_age_seconds"`
	// Detail carries a human-readable reason when degraded.
	Detail string `json:"detail,omitempty"`
}

// ServerOptions configure the telemetry HTTP server. All fields are
// optional; a zero options serves a bare registry.
type ServerOptions struct {
	// Health supplies the /healthz payload on each request. Nil serves
	// {"status":"ok"}.
	Health func() Health
	// Trace supplies the last-N trace events for /debug/trace, newest
	// last, rendered as JSONL so the output pipes straight into
	// sdstrace. Nil returns 404 from /debug/trace.
	Trace func() []json.RawMessage
	// Aggregate, when set, is consulted by /metrics to append
	// fabric-wide totals after the local registry dump (coordinator
	// only). It must not block on the network.
	Aggregate func(w http.ResponseWriter)
	// Spans supplies the reconstructed span list for /debug/spans —
	// typically trace.BuildSpans over the process's ring buffer. The
	// returned value is rendered as indented JSON. Nil returns 404.
	Spans func() any
}

// Server serves the telemetry plane over HTTP: /metrics (Prometheus
// text), /healthz (JSON liveness), /debug/pprof/* and /debug/trace.
type Server struct {
	reg  *Registry
	opts ServerOptions
	ln   net.Listener
	srv  *http.Server

	scrapes   *Counter
	scrapeDur *Histogram
}

// NewServer creates a telemetry server bound to addr (host:port; an
// empty host binds all interfaces, port 0 picks a free port) and starts
// serving immediately. Close releases the listener.
func NewServer(addr string, reg *Registry, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		reg:       reg,
		opts:      opts,
		ln:        ln,
		scrapes:   reg.Counter("sds_telemetry_scrapes_total", "Number of /metrics scrapes served."),
		scrapeDur: reg.Histogram("sds_telemetry_scrape_seconds", "Latency of /metrics scrapes.", DefaultLatencyBuckets()),
	}
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Handler returns the telemetry mux (exposed for in-proc tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/spans", s.handleSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.scrapes.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.reg.WriteTo(w); err != nil {
		return // client went away mid-scrape
	}
	if s.opts.Aggregate != nil {
		s.opts.Aggregate(w)
	}
	s.scrapeDur.Observe(time.Since(start).Seconds())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", GatherAgeSeconds: -1}
	if s.opts.Health != nil {
		h = s.opts.Health()
	}
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h) //nolint:errcheck // best-effort response body
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if s.opts.Spans == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.opts.Spans()) //nolint:errcheck // best-effort response body
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.opts.Trace == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, ev := range s.opts.Trace() {
		w.Write(ev)              //nolint:errcheck // best-effort
		w.Write([]byte{'\n'})    //nolint:errcheck
	}
}
