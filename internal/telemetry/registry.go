// Package telemetry is the live observability plane of the repository:
// a dependency-free metrics registry rendering the Prometheus text
// exposition format, an HTTP server exposing /metrics, /healthz,
// /debug/pprof and /debug/trace, and a fabric-wide aggregation layer
// that lets the coordinator's scrape serve cluster totals gathered from
// every rank of a TCP world.
//
// The registry deliberately reimplements the small slice of the
// Prometheus client library this repository needs — counters, gauges,
// function-backed collectors read at scrape time, and fixed-bucket
// histograms — so the transport, engine and sort layers stay free of
// external dependencies. Everything is safe for concurrent use; the
// instruments are single atomics on the hot path.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's Prometheus type.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the TYPE-line spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Label is one name/value pair attached to a series.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add accrues n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer value that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add accrues a (possibly negative) delta.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	bounds []float64      // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Int64 // one per bound, plus the +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefaultLatencyBuckets are upper bounds in seconds suiting the sort
// and scrape latencies this repository measures (1ms .. 30s).
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// Sample is one flattened series value, the unit the fabric aggregation
// ships between ranks. Suffix distinguishes the sub-series of a
// histogram family ("_bucket", "_sum", "_count"); it is empty for
// counters and gauges.
type Sample struct {
	Name   string  `json:"n"`
	Kind   Kind    `json:"k"`
	Suffix string  `json:"s,omitempty"`
	Labels []Label `json:"l,omitempty"`
	Value  float64 `json:"v"`
}

// series is one labelled instrument of a family.
type series struct {
	labels []Label // sorted by key
	sig    string
	read   func() []point // produces the series' sample lines
}

// point is one output line of a series.
type point struct {
	suffix string
	extra  []Label // appended after the series labels (the "le" bound)
	value  float64
}

type family struct {
	name, help string
	kind       Kind
	series     map[string]*series
	order      []string
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Register instruments up front (registration
// panics on a conflicting re-registration — a programming error), then
// scrape with WriteTo or flatten with Snapshot.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameRe = func(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func signature(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

// register adds a series, creating the family on first use.
func (r *Registry) register(name, help string, kind Kind, labels []Label, read func() []point) {
	if !nameRe(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	ls := sortLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	sig := signature(ls)
	if _, dup := f.series[sig]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %q%v", name, ls))
	}
	f.series[sig] = &series{labels: ls, sig: sig, read: read}
	f.order = append(f.order, sig)
	sort.Strings(f.order)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, KindCounter, labels, func() []point {
		return []point{{value: float64(c.Value())}}
	})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, KindGauge, labels, func() []point {
		return []point{{value: float64(g.Value())}}
	})
	return g
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — the hook subsystems with their own atomic counters (transport
// stats, engine job counts) are exported through without coupling them
// to this package.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindCounter, labels, func() []point {
		return []point{{value: fn()}}
	})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindGauge, labels, func() []point {
		return []point{{value: fn()}}
	})
}

// Histogram registers and returns a histogram with the given upper
// bounds (sorted ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	r.register(name, help, KindHistogram, labels, func() []point {
		pts := make([]point, 0, len(bs)+3)
		var cum int64
		for i, b := range bs {
			cum += h.counts[i].Load()
			pts = append(pts, point{suffix: "_bucket", extra: []Label{{"le", formatFloat(b)}}, value: float64(cum)})
		}
		cum += h.counts[len(bs)].Load()
		pts = append(pts, point{suffix: "_bucket", extra: []Label{{"le", "+Inf"}}, value: float64(cum)})
		pts = append(pts, point{suffix: "_sum", value: h.Sum()})
		pts = append(pts, point{suffix: "_count", value: float64(h.Count())})
		return pts
	})
	return h
}

// Snapshot flattens every series into samples — the wire unit of the
// fabric aggregation. Histogram buckets flatten to cumulative "_bucket"
// samples, which sum correctly across ranks.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, name := range r.names {
		f := r.families[name]
		for _, sig := range f.order {
			s := f.series[sig]
			for _, p := range s.read() {
				out = append(out, Sample{
					Name:   f.name,
					Kind:   f.kind,
					Suffix: p.suffix,
					Labels: append(append([]Label(nil), s.labels...), p.extra...),
					Value:  p.value,
				})
			}
		}
	}
	return out
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// signature, label keys sorted within a series (a histogram's "le"
// bound stays last, per convention).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, name := range r.names {
		f := r.families[name]
		if err := writeFamilyHeader(cw, f.name, f.help, f.kind); err != nil {
			return cw.n, err
		}
		for _, sig := range f.order {
			s := f.series[sig]
			for _, p := range s.read() {
				if err := writeSampleLine(cw, f.name+p.suffix, append(append([]Label(nil), s.labels...), p.extra...), p.value); err != nil {
					return cw.n, err
				}
			}
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeFamilyHeader(w io.Writer, name, help string, kind Kind) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}

// writeSampleLine renders one series line. Labels are assumed
// pre-sorted except that a trailing "le" (histogram bound) is kept in
// place.
func writeSampleLine(w io.Writer, name string, labels []Label, value float64) error {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSamples renders pre-flattened samples (the fabric aggregation's
// output) grouped into families, sorted by name. help maps a family
// name to its HELP line; missing entries render without one.
func writeSamples(w io.Writer, samples []Sample, help func(name string) string) error {
	byName := map[string][]Sample{}
	var names []string
	for _, s := range samples {
		if _, ok := byName[s.Name]; !ok {
			names = append(names, s.Name)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		var h string
		if help != nil {
			h = help(name)
		}
		if err := writeFamilyHeader(w, name, h, group[0].Kind); err != nil {
			return err
		}
		sort.SliceStable(group, func(i, j int) bool {
			if group[i].Suffix != group[j].Suffix {
				return group[i].Suffix < group[j].Suffix
			}
			return signature(group[i].Labels) < signature(group[j].Labels)
		})
		for _, s := range group {
			if err := writeSampleLine(w, s.Name+s.Suffix, s.Labels, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
