// Package buildinfo carries the binary's build identity: the version
// string stamped at link time and the Go toolchain that compiled it.
// Every cmd/ binary prints it under -version and exports it as the
// sds_build_info metric, so a scrape (or a bug report) always says
// exactly which build produced it.
package buildinfo

import (
	"fmt"
	"runtime"

	"sdssort/internal/telemetry"
)

// Version is stamped by the Makefile via
//
//	-ldflags "-X sdssort/internal/buildinfo.Version=$(VERSION)"
//
// and stays "dev" for unstamped builds (go run, go test).
var Version = "dev"

// String renders the one-line identity -version prints.
func String(binary string) string {
	return fmt.Sprintf("%s %s (%s)", binary, Version, runtime.Version())
}

// Register exports the build identity as an info-style gauge:
//
//	sds_build_info{version="...",go_version="..."} 1
func Register(r *telemetry.Registry) {
	r.GaugeFunc("sds_build_info", "Constant 1, labelled with the binary's stamped version and Go toolchain.",
		func() float64 { return 1 },
		telemetry.L("version", Version), telemetry.L("go_version", runtime.Version()))
}
