package comm

import (
	"fmt"
	"sync"
	"testing"
)

// benchWorld runs fn on every rank of a world and waits; helper for
// collective benchmarks.
func benchWorld(b *testing.B, size int, fn func(c *Comm) error) {
	b.Helper()
	world, err := NewWorld(size, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer world.Close()
	comms := make([]*Comm, size)
	for r := 0; r < size; r++ {
		comms[r] = New(world.Transport(r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, size)
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				errs[rank] = fn(comms[rank])
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPingPong(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(size) * 2)
			benchWorld(b, 2, func(c *Comm) error {
				if c.Rank() == 0 {
					if err := c.Send(1, 0, payload); err != nil {
						return err
					}
					_, err := c.Recv(1, 0)
					return err
				}
				buf, err := c.Recv(0, 0)
				if err != nil {
					return err
				}
				return c.Send(0, 0, buf)
			})
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchWorld(b, p, func(c *Comm) error { return c.Barrier() })
		})
	}
}

func BenchmarkAlltoall(b *testing.B) {
	for _, p := range []int{4, 16} {
		for _, size := range []int{256, 16384} {
			b.Run(fmt.Sprintf("p=%d/bytes=%d", p, size), func(b *testing.B) {
				payload := make([]byte, size)
				b.SetBytes(int64(p) * int64(p) * int64(size))
				benchWorld(b, p, func(c *Comm) error {
					parts := make([][]byte, p)
					for i := range parts {
						parts[i] = payload
					}
					_, err := c.Alltoall(parts)
					return err
				})
			})
		}
	}
}

func BenchmarkAllgatherFlatVsRing(b *testing.B) {
	const p, size = 8, 4096
	payload := make([]byte, size)
	b.Run("flat", func(b *testing.B) {
		benchWorld(b, p, func(c *Comm) error {
			_, err := c.Allgather(payload)
			return err
		})
	})
	b.Run("ring", func(b *testing.B) {
		benchWorld(b, p, func(c *Comm) error {
			_, err := c.RingAllgather(payload)
			return err
		})
	})
}

func BenchmarkAlltoallEagerVsPairwise(b *testing.B) {
	const p, size = 8, 4096
	payload := make([]byte, size)
	parts := make([][]byte, p)
	for i := range parts {
		parts[i] = payload
	}
	b.Run("eager", func(b *testing.B) {
		benchWorld(b, p, func(c *Comm) error {
			_, err := c.Alltoall(parts)
			return err
		})
	})
	b.Run("pairwise", func(b *testing.B) {
		benchWorld(b, p, func(c *Comm) error {
			_, err := c.PairwiseAlltoall(parts)
			return err
		})
	})
}
