package comm

import "fmt"

// Group returns the communicator's membership as world ranks, indexed by
// communicator rank (a copy; the caller may keep it).
func (c *Comm) Group() []int {
	return append([]int(nil), c.group...)
}

// Name returns the communicator's hierarchical name ("world", or the
// split path that produced it) — useful in traces and error messages.
func (c *Comm) Name() string { return c.name }

// Dup returns a communicator with the same membership but an isolated
// message context, the MPI_Comm_dup idiom: libraries layered over the
// same group can communicate without tag coordination. Dup is collective
// — every member must call it the same number of times.
func (c *Comm) Dup() *Comm {
	c.mu.Lock()
	c.splitSeq++
	seq := c.splitSeq
	c.mu.Unlock()
	name := fmt.Sprintf("%s/%d:dup", c.name, seq)
	d := &Comm{
		tr:    c.tr,
		group: append([]int(nil), c.group...),
		rank:  c.rank,
		ctx:   ctxOf(name),
		name:  name,
	}
	d.cond = newCond(d)
	return d
}

// TranslateRank converts a rank of this communicator into the
// corresponding rank of other, or -1 when the member is absent there —
// MPI_Group_translate_ranks for the common two-communicator case.
func (c *Comm) TranslateRank(r int, other *Comm) int {
	if r < 0 || r >= len(c.group) {
		return -1
	}
	world := c.group[r]
	for i, w := range other.group {
		if w == world {
			return i
		}
	}
	return -1
}
