package comm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestScatter(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		for root := 0; root < p; root += 3 {
			runRanks(t, p, nil, func(c *Comm) error {
				var parts [][]byte
				if c.Rank() == root {
					parts = make([][]byte, p)
					for r := range parts {
						parts[r] = []byte{byte(r), byte(r * 3)}
					}
				}
				got, err := c.Scatter(root, parts)
				if err != nil {
					return err
				}
				want := []byte{byte(c.Rank()), byte(c.Rank() * 3)}
				if !bytes.Equal(got, want) {
					return fmt.Errorf("rank %d got %v want %v", c.Rank(), got, want)
				}
				return nil
			})
		}
	}
}

func TestScatterValidation(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, [][]byte{{1}}); err == nil {
				return errors.New("wrong part count accepted")
			}
		}
		if _, err := c.Scatter(9, nil); err == nil {
			return errors.New("bad root accepted")
		}
		return nil
	})
}

func TestReduce(t *testing.T) {
	add := func(a, b int64) int64 { return a + b }
	for _, p := range []int{1, 2, 3, 7, 8} {
		for root := 0; root < p; root += 2 {
			runRanks(t, p, nil, func(c *Comm) error {
				got, err := c.Reduce(root, int64(c.Rank()+1), add)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					return nil
				}
				want := int64(p * (p + 1) / 2)
				if got != want {
					return fmt.Errorf("root got %d want %d", got, want)
				}
				return nil
			})
		}
	}
}

func TestReduceMax(t *testing.T) {
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	runRanks(t, 6, nil, func(c *Comm) error {
		got, err := c.Reduce(2, int64(c.Rank()*10), maxOp)
		if err != nil {
			return err
		}
		if c.Rank() == 2 && got != 50 {
			return fmt.Errorf("got %d", got)
		}
		return nil
	})
}

func TestExScan(t *testing.T) {
	add := func(a, b int64) int64 { return a + b }
	for _, p := range []int{1, 2, 3, 4, 7, 8, 13} {
		runRanks(t, p, nil, func(c *Comm) error {
			// v_r = r + 1: exclusive prefix sums are r(r+1)/2.
			got, err := c.ExScan(int64(c.Rank()+1), 0, add)
			if err != nil {
				return err
			}
			want := int64(c.Rank() * (c.Rank() + 1) / 2)
			if got != want {
				return fmt.Errorf("rank %d got %d want %d", c.Rank(), got, want)
			}
			return nil
		})
	}
}

func TestRingAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6, 9} {
		runRanks(t, p, nil, func(c *Comm) error {
			mine := make([]byte, c.Rank()+1) // variable sizes
			for i := range mine {
				mine[i] = byte(c.Rank())
			}
			out, err := c.RingAllgather(mine)
			if err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				if len(out[r]) != r+1 {
					return fmt.Errorf("block %d has %d bytes", r, len(out[r]))
				}
				for _, b := range out[r] {
					if b != byte(r) {
						return fmt.Errorf("block %d corrupted", r)
					}
				}
			}
			return nil
		})
	}
}

func TestRingAllgatherMatchesAllgather(t *testing.T) {
	runRanks(t, 5, nil, func(c *Comm) error {
		payload := []byte(fmt.Sprintf("rank-%d", c.Rank()))
		a, err := c.Allgather(payload)
		if err != nil {
			return err
		}
		b, err := c.RingAllgather(payload)
		if err != nil {
			return err
		}
		for r := range a {
			if !bytes.Equal(a[r], b[r]) {
				return fmt.Errorf("mismatch at %d: %q vs %q", r, a[r], b[r])
			}
		}
		return nil
	})
}

func TestPairwiseAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 3, 6} { // both schedules
		runRanks(t, p, nil, func(c *Comm) error {
			parts := make([][]byte, p)
			for dst := range parts {
				parts[dst] = []byte{byte(c.Rank()), byte(dst), byte(c.Rank() + dst)}
			}
			out, err := c.PairwiseAlltoall(parts)
			if err != nil {
				return err
			}
			for src := 0; src < p; src++ {
				want := []byte{byte(src), byte(c.Rank()), byte(src + c.Rank())}
				if !bytes.Equal(out[src], want) {
					return fmt.Errorf("from %d: got %v want %v", src, out[src], want)
				}
			}
			return nil
		})
	}
}

func TestPairwiseAlltoallMatchesEager(t *testing.T) {
	runRanks(t, 7, nil, func(c *Comm) error {
		parts := make([][]byte, 7)
		for dst := range parts {
			parts[dst] = []byte(fmt.Sprintf("%d->%d", c.Rank(), dst))
		}
		a, err := c.Alltoall(parts)
		if err != nil {
			return err
		}
		b, err := c.PairwiseAlltoall(parts)
		if err != nil {
			return err
		}
		for r := range a {
			if !bytes.Equal(a[r], b[r]) {
				return fmt.Errorf("mismatch from %d", r)
			}
		}
		return nil
	})
}

func TestPairwiseAlltoallValidation(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		if _, err := c.PairwiseAlltoall([][]byte{nil}); err == nil {
			return errors.New("wrong part count accepted")
		}
		return nil
	})
}
