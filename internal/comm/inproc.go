package comm

import (
	"fmt"
	"sync"
)

// World is the in-process transport fabric: size ranks, each backed by a
// mailbox, exchanging messages by memory copy. Ranks are driven by
// goroutines (see package cluster). A World models a whole machine; the
// nodeOf vector assigns ranks to simulated nodes so that SplitByNode and
// the paper's node-level merging behave as they do under MPI on a real
// cluster.
type World struct {
	size   int
	nodeOf []int
	boxes  []*mailbox

	mu     sync.Mutex
	closed bool
}

// NewWorld creates an in-process fabric with the given number of ranks.
// nodeOf maps each rank to its simulated node id; pass nil to place every
// rank on node 0 (one big shared-memory node).
func NewWorld(size int, nodeOf []int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("comm: world size %d must be positive", size)
	}
	if nodeOf == nil {
		nodeOf = make([]int, size)
	}
	if len(nodeOf) != size {
		return nil, fmt.Errorf("comm: nodeOf has %d entries for %d ranks", len(nodeOf), size)
	}
	w := &World{size: size, nodeOf: append([]int(nil), nodeOf...)}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// BlockNodes builds a nodeOf vector for size ranks packed onto nodes of
// coresPerNode consecutive ranks each, the layout MPI job launchers use.
func BlockNodes(size, coresPerNode int) []int {
	if coresPerNode <= 0 {
		coresPerNode = 1
	}
	nodeOf := make([]int, size)
	for i := range nodeOf {
		nodeOf[i] = i / coresPerNode
	}
	return nodeOf
}

// Size returns the fabric's rank count.
func (w *World) Size() int { return w.size }

// Transport returns rank r's endpoint on the fabric.
func (w *World) Transport(r int) Transport {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("comm: transport rank %d out of range [0,%d)", r, w.size))
	}
	return &inprocTransport{w: w, rank: r}
}

// Interrupt wakes every receive currently parked in the fabric so it
// re-checks its cancellation channel. It delivers nothing and consumes
// nothing: receives whose cancel channel is still open simply go back
// to sleep. Whoever closes a RecvCancel cancel channel must call this
// (the persistent job engine does, when it aborts a failed job).
func (w *World) Interrupt() {
	for _, b := range w.boxes {
		b.interrupt()
	}
}

// Close shuts the fabric down, unblocking any pending Recv with
// ErrClosed. It is used by tests and by error paths in the launcher.
func (w *World) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	for _, b := range w.boxes {
		b.close()
	}
	return nil
}

type inprocTransport struct {
	w    *World
	rank int
}

func (t *inprocTransport) Rank() int        { return t.rank }
func (t *inprocTransport) Size() int        { return t.w.size }
func (t *inprocTransport) Node() int        { return t.w.nodeOf[t.rank] }
func (t *inprocTransport) NodeOf(r int) int { return t.w.nodeOf[r] }

func (t *inprocTransport) Send(dst int, ctx uint64, tag int32, data []byte) error {
	if dst < 0 || dst >= t.w.size {
		return fmt.Errorf("comm: send to rank %d out of range [0,%d)", dst, t.w.size)
	}
	// Copy eagerly: the sender is free to reuse its buffer, and the
	// receiver owns what it gets, exactly as with a buffered MPI send.
	cp := append([]byte(nil), data...)
	return t.w.boxes[dst].put(message{src: t.rank, ctx: ctx, tag: tag, data: cp})
}

func (t *inprocTransport) Recv(src int, ctx uint64, tag int32) ([]byte, error) {
	if src < 0 || src >= t.w.size {
		return nil, fmt.Errorf("comm: recv from rank %d out of range [0,%d)", src, t.w.size)
	}
	return t.w.boxes[t.rank].take(src, ctx, tag)
}

func (t *inprocTransport) Close() error { return nil }

// RecvCancel is Recv with abandonment: once cancel closes (and the
// fabric is nudged via World.Interrupt) the wait returns a wrapped
// ErrCanceled without consuming any message.
func (t *inprocTransport) RecvCancel(src int, ctx uint64, tag int32, cancel <-chan struct{}) ([]byte, error) {
	if src < 0 || src >= t.w.size {
		return nil, fmt.Errorf("comm: recv from rank %d out of range [0,%d)", src, t.w.size)
	}
	return t.w.boxes[t.rank].takeCancel(src, ctx, tag, cancel)
}

type message struct {
	src  int
	ctx  uint64
	tag  int32
	data []byte
}

type msgKey struct {
	src int
	ctx uint64
	tag int32
}

// mailbox holds one rank's incoming messages, keyed by (src, ctx, tag)
// with FIFO order within each key — the MPI non-overtaking guarantee.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{queues: make(map[msgKey][][]byte)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	k := msgKey{src: m.src, ctx: m.ctx, tag: m.tag}
	b.queues[k] = append(b.queues[k], m.data)
	b.cond.Broadcast()
	return nil
}

func (b *mailbox) take(src int, ctx uint64, tag int32) ([]byte, error) {
	return b.takeCancel(src, ctx, tag, nil)
}

// takeCancel blocks until a matching message arrives, the mailbox
// closes, or cancel closes. Cancellation is checked each time the
// condition variable wakes, so it costs one non-blocking select per
// wakeup on the hot path and needs an interrupt() broadcast to take
// effect on an already-parked waiter.
func (b *mailbox) takeCancel(src int, ctx uint64, tag int32, cancel <-chan struct{}) ([]byte, error) {
	k := msgKey{src: src, ctx: ctx, tag: tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if q := b.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(b.queues, k)
			} else {
				b.queues[k] = q[1:]
			}
			return data, nil
		}
		if b.closed {
			return nil, ErrClosed
		}
		if cancel != nil {
			select {
			case <-cancel:
				return nil, fmt.Errorf("comm: recv from rank %d: %w", src, ErrCanceled)
			default:
			}
		}
		b.cond.Wait()
	}
}

func (b *mailbox) interrupt() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
