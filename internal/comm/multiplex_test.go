package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCloseDupChildKeepsParentAlive pins the ownership contract that
// job multiplexing depends on: closing a Dup'd (or Split) communicator
// must not tear down the transport under its parent. Only the root
// communicator from New/NewNamed owns the fabric.
func TestCloseDupChildKeepsParentAlive(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		d := c.Dup()
		// The child works before Close...
		if err := d.Barrier(); err != nil {
			return fmt.Errorf("dup barrier: %w", err)
		}
		if err := d.Close(); err != nil {
			return fmt.Errorf("dup close: %w", err)
		}
		// ...and the parent still works after it: point-to-point and a
		// collective both traverse the transport the child did not own.
		peer := 1 - c.Rank()
		if err := c.Send(peer, 3, []byte{byte(c.Rank())}); err != nil {
			return fmt.Errorf("parent send after child close: %w", err)
		}
		got, err := c.Recv(peer, 3)
		if err != nil {
			return fmt.Errorf("parent recv after child close: %w", err)
		}
		if len(got) != 1 || got[0] != byte(peer) {
			return fmt.Errorf("parent recv got %v, want [%d]", got, peer)
		}
		return c.Barrier()
	})
}

// TestCloseAttachedCommKeepsFabricAlive is the same contract one level
// up: Attach'd world comms (what the engine builds per job) never own
// the transport, so dropping one job's comm leaves the fabric serving
// every other job.
func TestCloseAttachedCommKeepsFabricAlive(t *testing.T) {
	world, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr := world.Transport(rank)
			job0 := Attach(tr, "world/job0")
			if err := job0.Barrier(); err != nil {
				errs[rank] = err
				return
			}
			if err := job0.Close(); err != nil {
				errs[rank] = err
				return
			}
			// The fabric survived job0's comm: job1 runs on it.
			job1 := Attach(tr, "world/job1")
			errs[rank] = job1.Barrier()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// closeSpy records whether Comm.Close reached the transport.
type closeSpy struct {
	Transport
	closes int
}

func (s *closeSpy) Close() error {
	s.closes++
	return s.Transport.Close()
}

// TestCloseOwnership pins who may tear the transport down: the root
// communicator from New/NewNamed owns it and its Close passes through;
// Attach'd comms and derived children (Dup) never do.
func TestCloseOwnership(t *testing.T) {
	world, err := NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()

	spy := &closeSpy{Transport: world.Transport(0)}
	owner := New(spy)
	child := owner.Dup()
	attached := Attach(spy, "world/job0")

	if err := child.Close(); err != nil || spy.closes != 0 {
		t.Fatalf("dup child Close: err=%v, transport closes=%d, want 0", err, spy.closes)
	}
	if err := attached.Close(); err != nil || spy.closes != 0 {
		t.Fatalf("attached Close: err=%v, transport closes=%d, want 0", err, spy.closes)
	}
	if err := owner.Close(); err != nil || spy.closes != 1 {
		t.Fatalf("owner Close: err=%v, transport closes=%d, want 1", err, spy.closes)
	}
}

// TestConcurrentSplitOnDups runs Split and SplitByNode concurrently on
// two Dup'd communicators of the same fabric — the pattern two
// concurrent engine jobs produce — and checks both derive correct
// subgroups and carry traffic without cross-talk, over repeated rounds.
func TestConcurrentSplitOnDups(t *testing.T) {
	const size = 4
	nodeOf := BlockNodes(size, 2) // 2 nodes × 2 cores
	runRanks(t, size, nodeOf, func(c *Comm) error {
		a := c.Dup()
		b := c.Dup()
		for round := 0; round < 5; round++ {
			var wg sync.WaitGroup
			errs := make([]error, 2)
			wg.Add(2)
			// Split on comm a: parity groups, each of 2 ranks.
			go func() {
				defer wg.Done()
				sub, err := a.Split(a.Rank()%2, a.Rank())
				if err != nil {
					errs[0] = err
					return
				}
				if sub.Size() != 2 {
					errs[0] = fmt.Errorf("parity split size %d, want 2", sub.Size())
					return
				}
				// Exchange payloads within the subgroup to prove the
				// derived comm carries traffic isolated from b's.
				peer := 1 - sub.Rank()
				payload := []byte(fmt.Sprintf("a%d-%d", round, a.Rank()))
				if err := sub.Send(peer, 1, payload); err != nil {
					errs[0] = err
					return
				}
				got, err := sub.Recv(peer, 1)
				if err != nil {
					errs[0] = err
					return
				}
				want := fmt.Sprintf("a%d-%d", round, sub.WorldRank(peer))
				if string(got) != want {
					errs[0] = fmt.Errorf("parity subgroup got %q, want %q", got, want)
				}
			}()
			// SplitByNode on comm b, concurrently.
			go func() {
				defer wg.Done()
				local, _, err := b.SplitByNode()
				if err != nil {
					errs[1] = err
					return
				}
				if local.Size() != 2 {
					errs[1] = fmt.Errorf("node-local size %d, want 2", local.Size())
					return
				}
				sum, err := local.AllreduceInt64(int64(b.Rank()), func(x, y int64) int64 { return x + y })
				if err != nil {
					errs[1] = err
					return
				}
				// Ranks 0+1 on node 0, 2+3 on node 1.
				want := int64(1)
				if b.Node() == 1 {
					want = 5
				}
				if sum != want {
					errs[1] = fmt.Errorf("node-local rank sum %d, want %d", sum, want)
				}
			}()
			wg.Wait()
			if err := errors.Join(errs[0], errs[1]); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
		}
		return nil
	})
}

// TestRecvCancel exercises the cancellation hook the job engine uses:
// a parked receive must abandon its wait with ErrCanceled when its
// cancel channel closes and the fabric is interrupted — without
// consuming any message, which a later receive must still get.
func TestRecvCancel(t *testing.T) {
	world, err := NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	tr := world.Transport(0).(CancelableTransport)

	cancel := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		_, err := tr.RecvCancel(0, 42, 1, cancel)
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the receive park
	close(cancel)
	world.Interrupt()
	select {
	case err := <-got:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("cancelled recv: %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled receive never unblocked")
	}

	// Nothing was consumed: a message sent now is received by a fresh,
	// uncancelled receive.
	if err := tr.Send(0, 42, 1, []byte("still here")); err != nil {
		t.Fatal(err)
	}
	data, err := tr.RecvCancel(0, 42, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "still here" {
		t.Fatalf("post-cancel recv got %q", data)
	}
}

// TestInterruptIsNeutral checks Interrupt wakes parked receives without
// disturbing ones whose cancel channel is still open: they go back to
// sleep and complete normally when the message arrives.
func TestInterruptIsNeutral(t *testing.T) {
	world, err := NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	tr := world.Transport(0).(CancelableTransport)

	cancel := make(chan struct{}) // never closed
	got := make(chan string, 1)
	go func() {
		data, err := tr.RecvCancel(0, 9, 2, cancel)
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		got <- string(data)
	}()
	time.Sleep(10 * time.Millisecond)
	world.Interrupt() // spurious wakeup: must be harmless
	time.Sleep(10 * time.Millisecond)
	if err := tr.Send(0, 9, 2, []byte("delivered")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "delivered" {
			t.Fatalf("receive after neutral interrupt: %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receive lost after a neutral interrupt")
	}
}
