package comm

import (
	"errors"
	"fmt"
)

// ErrPeerLost reports that communication with a peer rank was abandoned
// after the retry budget was exhausted (or a failure detector fired).
// Rank is the *world* rank of the lost peer — the transport-level
// identity, not a sub-communicator rank — so reports from different
// communicators of the same job name the same process consistently.
//
// It propagates unchanged through point-to-point ops, collectives and
// the cluster launcher; detect it with errors.As or the PeerLost
// helper.
type ErrPeerLost struct {
	Rank int
	Err  error // final underlying error, may be nil
}

func (e *ErrPeerLost) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("comm: peer rank %d lost: %v", e.Rank, e.Err)
	}
	return fmt.Sprintf("comm: peer rank %d lost", e.Rank)
}

// Unwrap exposes the underlying cause to errors.Is/As chains.
func (e *ErrPeerLost) Unwrap() error { return e.Err }

// PeerLost reports whether err (anywhere in its wrap chain) is an
// ErrPeerLost, returning the world rank of the lost peer.
func PeerLost(err error) (rank int, ok bool) {
	var e *ErrPeerLost
	if errors.As(err, &e) {
		return e.Rank, true
	}
	return -1, false
}

// ErrCanceled is returned by cancellation-aware receives
// (CancelableTransport.RecvCancel and decorators built on it) when the
// cancel channel closes before a message arrives. No message is
// consumed. It is deliberately distinct from ErrPeerLost: the peer may
// be perfectly healthy — the *caller's job* was aborted.
var ErrCanceled = errors.New("comm: operation canceled")

// ErrTransient classifies an error as retryable: the failed operation
// had no effect and may be attempted again. Transports and fault
// injectors mark errors with Transient; the WithRetry decorator and
// tcpcomm's send path retry only errors satisfying IsTransient.
var ErrTransient = errors.New("comm: transient fault")

type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }

// Unwrap makes the error match both ErrTransient and its cause.
func (e *transientError) Unwrap() []error { return []error{ErrTransient, e.err} }

// Transient marks err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }
