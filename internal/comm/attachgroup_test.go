package comm

import (
	"sync"
	"testing"
)

// TestAttachGroupSurvivorsCollective pins the membership-change
// primitive: after "losing" rank 1 of a 4-rank world, the survivors
// attach a 3-rank communicator over the untouched transport and run a
// collective on it — the degraded-mode reform path, minus the sort.
func TestAttachGroupSurvivorsCollective(t *testing.T) {
	world, err := NewWorld(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()

	group := []int{0, 2, 3}
	var wg sync.WaitGroup
	errs := make([]error, len(group))
	sums := make([]int64, len(group))
	for i, r := range group {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			c, err := AttachGroup(world.Transport(rank), "world@shrunk", group)
			if err != nil {
				errs[i] = err
				return
			}
			if c.Size() != 3 || c.Rank() != i || c.WorldRank(c.Rank()) != rank {
				t.Errorf("world rank %d: got comm rank %d/%d", rank, c.Rank(), c.Size())
			}
			sums[i], errs[i] = c.AllreduceInt64(int64(rank), func(a, b int64) int64 { return a + b })
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if sums[i] != 5 {
			t.Fatalf("member %d: allreduce sum %d, want 5", i, sums[i])
		}
	}
}

// TestAttachGroupContextsDisjoint asserts that the member list is part
// of the message context: two groups sharing a base name but
// disagreeing on membership must never match each other's frames.
func TestAttachGroupContextsDisjoint(t *testing.T) {
	world, err := NewWorld(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()

	a, err := AttachGroup(world.Transport(0), "world@shrunk", []int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AttachGroup(world.Transport(0), "world@shrunk", []int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.ctx == b.ctx {
		t.Fatal("different member lists produced the same message context")
	}
	// The divergence must survive into derived communicators, which
	// hash their parent's name.
	if a.name == b.name {
		t.Fatal("different member lists produced the same communicator name")
	}
}

func TestAttachGroupValidation(t *testing.T) {
	world, err := NewWorld(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	tr := world.Transport(1)

	cases := [][]int{
		nil,        // empty
		{0, 2},     // caller not a member
		{1, 1, 2},  // duplicate
		{2, 1},     // out of order
		{0, 1, 3},  // outside world
		{-1, 0, 1}, // negative
	}
	for _, group := range cases {
		if _, err := AttachGroup(tr, "g", group); err == nil {
			t.Fatalf("group %v accepted", group)
		}
	}
	if _, err := AttachGroup(tr, "g", []int{0, 1, 2}); err != nil {
		t.Fatalf("full group rejected: %v", err)
	}
}
