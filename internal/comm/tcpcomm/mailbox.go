package tcpcomm

import (
	"sync"
	"time"
)

type message struct {
	src  int
	ctx  uint64
	tag  int32
	data []byte
}

type msgKey struct {
	src int
	ctx uint64
	tag int32
}

// mailbox holds incoming frames keyed by (src, ctx, tag) with FIFO order
// per key — the same non-overtaking guarantee the in-process transport
// provides, fed here by the per-connection reader goroutines. A source
// can additionally be failed (frames from it were definitively lost):
// takes for a failed source drain what already arrived, then surface
// the recorded error instead of blocking forever.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte
	failed map[int]error // per-source terminal failures
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{queues: make(map[msgKey][][]byte), failed: make(map[int]error)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	k := msgKey{src: m.src, ctx: m.ctx, tag: m.tag}
	b.queues[k] = append(b.queues[k], m.data)
	b.cond.Broadcast()
	return nil
}

// fail marks src as lost: blocked and future takes from src return err
// once their queue is drained. The first failure per source wins.
func (b *mailbox) fail(src int, err error) {
	b.mu.Lock()
	if _, dup := b.failed[src]; !dup {
		b.failed[src] = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// take returns the next frame for (src, ctx, tag), blocking until one
// arrives. With timeout > 0 the wait is bounded and expiry returns
// errRecvTimeout.
func (b *mailbox) take(src int, ctx uint64, tag int32, timeout time.Duration) ([]byte, error) {
	k := msgKey{src: src, ctx: ctx, tag: tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	expired := false
	if timeout > 0 {
		// sync.Cond has no timed wait: an AfterFunc flips the flag
		// under the lock and wakes every waiter.
		timer := time.AfterFunc(timeout, func() {
			b.mu.Lock()
			expired = true
			b.mu.Unlock()
			b.cond.Broadcast()
		})
		defer timer.Stop()
	}
	for {
		if q := b.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(b.queues, k)
			} else {
				b.queues[k] = q[1:]
			}
			return data, nil
		}
		if err := b.failed[src]; err != nil {
			return nil, err
		}
		if b.closed {
			return nil, ErrClosed
		}
		if expired {
			return nil, errRecvTimeout
		}
		b.cond.Wait()
	}
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
