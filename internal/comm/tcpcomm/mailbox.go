package tcpcomm

import "sync"

type message struct {
	src  int
	ctx  uint64
	tag  int32
	data []byte
}

type msgKey struct {
	src int
	ctx uint64
	tag int32
}

// mailbox holds incoming frames keyed by (src, ctx, tag) with FIFO order
// per key — the same non-overtaking guarantee the in-process transport
// provides, fed here by the per-connection reader goroutines.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{queues: make(map[msgKey][][]byte)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	k := msgKey{src: m.src, ctx: m.ctx, tag: m.tag}
	b.queues[k] = append(b.queues[k], m.data)
	b.cond.Broadcast()
	return nil
}

func (b *mailbox) take(src int, ctx uint64, tag int32) ([]byte, error) {
	k := msgKey{src: src, ctx: ctx, tag: tag}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if q := b.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(b.queues, k)
			} else {
				b.queues[k] = q[1:]
			}
			return data, nil
		}
		if b.closed {
			return nil, ErrClosed
		}
		b.cond.Wait()
	}
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
