package tcpcomm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sdssort/internal/comm"
)

// Failure-path tests for the hardened TCP transport. Every test that
// could deadlock on a regression is guarded by a deadline; the CI soak
// lane runs them under -race with several -count repetitions (the
// names match the soak job's 'Fault|Retry|Reconnect' filter).

// faultWithin bounds fn so a hang fails the test instead of the suite.
func faultWithin(t *testing.T, d time.Duration, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("still blocked after %v — expected a typed error, not a hang", d)
		return nil
	}
}

// bootPair brings up a 2-rank TCP world with the given config tweaks.
func bootPair(t *testing.T, tweak func(r int, cfg *Config)) (t0, t1 *Transport) {
	t.Helper()
	registry := freePort(t)
	trs := make([]*Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := Config{Rank: rank, Size: 2, Registry: registry, Timeout: 10 * time.Second}
			if tweak != nil {
				tweak(rank, &cfg)
			}
			trs[rank], errs[rank] = New(cfg)
		}(r)
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatal(errs[0], errs[1])
	}
	return trs[0], trs[1]
}

func fastRetry() comm.RetryPolicy {
	return comm.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 1}
}

// TestReconnectAfterConnDrop severs the cached data connection between
// frames and checks the send path redials transparently, with every
// frame delivered exactly once and in order.
func TestReconnectAfterConnDrop(t *testing.T) {
	t0, t1 := bootPair(t, func(r int, cfg *Config) { cfg.Retry = fastRetry() })
	defer t0.Close()
	defer t1.Close()

	const n = 100
	err := faultWithin(t, 30*time.Second, func() error {
		for i := 0; i < n; i++ {
			if err := t0.Send(1, 7, 1, []byte{byte(i)}); err != nil {
				return fmt.Errorf("send %d: %w", i, err)
			}
			if i%10 == 9 {
				if !t0.dropConn(1) {
					return fmt.Errorf("no live connection to drop at frame %d", i)
				}
			}
		}
		for i := 0; i < n; i++ {
			data, err := t1.Recv(0, 7, 1)
			if err != nil {
				return fmt.Errorf("recv %d: %w", i, err)
			}
			if len(data) != 1 || data[0] != byte(i) {
				return fmt.Errorf("frame %d arrived as %v", i, data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultPeerDeathMidAlltoall kills one rank of three right after
// bootstrap; the survivors' all-to-all must fail with comm.ErrPeerLost
// naming the dead rank, not deadlock.
func TestFaultPeerDeathMidAlltoall(t *testing.T) {
	registry := freePort(t)
	trs := make([]*Transport, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			trs[rank], errs[rank] = New(Config{
				Rank: rank, Size: 3, Registry: registry, Timeout: 10 * time.Second,
				Retry:       fastRetry(),
				SendTimeout: time.Second,
				RecvTimeout: 3 * time.Second,
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d bootstrap: %v", r, err)
		}
	}
	defer trs[0].Close()
	defer trs[1].Close()

	trs[2].Close() // rank 2 dies before any data traffic

	var survivors sync.WaitGroup
	results := make([]error, 2)
	for r := 0; r < 2; r++ {
		survivors.Add(1)
		go func(rank int) {
			defer survivors.Done()
			c := comm.New(trs[rank])
			parts := make([][]byte, 3)
			for dst := range parts {
				parts[dst] = []byte{byte(rank), byte(dst)}
			}
			_, err := c.Alltoall(parts)
			results[rank] = err
		}(r)
	}
	err := faultWithin(t, 30*time.Second, func() error {
		survivors.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if results[r] == nil {
			t.Fatalf("rank %d's alltoall succeeded with rank 2 dead", r)
		}
		lost, ok := comm.PeerLost(results[r])
		if !ok {
			t.Fatalf("rank %d: want comm.ErrPeerLost, got %v", r, results[r])
		}
		if lost != 2 {
			t.Fatalf("rank %d blamed rank %d, want 2 (%v)", r, lost, results[r])
		}
	}
}

// TestRetryRegistryLate starts the worker ranks before the registry
// exists: the backoff dial loop must ride it out.
func TestRetryRegistryLate(t *testing.T) {
	registry := freePort(t)
	const size = 3
	trs := make([]*Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			trs[rank], errs[rank] = New(Config{Rank: rank, Size: size, Registry: registry, Timeout: 15 * time.Second, Retry: fastRetry()})
		}(r)
	}
	time.Sleep(400 * time.Millisecond) // workers are already dialing a refused port
	wg.Add(1)
	go func() {
		defer wg.Done()
		trs[0], errs[0] = New(Config{Rank: 0, Size: size, Registry: registry, Timeout: 15 * time.Second, Retry: fastRetry()})
	}()
	err := faultWithin(t, 30*time.Second, func() error {
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", r, e)
		}
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	// The fabric is genuinely usable after the late bootstrap.
	if err := trs[1].Send(2, 1, 1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	data, err := trs[2].Recv(1, 1, 1)
	if err != nil || string(data) != "hi" {
		t.Fatalf("post-bootstrap traffic: %q, %v", data, err)
	}
}

// TestFaultSendToClosedMailbox checks both closed-transport send paths
// (self-delivery into a closed mailbox, and remote sends) surface
// ErrClosed, typed, immediately.
func TestFaultSendToClosedMailbox(t *testing.T) {
	t0, t1 := bootPair(t, func(r int, cfg *Config) { cfg.Retry = fastRetry() })
	defer t1.Close()
	t0.Close()
	err := faultWithin(t, 10*time.Second, func() error {
		if err := t0.Send(0, 1, 1, []byte("self")); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("self-send after close: %v", err)
		}
		if err := t0.Send(1, 1, 1, []byte("remote")); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("remote send after close: %v", err)
		}
		if _, err := t0.Recv(1, 1, 1); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("recv after close: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultRecvTimeoutReportsPeerLost: with the failure detector armed,
// a receive with no sender fails typed instead of waiting forever.
func TestFaultRecvTimeoutReportsPeerLost(t *testing.T) {
	t0, t1 := bootPair(t, func(r int, cfg *Config) {
		cfg.Retry = fastRetry()
		cfg.RecvTimeout = 300 * time.Millisecond
	})
	defer t0.Close()
	defer t1.Close()
	err := faultWithin(t, 10*time.Second, func() error {
		_, err := t0.Recv(1, 9, 4)
		return err
	})
	if err == nil {
		t.Fatal("silent peer did not trip the failure detector")
	}
	lost, ok := comm.PeerLost(err)
	if !ok || lost != 1 {
		t.Fatalf("want ErrPeerLost{Rank:1}, got %v", err)
	}
}

// TestFaultFrameGapPoisonsMailbox unit-tests the retransmit-dedup and
// reorder contract: duplicates are dropped, frames ahead of the
// expected sequence are buffered until the gap fills (old and new
// connection readers race after a reconnect), and a gap that outlives
// GapTimeout poisons the source's mailbox with comm.ErrPeerLost.
func TestFaultFrameGapPoisonsMailbox(t *testing.T) {
	newTr := func(gap time.Duration) *Transport {
		return &Transport{
			cfg:     Config{Rank: 0, Size: 2, GapTimeout: gap},
			box:     newMailbox(),
			streams: make(map[int]*srcStream),
			closed:  make(chan struct{}),
		}
	}
	frame := func(seq uint64) message {
		return message{src: 1, ctx: 0, tag: 0, data: []byte{byte(seq)}}
	}

	// In-order delivery, duplicate dropped, out-of-order reordered.
	tr := newTr(time.Minute)
	for _, seq := range []uint64{0, 0 /* dup */, 2 /* ahead */, 1} {
		if err := tr.admitFrame(1, seq, frame(seq)); err != nil {
			t.Fatalf("admitFrame(%d): %v", seq, err)
		}
	}
	for want := uint64(0); want < 3; want++ {
		data, err := tr.box.take(1, 0, 0, time.Second)
		if err != nil || len(data) != 1 || data[0] != byte(want) {
			t.Fatalf("frame %d arrived as %v, %v", want, data, err)
		}
	}
	if _, err := tr.box.take(1, 0, 0, 50*time.Millisecond); !errors.Is(err, errRecvTimeout) {
		t.Fatalf("duplicate leaked into the mailbox: %v", err)
	}

	// A gap that never fills trips the timer and poisons the source.
	tr2 := newTr(100 * time.Millisecond)
	if err := tr2.admitFrame(1, 0, frame(0)); err != nil {
		t.Fatal(err)
	}
	if err := tr2.admitFrame(1, 4, frame(4)); err != nil {
		t.Fatal(err) // frames 1..3 now missing
	}
	if data, err := tr2.box.take(1, 0, 0, time.Second); err != nil || data[0] != 0 {
		t.Fatalf("in-order frame lost: %v, %v", data, err)
	}
	_, err := tr2.box.take(1, 0, 0, 5*time.Second)
	lost, ok := comm.PeerLost(err)
	if !ok || lost != 1 {
		t.Fatalf("poisoned mailbox returned %v, want ErrPeerLost{Rank:1}", err)
	}
}

// TestFaultMailboxFailUnblocksPendingTake: a take already blocked when
// the failure lands must wake with the typed error.
func TestFaultMailboxFailUnblocksPendingTake(t *testing.T) {
	b := newMailbox()
	done := make(chan error, 1)
	go func() {
		_, err := b.take(3, 0, 0, 0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	want := &comm.ErrPeerLost{Rank: 3}
	b.fail(3, want)
	select {
	case err := <-done:
		if lost, ok := comm.PeerLost(err); !ok || lost != 3 {
			t.Fatalf("got %v, want ErrPeerLost{Rank:3}", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("take still blocked after fail()")
	}
	// Frames that arrived before the failure still drain first.
	b2 := newMailbox()
	if err := b2.put(message{src: 1, ctx: 0, tag: 0, data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	b2.fail(1, want)
	if data, err := b2.take(1, 0, 0, 0); err != nil || string(data) != "x" {
		t.Fatalf("queued frame lost to fail(): %q, %v", data, err)
	}
	if _, err := b2.take(1, 0, 0, 0); err == nil {
		t.Fatal("drained mailbox did not surface the failure")
	}
}

// TestReconnectSendFailureExhaustionIsPeerLost: a peer that vanishes
// (listener gone, nothing accepting) costs exactly the retry budget
// and then surfaces as ErrPeerLost.
func TestReconnectSendFailureExhaustionIsPeerLost(t *testing.T) {
	t0, t1 := bootPair(t, func(r int, cfg *Config) {
		cfg.Retry = comm.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1}
		cfg.SendTimeout = time.Second
	})
	defer t0.Close()
	t1.Close() // rank 1 is gone; its listener is closed

	err := faultWithin(t, 30*time.Second, func() error {
		return t0.Send(1, 1, 1, []byte("into the void"))
	})
	if err == nil {
		t.Fatal("send to a dead peer succeeded")
	}
	lost, ok := comm.PeerLost(err)
	if !ok || lost != 1 {
		t.Fatalf("want ErrPeerLost{Rank:1}, got %v", err)
	}
}
