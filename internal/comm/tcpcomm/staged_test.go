package tcpcomm

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/workload"
)

// TestStagedAlltoallvOverTCP runs the chunked collective over the real
// TCP fabric: staged chunks are ordinary framed sends, so the transport
// needs no protocol change, and FIFO-per-tag ordering must keep each
// source's chunks arriving in offset order.
func TestStagedAlltoallvOverTCP(t *testing.T) {
	const p = 4
	rng := rand.New(rand.NewSource(61))
	payloads := make([][][]byte, p)
	for src := 0; src < p; src++ {
		payloads[src] = make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			buf := make([]byte, rng.Intn(300))
			rng.Read(buf)
			payloads[src][dst] = buf
		}
	}
	for _, stage := range []int64{0, 5, 128} {
		t.Run(fmt.Sprintf("stage%d", stage), func(t *testing.T) {
			launch(t, p, func(rank int) int { return rank / 2 }, func(c *comm.Comm) error {
				me := c.Rank()
				sendBytes := make([]int64, p)
				recvBytes := make([]int64, p)
				for r := 0; r < p; r++ {
					sendBytes[r] = int64(len(payloads[me][r]))
					recvBytes[r] = int64(len(payloads[r][me]))
				}
				got := make([][]byte, p)
				_, err := c.StagedAlltoallv(comm.StagedOptions{
					StageBytes: stage,
					SendBytes:  sendBytes,
					RecvBytes:  recvBytes,
					Fill: func(dst int, off, n int64) ([]byte, error) {
						return payloads[me][dst][off : off+n], nil
					},
					Drain: func(src int, off int64, chunk []byte) error {
						if int64(len(got[src])) != off {
							return fmt.Errorf("rank %d: chunk from %d out of order at %d", me, src, off)
						}
						got[src] = append(got[src], chunk...)
						return nil
					},
				})
				if err != nil {
					return err
				}
				for src := 0; src < p; src++ {
					if !bytes.Equal(got[src], payloads[src][me]) {
						return fmt.Errorf("rank %d: payload from %d differs", me, src)
					}
				}
				return nil
			})
		})
	}
}

// TestSDSSortStagedOverTCP is TestSDSSortOverTCP with a staging window:
// the end-to-end staged sort must survive the real fabric, not just the
// in-process one.
func TestSDSSortStagedOverTCP(t *testing.T) {
	const p, perRank = 4, 400
	var mu sync.Mutex
	outputs := make([][]float64, p)
	launch(t, p, func(rank int) int { return rank / 2 }, func(c *comm.Comm) error {
		data := workload.ZipfKeys(int64(c.Rank()+1), perRank, 1.4, 500)
		opt := core.DefaultOptions()
		opt.TauM = 0
		opt.StageBytes = 256
		out, err := core.Sort(c, data, codec.Float64{}, cmpF, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		outputs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	var flat []float64
	for _, part := range outputs {
		flat = append(flat, part...)
	}
	if len(flat) != p*perRank {
		t.Fatalf("record count %d, want %d", len(flat), p*perRank)
	}
	if !slices.IsSorted(flat) {
		t.Fatal("staged TCP sort output not globally sorted")
	}
}
