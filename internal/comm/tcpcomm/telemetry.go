package tcpcomm

import "sdssort/internal/telemetry"

// Register exposes the transport's wire counters on r. It lives here
// (subsystem -> telemetry) so the telemetry package stays a leaf the
// low-level packages can depend on without cycles.
func (st *Stats) Register(r *telemetry.Registry) {
	r.CounterFunc("sds_tcp_frames_sent_total", "Frames written to the wire (self-sends excluded).", telemetry.FInt(st.FramesSent.Load))
	r.CounterFunc("sds_tcp_bytes_sent_total", "Bytes written to the wire, headers included.", telemetry.FInt(st.BytesSent.Load))
	r.CounterFunc("sds_tcp_frames_received_total", "Frames read off accepted connections, duplicates included.", telemetry.FInt(st.FramesReceived.Load))
	r.CounterFunc("sds_tcp_bytes_received_total", "Bytes read off accepted connections, headers included.", telemetry.FInt(st.BytesReceived.Load))
	r.CounterFunc("sds_tcp_send_retries_total", "Send attempts retried after a failed dial or write.", telemetry.FInt(st.SendRetries.Load))
	r.CounterFunc("sds_tcp_connects_total", "First successful dials, one per destination.", telemetry.FInt(st.Connects.Load))
	r.CounterFunc("sds_tcp_reconnects_total", "Successful redials after a dropped connection.", telemetry.FInt(st.Reconnects.Load))
	r.CounterFunc("sds_tcp_dedup_dropped_total", "Received frames dropped as retransmitted duplicates.", telemetry.FInt(st.DedupDropped.Load))
	r.CounterFunc("sds_tcp_send_errors_total", "Sends that exhausted the retry budget (peer declared lost).", telemetry.FInt(st.SendErrors.Load))
	r.CounterFunc("sds_tcp_peers_lost_total", "Sources declared lost by the sequence-gap timer.", telemetry.FInt(st.PeersLost.Load))
	r.GaugeFunc("sds_tcp_inflight_sends", "Wire sends currently inside Send.", telemetry.FInt(st.InflightSends.Load))
}
