// Package tcpcomm is the TCP transport for the comm runtime: ranks in
// separate OS processes (or one process, for tests) exchanging
// length-prefixed binary frames over the network — the "custom RPC
// exchange" that stands in for MPI's network layer in this reproduction.
//
// Bootstrap: rank 0 doubles as the registry. Every rank dials the
// registry, announces (rank, listen address, node id), and receives the
// full address map once all ranks have registered. Data connections are
// then dialed lazily, one outgoing connection per (sender, receiver)
// pair; each accepted connection is drained by a reader goroutine into a
// tag-matched mailbox, so bulk all-to-all traffic cannot deadlock on TCP
// buffer backpressure.
package tcpcomm

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrameSize bounds a single message; larger frames indicate stream
// corruption and kill the connection rather than attempting a huge
// allocation.
const MaxFrameSize = 1 << 30

// ErrClosed is returned on operations against a closed transport.
var ErrClosed = errors.New("tcpcomm: closed")

// Config describes one rank's endpoint.
type Config struct {
	// Rank and Size identify this process within the world.
	Rank, Size int
	// Node is the physical-node id used for node-aware splitting;
	// ranks sharing a machine should share a Node value.
	Node int
	// Registry is the host:port the registry listens on. Rank 0 binds
	// it; everyone else dials it.
	Registry string
	// Listen is the address to bind the data listener on (use
	// "127.0.0.1:0" for tests; the registry learns the real port).
	Listen string
	// Timeout bounds registration and dialing (default 10s).
	Timeout time.Duration
}

func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 10 * time.Second
	}
	return c.Timeout
}

type peerInfo struct {
	Rank int    `json:"rank"`
	Addr string `json:"addr"`
	Node int    `json:"node"`
}

// Transport implements comm.Transport over TCP.
type Transport struct {
	cfg   Config
	ln    net.Listener
	peers []peerInfo // indexed by rank
	box   *mailbox

	connMu sync.Mutex
	conns  map[int]*sendConn

	acceptMu sync.Mutex
	accepted map[net.Conn]struct{}

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

type sendConn struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

// New creates the rank's endpoint, runs the registration barrier, and
// returns a ready transport. All ranks of the world must call New
// concurrently; the call blocks until every rank has registered.
func New(cfg Config) (*Transport, error) {
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("tcpcomm: bad rank/size %d/%d", cfg.Rank, cfg.Size)
	}
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("tcpcomm: listen: %w", err)
	}
	t := &Transport{
		cfg:      cfg,
		ln:       ln,
		box:      newMailbox(),
		conns:    make(map[int]*sendConn),
		accepted: make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	peers, err := t.register()
	if err != nil {
		ln.Close()
		return nil, err
	}
	t.peers = peers
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// register runs the bootstrap: rank 0 serves the registry, everyone
// announces itself and receives the address map.
func (t *Transport) register() ([]peerInfo, error) {
	self := peerInfo{Rank: t.cfg.Rank, Addr: t.ln.Addr().String(), Node: t.cfg.Node}
	if t.cfg.Rank == 0 {
		return t.serveRegistry(self)
	}
	return t.joinRegistry(self)
}

func (t *Transport) serveRegistry(self peerInfo) ([]peerInfo, error) {
	rln, err := net.Listen("tcp", t.cfg.Registry)
	if err != nil {
		return nil, fmt.Errorf("tcpcomm: registry listen %s: %w", t.cfg.Registry, err)
	}
	defer rln.Close()
	peers := make([]peerInfo, t.cfg.Size)
	peers[0] = self
	conns := make([]net.Conn, 0, t.cfg.Size-1)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	deadline := time.Now().Add(t.cfg.timeout())
	for registered := 1; registered < t.cfg.Size; {
		if tl, ok := rln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := rln.Accept()
		if err != nil {
			return nil, fmt.Errorf("tcpcomm: registry accept (%d/%d registered): %w", registered, t.cfg.Size, err)
		}
		var info peerInfo
		conn.SetDeadline(deadline)
		if err := json.NewDecoder(conn).Decode(&info); err != nil {
			conn.Close()
			return nil, fmt.Errorf("tcpcomm: registry decode: %w", err)
		}
		if info.Rank <= 0 || info.Rank >= t.cfg.Size {
			conn.Close()
			return nil, fmt.Errorf("tcpcomm: registration from invalid rank %d", info.Rank)
		}
		if peers[info.Rank].Addr != "" {
			conn.Close()
			return nil, fmt.Errorf("tcpcomm: duplicate registration for rank %d", info.Rank)
		}
		peers[info.Rank] = info
		conns = append(conns, conn)
		registered++
	}
	// Everyone is in: broadcast the map.
	blob, err := json.Marshal(peers)
	if err != nil {
		return nil, err
	}
	for _, c := range conns {
		if _, err := c.Write(append(blob, '\n')); err != nil {
			return nil, fmt.Errorf("tcpcomm: registry broadcast: %w", err)
		}
	}
	return peers, nil
}

func (t *Transport) joinRegistry(self peerInfo) ([]peerInfo, error) {
	deadline := time.Now().Add(t.cfg.timeout())
	var conn net.Conn
	var err error
	// The registry may come up after us: retry until the deadline.
	for {
		conn, err = net.DialTimeout("tcp", t.cfg.Registry, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcpcomm: dial registry %s: %w", t.cfg.Registry, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	if err := json.NewEncoder(conn).Encode(self); err != nil {
		return nil, fmt.Errorf("tcpcomm: register: %w", err)
	}
	var peers []peerInfo
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&peers); err != nil {
		return nil, fmt.Errorf("tcpcomm: receive peer map: %w", err)
	}
	if len(peers) != t.cfg.Size {
		return nil, fmt.Errorf("tcpcomm: peer map has %d entries, want %d", len(peers), t.cfg.Size)
	}
	return peers, nil
}

// Rank implements comm.Transport.
func (t *Transport) Rank() int { return t.cfg.Rank }

// Size implements comm.Transport.
func (t *Transport) Size() int { return t.cfg.Size }

// Node implements comm.Transport.
func (t *Transport) Node() int { return t.cfg.Node }

// NodeOf implements comm.Transport.
func (t *Transport) NodeOf(r int) int { return t.peers[r].Node }

// frame layout: src int32 | ctx uint64 | tag int32 | len uint32 | body.
const frameHeader = 4 + 8 + 4 + 4

// Send implements comm.Transport: it dials (or reuses) the connection
// to dst and writes one frame. Frames to self short-circuit through the
// mailbox.
func (t *Transport) Send(dst int, ctx uint64, tag int32, data []byte) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if dst < 0 || dst >= t.cfg.Size {
		return fmt.Errorf("tcpcomm: send to rank %d out of range", dst)
	}
	if len(data) > MaxFrameSize {
		return fmt.Errorf("tcpcomm: frame of %d bytes exceeds limit", len(data))
	}
	if dst == t.cfg.Rank {
		cp := append([]byte(nil), data...)
		return t.box.put(message{src: t.cfg.Rank, ctx: ctx, tag: tag, data: cp})
	}
	sc, err := t.conn(dst)
	if err != nil {
		return err
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(t.cfg.Rank))
	binary.LittleEndian.PutUint64(hdr[4:], ctx)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(tag))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(data)))

	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, err := sc.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("tcpcomm: write header to %d: %w", dst, err)
	}
	if _, err := sc.w.Write(data); err != nil {
		return fmt.Errorf("tcpcomm: write body to %d: %w", dst, err)
	}
	if err := sc.w.Flush(); err != nil {
		return fmt.Errorf("tcpcomm: flush to %d: %w", dst, err)
	}
	return nil
}

func (t *Transport) conn(dst int) (*sendConn, error) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if sc, ok := t.conns[dst]; ok {
		return sc, nil
	}
	c, err := net.DialTimeout("tcp", t.peers[dst].Addr, t.cfg.timeout())
	if err != nil {
		return nil, fmt.Errorf("tcpcomm: dial rank %d at %s: %w", dst, t.peers[dst].Addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Identify ourselves so the acceptor can label the stream.
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(t.cfg.Rank))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpcomm: hello to rank %d: %w", dst, err)
	}
	sc := &sendConn{w: bufio.NewWriterSize(c, 256<<10), c: c}
	t.conns[dst] = sc
	return sc, nil
}

// Recv implements comm.Transport.
func (t *Transport) Recv(src int, ctx uint64, tag int32) ([]byte, error) {
	if src < 0 || src >= t.cfg.Size {
		return nil, fmt.Errorf("tcpcomm: recv from rank %d out of range", src)
	}
	return t.box.take(src, ctx, tag)
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			// Listener error outside shutdown: stop accepting; the
			// mailbox stays open for already-connected peers.
			return
		}
		t.acceptMu.Lock()
		t.accepted[conn] = struct{}{}
		t.acceptMu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.acceptMu.Lock()
		delete(t.accepted, conn)
		t.acceptMu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 256<<10)
	var hello [4]byte
	if _, err := io.ReadFull(r, hello[:]); err != nil {
		return
	}
	src := int(binary.LittleEndian.Uint32(hello[:]))
	if src < 0 || src >= t.cfg.Size {
		return
	}
	for {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		frameSrc := int(binary.LittleEndian.Uint32(hdr[0:]))
		ctx := binary.LittleEndian.Uint64(hdr[4:])
		tag := int32(binary.LittleEndian.Uint32(hdr[12:]))
		n := binary.LittleEndian.Uint32(hdr[16:])
		if frameSrc != src || n > MaxFrameSize {
			// Corrupt stream: drop the connection. Pending receives
			// will surface when the transport closes.
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return
		}
		if t.box.put(message{src: src, ctx: ctx, tag: tag, data: body}) != nil {
			return
		}
	}
}

// Close implements comm.Transport: it stops the listener, closes all
// connections, and unblocks pending receives with ErrClosed.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.connMu.Lock()
		for _, sc := range t.conns {
			sc.c.Close()
		}
		t.connMu.Unlock()
		// Close accepted connections too, or their reader goroutines
		// would block until the remote side also shut down.
		t.acceptMu.Lock()
		for c := range t.accepted {
			c.Close()
		}
		t.acceptMu.Unlock()
		t.box.close()
	})
	t.wg.Wait()
	return nil
}
