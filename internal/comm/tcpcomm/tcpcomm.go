// Package tcpcomm is the TCP transport for the comm runtime: ranks in
// separate OS processes (or one process, for tests) exchanging
// length-prefixed binary frames over the network — the "custom RPC
// exchange" that stands in for MPI's network layer in this reproduction.
//
// Bootstrap: rank 0 doubles as the registry. Every rank dials the
// registry (with backoff, since the registry may come up late),
// announces (rank, listen address, node id), and receives the full
// address map once all ranks have registered. Data connections are
// then dialed lazily, one outgoing connection per (sender, receiver)
// pair; each accepted connection is drained by a reader goroutine into a
// tag-matched mailbox, so bulk all-to-all traffic cannot deadlock on TCP
// buffer backpressure.
//
// Robustness: the send path retries under Config.Retry — a failed dial
// or frame write closes the connection, backs off (capped exponential
// with jitter) and reconnects transparently. Every frame carries a
// per-destination sequence number; the receiver drops sequences it has
// already delivered (a frame retransmitted across a reconnect arrives
// exactly once) and reorders frames that the racing old- and
// new-connection readers deliver out of order. A sequence gap that
// persists past Config.GapTimeout means frames the kernel accepted
// were never delivered; that poisons the peer's mailbox with
// comm.ErrPeerLost instead of hanging receives. When the send budget
// is exhausted, Send fails with comm.ErrPeerLost naming the peer.
// Config.RecvTimeout optionally bounds Recv as a crude failure
// detector for peers that die silently.
package tcpcomm

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sdssort/internal/comm"
)

// MaxFrameSize bounds a single message; larger frames indicate stream
// corruption and kill the connection rather than attempting a huge
// allocation.
const MaxFrameSize = 1 << 30

// ErrClosed is returned on operations against a closed transport.
var ErrClosed = errors.New("tcpcomm: closed")

// errRecvTimeout marks a Recv that outwaited Config.RecvTimeout; it is
// surfaced wrapped in comm.ErrPeerLost.
var errRecvTimeout = errors.New("tcpcomm: receive timed out")

// Config describes one rank's endpoint.
type Config struct {
	// Rank and Size identify this process within the world.
	Rank, Size int
	// Node is the physical-node id used for node-aware splitting;
	// ranks sharing a machine should share a Node value.
	Node int
	// Epoch is the recovery epoch this endpoint participates in. The
	// coordinator (rank 0) is authoritative: it announces its epoch in
	// the registration broadcast and every worker adopts it, so a
	// worker respawned by a supervisor only needs the registry address
	// to rejoin at the right epoch. Connections whose hello carries a
	// different epoch are dropped on accept — frames from a torn-down
	// epoch can never reach a live one.
	Epoch int
	// Registry is the host:port the registry listens on. Rank 0 binds
	// it; everyone else dials it.
	Registry string
	// Listen is the address to bind the data listener on (use
	// "127.0.0.1:0" for tests; the registry learns the real port).
	Listen string
	// Timeout bounds registration and each data dial (default 10s).
	Timeout time.Duration
	// Retry is the per-frame retry budget for the data send path:
	// dial failures and write errors reconnect and retransmit under
	// this policy, and exhausting it yields comm.ErrPeerLost. Zero
	// fields take comm.DefaultRetryPolicy values.
	Retry comm.RetryPolicy
	// SendTimeout is the per-connection write deadline applied to each
	// frame (default 30s). A stalled peer therefore consumes at most
	// SendTimeout × Retry.MaxAttempts before the sender gives up.
	SendTimeout time.Duration
	// RecvTimeout, when positive, bounds how long Recv waits for a
	// matching frame before failing with comm.ErrPeerLost — a crude
	// failure detector for silently dead peers. The default 0 waits
	// forever, matching MPI semantics.
	RecvTimeout time.Duration
	// GapTimeout bounds how long a sequence gap may persist (default
	// 5s). Across a reconnect the old and new connections' readers
	// race, so frames can arrive out of order; they are reordered in a
	// per-source buffer. A gap that outlives GapTimeout means frames
	// the old connection's kernel accepted were never delivered — the
	// source is declared lost rather than letting receives hang.
	GapTimeout time.Duration
}

func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 10 * time.Second
	}
	return c.Timeout
}

func (c Config) sendTimeout() time.Duration {
	if c.SendTimeout <= 0 {
		return 30 * time.Second
	}
	return c.SendTimeout
}

func (c Config) gapTimeout() time.Duration {
	if c.GapTimeout <= 0 {
		return 5 * time.Second
	}
	return c.GapTimeout
}

type peerInfo struct {
	Rank  int    `json:"rank"`
	Addr  string `json:"addr"`
	Node  int    `json:"node"`
	Epoch int    `json:"epoch"`
}

// Stats are the transport's cumulative wire counters, updated with
// atomics on the data path and exported live by the telemetry plane.
// Self-sends short-circuit through the mailbox without touching the
// wire and are deliberately not counted. All fields except
// InflightSends are monotonic.
type Stats struct {
	// FramesSent/BytesSent cover frames (header included) that reached
	// a successful write+flush; a frame retransmitted across a
	// reconnect counts once per transmission.
	FramesSent, BytesSent atomic.Int64
	// FramesReceived/BytesReceived cover every frame read off an
	// accepted connection, duplicates included (dedup happens after).
	FramesReceived, BytesReceived atomic.Int64
	// SendRetries counts retry attempts after a failed dial or write.
	SendRetries atomic.Int64
	// Connects counts first successful dials per destination;
	// Reconnects counts successful redials after a drop.
	Connects, Reconnects atomic.Int64
	// DedupDropped counts received frames discarded as retransmitted
	// duplicates (sequence already delivered).
	DedupDropped atomic.Int64
	// SendErrors counts sends that exhausted the retry budget and
	// returned comm.ErrPeerLost.
	SendErrors atomic.Int64
	// PeersLost counts sources declared lost by the gap timer.
	PeersLost atomic.Int64
	// InflightSends is a gauge: wire sends currently inside Send.
	InflightSends atomic.Int64
}

// Transport implements comm.Transport over TCP.
type Transport struct {
	cfg   Config
	retry *comm.Retrier
	ln    net.Listener
	peers []peerInfo // indexed by rank
	epoch int        // effective epoch: the coordinator's, not necessarily cfg.Epoch
	box   *mailbox
	stats Stats

	connMu sync.Mutex
	conns  map[int]*sendConn

	seqMu   sync.Mutex
	streams map[int]*srcStream // per-source reorder/dedup state

	acceptMu sync.Mutex
	accepted map[net.Conn]struct{}

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// srcStream is the receive-side state for one source rank: the next
// expected frame sequence, frames that arrived ahead of it (old and
// new connections race across a reconnect), and the timer that turns
// a persistent gap into a lost-peer verdict.
type srcStream struct {
	expected uint64
	pending  map[uint64]message
	gap      *time.Timer
}

// sendConn is the persistent per-destination sender state. The
// connection inside it may die and be redialed; the frame sequence
// counter survives reconnects so the receiver can dedup retransmits.
type sendConn struct {
	mu     sync.Mutex
	c      net.Conn // nil while disconnected
	w      *bufio.Writer
	seq    uint64 // next frame sequence on this stream
	dialed bool   // a dial has succeeded before (redials are reconnects)
}

// New creates the rank's endpoint, runs the registration barrier, and
// returns a ready transport. All ranks of the world must call New
// concurrently; the call blocks until every rank has registered.
func New(cfg Config) (*Transport, error) {
	if cfg.Size <= 0 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("tcpcomm: bad rank/size %d/%d", cfg.Rank, cfg.Size)
	}
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("tcpcomm: listen: %w", err)
	}
	t := &Transport{
		cfg:      cfg,
		retry:    comm.NewRetrier(cfg.Retry),
		ln:       ln,
		box:      newMailbox(),
		conns:    make(map[int]*sendConn),
		streams:  make(map[int]*srcStream),
		accepted: make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	peers, err := t.register()
	if err != nil {
		ln.Close()
		return nil, err
	}
	t.peers = peers
	// Adopt the coordinator's recovery epoch: a respawned worker joins
	// whatever epoch rank 0 announced, regardless of its own cfg.
	t.epoch = peers[0].Epoch
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// register runs the bootstrap: rank 0 serves the registry, everyone
// announces itself and receives the address map.
func (t *Transport) register() ([]peerInfo, error) {
	self := peerInfo{Rank: t.cfg.Rank, Addr: t.ln.Addr().String(), Node: t.cfg.Node, Epoch: t.cfg.Epoch}
	if t.cfg.Rank == 0 {
		return t.serveRegistry(self)
	}
	return t.joinRegistry(self)
}

func (t *Transport) serveRegistry(self peerInfo) ([]peerInfo, error) {
	rln, err := net.Listen("tcp", t.cfg.Registry)
	if err != nil {
		return nil, fmt.Errorf("tcpcomm: registry listen %s: %w", t.cfg.Registry, err)
	}
	defer rln.Close()
	peers := make([]peerInfo, t.cfg.Size)
	peers[0] = self
	conns := make([]net.Conn, 0, t.cfg.Size-1)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	deadline := time.Now().Add(t.cfg.timeout())
	for registered := 1; registered < t.cfg.Size; {
		if tl, ok := rln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := rln.Accept()
		if err != nil {
			return nil, fmt.Errorf("tcpcomm: registry accept (%d/%d registered): %w", registered, t.cfg.Size, err)
		}
		var info peerInfo
		conn.SetDeadline(deadline)
		if err := json.NewDecoder(conn).Decode(&info); err != nil {
			conn.Close()
			return nil, fmt.Errorf("tcpcomm: registry decode: %w", err)
		}
		if info.Rank <= 0 || info.Rank >= t.cfg.Size {
			conn.Close()
			return nil, fmt.Errorf("tcpcomm: registration from invalid rank %d", info.Rank)
		}
		if peers[info.Rank].Addr != "" {
			conn.Close()
			return nil, fmt.Errorf("tcpcomm: duplicate registration for rank %d", info.Rank)
		}
		peers[info.Rank] = info
		conns = append(conns, conn)
		registered++
	}
	// Everyone is in: broadcast the map.
	blob, err := json.Marshal(peers)
	if err != nil {
		return nil, err
	}
	for _, c := range conns {
		if _, err := c.Write(append(blob, '\n')); err != nil {
			return nil, fmt.Errorf("tcpcomm: registry broadcast: %w", err)
		}
	}
	return peers, nil
}

func (t *Transport) joinRegistry(self peerInfo) ([]peerInfo, error) {
	deadline := time.Now().Add(t.cfg.timeout())
	var conn net.Conn
	var err error
	// The registry may come up after us: redial under the backoff
	// schedule until the overall registration deadline.
	for attempt := 0; ; attempt++ {
		conn, err = net.DialTimeout("tcp", t.cfg.Registry, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcpcomm: dial registry %s: %w", t.cfg.Registry, err)
		}
		time.Sleep(t.retry.Backoff(min(attempt, 6)))
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	if err := json.NewEncoder(conn).Encode(self); err != nil {
		return nil, fmt.Errorf("tcpcomm: register: %w", err)
	}
	var peers []peerInfo
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&peers); err != nil {
		return nil, fmt.Errorf("tcpcomm: receive peer map: %w", err)
	}
	if len(peers) != t.cfg.Size {
		return nil, fmt.Errorf("tcpcomm: peer map has %d entries, want %d", len(peers), t.cfg.Size)
	}
	return peers, nil
}

// Rank implements comm.Transport.
func (t *Transport) Rank() int { return t.cfg.Rank }

// Size implements comm.Transport.
func (t *Transport) Size() int { return t.cfg.Size }

// Node implements comm.Transport.
func (t *Transport) Node() int { return t.cfg.Node }

// NodeOf implements comm.Transport.
func (t *Transport) NodeOf(r int) int { return t.peers[r].Node }

// Epoch returns the recovery epoch this transport runs in — the one
// the coordinator announced at registration, which may differ from the
// worker's own Config.Epoch after a supervised restart.
func (t *Transport) Epoch() int { return t.epoch }

// Stats exposes the transport's live wire counters. The returned
// pointer stays valid for the transport's lifetime; read its fields
// with their atomic loads.
func (t *Transport) Stats() *Stats { return &t.stats }

// frame layout: src int32 | ctx uint64 | tag int32 | len uint32 |
// seq uint64 | body. seq increases per (src, dst) pair and survives
// reconnects, carrying the retransmit-dedup contract.
const frameHeader = 4 + 8 + 4 + 4 + 8

// Send implements comm.Transport: it writes one frame on the (possibly
// redialed) connection to dst, retrying dial and write failures under
// the configured budget. Frames to self short-circuit through the
// mailbox. Budget exhaustion returns *comm.ErrPeerLost.
func (t *Transport) Send(dst int, ctx uint64, tag int32, data []byte) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if dst < 0 || dst >= t.cfg.Size {
		return fmt.Errorf("tcpcomm: send to rank %d out of range", dst)
	}
	if len(data) > MaxFrameSize {
		return fmt.Errorf("tcpcomm: frame of %d bytes exceeds limit", len(data))
	}
	if dst == t.cfg.Rank {
		cp := append([]byte(nil), data...)
		return t.box.put(message{src: t.cfg.Rank, ctx: ctx, tag: tag, data: cp})
	}

	sc := t.sendState(dst)
	t.stats.InflightSends.Add(1)
	defer t.stats.InflightSends.Add(-1)
	// The per-destination lock is held across reconnects and
	// retransmits, so frames (and their sequence numbers) reach the
	// wire in assignment order even under concurrent Isends.
	sc.mu.Lock()
	defer sc.mu.Unlock()
	seq := sc.seq
	sc.seq++

	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(t.cfg.Rank))
	binary.LittleEndian.PutUint64(hdr[4:], ctx)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(tag))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(data)))
	binary.LittleEndian.PutUint64(hdr[20:], seq)

	var lastErr error
	for attempt := 0; attempt < t.retry.Policy().MaxAttempts; attempt++ {
		if attempt > 0 {
			t.stats.SendRetries.Add(1)
			select {
			case <-time.After(t.retry.Backoff(attempt - 1)):
			case <-t.closed:
				return ErrClosed
			}
		}
		select {
		case <-t.closed:
			return ErrClosed
		default:
		}
		if err := t.ensureConn(sc, dst); err != nil {
			lastErr = err
			continue
		}
		sc.c.SetWriteDeadline(time.Now().Add(t.cfg.sendTimeout()))
		if err := writeFrame(sc.w, hdr, data); err != nil {
			lastErr = fmt.Errorf("tcpcomm: write to rank %d: %w", dst, err)
			dropLocked(sc)
			continue
		}
		sc.c.SetWriteDeadline(time.Time{})
		t.stats.FramesSent.Add(1)
		t.stats.BytesSent.Add(int64(frameHeader + len(data)))
		return nil
	}
	t.stats.SendErrors.Add(1)
	return &comm.ErrPeerLost{Rank: dst, Err: lastErr}
}

func writeFrame(w *bufio.Writer, hdr [frameHeader]byte, data []byte) error {
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Flush()
}

// sendState returns (creating if needed) the persistent sender state
// for dst without dialing.
func (t *Transport) sendState(dst int) *sendConn {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	sc, ok := t.conns[dst]
	if !ok {
		sc = &sendConn{}
		t.conns[dst] = sc
	}
	return sc
}

// ensureConn dials dst if sc currently has no live connection. The
// caller holds sc.mu.
func (t *Transport) ensureConn(sc *sendConn, dst int) error {
	if sc.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", t.peers[dst].Addr, t.cfg.timeout())
	if err != nil {
		return fmt.Errorf("tcpcomm: dial rank %d at %s: %w", dst, t.peers[dst].Addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Identify ourselves — rank and epoch — so the acceptor can label
	// the stream and reject connections from stale epochs.
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(t.cfg.Rank))
	binary.LittleEndian.PutUint32(hello[4:], uint32(t.epoch))
	c.SetWriteDeadline(time.Now().Add(t.cfg.sendTimeout()))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return fmt.Errorf("tcpcomm: hello to rank %d: %w", dst, err)
	}
	c.SetWriteDeadline(time.Time{})
	sc.c = c
	sc.w = bufio.NewWriterSize(c, 256<<10)
	if sc.dialed {
		t.stats.Reconnects.Add(1)
	} else {
		sc.dialed = true
		t.stats.Connects.Add(1)
	}
	return nil
}

// dropLocked severs sc's connection (caller holds sc.mu); the next
// attempt redials.
func dropLocked(sc *sendConn) {
	if sc.c != nil {
		sc.c.Close()
		sc.c = nil
		sc.w = nil
	}
}

// dropConn severs the cached data connection to dst, if any. Tests use
// it to simulate a connection loss between frames.
func (t *Transport) dropConn(dst int) bool {
	t.connMu.Lock()
	sc := t.conns[dst]
	t.connMu.Unlock()
	if sc == nil {
		return false
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	had := sc.c != nil
	dropLocked(sc)
	return had
}

// Recv implements comm.Transport. With Config.RecvTimeout set, waiting
// longer than the timeout fails with *comm.ErrPeerLost for src.
func (t *Transport) Recv(src int, ctx uint64, tag int32) ([]byte, error) {
	if src < 0 || src >= t.cfg.Size {
		return nil, fmt.Errorf("tcpcomm: recv from rank %d out of range", src)
	}
	data, err := t.box.take(src, ctx, tag, t.cfg.RecvTimeout)
	if errors.Is(err, errRecvTimeout) {
		return nil, &comm.ErrPeerLost{Rank: src, Err: err}
	}
	return data, err
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			// Listener error outside shutdown: stop accepting; the
			// mailbox stays open for already-connected peers.
			return
		}
		t.acceptMu.Lock()
		t.accepted[conn] = struct{}{}
		t.acceptMu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// admitFrame applies the retransmit-dedup and reorder contract for a
// frame from src. Duplicates (sequence already delivered) are dropped
// silently. A frame ahead of the expected sequence is buffered — the
// old and new connections' readers race across a reconnect — and a gap
// timer is armed; if the gap fills, the buffer drains in order, and if
// it outlives Config.GapTimeout the source is declared lost. The
// returned error is non-nil only when the mailbox is closed.
func (t *Transport) admitFrame(src int, seq uint64, m message) error {
	t.seqMu.Lock()
	defer t.seqMu.Unlock()
	s := t.streams[src]
	if s == nil {
		s = &srcStream{pending: make(map[uint64]message)}
		t.streams[src] = s
	}
	if seq < s.expected {
		t.stats.DedupDropped.Add(1)
		return nil // retransmitted duplicate
	}
	if seq > s.expected {
		s.pending[seq] = m
		if s.gap == nil {
			s.gap = time.AfterFunc(t.cfg.gapTimeout(), func() { t.gapExpired(src) })
		}
		return nil
	}
	if err := t.box.put(m); err != nil {
		return err
	}
	s.expected++
	for {
		next, ok := s.pending[s.expected]
		if !ok {
			break
		}
		delete(s.pending, s.expected)
		if err := t.box.put(next); err != nil {
			return err
		}
		s.expected++
	}
	if len(s.pending) == 0 && s.gap != nil {
		s.gap.Stop()
		s.gap = nil
	}
	return nil
}

// gapExpired fires when a sequence gap from src persisted for the full
// GapTimeout: the missing frames were accepted by a now-dead
// connection's kernel and will never arrive, so src's mailbox is
// poisoned with comm.ErrPeerLost instead of letting receives hang.
func (t *Transport) gapExpired(src int) {
	t.seqMu.Lock()
	s := t.streams[src]
	if s == nil || len(s.pending) == 0 {
		if s != nil {
			s.gap = nil
		}
		t.seqMu.Unlock()
		return
	}
	s.gap = nil
	lo := s.expected
	first := true
	for q := range s.pending {
		if first || q < lo {
			lo = q
			first = false
		}
	}
	missing := lo - s.expected
	t.seqMu.Unlock()
	t.stats.PeersLost.Add(1)
	t.box.fail(src, &comm.ErrPeerLost{
		Rank: src,
		Err:  fmt.Errorf("tcpcomm: %d frame(s) from rank %d lost across reconnect", missing, src),
	})
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.acceptMu.Lock()
		delete(t.accepted, conn)
		t.acceptMu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 256<<10)
	var hello [8]byte
	if _, err := io.ReadFull(r, hello[:]); err != nil {
		return
	}
	src := int(binary.LittleEndian.Uint32(hello[:]))
	if src < 0 || src >= t.cfg.Size {
		return
	}
	if epoch := int(binary.LittleEndian.Uint32(hello[4:])); epoch != t.epoch {
		// Stale-epoch connection: a sender from a torn-down epoch (or
		// one that has already moved on) found our listener. Dropping
		// the connection here drops every frame it would carry —
		// recovery epochs never see each other's traffic.
		return
	}
	for {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		frameSrc := int(binary.LittleEndian.Uint32(hdr[0:]))
		ctx := binary.LittleEndian.Uint64(hdr[4:])
		tag := int32(binary.LittleEndian.Uint32(hdr[12:]))
		n := binary.LittleEndian.Uint32(hdr[16:])
		seq := binary.LittleEndian.Uint64(hdr[20:])
		if frameSrc != src || n > MaxFrameSize {
			// Corrupt stream: drop the connection. Pending receives
			// will surface when the transport closes.
			return
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return
		}
		t.stats.FramesReceived.Add(1)
		t.stats.BytesReceived.Add(int64(frameHeader) + int64(n))
		if t.admitFrame(src, seq, message{src: src, ctx: ctx, tag: tag, data: body}) != nil {
			return
		}
	}
}

// Close implements comm.Transport: it stops the listener, closes all
// connections, and unblocks pending receives with ErrClosed.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.connMu.Lock()
		conns := make([]*sendConn, 0, len(t.conns))
		for _, sc := range t.conns {
			conns = append(conns, sc)
		}
		t.connMu.Unlock()
		for _, sc := range conns {
			sc.mu.Lock()
			dropLocked(sc)
			sc.mu.Unlock()
		}
		// Close accepted connections too, or their reader goroutines
		// would block until the remote side also shut down.
		t.acceptMu.Lock()
		for c := range t.accepted {
			c.Close()
		}
		t.acceptMu.Unlock()
		t.seqMu.Lock()
		for _, s := range t.streams {
			if s.gap != nil {
				s.gap.Stop()
				s.gap = nil
			}
		}
		t.seqMu.Unlock()
		t.box.close()
	})
	t.wg.Wait()
	return nil
}
