package tcpcomm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sdssort/internal/telemetry"
)

// TestStatsWireCounters checks the transport's exported counters track
// real wire activity: frame/byte totals on both ends, the one-time
// connect, and the self-send exclusion.
func TestStatsWireCounters(t *testing.T) {
	t0, t1 := bootPair(t, nil)
	defer t0.Close()
	defer t1.Close()

	// Bootstrap may have exchanged frames; measure deltas from here.
	sent0, bytes0 := t0.Stats().FramesSent.Load(), t0.Stats().BytesSent.Load()
	recv1, bytes1 := t1.Stats().FramesReceived.Load(), t1.Stats().BytesReceived.Load()

	const n = 5
	var payload int64
	err := faultWithin(t, 20*time.Second, func() error {
		for i := 0; i < n; i++ {
			data := make([]byte, 10+i)
			payload += int64(len(data))
			if err := t0.Send(1, 7, 1, data); err != nil {
				return err
			}
		}
		for i := 0; i < n; i++ {
			if _, err := t1.Recv(0, 7, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := t0.Stats().FramesSent.Load() - sent0; got != n {
		t.Errorf("FramesSent delta = %d, want %d", got, n)
	}
	wantBytes := payload + n*frameHeader
	if got := t0.Stats().BytesSent.Load() - bytes0; got != wantBytes {
		t.Errorf("BytesSent delta = %d, want %d", got, wantBytes)
	}
	if got := t1.Stats().FramesReceived.Load() - recv1; got != n {
		t.Errorf("FramesReceived delta = %d, want %d", got, n)
	}
	if got := t1.Stats().BytesReceived.Load() - bytes1; got != wantBytes {
		t.Errorf("BytesReceived delta = %d, want %d", got, wantBytes)
	}
	if got := t0.Stats().Connects.Load(); got < 1 {
		t.Errorf("Connects = %d, want >= 1", got)
	}
	if got := t0.Stats().SendErrors.Load(); got != 0 {
		t.Errorf("SendErrors = %d on a healthy fabric", got)
	}

	// Self-sends take the mailbox shortcut and must not touch the wire
	// counters.
	before := t0.Stats().FramesSent.Load()
	if err := t0.Send(0, 7, 2, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	if _, err := t0.Recv(0, 7, 2); err != nil {
		t.Fatal(err)
	}
	if got := t0.Stats().FramesSent.Load(); got != before {
		t.Errorf("self-send hit the wire counters: %d -> %d", before, got)
	}
	if got := t0.Stats().InflightSends.Load(); got != 0 {
		t.Errorf("InflightSends = %d at rest", got)
	}
}

// TestStatsReconnectCounters drops the cached connection mid-stream and
// checks the retry and reconnect counters record the recovery the
// frames themselves hide.
func TestStatsReconnectCounters(t *testing.T) {
	t0, t1 := bootPair(t, func(r int, cfg *Config) { cfg.Retry = fastRetry() })
	defer t0.Close()
	defer t1.Close()

	const n = 30
	err := faultWithin(t, 30*time.Second, func() error {
		for i := 0; i < n; i++ {
			if err := t0.Send(1, 7, 1, []byte{byte(i)}); err != nil {
				return fmt.Errorf("send %d: %w", i, err)
			}
			if i%10 == 9 {
				if !t0.dropConn(1) {
					return fmt.Errorf("no live connection to drop at frame %d", i)
				}
			}
		}
		for i := 0; i < n; i++ {
			data, err := t1.Recv(0, 7, 1)
			if err != nil {
				return fmt.Errorf("recv %d: %w", i, err)
			}
			if len(data) != 1 || data[0] != byte(i) {
				return fmt.Errorf("frame %d arrived as %v", i, data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := t0.Stats()
	if got := st.Reconnects.Load(); got < 1 {
		t.Errorf("Reconnects = %d after dropped connections, want >= 1", got)
	}
	// (SendRetries stays 0 here: a dropped cached connection redials on
	// the next send's first attempt. Retries need a mid-write failure,
	// which the fault-injection suite covers.)
	// Exactly-once delivery means every retransmitted duplicate was
	// dropped, never surfaced: the receiver saw each frame once above,
	// and FramesSent >= n accounts for the retransmissions.
	if got := st.FramesSent.Load(); got < n {
		t.Errorf("FramesSent = %d, want >= %d", got, n)
	}
}

// TestStatsRegister checks the collector exposes every wire counter
// under its documented name.
func TestStatsRegister(t *testing.T) {
	t0, t1 := bootPair(t, nil)
	defer t0.Close()
	defer t1.Close()
	reg := telemetry.NewRegistry()
	t0.Stats().Register(reg)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"sds_tcp_frames_sent_total", "sds_tcp_bytes_sent_total",
		"sds_tcp_frames_received_total", "sds_tcp_bytes_received_total",
		"sds_tcp_send_retries_total", "sds_tcp_connects_total",
		"sds_tcp_reconnects_total", "sds_tcp_dedup_dropped_total",
		"sds_tcp_send_errors_total", "sds_tcp_peers_lost_total",
		"sds_tcp_inflight_sends",
	} {
		if !strings.Contains(b.String(), "# TYPE "+name+" ") {
			t.Errorf("scrape missing %s", name)
		}
	}
}
