package tcpcomm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"testing"
	"time"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/workload"
)

// freePort grabs an available localhost port for the registry.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// launch brings up a full TCP world of size ranks in-process and runs fn
// per rank.
func launch(t *testing.T, size int, nodeOf func(rank int) int, fn func(c *comm.Comm) error) {
	t.Helper()
	registry := freePort(t)
	var wg sync.WaitGroup
	errs := make([]error, size)
	transports := make([]*Transport, size)
	var mu sync.Mutex
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node := 0
			if nodeOf != nil {
				node = nodeOf(rank)
			}
			tr, err := New(Config{
				Rank: rank, Size: size, Node: node,
				Registry: registry, Timeout: 15 * time.Second,
			})
			if err != nil {
				errs[rank] = fmt.Errorf("bootstrap: %w", err)
				return
			}
			mu.Lock()
			transports[rank] = tr
			mu.Unlock()
			errs[rank] = fn(comm.New(tr))
		}(r)
	}
	wg.Wait()
	for _, tr := range transports {
		if tr != nil {
			tr.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBootstrapAndPointToPoint(t *testing.T) {
	launch(t, 3, nil, func(c *comm.Comm) error {
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		if err := c.Send(next, 1, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		data, err := c.Recv(prev, 1)
		if err != nil {
			return err
		}
		if len(data) != 1 || data[0] != byte(prev) {
			return fmt.Errorf("got %v from %d", data, prev)
		}
		return nil
	})
}

func TestSelfSend(t *testing.T) {
	launch(t, 2, nil, func(c *comm.Comm) error {
		if err := c.Send(c.Rank(), 2, []byte("me")); err != nil {
			return err
		}
		data, err := c.Recv(c.Rank(), 2)
		if err != nil {
			return err
		}
		if string(data) != "me" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
}

func TestLargeFrames(t *testing.T) {
	const size = 1 << 20 // 1 MiB
	launch(t, 2, nil, func(c *comm.Comm) error {
		if c.Rank() == 0 {
			buf := make([]byte, size)
			for i := range buf {
				buf[i] = byte(i * 31)
			}
			return c.Send(1, 3, buf)
		}
		data, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if len(data) != size {
			return fmt.Errorf("got %d bytes", len(data))
		}
		for i := 0; i < size; i += 4099 {
			if data[i] != byte(i*31) {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
}

func TestFIFOPerTag(t *testing.T) {
	launch(t, 2, nil, func(c *comm.Comm) error {
		const n = 200
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 4, []byte{byte(i), byte(i >> 8)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, err := c.Recv(0, 4)
			if err != nil {
				return err
			}
			got := int(data[0]) | int(data[1])<<8
			if got != i {
				return fmt.Errorf("message %d arrived as %d", i, got)
			}
		}
		return nil
	})
}

func TestCollectivesOverTCP(t *testing.T) {
	launch(t, 4, nil, func(c *comm.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		vals, err := c.AllgatherInt64(int64(c.Rank() + 1))
		if err != nil {
			return err
		}
		for r, v := range vals {
			if v != int64(r+1) {
				return fmt.Errorf("vals[%d]=%d", r, v)
			}
		}
		parts := make([][]byte, 4)
		for dst := range parts {
			parts[dst] = []byte{byte(c.Rank()), byte(dst)}
		}
		out, err := c.Alltoall(parts)
		if err != nil {
			return err
		}
		for src := range out {
			if out[src][0] != byte(src) || out[src][1] != byte(c.Rank()) {
				return fmt.Errorf("alltoall from %d: %v", src, out[src])
			}
		}
		return nil
	})
}

func TestSplitByNodeOverTCP(t *testing.T) {
	launch(t, 4, func(rank int) int { return rank / 2 }, func(c *comm.Comm) error {
		local, leaders, err := c.SplitByNode()
		if err != nil {
			return err
		}
		if local.Size() != 2 {
			return fmt.Errorf("local size %d", local.Size())
		}
		if c.Rank()%2 == 0 && leaders == nil {
			return errors.New("leader missing leaders comm")
		}
		return nil
	})
}

// TestSDSSortOverTCP runs the full SDS-Sort over the TCP transport —
// the end-to-end "distributed" configuration.
func TestSDSSortOverTCP(t *testing.T) {
	const p, perRank = 4, 400
	var mu sync.Mutex
	outputs := make([][]float64, p)
	launch(t, p, func(rank int) int { return rank / 2 }, func(c *comm.Comm) error {
		data := workload.ZipfKeys(int64(c.Rank()+1), perRank, 1.4, 500)
		opt := core.DefaultOptions()
		out, err := core.Sort(c, data, codec.Float64{}, cmpF, opt)
		if err != nil {
			return err
		}
		mu.Lock()
		outputs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	var flat []float64
	for _, part := range outputs {
		flat = append(flat, part...)
	}
	if len(flat) != p*perRank {
		t.Fatalf("record count %d, want %d", len(flat), p*perRank)
	}
	if !slices.IsSorted(flat) {
		t.Fatal("TCP-transport sort output not globally sorted")
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func TestRegistryTimeout(t *testing.T) {
	// A lone rank of a 2-rank world must time out, not hang.
	registry := freePort(t)
	_, err := New(Config{Rank: 0, Size: 2, Registry: registry, Timeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("expected registration timeout")
	}
}

func TestDialUnreachableRegistry(t *testing.T) {
	_, err := New(Config{Rank: 1, Size: 2, Registry: "127.0.0.1:1", Timeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("expected dial failure")
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Rank: 5, Size: 2}); err == nil {
		t.Fatal("bad rank accepted")
	}
	if _, err := New(Config{Rank: 0, Size: 0}); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestPeerDeathUnblocksReceives(t *testing.T) {
	// Killing a transport must surface errors to its own pending
	// receives rather than hanging.
	registry := freePort(t)
	var wg sync.WaitGroup
	var t0, t1 *Transport
	var e0, e1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		t0, e0 = New(Config{Rank: 0, Size: 2, Registry: registry, Timeout: 5 * time.Second})
	}()
	go func() {
		defer wg.Done()
		t1, e1 = New(Config{Rank: 1, Size: 2, Registry: registry, Timeout: 5 * time.Second})
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatal(e0, e1)
	}
	defer t1.Close()

	done := make(chan error, 1)
	go func() {
		_, err := comm.New(t0).Recv(1, 0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	t0.Close() // our own close unblocks our receive
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("receive succeeded after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receive still blocked after close")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	registry := freePort(t)
	var wg sync.WaitGroup
	var t0, t1 *Transport
	var e0, e1 error
	wg.Add(2)
	go func() { defer wg.Done(); t0, e0 = New(Config{Rank: 0, Size: 2, Registry: registry}) }()
	go func() { defer wg.Done(); t1, e1 = New(Config{Rank: 1, Size: 2, Registry: registry}) }()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatal(e0, e1)
	}
	defer t0.Close()
	defer t1.Close()
	// Can't allocate >1GB in a test; validate the guard directly.
	err := t0.Send(1, 0, 0, make([]byte, 0))
	if err != nil {
		t.Fatalf("empty frame rejected: %v", err)
	}
	if got := func() error {
		// Craft a fake huge length by calling Send with a length check
		// boundary: MaxFrameSize+1 slice headers without data are not
		// constructible; exercise the range check instead.
		return t0.Send(99, 0, 0, nil)
	}(); got == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestAdvancedCollectivesOverTCP(t *testing.T) {
	launch(t, 4, nil, func(c *comm.Comm) error {
		// ExScan: exclusive prefix sums of rank+1.
		add := func(a, b int64) int64 { return a + b }
		got, err := c.ExScan(int64(c.Rank()+1), 0, add)
		if err != nil {
			return err
		}
		if want := int64(c.Rank() * (c.Rank() + 1) / 2); got != want {
			return fmt.Errorf("exscan rank %d: got %d want %d", c.Rank(), got, want)
		}
		// Ring allgather matches flat allgather.
		payload := []byte{byte(c.Rank() * 7)}
		flat, err := c.Allgather(payload)
		if err != nil {
			return err
		}
		ring, err := c.RingAllgather(payload)
		if err != nil {
			return err
		}
		for r := range flat {
			if len(flat[r]) != 1 || len(ring[r]) != 1 || flat[r][0] != ring[r][0] {
				return fmt.Errorf("allgather mismatch at %d", r)
			}
		}
		// Pairwise alltoall (power-of-two schedule over TCP).
		parts := make([][]byte, 4)
		for dst := range parts {
			parts[dst] = []byte{byte(c.Rank()), byte(dst)}
		}
		out, err := c.PairwiseAlltoall(parts)
		if err != nil {
			return err
		}
		for src := range out {
			if out[src][0] != byte(src) || out[src][1] != byte(c.Rank()) {
				return fmt.Errorf("pairwise from %d: %v", src, out[src])
			}
		}
		// Reduce to rank 2.
		total, err := c.Reduce(2, int64(c.Rank()), add)
		if err != nil {
			return err
		}
		if c.Rank() == 2 && total != 6 {
			return fmt.Errorf("reduce got %d", total)
		}
		return nil
	})
}

func TestVerifyOverTCP(t *testing.T) {
	launch(t, 3, nil, func(c *comm.Comm) error {
		// Globally sorted blocks across the TCP world.
		data := []float64{float64(c.Rank() * 10), float64(c.Rank()*10 + 5)}
		return core.Verify(c, data, codec.Float64{}, cmpF)
	})
}

// TestEpochAdoptedFromCoordinator: the coordinator's epoch wins — a
// worker configured with a stale epoch (a respawned process that only
// knows the registry address) must come up in the coordinator's.
func TestEpochAdoptedFromCoordinator(t *testing.T) {
	registry := freePort(t)
	var wg sync.WaitGroup
	var t0, t1 *Transport
	var e0, e1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		t0, e0 = New(Config{Rank: 0, Size: 2, Registry: registry, Epoch: 3})
	}()
	go func() {
		defer wg.Done()
		t1, e1 = New(Config{Rank: 1, Size: 2, Registry: registry, Epoch: 0})
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatal(e0, e1)
	}
	defer t0.Close()
	defer t1.Close()
	if t0.Epoch() != 3 || t1.Epoch() != 3 {
		t.Fatalf("epochs %d/%d, want both 3", t0.Epoch(), t1.Epoch())
	}
	if err := t0.Send(1, 7, 1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if buf, err := t1.Recv(0, 7, 1); err != nil || string(buf) != "hi" {
		t.Fatalf("recv %q, %v", buf, err)
	}
}

// TestEpochStaleConnectionDropped: a connection whose hello names a
// different epoch is dropped on accept, so none of its frames can be
// delivered — and, critically, cannot consume sequence numbers the
// live epoch's stream needs.
func TestEpochStaleConnectionDropped(t *testing.T) {
	registry := freePort(t)
	var wg sync.WaitGroup
	var t0, t1 *Transport
	var e0, e1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		t0, e0 = New(Config{Rank: 0, Size: 2, Registry: registry, Epoch: 2, RecvTimeout: 10 * time.Second})
	}()
	go func() {
		defer wg.Done()
		t1, e1 = New(Config{Rank: 1, Size: 2, Registry: registry, Epoch: 2, RecvTimeout: 10 * time.Second})
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatal(e0, e1)
	}
	defer t0.Close()
	defer t1.Close()

	// Hand-craft a connection from "rank 0 at epoch 1" carrying one
	// frame with the sequence number the live stream will use first.
	conn, err := net.Dial("tcp", t1.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:], 0)  // rank 0
	binary.LittleEndian.PutUint32(hello[4:], 1) // stale epoch
	stale := []byte("old")
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], 0) // src
	binary.LittleEndian.PutUint64(hdr[4:], 9) // ctx
	binary.LittleEndian.PutUint32(hdr[12:], 5)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(stale)))
	binary.LittleEndian.PutUint64(hdr[20:], 0) // seq 0
	if _, err := conn.Write(append(append(hello[:], hdr[:]...), stale...)); err != nil {
		t.Fatal(err)
	}

	// Give the acceptor a moment, then send the real frame on the live
	// epoch — it must be the one delivered, with its seq 0 intact.
	time.Sleep(100 * time.Millisecond)
	if err := t0.Send(1, 9, 5, []byte("new")); err != nil {
		t.Fatal(err)
	}
	buf, err := t1.Recv(0, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "new" {
		t.Fatalf("delivered %q — a stale-epoch frame leaked through", buf)
	}
}
