package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runRanks drives fn on every rank of a fresh world and fails the test
// on any rank error.
func runRanks(t *testing.T, size int, nodeOf []int, fn func(c *Comm) error) {
	t.Helper()
	world, err := NewWorld(size, nodeOf)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	errs := make([]error, size)
	var wg sync.WaitGroup
	var once sync.Once
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := fn(New(world.Transport(rank))); err != nil {
				errs[rank] = err
				once.Do(func() { world.Close() })
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, nil); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewWorld(4, []int{0, 0}); err == nil {
		t.Fatal("short nodeOf accepted")
	}
}

func TestBlockNodes(t *testing.T) {
	got := BlockNodes(6, 2)
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if got := BlockNodes(3, 0); got[2] != 2 {
		t.Fatalf("coresPerNode=0 should default to 1, got %v", got)
	}
}

func TestSendRecvBasic(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		data, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			return fmt.Errorf("got %q", data)
		}
		return nil
	})
}

func TestSendBufferReuseSafe(t *testing.T) {
	// The transport must copy eagerly: mutating the buffer after Send
	// must not corrupt the delivered message.
	runRanks(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99
			return nil
		}
		data, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if data[0] != 1 {
			return fmt.Errorf("message corrupted by sender buffer reuse: %v", data)
		}
		return nil
	})
}

func TestMessageOrderingFIFO(t *testing.T) {
	const n = 100
	runRanks(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order as %d", i, data[0])
			}
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	// A receive on tag B must not consume a message on tag A, even if
	// A was sent first.
	runRanks(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("a")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("b"))
		}
		b, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		a, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(a) != "a" || string(b) != "b" {
			return fmt.Errorf("tag mixup: a=%q b=%q", a, b)
		}
		return nil
	})
}

func TestNegativeUserTagRejected(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		if err := c.Send((c.Rank()+1)%2, -5, nil); err == nil {
			return errors.New("negative tag accepted")
		}
		return nil
	})
}

func TestRankRangeChecked(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("out-of-range dst accepted")
		}
		if _, err := c.Recv(-1, 0); err == nil {
			return errors.New("out-of-range src accepted")
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 16} {
		var mu sync.Mutex
		arrived := 0
		runRanks(t, p, nil, func(c *Comm) error {
			mu.Lock()
			arrived++
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if arrived != p {
				return fmt.Errorf("barrier released with %d/%d arrived", arrived, p)
			}
			return nil
		})
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < p; root += 2 {
			runRanks(t, p, nil, func(c *Comm) error {
				var in []byte
				if c.Rank() == root {
					in = []byte{42, byte(root)}
				}
				out, err := c.Bcast(root, in)
				if err != nil {
					return err
				}
				if len(out) != 2 || out[0] != 42 || out[1] != byte(root) {
					return fmt.Errorf("rank %d got %v", c.Rank(), out)
				}
				return nil
			})
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range []int{1, 2, 5, 9} {
		root := p / 2
		runRanks(t, p, nil, func(c *Comm) error {
			out, err := c.Gather(root, []byte{byte(c.Rank()), byte(c.Rank() * 2)})
			if err != nil {
				return err
			}
			if c.Rank() != root {
				if out != nil {
					return errors.New("non-root got data")
				}
				return nil
			}
			for r := 0; r < p; r++ {
				if len(out[r]) != 2 || out[r][0] != byte(r) {
					return fmt.Errorf("root: bad entry %d: %v", r, out[r])
				}
			}
			return nil
		})
	}
}

func TestAllgatherVariableSizes(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		runRanks(t, p, nil, func(c *Comm) error {
			mine := make([]byte, c.Rank()) // rank r sends r bytes
			for i := range mine {
				mine[i] = byte(c.Rank())
			}
			out, err := c.Allgather(mine)
			if err != nil {
				return err
			}
			if len(out) != p {
				return fmt.Errorf("got %d parts", len(out))
			}
			for r := 0; r < p; r++ {
				if len(out[r]) != r {
					return fmt.Errorf("part %d has %d bytes, want %d", r, len(out[r]), r)
				}
				for _, b := range out[r] {
					if b != byte(r) {
						return fmt.Errorf("part %d corrupted", r)
					}
				}
			}
			return nil
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		runRanks(t, p, nil, func(c *Comm) error {
			parts := make([][]byte, p)
			for dst := range parts {
				// Variable sizes: rank r sends (r+dst+1) bytes to dst.
				parts[dst] = make([]byte, c.Rank()+dst+1)
				for i := range parts[dst] {
					parts[dst][i] = byte(c.Rank()*16 + dst)
				}
			}
			out, err := c.Alltoall(parts)
			if err != nil {
				return err
			}
			for src := 0; src < p; src++ {
				if len(out[src]) != src+c.Rank()+1 {
					return fmt.Errorf("from %d: %d bytes, want %d", src, len(out[src]), src+c.Rank()+1)
				}
				for _, b := range out[src] {
					if b != byte(src*16+c.Rank()) {
						return fmt.Errorf("from %d: corrupted payload", src)
					}
				}
			}
			return nil
		})
	}
}

func TestAlltoallWrongPartCount(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		if _, err := c.Alltoall([][]byte{nil}); err == nil {
			return errors.New("wrong part count accepted")
		}
		// Recover the fabric state: the other rank didn't send either,
		// so nothing is in flight.
		return nil
	})
}

func TestAllgatherInt64AndAllreduce(t *testing.T) {
	runRanks(t, 5, nil, func(c *Comm) error {
		vals, err := c.AllgatherInt64(int64(c.Rank() * 10))
		if err != nil {
			return err
		}
		for r, v := range vals {
			if v != int64(r*10) {
				return fmt.Errorf("vals[%d]=%d", r, v)
			}
		}
		sum, err := c.AllreduceInt64(int64(c.Rank()), func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if sum != 10 { // 0+1+2+3+4
			return fmt.Errorf("sum=%d", sum)
		}
		maxv, err := c.AllreduceInt64(int64(c.Rank()), func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if err != nil {
			return err
		}
		if maxv != 4 {
			return fmt.Errorf("max=%d", maxv)
		}
		return nil
	})
}

func TestIsendIrecvOverlap(t *testing.T) {
	runRanks(t, 4, nil, func(c *Comm) error {
		p := c.Size()
		// Everyone posts receives from everyone, then sends.
		reqs := make([]*Request, 0, p-1)
		for src := 0; src < p; src++ {
			if src == c.Rank() {
				continue
			}
			r, err := c.Irecv(src, 9)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		var sends []*Request
		for dst := 0; dst < p; dst++ {
			if dst == c.Rank() {
				continue
			}
			s, err := c.Isend(dst, 9, []byte{byte(c.Rank())})
			if err != nil {
				return err
			}
			sends = append(sends, s)
		}
		consumed := make([]bool, len(reqs))
		seen := map[byte]bool{}
		for {
			i, data, err := WaitAnyMask(reqs, consumed)
			if err != nil {
				return err
			}
			if i < 0 {
				break
			}
			if len(data) != 1 {
				return fmt.Errorf("bad payload %v", data)
			}
			seen[data[0]] = true
		}
		if len(seen) != p-1 {
			return fmt.Errorf("saw %d payloads, want %d", len(seen), p-1)
		}
		return WaitAll(sends)
	})
}

func TestRequestTest(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Send(1, 4, []byte("x"))
		}
		req, err := c.Irecv(0, 4)
		if err != nil {
			return err
		}
		done, _, _ := req.Test()
		if done {
			return errors.New("request done before the sender was released")
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		data, err := req.Wait()
		if err != nil {
			return err
		}
		if string(data) != "x" {
			return fmt.Errorf("got %q", data)
		}
		done, data2, err := req.Test()
		if !done || err != nil || string(data2) != "x" {
			return errors.New("Test after Wait inconsistent")
		}
		return nil
	})
}

func TestSplitEvenOdd(t *testing.T) {
	runRanks(t, 6, nil, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			return fmt.Errorf("sub rank %d want %d", sub.Rank(), want)
		}
		// Traffic on the sub-communicator must work and stay isolated.
		vals, err := sub.AllgatherInt64(int64(c.Rank()))
		if err != nil {
			return err
		}
		for i, v := range vals {
			if want := int64(2*i + c.Rank()%2); v != want {
				return fmt.Errorf("vals[%d]=%d want %d", i, v, want)
			}
		}
		return nil
	})
}

func TestSplitNegativeColor(t *testing.T) {
	runRanks(t, 4, nil, func(c *Comm) error {
		color := -1
		if c.Rank() < 2 {
			color = 0
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() < 2 && (sub == nil || sub.Size() != 2) {
			return errors.New("colored rank got no sub-communicator")
		}
		if c.Rank() >= 2 && sub != nil {
			return errors.New("undefined-color rank got a communicator")
		}
		return nil
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	runRanks(t, 4, nil, func(c *Comm) error {
		// Reverse the ranks via the key.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		if want := c.Size() - 1 - c.Rank(); sub.Rank() != want {
			return fmt.Errorf("sub rank %d want %d", sub.Rank(), want)
		}
		return nil
	})
}

func TestSplitContextIsolation(t *testing.T) {
	// A message sent on the parent must not be received on the child,
	// even with the same (src, dst, tag).
	runRanks(t, 2, nil, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("parent")); err != nil {
				return err
			}
			return sub.Send(1, 5, []byte("child"))
		}
		childMsg, err := sub.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(childMsg) != "child" {
			return fmt.Errorf("child comm received %q", childMsg)
		}
		parentMsg, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(parentMsg) != "parent" {
			return fmt.Errorf("parent comm received %q", parentMsg)
		}
		return nil
	})
}

func TestSplitByNode(t *testing.T) {
	// 6 ranks on 3 nodes of 2.
	runRanks(t, 6, BlockNodes(6, 2), func(c *Comm) error {
		local, leaders, err := c.SplitByNode()
		if err != nil {
			return err
		}
		if local.Size() != 2 {
			return fmt.Errorf("local size %d", local.Size())
		}
		if want := c.Rank() % 2; local.Rank() != want {
			return fmt.Errorf("local rank %d want %d", local.Rank(), want)
		}
		isLeader := c.Rank()%2 == 0
		if isLeader {
			if leaders == nil {
				return errors.New("leader got nil leaders comm")
			}
			if leaders.Size() != 3 {
				return fmt.Errorf("leaders size %d", leaders.Size())
			}
			if want := c.Rank() / 2; leaders.Rank() != want {
				return fmt.Errorf("leaders rank %d want %d", leaders.Rank(), want)
			}
		} else if leaders != nil {
			return errors.New("non-leader got a leaders comm")
		}
		return nil
	})
}

func TestSuccessiveSplitsDistinctContexts(t *testing.T) {
	// Two Splits with identical arguments must yield isolated comms.
	runRanks(t, 2, nil, func(c *Comm) error {
		s1, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		s2, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := s2.Send(1, 0, []byte("two")); err != nil {
				return err
			}
			return s1.Send(1, 0, []byte("one"))
		}
		one, err := s1.Recv(0, 0)
		if err != nil {
			return err
		}
		two, err := s2.Recv(0, 0)
		if err != nil {
			return err
		}
		if string(one) != "one" || string(two) != "two" {
			return fmt.Errorf("context mixup: %q %q", one, two)
		}
		return nil
	})
}

func TestClosedWorldUnblocksRecv(t *testing.T) {
	world, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := New(world.Transport(0))
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv(1, 0)
		done <- err
	}()
	world.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	// Sends after close fail too.
	if err := c.Send(1, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestFrameCodecs(t *testing.T) {
	parts := [][]byte{nil, {1}, {2, 3, 4}, {}}
	got, err := unpackFrames(packFrames(parts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(parts) {
		t.Fatalf("got %d parts", len(got))
	}
	for i := range parts {
		if len(got[i]) != len(parts[i]) {
			t.Fatalf("part %d: %v vs %v", i, got[i], parts[i])
		}
	}
	if _, err := unpackFrames([]byte{1, 2}); err == nil {
		t.Fatal("short pack accepted")
	}
	if _, err := unpackFrames([]byte{1, 0, 0, 0, 5, 0, 0, 0, 1}); err == nil {
		t.Fatal("truncated body accepted")
	}
	if _, err := decodeInts([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged int payload accepted")
	}
}

func TestDupIsolatesContext(t *testing.T) {
	runRanks(t, 2, nil, func(c *Comm) error {
		d := c.Dup()
		if d.Size() != c.Size() || d.Rank() != c.Rank() {
			return errors.New("dup changed membership")
		}
		if c.Rank() == 0 {
			if err := d.Send(1, 7, []byte("dup")); err != nil {
				return err
			}
			return c.Send(1, 7, []byte("orig"))
		}
		orig, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		dup, err := d.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(orig) != "orig" || string(dup) != "dup" {
			return fmt.Errorf("context mixup: %q %q", orig, dup)
		}
		return nil
	})
}

func TestGroupAndTranslateRank(t *testing.T) {
	runRanks(t, 6, nil, func(c *Comm) error {
		g := c.Group()
		if len(g) != 6 || g[3] != 3 {
			return fmt.Errorf("world group %v", g)
		}
		g[0] = 99 // must not alias internal state
		if c.Group()[0] != 0 {
			return errors.New("Group leaked internal slice")
		}
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		// sub rank k corresponds to world rank 2k+parity.
		for k := 0; k < sub.Size(); k++ {
			world := 2*k + c.Rank()%2
			if got := sub.TranslateRank(k, c); got != world {
				return fmt.Errorf("translate sub %d -> world %d, want %d", k, got, world)
			}
		}
		// A rank absent from the other communicator maps to -1.
		if got := c.TranslateRank((c.Rank()+1)%6, sub); c.Rank()%2 != (c.Rank()+1)%6%2 && got != -1 {
			return fmt.Errorf("cross-parity translate gave %d", got)
		}
		if got := c.TranslateRank(99, sub); got != -1 {
			return errors.New("out-of-range rank translated")
		}
		if c.Name() == "" || sub.Name() == c.Name() {
			return errors.New("names not hierarchical")
		}
		return nil
	})
}

func TestFIFOPropertyQuick(t *testing.T) {
	// Property: for random message counts and payload sizes, per-tag
	// FIFO order holds even when two tags interleave arbitrarily.
	f := func(counts [2]uint8, seed int64) bool {
		n0, n1 := int(counts[0])%50, int(counts[1])%50
		ok := true
		runRanks(t, 2, nil, func(c *Comm) error {
			if c.Rank() == 0 {
				rng := rand.New(rand.NewSource(seed))
				sent := [2]int{}
				for sent[0] < n0 || sent[1] < n1 {
					tag := rng.Intn(2)
					if sent[tag] >= []int{n0, n1}[tag] {
						tag = 1 - tag
					}
					if err := c.Send(1, tag+10, []byte{byte(sent[tag])}); err != nil {
						return err
					}
					sent[tag]++
				}
				return nil
			}
			for tag, n := range []int{n0, n1} {
				for i := 0; i < n; i++ {
					data, err := c.Recv(0, tag+10)
					if err != nil {
						return err
					}
					if data[0] != byte(i) {
						ok = false
					}
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestManyDupsConcurrentTraffic(t *testing.T) {
	// Several duplicated communicators carrying traffic at once must
	// stay isolated.
	runRanks(t, 3, nil, func(c *Comm) error {
		const dups = 5
		comms := make([]*Comm, dups)
		for i := range comms {
			comms[i] = c.Dup()
		}
		var wg sync.WaitGroup
		errs := make([]error, dups)
		for i, d := range comms {
			wg.Add(1)
			go func(i int, d *Comm) {
				defer wg.Done()
				next := (d.Rank() + 1) % d.Size()
				prev := (d.Rank() + 2) % d.Size()
				if err := d.Send(next, 1, []byte{byte(i), byte(d.Rank())}); err != nil {
					errs[i] = err
					return
				}
				got, err := d.Recv(prev, 1)
				if err != nil {
					errs[i] = err
					return
				}
				if got[0] != byte(i) || got[1] != byte(prev) {
					errs[i] = fmt.Errorf("dup %d cross-talk: %v", i, got)
				}
			}(i, d)
		}
		wg.Wait()
		return errors.Join(errs...)
	})
}
