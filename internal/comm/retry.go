package comm

import (
	"math/rand/v2"
	"sync"
	"time"
)

// RetryPolicy is a capped-exponential-backoff-with-jitter retry budget,
// shared by the generic WithRetry decorator and tcpcomm's reconnect
// paths. The zero value of any field is replaced by its default, so
// callers set only what they care about.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 5). An operation that fails transiently MaxAttempts
	// times is abandoned with ErrPeerLost.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 2ms);
	// each further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 250ms).
	MaxDelay time.Duration
	// Jitter spreads each delay uniformly over ±Jitter/2 of its value
	// (default 0.2), decorrelating retries from ranks that failed
	// together.
	Jitter float64
	// Seed makes the jitter sequence deterministic (default 1).
	Seed int64
}

// DefaultRetryPolicy returns the stock budget: 5 attempts, 2ms base,
// 250ms cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Jitter: 0.2, Seed: 1}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Jitter <= 0 {
		p.Jitter = d.Jitter
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// Retrier executes operations under a RetryPolicy. It is safe for
// concurrent use; the jitter stream is deterministic for a given seed
// (though interleaving across goroutines is not).
type Retrier struct {
	p   RetryPolicy
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a retrier, filling zero policy fields with
// defaults.
func NewRetrier(p RetryPolicy) *Retrier {
	p = p.withDefaults()
	return &Retrier{p: p, rng: rand.New(rand.NewPCG(uint64(p.Seed), 0x9e3779b97f4a7c15))}
}

// Policy returns the effective (default-filled) policy.
func (r *Retrier) Policy() RetryPolicy { return r.p }

// Backoff returns the jittered delay to sleep before retry number
// attempt (0-based: Backoff(0) precedes the second try).
func (r *Retrier) Backoff(attempt int) time.Duration {
	if attempt > 30 {
		attempt = 30 // avoid shift overflow; MaxDelay caps long before this
	}
	d := r.p.BaseDelay << uint(attempt)
	if d <= 0 || d > r.p.MaxDelay {
		d = r.p.MaxDelay
	}
	r.mu.Lock()
	u := r.rng.Float64()
	r.mu.Unlock()
	// Spread over [d·(1−J/2), d·(1+J/2)).
	return time.Duration(float64(d) * (1 - r.p.Jitter/2 + r.p.Jitter*u))
}

// Do runs op up to MaxAttempts times, sleeping Backoff between tries,
// retrying only while retryable(err) holds. It returns the last error.
func (r *Retrier) Do(op func() error, retryable func(error) bool) error {
	var err error
	for attempt := 0; attempt < r.p.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(r.Backoff(attempt - 1))
		}
		if err = op(); err == nil || !retryable(err) {
			return err
		}
	}
	return err
}

// WithRetry decorates a transport so that Send and Recv calls failing
// with transient errors (IsTransient) are retried under the policy,
// and budget exhaustion surfaces as *ErrPeerLost naming the peer's
// world rank. It composes with any transport whose transient failures
// are side-effect free — the contract faultnet's injector guarantees
// (faults are injected before the underlying operation runs). tcpcomm
// does not need this decorator: its send path retries internally with
// reconnect and retransmit dedup.
func WithRetry(tr Transport, p RetryPolicy) Transport {
	return &retryTransport{Transport: tr, r: NewRetrier(p)}
}

type retryTransport struct {
	Transport
	r *Retrier
}

func (t *retryTransport) Send(dst int, ctx uint64, tag int32, data []byte) error {
	err := t.r.Do(func() error { return t.Transport.Send(dst, ctx, tag, data) }, IsTransient)
	if err != nil && IsTransient(err) {
		return &ErrPeerLost{Rank: dst, Err: err}
	}
	return err
}

func (t *retryTransport) Recv(src int, ctx uint64, tag int32) ([]byte, error) {
	var data []byte
	err := t.r.Do(func() error {
		var e error
		data, e = t.Transport.Recv(src, ctx, tag)
		return e
	}, IsTransient)
	if err != nil && IsTransient(err) {
		return nil, &ErrPeerLost{Rank: src, Err: err}
	}
	return data, err
}
