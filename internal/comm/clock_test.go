package comm

import (
	"fmt"
	"sync"
	"testing"
)

// Ranks of an in-process world share one hardware clock, so the NTP
// ping-pong must estimate offsets near zero — the bound below is pure
// scheduling noise. What the test really pins down is the protocol:
// every rank returns the identical geometry, rank 0's offset is zero
// by definition, and the winning probe's RTT travels with the
// estimate.
func TestSyncClocksAgreesWorldWide(t *testing.T) {
	const size, rounds = 4, 4
	var (
		mu  sync.Mutex
		all []ClockSync
	)
	runRanks(t, size, nil, func(c *Comm) error {
		cs, err := c.SyncClocks(rounds)
		if err != nil {
			return err
		}
		if len(cs.Offsets) != size || len(cs.RTTs) != size {
			return fmt.Errorf("rank %d: geometry %d/%d, want %d/%d",
				c.Rank(), len(cs.Offsets), len(cs.RTTs), size, size)
		}
		mu.Lock()
		all = append(all, cs)
		mu.Unlock()
		return nil
	})
	ref := all[0]
	for _, cs := range all[1:] {
		for r := 0; r < size; r++ {
			if cs.Offsets[r] != ref.Offsets[r] || cs.RTTs[r] != ref.RTTs[r] {
				t.Fatalf("ranks disagree on the broadcast geometry: %+v vs %+v", cs, ref)
			}
		}
	}
	if ref.Offset(0) != 0 {
		t.Errorf("rank 0's offset against itself = %d, want 0", ref.Offset(0))
	}
	// Same process, same clock: anything beyond 100ms means the
	// midpoint arithmetic is wrong, not that the scheduler was slow.
	const boundUS = 100_000
	for r := 1; r < size; r++ {
		if off := ref.Offset(r); off < -boundUS || off > boundUS {
			t.Errorf("rank %d offset %dµs — in-process clocks cannot diverge that far", r, off)
		}
		if ref.RTTs[r] < 0 {
			t.Errorf("rank %d negative RTT %d", r, ref.RTTs[r])
		}
	}
}

// A single-rank world has nothing to measure and must not try to
// communicate (there is no peer to answer the probe).
func TestSyncClocksSingleRank(t *testing.T) {
	runRanks(t, 1, nil, func(c *Comm) error {
		cs, err := c.SyncClocks(0) // 0 = default rounds
		if err != nil {
			return err
		}
		if len(cs.Offsets) != 1 || cs.Offset(0) != 0 {
			return fmt.Errorf("single-rank sync = %+v, want one zero offset", cs)
		}
		return nil
	})
}

// Offset is the read used on hot paths after a Reform may have shrunk
// the world: out-of-range ranks read as zero rather than panicking.
func TestClockSyncOffsetOutOfRange(t *testing.T) {
	cs := ClockSync{Offsets: []int64{0, 42}, RTTs: []int64{0, 7}}
	if got := cs.Offset(1); got != 42 {
		t.Errorf("Offset(1) = %d, want 42", got)
	}
	for _, r := range []int{-1, 2, 99} {
		if got := cs.Offset(r); got != 0 {
			t.Errorf("Offset(%d) = %d, want 0", r, got)
		}
	}
	if got := (ClockSync{}).Offset(0); got != 0 {
		t.Errorf("zero ClockSync Offset(0) = %d, want 0", got)
	}
}
