package comm

import "fmt"

// tagStaged is the reserved tag band of the staged all-to-all. A single
// tag suffices: each ordered (src, dst) pair is visited by exactly one
// round of the schedule, and chunks within a pair ride the transport's
// non-overtaking FIFO order.
const tagStaged int32 = -3072

// StagedOptions parameterises StagedAlltoallv. The caller supplies the
// payload through callbacks rather than materialised buffers — that is
// the point: at no time does the collective hold more than one stage
// chunk per direction, so peak memory is bounded by the stage window
// regardless of how many bytes move.
type StagedOptions struct {
	// StageBytes bounds the size of one chunk. Values <= 0 mean
	// unbounded: each peer's whole payload moves as a single chunk.
	StageBytes int64
	// SendBytes[dst] is the exact number of payload bytes this rank
	// sends to dst; RecvBytes[src] the bytes it will receive from src.
	// Both must have one entry per rank and every rank must agree (the
	// usual count exchange precedes the data exchange).
	SendBytes []int64
	// RecvBytes is the receive-side counterpart of SendBytes.
	RecvBytes []int64
	// Fill produces the next outgoing chunk for dst: the n bytes at
	// payload offset off, encoded into a buffer the caller owns
	// (typically from a codec.BufferPool) — or, on the zero-copy path,
	// a view aliasing the caller's record slab directly. Either is
	// safe: the collective never retains the buffer past the Send that
	// consumes it, and the transports do not mutate send buffers. A
	// caller returning aliased views must not mutate the viewed
	// records until the collective returns.
	Fill func(dst int, off, n int64) ([]byte, error)
	// FillDone, when non-nil, is called once the chunk buffer returned
	// by Fill has been handed to the transport and may be recycled.
	FillDone func(dst int, buf []byte)
	// Drain consumes one arriving chunk from src, starting at payload
	// offset off. Drain must not retain chunk after returning (the
	// zero-copy path memcpys it into the receive slab; the generic
	// path decodes it record by record).
	Drain func(src int, off int64, chunk []byte) error
	// OnWindow, when non-nil, observes live stage-window occupancy: the
	// collective calls it with +n when it takes hold of an n-byte chunk
	// buffer (outgoing chunk filled, incoming chunk received) and -n
	// when it lets go. The running sum is the staging window in bytes —
	// at most one outgoing plus one incoming chunk by construction —
	// and is guaranteed to return to its starting value when the
	// collective exits, error paths included. Must be cheap and safe
	// for concurrent use.
	OnWindow func(delta int64)
}

// StagedStats reports what a StagedAlltoallv moved.
type StagedStats struct {
	// BytesStaged is the total payload that passed through stage
	// buffers (network chunks plus the self-copy).
	BytesStaged int64
	// Chunks is the number of stage chunks those bytes were cut into.
	Chunks int64
	// Rounds is the number of schedule rounds executed (= comm size).
	Rounds int
}

func (o *StagedOptions) validate(p int) error {
	if len(o.SendBytes) != p || len(o.RecvBytes) != p {
		return fmt.Errorf("comm: staged alltoallv needs %d send/recv counts, got %d/%d",
			p, len(o.SendBytes), len(o.RecvBytes))
	}
	if o.Fill == nil || o.Drain == nil {
		return fmt.Errorf("comm: staged alltoallv needs Fill and Drain callbacks")
	}
	for r := 0; r < p; r++ {
		if o.SendBytes[r] < 0 || o.RecvBytes[r] < 0 {
			return fmt.Errorf("comm: staged alltoallv: negative byte count for rank %d", r)
		}
	}
	return nil
}

// chunkSize returns the size of the chunk at offset off of a total-byte
// payload under the stage bound.
func chunkSize(stage, off, total int64) int64 {
	n := total - off
	if stage > 0 && n > stage {
		n = stage
	}
	return n
}

// StagedAlltoallv runs a personalised all-to-all in bounded stages: a
// 1-factor-style peer schedule (XOR pairing for power-of-two sizes, a
// shift schedule otherwise — the same pairing as PairwiseAlltoall) with
// each peer's payload cut into chunks of at most StageBytes. Within a
// round the send and receive streams interleave chunk by chunk, so a
// rank holds at most one outgoing and one incoming chunk at a time; the
// transports' eager Send semantics make the interleaving deadlock-free.
//
// Semantics match Alltoall: chunks from a given source arrive at
// monotonically increasing offsets (FIFO per pair), so a Drain that
// appends reassembles each source's payload in order. Every rank of c
// must call it with agreeing SendBytes/RecvBytes matrices.
func (c *Comm) StagedAlltoallv(o StagedOptions) (StagedStats, error) {
	p := len(c.group)
	me := c.rank
	var st StagedStats
	if err := o.validate(p); err != nil {
		return st, err
	}
	stage := o.StageBytes

	// win tracks the chunk bytes this collective currently holds and
	// mirrors them into OnWindow; the deferred release makes the
	// occupancy contribution net zero on every exit path.
	var winHeld int64
	win := func(d int64) {
		if o.OnWindow != nil {
			o.OnWindow(d)
		}
		winHeld += d
	}
	defer func() {
		if winHeld != 0 {
			win(-winHeld)
		}
	}()

	// Round 0: the self "exchange" — chunked through the same Fill /
	// Drain pipeline so the caller sees one code path and the stage
	// window bounds the self-copy too.
	if o.SendBytes[me] != o.RecvBytes[me] {
		return st, fmt.Errorf("comm: staged alltoallv: self send %d != self recv %d bytes",
			o.SendBytes[me], o.RecvBytes[me])
	}
	for off := int64(0); off < o.SendBytes[me]; {
		n := chunkSize(stage, off, o.SendBytes[me])
		buf, err := o.Fill(me, off, n)
		if err != nil {
			return st, fmt.Errorf("comm: staged fill for self: %w", err)
		}
		if int64(len(buf)) != n {
			return st, fmt.Errorf("comm: staged fill for self returned %d bytes, want %d", len(buf), n)
		}
		win(n)
		if err := o.Drain(me, off, buf); err != nil {
			return st, fmt.Errorf("comm: staged drain for self: %w", err)
		}
		if o.FillDone != nil {
			o.FillDone(me, buf)
		}
		win(-n)
		st.BytesStaged += n
		st.Chunks++
		off += n
	}
	st.Rounds = 1

	pow2 := p&(p-1) == 0
	for k := 1; k < p; k++ {
		sendTo, recvFrom := (me+k)%p, (me-k+p)%p
		if pow2 {
			// XOR pairing: a true 1-factorisation — every round is a
			// perfect matching, each pair exchanging both ways.
			sendTo = me ^ k
			recvFrom = sendTo
		}
		sTotal, rTotal := o.SendBytes[sendTo], o.RecvBytes[recvFrom]
		var sOff, rOff int64
		for sOff < sTotal || rOff < rTotal {
			if sOff < sTotal {
				n := chunkSize(stage, sOff, sTotal)
				buf, err := o.Fill(sendTo, sOff, n)
				if err != nil {
					return st, fmt.Errorf("comm: staged fill for rank %d: %w", sendTo, err)
				}
				if int64(len(buf)) != n {
					return st, fmt.Errorf("comm: staged fill for rank %d returned %d bytes, want %d",
						sendTo, len(buf), n)
				}
				win(n)
				if err := c.sendInternal(sendTo, tagStaged, buf); err != nil {
					return st, fmt.Errorf("comm: staged send to rank %d: %w", sendTo, err)
				}
				if o.FillDone != nil {
					o.FillDone(sendTo, buf)
				}
				win(-n)
				st.BytesStaged += n
				st.Chunks++
				sOff += n
			}
			if rOff < rTotal {
				chunk, err := c.recvInternal(recvFrom, tagStaged)
				if err != nil {
					return st, fmt.Errorf("comm: staged recv from rank %d: %w", recvFrom, err)
				}
				win(int64(len(chunk)))
				if int64(len(chunk)) == 0 || rOff+int64(len(chunk)) > rTotal {
					return st, fmt.Errorf("comm: staged recv from rank %d: %d bytes at offset %d exceeds advertised %d",
						recvFrom, len(chunk), rOff, rTotal)
				}
				if err := o.Drain(recvFrom, rOff, chunk); err != nil {
					return st, fmt.Errorf("comm: staged drain from rank %d: %w", recvFrom, err)
				}
				win(-int64(len(chunk)))
				rOff += int64(len(chunk))
			}
		}
		st.Rounds++
	}
	return st, nil
}
